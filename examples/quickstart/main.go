// Quickstart: port one compute kernel to a simulated SPE with the
// cellport framework, following the paper's recipe (§3.3–§3.5):
//
//  1. wrap the data the kernel needs into an aligned main-memory block,
//  2. build the kernel from the dispatcher template (Listing 1),
//  3. open an SPEInterface stub and keep the SPE idling between calls,
//  4. invoke it with SendAndWait — command word, wrapper address, result.
//
// The kernel here computes a dot product over two float32 vectors it DMAs
// from the wrapper.
package main

import (
	"fmt"
	"log"

	"cellport"
	"cellport/internal/core"
)

const n = 1024 // floats per vector

func dotKernel() cellport.KernelSpec {
	return cellport.KernelSpec{
		Name:      "dot",
		CodeBytes: 8 * 1024, // program image footprint, checked vs the 256 KB LS
		Functions: map[cellport.Opcode]cellport.KernelFunc{
			1: func(ctx *cellport.SPEContext, wrapper cellport.Addr) uint32 {
				st := ctx.Store()
				bytes := uint32(n * 4)
				a := st.MustAlloc(bytes, 16)
				b := st.MustAlloc(bytes, 16)
				out := st.MustAlloc(16, 16)
				// Step 3 of §3.5: the kernel pulls its data via DMA.
				if ctx.Get(a, wrapper, bytes, 0) != nil ||
					ctx.Get(b, wrapper+cellport.Addr(bytes), bytes, 0) != nil {
					return 1
				}
				ctx.WaitTag(0)
				va := core.GetFloat32s(st.Bytes(a, bytes))
				vb := core.GetFloat32s(st.Bytes(b, bytes))
				var sum float64
				for i := range va {
					sum += float64(va[i]) * float64(vb[i])
				}
				// Charge the virtual time: 2 fp32 ops per element, 4-wide SIMD.
				ctx.ComputeSIMD(2*n, 32, 0.8, "dot")
				core.PutFloat32s(st.Bytes(out, 4), []float32{float32(sum)})
				if ctx.Put(out, wrapper+cellport.Addr(2*bytes), 16, 1) != nil {
					return 1
				}
				ctx.WaitTag(1)
				return 0
			},
		},
	}
}

func main() {
	cfg := cellport.DefaultConfig()
	cfg.MemorySize = 16 << 20
	m := cellport.NewMachine(cfg)

	elapsed, err := m.RunMain("quickstart", func(ctx *cellport.PPEContext) {
		// Step 1: the data wrapper — fields padded to quadwords so every
		// field is independently DMA-able.
		w, err := cellport.NewWrapper(ctx.Memory(),
			cellport.WrapperField{Name: "a", Size: n * 4},
			cellport.WrapperField{Name: "b", Size: n * 4},
			cellport.WrapperField{Name: "dot", Size: 16},
		)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := w.Free(); err != nil {
				log.Fatal(err)
			}
		}()
		va, vb := make([]float32, n), make([]float32, n)
		for i := range va {
			va[i] = float32(i) / n
			vb[i] = float32(n-i) / n
		}
		w.SetFloat32s("a", va)
		w.SetFloat32s("b", vb)

		// Steps 2–3: build + load the kernel; the SPE idles between calls.
		iface, err := cellport.Open(ctx, 0, dotKernel())
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := iface.Close(); err != nil {
				log.Fatal(err)
			}
		}()

		// Step 4: invoke. The same stub serves any number of calls.
		for call := 0; call < 3; call++ {
			t0 := ctx.Now()
			if res, err := iface.SendAndWait(1, w.Addr()); err != nil || res != 0 {
				log.Fatalf("kernel failed: res=%d err=%v", res, err)
			}
			fmt.Printf("call %d: dot = %.6f   round trip %v\n",
				call, w.Float32s("dot", 1)[0], ctx.Now().Sub(t0))
		}

		// Host check.
		var want float64
		for i := range va {
			want += float64(va[i]) * float64(vb[i])
		}
		fmt.Printf("host reference: %.6f\n", want)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total virtual time: %v\n", elapsed)
}
