// The §3.4 worked example: an image filter over a 1600×1200 RGB frame
// that does not fit in the 256 KB SPE local store, so the DMA must be
// done in slices.
//
// Two filters demonstrate the two border cases the paper calls out:
//
//   - a color-conversion filter (sepia), where the new pixel depends only
//     on the old pixel — slicing needs no special care; and
//   - a 3×3 box-blur convolution, where "the data slices or the
//     processing must take care of the new border conditions at the data
//     slice edges" — solved with one halo row per side.
//
// Both SPE results are verified byte-for-byte against a host computation.
package main

import (
	"bytes"
	"fmt"
	"log"

	"cellport"
	"cellport/internal/img"
	"cellport/internal/ls"
	"cellport/internal/mainmem"
)

const (
	width  = 1600
	height = 1200
)

// sepia is the pointwise color conversion, shared by host and SPE.
func sepia(r, g, b byte) (byte, byte, byte) {
	clamp := func(v int) byte {
		if v > 255 {
			return 255
		}
		return byte(v)
	}
	ri, gi, bi := int(r), int(g), int(b)
	return clamp((ri*393 + gi*769 + bi*189) >> 10),
		clamp((ri*349 + gi*686 + bi*168) >> 10),
		clamp((ri*272 + gi*534 + bi*131) >> 10)
}

// blurRows computes the 3×3 box blur for payload rows [py0, py1) of a
// band (which includes halo rows where available) into dst. Borders
// replicate — clamping to the band is clamping to the image exactly when
// the band edge is the image edge.
func blurRows(band *img.RGB, py0, py1 int, dst *img.RGB, dy0 int) {
	at := func(x, y, c int) int {
		if x < 0 {
			x = 0
		}
		if x > band.W-1 {
			x = band.W - 1
		}
		if y < 0 {
			y = 0
		}
		if y > band.H-1 {
			y = band.H - 1
		}
		return int(band.Pix[y*band.Stride+3*x+c])
	}
	for y := py0; y < py1; y++ {
		for x := 0; x < band.W; x++ {
			for c := 0; c < 3; c++ {
				sum := 0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						sum += at(x+dx, y+dy, c)
					}
				}
				dst.Pix[(dy0+y-py0)*dst.Stride+3*x+c] = byte(sum / 9)
			}
		}
	}
}

// filterKernel builds an SPE kernel running the selected filter over
// sliced DMA. The wrapper header carries [W][H][stride][srcEA]; the
// destination EA follows in the second header word group.
func filterKernel(name string, halo int, apply func(band *img.RGB, py0, py1 int, out *img.RGB)) cellport.KernelSpec {
	return cellport.KernelSpec{
		Name:      name,
		CodeBytes: 16 * 1024,
		Functions: map[cellport.Opcode]cellport.KernelFunc{
			1: func(ctx *cellport.SPEContext, wrapper cellport.Addr) uint32 {
				st := ctx.Store()
				hdr := st.MustAlloc(32, 16)
				if ctx.Get(hdr, wrapper, 32, 0) != nil {
					return 1
				}
				ctx.WaitTag(0)
				hv := core32(st.Bytes(hdr, 32))
				w, h, stride := int(hv[0]), int(hv[1]), int(hv[2])
				srcEA, dstEA := cellport.Addr(hv[3]), cellport.Addr(hv[4])

				// Two buffers (in + out) per slice must fit the LS.
				budget := int(st.Free())/(2*stride) - 2
				slices, err := img.PlanSlices(h, budget, halo, 1)
				if err != nil {
					return 1
				}
				maxRows := 0
				for _, s := range slices {
					if r := s.TransferRows(); r > maxRows {
						maxRows = r
					}
				}
				inBuf := st.MustAlloc(uint32(maxRows*stride), 16)
				outBuf := st.MustAlloc(uint32((maxRows)*stride), 16)
				for _, s := range slices {
					if err := dmaRows(ctx, inBuf, srcEA+cellport.Addr(s.TransferY0()*stride), s.TransferRows(), stride, 0); err != nil {
						return 1
					}
					ctx.WaitTag(0)
					band := img.Wrap(st.Bytes(inBuf, uint32(s.TransferRows()*stride)), w, s.TransferRows(), stride)
					out := img.Wrap(st.Bytes(outBuf, uint32(s.PayloadRows()*stride)), w, s.PayloadRows(), stride)
					apply(band, s.HaloTop, s.HaloTop+s.PayloadRows(), out)
					ctx.ComputeSIMD(float64(s.PayloadRows()*w)*30, 16, 0.5, name)
					if err := putRows(ctx, outBuf, dstEA+cellport.Addr(s.Y0*stride), s.PayloadRows(), stride, 1); err != nil {
						return 1
					}
					ctx.WaitTag(1)
				}
				return 0
			},
		},
	}
}

func core32(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = uint32(b[i*4])<<24 | uint32(b[i*4+1])<<16 | uint32(b[i*4+2])<<8 | uint32(b[i*4+3])
	}
	return out
}

func dmaRows(ctx *cellport.SPEContext, lsa ls.Addr, ea cellport.Addr, rows, stride, tag int) error {
	per := 16384 / stride
	for off := 0; rows > 0; {
		n := per
		if n > rows {
			n = rows
		}
		if err := ctx.Get(lsa+ls.Addr(off), ea+cellport.Addr(off), uint32(n*stride), tag); err != nil {
			return err
		}
		off += n * stride
		rows -= n
	}
	return nil
}

func putRows(ctx *cellport.SPEContext, lsa ls.Addr, ea cellport.Addr, rows, stride, tag int) error {
	per := 16384 / stride
	for off := 0; rows > 0; {
		n := per
		if n > rows {
			n = rows
		}
		if err := ctx.Put(lsa+ls.Addr(off), ea+cellport.Addr(off), uint32(n*stride), tag); err != nil {
			return err
		}
		off += n * stride
		rows -= n
	}
	return nil
}

func main() {
	cfg := cellport.DefaultConfig()
	cfg.MemorySize = 64 << 20
	m := cellport.NewMachine(cfg)

	src := img.Synthesize(1234, width, height)
	stride := src.Stride
	fmt.Printf("image: %dx%d, %d KB — local store is %d KB, so DMA is sliced\n",
		width, height, src.Bytes()/1024, ls.Size/1024)

	// Host references.
	wantSepia := src.Clone()
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			sr, sg, sb := sepia(src.At(x, y))
			wantSepia.Set(x, y, sr, sg, sb)
		}
	}
	wantBlur := img.New(width, height)
	blurRows(src, 0, height, wantBlur, 0)

	sepiaSpec := filterKernel("sepia", 0, func(band *img.RGB, py0, py1 int, out *img.RGB) {
		for y := py0; y < py1; y++ {
			for x := 0; x < band.W; x++ {
				sr, sg, sb := sepia(band.At(x, y))
				out.Set(x, y-py0, sr, sg, sb)
			}
		}
	})
	blurSpec := filterKernel("blur3x3", 1, func(band *img.RGB, py0, py1 int, out *img.RGB) {
		blurRows(band, py0, py1, out, 0)
	})

	_, err := m.RunMain("imagefilter", func(ctx *cellport.PPEContext) {
		mem := ctx.Memory()
		put := func(im *img.RGB) cellport.Addr {
			ea, err := mem.Alloc(uint32(im.Bytes()), mainmem.AlignCacheLine)
			if err != nil {
				log.Fatal(err)
			}
			copy(mem.Bytes(ea, uint32(im.Bytes())), im.Pix)
			return ea
		}
		srcEA := put(src)
		dstEA, err := mem.Alloc(uint32(src.Bytes()), mainmem.AlignCacheLine)
		if err != nil {
			log.Fatal(err)
		}

		for _, tc := range []struct {
			spec cellport.KernelSpec
			want *img.RGB
		}{{sepiaSpec, wantSepia}, {blurSpec, wantBlur}} {
			w, err := cellport.NewWrapper(mem, cellport.WrapperField{Name: "hdr", Size: 32})
			if err != nil {
				log.Fatal(err)
			}
			hb := w.Bytes("hdr")
			for i, v := range []uint32{width, height, uint32(stride), uint32(srcEA), uint32(dstEA)} {
				hb[i*4], hb[i*4+1], hb[i*4+2], hb[i*4+3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
			}
			iface, err := cellport.Open(ctx, 0, tc.spec)
			if err != nil {
				log.Fatal(err)
			}
			t0 := ctx.Now()
			if res, err := iface.SendAndWait(1, w.Addr()); err != nil || res != 0 {
				log.Fatalf("%s failed: res=%d err=%v", tc.spec.Name, res, err)
			}
			dt := ctx.Now().Sub(t0)
			got := mem.Bytes(dstEA, uint32(src.Bytes()))
			ok := bytes.Equal(got, tc.want.Pix)
			fmt.Printf("%-8s SPE time %10v   matches host: %v\n", tc.spec.Name, dt, ok)
			if !ok {
				log.Fatalf("%s output differs from host reference", tc.spec.Name)
			}
			if err := iface.Close(); err != nil {
				log.Fatal(err)
			}
			if err := w.Free(); err != nil {
				log.Fatal(err)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
