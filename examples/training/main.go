// Training: MARVEL's "short training phase" (§5.1) — build concept models
// from labeled examples, then use them for detection, with both available
// classification methods (SVM via SMO, and kNN, §5.1's alternatives).
//
// The flow: extract color histograms from two synthetic image families
// ("bright scenes" vs "dark scenes"), train an SVM on them, verify it
// separates held-out images, encode the model to the flat format the SPE
// detection kernel streams, and confirm the decoded model agrees.
package main

import (
	"fmt"
	"log"

	"cellport/internal/features"
	"cellport/internal/img"
	"cellport/internal/svm"
)

// family synthesizes an image whose brightness is biased by class.
func family(seed uint64, bright bool) *img.RGB {
	im := img.Synthesize(seed, 96, 72)
	// Bias the scene: brighten or darken every pixel.
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			if bright {
				im.Set(x, y, lift(r), lift(g), lift(b))
			} else {
				im.Set(x, y, r/3, g/3, b/3)
			}
		}
	}
	return im
}

func lift(v byte) byte {
	n := int(v) + 120
	if n > 255 {
		n = 255
	}
	return byte(n)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("training: ")

	// 1. Extract features from labeled examples.
	var x [][]float32
	var y []int
	const perClass = 12
	for i := 0; i < perClass; i++ {
		x = append(x, features.ColorHistogram(family(uint64(i)+1, true)))
		y = append(y, 1)
		x = append(x, features.ColorHistogram(family(uint64(i)+100, false)))
		y = append(y, -1)
	}
	fmt.Printf("training set: %d examples, dim %d (166-bin HSV histogram)\n", len(x), len(x[0]))

	// 2. Train the SVM (the paper's chosen classifier).
	model, err := svm.Train("bright-scene", x, y, svm.RBF{Gamma: 8}, svm.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SMO converged: %d support vectors, bias %+.4f\n",
		len(model.SupportVectors), model.Bias)

	// 3. And the kNN alternative (§5.1 lists both).
	knn, err := svm.NewKNN("bright-scene", 5, x, y)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Held-out evaluation.
	correctSVM, correctKNN, total := 0, 0, 0
	for i := 0; i < 8; i++ {
		for _, bright := range []bool{true, false} {
			f := features.ColorHistogram(family(uint64(1000+i*7), bright))
			want := bright
			if model.Classify(f) == want {
				correctSVM++
			}
			if knn.Classify(f) == want {
				correctKNN++
			}
			total++
		}
	}
	fmt.Printf("held-out accuracy: SVM %d/%d, kNN %d/%d\n", correctSVM, total, correctKNN, total)
	if correctSVM < total*3/4 {
		log.Fatalf("SVM accuracy too low: %d/%d", correctSVM, total)
	}

	// 5. Encode for main-memory placement (what the SPE detection kernel
	//    streams) and verify the decoded model agrees.
	enc, err := svm.Encode(model)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := svm.Decode("bright-scene", enc)
	if err != nil {
		log.Fatal(err)
	}
	probe := features.ColorHistogram(family(31337, true))
	fmt.Printf("encoded model: %d float32 words (%.1f KB)\n", len(enc), float64(len(enc))*4/1024)
	fmt.Printf("decision original %+.5f vs decoded %+.5f\n", model.Decision(probe), dec.Decision(probe))
	fmt.Println("model ready for PlaceModel + the ConceptDet SPE kernel")
}
