// Full MARVEL pipeline on the simulated Cell: the paper's case study end
// to end. Runs the sequential reference on the three host models and the
// Cell port under all three scheduling scenarios, validates that the
// ported outputs match the reference bit-for-bit, and prints detected
// concepts for each image.
package main

import (
	"fmt"
	"log"

	"cellport/internal/cell"
	"cellport/internal/cost"
	"cellport/internal/marvel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("marvel-example: ")

	w := marvel.Workload{Images: 3, W: 352, H: 240, Seed: 42}
	ms, err := marvel.NewModelSet(w.Seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MARVEL case study — %d images of %dx%d, models %d/%d/%d/%d SVs\n\n",
		w.Images, w.W, w.H, marvel.NumSVCH, marvel.NumSVCC, marvel.NumSVEH, marvel.NumSVTX)

	// Sequential reference on the three machines of §5.2.
	fmt.Println("sequential reference application:")
	var ppeRef *marvel.ReferenceResult
	for _, host := range []*cost.Model{cost.NewDesktop(), cost.NewLaptop(), cost.NewPPE()} {
		ref := marvel.RunReference(host, w, ms)
		if host.Name == "PPE" {
			ppeRef = ref
		}
		fmt.Printf("  %-8s total %12s   one-time %12s   per-image %12s\n",
			host.Name, ref.Total, ref.OneTime, ref.PerImage)
	}

	// The Cell port, all scenarios, validated.
	fmt.Println("\nported application on the simulated Cell (optimized kernels):")
	mcfg := cell.DefaultConfig()
	mcfg.MemorySize = 64 << 20
	for _, scen := range []marvel.Scenario{marvel.SingleSPE, marvel.MultiSPE, marvel.MultiSPE2} {
		res, err := marvel.RunPorted(marvel.PortedConfig{
			Workload:      w,
			Scenario:      scen,
			Variant:       marvel.Optimized,
			Validate:      true,
			MachineConfig: &mcfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		status := "outputs identical to reference"
		if res.ValidationErrors > 0 {
			status = fmt.Sprintf("%d MISMATCHES", res.ValidationErrors)
		}
		fmt.Printf("  %-11s per-image %12s   speed-up vs PPE %6.2fx   %s\n",
			scen, res.PerImage,
			ppeRef.PerImage.Seconds()/res.PerImage.Seconds(), status)
	}

	// Show the actual detections (the application's purpose).
	fmt.Println("\ndetections (decision > 0 means the concept is present):")
	concepts := []string{"concept-ch", "concept-cc", "concept-eh", "concept-tx"}
	for i, r := range ppeRef.Images {
		fmt.Printf("  image %d:", i)
		for c, score := range r.Scores {
			mark := " "
			if score > 0 {
				mark = "+"
			}
			fmt.Printf("  %s%s=%+.3f", mark, concepts[c], score)
		}
		fmt.Println()
	}
}
