// Scheduling study (Fig. 4 + §4.2): compares the paper's scheduling
// scenarios on the simulated Cell, prints the Amdahl estimates of
// Eqs. 1–3 next to measured speed-ups, and renders the actual PPE/SPE
// schedule as a Gantt chart for each scenario.
package main

import (
	"fmt"
	"log"
	"os"

	"cellport"
	"cellport/internal/cell"
	"cellport/internal/cost"
	"cellport/internal/marvel"
	"cellport/internal/sim"
	"cellport/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scheduling: ")

	w := marvel.Workload{Images: 1, W: 352, H: 240, Seed: 7}
	ms, err := marvel.NewModelSet(w.Seed)
	if err != nil {
		log.Fatal(err)
	}
	ref := marvel.RunReference(cost.NewPPE(), w, ms)
	cov := ref.KernelCoverage()

	// Run each scenario with a tracer attached.
	type result struct {
		res *marvel.PortedResult
		rec *trace.Recorder
	}
	results := map[marvel.Scenario]result{}
	for _, scen := range []marvel.Scenario{marvel.SingleSPE, marvel.MultiSPE, marvel.MultiSPE2} {
		mcfg := cell.DefaultConfig()
		mcfg.MemorySize = 64 << 20
		rec := trace.NewRecorder()
		mcfg.Tracer = rec
		res, err := marvel.RunPorted(marvel.PortedConfig{
			Workload:      w,
			Scenario:      scen,
			Variant:       marvel.Optimized,
			MachineConfig: &mcfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		results[scen] = result{res, rec}
	}

	// Amdahl estimates from measured per-kernel data (SingleSPE gives
	// clean non-overlapping round trips).
	single := results[marvel.SingleSPE].res
	var kernels []cellport.EstKernel
	for _, id := range marvel.KernelIDs {
		kernels = append(kernels, cellport.EstKernel{
			Name:     id.String(),
			Fraction: cov[id],
			SpeedUp:  ref.KernelTime[id].Seconds() / single.KernelTime[id].Seconds(),
		})
	}
	est2, err := cellport.EstimateSequential(kernels)
	if err != nil {
		log.Fatal(err)
	}
	var extracts, detects cellport.EstGroup
	for _, k := range kernels {
		if k.Name == marvel.KCD.String() {
			detects = append(detects, k)
		} else {
			extracts = append(extracts, k)
		}
	}
	est3, err := cellport.EstimateGrouped([]cellport.EstGroup{extracts, detects})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Amdahl estimates (from measured kernel coverage + speed-ups) vs measured:")
	fmt.Printf("  %-12s Eq.2 estimate %6.2fx   measured %6.2fx\n",
		marvel.SingleSPE, est2, ref.PerImage.Seconds()/single.PerImage.Seconds())
	fmt.Printf("  %-12s Eq.3 estimate %6.2fx   measured %6.2fx\n",
		marvel.MultiSPE, est3,
		ref.PerImage.Seconds()/results[marvel.MultiSPE].res.PerImage.Seconds())
	fmt.Printf("  %-12s               %8s   measured %6.2fx\n",
		marvel.MultiSPE2, "",
		ref.PerImage.Seconds()/results[marvel.MultiSPE2].res.PerImage.Seconds())

	fmt.Println("\nworth-it check (§4.2): pushing one kernel from 10x to 100x when it")
	fmt.Println("covers 10% of the application:")
	e10, _ := cellport.EstimateSpeedUp1(cellport.EstKernel{Name: "k", Fraction: 0.1, SpeedUp: 10})
	e100, _ := cellport.EstimateSpeedUp1(cellport.EstKernel{Name: "k", Fraction: 0.1, SpeedUp: 100})
	fmt.Printf("  Sapp(10x) = %.4f, Sapp(100x) = %.4f — not worth the effort\n", e10, e100)

	for _, scen := range []marvel.Scenario{marvel.SingleSPE, marvel.MultiSPE, marvel.MultiSPE2} {
		fmt.Printf("\nschedule, %s — per-image window, one-time setup clipped\n", scen)
		fmt.Printf("(C=compute D=dma-wait I=io; PPE lane includes preprocessing):\n")
		r := results[scen]
		start := sim.Time(r.res.Total - r.res.PerImage)
		if err := r.rec.Clip(start, sim.Time(r.res.Total)).Gantt(os.Stdout, 100); err != nil {
			log.Fatal(err)
		}
	}
}
