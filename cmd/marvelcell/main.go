// Command marvelcell runs the ported MARVEL application on the simulated
// Cell B.E. and reports timings, speed-ups over the sequential reference,
// and (optionally) an activity Gantt chart of the schedule.
//
//	marvelcell -images 10 -scenario multi-spe -variant optimized -validate
//	marvelcell -scenario single-spe -trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cellport/internal/cell"
	"cellport/internal/cost"
	"cellport/internal/marvel"
	"cellport/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("marvelcell: ")
	images := flag.Int("images", 1, "number of images")
	width := flag.Int("width", 352, "frame width")
	height := flag.Int("height", 240, "frame height")
	scenario := flag.String("scenario", "multi-spe", "single-spe|multi-spe|multi-spe2|pipelined")
	variant := flag.String("variant", "optimized", "naive|optimized")
	validate := flag.Bool("validate", false, "compare every output with the sequential reference")
	showTrace := flag.Bool("trace", false, "print an activity Gantt chart (1 image recommended)")
	footprint := flag.Bool("footprint", false, "print the kernels' local-store budget plan and exit")
	seed := flag.Uint64("seed", 20070710, "workload seed")
	flag.Parse()

	var scen marvel.Scenario
	switch *scenario {
	case "single-spe":
		scen = marvel.SingleSPE
	case "multi-spe":
		scen = marvel.MultiSPE
	case "multi-spe2":
		scen = marvel.MultiSPE2
	case "pipelined":
		scen = marvel.Pipelined
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}
	var vr marvel.Variant
	switch *variant {
	case "naive":
		vr = marvel.Naive
	case "optimized":
		vr = marvel.Optimized
	default:
		log.Fatalf("unknown variant %q", *variant)
	}

	w := marvel.Workload{Images: *images, W: *width, H: *height, Seed: *seed}
	if *footprint {
		if err := marvel.RenderFootprints(os.Stdout, vr, w.W, w.H); err != nil {
			log.Fatal(err)
		}
		return
	}
	mcfg := cell.DefaultConfig()
	mcfg.MemorySize = 64 << 20
	var rec *trace.Recorder
	if *showTrace {
		rec = trace.NewRecorder()
		mcfg.Tracer = rec
	}

	res, err := marvel.RunPorted(marvel.PortedConfig{
		Workload:      w,
		Scenario:      scen,
		Variant:       vr,
		Validate:      *validate,
		MachineConfig: &mcfg,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MARVEL on simulated Cell B.E. — %s, %s kernels, %d image(s) %dx%d\n",
		scen, vr, w.Images, w.W, w.H)
	fmt.Printf("  one-time overhead : %s\n", res.OneTime)
	fmt.Printf("  per-image time    : %s\n", res.PerImage)
	fmt.Printf("  total             : %s\n", res.Total)
	if scen == marvel.SingleSPE {
		fmt.Println("  kernel round trips (per image):")
		for _, id := range marvel.KernelIDs {
			fmt.Printf("    %-12s %s\n", id, res.KernelTime[id])
		}
	}
	fmt.Println("  SPE busy time:")
	for i, b := range res.SPEBusy {
		if b > 0 {
			fmt.Printf("    SPE%d %s\n", i, b)
		}
	}

	ms, err := marvel.NewModelSet(w.Seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, host := range []*cost.Model{cost.NewPPE(), cost.NewDesktop(), cost.NewLaptop()} {
		ref := marvel.RunReference(host, w, ms)
		fmt.Printf("  speed-up vs %-8s per-image %6.2fx   whole-run %6.2fx\n",
			host.Name,
			ref.PerImage.Seconds()/res.PerImage.Seconds(),
			ref.Total.Seconds()/res.Total.Seconds())
	}

	if *validate {
		if res.ValidationErrors == 0 {
			fmt.Println("  validation: all outputs identical to the sequential reference")
		} else {
			fmt.Printf("  validation: %d MISMATCHES\n", res.ValidationErrors)
			os.Exit(1)
		}
	}
	if rec != nil {
		fmt.Println("\nschedule (C=compute D=dma-wait I=io):")
		if err := rec.Gantt(os.Stdout, 100); err != nil {
			log.Fatal(err)
		}
	}
}
