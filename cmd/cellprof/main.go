// Command cellprof runs the sequential MARVEL reference application under
// the §3.2 virtual-time profiler on a chosen host model and prints the
// flat profile, the call graph, and the kernel candidates the
// class-bounded clustering proposes — the step that identified the
// paper's five kernels.
//
//	cellprof -host ppe -images 10
//	cellprof -host desktop -min-coverage 0.05
package main

import (
	"flag"
	"fmt"
	"log"

	"cellport/internal/cost"
	"cellport/internal/marvel"
	"cellport/internal/profile"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cellprof: ")
	host := flag.String("host", "ppe", "ppe|desktop|laptop")
	images := flag.Int("images", 10, "number of images")
	width := flag.Int("width", 352, "frame width")
	height := flag.Int("height", 240, "frame height")
	minCov := flag.Float64("min-coverage", 0.02, "minimum self coverage to seed a kernel candidate")
	maxCand := flag.Int("max-candidates", 8, "maximum kernel candidates (one per SPE)")
	seed := flag.Uint64("seed", 20070710, "workload seed")
	flag.Parse()

	var model *cost.Model
	switch *host {
	case "ppe":
		model = cost.NewPPE()
	case "desktop":
		model = cost.NewDesktop()
	case "laptop":
		model = cost.NewLaptop()
	default:
		log.Fatalf("unknown host %q", *host)
	}

	w := marvel.Workload{Images: *images, W: *width, H: *height, Seed: *seed}
	ms, err := marvel.NewModelSet(w.Seed)
	if err != nil {
		log.Fatal(err)
	}
	ref := marvel.RunReference(model, w, ms)

	fmt.Printf("reference MARVEL on %s — %d image(s) %dx%d\n\n", model.Name, w.Images, w.W, w.H)
	fmt.Print(ref.Profile.Report())

	fmt.Println("\ncall graph (by attributed time):")
	for _, e := range ref.Profile.Edges() {
		fmt.Printf("  %-28s -> %-28s %8d calls %12s\n", e.Caller, e.Callee, e.Calls, e.Time)
	}

	cands := ref.Profile.IdentifyKernels(profile.IdentifyOptions{
		MinCoreCoverage: *minCov,
		MaxCandidates:   *maxCand,
	})
	fmt.Printf("\nkernel candidates (core coverage >= %.1f%%, clusters bounded by class):\n", *minCov*100)
	for i, c := range cands {
		fmt.Printf("  %d. class %-18s coverage %5.1f%%  core %s\n", i+1, c.Class, c.Coverage*100, c.Core)
		for _, m := range c.Methods {
			fmt.Printf("       %s\n", m)
		}
	}
	fmt.Printf("\nextraction+detection coverage of this run: %.1f%%\n", ref.ProcessingCoverage()*100)
}
