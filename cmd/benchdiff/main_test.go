package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseDoc = `{
  "total_wall_ms": 100,
  "experiments": {
    "serve": {"wall_ms": 50, "data": {"estimator": {"served": 60, "late": 2}, "round_robin": {"served": 50}}},
    "fig7": {"wall_ms": 40, "data": [{"n": 1, "speedup": 3.5}, {"n": 2, "speedup": 5.1}]}
  }
}`

// TestBenchdiffMatrix is the comparison contract: identical data passes,
// wall-clock noise passes, a big-and-slow run fails, data drift warns
// (or fails under -strict) with per-path diffs, and the config section
// never matters.
func TestBenchdiffMatrix(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json", baseDoc)

	cases := []struct {
		name    string
		doc     string
		args    []string
		status  int
		outWant []string
	}{
		{
			"identical", baseDoc, nil, 0,
			[]string{"benchdiff: OK"},
		},
		{
			"config ignored",
			strings.Replace(baseDoc, `"total_wall_ms": 100`, `"config": {"gomaxprocs": 64}, "total_wall_ms": 900`, 1),
			nil, 0,
			[]string{"benchdiff: OK"},
		},
		{
			"wall noise under floor",
			strings.Replace(baseDoc, `"wall_ms": 50`, `"wall_ms": 140`, 1),
			nil, 0,
			[]string{"benchdiff: OK"},
		},
		{
			"wall regression",
			strings.Replace(baseDoc, `"wall_ms": 50`, `"wall_ms": 250`, 1),
			nil, 1,
			[]string{"WALL serve: 50.0 ms -> 250.0 ms", "FAIL"},
		},
		{
			"wall regression under custom factor",
			strings.Replace(baseDoc, `"wall_ms": 50`, `"wall_ms": 250`, 1),
			[]string{"-factor", "10"}, 0,
			[]string{"benchdiff: OK"},
		},
		{
			"data drift warns",
			strings.Replace(baseDoc, `"served": 60`, `"served": 59`, 1),
			nil, 0,
			[]string{"DATA serve.estimator.served: 60 != 59", "bench-refresh"},
		},
		{
			"data drift strict",
			strings.Replace(baseDoc, `"served": 60`, `"served": 59`, 1),
			[]string{"-strict"}, 1,
			[]string{"DATA serve.estimator.served: 60 != 59"},
		},
		{
			"array drift",
			strings.Replace(baseDoc, `"speedup": 5.1`, `"speedup": 4.9`, 1),
			nil, 0,
			[]string{"DATA fig7[1].speedup: 5.1 != 4.9"},
		},
		{
			"missing experiment",
			strings.Replace(baseDoc, `"fig7"`, `"fig8"`, 1),
			nil, 0,
			[]string{"DATA fig7: only in", "DATA fig8: only in"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := write(t, dir, "fresh.json", tc.doc)
			var out, errw bytes.Buffer
			args := append(append([]string{}, tc.args...), base, fresh)
			if status := run(args, &out, &errw); status != tc.status {
				t.Fatalf("status %d, want %d\nout: %s\nerr: %s", status, tc.status, out.String(), errw.String())
			}
			for _, want := range tc.outWant {
				if !strings.Contains(out.String(), want) {
					t.Fatalf("output missing %q:\n%s", want, out.String())
				}
			}
		})
	}
}

// TestBenchdiffUsage pins the argument contract.
func TestBenchdiffUsage(t *testing.T) {
	var out, errw bytes.Buffer
	if status := run([]string{"one.json"}, &out, &errw); status != 2 {
		t.Fatalf("status %d, want 2", status)
	}
	if !strings.Contains(errw.String(), "usage: benchdiff") {
		t.Fatalf("stderr missing usage: %s", errw.String())
	}
}

// TestBenchdiffMissingFiles covers all four presence combinations: a
// side that does not exist reports "missing baseline" and fails only
// under -strict; it must never exit 2 (that is reserved for files that
// exist but cannot be parsed) and never read as a clean pass under
// -strict.
func TestBenchdiffMissingFiles(t *testing.T) {
	dir := t.TempDir()
	present := write(t, dir, "present.json", baseDoc)
	absent := filepath.Join(dir, "no-such.json")

	cases := []struct {
		name        string
		a, b        string
		strict      bool
		status      int
		wantMissing int
		wantOK      bool
	}{
		{"both present", present, present, false, 0, 0, true},
		{"both present strict", present, present, true, 0, 0, true},
		{"base missing", absent, present, false, 0, 1, false},
		{"fresh missing", present, absent, false, 0, 1, false},
		{"both missing", absent, absent, false, 0, 2, false},
		{"base missing strict", absent, present, true, 1, 1, false},
		{"fresh missing strict", present, absent, true, 1, 1, false},
		{"both missing strict", absent, absent, true, 1, 2, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			args := []string{}
			if tc.strict {
				args = append(args, "-strict")
			}
			args = append(args, tc.a, tc.b)
			if status := run(args, &out, &errw); status != tc.status {
				t.Fatalf("status %d, want %d\nout: %s\nerr: %s", status, tc.status, out.String(), errw.String())
			}
			if got := strings.Count(out.String(), "missing baseline\n"); got != tc.wantMissing {
				t.Fatalf("%d 'missing baseline' lines, want %d:\n%s", got, tc.wantMissing, out.String())
			}
			if ok := strings.Contains(out.String(), "benchdiff: OK"); ok != tc.wantOK {
				t.Fatalf("OK presence = %v, want %v:\n%s", ok, tc.wantOK, out.String())
			}
		})
	}
}

// TestBenchdiffMalformedStaysHard pins that a file which exists but does
// not parse is still exit 2 — distinct from the missing-file path.
func TestBenchdiffMalformedStaysHard(t *testing.T) {
	dir := t.TempDir()
	good := write(t, dir, "good.json", baseDoc)
	bad := write(t, dir, "bad.json", "{truncated")
	var out, errw bytes.Buffer
	if status := run([]string{good, bad}, &out, &errw); status != 2 {
		t.Fatalf("malformed fresh: status %d, want 2\nout: %s", status, out.String())
	}
}

// TestBenchdiffSkipsMeasuredKeys pins the clock-domain rule for
// baselines: measured_* keys (host wall facts from -exp race) may
// differ freely — even under -strict — while the same change to an
// unprefixed key is divergence.
func TestBenchdiffSkipsMeasuredKeys(t *testing.T) {
	const raceDoc = `{
  "total_wall_ms": 100,
  "experiments": {
    "race": {"wall_ms": 50, "data": {"points": [{"k": 2, "sim_speedup": 1.1, "measured_wall_ns": 12345, "measured_speedup": 1.2}], "measured_workers": 2}}
  }
}`
	dir := t.TempDir()
	base := write(t, dir, "base.json", raceDoc)

	moved := strings.Replace(raceDoc, `"measured_wall_ns": 12345`, `"measured_wall_ns": 99999`, 1)
	moved = strings.Replace(moved, `"measured_workers": 2`, `"measured_workers": 16`, 1)
	fresh := write(t, dir, "fresh.json", moved)
	var out, errw bytes.Buffer
	if status := run([]string{"-strict", base, fresh}, &out, &errw); status != 0 {
		t.Fatalf("measured_ drift failed -strict (status %d):\n%s", status, out.String())
	}
	if !strings.Contains(out.String(), "benchdiff: OK") {
		t.Fatalf("measured_ drift not reported OK:\n%s", out.String())
	}

	drifted := strings.Replace(raceDoc, `"sim_speedup": 1.1`, `"sim_speedup": 1.3`, 1)
	fresh2 := write(t, dir, "fresh2.json", drifted)
	out.Reset()
	if status := run([]string{"-strict", base, fresh2}, &out, &errw); status != 1 {
		t.Fatalf("sim drift passed -strict (status %d):\n%s", status, out.String())
	}
	if !strings.Contains(out.String(), "sim_speedup") {
		t.Fatalf("diff does not name the drifted key:\n%s", out.String())
	}
}
