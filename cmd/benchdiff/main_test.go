package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseDoc = `{
  "total_wall_ms": 100,
  "experiments": {
    "serve": {"wall_ms": 50, "data": {"estimator": {"served": 60, "late": 2}, "round_robin": {"served": 50}}},
    "fig7": {"wall_ms": 40, "data": [{"n": 1, "speedup": 3.5}, {"n": 2, "speedup": 5.1}]}
  }
}`

// TestBenchdiffMatrix is the comparison contract: identical data passes,
// wall-clock noise passes, a big-and-slow run fails, data drift warns
// (or fails under -strict) with per-path diffs, and the config section
// never matters.
func TestBenchdiffMatrix(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json", baseDoc)

	cases := []struct {
		name    string
		doc     string
		args    []string
		status  int
		outWant []string
	}{
		{
			"identical", baseDoc, nil, 0,
			[]string{"benchdiff: OK"},
		},
		{
			"config ignored",
			strings.Replace(baseDoc, `"total_wall_ms": 100`, `"config": {"gomaxprocs": 64}, "total_wall_ms": 900`, 1),
			nil, 0,
			[]string{"benchdiff: OK"},
		},
		{
			"wall noise under floor",
			strings.Replace(baseDoc, `"wall_ms": 50`, `"wall_ms": 140`, 1),
			nil, 0,
			[]string{"benchdiff: OK"},
		},
		{
			"wall regression",
			strings.Replace(baseDoc, `"wall_ms": 50`, `"wall_ms": 250`, 1),
			nil, 1,
			[]string{"WALL serve: 50.0 ms -> 250.0 ms", "FAIL"},
		},
		{
			"wall regression under custom factor",
			strings.Replace(baseDoc, `"wall_ms": 50`, `"wall_ms": 250`, 1),
			[]string{"-factor", "10"}, 0,
			[]string{"benchdiff: OK"},
		},
		{
			"data drift warns",
			strings.Replace(baseDoc, `"served": 60`, `"served": 59`, 1),
			nil, 0,
			[]string{"DATA serve.estimator.served: 60 != 59", "bench-refresh"},
		},
		{
			"data drift strict",
			strings.Replace(baseDoc, `"served": 60`, `"served": 59`, 1),
			[]string{"-strict"}, 1,
			[]string{"DATA serve.estimator.served: 60 != 59"},
		},
		{
			"array drift",
			strings.Replace(baseDoc, `"speedup": 5.1`, `"speedup": 4.9`, 1),
			nil, 0,
			[]string{"DATA fig7[1].speedup: 5.1 != 4.9"},
		},
		{
			"missing experiment",
			strings.Replace(baseDoc, `"fig7"`, `"fig8"`, 1),
			nil, 0,
			[]string{"DATA fig7: only in", "DATA fig8: only in"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := write(t, dir, "fresh.json", tc.doc)
			var out, errw bytes.Buffer
			args := append(append([]string{}, tc.args...), base, fresh)
			if status := run(args, &out, &errw); status != tc.status {
				t.Fatalf("status %d, want %d\nout: %s\nerr: %s", status, tc.status, out.String(), errw.String())
			}
			for _, want := range tc.outWant {
				if !strings.Contains(out.String(), want) {
					t.Fatalf("output missing %q:\n%s", want, out.String())
				}
			}
		})
	}
}

// TestBenchdiffUsage pins the argument contract.
func TestBenchdiffUsage(t *testing.T) {
	var out, errw bytes.Buffer
	if status := run([]string{"one.json"}, &out, &errw); status != 2 {
		t.Fatalf("status %d, want 2", status)
	}
	if !strings.Contains(errw.String(), "usage: benchdiff") {
		t.Fatalf("stderr missing usage: %s", errw.String())
	}
	if status := run([]string{"missing-a.json", "missing-b.json"}, &out, &errw); status != 2 {
		t.Fatalf("missing files: status %d, want 2", status)
	}
}
