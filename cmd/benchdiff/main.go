// Command benchdiff compares two paperbench JSON sidecars — a committed
// baseline and a freshly generated run:
//
//	benchdiff bench/BENCH_serve.json fresh/BENCH_serve.json
//
// The config section is ignored (it records host facts like GOMAXPROCS).
// Experiment data is compared exactly and any divergence is printed as a
// per-path diff, but only a wall-clock regression fails the comparison:
// the new run must not exceed -factor (default 2×) times the baseline's
// wall time, with an absolute -floor (default 100 ms) below which noise
// is never a regression. Data divergence means the committed baseline is
// stale — regenerate it with `paperbench -bench-refresh` — and -strict
// turns that into a failure too.
//
// A side that does not exist on disk (a baseline not yet committed, or a
// fresh run that was never produced) is reported as a missing baseline
// and treated like data divergence: informational by default, a failure
// under -strict. A file that exists but does not parse is still a hard
// usage error (exit 2) — a truncated artifact must never look like a
// clean pass.
//
// Keys prefixed measured_ record host wall-clock facts (executor wall
// times, worker counts, speedup errors from `paperbench -exp race`) and
// are skipped during data comparison, like the per-experiment wall_ms:
// they legitimately differ between machines.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"reflect"
	"sort"
	"strings"
)

type entry struct {
	WallMS float64 `json:"wall_ms"`
	Epochs uint64  `json:"epochs"`
	Data   any     `json:"data"`
}

// epochNote renders the epoch-count column for experiments that report
// one (serve): barrier regressions show up in the diff artifact even
// when data and wall time are fine.
func epochNote(b, f entry) string {
	if b.Epochs == 0 && f.Epochs == 0 {
		return ""
	}
	return fmt.Sprintf(", epochs %d -> %d", b.Epochs, f.Epochs)
}

type doc struct {
	TotalWallMS float64          `json:"total_wall_ms"`
	Experiments map[string]entry `json:"experiments"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func load(path string) (*doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.Experiments == nil {
		return nil, fmt.Errorf("%s: no experiments section", path)
	}
	return &d, nil
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(errw)
	strict := fs.Bool("strict", false, "fail on experiment-data divergence too, not just wall-clock regressions")
	factor := fs.Float64("factor", 2, "fail when new wall time exceeds this multiple of the baseline")
	floor := fs.Float64("floor", 100, "never fail on wall-time growth below this many milliseconds")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(errw, "usage: benchdiff [-strict] [-factor F] [-floor MS] baseline.json new.json")
		return 2
	}
	base, berr := load(fs.Arg(0))
	fresh, ferr := load(fs.Arg(1))
	// A side that simply isn't there is a staleness condition, not a
	// crash: report every absent file, then gate on -strict. Any other
	// load error (unreadable, malformed JSON, no experiments section)
	// stays a hard usage error.
	missing := 0
	for _, side := range []struct {
		err  error
		path string
	}{{berr, fs.Arg(0)}, {ferr, fs.Arg(1)}} {
		if errors.Is(side.err, iofs.ErrNotExist) {
			missing++
			fmt.Fprintf(out, "MISS %s: missing baseline\n", side.path)
		}
	}
	if missing > 0 {
		fmt.Fprintf(out, "benchdiff: %d missing baseline file(s) — regenerate with `paperbench -bench-refresh`\n", missing)
		if *strict {
			return 1
		}
		return 0
	}
	for _, err := range []error{berr, ferr} {
		if err != nil {
			fmt.Fprintf(errw, "benchdiff: %v\n", err)
			return 2
		}
	}

	names := map[string]bool{}
	for n := range base.Experiments {
		names[n] = true
	}
	for n := range fresh.Experiments {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	dataDiffs, regressions := 0, 0
	for _, name := range sorted {
		b, okB := base.Experiments[name]
		f, okF := fresh.Experiments[name]
		switch {
		case !okB:
			dataDiffs++
			fmt.Fprintf(out, "DATA %s: only in %s\n", name, fs.Arg(1))
			continue
		case !okF:
			dataDiffs++
			fmt.Fprintf(out, "DATA %s: only in %s\n", name, fs.Arg(0))
			continue
		}
		bd, fd := stripMeasured(b.Data), stripMeasured(f.Data)
		if !reflect.DeepEqual(bd, fd) {
			dataDiffs++
			diffAny(out, name, bd, fd)
		}
		if grow := f.WallMS - b.WallMS; f.WallMS > *factor*b.WallMS && grow > *floor {
			regressions++
			fmt.Fprintf(out, "WALL %s: %.1f ms -> %.1f ms (%.2fx, threshold %.1fx%s)\n",
				name, b.WallMS, f.WallMS, f.WallMS/b.WallMS, *factor, epochNote(b, f))
		} else {
			fmt.Fprintf(out, "ok   %s: %.1f ms -> %.1f ms%s\n", name, b.WallMS, f.WallMS, epochNote(b, f))
		}
	}

	switch {
	case regressions > 0:
		fmt.Fprintf(out, "benchdiff: FAIL — %d wall-clock regression(s), %d data divergence(s)\n", regressions, dataDiffs)
		return 1
	case dataDiffs > 0:
		fmt.Fprintf(out, "benchdiff: %d data divergence(s) — committed baseline is stale, run `paperbench -bench-refresh`\n", dataDiffs)
		if *strict {
			return 1
		}
		return 0
	default:
		fmt.Fprintln(out, "benchdiff: OK — data identical, wall times within threshold")
		return 0
	}
}

// measuredPrefix marks JSON keys that record host wall-clock facts
// (the race experiment's measured_* fields). They vary machine to
// machine by design, so they are invisible to the data comparison.
const measuredPrefix = "measured_"

// stripMeasured returns v with every measured_-prefixed map key
// removed, recursively.
func stripMeasured(v any) any {
	switch x := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, val := range x {
			if strings.HasPrefix(k, measuredPrefix) {
				continue
			}
			out[k] = stripMeasured(val)
		}
		return out
	case []any:
		out := make([]any, len(x))
		for i := range x {
			out[i] = stripMeasured(x[i])
		}
		return out
	default:
		return v
	}
}

// diffAny prints the leaf-level differences between two decoded JSON
// values, one line per diverging path, capped to keep CI logs readable.
func diffAny(out io.Writer, path string, a, b any) {
	const cap = 50
	n := 0
	var walk func(p string, a, b any)
	emit := func(p string, a, b any) {
		if n >= cap {
			return
		}
		n++
		if n == cap {
			fmt.Fprintf(out, "DATA %s: ... (more differences elided)\n", path)
			return
		}
		fmt.Fprintf(out, "DATA %s: %v != %v\n", p, compact(a), compact(b))
	}
	walk = func(p string, a, b any) {
		if n >= cap {
			return
		}
		am, aIsMap := a.(map[string]any)
		bm, bIsMap := b.(map[string]any)
		if aIsMap && bIsMap {
			keys := map[string]bool{}
			for k := range am {
				keys[k] = true
			}
			for k := range bm {
				keys[k] = true
			}
			sk := make([]string, 0, len(keys))
			for k := range keys {
				sk = append(sk, k)
			}
			sort.Strings(sk)
			for _, k := range sk {
				av, aOK := am[k]
				bv, bOK := bm[k]
				switch {
				case !aOK:
					emit(p+"."+k, "(absent)", bv)
				case !bOK:
					emit(p+"."+k, av, "(absent)")
				default:
					walk(p+"."+k, av, bv)
				}
			}
			return
		}
		as, aIsSlice := a.([]any)
		bs, bIsSlice := b.([]any)
		if aIsSlice && bIsSlice {
			if len(as) != len(bs) {
				emit(p, fmt.Sprintf("len %d", len(as)), fmt.Sprintf("len %d", len(bs)))
				return
			}
			for i := range as {
				walk(fmt.Sprintf("%s[%d]", p, i), as[i], bs[i])
			}
			return
		}
		if !reflect.DeepEqual(a, b) {
			emit(p, a, b)
		}
	}
	walk(path, a, b)
}

// compact renders a leaf value tersely for diff lines.
func compact(v any) string {
	b, err := json.Marshal(v)
	if err != nil || len(b) > 120 {
		return fmt.Sprintf("%.120v", v)
	}
	return string(b)
}
