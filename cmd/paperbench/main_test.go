package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFlagValidationMatrix pins the CLI contract: inconsistent flag
// combinations exit with status 2 and a one-line usage hint before any
// simulation runs, and valid combinations pass validation.
func TestFlagValidationMatrix(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		status  int
		errWant string // substring of stderr; "" means no error expected
	}{
		{"negative parallel", []string{"-parallel", "-2", "-exp", "eqns"}, 2, "-parallel must be >= 0"},
		{"unknown exp", []string{"-exp", "fig9"}, 2, `unknown experiment "fig9"`},
		{"unparseable flag", []string{"-bogus"}, 2, "flag provided but not defined"},
		{"faults flag with wrong exp", []string{"-exp", "table1", "-faults", "crash:spe=0,at=5ms"}, 2, "-faults only applies"},
		{"faultseed with wrong exp", []string{"-exp", "eqns", "-faultseed", "3"}, 2, "-faultseed only applies"},
		{"rate with wrong exp", []string{"-exp", "faults", "-rate", "2"}, 2, "-rate only applies"},
		{"blades with wrong exp", []string{"-exp", "fig6", "-blades", "4"}, 2, "-blades only applies"},
		{"deadline with wrong exp", []string{"-exp", "profile", "-deadline", "100"}, 2, "-deadline only applies"},
		{"servesed with wrong exp", []string{"-exp", "hosts", "-servesed", "9"}, 2, "-servesed only applies"},
		{"burst with wrong exp", []string{"-exp", "overhead", "-burst", "3"}, 2, "-burst only applies"},
		{"shards with wrong exp", []string{"-exp", "fig7", "-shards", "4"}, 2, "-shards only applies"},
		{"seqsim with wrong exp", []string{"-exp", "table1", "-seqsim"}, 2, "-seqsim only applies"},
		{"fullsim with wrong exp", []string{"-exp", "eqns", "-fullsim"}, 2, "-fullsim only applies"},
		{"negative shards", []string{"-exp", "serve", "-shards", "-1"}, 2, "-shards must be >= 0"},
		{"watchdog with wrong exp", []string{"-exp", "table1", "-watchdog", "250ms"}, 2, "-watchdog only applies"},
		{"watchdog bad duration", []string{"-exp", "faults", "-watchdog", "soon"}, 2, "bad -watchdog"},
		{"watchdog zero", []string{"-exp", "faults", "-watchdog", "0ms"}, 2, "-watchdog must be positive"},
		{"serve flags with chaos exp", []string{"-exp", "chaos", "-rate", "2", "-blades", "8", "-shards", "4"}, -1, ""},
		{"faults flag with chaos exp", []string{"-exp", "chaos", "-faults", "blade-crash:blade=0,at=5ms"}, -1, ""},
		{"watchdog with faults exp", []string{"-exp", "faults", "-watchdog", "250ms"}, -1, ""},
		{"watchdog with chaos exp", []string{"-exp", "chaos", "-watchdog", "1s"}, -1, ""},
		{"bench-refresh with exp", []string{"-bench-refresh", "-exp", "serve"}, 2, "incompatible with -exp"},
		{"bench-refresh with json", []string{"-bench-refresh", "-json", "x.json"}, 2, "incompatible with -json"},
		{"bench-refresh with profile", []string{"-bench-refresh", "-cpuprofile", "cpu.pb"}, 2, "incompatible with -cpuprofile"},
		{"bench-dir without refresh", []string{"-bench-dir", "bench"}, 2, "-bench-dir only applies"},
		{"faults flag with faults exp", []string{"-exp", "faults", "-faults", "crash:spe=0,at=5ms"}, -1, ""},
		{"faults flag with serve exp", []string{"-exp", "serve", "-faultseed", "3"}, -1, ""},
		{"serve flags with serve exp", []string{"-exp", "serve", "-rate", "2", "-blades", "2", "-deadline", "-1", "-servesed", "9", "-burst", "1"}, -1, ""},
		{"shard flags with serve exp", []string{"-exp", "serve", "-shards", "8", "-fullsim"}, -1, ""},
		{"seqsim with serve exp", []string{"-exp", "serve", "-seqsim"}, -1, ""},
		{"pools with wrong exp", []string{"-exp", "serve", "-pools", "4"}, 2, "-pools only applies"},
		{"autoscale with wrong exp", []string{"-exp", "chaos", "-autoscale=false"}, 2, "-autoscale only applies"},
		{"flash with wrong exp", []string{"-exp", "table1", "-flash=false"}, 2, "-flash only applies"},
		{"zero pools", []string{"-exp", "fleet", "-pools", "0"}, 2, "-pools must be >= 1"},
		{"negative pools", []string{"-exp", "fleet", "-pools", "-3"}, 2, "-pools must be >= 1"},
		{"fleet flags with fleet exp", []string{"-exp", "fleet", "-pools", "4", "-autoscale=false", "-flash=false"}, -1, ""},
		{"serve flags with fleet exp", []string{"-exp", "fleet", "-rate", "1.5", "-blades", "2", "-shards", "8", "-seqsim"}, -1, ""},
		{"faults flag with fleet exp", []string{"-exp", "fleet", "-faults", "blade-crash:blade=0,at=5ms"}, -1, ""},
		{"workers with wrong exp", []string{"-exp", "serve", "-workers", "2"}, 2, "-workers only applies"},
		{"reps with wrong exp", []string{"-exp", "fig7", "-reps", "3"}, 2, "-reps only applies"},
		{"negative workers", []string{"-exp", "race", "-workers", "-1"}, 2, "-workers must be >= 0"},
		{"negative reps", []string{"-exp", "race", "-reps", "-2"}, 2, "-reps must be >= 0"},
		{"race flags with race exp", []string{"-exp", "race", "-workers", "2", "-reps", "2"}, -1, ""},
		{"race flags with all", []string{"-workers", "4"}, -1, ""},
		{"serve flags with all", []string{"-rate", "2"}, -1, ""},
		{"bench-refresh alone", []string{"-bench-refresh", "-bench-dir", "fresh"}, -1, ""},
		{"profiles with any exp", []string{"-exp", "eqns", "-cpuprofile", "cpu.pb", "-memprofile", "mem.pb"}, -1, ""},
		{"plain quick eqns", []string{"-quick", "-exp", "eqns"}, -1, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var errw bytes.Buffer
			o, status := parseFlags(tc.args, &errw)
			if o == nil {
				if tc.status != 2 {
					t.Fatalf("parseFlags failed unexpectedly: %s", errw.String())
				}
				if status != 2 {
					t.Fatalf("parse failure returned status %d, want 2", status)
				}
				if !strings.Contains(errw.String(), tc.errWant) {
					t.Fatalf("stderr %q does not contain %q", errw.String(), tc.errWant)
				}
				return
			}
			msg := o.validate()
			if tc.status == 2 {
				if msg == "" {
					t.Fatalf("validate accepted %v, want rejection", tc.args)
				}
				if !strings.Contains(msg, tc.errWant) {
					t.Fatalf("message %q does not contain %q", msg, tc.errWant)
				}
			} else if msg != "" {
				t.Fatalf("validate rejected %v: %s", tc.args, msg)
			}
		})
	}
}

// TestRunRejectsBeforeExecuting checks the full run() path: a rejected
// flag matrix entry must exit 2 with the usage hint and produce no
// experiment output.
func TestRunRejectsBeforeExecuting(t *testing.T) {
	var out, errw bytes.Buffer
	if status := run([]string{"-exp", "table1", "-rate", "2"}, &out, &errw); status != 2 {
		t.Fatalf("status %d, want 2 (stderr: %s)", status, errw.String())
	}
	if !strings.Contains(errw.String(), usageHint) {
		t.Fatalf("stderr missing usage hint: %s", errw.String())
	}
	if out.Len() != 0 {
		t.Fatalf("rejected invocation still produced output: %s", out.String())
	}
}

// TestRunServeQuick smoke-tests the serve experiment end to end through
// the CLI: valid invocation, JSON sidecar with the expected report
// fields, zero exit.
func TestRunServeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full serve calibration")
	}
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	var out, errw bytes.Buffer
	args := []string{"-quick", "-exp", "serve", "-rate", "2", "-blades", "2", "-servesed", "7", "-json", jsonPath}
	if status := run(args, &out, &errw); status != 0 {
		t.Fatalf("status %d, stderr: %s", status, errw.String())
	}
	raw := readFileT(t, jsonPath)
	var doc struct {
		Experiments map[string]struct {
			Data struct {
				Estimator  map[string]json.RawMessage `json:"estimator"`
				RoundRobin map[string]json.RawMessage `json:"round_robin"`
			} `json:"data"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("sidecar did not parse: %v", err)
	}
	serve, ok := doc.Experiments["serve"]
	if !ok {
		t.Fatalf("sidecar missing serve experiment: %s", raw)
	}
	for _, rep := range []map[string]json.RawMessage{serve.Data.Estimator, serve.Data.RoundRobin} {
		for _, field := range []string{"policy", "offered_rps", "achieved_rps", "served", "shed_rejected",
			"latency_p50_fs", "latency_p95_fs", "latency_p99_fs", "per_blade"} {
			if _, ok := rep[field]; !ok {
				t.Fatalf("serve report missing %q: %s", field, raw)
			}
		}
	}
	if !strings.Contains(out.String(), "Serving layer") {
		t.Fatalf("table output missing serve render: %s", out.String())
	}
}

// TestRunRejectsDegenerateServeConfig checks a degenerate serve value
// that only the library-level Config.Validate can catch (a sub-unity
// -burst) exits 2 with the usage hint instead of reporting a failed run.
func TestRunRejectsDegenerateServeConfig(t *testing.T) {
	var out, errw bytes.Buffer
	args := []string{"-quick", "-exp", "serve", "-burst", "0.5"}
	if status := run(args, &out, &errw); status != 2 {
		t.Fatalf("status %d, want 2 (stderr: %s)", status, errw.String())
	}
	if !strings.Contains(errw.String(), "Burst") {
		t.Fatalf("stderr does not name the rejected field: %s", errw.String())
	}
	if !strings.Contains(errw.String(), usageHint) {
		t.Fatalf("stderr missing usage hint: %s", errw.String())
	}
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// experimentData decodes a sidecar and returns each experiment's data
// section (wall times stripped), for comparing runs that must agree on
// results but not on host timing.
func experimentData(t *testing.T, raw []byte) map[string]json.RawMessage {
	t.Helper()
	var doc struct {
		Experiments map[string]struct {
			Data json.RawMessage `json:"data"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("sidecar did not parse: %v", err)
	}
	out := map[string]json.RawMessage{}
	for name, e := range doc.Experiments {
		out[name] = e.Data
	}
	return out
}

// TestRunShardedMatchesSeqSimCLI checks the flag plumbing end to end: the
// sharded default, an explicit -shards 8, and the -seqsim reference loop
// must produce identical experiment data through the CLI.
func TestRunShardedMatchesSeqSimCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full serve calibration")
	}
	dir := t.TempDir()
	invoke := func(name string, extra ...string) map[string]json.RawMessage {
		jsonPath := filepath.Join(dir, name+".json")
		args := append([]string{"-quick", "-exp", "serve", "-rate", "2", "-blades", "2", "-servesed", "7",
			"-json", jsonPath}, extra...)
		var out, errw bytes.Buffer
		if status := run(args, &out, &errw); status != 0 {
			t.Fatalf("%s: status %d, stderr: %s", name, status, errw.String())
		}
		return experimentData(t, readFileT(t, jsonPath))
	}
	seq := invoke("seq", "-seqsim")
	for _, v := range []struct {
		name  string
		extra []string
	}{{"default", nil}, {"shards8", []string{"-shards", "8"}},
		{"lookahead-off", []string{"-lookahead=false"}},
		{"lookahead-off-shards8", []string{"-lookahead=false", "-shards", "8"}}} {
		got := invoke(v.name, v.extra...)
		if string(got["serve"]) != string(seq["serve"]) {
			t.Fatalf("%s diverged from -seqsim:\n got %s\nwant %s", v.name, got["serve"], seq["serve"])
		}
	}
}

// TestRunChaosMatchesSeqSimCLI checks the chaos experiment end to end:
// the seeded blade-lifecycle schedule must produce identical experiment
// data through the CLI on the sharded wheels and the sequential
// reference loop, and the chaos run's ledger must conserve.
func TestRunChaosMatchesSeqSimCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full serve calibration")
	}
	dir := t.TempDir()
	invoke := func(name string, extra ...string) map[string]json.RawMessage {
		jsonPath := filepath.Join(dir, name+".json")
		args := append([]string{"-quick", "-exp", "chaos", "-servesed", "7",
			"-json", jsonPath}, extra...)
		var out, errw bytes.Buffer
		if status := run(args, &out, &errw); status != 0 {
			t.Fatalf("%s: status %d, stderr: %s", name, status, errw.String())
		}
		return experimentData(t, readFileT(t, jsonPath))
	}
	seq := invoke("seq", "-seqsim")
	sharded := invoke("shards8", "-shards", "8")
	if string(sharded["chaos"]) != string(seq["chaos"]) {
		t.Fatalf("-shards 8 diverged from -seqsim:\n got %s\nwant %s", sharded["chaos"], seq["chaos"])
	}
	var res struct {
		Spec  string `json:"spec"`
		Chaos struct {
			Requests      int `json:"requests"`
			Served        int `json:"served"`
			ShedRejected  int `json:"shed_rejected"`
			ShedExpired   int `json:"shed_expired"`
			ShedRerouted  int `json:"shed_rerouted"`
			ShedExhausted int `json:"shed_exhausted"`
			BladeCrashes  int `json:"blade_crashes"`
		} `json:"chaos"`
	}
	if err := json.Unmarshal(seq["chaos"], &res); err != nil {
		t.Fatalf("chaos data did not parse: %v", err)
	}
	if res.Spec == "" || res.Chaos.BladeCrashes == 0 {
		t.Fatalf("chaos run fired no blade crash: %s", seq["chaos"])
	}
	sum := res.Chaos.Served + res.Chaos.ShedRejected + res.Chaos.ShedExpired +
		res.Chaos.ShedRerouted + res.Chaos.ShedExhausted
	if sum != res.Chaos.Requests {
		t.Fatalf("chaos ledger leaks: %d != %d requests", sum, res.Chaos.Requests)
	}
}

// TestRunFleetMatchesSeqSimCLI checks the fleet experiment end to end:
// the routed, autoscaled fleet under flash-crowd load must produce
// identical experiment data through the CLI on the sharded wheels and
// the sequential reference loop, the six-term ledger must conserve, and
// the autoscaler must demonstrably drain off-peak.
func TestRunFleetMatchesSeqSimCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full serve calibration")
	}
	dir := t.TempDir()
	invoke := func(name string, extra ...string) map[string]json.RawMessage {
		jsonPath := filepath.Join(dir, name+".json")
		args := append([]string{"-quick", "-exp", "fleet", "-pools", "4", "-blades", "2",
			"-rate", "1.5", "-servesed", "7", "-json", jsonPath}, extra...)
		var out, errw bytes.Buffer
		if status := run(args, &out, &errw); status != 0 {
			t.Fatalf("%s: status %d, stderr: %s", name, status, errw.String())
		}
		if !strings.Contains(out.String(), "Fleet-scale serving") {
			t.Fatalf("%s: table output missing fleet render: %s", name, out.String())
		}
		return experimentData(t, readFileT(t, jsonPath))
	}
	seq := invoke("seq", "-seqsim")
	sharded := invoke("shards8", "-shards", "8")
	if string(sharded["fleet"]) != string(seq["fleet"]) {
		t.Fatalf("-shards 8 diverged from -seqsim:\n got %s\nwant %s", sharded["fleet"], seq["fleet"])
	}
	var res struct {
		Fleet struct {
			Requests      int `json:"requests"`
			Served        int `json:"served"`
			Late          int `json:"late"`
			ShedRejected  int `json:"shed_rejected"`
			ShedExpired   int `json:"shed_expired"`
			ShedRerouted  int `json:"shed_rerouted"`
			ShedExhausted int `json:"shed_exhausted"`
			ShedGlobal    int `json:"shed_global"`
			Stats         struct {
				Pools      int `json:"pools"`
				ActiveMin  int `json:"active_min"`
				ScaleDowns int `json:"scale_downs"`
			} `json:"fleet"`
		} `json:"fleet"`
		GoodputFleet  int `json:"goodput_fleet"`
		GoodputSingle int `json:"goodput_single"`
	}
	if err := json.Unmarshal(seq["fleet"], &res); err != nil {
		t.Fatalf("fleet data did not parse: %v", err)
	}
	f := res.Fleet
	sum := f.Served + f.ShedRejected + f.ShedExpired + f.ShedRerouted + f.ShedExhausted + f.ShedGlobal
	if sum != f.Requests {
		t.Fatalf("fleet ledger leaks: %d != %d requests", sum, f.Requests)
	}
	if f.Stats.Pools != 4 {
		t.Fatalf("fleet ran %d pools, want 4", f.Stats.Pools)
	}
	if f.Stats.ScaleDowns == 0 || f.Stats.ActiveMin >= f.Stats.Pools {
		t.Fatalf("autoscaler never drained: %s", seq["fleet"])
	}
	if res.GoodputFleet <= res.GoodputSingle {
		t.Fatalf("fleet goodput %d does not beat the single pool %d", res.GoodputFleet, res.GoodputSingle)
	}
}

// TestRunProfilesWritten checks -cpuprofile/-memprofile produce non-empty
// pprof artifacts without perturbing the run's exit status.
func TestRunProfilesWritten(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")
	var out, errw bytes.Buffer
	args := []string{"-quick", "-exp", "eqns", "-cpuprofile", cpu, "-memprofile", mem}
	if status := run(args, &out, &errw); status != 0 {
		t.Fatalf("status %d, stderr: %s", status, errw.String())
	}
	for _, p := range []string{cpu, mem} {
		if b := readFileT(t, p); len(b) == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestRunBenchRefresh checks -bench-refresh regenerates both committed
// baselines into the requested directory with the expected experiments.
func TestRunBenchRefresh(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full baseline matrix")
	}
	dir := t.TempDir()
	var out, errw bytes.Buffer
	if status := run([]string{"-bench-refresh", "-bench-dir", dir}, &out, &errw); status != 0 {
		t.Fatalf("status %d, stderr: %s", status, errw.String())
	}
	serveData := experimentData(t, readFileT(t, filepath.Join(dir, "BENCH_serve.json")))
	if _, ok := serveData["serve"]; !ok {
		t.Fatalf("BENCH_serve.json missing serve experiment: %v", serveData)
	}
	sweepData := experimentData(t, readFileT(t, filepath.Join(dir, "BENCH_sweep.json")))
	if _, ok := sweepData["fig7"]; !ok {
		t.Fatalf("BENCH_sweep.json missing fig7 experiment: %v", sweepData)
	}
	fleetData := experimentData(t, readFileT(t, filepath.Join(dir, "BENCH_fleet.json")))
	if _, ok := fleetData["fleet"]; !ok {
		t.Fatalf("BENCH_fleet.json missing fleet experiment: %v", fleetData)
	}
	raceData := experimentData(t, readFileT(t, filepath.Join(dir, "BENCH_race.json")))
	if _, ok := raceData["race"]; !ok {
		t.Fatalf("BENCH_race.json missing race experiment: %v", raceData)
	}
}

// TestRunRaceQuick smoke-tests the estimator race end to end through
// the CLI: the sidecar carries the per-point error report with the
// deterministic and measured halves split by the measured_ prefix.
func TestRunRaceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real kernel execution")
	}
	jsonPath := filepath.Join(t.TempDir(), "race.json")
	var out, errw bytes.Buffer
	args := []string{"-quick", "-exp", "race", "-workers", "2", "-reps", "1", "-json", jsonPath}
	if status := run(args, &out, &errw); status != 0 {
		t.Fatalf("status %d, stderr: %s", status, errw.String())
	}
	raw := readFileT(t, jsonPath)
	var doc struct {
		Experiments map[string]struct {
			Data struct {
				Points        []map[string]json.RawMessage `json:"points"`
				AllTableMatch bool                         `json:"all_table_match"`
				AllBitExact   bool                         `json:"all_bit_exact"`
			} `json:"data"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("sidecar did not parse: %v", err)
	}
	race, ok := doc.Experiments["race"]
	if !ok {
		t.Fatalf("sidecar missing race experiment: %s", raw)
	}
	if !race.Data.AllBitExact || !race.Data.AllTableMatch {
		t.Fatalf("race run lost its deterministic guarantees: %s", raw)
	}
	if len(race.Data.Points) == 0 {
		t.Fatalf("race report has no points: %s", raw)
	}
	for _, field := range []string{"scheme", "k", "sim_service", "est_service", "sim_speedup", "table_match",
		"measured_wall_ns", "measured_speedup", "measured_rel_err"} {
		if _, ok := race.Data.Points[0][field]; !ok {
			t.Fatalf("race point missing %q: %s", field, raw)
		}
	}
	if !strings.Contains(out.String(), "Estimator race") {
		t.Fatalf("table output missing race render: %s", out.String())
	}
}
