// Command paperbench regenerates every quantitative artifact of the
// paper's evaluation and prints paper-vs-measured comparisons:
//
//	paperbench -exp all          # everything (default)
//	paperbench -exp table1       # Table 1: kernel speed-ups + coverage
//	paperbench -exp fig6         # Figure 6: kernel times on 4 targets
//	paperbench -exp fig7         # Figure 7: app speed-ups, 1/10/50 images
//	paperbench -exp eqns         # §4.2 estimator validation
//	paperbench -exp profile      # §5.2 profiling reproduction
//	paperbench -exp naive        # §5.3 pre-optimization speed-ups
//	paperbench -exp hosts        # §5.2 reference-machine ratios
//	paperbench -quick            # reduced frames/sets for a fast pass
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cellport/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|table1|fig6|fig7|eqns|profile|naive|hosts|scaling|pipeline|overhead")
	quick := flag.Bool("quick", false, "reduced frame size and image sets")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	seed := flag.Uint64("seed", 20070710, "workload seed")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	out := os.Stdout
	jsonDoc := map[string]any{}

	run := func(name string, fn func() (any, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		if !*asJSON {
			fmt.Fprintf(out, "==== %s ", name)
			for i := len(name); i < 68; i++ {
				fmt.Fprint(out, "=")
			}
			fmt.Fprintln(out)
		}
		data, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *asJSON {
			jsonDoc[name] = data
		} else {
			fmt.Fprintln(out)
		}
	}

	run("table1", func() (any, error) {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return nil, err
		}
		if !*asJSON {
			experiments.RenderTable1(out, rows)
		}
		return rows, nil
	})
	run("naive", func() (any, error) {
		rows, err := experiments.NaiveSpeedups(cfg)
		if err != nil {
			return nil, err
		}
		if !*asJSON {
			experiments.RenderNaive(out, rows)
		}
		return rows, nil
	})
	run("fig6", func() (any, error) {
		rows, err := experiments.Fig6(cfg)
		if err != nil {
			return nil, err
		}
		if !*asJSON {
			experiments.RenderFig6(out, rows)
		}
		return rows, nil
	})
	run("fig7", func() (any, error) {
		r, err := experiments.Fig7(cfg)
		if err != nil {
			return nil, err
		}
		if !*asJSON {
			experiments.RenderFig7(out, r)
		}
		return r, nil
	})
	run("eqns", func() (any, error) {
		r, err := experiments.Eqns(cfg)
		if err != nil {
			return nil, err
		}
		if !*asJSON {
			experiments.RenderEqns(out, r)
		}
		return r, nil
	})
	run("profile", func() (any, error) {
		r, err := experiments.ProfileExp(cfg)
		if err != nil {
			return nil, err
		}
		if !*asJSON {
			experiments.RenderProfile(out, r)
		}
		return r, nil
	})
	run("hosts", func() (any, error) {
		r, err := experiments.HostsExp(cfg)
		if err != nil {
			return nil, err
		}
		if !*asJSON {
			experiments.RenderHosts(out, r)
		}
		return r, nil
	})
	run("scaling", func() (any, error) {
		rows, err := experiments.Scaling(cfg)
		if err != nil {
			return nil, err
		}
		if !*asJSON {
			experiments.RenderScaling(out, rows)
		}
		return rows, nil
	})
	run("pipeline", func() (any, error) {
		rows, err := experiments.Pipeline(cfg)
		if err != nil {
			return nil, err
		}
		if !*asJSON {
			experiments.RenderPipeline(out, rows)
		}
		return rows, nil
	})
	run("overhead", func() (any, error) {
		rows, err := experiments.Overhead(cfg)
		if err != nil {
			return nil, err
		}
		if !*asJSON {
			experiments.RenderOverhead(out, rows)
		}
		return rows, nil
	})

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonDoc); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: encoding JSON: %v\n", err)
			os.Exit(1)
		}
	}
}
