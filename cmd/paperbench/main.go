// Command paperbench regenerates every quantitative artifact of the
// paper's evaluation and prints paper-vs-measured comparisons:
//
//	paperbench -exp all          # everything (default)
//	paperbench -exp table1       # Table 1: kernel speed-ups + coverage
//	paperbench -exp fig6         # Figure 6: kernel times on 4 targets
//	paperbench -exp fig7         # Figure 7: app speed-ups, 1/10/50 images
//	paperbench -exp eqns         # §4.2 estimator validation
//	paperbench -exp profile      # §5.2 profiling reproduction
//	paperbench -exp naive        # §5.3 pre-optimization speed-ups
//	paperbench -exp hosts        # §5.2 reference-machine ratios
//	paperbench -exp faults       # fault injection + self-healing runtime
//	paperbench -quick            # reduced frames/sets for a fast pass
//	paperbench -parallel 4       # worker pool for independent runs
//	paperbench -nocache          # recompute artifacts per run (cold path)
//	paperbench -json out.json    # machine-readable sidecar ("-" = stdout)
//	paperbench -trace out.json   # Chrome trace (load at ui.perfetto.dev)
//	paperbench -metrics m.json   # flat per-run metrics dump
//	paperbench -faults <spec>    # explicit fault plan for -exp faults
//	                             # (e.g. "crash:spe=0,at=5ms;dma-drop:spe=1,n=3")
//	paperbench -faultseed 7      # seed-derived fault plan for -exp faults
//
// Independent simulation runs fan out over -parallel workers (default:
// GOMAXPROCS); virtual-time results are identical at any setting. The
// -json file records per-experiment host wall time alongside the
// virtual-time data, so successive checkouts can track a perf trajectory.
//
// All output files are written atomically (temp file + rename), so an
// error mid-run can never leave a truncated artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"cellport/internal/atomicfile"
	"cellport/internal/experiments"
)

// jsonEntry is one experiment's machine-readable record.
type jsonEntry struct {
	WallMS float64 `json:"wall_ms"`
	Data   any     `json:"data"`
}

func main() {
	exp := flag.String("exp", "all", "experiment: all|table1|fig6|fig7|eqns|profile|naive|hosts|scaling|pipeline|overhead|faults")
	quick := flag.Bool("quick", false, "reduced frame size and image sets")
	jsonPath := flag.String("json", "", "write machine-readable results to this path (\"-\" for stdout)")
	seed := flag.Uint64("seed", 20070710, "workload seed")
	parallel := flag.Int("parallel", 0, "worker pool size for independent runs (0 = GOMAXPROCS, 1 = sequential)")
	nocache := flag.Bool("nocache", false, "recompute workload artifacts for every run (cold-path calibration)")
	faultSpec := flag.String("faults", "", "explicit fault plan for -exp faults (kind:spe=N,...;... — see internal/fault)")
	faultSeed := flag.Uint64("faultseed", 0, "seed for a derived fault plan when -faults is empty (0 = seed 1)")
	tracePath := flag.String("trace", "", "write a Chrome trace (Perfetto-loadable) of every ported run to this path")
	metricsPath := flag.String("metrics", "", "write per-run metrics JSON to this path")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Parallel: *parallel, NoCache: *nocache,
		FaultSpec: *faultSpec, FaultSeed: *faultSeed}
	if *tracePath != "" || *metricsPath != "" {
		cfg.Collect = &experiments.Collector{}
	}
	out := os.Stdout
	tables := *jsonPath != "-" // "-" routes JSON to stdout instead of tables
	jsonDoc := map[string]jsonEntry{}
	start := time.Now()
	matched := false

	run := func(name string, fn func() (any, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		matched = true
		if tables {
			fmt.Fprintf(out, "==== %s ", name)
			for i := len(name); i < 68; i++ {
				fmt.Fprint(out, "=")
			}
			fmt.Fprintln(out)
		}
		t0 := time.Now()
		data, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		jsonDoc[name] = jsonEntry{WallMS: float64(time.Since(t0).Microseconds()) / 1000, Data: data}
		if tables {
			fmt.Fprintln(out)
		}
	}

	render := func(draw func()) {
		if tables {
			draw()
		}
	}

	run("table1", func() (any, error) {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderTable1(out, rows) })
		return rows, nil
	})
	run("naive", func() (any, error) {
		rows, err := experiments.NaiveSpeedups(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderNaive(out, rows) })
		return rows, nil
	})
	run("fig6", func() (any, error) {
		rows, err := experiments.Fig6(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderFig6(out, rows) })
		return rows, nil
	})
	run("fig7", func() (any, error) {
		r, err := experiments.Fig7(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderFig7(out, r) })
		return r, nil
	})
	run("eqns", func() (any, error) {
		r, err := experiments.Eqns(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderEqns(out, r) })
		return r, nil
	})
	run("profile", func() (any, error) {
		r, err := experiments.ProfileExp(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderProfile(out, r) })
		return r, nil
	})
	run("hosts", func() (any, error) {
		r, err := experiments.HostsExp(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderHosts(out, r) })
		return r, nil
	})
	run("scaling", func() (any, error) {
		rows, err := experiments.Scaling(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderScaling(out, rows) })
		return rows, nil
	})
	run("pipeline", func() (any, error) {
		rows, err := experiments.Pipeline(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderPipeline(out, rows) })
		return rows, nil
	})
	run("overhead", func() (any, error) {
		rows, err := experiments.Overhead(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderOverhead(out, rows) })
		return rows, nil
	})
	run("faults", func() (any, error) {
		r, err := experiments.FaultsExp(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderFaults(out, r) })
		return r, nil
	})

	if !matched {
		fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q (see -exp in -help)\n", *exp)
		os.Exit(2)
	}

	if *tracePath != "" {
		if err := atomicfile.WriteFile(*tracePath, cfg.Collect.WriteChromeTrace); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsPath != "" {
		if err := atomicfile.WriteFile(*metricsPath, cfg.Collect.WriteMetricsJSON); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
	}

	if *jsonPath == "" {
		return
	}
	doc := struct {
		Config struct {
			Quick    bool   `json:"quick"`
			Seed     uint64 `json:"seed"`
			Parallel int    `json:"parallel"`
			NoCache  bool   `json:"nocache"`
			MaxProcs int    `json:"gomaxprocs"`
		} `json:"config"`
		TotalWallMS float64              `json:"total_wall_ms"`
		Experiments map[string]jsonEntry `json:"experiments"`
	}{TotalWallMS: float64(time.Since(start).Microseconds()) / 1000, Experiments: jsonDoc}
	doc.Config.Quick = *quick
	doc.Config.Seed = *seed
	doc.Config.Parallel = *parallel
	doc.Config.NoCache = *nocache
	doc.Config.MaxProcs = runtime.GOMAXPROCS(0)

	writeDoc := func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	var err error
	if *jsonPath == "-" {
		err = writeDoc(os.Stdout)
	} else {
		err = atomicfile.WriteFile(*jsonPath, writeDoc)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}
}
