// Command paperbench regenerates every quantitative artifact of the
// paper's evaluation and prints paper-vs-measured comparisons:
//
//	paperbench -exp all          # everything (default)
//	paperbench -exp table1       # Table 1: kernel speed-ups + coverage
//	paperbench -exp fig6         # Figure 6: kernel times on 4 targets
//	paperbench -exp fig7         # Figure 7: app speed-ups, 1/10/50 images
//	paperbench -exp eqns         # §4.2 estimator validation
//	paperbench -exp profile      # §5.2 profiling reproduction
//	paperbench -exp naive        # §5.3 pre-optimization speed-ups
//	paperbench -exp hosts        # §5.2 reference-machine ratios
//	paperbench -exp faults       # fault injection + self-healing runtime
//	paperbench -exp serve        # multi-blade serving layer, estimator vs RR
//	paperbench -exp chaos        # blade lifecycle: seeded rolling restarts,
//	                             # crash/stall/drain, re-routing vs baseline
//	paperbench -exp fleet        # fleet-scale serving: routed blade pools +
//	                             # autoscaler vs a static single pool
//	paperbench -exp race         # run every calibration point for real on the
//	                             # work-stealing executor and report the
//	                             # estimator's error vs the wall clock
//	paperbench -quick            # reduced frames/sets for a fast pass
//	paperbench -parallel 4       # worker pool for independent runs
//	paperbench -nocache          # recompute artifacts per run (cold path)
//	paperbench -json out.json    # machine-readable sidecar ("-" = stdout)
//	paperbench -trace out.json   # Chrome trace (load at ui.perfetto.dev)
//	paperbench -metrics m.json   # flat per-run metrics dump
//	paperbench -faults <spec>    # explicit fault plan (-exp faults|serve|chaos)
//	                             # (e.g. "crash:spe=0,at=5ms;blade-crash:blade=1,at=2s")
//	paperbench -faultseed 7      # seed-derived fault plan (-exp faults|serve|chaos)
//	paperbench -watchdog 250ms   # supervision watchdog override (-exp faults|serve|chaos)
//	paperbench -rate 2.5         # serve: offered load, × estimated capacity
//	paperbench -blades 4         # serve: blade-pool size
//	paperbench -deadline 250     # serve: per-request deadline, virtual ms (<0 = none)
//	paperbench -servesed 7       # serve: arrival-stream seed
//	paperbench -burst 3          # serve: mean arrival burst size
//	paperbench -shards 8         # serve: workers driving the per-blade event
//	                             # wheels (0 = GOMAXPROCS; never affects results)
//	paperbench -seqsim           # serve: sequential reference loop instead of
//	                             # the sharded wheels (determinism oracle)
//	paperbench -lookahead=false  # serve: restore an epoch barrier per arrival
//	                             # instant (lookahead off; identical bytes)
//	paperbench -fullsim          # serve: re-simulate the machine behind every
//	                             # dispatch and fail on calibration divergence
//	paperbench -workers 2        # race: executor pool width (0 = GOMAXPROCS;
//	                             # wall times move, sim/est results never do)
//	paperbench -reps 3           # race: real-execution repetitions per point
//	                             # (fastest wall time wins)
//	paperbench -pools 4          # fleet: number of routed blade pools
//	paperbench -autoscale=false  # fleet: disarm the virtual-time autoscaler
//	paperbench -flash=false      # fleet: drop the flash-crowd windows (keep
//	                             # the diurnal sinusoid)
//	paperbench -cpuprofile F     # write a pprof CPU profile of the run
//	paperbench -memprofile F     # write a pprof allocation profile of the run
//	paperbench -bench-refresh    # regenerate the committed bench/ baselines
//	paperbench -bench-dir D      # target directory for -bench-refresh
//
// Independent simulation runs fan out over -parallel workers (default:
// GOMAXPROCS); virtual-time results are identical at any setting. The
// -json file records per-experiment host wall time alongside the
// virtual-time data, so successive checkouts can track a perf trajectory.
//
// Flags are validated before anything runs: a negative -parallel, an
// unknown -exp, or a flag aimed at an experiment that is not selected
// (e.g. -faults with -exp table1) exits with status 2 and a one-line
// usage hint, instead of silently ignoring the flag.
//
// All output files are written atomically (temp file + rename), so an
// error mid-run can never leave a truncated artifact.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"cellport/internal/atomicfile"
	"cellport/internal/experiments"
	"cellport/internal/fault"
	"cellport/internal/serve"
	"cellport/internal/sim"
)

// jsonEntry is one experiment's machine-readable record. Epochs (serve
// only) counts epoch-barrier rounds across the experiment's runs; like
// WallMS it describes the execution schedule, not the simulation, so it
// lives beside Data — byte-compare tooling that strips to Data (the CI
// smoke jobs, benchdiff's equality check) ignores it by construction.
type jsonEntry struct {
	WallMS float64 `json:"wall_ms"`
	Epochs uint64  `json:"epochs,omitempty"`
	Data   any     `json:"data"`
}

// experimentNames lists every -exp value, in execution order.
var experimentNames = []string{
	"table1", "naive", "fig6", "fig7", "eqns", "profile", "hosts",
	"scaling", "pipeline", "overhead", "faults", "serve", "chaos", "fleet",
	"race",
}

const usageHint = "usage: paperbench [-exp all|table1|naive|fig6|fig7|eqns|profile|hosts|scaling|pipeline|overhead|faults|serve|chaos|fleet|race] [-quick] [-parallel N] [-json F] [-trace F] [-metrics F] (run with -help for all flags)"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options is the parsed command line.
type options struct {
	exp         string
	quick       bool
	jsonPath    string
	seed        uint64
	parallel    int
	nocache     bool
	faultSpec   string
	faultSeed   uint64
	watchdog    string
	tracePath   string
	metricsPath string
	rate        float64
	blades      int
	deadline    float64
	serveSeed   uint64
	burst       float64
	shards      int
	seqSim      bool
	lookahead   bool
	fullSim     bool
	pools       int
	autoscale   bool
	flash       bool
	workers     int
	reps        int
	cpuProfile  string
	memProfile  string
	benchFresh  bool
	benchDir    string

	// watchdogDur is -watchdog parsed by validate (fault.ParseDuration).
	watchdogDur sim.Duration

	set map[string]bool // flags explicitly given on the command line
}

// parseFlags parses args; flag errors (including -help) return nil and
// the exit status to use.
func parseFlags(args []string, errw io.Writer) (*options, int) {
	o := &options{}
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fs.SetOutput(errw)
	fs.StringVar(&o.exp, "exp", "all", "experiment: all|table1|fig6|fig7|eqns|profile|naive|hosts|scaling|pipeline|overhead|faults|serve|chaos|fleet|race")
	fs.BoolVar(&o.quick, "quick", false, "reduced frame size and image sets")
	fs.StringVar(&o.jsonPath, "json", "", "write machine-readable results to this path (\"-\" for stdout)")
	fs.Uint64Var(&o.seed, "seed", 20070710, "workload seed")
	fs.IntVar(&o.parallel, "parallel", 0, "worker pool size for independent runs (0 = GOMAXPROCS, 1 = sequential)")
	fs.BoolVar(&o.nocache, "nocache", false, "recompute workload artifacts for every run (cold-path calibration)")
	fs.StringVar(&o.faultSpec, "faults", "", "explicit fault plan for -exp faults|serve|chaos (kind:spe=N,...;... — see internal/fault)")
	fs.Uint64Var(&o.faultSeed, "faultseed", 0, "seed for a derived fault plan when -faults is empty (0 = seed 1; -exp faults|serve|chaos)")
	fs.StringVar(&o.watchdog, "watchdog", "", "supervision watchdog timeout override, fault duration grammar e.g. 250ms (-exp faults|serve|chaos)")
	fs.StringVar(&o.tracePath, "trace", "", "write a Chrome trace (Perfetto-loadable) of every instrumented run to this path")
	fs.StringVar(&o.metricsPath, "metrics", "", "write per-run metrics JSON to this path")
	fs.Float64Var(&o.rate, "rate", 0, "serve: offered load as a multiple of estimated pool capacity (default 2)")
	fs.IntVar(&o.blades, "blades", 0, "serve: number of simulated Cell blades (default 3)")
	fs.Float64Var(&o.deadline, "deadline", 0, "serve: per-request deadline in virtual ms (0 = automatic, negative = none)")
	fs.Uint64Var(&o.serveSeed, "servesed", 0, "serve: arrival-stream seed (default 7)")
	fs.Float64Var(&o.burst, "burst", 0, "serve: mean arrival burst size (default 2)")
	fs.IntVar(&o.shards, "shards", 0, "serve: workers driving the per-blade event wheels (0 = GOMAXPROCS; never affects results)")
	fs.BoolVar(&o.seqSim, "seqsim", false, "serve: run the sequential reference event loop instead of the sharded wheels")
	fs.BoolVar(&o.lookahead, "lookahead", true, "serve: admit arrivals inside the conservative lookahead horizon without a barrier (-lookahead=false restores per-arrival barriers; results are byte-identical)")
	fs.BoolVar(&o.fullSim, "fullsim", false, "serve: re-simulate the full machine behind every dispatch (verified dispatch)")
	fs.IntVar(&o.pools, "pools", 4, "fleet: number of routed blade pools (each of -blades blades)")
	fs.BoolVar(&o.autoscale, "autoscale", true, "fleet: arm the virtual-time autoscaler (-autoscale=false for a static fleet)")
	fs.BoolVar(&o.flash, "flash", true, "fleet: add seeded flash-crowd windows to the diurnal load model")
	fs.IntVar(&o.workers, "workers", 0, "race: executor pool width for real execution (0 = GOMAXPROCS; never affects simulated results)")
	fs.IntVar(&o.reps, "reps", 0, "race: real-execution repetitions per point, fastest wall time wins (default 3)")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a pprof CPU profile of the run to this path")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a pprof allocation profile of the run to this path")
	fs.BoolVar(&o.benchFresh, "bench-refresh", false, "regenerate the committed benchmark baselines (BENCH_serve.json, BENCH_sweep.json, BENCH_fleet.json)")
	fs.StringVar(&o.benchDir, "bench-dir", "bench", "target directory for -bench-refresh")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil, 0
		}
		return nil, 2
	}
	o.set = map[string]bool{}
	fs.Visit(func(f *flag.Flag) { o.set[f.Name] = true })
	return o, 0
}

// validate rejects inconsistent flag combinations before anything runs.
// It returns an error message, or "" when the options are usable.
func (o *options) validate() string {
	if o.exp != "all" {
		known := false
		for _, name := range experimentNames {
			if o.exp == name {
				known = true
				break
			}
		}
		if !known {
			return fmt.Sprintf("unknown experiment %q", o.exp)
		}
	}
	if o.parallel < 0 {
		return fmt.Sprintf("-parallel must be >= 0, got %d", o.parallel)
	}
	expSelects := func(names ...string) bool {
		if o.exp == "all" {
			return true
		}
		for _, n := range names {
			if o.exp == n {
				return true
			}
		}
		return false
	}
	for _, f := range []string{"faults", "faultseed", "watchdog"} {
		if o.set[f] && !expSelects("faults", "serve", "chaos", "fleet") {
			return fmt.Sprintf("-%s only applies to -exp faults, serve, chaos or fleet, not -exp %s", f, o.exp)
		}
	}
	for _, f := range []string{"rate", "blades", "deadline", "servesed", "burst", "shards", "seqsim", "lookahead", "fullsim"} {
		if o.set[f] && !expSelects("serve", "chaos", "fleet") {
			return fmt.Sprintf("-%s only applies to -exp serve, chaos or fleet, not -exp %s", f, o.exp)
		}
	}
	for _, f := range []string{"pools", "autoscale", "flash"} {
		if o.set[f] && !expSelects("fleet") {
			return fmt.Sprintf("-%s only applies to -exp fleet, not -exp %s", f, o.exp)
		}
	}
	for _, f := range []string{"workers", "reps"} {
		if o.set[f] && !expSelects("race") {
			return fmt.Sprintf("-%s only applies to -exp race, not -exp %s", f, o.exp)
		}
	}
	if o.pools < 1 {
		return fmt.Sprintf("-pools must be >= 1, got %d", o.pools)
	}
	if o.workers < 0 {
		return fmt.Sprintf("-workers must be >= 0, got %d", o.workers)
	}
	if o.reps < 0 {
		return fmt.Sprintf("-reps must be >= 0, got %d", o.reps)
	}
	if o.set["watchdog"] {
		d, err := fault.ParseDuration(o.watchdog)
		if err != nil {
			return fmt.Sprintf("bad -watchdog: %v", err)
		}
		if d <= 0 {
			return fmt.Sprintf("-watchdog must be positive, got %q", o.watchdog)
		}
		o.watchdogDur = d
	}
	if o.shards < 0 {
		return fmt.Sprintf("-shards must be >= 0, got %d", o.shards)
	}
	if o.benchFresh {
		// The refresh runs a fixed invocation matrix; per-run flags would
		// silently not apply to it.
		for _, f := range []string{"exp", "json", "cpuprofile", "memprofile", "trace", "metrics"} {
			if o.set[f] {
				return fmt.Sprintf("-bench-refresh runs a fixed invocation set and is incompatible with -%s", f)
			}
		}
	}
	if o.set["bench-dir"] && !o.benchFresh {
		return "-bench-dir only applies with -bench-refresh"
	}
	return ""
}

// benchRefreshArgs lists the committed-baseline invocations. They match
// the CI smoke jobs argument-for-argument, so a local -bench-refresh and
// the CI artifact describe the same runs.
func benchRefreshArgs(dir string) [][]string {
	return [][]string{
		{"-quick", "-exp", "serve", "-blades", "3", "-rate", "2", "-servesed", "7",
			"-json", filepath.Join(dir, "BENCH_serve.json")},
		{"-quick", "-exp", "fig7", "-json", filepath.Join(dir, "BENCH_sweep.json")},
		{"-quick", "-exp", "fleet", "-pools", "4", "-blades", "2", "-rate", "1.5", "-servesed", "7",
			"-json", filepath.Join(dir, "BENCH_fleet.json")},
		// Worker count and rep count are pinned so the deterministic half of
		// the race baseline is reproducible anywhere; the measured_* keys
		// that do move between machines are skipped by benchdiff.
		{"-quick", "-exp", "race", "-workers", "2", "-reps", "2",
			"-json", filepath.Join(dir, "BENCH_race.json")},
	}
}

func run(args []string, out, errw io.Writer) int {
	o, status := parseFlags(args, errw)
	if o == nil {
		return status
	}
	if msg := o.validate(); msg != "" {
		fmt.Fprintf(errw, "paperbench: %s\n", msg)
		fmt.Fprintln(errw, usageHint)
		return 2
	}

	if o.benchFresh {
		if err := os.MkdirAll(o.benchDir, 0o755); err != nil {
			fmt.Fprintf(errw, "paperbench: %v\n", err)
			return 1
		}
		for _, sub := range benchRefreshArgs(o.benchDir) {
			fmt.Fprintf(out, "paperbench: refresh %s\n", strings.Join(sub, " "))
			if code := run(sub, out, errw); code != 0 {
				return code
			}
		}
		return 0
	}

	// The CPU profile streams into memory while the experiments run and is
	// committed atomically afterwards, like every other artifact.
	var cpuBuf bytes.Buffer
	if o.cpuProfile != "" {
		if err := pprof.StartCPUProfile(&cpuBuf); err != nil {
			fmt.Fprintf(errw, "paperbench: %v\n", err)
			return 1
		}
	}
	code := runExperiments(o, out, errw)
	if o.cpuProfile != "" {
		pprof.StopCPUProfile()
		if err := atomicfile.WriteFile(o.cpuProfile, func(w io.Writer) error {
			_, err := w.Write(cpuBuf.Bytes())
			return err
		}); err != nil {
			fmt.Fprintf(errw, "paperbench: %v\n", err)
			return 1
		}
	}
	if o.memProfile != "" {
		runtime.GC() // settle the heap so the allocs profile is complete
		if err := atomicfile.WriteFile(o.memProfile, func(w io.Writer) error {
			return pprof.Lookup("allocs").WriteTo(w, 0)
		}); err != nil {
			fmt.Fprintf(errw, "paperbench: %v\n", err)
			return 1
		}
	}
	return code
}

func runExperiments(o *options, out, errw io.Writer) int {
	cfg := experiments.Config{Quick: o.quick, Seed: o.seed, Parallel: o.parallel, NoCache: o.nocache,
		FaultSpec: o.faultSpec, FaultSeed: o.faultSeed, Watchdog: o.watchdogDur,
		Serve: experiments.ServeConfig{
			Blades:     o.blades,
			Rate:       o.rate,
			Burst:      o.burst,
			DeadlineMS: o.deadline,
			Seed:       o.serveSeed,
		},
		Fleet: experiments.FleetConfig{
			Pools:     o.pools,
			Autoscale: o.autoscale,
			Flash:     o.flash,
		},
		Race: experiments.RaceConfig{
			Workers: o.workers,
			Reps:    o.reps,
		},
		Shards:      o.shards,
		SeqSim:      o.seqSim,
		NoLookahead: !o.lookahead,
		FullSim:     o.fullSim,
	}
	if o.tracePath != "" || o.metricsPath != "" {
		cfg.Collect = &experiments.Collector{}
	}
	tables := o.jsonPath != "-" // "-" routes JSON to stdout instead of tables
	jsonDoc := map[string]jsonEntry{}
	start := time.Now()
	failed := false
	usageErr := false

	runExp := func(name string, fn func() (any, error)) {
		if failed || (o.exp != "all" && o.exp != name) {
			return
		}
		if tables {
			fmt.Fprintf(out, "==== %s ", name)
			for i := len(name); i < 68; i++ {
				fmt.Fprint(out, "=")
			}
			fmt.Fprintln(out)
		}
		t0 := time.Now()
		data, err := fn()
		if err != nil {
			fmt.Fprintf(errw, "paperbench: %s: %v\n", name, err)
			// A degenerate serve configuration is a usage error, not a
			// failed run: exit 2 with the hint, matching flag validation.
			var ce *serve.ConfigError
			if errors.As(err, &ce) {
				fmt.Fprintln(errw, usageHint)
				usageErr = true
			}
			failed = true
			return
		}
		jsonDoc[name] = jsonEntry{WallMS: float64(time.Since(t0).Microseconds()) / 1000, Data: data}
		if tables {
			fmt.Fprintln(out)
		}
	}

	render := func(draw func()) {
		if tables {
			draw()
		}
	}

	runExp("table1", func() (any, error) {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderTable1(out, rows) })
		return rows, nil
	})
	runExp("naive", func() (any, error) {
		rows, err := experiments.NaiveSpeedups(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderNaive(out, rows) })
		return rows, nil
	})
	runExp("fig6", func() (any, error) {
		rows, err := experiments.Fig6(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderFig6(out, rows) })
		return rows, nil
	})
	runExp("fig7", func() (any, error) {
		r, err := experiments.Fig7(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderFig7(out, r) })
		return r, nil
	})
	runExp("eqns", func() (any, error) {
		r, err := experiments.Eqns(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderEqns(out, r) })
		return r, nil
	})
	runExp("profile", func() (any, error) {
		r, err := experiments.ProfileExp(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderProfile(out, r) })
		return r, nil
	})
	runExp("hosts", func() (any, error) {
		r, err := experiments.HostsExp(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderHosts(out, r) })
		return r, nil
	})
	runExp("scaling", func() (any, error) {
		rows, err := experiments.Scaling(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderScaling(out, rows) })
		return rows, nil
	})
	runExp("pipeline", func() (any, error) {
		rows, err := experiments.Pipeline(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderPipeline(out, rows) })
		return rows, nil
	})
	runExp("overhead", func() (any, error) {
		rows, err := experiments.Overhead(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderOverhead(out, rows) })
		return rows, nil
	})
	runExp("faults", func() (any, error) {
		r, err := experiments.FaultsExp(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderFaults(out, r) })
		return r, nil
	})
	runExp("serve", func() (any, error) {
		r, err := experiments.ServeExp(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderServe(out, r) })
		return r, nil
	})
	runExp("chaos", func() (any, error) {
		r, err := experiments.ChaosExp(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderChaos(out, r) })
		return r, nil
	})
	runExp("fleet", func() (any, error) {
		r, err := experiments.FleetExp(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderFleet(out, r) })
		return r, nil
	})
	runExp("race", func() (any, error) {
		r, err := experiments.RaceExp(cfg)
		if err != nil {
			return nil, err
		}
		render(func() { experiments.RenderRace(out, r) })
		return r, nil
	})

	if failed {
		if usageErr {
			return 2
		}
		return 1
	}

	// Epochs ride beside the serve entry's data, like wall_ms: schedule
	// stats, visible to benchdiff, invisible to data byte-compares.
	if e, ok := jsonDoc["serve"]; ok {
		if sr, isServe := e.Data.(*experiments.ServeResult); isServe {
			e.Epochs = sr.Epochs
			jsonDoc["serve"] = e
		}
	}
	if e, ok := jsonDoc["chaos"]; ok {
		if cr, isChaos := e.Data.(*experiments.ChaosResult); isChaos {
			e.Epochs = cr.Epochs
			jsonDoc["chaos"] = e
		}
	}
	if e, ok := jsonDoc["fleet"]; ok {
		if fr, isFleet := e.Data.(*experiments.FleetResult); isFleet {
			e.Epochs = fr.Epochs
			jsonDoc["fleet"] = e
		}
	}

	if o.tracePath != "" {
		if err := atomicfile.WriteFile(o.tracePath, cfg.Collect.WriteChromeTrace); err != nil {
			fmt.Fprintf(errw, "paperbench: %v\n", err)
			return 1
		}
	}
	if o.metricsPath != "" {
		if err := atomicfile.WriteFile(o.metricsPath, cfg.Collect.WriteMetricsJSON); err != nil {
			fmt.Fprintf(errw, "paperbench: %v\n", err)
			return 1
		}
	}

	if o.jsonPath == "" {
		return 0
	}
	doc := struct {
		Config struct {
			Quick    bool   `json:"quick"`
			Seed     uint64 `json:"seed"`
			Parallel int    `json:"parallel"`
			NoCache  bool   `json:"nocache"`
			MaxProcs int    `json:"gomaxprocs"`
		} `json:"config"`
		TotalWallMS float64              `json:"total_wall_ms"`
		Experiments map[string]jsonEntry `json:"experiments"`
	}{TotalWallMS: float64(time.Since(start).Microseconds()) / 1000, Experiments: jsonDoc}
	doc.Config.Quick = o.quick
	doc.Config.Seed = o.seed
	doc.Config.Parallel = o.parallel
	doc.Config.NoCache = o.nocache
	doc.Config.MaxProcs = runtime.GOMAXPROCS(0)

	writeDoc := func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	var err error
	if o.jsonPath == "-" {
		err = writeDoc(out)
	} else {
		err = atomicfile.WriteFile(o.jsonPath, writeDoc)
	}
	if err != nil {
		fmt.Fprintf(errw, "paperbench: %v\n", err)
		return 1
	}
	return 0
}
