// Command amdahl evaluates the paper's §4.2 performance-estimation
// equations from the command line — the sanity check a porting effort
// runs before investing in kernel optimization.
//
// Kernels are name:fraction:speedup triples. Sequential schedule (Eq. 2):
//
//	amdahl -kernels cc:0.54:52.23,eh:0.28:65.94,ch:0.08:53.67
//
// Grouped-parallel schedule (Eq. 3) — '|' separates sequential groups,
// ',' separates parallel kernels within a group:
//
//	amdahl -groups 'ch:0.08:53.67,cc:0.54:52.23,tx:0.06:15.99,eh:0.28:65.94|cd:0.02:10.8'
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"cellport/internal/amdahl"
)

func parseKernel(s string) (amdahl.Kernel, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return amdahl.Kernel{}, fmt.Errorf("kernel %q: want name:fraction:speedup", s)
	}
	frac, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return amdahl.Kernel{}, fmt.Errorf("kernel %q: bad fraction: %w", s, err)
	}
	sp, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return amdahl.Kernel{}, fmt.Errorf("kernel %q: bad speedup: %w", s, err)
	}
	return amdahl.Kernel{Name: parts[0], Fraction: frac, SpeedUp: sp}, nil
}

func parseKernels(s string) ([]amdahl.Kernel, error) {
	var out []amdahl.Kernel
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		k, err := parseKernel(item)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("amdahl: ")
	kernels := flag.String("kernels", "", "sequential schedule (Eq. 2): name:frac:speedup,...")
	groups := flag.String("groups", "", "grouped schedule (Eq. 3): groups separated by '|'")
	flag.Parse()

	if *kernels == "" && *groups == "" {
		flag.Usage()
		log.Fatal("need -kernels or -groups")
	}

	if *kernels != "" {
		ks, err := parseKernels(*kernels)
		if err != nil {
			log.Fatal(err)
		}
		if len(ks) == 1 {
			s, err := amdahl.SpeedUp1(ks[0])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("Eq. 1: Sapp = %.4f\n", s)
		}
		s, err := amdahl.SpeedUpSequential(ks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Eq. 2 (sequential): Sapp = %.4f   (upper bound %.4f)\n", s, amdahl.UpperBound(ks))
	}

	if *groups != "" {
		var gs []amdahl.Group
		for _, g := range strings.Split(*groups, "|") {
			ks, err := parseKernels(g)
			if err != nil {
				log.Fatal(err)
			}
			gs = append(gs, amdahl.Group(ks))
		}
		s, err := amdahl.SpeedUpGrouped(gs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Eq. 3 (grouped-parallel, %d groups): Sapp = %.4f\n", len(gs), s)
	}
}
