package main

import (
	"strings"
	"testing"
)

func TestParseKernel(t *testing.T) {
	k, err := parseKernel("cc:0.54:52.23")
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "cc" || k.Fraction != 0.54 || k.SpeedUp != 52.23 {
		t.Fatalf("parsed %+v", k)
	}
	for _, bad := range []string{"", "a:b", "a:b:c", "a:0.5", "a:x:2", "a:0.5:y", "a:0.5:2:extra"} {
		if _, err := parseKernel(bad); err == nil {
			t.Errorf("parseKernel(%q) should fail", bad)
		}
	}
}

func TestParseKernels(t *testing.T) {
	ks, err := parseKernels("a:0.1:10, b:0.2:20 ,,c:0.3:30")
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 3 || ks[1].Name != "b" || ks[2].SpeedUp != 30 {
		t.Fatalf("parsed %+v", ks)
	}
	if _, err := parseKernels("a:0.1:10,broken"); err == nil {
		t.Fatal("broken list should fail")
	}
	if !strings.Contains(err2str(parseKernels("x:nope:3")), "fraction") {
		t.Fatal("error should mention the fraction")
	}
}

func err2str(_ interface{}, err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
