package mfc

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"cellport/internal/eib"
	"cellport/internal/ls"
	"cellport/internal/mainmem"
	"cellport/internal/sim"
)

type rig struct {
	e   *sim.Engine
	bus *eib.Bus
	mem *mainmem.Memory
	st  *ls.LocalStore
	m   *MFC
}

func newRig() *rig {
	e := sim.NewEngine()
	bus := eib.New(e, eib.DefaultConfig())
	mem := mainmem.New(16 << 20)
	st := ls.New()
	m := New(e, bus, mem, st, eib.SPEPort(0), DefaultConfig())
	return &rig{e: e, bus: bus, mem: mem, st: st, m: m}
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGetMovesBytes(t *testing.T) {
	r := newRig()
	ea := r.mem.MustAlloc(256, 128)
	for i := range r.mem.Bytes(ea, 256) {
		r.mem.Bytes(ea, 256)[i] = byte(i)
	}
	lsa := r.st.MustAlloc(256, 16)
	r.e.Spawn("spu", func(p *sim.Proc) {
		if err := r.m.Get(p, lsa, ea, 256, 3); err != nil {
			t.Error(err)
			return
		}
		if r.m.TagPending(3) != 1 {
			t.Error("tag 3 should have one pending command")
		}
		r.m.WaitTag(p, 3)
		if !bytes.Equal(r.st.Bytes(lsa, 256), r.mem.Bytes(ea, 256)) {
			t.Error("LS content differs from main memory after Get")
		}
	})
	r.run(t)
	if s := r.m.Stats(); s.BytesIn != 256 || s.Commands != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPutMovesBytesAndSnapshots(t *testing.T) {
	r := newRig()
	ea := r.mem.MustAlloc(64, 128)
	lsa := r.st.MustAlloc(64, 16)
	buf := r.st.Bytes(lsa, 64)
	for i := range buf {
		buf[i] = 0xAA
	}
	r.e.Spawn("spu", func(p *sim.Proc) {
		if err := r.m.Put(p, lsa, ea, 64, 0); err != nil {
			t.Error(err)
			return
		}
		// Clobber the LS before the tag completes: the snapshot must win.
		for i := range buf {
			buf[i] = 0x55
		}
		r.m.WaitTag(p, 0)
		for _, b := range r.mem.Bytes(ea, 64) {
			if b != 0xAA {
				t.Errorf("Put delivered %#x, want snapshot value 0xAA", b)
				break
			}
		}
	})
	r.run(t)
}

func TestTransferRules(t *testing.T) {
	r := newRig()
	ea := r.mem.MustAlloc(64*1024, 128)
	lsa := r.st.MustAlloc(64*1024, 128)
	r.e.Spawn("spu", func(p *sim.Proc) {
		cases := []struct {
			ls      ls.Addr
			ea      mainmem.Addr
			size    uint32
			wantErr string
		}{
			{lsa, ea, 0, "zero-length"},
			{lsa, ea, MaxTransfer + 16, "exceeds"},
			{lsa, ea, 3, "illegal DMA size"},
			{lsa, ea, 24, "illegal DMA size"},
			{lsa + 1, ea, 2, "natural alignment"},
			{lsa, ea + 2, 4, "natural alignment"},
			{lsa + 8, ea, 32, "quadword alignment"},
			{lsa, ea, 16, ""},
			{lsa, ea, MaxTransfer, ""},
			{lsa + 4, ea + 4, 4, ""},
			{lsa + 1, ea + 1, 1, ""},
		}
		for _, c := range cases {
			err := r.m.Get(p, c.ls, c.ea, c.size, 1)
			if c.wantErr == "" {
				if err != nil {
					t.Errorf("Get(size=%d): unexpected error %v", c.size, err)
				}
				continue
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Get(size=%d) error = %v, want containing %q", c.size, err, c.wantErr)
			}
		}
		r.m.WaitAll(p)
	})
	r.run(t)
}

func TestBadTagRejected(t *testing.T) {
	r := newRig()
	ea := r.mem.MustAlloc(16, 16)
	lsa := r.st.MustAlloc(16, 16)
	r.e.Spawn("spu", func(p *sim.Proc) {
		if err := r.m.Get(p, lsa, ea, 16, -1); err == nil {
			t.Error("negative tag accepted")
		}
		if err := r.m.Get(p, lsa, ea, 16, NumTags); err == nil {
			t.Error("tag 32 accepted")
		}
	})
	r.run(t)
}

func TestQueueBackpressure(t *testing.T) {
	// Issue QueueDepth+4 transfers back to back; the extras must block
	// until slots free, and all must eventually complete.
	r := newRig()
	ea := r.mem.MustAlloc(1<<20, 128)
	lsa := r.st.MustAlloc(16*1024, 128)
	n := QueueDepth + 4
	r.e.Spawn("spu", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := r.m.Get(p, lsa, ea, 1024, i%NumTags); err != nil {
				t.Error(err)
			}
		}
		r.m.WaitAll(p)
	})
	r.run(t)
	s := r.m.Stats()
	if s.Commands != uint64(n) {
		t.Fatalf("commands = %d, want %d", s.Commands, n)
	}
	if s.PeakQueue != QueueDepth {
		t.Fatalf("peak queue = %d, want %d (full backpressure)", s.PeakQueue, QueueDepth)
	}
}

func TestWaitTagMaskSelective(t *testing.T) {
	r := newRig()
	ea := r.mem.MustAlloc(1<<20, 128)
	a := r.st.MustAlloc(4096, 16)
	b := r.st.MustAlloc(4096, 16)
	r.e.Spawn("spu", func(p *sim.Proc) {
		if err := r.m.Get(p, a, ea, 4096, 1); err != nil {
			t.Error(err)
		}
		if err := r.m.Get(p, b, ea+8192, 4096, 2); err != nil {
			t.Error(err)
		}
		r.m.WaitTagMask(p, 1<<1) // only tag 1
		if r.m.TagPending(1) != 0 {
			t.Error("tag 1 should be complete")
		}
		r.m.WaitAll(p)
		if r.m.TagPending(2) != 0 {
			t.Error("tag 2 should be complete after WaitAll")
		}
	})
	r.run(t)
}

func TestGetListGathers(t *testing.T) {
	r := newRig()
	// Three scattered main-memory runs gathered into contiguous LS.
	sizes := []uint32{64, 128, 32}
	var eas []mainmem.Addr
	var want []byte
	for i, sz := range sizes {
		ea := r.mem.MustAlloc(sz, 128)
		buf := r.mem.Bytes(ea, sz)
		for j := range buf {
			buf[j] = byte(i*50 + j)
		}
		want = append(want, buf...)
		eas = append(eas, ea)
	}
	lsa := r.st.MustAlloc(224, 16)
	r.e.Spawn("spu", func(p *sim.Proc) {
		list := []ListElement{{eas[0], 64}, {eas[1], 128}, {eas[2], 32}}
		if err := r.m.GetList(p, lsa, list, 5); err != nil {
			t.Error(err)
			return
		}
		r.m.WaitTag(p, 5)
		if !bytes.Equal(r.st.Bytes(lsa, 224), want) {
			t.Error("gathered bytes mismatch")
		}
	})
	r.run(t)
	if s := r.m.Stats(); s.ListCommands != 1 || s.Commands != 1 {
		t.Fatalf("stats = %+v, want one list command", s)
	}
}

func TestPutListScatters(t *testing.T) {
	r := newRig()
	lsa := r.st.MustAlloc(96, 16)
	src := r.st.Bytes(lsa, 96)
	for i := range src {
		src[i] = byte(200 - i)
	}
	ea1 := r.mem.MustAlloc(32, 128)
	ea2 := r.mem.MustAlloc(64, 128)
	r.e.Spawn("spu", func(p *sim.Proc) {
		if err := r.m.PutList(p, lsa, []ListElement{{ea1, 32}, {ea2, 64}}, 7); err != nil {
			t.Error(err)
			return
		}
		r.m.WaitTag(p, 7)
		if !bytes.Equal(r.mem.Bytes(ea1, 32), src[:32]) || !bytes.Equal(r.mem.Bytes(ea2, 64), src[32:]) {
			t.Error("scattered bytes mismatch")
		}
	})
	r.run(t)
}

func TestListValidation(t *testing.T) {
	r := newRig()
	lsa := r.st.MustAlloc(1024, 16)
	ea := r.mem.MustAlloc(1024, 128)
	r.e.Spawn("spu", func(p *sim.Proc) {
		if err := r.m.GetList(p, lsa, nil, 0); err == nil {
			t.Error("empty list accepted")
		}
		big := make([]ListElement, MaxListElements+1)
		for i := range big {
			big[i] = ListElement{ea, 16}
		}
		if err := r.m.GetList(p, lsa, big, 0); err == nil {
			t.Error("oversized list accepted")
		}
		// Element 1 misaligned because element 0 advances LS cursor by 8.
		err := r.m.GetList(p, lsa, []ListElement{{ea, 8}, {ea + 16, 32}}, 0)
		if err == nil || !strings.Contains(err.Error(), "element 1") {
			t.Errorf("misaligned list error = %v", err)
		}
	})
	r.run(t)
}

func TestDoubleBufferingOverlapsTransfers(t *testing.T) {
	// Classic §4.1 multibuffering: with two buffers and two tags, compute
	// on buffer A while buffer B is in flight. Total time must be well
	// under the serial sum (N × (dma + compute)).
	const (
		pieces  = 16
		size    = 16 * 1024
		compute = 5 * sim.Microsecond
	)
	serialDMA := func() sim.Duration {
		r := newRig()
		ea := r.mem.MustAlloc(pieces*size, 128)
		lsa := r.st.MustAlloc(size, 128)
		var total sim.Duration
		r.e.Spawn("spu", func(p *sim.Proc) {
			start := p.Now()
			for i := 0; i < pieces; i++ {
				if err := r.m.Get(p, lsa, ea+mainmem.Addr(i*size), size, 0); err != nil {
					t.Error(err)
				}
				r.m.WaitTag(p, 0)
				p.Sleep(compute)
			}
			total = p.Now().Sub(start)
		})
		r.run(t)
		return total
	}()
	doubleBuffered := func() sim.Duration {
		r := newRig()
		ea := r.mem.MustAlloc(pieces*size, 128)
		bufs := [2]ls.Addr{r.st.MustAlloc(size, 128), r.st.MustAlloc(size, 128)}
		var total sim.Duration
		r.e.Spawn("spu", func(p *sim.Proc) {
			start := p.Now()
			if err := r.m.Get(p, bufs[0], ea, size, 0); err != nil {
				t.Error(err)
			}
			for i := 0; i < pieces; i++ {
				cur := i % 2
				if i+1 < pieces {
					if err := r.m.Get(p, bufs[1-cur], ea+mainmem.Addr((i+1)*size), size, (i+1)%2); err != nil {
						t.Error(err)
					}
				}
				r.m.WaitTag(p, cur)
				p.Sleep(compute)
			}
			total = p.Now().Sub(start)
		})
		r.run(t)
		return total
	}()
	if doubleBuffered >= serialDMA {
		t.Fatalf("double buffering (%v) not faster than serial (%v)", doubleBuffered, serialDMA)
	}
}

// Property: Get/Put round-trips preserve arbitrary data for all legal
// multiple-of-16 sizes.
func TestPropRoundTrip(t *testing.T) {
	f := func(data []byte, seed uint8) bool {
		n := uint32(len(data)) &^ 15
		if n == 0 || n > MaxTransfer {
			return true // vacuous
		}
		r := newRig()
		src := r.mem.MustAlloc(n, 128)
		dst := r.mem.MustAlloc(n, 128)
		copy(r.mem.Bytes(src, n), data)
		lsa := r.st.MustAlloc(n, 16)
		ok := true
		r.e.Spawn("spu", func(p *sim.Proc) {
			if err := r.m.Get(p, lsa, src, n, 1); err != nil {
				ok = false
				return
			}
			r.m.WaitTag(p, 1)
			if err := r.m.Put(p, lsa, dst, n, 2); err != nil {
				ok = false
				return
			}
			r.m.WaitTag(p, 2)
		})
		if err := r.e.Run(); err != nil {
			return false
		}
		return ok && bytes.Equal(r.mem.Bytes(src, n), r.mem.Bytes(dst, n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
