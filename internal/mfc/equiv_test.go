package mfc

import (
	"bytes"
	"testing"
	"testing/quick"

	"cellport/internal/ls"
	"cellport/internal/mainmem"
	"cellport/internal/sim"
)

// TestPropListEqualsIndividualGets: a DMA list gather delivers exactly
// the bytes that the equivalent sequence of individual gets delivers —
// the §4.1 "DMA lists" optimization changes timing and queue usage, never
// data.
func TestPropListEqualsIndividualGets(t *testing.T) {
	f := func(seed uint32, sizesRaw []uint8) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > 12 {
			return true
		}
		// Build scattered source runs.
		r1 := newRig()
		r2 := newRig()
		var eas []mainmem.Addr
		var sizes []uint32
		total := uint32(0)
		s := uint64(seed) | 1
		next := func() byte {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return byte(s)
		}
		for _, raw := range sizesRaw {
			size := (uint32(raw)%64 + 1) * 16 // 16..1024, multiple of 16
			ea1 := r1.mem.MustAlloc(size, 128)
			ea2 := r2.mem.MustAlloc(size, 128)
			if ea1 != ea2 {
				return false // allocators must agree for a fair comparison
			}
			buf1 := r1.mem.Bytes(ea1, size)
			buf2 := r2.mem.Bytes(ea2, size)
			for i := range buf1 {
				v := next()
				buf1[i] = v
				buf2[i] = v
			}
			eas = append(eas, ea1)
			sizes = append(sizes, size)
			total += size
		}
		lsa1 := r1.st.MustAlloc(total, 16)
		lsa2 := r2.st.MustAlloc(total, 16)

		// Rig 1: one DMA list.
		r1.e.Spawn("list", func(p *sim.Proc) {
			var list []ListElement
			for i := range eas {
				list = append(list, ListElement{EA: eas[i], Size: sizes[i]})
			}
			if err := r1.m.GetList(p, lsa1, list, 1); err != nil {
				t.Error(err)
				return
			}
			r1.m.WaitTag(p, 1)
		})
		if err := r1.e.Run(); err != nil {
			return false
		}
		// Rig 2: individual gets.
		r2.e.Spawn("gets", func(p *sim.Proc) {
			off := uint32(0)
			for i := range eas {
				if err := r2.m.Get(p, lsa2+ls.Addr(off), eas[i], sizes[i], int(i%NumTags)); err != nil {
					t.Error(err)
					return
				}
				off += sizes[i]
			}
			r2.m.WaitAll(p)
		})
		if err := r2.e.Run(); err != nil {
			return false
		}
		return bytes.Equal(r1.st.Bytes(lsa1, total), r2.st.Bytes(lsa2, total))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestListUsesOneQueueSlot: the reason DMA lists matter — many pieces,
// one MFC queue entry.
func TestListUsesOneQueueSlot(t *testing.T) {
	r := newRig()
	ea := r.mem.MustAlloc(1<<16, 128)
	lsa := r.st.MustAlloc(1<<15, 16)
	r.e.Spawn("spu", func(p *sim.Proc) {
		var list []ListElement
		for i := 0; i < 32; i++ {
			list = append(list, ListElement{EA: ea + mainmem.Addr(i*1024), Size: 1024})
		}
		if err := r.m.GetList(p, lsa, list, 0); err != nil {
			t.Error(err)
			return
		}
		r.m.WaitTag(p, 0)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if s := r.m.Stats(); s.PeakQueue != 1 {
		t.Fatalf("peak queue = %d, want 1 (single list command)", s.PeakQueue)
	}
}
