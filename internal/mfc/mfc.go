// Package mfc models an SPE's Memory Flow Controller: a 16-entry DMA
// command queue moving data between main memory and the local store over
// the EIB, with tag groups for completion tracking, hardware transfer-size
// and alignment rules enforced, and DMA-list (scatter/gather) commands.
//
// Data moves for real: a Get copies bytes from simulated main memory into
// the local store at transfer completion; a Put snapshots the local-store
// bytes at issue time (overwriting a buffer before its tag completes is a
// real double-buffering bug on hardware, and snapshotting keeps the
// simulation deterministic while rewarding correct tag discipline).
package mfc

import (
	"fmt"

	"cellport/internal/eib"
	"cellport/internal/ls"
	"cellport/internal/mainmem"
	"cellport/internal/metrics"
	"cellport/internal/sim"
	"cellport/internal/trace"
)

// Hardware limits.
const (
	QueueDepth      = 16        // MFC SPU command queue entries
	MaxTransfer     = 16 * 1024 // bytes per DMA command
	NumTags         = 32
	MaxListElements = 2048
)

// Config sets MFC timing parameters.
type Config struct {
	// IssueCost is SPU time consumed writing the command to the MFC
	// channels (a few channel writes).
	IssueCost sim.Duration
	// StartupLatency is the time from command issue to first data on the
	// bus (address translation, EIB arbitration).
	StartupLatency sim.Duration
}

// DefaultConfig returns latencies in line with published Cell DMA
// measurements (~100 ns small-transfer latency).
func DefaultConfig() Config {
	return Config{
		IssueCost:      10 * sim.Nanosecond,
		StartupLatency: 90 * sim.Nanosecond,
	}
}

// FaultAction is the injected-fault verdict for one DMA command.
type FaultAction int

// DMA fault verdicts, consulted per command via the fault hook.
const (
	// FaultNone lets the command proceed normally.
	FaultNone FaultAction = iota
	// FaultDrop loses the command: its tag stays pending forever and the
	// queue slot leaks (the classic hung-tag failure mode).
	FaultDrop
	// FaultCorrupt delivers the payload corrupted and latches the sticky
	// transfer-error flag the dispatcher reports as a retryable DMA fault.
	FaultCorrupt
)

// MFC is one SPE's memory flow controller.
type MFC struct {
	engine *sim.Engine
	bus    *eib.Bus
	mem    *mainmem.Memory
	store  *ls.LocalStore
	port   eib.Port
	cfg    Config

	slots      *sim.Semaphore
	tagPending [NumTags]int
	tagWait    *sim.Queue

	// faultHook, when set, is sampled once per accepted DMA command
	// (deterministic fault injection).
	faultHook func() FaultAction
	// xferErr is the sticky transfer-error flag: set when a command's
	// payload was delivered corrupted, cleared by ClearTransferError.
	xferErr bool
	// startTimers and inflight track pending startup timers and in-flight
	// bus transfers so Abort can tear them down. Slices (not maps) keep
	// teardown order deterministic.
	startTimers []*sim.Timer
	inflight    []*eib.Transfer

	// Stats
	commands  uint64
	bytesIn   uint64 // main memory -> LS
	bytesOut  uint64 // LS -> main memory
	listCmds  uint64
	peakQueue int

	// Optional observability (nil when uninstrumented). tracer lanes carry
	// one span per DMA command, from bus start to completion; histogram
	// handles are nil-safe, so the uninstrumented path pays one branch.
	tracer    trace.Tracer
	lane      string
	sizeHist  *metrics.Histogram
	depthHist *metrics.Histogram
}

// SetTracer installs (or clears, with nil) a tracer; each DMA command
// emits one KindDMA span on the given lane covering its bus time.
func (m *MFC) SetTracer(t trace.Tracer, lane string) {
	m.tracer = t
	m.lane = lane
}

// SetMetrics registers the MFC's histograms under component: transfer
// sizes in bytes and queue depth sampled at each command issue. A nil
// registry yields nil-safe no-op handles.
func (m *MFC) SetMetrics(reg *metrics.Registry, component string) {
	m.sizeHist = reg.Histogram(component, "dma_size_bytes", []int64{128, 1024, 4096, 16384})
	m.depthHist = reg.Histogram(component, "queue_depth", []int64{1, 2, 4, 8, 16})
}

// SetFaultHook installs (or clears, with nil) the per-command fault hook.
func (m *MFC) SetFaultHook(h func() FaultAction) { m.faultHook = h }

// TransferError reports the sticky transfer-error flag.
func (m *MFC) TransferError() bool { return m.xferErr }

// ClearTransferError resets the sticky transfer-error flag.
func (m *MFC) ClearTransferError() { m.xferErr = false }

func (m *MFC) sampleFault() FaultAction {
	if m.faultHook == nil {
		return FaultNone
	}
	return m.faultHook()
}

// corrupt flips bits in a delivered payload and latches the error flag.
func (m *MFC) corrupt(b []byte) {
	for i := range b {
		b[i] ^= 0xA5
	}
	m.xferErr = true
}

// scheduleStart arms the post-issue startup timer, tracked so Abort can
// cancel DMA commands that have not yet reached the bus.
func (m *MFC) scheduleStart(fn func()) {
	var t *sim.Timer
	t = m.engine.Schedule(m.engine.Now().Add(m.cfg.StartupLatency), func() {
		m.removeTimer(t)
		fn()
	})
	m.startTimers = append(m.startTimers, t)
}

func (m *MFC) removeTimer(t *sim.Timer) {
	for i, x := range m.startTimers {
		if x == t {
			m.startTimers = append(m.startTimers[:i], m.startTimers[i+1:]...)
			return
		}
	}
}

func (m *MFC) track(t *eib.Transfer) { m.inflight = append(m.inflight, t) }

func (m *MFC) untrack(t *eib.Transfer) {
	for i, x := range m.inflight {
		if x == t {
			m.inflight = append(m.inflight[:i], m.inflight[i+1:]...)
			return
		}
	}
}

// Abort tears down the MFC after its SPE fails: pending command starts are
// cancelled, in-flight transfers stop moving data, every tag is forced
// quiescent, and tag waiters are released. The queue semaphore is left as
// is — a failed SPE never loads another program.
func (m *MFC) Abort() {
	for _, t := range m.startTimers {
		t.Cancel()
	}
	m.startTimers = nil
	for _, tr := range m.inflight {
		tr.Abort()
	}
	m.inflight = nil
	for i := range m.tagPending {
		m.tagPending[i] = 0
	}
	m.tagWait.WakeAll(m.engine)
}

// New creates an MFC bound to one SPE's local store and bus port.
func New(e *sim.Engine, bus *eib.Bus, mem *mainmem.Memory, store *ls.LocalStore, port eib.Port, cfg Config) *MFC {
	return &MFC{
		engine: e, bus: bus, mem: mem, store: store, port: port, cfg: cfg,
		slots:   sim.NewSemaphore(e, fmt.Sprintf("%v MFC queue", port), QueueDepth),
		tagWait: sim.NewQueue(fmt.Sprintf("%v tag-group", port)),
	}
}

// ListElement describes one entry of a DMA list command: a contiguous run
// in main memory. The LS side advances by Size for each element.
type ListElement struct {
	EA   mainmem.Addr
	Size uint32
}

// checkTransfer enforces the hardware DMA rules: legal sizes are 1, 2, 4,
// 8 and multiples of 16 up to 16 KB; small transfers must be naturally
// aligned; 16-byte-and-larger transfers require quadword alignment on both
// addresses with matching low-order offsets.
func checkTransfer(lsa ls.Addr, ea mainmem.Addr, size uint32) error {
	switch {
	case size == 0:
		return fmt.Errorf("mfc: zero-length DMA")
	case size > MaxTransfer:
		return fmt.Errorf("mfc: DMA size %d exceeds %d-byte limit", size, MaxTransfer)
	case size == 1 || size == 2 || size == 4 || size == 8:
		if uint32(lsa)%size != 0 || uint32(ea)%size != 0 {
			return fmt.Errorf("mfc: %d-byte DMA requires natural alignment (ls=%#x ea=%#x)", size, uint32(lsa), uint32(ea))
		}
	case size%16 == 0:
		if uint32(lsa)%16 != 0 || uint32(ea)%16 != 0 {
			return fmt.Errorf("mfc: %d-byte DMA requires quadword alignment (ls=%#x ea=%#x)", size, uint32(lsa), uint32(ea))
		}
	default:
		return fmt.Errorf("mfc: illegal DMA size %d (must be 1, 2, 4, 8 or a multiple of 16)", size)
	}
	return nil
}

// checkBounds rejects transfers whose windows fall outside the local
// store or main memory (the MFC-exception analog); garbage addresses from
// corrupted headers surface as errors, not simulator panics.
func (m *MFC) checkBounds(lsa ls.Addr, ea mainmem.Addr, size uint32) error {
	if end := uint64(lsa) + uint64(size); end > ls.Size {
		return fmt.Errorf("mfc: DMA LS window [%#x,%#x) beyond %d B local store", uint32(lsa), end, ls.Size)
	}
	if end := uint64(ea) + uint64(size); end > uint64(m.mem.Size()) {
		return fmt.Errorf("mfc: DMA effective window [%#x,%#x) beyond %d B main memory", uint32(ea), end, m.mem.Size())
	}
	return nil
}

func checkTag(tag int) error {
	if tag < 0 || tag >= NumTags {
		return fmt.Errorf("mfc: tag %d out of range [0,%d)", tag, NumTags)
	}
	return nil
}

// Get enqueues a main-memory -> local-store transfer under the given tag.
// The calling process pays the issue cost and blocks only if the command
// queue is full. Data lands in the LS when the tag completes.
func (m *MFC) Get(p *sim.Proc, lsa ls.Addr, ea mainmem.Addr, size uint32, tag int) error {
	if err := checkTransfer(lsa, ea, size); err != nil {
		return err
	}
	if err := checkTag(tag); err != nil {
		return err
	}
	if err := m.checkBounds(lsa, ea, size); err != nil {
		return err
	}
	// Validate both windows now so errors surface at the issue site.
	dst := m.store.Bytes(lsa, size)
	src := m.mem.Bytes(ea, size)
	p.Sleep(m.cfg.IssueCost)
	m.slots.Acquire(p)
	m.noteQueueDepth()
	m.tagPending[tag]++
	m.commands++
	m.sizeHist.Observe(int64(size))
	act := m.sampleFault()
	if act == FaultDrop {
		return nil // the command is lost; its tag never completes
	}
	m.scheduleStart(func() {
		t0 := m.engine.Now()
		var tr *eib.Transfer
		tr = m.bus.Start(eib.PortMemory, m.port, int64(size), func() {
			m.untrack(tr)
			copy(dst, src)
			if act == FaultCorrupt {
				m.corrupt(dst)
			}
			m.bytesIn += uint64(size)
			m.span(t0, "get")
			m.finish(tag)
		})
		m.track(tr)
	})
	return nil
}

// Put enqueues a local-store -> main-memory transfer under the given tag.
// The LS bytes are snapshotted at issue time (see package comment).
func (m *MFC) Put(p *sim.Proc, lsa ls.Addr, ea mainmem.Addr, size uint32, tag int) error {
	if err := checkTransfer(lsa, ea, size); err != nil {
		return err
	}
	if err := checkTag(tag); err != nil {
		return err
	}
	if err := m.checkBounds(lsa, ea, size); err != nil {
		return err
	}
	snapshot := append([]byte(nil), m.store.Bytes(lsa, size)...)
	dst := m.mem.Bytes(ea, size)
	p.Sleep(m.cfg.IssueCost)
	m.slots.Acquire(p)
	m.noteQueueDepth()
	m.tagPending[tag]++
	m.commands++
	m.sizeHist.Observe(int64(size))
	act := m.sampleFault()
	if act == FaultDrop {
		return nil // the command is lost; its tag never completes
	}
	m.scheduleStart(func() {
		t0 := m.engine.Now()
		var tr *eib.Transfer
		tr = m.bus.Start(m.port, eib.PortMemory, int64(size), func() {
			m.untrack(tr)
			copy(dst, snapshot)
			if act == FaultCorrupt {
				m.corrupt(dst)
			}
			m.bytesOut += uint64(size)
			m.span(t0, "put")
			m.finish(tag)
		})
		m.track(tr)
	})
	return nil
}

// GetList enqueues a DMA-list (gather) command: elements are transferred
// serially into consecutive LS space starting at lsa, all under one tag
// and one queue slot — the reason DMA lists beat strings of individual
// gets for many small pieces (§4.1).
func (m *MFC) GetList(p *sim.Proc, lsa ls.Addr, list []ListElement, tag int) error {
	return m.listCmd(p, lsa, list, tag, true)
}

// PutList enqueues a DMA-list (scatter) command from consecutive LS space.
func (m *MFC) PutList(p *sim.Proc, lsa ls.Addr, list []ListElement, tag int) error {
	return m.listCmd(p, lsa, list, tag, false)
}

func (m *MFC) listCmd(p *sim.Proc, lsa ls.Addr, list []ListElement, tag int, get bool) error {
	if len(list) == 0 {
		return fmt.Errorf("mfc: empty DMA list")
	}
	if len(list) > MaxListElements {
		return fmt.Errorf("mfc: DMA list has %d elements, max %d", len(list), MaxListElements)
	}
	if err := checkTag(tag); err != nil {
		return err
	}
	cursor := lsa
	type piece struct {
		dst, src []byte
		size     uint32
	}
	pieces := make([]piece, 0, len(list))
	for i, el := range list {
		if err := checkTransfer(cursor, el.EA, el.Size); err != nil {
			return fmt.Errorf("mfc: list element %d: %w", i, err)
		}
		if err := m.checkBounds(cursor, el.EA, el.Size); err != nil {
			return fmt.Errorf("mfc: list element %d: %w", i, err)
		}
		lsb := m.store.Bytes(cursor, el.Size)
		mb := m.mem.Bytes(el.EA, el.Size)
		if get {
			pieces = append(pieces, piece{dst: lsb, src: mb, size: el.Size})
		} else {
			pieces = append(pieces, piece{dst: mb, src: append([]byte(nil), lsb...), size: el.Size})
		}
		cursor = ls.Addr(uint32(cursor) + el.Size)
	}
	p.Sleep(m.cfg.IssueCost)
	m.slots.Acquire(p)
	m.noteQueueDepth()
	m.tagPending[tag]++
	m.commands++
	m.listCmds++
	for _, pc := range pieces {
		m.sizeHist.Observe(int64(pc.size))
	}
	act := m.sampleFault()
	if act == FaultDrop {
		return nil // the command is lost; its tag never completes
	}
	label := "get-list"
	if !get {
		label = "put-list"
	}
	// Elements stream serially on the bus under a single startup latency;
	// one span covers the whole list.
	var t0 sim.Time
	var runElement func(i int)
	runElement = func(i int) {
		pc := pieces[i]
		src, dst := eib.PortMemory, m.port
		if !get {
			src, dst = m.port, eib.PortMemory
		}
		var tr *eib.Transfer
		tr = m.bus.Start(src, dst, int64(pc.size), func() {
			m.untrack(tr)
			copy(pc.dst, pc.src)
			if act == FaultCorrupt {
				m.corrupt(pc.dst)
			}
			if get {
				m.bytesIn += uint64(pc.size)
			} else {
				m.bytesOut += uint64(pc.size)
			}
			if i+1 < len(pieces) {
				runElement(i + 1)
				return
			}
			m.span(t0, label)
			m.finish(tag)
		})
		m.track(tr)
	}
	m.scheduleStart(func() {
		t0 = m.engine.Now()
		runElement(0)
	})
	return nil
}

// span emits one DMA span on the MFC's lane, if a tracer is installed.
func (m *MFC) span(start sim.Time, label string) {
	if m.tracer != nil {
		m.tracer.Span(m.lane, start, m.engine.Now(), trace.KindDMA, label)
	}
}

func (m *MFC) finish(tag int) {
	m.tagPending[tag]--
	m.slots.Release()
	m.tagWait.WakeAll(m.engine)
}

func (m *MFC) noteQueueDepth() {
	d := QueueDepth - m.slots.Available()
	if d > m.peakQueue {
		m.peakQueue = d
	}
	m.depthHist.Observe(int64(d))
}

// TagPending reports outstanding commands under a tag.
func (m *MFC) TagPending(tag int) int { return m.tagPending[tag] }

// WaitTag blocks until every command issued under tag has completed
// (the mfc_write_tag_mask / mfc_read_tag_status_all idiom).
func (m *MFC) WaitTag(p *sim.Proc, tag int) {
	p.WaitFor(m.tagWait, func() bool { return m.tagPending[tag] == 0 })
}

// WaitTagMask blocks until all tags selected by mask (bit i = tag i) are
// quiescent.
func (m *MFC) WaitTagMask(p *sim.Proc, mask uint32) {
	p.WaitFor(m.tagWait, func() bool {
		for t := 0; t < NumTags; t++ {
			if mask&(1<<uint(t)) != 0 && m.tagPending[t] > 0 {
				return false
			}
		}
		return true
	})
}

// WaitAll blocks until the command queue is fully drained.
func (m *MFC) WaitAll(p *sim.Proc) { m.WaitTagMask(p, ^uint32(0)) }

// Stats snapshot.
type Stats struct {
	Commands     uint64
	ListCommands uint64
	BytesIn      uint64
	BytesOut     uint64
	PeakQueue    int
}

// Stats returns cumulative counters.
func (m *MFC) Stats() Stats {
	return Stats{
		Commands:     m.commands,
		ListCommands: m.listCmds,
		BytesIn:      m.bytesIn,
		BytesOut:     m.bytesOut,
		PeakQueue:    m.peakQueue,
	}
}
