package mfc

import (
	"errors"
	"strings"
	"testing"

	"cellport/internal/sim"
)

// hookOnNth returns a fault hook that fires act on the nth sampled
// command (1-based) and FaultNone otherwise.
func hookOnNth(n int, act FaultAction) func() FaultAction {
	count := 0
	return func() FaultAction {
		count++
		if count == n {
			return act
		}
		return FaultNone
	}
}

// TestFaultDropHangsTagAbortReleases: a dropped DMA command leaves its
// tag pending forever (the hung-tag failure mode); a WaitTag on it
// deadlocks deterministically, and MFC.Abort releases the waiter.
func TestFaultDropHangsTagAbortReleases(t *testing.T) {
	r := newRig()
	copy(r.mem.Bytes(0, 64), []byte(strings.Repeat("x", 64)))
	r.m.SetFaultHook(hookOnNth(1, FaultDrop))
	released := false
	e := r.e
	var spu *sim.Proc
	spu = e.Spawn("spu", func(p *sim.Proc) {
		if err := r.m.Get(p, 0x1000, 0, 64, 3); err != nil {
			t.Errorf("Get: %v", err)
			return
		}
		r.m.WaitTag(p, 3) // hangs: the command was dropped
		released = true
	})
	_ = spu
	e.Spawn("supervisor", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		if r.m.TagPending(3) != 1 {
			t.Errorf("TagPending(3) = %d after drop, want 1 (hung)", r.m.TagPending(3))
		}
		r.m.Abort()
	})
	r.run(t)
	if !released {
		t.Fatal("Abort did not release the tag waiter")
	}
	if r.m.TagPending(3) != 0 {
		t.Errorf("TagPending(3) = %d after Abort, want 0", r.m.TagPending(3))
	}
	// The dropped get never moved data.
	if got := r.st.Bytes(0x1000, 64); got[0] == 'x' {
		t.Error("dropped DMA still delivered data")
	}
}

// TestFaultDropWithoutAbortIsTypedDeadlock: with no supervisor, the hung
// tag surfaces as the engine's typed deadlock naming the blocked SPU —
// not a wedged test binary.
func TestFaultDropWithoutAbortIsTypedDeadlock(t *testing.T) {
	r := newRig()
	r.m.SetFaultHook(hookOnNth(1, FaultDrop))
	r.e.Spawn("spu", func(p *sim.Proc) {
		if err := r.m.Get(p, 0x1000, 0, 64, 0); err != nil {
			t.Errorf("Get: %v", err)
			return
		}
		r.m.WaitTag(p, 0)
	})
	err := r.e.Run()
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run = %v (%T), want *sim.DeadlockError", err, err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0].Name != "spu" {
		t.Errorf("deadlock names %v, want the blocked SPU", dl.Blocked)
	}
}

// TestFaultCorruptFlipsPayloadAndLatches: a corrupted get delivers the
// payload XOR 0xA5 and latches the sticky transfer-error flag until
// cleared.
func TestFaultCorruptFlipsPayloadAndLatches(t *testing.T) {
	r := newRig()
	src := r.mem.Bytes(0, 64)
	for i := range src {
		src[i] = byte(i)
	}
	r.m.SetFaultHook(hookOnNth(2, FaultCorrupt))
	r.e.Spawn("spu", func(p *sim.Proc) {
		// Command 1: clean. Command 2: corrupted.
		if err := r.m.Get(p, 0x1000, 0, 64, 0); err != nil {
			t.Errorf("Get 1: %v", err)
		}
		if err := r.m.Get(p, 0x2000, 0, 64, 0); err != nil {
			t.Errorf("Get 2: %v", err)
		}
		r.m.WaitTag(p, 0)
	})
	r.run(t)
	clean := r.st.Bytes(0x1000, 64)
	dirty := r.st.Bytes(0x2000, 64)
	for i := 0; i < 64; i++ {
		if clean[i] != byte(i) {
			t.Fatalf("clean command corrupted at %d: %#x", i, clean[i])
		}
		if dirty[i] != byte(i)^0xA5 {
			t.Fatalf("corrupt byte %d = %#x, want %#x", i, dirty[i], byte(i)^0xA5)
		}
	}
	if !r.m.TransferError() {
		t.Fatal("TransferError not latched after corruption")
	}
	r.m.ClearTransferError()
	if r.m.TransferError() {
		t.Fatal("ClearTransferError did not reset the flag")
	}
}

// TestBoundsFaultIsErrorNotPanic: garbage addresses (the downstream
// effect of a corrupted header) are rejected as errors at the issue site
// — the MFC-exception analog — instead of panicking the simulator.
func TestBoundsFaultIsErrorNotPanic(t *testing.T) {
	r := newRig()
	r.e.Spawn("spu", func(p *sim.Proc) {
		if err := r.m.Get(p, 0x3FFF0, 0, 64, 0); err == nil {
			t.Error("LS window past 256 KB accepted")
		}
		if err := r.m.Get(p, 0, 0x7FFFFF0, 64, 0); err == nil {
			t.Error("EA window past main memory accepted")
		}
		if err := r.m.Put(p, 0, 0x7FFFFF0, 64, 0); err == nil {
			t.Error("Put past main memory accepted")
		}
		if err := r.m.GetList(p, 0, []ListElement{{EA: 0x7FFFFF0, Size: 64}}, 0); err == nil {
			t.Error("list element past main memory accepted")
		}
	})
	r.run(t)
	if r.m.TagPending(0) != 0 {
		t.Errorf("rejected commands left TagPending = %d", r.m.TagPending(0))
	}
}

// TestAbortCancelsQueuedStarts: commands still inside their startup
// latency when the SPE dies never reach the bus or move bytes.
func TestAbortCancelsQueuedStarts(t *testing.T) {
	r := newRig()
	copy(r.mem.Bytes(0, 64), []byte(strings.Repeat("y", 64)))
	r.e.Spawn("spu", func(p *sim.Proc) {
		if err := r.m.Get(p, 0x1000, 0, 64, 0); err != nil {
			t.Errorf("Get: %v", err)
			return
		}
		r.m.Abort() // dies immediately, before StartupLatency elapses
		r.m.WaitTag(p, 0)
	})
	r.run(t)
	if got := r.st.Bytes(0x1000, 64); got[0] == 'y' {
		t.Error("aborted command still delivered data")
	}
	if r.bus.Transfers() != 0 {
		t.Errorf("aborted command reached the bus: %d transfers", r.bus.Transfers())
	}
}
