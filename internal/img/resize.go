package img

// Resize — §5.2 notes that MARVEL rescales images that do not match the
// working frame size and that "rescaling (otherwise a costly operation)"
// was avoided in the experiments by using same-size inputs. The operation
// itself is part of the preprocessing substrate, so it is implemented
// here: fixed-point bilinear interpolation (integer-only, like the rest
// of the pipeline).

// fixed-point precision for bilinear weights.
const resizeShift = 12

// Resize returns im scaled to w×h with bilinear interpolation. Identity
// sizes return a copy.
func Resize(im *RGB, w, h int) *RGB {
	if w <= 0 || h <= 0 {
		panic("img: invalid resize target")
	}
	if w == im.W && h == im.H {
		return im.Clone()
	}
	out := New(w, h)
	// Map destination pixels onto the source grid with the corners
	// anchored: sx = x·(W−1)/(w−1) in fixed point, computed per pixel so
	// the far corner lands exactly on the source corner.
	srcX := func(x int) int {
		if w == 1 {
			return 0
		}
		return (x * (im.W - 1) << resizeShift) / (w - 1)
	}
	srcY := func(y int) int {
		if h == 1 {
			return 0
		}
		return (y * (im.H - 1) << resizeShift) / (h - 1)
	}
	for y := 0; y < h; y++ {
		sy := srcY(y)
		y0 := sy >> resizeShift
		fy := sy & (1<<resizeShift - 1)
		y1 := y0 + 1
		if y1 > im.H-1 {
			y1 = im.H - 1
		}
		row0 := im.Pix[y0*im.Stride:]
		row1 := im.Pix[y1*im.Stride:]
		for x := 0; x < w; x++ {
			sx := srcX(x)
			x0 := sx >> resizeShift
			fx := sx & (1<<resizeShift - 1)
			x1 := x0 + 1
			if x1 > im.W-1 {
				x1 = im.W - 1
			}
			var px [3]byte
			for c := 0; c < 3; c++ {
				p00 := int(row0[3*x0+c])
				p01 := int(row0[3*x1+c])
				p10 := int(row1[3*x0+c])
				p11 := int(row1[3*x1+c])
				top := p00<<resizeShift + (p01-p00)*fx
				bot := p10<<resizeShift + (p11-p10)*fx
				v := top<<resizeShift + (bot-top)*fy
				px[c] = byte(v >> (2 * resizeShift))
			}
			out.Set(x, y, px[0], px[1], px[2])
		}
	}
	return out
}

// ResizeOpsPerPixel is the nominal cost of one bilinear output pixel
// (8 multiplies, 12 adds/shifts across 3 channels, address math).
const ResizeOpsPerPixel = 30.0

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
