package img

// HistBins is the size of MARVEL's quantized HSV color space: 162
// chromatic bins (18 hues × 3 saturations × 3 values) plus 4 achromatic
// (gray) bins — the Smith–Chang 166-color quantization ([18]) used by
// both the color histogram and the color correlogram (§5.2).
const HistBins = 166

// Quantization thresholds (fixed-point; pixel channels are 0..255).
const (
	grayScaleSat = 26 // s <= 10% of 255: treat as achromatic
	grayScaleVal = 26 // v <= 10% of 255: treat as black
)

// RGBToHSV converts an 8-bit RGB pixel to integer HSV with h in [0, 360),
// s and v in [0, 255]. The math is integer-only, mirroring what an
// SPE-friendly fixed-point implementation computes.
func RGBToHSV(r, g, b byte) (h int, s, v byte) {
	ri, gi, bi := int(r), int(g), int(b)
	max := ri
	if gi > max {
		max = gi
	}
	if bi > max {
		max = bi
	}
	min := ri
	if gi < min {
		min = gi
	}
	if bi < min {
		min = bi
	}
	v = byte(max)
	d := max - min
	if max == 0 || d == 0 {
		return 0, 0, v
	}
	s = byte(255 * d / max)
	switch max {
	case ri:
		h = (60*(gi-bi)/d + 360) % 360
	case gi:
		h = 60*(bi-ri)/d + 120
	default:
		h = 60*(ri-gi)/d + 240
	}
	if h < 0 {
		h += 360
	}
	return h, s, v
}

// QuantizeHSV166 maps an RGB pixel to its bin in the 166-color space.
// Chromatic bins are hue (18 × 20°) × saturation (3) × value (3) =
// 0..161; achromatic pixels fall into 4 gray bins 162..165 by value.
func QuantizeHSV166(r, g, b byte) int {
	h, s, v := RGBToHSV(r, g, b)
	if s <= grayScaleSat || v <= grayScaleVal {
		g := int(v) * 4 / 256
		return 162 + g
	}
	hbin := h / 20 // 0..17
	sbin := (int(s) - grayScaleSat) * 3 / (256 - grayScaleSat)
	if sbin > 2 {
		sbin = 2
	}
	vbin := (int(v) - grayScaleVal) * 3 / (256 - grayScaleVal)
	if vbin > 2 {
		vbin = 2
	}
	return hbin*9 + sbin*3 + vbin
}

// QuantizeRows fills dst (len >= W*(y1-y0)) with the bin index of every
// pixel in rows [y0, y1) — the form both the PPE reference and the SPE
// kernels share.
func QuantizeRows(im *RGB, y0, y1 int, dst []int32) {
	i := 0
	for y := y0; y < y1; y++ {
		row := im.Pix[y*im.Stride:]
		for x := 0; x < im.W; x++ {
			dst[i] = int32(QuantizeHSV166(row[3*x], row[3*x+1], row[3*x+2]))
			i++
		}
	}
}
