package img

// Synthetic image generation. The paper's experiments use 352×240 frames
// from a news-video corpus we do not have; feature-extraction cost depends
// only on dimensions, and correctness testing needs content variety (flat
// regions, gradients, edges, texture) rather than semantics, so seeded
// synthetic scenes preserve everything the experiments measure.

// prng is a small deterministic xorshift64* generator so images are
// reproducible across Go releases (math/rand's stream is not guaranteed).
type prng struct{ s uint64 }

func newPRNG(seed uint64) *prng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &prng{s: seed}
}

func (p *prng) next() uint64 {
	p.s ^= p.s >> 12
	p.s ^= p.s << 25
	p.s ^= p.s >> 27
	return p.s * 0x2545F4914F6CDD1D
}

// intn returns a value in [0, n).
func (p *prng) intn(n int) int { return int(p.next() % uint64(n)) }

// byteVal returns a value in [0, 256).
func (p *prng) byteVal() byte { return byte(p.next()) }

// Synthesize renders a deterministic w×h test scene for the given seed:
// a vertical sky gradient, a textured ground band, several solid
// rectangles and discs (strong edges and dominant colors), and mild pixel
// noise (exercises every histogram path).
func Synthesize(seed uint64, w, h int) *RGB {
	rng := newPRNG(seed)
	im := New(w, h)
	// Sky gradient: two random anchor colors interpolated by row.
	top := [3]int{int(rng.byteVal()), int(rng.byteVal()), int(rng.byteVal())}
	bot := [3]int{int(rng.byteVal()), int(rng.byteVal()), int(rng.byteVal())}
	horizon := h/2 + rng.intn(h/4+1)
	for y := 0; y < h; y++ {
		var c [3]byte
		if y < horizon {
			t := y * 256 / horizon
			for k := 0; k < 3; k++ {
				c[k] = byte(top[k] + (bot[k]-top[k])*t/256)
			}
		} else {
			// Ground: checkerboard texture of two colors.
			for k := 0; k < 3; k++ {
				c[k] = byte((top[k] + bot[k]) / 2)
			}
		}
		for x := 0; x < w; x++ {
			px := c
			if y >= horizon {
				if ((x/8)+(y/8))%2 == 0 {
					px[0] = byte(int(px[0]) * 3 / 4)
					px[1] = byte(int(px[1]) * 3 / 4)
					px[2] = byte(int(px[2]) * 3 / 4)
				}
			}
			im.Set(x, y, px[0], px[1], px[2])
		}
	}
	// Solid rectangles.
	for i := 0; i < 4+rng.intn(4); i++ {
		x0, y0 := rng.intn(w), rng.intn(h)
		rw, rh := 4+rng.intn(w/3), 4+rng.intn(h/3)
		r, g, b := rng.byteVal(), rng.byteVal(), rng.byteVal()
		for y := y0; y < y0+rh && y < h; y++ {
			for x := x0; x < x0+rw && x < w; x++ {
				im.Set(x, y, r, g, b)
			}
		}
	}
	// Discs.
	for i := 0; i < 2+rng.intn(3); i++ {
		cx, cy := rng.intn(w), rng.intn(h)
		rad := 3 + rng.intn(h/6+1)
		r, g, b := rng.byteVal(), rng.byteVal(), rng.byteVal()
		for y := cy - rad; y <= cy+rad; y++ {
			if y < 0 || y >= h {
				continue
			}
			for x := cx - rad; x <= cx+rad; x++ {
				if x < 0 || x >= w {
					continue
				}
				dx, dy := x-cx, y-cy
				if dx*dx+dy*dy <= rad*rad {
					im.Set(x, y, r, g, b)
				}
			}
		}
	}
	// Mild noise on a subset of pixels.
	for i := 0; i < w*h/16; i++ {
		x, y := rng.intn(w), rng.intn(h)
		r, g, b := im.At(x, y)
		im.Set(x, y, jitter(r, rng), jitter(g, rng), jitter(b, rng))
	}
	return im
}

func jitter(v byte, rng *prng) byte {
	d := rng.intn(17) - 8
	n := int(v) + d
	if n < 0 {
		n = 0
	}
	if n > 255 {
		n = 255
	}
	return byte(n)
}

// CorpusSeed derives corpus image i's synthesis seed from the corpus
// seed. Exposed so a consumer that regenerates single frames on demand
// (the real-execution backend's preprocessing stage) produces exactly
// the Corpus images.
func CorpusSeed(seed uint64, i int) uint64 {
	return seed + uint64(i)*0x9E3779B9
}

// Corpus generates n distinct deterministic images of the given size.
func Corpus(seed uint64, n, w, h int) []*RGB {
	out := make([]*RGB, n)
	for i := range out {
		out[i] = Synthesize(CorpusSeed(seed, i), w, h)
	}
	return out
}
