// Package img provides the image substrate for the MARVEL case study:
// interleaved RGB images with DMA-friendly row strides, the Smith–Chang
// style 166-bin HSV color quantization MARVEL's color features use
// ([18], §5.2), grayscale conversion, row slicing with halos for SPE
// processing (§3.4), and a deterministic synthetic image generator that
// replaces the paper's news-video image corpus.
package img

import "fmt"

// RGB is an 8-bit interleaved RGB image. Pix holds H rows of Stride bytes;
// a row's pixels occupy its first 3*W bytes. Stride is quadword-aligned so
// whole rows are DMA-able.
type RGB struct {
	W, H   int
	Stride int
	Pix    []byte
}

// StrideFor returns the quadword-aligned byte stride for a row of w RGB
// pixels.
func StrideFor(w int) int { return (3*w + 15) &^ 15 }

// New allocates a w×h image with aligned stride.
func New(w, h int) *RGB {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	s := StrideFor(w)
	return &RGB{W: w, H: h, Stride: s, Pix: make([]byte, s*h)}
}

// Wrap views an existing byte buffer (e.g. an SPE local-store slice) as an
// image without copying. The buffer must hold h*stride bytes.
func Wrap(pix []byte, w, h, stride int) *RGB {
	if stride < 3*w {
		panic(fmt.Sprintf("img: stride %d < 3*%d", stride, w))
	}
	if len(pix) < h*stride {
		panic(fmt.Sprintf("img: buffer %d B < %d rows × %d B", len(pix), h, stride))
	}
	return &RGB{W: w, H: h, Stride: stride, Pix: pix}
}

// At returns the pixel at (x, y).
func (im *RGB) At(x, y int) (r, g, b byte) {
	i := y*im.Stride + 3*x
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// Set stores the pixel at (x, y).
func (im *RGB) Set(x, y int, r, g, b byte) {
	i := y*im.Stride + 3*x
	im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
}

// Row returns the packed pixel bytes of row y (3*W bytes).
func (im *RGB) Row(y int) []byte {
	off := y * im.Stride
	return im.Pix[off : off+3*im.W]
}

// Rows returns a zero-copy sub-image of rows [y0, y1).
func (im *RGB) Rows(y0, y1 int) *RGB {
	if y0 < 0 || y1 > im.H || y0 >= y1 {
		panic(fmt.Sprintf("img: bad row range [%d,%d) of %d", y0, y1, im.H))
	}
	return &RGB{W: im.W, H: y1 - y0, Stride: im.Stride, Pix: im.Pix[y0*im.Stride : y1*im.Stride]}
}

// Bytes returns the total backing size in bytes.
func (im *RGB) Bytes() int { return im.H * im.Stride }

// Clone deep-copies the image.
func (im *RGB) Clone() *RGB {
	out := &RGB{W: im.W, H: im.H, Stride: im.Stride, Pix: make([]byte, len(im.Pix))}
	copy(out.Pix, im.Pix)
	return out
}

// Gray converts to 8-bit luma with the integer BT.601 weights
// (77R + 150G + 29B) >> 8, returning one row of w bytes per image row
// (stride w).
func (im *RGB) Gray() []byte {
	out := make([]byte, im.W*im.H)
	for y := 0; y < im.H; y++ {
		row := im.Pix[y*im.Stride:]
		for x := 0; x < im.W; x++ {
			r, g, b := int(row[3*x]), int(row[3*x+1]), int(row[3*x+2])
			out[y*im.W+x] = byte((77*r + 150*g + 29*b) >> 8)
		}
	}
	return out
}

// GrayAt computes the luma of a single pixel with the same weights.
func GrayAt(r, g, b byte) byte {
	return byte((77*int(r) + 150*int(g) + 29*int(b)) >> 8)
}
