package img

import (
	"testing"
	"testing/quick"
)

func TestResizeIdentityIsCopy(t *testing.T) {
	im := Synthesize(3, 20, 14)
	out := Resize(im, 20, 14)
	for y := 0; y < 14; y++ {
		for x := 0; x < 20; x++ {
			r1, g1, b1 := im.At(x, y)
			r2, g2, b2 := out.At(x, y)
			if r1 != r2 || g1 != g2 || b1 != b2 {
				t.Fatalf("identity resize changed pixel %d,%d", x, y)
			}
		}
	}
	out.Set(0, 0, 9, 9, 9)
	if r, _, _ := im.At(0, 0); r == 9 {
		t.Fatal("identity resize must not alias the source")
	}
}

func TestResizeUniformImageStaysUniform(t *testing.T) {
	im := New(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			im.Set(x, y, 120, 80, 40)
		}
	}
	for _, dim := range [][2]int{{8, 8}, {32, 32}, {5, 29}, {1, 1}} {
		out := Resize(im, dim[0], dim[1])
		for y := 0; y < out.H; y++ {
			for x := 0; x < out.W; x++ {
				r, g, b := out.At(x, y)
				if r != 120 || g != 80 || b != 40 {
					t.Fatalf("resize %v: pixel %d,%d = %d,%d,%d", dim, x, y, r, g, b)
				}
			}
		}
	}
}

func TestResizeCornersPreserved(t *testing.T) {
	// Bilinear with center mapping anchored at the corners keeps the four
	// corner pixels exact for any target size > 1.
	im := Synthesize(9, 31, 23)
	out := Resize(im, 64, 48)
	corners := [][2][2]int{
		{{0, 0}, {0, 0}},
		{{30, 0}, {63, 0}},
		{{0, 22}, {0, 47}},
		{{30, 22}, {63, 47}},
	}
	for _, c := range corners {
		r1, g1, b1 := im.At(c[0][0], c[0][1])
		r2, g2, b2 := out.At(c[1][0], c[1][1])
		if r1 != r2 || g1 != g2 || b1 != b2 {
			t.Fatalf("corner %v not preserved: %d,%d,%d vs %d,%d,%d", c, r1, g1, b1, r2, g2, b2)
		}
	}
}

func TestResizeDownUp(t *testing.T) {
	im := Synthesize(11, 64, 48)
	small := Resize(im, 32, 24)
	if small.W != 32 || small.H != 24 {
		t.Fatalf("dims %dx%d", small.W, small.H)
	}
	big := Resize(small, 64, 48)
	if big.W != 64 || big.H != 48 {
		t.Fatalf("dims %dx%d", big.W, big.H)
	}
}

func TestResizeRejectsBadTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Resize(New(4, 4), 0, 4)
}

// Property: output values are always within the min/max of the source
// channel range (bilinear is a convex combination).
func TestPropResizeWithinRange(t *testing.T) {
	f := func(seed uint16, wRaw, hRaw uint8) bool {
		im := Synthesize(uint64(seed), 17, 13)
		var lo, hi [3]int
		for c := range lo {
			lo[c], hi[c] = 255, 0
		}
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				px := [3]byte{}
				px[0], px[1], px[2] = im.At(x, y)
				for c := 0; c < 3; c++ {
					if int(px[c]) < lo[c] {
						lo[c] = int(px[c])
					}
					if int(px[c]) > hi[c] {
						hi[c] = int(px[c])
					}
				}
			}
		}
		out := Resize(im, int(wRaw)%40+1, int(hRaw)%40+1)
		for y := 0; y < out.H; y++ {
			for x := 0; x < out.W; x++ {
				px := [3]byte{}
				px[0], px[1], px[2] = out.At(x, y)
				for c := 0; c < 3; c++ {
					if int(px[c]) < lo[c] || int(px[c]) > hi[c] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
