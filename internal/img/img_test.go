package img

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestStrideAlignment(t *testing.T) {
	for _, w := range []int{1, 5, 16, 352, 1600} {
		s := StrideFor(w)
		if s%16 != 0 || s < 3*w {
			t.Errorf("StrideFor(%d) = %d", w, s)
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	im := New(7, 5)
	im.Set(6, 4, 1, 2, 3)
	r, g, b := im.At(6, 4)
	if r != 1 || g != 2 || b != 3 {
		t.Fatalf("At = %d,%d,%d", r, g, b)
	}
}

func TestRowsSubImageSharesBacking(t *testing.T) {
	im := New(8, 8)
	sub := im.Rows(2, 5)
	if sub.H != 3 || sub.W != 8 {
		t.Fatalf("sub dims %dx%d", sub.W, sub.H)
	}
	sub.Set(0, 0, 9, 9, 9)
	if r, _, _ := im.At(0, 2); r != 9 {
		t.Fatal("sub-image writes must alias parent")
	}
}

func TestWrapValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short buffer should panic")
		}
	}()
	Wrap(make([]byte, 10), 4, 4, StrideFor(4))
}

func TestGrayMatchesGrayAt(t *testing.T) {
	im := Synthesize(3, 33, 17)
	g := im.Gray()
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, gg, b := im.At(x, y)
			if g[y*im.W+x] != GrayAt(r, gg, b) {
				t.Fatalf("gray mismatch at %d,%d", x, y)
			}
		}
	}
}

func TestHSVKnownColors(t *testing.T) {
	cases := []struct {
		r, g, b byte
		h       int
		s, v    byte
	}{
		{255, 0, 0, 0, 255, 255},
		{0, 255, 0, 120, 255, 255},
		{0, 0, 255, 240, 255, 255},
		{0, 0, 0, 0, 0, 0},
		{255, 255, 255, 0, 0, 255},
		{128, 128, 128, 0, 0, 128},
	}
	for _, c := range cases {
		h, s, v := RGBToHSV(c.r, c.g, c.b)
		if h != c.h || s != c.s || v != c.v {
			t.Errorf("HSV(%d,%d,%d) = %d,%d,%d want %d,%d,%d", c.r, c.g, c.b, h, s, v, c.h, c.s, c.v)
		}
	}
}

func TestQuantizeBinsInRange(t *testing.T) {
	f := func(r, g, b byte) bool {
		bin := QuantizeHSV166(r, g, b)
		return bin >= 0 && bin < HistBins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeGraysAreAchromatic(t *testing.T) {
	for _, v := range []byte{0, 60, 130, 255} {
		bin := QuantizeHSV166(v, v, v)
		if bin < 162 {
			t.Errorf("gray %d fell in chromatic bin %d", v, bin)
		}
	}
	if QuantizeHSV166(255, 0, 0) >= 162 {
		t.Error("saturated red should be chromatic")
	}
	// Darker value must never land in a higher gray bin than brighter.
	if QuantizeHSV166(10, 10, 10) > QuantizeHSV166(250, 250, 250) {
		t.Error("gray ordering broken")
	}
}

func TestQuantizeRowsMatchesPixelwise(t *testing.T) {
	im := Synthesize(7, 40, 30)
	dst := make([]int32, im.W*im.H)
	QuantizeRows(im, 0, im.H, dst)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			if dst[y*im.W+x] != int32(QuantizeHSV166(r, g, b)) {
				t.Fatalf("QuantizeRows mismatch at %d,%d", x, y)
			}
		}
	}
}

func TestPlanSlicesCoverExactly(t *testing.T) {
	f := func(hRaw, maxRaw, haloRaw, granRaw uint8) bool {
		h := int(hRaw)%500 + 1
		maxRows := int(maxRaw)%120 + 3
		halo := int(haloRaw) % 10
		gran := int(granRaw)%8 + 1
		slices, err := PlanSlices(h, maxRows, halo, gran)
		if err != nil {
			return maxRows-2*halo < gran // only legitimate failure
		}
		y := 0
		for i, s := range slices {
			if s.Y0 != y || s.Y1 <= s.Y0 {
				return false
			}
			if s.TransferRows() > maxRows {
				return false
			}
			if s.TransferY0() < 0 || s.TransferY1() > h {
				return false
			}
			// Interior slices carry full halos.
			if s.Y0 >= halo && s.HaloTop != halo {
				return false
			}
			if s.Y1+halo <= h && s.HaloBottom != halo {
				return false
			}
			// All but the last payload are granularity multiples.
			if i < len(slices)-1 && s.PayloadRows()%gran != 0 {
				return false
			}
			y = s.Y1
		}
		return y == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanSlicesErrors(t *testing.T) {
	if _, err := PlanSlices(0, 100, 0, 1); err == nil {
		t.Error("zero height should fail")
	}
	if _, err := PlanSlices(100, 10, 8, 1); err == nil {
		t.Error("halo larger than budget should fail")
	}
	if _, err := PlanSlices(100, 64, -1, 1); err == nil {
		t.Error("negative halo should fail")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(42, 64, 48)
	b := Synthesize(42, 64, 48)
	if !bytes.Equal(a.Pix, b.Pix) {
		t.Fatal("same seed should give identical images")
	}
	c := Synthesize(43, 64, 48)
	if bytes.Equal(a.Pix, c.Pix) {
		t.Fatal("different seeds should differ")
	}
}

func TestCorpusDistinct(t *testing.T) {
	imgs := Corpus(1, 5, 32, 24)
	if len(imgs) != 5 {
		t.Fatalf("corpus size %d", len(imgs))
	}
	for i := 1; i < len(imgs); i++ {
		if bytes.Equal(imgs[0].Pix, imgs[i].Pix) {
			t.Fatalf("images 0 and %d identical", i)
		}
	}
}

func TestSynthesizeContentVariety(t *testing.T) {
	// The scene must populate both chromatic and achromatic bins across a
	// small corpus, or feature tests would be vacuous.
	imgs := Corpus(9, 4, 352, 240)
	bins := map[int]bool{}
	for _, im := range imgs {
		for y := 0; y < im.H; y += 3 {
			for x := 0; x < im.W; x += 3 {
				r, g, b := im.At(x, y)
				bins[QuantizeHSV166(r, g, b)] = true
			}
		}
	}
	if len(bins) < 20 {
		t.Fatalf("corpus hits only %d distinct bins; too uniform", len(bins))
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Synthesize(5, 16, 16)
	b := a.Clone()
	b.Set(0, 0, 1, 2, 3)
	if r, _, _ := a.At(0, 0); r == 1 {
		ar, _, _ := a.At(0, 0)
		br, _, _ := b.At(0, 0)
		if ar == br {
			t.Fatal("clone aliases original")
		}
	}
}
