package img

import "fmt"

// Slice describes one horizontal band of an image prepared for SPE
// processing: the payload rows [Y0, Y1) plus the halo rows a windowed
// operator (convolution, correlogram) needs above and below (§3.4's
// "border conditions at the data slice edges").
type Slice struct {
	// Y0, Y1 bound the payload rows in image coordinates.
	Y0, Y1 int
	// HaloTop and HaloBottom are the extra rows transferred before Y0 and
	// after Y1 (clamped at the image boundary, where the operator's own
	// boundary handling applies instead).
	HaloTop, HaloBottom int
}

// TransferY0 returns the first row actually transferred.
func (s Slice) TransferY0() int { return s.Y0 - s.HaloTop }

// TransferY1 returns one past the last row actually transferred.
func (s Slice) TransferY1() int { return s.Y1 + s.HaloBottom }

// TransferRows returns the number of rows transferred (payload + halo).
func (s Slice) TransferRows() int { return s.TransferY1() - s.TransferY0() }

// PayloadRows returns the number of rows the kernel produces results for.
func (s Slice) PayloadRows() int { return s.Y1 - s.Y0 }

// PlanSlices partitions an h-row image into slices whose transferred rows
// (payload + halo) never exceed maxRows, with payload heights that are
// multiples of granularity except for the final slice. halo is the
// operator radius in rows. It returns an error when maxRows cannot even
// hold one granule plus its halos — the kernel simply does not fit and
// must be restructured, the situation §3.2 warns about.
func PlanSlices(h, maxRows, halo, granularity int) ([]Slice, error) {
	if h <= 0 {
		return nil, fmt.Errorf("img: non-positive image height %d", h)
	}
	if halo < 0 {
		return nil, fmt.Errorf("img: negative halo %d", halo)
	}
	if granularity <= 0 {
		granularity = 1
	}
	payloadMax := maxRows - 2*halo
	payloadMax -= payloadMax % granularity
	if payloadMax <= 0 {
		return nil, fmt.Errorf("img: %d-row budget cannot hold a %d-row granule with %d-row halos",
			maxRows, granularity, halo)
	}
	var out []Slice
	for y := 0; y < h; y += payloadMax {
		s := Slice{Y0: y, Y1: y + payloadMax}
		if s.Y1 > h {
			s.Y1 = h
		}
		s.HaloTop = halo
		if s.Y0-halo < 0 {
			s.HaloTop = s.Y0
		}
		s.HaloBottom = halo
		if s.Y1+halo > h {
			s.HaloBottom = h - s.Y1
		}
		out = append(out, s)
	}
	return out, nil
}
