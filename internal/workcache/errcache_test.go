package workcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestErrorDoesNotPoisonUnrelatedKeys: a failed computation must be
// invisible to every other key — concurrent lookups on healthy keys keep
// succeeding while one key fails, under the race detector.
func TestErrorDoesNotPoisonUnrelatedKeys(t *testing.T) {
	var c Cache[int, int]
	boom := errors.New("boom")
	const keys = 8
	const lookupsPerKey = 50
	var wg sync.WaitGroup
	var failures atomic.Int64
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := 0; i < lookupsPerKey; i++ {
				v, err := c.Do(k, func() (int, error) {
					if k == 3 {
						return 0, boom
					}
					return k * 10, nil
				})
				if k == 3 {
					if !errors.Is(err, boom) {
						failures.Add(1)
					}
					continue
				}
				if err != nil || v != k*10 {
					failures.Add(1)
				}
			}
		}(k)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d lookups got a wrong result: the failing key leaked into its neighbours", n)
	}
	if c.Len() != keys {
		t.Fatalf("Len = %d, want %d (error entries are cached too)", c.Len(), keys)
	}
}

// TestRetryAfterErrorPinned pins the error-retry contract: computations
// are assumed deterministic, so a failed key does NOT recompute on later
// lookups — every retry observes the cached error without re-running the
// (possibly expensive, possibly side-effecting) compute function. A
// behavior change here silently alters sweep costs; this test makes it a
// conscious decision.
func TestRetryAfterErrorPinned(t *testing.T) {
	var c Cache[string, int]
	var calls atomic.Int64
	compute := func() (int, error) {
		calls.Add(1)
		return 0, fmt.Errorf("transient-looking failure %d", calls.Load())
	}
	_, err1 := c.Do("k", compute)
	_, err2 := c.Do("k", compute)
	if err1 == nil || err2 == nil {
		t.Fatal("failing compute reported success")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("retry saw a different error (%q vs %q): errors must be cached verbatim", err1, err2)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times after an error, want 1 (no retry-recompute)", n)
	}
	// Flush is the sanctioned retry path.
	c.Flush()
	if _, err := c.Do("k", compute); err == nil {
		t.Fatal("post-flush compute reported success")
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("compute ran %d times across a Flush, want 2", n)
	}
}

// TestConcurrentErrorSingleflight: many goroutines hitting one failing
// key still trigger exactly one computation, and all observe its error.
func TestConcurrentErrorSingleflight(t *testing.T) {
	var c Cache[int, int]
	boom := errors.New("boom")
	var calls atomic.Int64
	gate := make(chan struct{})
	const workers = 32
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			_, errs[i] = c.Do(1, func() (int, error) {
				calls.Add(1)
				return 0, boom
			})
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("failing compute ran %d times under contention, want 1", n)
	}
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("worker %d got %v, want the shared error", i, err)
		}
	}
}
