package workcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoComputesOnceAndShares(t *testing.T) {
	var c Cache[int, string]
	var calls atomic.Int64
	for i := 0; i < 5; i++ {
		v, err := c.Do(7, func() (string, error) {
			calls.Add(1)
			return "seven", nil
		})
		if err != nil || v != "seven" {
			t.Fatalf("Do = %q, %v", v, err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	if hits, misses := c.Stats(); hits != 4 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 4/1", hits, misses)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

// TestSingleflightUnderContention is the tentpole guarantee: many
// goroutines requesting the same key concurrently trigger exactly one
// computation, and all of them receive its result.
func TestSingleflightUnderContention(t *testing.T) {
	var c Cache[string, *[]int]
	var calls atomic.Int64
	gate := make(chan struct{})
	const workers = 32
	results := make([]*[]int, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			v, err := c.Do("k", func() (*[]int, error) {
				calls.Add(1)
				s := []int{1, 2, 3}
				return &s, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", n)
	}
	for i, v := range results {
		if v != results[0] {
			t.Fatalf("worker %d received a different pointer: all callers must share one value", i)
		}
	}
}

func TestErrorsAreCached(t *testing.T) {
	var c Cache[int, int]
	boom := errors.New("boom")
	var calls int
	for i := 0; i < 3; i++ {
		_, err := c.Do(1, func() (int, error) {
			calls++
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if calls != 1 {
		t.Fatalf("failing compute ran %d times, want 1 (errors are deterministic)", calls)
	}
}

func TestDistinctKeysComputeIndependently(t *testing.T) {
	var c Cache[int, int]
	for k := 0; k < 10; k++ {
		v, err := c.Do(k, func() (int, error) { return k * k, nil })
		if err != nil || v != k*k {
			t.Fatalf("Do(%d) = %d, %v", k, v, err)
		}
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d, want 10", c.Len())
	}
}

func TestFlushForcesRecompute(t *testing.T) {
	var c Cache[int, int]
	var calls int
	compute := func() (int, error) { calls++; return 42, nil }
	c.Do(1, compute)
	c.Flush()
	c.Do(1, compute)
	if calls != 2 {
		t.Fatalf("compute ran %d times across a Flush, want 2", calls)
	}
}

func TestPanicUnpoisonsKey(t *testing.T) {
	var c Cache[int, int]
	func() {
		defer func() { recover() }()
		c.Do(1, func() (int, error) { panic("bang") })
	}()
	// The key must be retryable, not wedged.
	v, err := c.Do(1, func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("retry after panic = %d, %v", v, err)
	}
}
