package workcache

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoComputesOnceAndShares(t *testing.T) {
	var c Cache[int, string]
	var calls atomic.Int64
	for i := 0; i < 5; i++ {
		v, err := c.Do(7, func() (string, error) {
			calls.Add(1)
			return "seven", nil
		})
		if err != nil || v != "seven" {
			t.Fatalf("Do = %q, %v", v, err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	if hits, misses := c.Stats(); hits != 4 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 4/1", hits, misses)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

// TestSingleflightUnderContention is the tentpole guarantee: many
// goroutines requesting the same key concurrently trigger exactly one
// computation, and all of them receive its result.
func TestSingleflightUnderContention(t *testing.T) {
	var c Cache[string, *[]int]
	var calls atomic.Int64
	gate := make(chan struct{})
	const workers = 32
	results := make([]*[]int, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			v, err := c.Do("k", func() (*[]int, error) {
				calls.Add(1)
				s := []int{1, 2, 3}
				return &s, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", n)
	}
	for i, v := range results {
		if v != results[0] {
			t.Fatalf("worker %d received a different pointer: all callers must share one value", i)
		}
	}
}

func TestErrorsAreCached(t *testing.T) {
	var c Cache[int, int]
	boom := errors.New("boom")
	var calls int
	for i := 0; i < 3; i++ {
		_, err := c.Do(1, func() (int, error) {
			calls++
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if calls != 1 {
		t.Fatalf("failing compute ran %d times, want 1 (errors are deterministic)", calls)
	}
}

func TestDistinctKeysComputeIndependently(t *testing.T) {
	var c Cache[int, int]
	for k := 0; k < 10; k++ {
		v, err := c.Do(k, func() (int, error) { return k * k, nil })
		if err != nil || v != k*k {
			t.Fatalf("Do(%d) = %d, %v", k, v, err)
		}
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d, want 10", c.Len())
	}
}

func TestFlushForcesRecompute(t *testing.T) {
	var c Cache[int, int]
	var calls int
	compute := func() (int, error) { calls++; return 42, nil }
	c.Do(1, compute)
	c.Flush()
	c.Do(1, compute)
	if calls != 2 {
		t.Fatalf("compute ran %d times across a Flush, want 2", calls)
	}
}

// TestStatsCountWaitersImmediately pins the accounting fix: a waiter
// blocked on an in-flight computation is counted as a hit at lookup
// admission, not when the computation finishes, so hits+misses never
// transiently undercounts concurrent requests.
func TestStatsCountWaitersImmediately(t *testing.T) {
	var c Cache[int, int]
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(1, func() (int, error) {
			close(started)
			<-release
			return 7, nil
		})
	}()
	<-started

	const waiters = 8
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Do(1, func() (int, error) { t.Error("waiter recomputed"); return 0, nil })
		}()
	}
	// Wait until all waiters report hits: with admission-time accounting
	// this converges while the computation is still blocked, because each
	// waiter is counted before it parks on the in-flight entry.
	for {
		hits, misses := c.Stats()
		if misses != 1 {
			t.Fatalf("misses = %d while one compute in flight, want 1", misses)
		}
		if hits == waiters {
			break
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if hits, misses := c.Stats(); hits != waiters || misses != 1 {
		t.Fatalf("stats = %d/%d after release, want %d/1", hits, misses, waiters)
	}
}

// TestFlushDuringInFlight pins the Flush semantics under concurrency: a
// waiter admitted before the Flush still receives the old in-flight
// value, a requester arriving after the Flush recomputes, and the
// hit/miss counters stay consistent (every admitted lookup counted
// exactly once, no orphaned counts on the flushed entry).
func TestFlushDuringInFlight(t *testing.T) {
	var c Cache[int, string]
	started := make(chan struct{})
	release := make(chan struct{})
	oldDone := make(chan string, 2)
	go func() {
		v, _ := c.Do(1, func() (string, error) {
			close(started)
			<-release
			return "old", nil
		})
		oldDone <- v
	}()
	<-started

	// A waiter admitted while the old computation is in flight.
	go func() {
		v, _ := c.Do(1, func() (string, error) { return "unexpected", nil })
		oldDone <- v
	}()
	for {
		if hits, _ := c.Stats(); hits == 1 {
			break // the waiter is admitted (and counted)
		}
		runtime.Gosched()
	}

	c.Flush()

	// A requester arriving after the Flush must install a fresh entry and
	// recompute, even though the old computation has not finished yet.
	newDone := make(chan string, 1)
	go func() {
		v, err := c.Do(1, func() (string, error) { return "new", nil })
		if err != nil {
			t.Error(err)
		}
		newDone <- v
	}()
	if v := <-newDone; v != "new" {
		t.Fatalf("post-Flush requester got %q, want a recomputed value", v)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if v := <-oldDone; v != "old" {
			t.Fatalf("pre-Flush caller got %q, want the old in-flight value", v)
		}
	}
	// 4 admitted lookups: old computer (miss), old waiter (hit),
	// post-Flush requester (miss), and the final consistency check below
	// (hit on the fresh entry).
	if v, err := c.Do(1, func() (string, error) { return "unexpected", nil }); err != nil || v != "new" {
		t.Fatalf("steady-state lookup = %q, %v, want the recomputed value", v, err)
	}
	if hits, misses := c.Stats(); hits+misses != 4 || misses != 2 {
		t.Fatalf("stats = %d hits / %d misses, want 2 hits / 2 misses", hits, misses)
	}
}

func TestPanicUnpoisonsKey(t *testing.T) {
	var c Cache[int, int]
	func() {
		defer func() { recover() }()
		c.Do(1, func() (int, error) { panic("bang") })
	}()
	// The key must be retryable, not wedged.
	v, err := c.Do(1, func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("retry after panic = %d, %v", v, err)
	}
}
