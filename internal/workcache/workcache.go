// Package workcache provides a concurrency-safe memoization table with
// singleflight semantics, used to share expensive deterministic workload
// artifacts (generated image sets, trained model libraries, reference
// runs) across the many independent simulation points of an experiment
// sweep. The first goroutine to request a key computes the value while
// holding a per-key latch; concurrent requesters for the same key block
// on the latch and share the finished result instead of duplicating the
// work. Values must be deterministic functions of their key and are
// returned by reference, so callers must treat them as immutable.
package workcache

import (
	"errors"
	"sync"
	"sync/atomic"
)

// errPanicked is handed to waiters whose in-flight computation panicked;
// the panic itself propagates in the computing goroutine.
var errPanicked = errors.New("workcache: in-flight computation panicked")

// Cache memoizes compute(key) results. The zero value is ready to use.
// A Cache must not be copied after first use.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*entry[V]

	// hits and misses are counted at lookup admission, while mu is held:
	// a waiter blocked on an in-flight entry has already been counted, so
	// hits+misses always equals the number of Do calls that have passed
	// admission, even while computations are still in flight and across
	// Flush (which can otherwise orphan an old entry's waiters).
	hits   atomic.Uint64
	misses atomic.Uint64
}

// entry is one key's slot: ready is closed once val/err are final.
type entry[V any] struct {
	ready chan struct{}
	val   V
	err   error
}

// Do returns the cached value for key, computing it with compute on the
// first request. Concurrent callers for the same key wait for the single
// in-flight computation rather than starting their own. Errors are cached
// alongside values: the computation is assumed deterministic, so a failed
// key fails identically on every lookup. If compute panics, the panic
// propagates to the caller that ran it and the key is removed so a later
// request retries instead of blocking forever.
func (c *Cache[K, V]) Do(key K, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[K]*entry[V])
	}
	if e, ok := c.entries[key]; ok {
		c.hits.Add(1)
		c.mu.Unlock()
		<-e.ready
		return e.val, e.err
	}
	e := &entry[V]{ready: make(chan struct{})}
	c.entries[key] = e
	c.misses.Add(1)
	c.mu.Unlock()

	done := false
	defer func() {
		if !done { // compute panicked: unpoison the key, release waiters
			e.err = errPanicked
			c.mu.Lock()
			// Only drop the slot if it is still ours: a Flush during the
			// in-flight compute may already have cleared it, and a newer
			// requester may have installed a fresh entry under the same key
			// that must not be torn down by the old computation.
			if cur, ok := c.entries[key]; ok && cur == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
			close(e.ready)
		}
	}()
	e.val, e.err = compute()
	done = true
	close(e.ready)
	return e.val, e.err
}

// Len reports the number of cached keys (including in-flight ones).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports lookups that found an entry (hits, including waits on an
// in-flight computation) and lookups that computed (misses). Both are
// counted when the lookup is admitted, not when it completes, so under
// concurrency hits+misses always equals the number of admitted Do calls.
func (c *Cache[K, V]) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Flush drops every cached entry. In-flight computations still complete
// for their already-admitted waiters (who receive the old value), while
// requesters arriving after the Flush install fresh entries and
// recompute. Intended for tests and cold-path calibration; not for
// steady-state use.
func (c *Cache[K, V]) Flush() {
	c.mu.Lock()
	c.entries = nil
	c.mu.Unlock()
}
