package spe

import (
	"strings"
	"testing"

	"cellport/internal/cost"
	"cellport/internal/eib"
	"cellport/internal/ls"
	"cellport/internal/mainmem"
	"cellport/internal/mfc"
	"cellport/internal/sim"
	"cellport/internal/trace"
)

type rig struct {
	e   *sim.Engine
	bus *eib.Bus
	mem *mainmem.Memory
	s   *SPE
	rec *trace.Recorder
}

func newRig() *rig {
	e := sim.NewEngine()
	bus := eib.New(e, eib.DefaultConfig())
	mem := mainmem.New(8 << 20)
	rec := trace.NewRecorder()
	s := New(e, 3, bus, mem, cost.NewSPE(), mfc.DefaultConfig(), rec)
	return &rig{e: e, bus: bus, mem: mem, s: s, rec: rec}
}

func TestLoadValidation(t *testing.T) {
	r := newRig()
	if err := r.s.Load(Program{Name: "nil"}); err == nil {
		t.Error("nil entry point accepted")
	}
	if err := r.s.Load(Program{Name: "big", CodeBytes: ls.Size, Main: func(*Context) {}}); err == nil {
		t.Error("oversized image accepted")
	}
	if r.s.Running() {
		t.Error("failed loads must not mark the SPE running")
	}
}

func TestContextIdentity(t *testing.T) {
	r := newRig()
	done := false
	err := r.s.Load(Program{
		Name:      "id",
		CodeBytes: 1024,
		Main: func(ctx *Context) {
			if ctx.ID() != 3 {
				t.Errorf("ID = %d, want 3", ctx.ID())
			}
			if ctx.Model().Name != "SPE" {
				t.Errorf("model = %s", ctx.Model().Name)
			}
			if ctx.Store() != r.s.Store {
				t.Error("Store mismatch")
			}
			if ctx.Proc() == nil {
				t.Error("nil proc")
			}
			done = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("program did not run")
	}
}

func TestComputeAccounting(t *testing.T) {
	r := newRig()
	err := r.s.Load(Program{
		Name:      "work",
		CodeBytes: 1024,
		Main: func(ctx *Context) {
			ctx.ComputeScalar(0.35*3.2e9, "a")             // 1 s
			ctx.ComputeSIMD(16*3.2e9, cost.Bits16, 1, "b") // 1 s
			ctx.ComputeCycles(3.2e9, "c")                  // 1 s
			ctx.ComputeBranches(1e9, 0.1, "d")             // 1e9*0.1*18 cycles
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	wantBranches := cost.NewSPE().Branches(1e9, 0.1)
	want := 3*sim.Second + wantBranches
	if got := r.s.BusyTime(); got != want {
		t.Fatalf("busy = %v, want %v", got, want)
	}
	// Compute spans must be traced on the SPE3 lane.
	busy := r.rec.BusyTime(trace.KindCompute)
	if busy["SPE3"] != want {
		t.Fatalf("traced busy = %v, want %v", busy["SPE3"], want)
	}
}

func TestZeroComputeIsFree(t *testing.T) {
	r := newRig()
	err := r.s.Load(Program{
		Name:      "free",
		CodeBytes: 512,
		Main: func(ctx *Context) {
			ctx.ComputeScalar(0, "zero")
			ctx.ComputeSIMD(-5, cost.Bits8, 0.5, "neg")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.s.BusyTime() != 0 {
		t.Fatalf("busy = %v, want 0", r.s.BusyTime())
	}
}

func TestDMAWaitAccounting(t *testing.T) {
	r := newRig()
	ea := r.mem.MustAlloc(64*1024, 128)
	err := r.s.Load(Program{
		Name:      "dma",
		CodeBytes: 2048,
		Main: func(ctx *Context) {
			buf := ctx.Store().MustAlloc(16*1024, 128)
			if err := ctx.Get(buf, ea, 16*1024, 0); err != nil {
				t.Error(err)
				return
			}
			ctx.WaitTag(0)
			if err := ctx.Put(buf, ea+16384, 16*1024, 1); err != nil {
				t.Error(err)
				return
			}
			ctx.WaitTagMask(1 << 1)
			if err := ctx.GetList(buf, []mfc.ListElement{{EA: ea, Size: 4096}}, 2); err != nil {
				t.Error(err)
				return
			}
			ctx.WaitAllDMA()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.s.DMAWait() <= 0 {
		t.Fatal("expected DMA wait time")
	}
	if s := r.s.MFC.Stats(); s.Commands != 3 || s.ListCommands != 1 {
		t.Fatalf("MFC stats = %+v", s)
	}
}

func TestMailboxWaitAccounting(t *testing.T) {
	r := newRig()
	err := r.s.Load(Program{
		Name:      "mbox",
		CodeBytes: 512,
		Main: func(ctx *Context) {
			v := ctx.ReadInMbox()
			ctx.WriteOutMbox(v + 1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.e.Spawn("ppe", func(p *sim.Proc) {
		p.Sleep(5 * sim.Microsecond)
		r.s.InMbox.Write(p, 10)
		if got := r.s.OutMbox.Read(p); got != 11 {
			t.Errorf("mbox round trip = %d", got)
		}
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.s.MboxWait() < 5*sim.Microsecond {
		t.Fatalf("mbox wait = %v, want >= 5us", r.s.MboxWait())
	}
}

func TestWaitStoppedAndReload(t *testing.T) {
	r := newRig()
	runs := 0
	prog := Program{Name: "oneshot", CodeBytes: 256, Main: func(ctx *Context) {
		ctx.ComputeCycles(100, "x")
		runs++
	}}
	if err := r.s.Load(prog); err != nil {
		t.Fatal(err)
	}
	r.e.Spawn("waiter", func(p *sim.Proc) {
		r.s.WaitStopped(p)
		if r.s.Running() {
			t.Error("still running after WaitStopped")
		}
		if err := r.s.Load(prog); err != nil {
			t.Errorf("reload failed: %v", err)
		}
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("runs = %d, want 2", runs)
	}
}

func TestSignalRegisters(t *testing.T) {
	r := newRig()
	var s1, s2 uint32
	if err := r.s.Load(Program{Name: "sig", CodeBytes: 256, Main: func(ctx *Context) {
		s1 = ctx.ReadSignal1()
		s2 = ctx.ReadSignal2()
		ctx.WriteOutIntrMbox(1)
	}}); err != nil {
		t.Fatal(err)
	}
	r.e.Spawn("ppe", func(p *sim.Proc) {
		r.s.Signal1.Send(0xA)
		r.s.Signal2.Send(0xB)
		r.s.OutIntrMbox.Read(p)
	})
	if err := r.e.Run(); err != nil {
		t.Fatal(err)
	}
	if s1 != 0xA || s2 != 0xB {
		t.Fatalf("signals = %#x/%#x", s1, s2)
	}
}

func TestNilTracerDefaultsToNop(t *testing.T) {
	e := sim.NewEngine()
	bus := eib.New(e, eib.DefaultConfig())
	mem := mainmem.New(1 << 20)
	s := New(e, 0, bus, mem, cost.NewSPE(), mfc.DefaultConfig(), nil)
	if err := s.Load(Program{Name: "n", CodeBytes: 128, Main: func(ctx *Context) {
		ctx.ComputeCycles(10, "ok")
	}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadErrorMessageNamesProgram(t *testing.T) {
	r := newRig()
	err := r.s.Load(Program{Name: "huge-kernel", CodeBytes: ls.Size + 1, Main: func(*Context) {}})
	if err == nil || !strings.Contains(err.Error(), "huge-kernel") {
		t.Fatalf("error should name the program: %v", err)
	}
}
