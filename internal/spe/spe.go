// Package spe models a Synergistic Processing Element: an SPU executing a
// loaded program against its 256 KB local store, with an MFC for DMA, the
// three hardware mailboxes and two signal registers (§2). Programs are Go
// functions that perform their real computation on local-store bytes and
// charge virtual time through the Context's cost-model methods.
package spe

import (
	"errors"
	"fmt"

	"cellport/internal/cost"
	"cellport/internal/eib"
	"cellport/internal/ls"
	"cellport/internal/mainmem"
	"cellport/internal/mbox"
	"cellport/internal/mfc"
	"cellport/internal/sim"
	"cellport/internal/trace"
)

// ErrSPECrashed is the typed sentinel wrapped by operations refused
// because the SPE has failed (injected crash or watchdog kill).
var ErrSPECrashed = errors.New("SPE crashed")

// Program is an SPE executable: a code-image size (checked against the
// local store) and an entry point.
type Program struct {
	// Name identifies the program in traces and errors.
	Name string
	// CodeBytes is the size of the program image in the local store.
	CodeBytes uint32
	// Main is the entry point; it runs as a simulated process. When Main
	// returns, the SPE becomes idle and may be loaded again.
	Main func(ctx *Context)
}

// SPE is one synergistic processing element.
type SPE struct {
	id     int
	engine *sim.Engine
	model  *cost.Model
	tracer trace.Tracer

	Store       *ls.LocalStore
	MFC         *mfc.MFC
	InMbox      *mbox.Mailbox // PPE -> SPU, 4 entries
	OutMbox     *mbox.Mailbox // SPU -> PPE, 1 entry, polled
	OutIntrMbox *mbox.Mailbox // SPU -> PPE, 1 entry, interrupting
	Signal1     *mbox.Signal
	Signal2     *mbox.Signal

	running    bool
	program    string
	proc       *sim.Proc
	doneQ      *sim.Queue
	failed     bool
	failReason string
	busyTime   sim.Duration
	dmaWait    sim.Duration
	mboxWait   sim.Duration
}

// New builds an SPE attached to the shared bus and main memory.
func New(e *sim.Engine, id int, bus *eib.Bus, mem *mainmem.Memory, model *cost.Model, mfcCfg mfc.Config, tracer trace.Tracer) *SPE {
	if tracer == nil {
		tracer = trace.Nop{}
	}
	store := ls.New()
	name := fmt.Sprintf("SPE%d", id)
	return &SPE{
		id:          id,
		engine:      e,
		model:       model,
		tracer:      tracer,
		Store:       store,
		MFC:         mfc.New(e, bus, mem, store, eib.SPEPort(id), mfcCfg),
		InMbox:      mbox.NewMailbox(e, name+" in-mbox", mbox.InboundDepth),
		OutMbox:     mbox.NewMailbox(e, name+" out-mbox", mbox.OutboundDepth),
		OutIntrMbox: mbox.NewMailbox(e, name+" out-intr-mbox", mbox.OutboundDepth),
		Signal1:     mbox.NewSignal(e, name+" sig1", mbox.SignalOR),
		Signal2:     mbox.NewSignal(e, name+" sig2", mbox.SignalOR),
		doneQ:       sim.NewQueue(name + " done"),
	}
}

// ID returns the SPE index.
func (s *SPE) ID() int { return s.id }

// Model returns the SPU cost model.
func (s *SPE) Model() *cost.Model { return s.model }

// Running reports whether a program is executing.
func (s *SPE) Running() bool { return s.running }

// BusyTime reports accumulated compute time.
func (s *SPE) BusyTime() sim.Duration { return s.busyTime }

// DMAWait reports accumulated time blocked on DMA tag completion.
func (s *SPE) DMAWait() sim.Duration { return s.dmaWait }

// MboxWait reports accumulated time blocked on mailboxes.
func (s *SPE) MboxWait() sim.Duration { return s.mboxWait }

// Failed reports whether the SPE has crashed.
func (s *SPE) Failed() bool { return s.failed }

// FailReason returns why the SPE crashed (empty while healthy).
func (s *SPE) FailReason() string { return s.failReason }

// Fail crashes the SPE: the running program (if any) is killed at its next
// scheduling point, queued and in-flight DMA is aborted, and the SPE
// refuses all further program loads. Waiters on WaitStopped are released.
// Failing an already-failed SPE is a no-op.
func (s *SPE) Fail(reason string) {
	if s.failed {
		return
	}
	s.failed = true
	s.failReason = reason
	trace.RecordInstant(s.tracer, fmt.Sprintf("SPE%d", s.id), s.engine.Now(), "fail: "+reason)
	if s.proc != nil {
		s.proc.Kill()
		s.proc = nil
	}
	s.MFC.Abort()
	s.running = false
	s.program = ""
	s.doneQ.WakeAll(s.engine)
}

// Load checks the program image against the local store, loads it, and
// starts Main as a simulated thread (the spe_create_thread analog).
func (s *SPE) Load(prog Program) error {
	if s.failed {
		return fmt.Errorf("spe%d: %w (%s)", s.id, ErrSPECrashed, s.failReason)
	}
	if s.running {
		return fmt.Errorf("spe%d: already running %q", s.id, s.program)
	}
	if prog.Main == nil {
		return fmt.Errorf("spe%d: program %q has no entry point", s.id, prog.Name)
	}
	if err := s.Store.LoadProgram(prog.CodeBytes); err != nil {
		return fmt.Errorf("spe%d: loading %q: %w", s.id, prog.Name, err)
	}
	s.running = true
	s.program = prog.Name
	s.proc = s.engine.Spawn(fmt.Sprintf("SPE%d:%s", s.id, prog.Name), func(p *sim.Proc) {
		ctx := &Context{spe: s, p: p}
		prog.Main(ctx)
		s.running = false
		s.proc = nil
		s.doneQ.WakeAll(s.engine)
	})
	return nil
}

// WaitStopped blocks p until the loaded program returns (the
// spe_wait analog).
func (s *SPE) WaitStopped(p *sim.Proc) {
	p.WaitFor(s.doneQ, func() bool { return !s.running })
}

// Context is the execution environment handed to an SPE program's Main.
// All methods must be called from within Main (they run on the program's
// simulated process).
type Context struct {
	spe *SPE
	p   *sim.Proc
}

// ID returns the hosting SPE's index.
func (c *Context) ID() int { return c.spe.id }

// Now returns the current virtual time.
func (c *Context) Now() sim.Time { return c.p.Now() }

// Proc exposes the underlying simulated process (for advanced waiting).
func (c *Context) Proc() *sim.Proc { return c.p }

// Store returns the SPE's local store.
func (c *Context) Store() *ls.LocalStore { return c.spe.Store }

// Model returns the SPU cost model (for kernels that charge derived
// cycle counts directly).
func (c *Context) Model() *cost.Model { return c.spe.model }

// --- computation ------------------------------------------------------

func (c *Context) charge(d sim.Duration, label string) {
	if d <= 0 {
		return
	}
	start := c.p.Now()
	c.p.Sleep(d)
	c.spe.busyTime += d
	c.spe.tracer.Span(fmt.Sprintf("SPE%d", c.spe.id), start, c.p.Now(), trace.KindCompute, label)
}

// ComputeScalar charges time for n scalar operations on the SPU.
func (c *Context) ComputeScalar(n float64, label string) {
	c.charge(c.spe.model.ScalarOps(n), label)
}

// ComputeSIMD charges time for n element-operations vectorized at width w
// with the given efficiency.
func (c *Context) ComputeSIMD(n float64, w cost.Width, eff float64, label string) {
	c.charge(c.spe.model.SIMDOps(n, w, eff), label)
}

// ComputeBranches charges misprediction stalls for n branches; a negative
// rate uses the SPU default (static prediction).
func (c *Context) ComputeBranches(n, mispredictRate float64, label string) {
	c.charge(c.spe.model.Branches(n, mispredictRate), label)
}

// ComputeCycles charges raw cycles (for fixed-cost sequences).
func (c *Context) ComputeCycles(cycles float64, label string) {
	c.charge(c.spe.model.CyclesToDuration(cycles), label)
}

// --- mailboxes and signals --------------------------------------------

// ReadInMbox blocks until the PPE writes a word (spu_read_in_mbox).
func (c *Context) ReadInMbox() uint32 {
	start := c.p.Now()
	v := c.spe.InMbox.Read(c.p)
	c.spe.mboxWait += c.p.Now().Sub(start)
	return v
}

// WriteOutMbox posts a word to the polled outbound mailbox
// (spu_write_out_mbox), blocking while it is full.
func (c *Context) WriteOutMbox(v uint32) { c.spe.OutMbox.Write(c.p, v) }

// WriteOutIntrMbox posts a word to the interrupting outbound mailbox
// (spu_write_out_intr_mbox).
func (c *Context) WriteOutIntrMbox(v uint32) { c.spe.OutIntrMbox.Write(c.p, v) }

// ReadSignal1 blocks for and clears signal-notification register 1.
func (c *Context) ReadSignal1() uint32 { return c.spe.Signal1.Read(c.p) }

// ReadSignal2 blocks for and clears signal-notification register 2.
func (c *Context) ReadSignal2() uint32 { return c.spe.Signal2.Read(c.p) }

// --- DMA ---------------------------------------------------------------

// Get enqueues a main-memory -> LS DMA under tag.
func (c *Context) Get(lsa ls.Addr, ea mainmem.Addr, size uint32, tag int) error {
	return c.spe.MFC.Get(c.p, lsa, ea, size, tag)
}

// Put enqueues an LS -> main-memory DMA under tag.
func (c *Context) Put(lsa ls.Addr, ea mainmem.Addr, size uint32, tag int) error {
	return c.spe.MFC.Put(c.p, lsa, ea, size, tag)
}

// GetList enqueues a gather DMA list under tag.
func (c *Context) GetList(lsa ls.Addr, list []mfc.ListElement, tag int) error {
	return c.spe.MFC.GetList(c.p, lsa, list, tag)
}

// PutList enqueues a scatter DMA list under tag.
func (c *Context) PutList(lsa ls.Addr, list []mfc.ListElement, tag int) error {
	return c.spe.MFC.PutList(c.p, lsa, list, tag)
}

// DMAError reports the MFC's sticky transfer-error flag (a corrupted
// delivery since the last clear).
func (c *Context) DMAError() bool { return c.spe.MFC.TransferError() }

// ClearDMAError resets the MFC's sticky transfer-error flag.
func (c *Context) ClearDMAError() { c.spe.MFC.ClearTransferError() }

// WaitTag blocks until tag's commands complete, accounting the stall.
func (c *Context) WaitTag(tag int) {
	start := c.p.Now()
	c.spe.MFC.WaitTag(c.p, tag)
	if d := c.p.Now().Sub(start); d > 0 {
		c.spe.dmaWait += d
		c.spe.tracer.Span(fmt.Sprintf("SPE%d", c.spe.id), start, c.p.Now(), trace.KindDMA, "tag-wait")
	}
}

// WaitTagMask blocks until all tags in mask complete.
func (c *Context) WaitTagMask(mask uint32) {
	start := c.p.Now()
	c.spe.MFC.WaitTagMask(c.p, mask)
	if d := c.p.Now().Sub(start); d > 0 {
		c.spe.dmaWait += d
	}
}

// WaitAllDMA drains the MFC queue.
func (c *Context) WaitAllDMA() {
	start := c.p.Now()
	c.spe.MFC.WaitAll(c.p)
	if d := c.p.Now().Sub(start); d > 0 {
		c.spe.dmaWait += d
	}
}
