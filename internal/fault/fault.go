// Package fault implements deterministic fault injection for the
// simulated Cell machine. A Plan is a typed schedule of faults — SPE
// crashes at a virtual time, dropped or corrupted DMA commands, mailbox
// stalls, local-store soft overflows — either parsed from an explicit
// spec string or derived from a seed. An Injector evaluates the plan
// against a running simulation: delivery hooks installed at the hardware
// model's choke points (cell.Machine.InjectFaults) consult it on every
// countable operation. Matching is one-shot and purely count- or
// virtual-time-triggered, with no host randomness, so two runs of the
// same workload under the same plan inject identically and produce the
// same event stream.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"cellport/internal/sim"
)

// Kind is a fault type.
type Kind int

// The fault taxonomy (DESIGN.md §6).
const (
	// CrashSPE halts an SPE at virtual time At: its program is killed
	// mid-flight, queued and in-flight DMA is aborted, and the SPE refuses
	// all further program loads.
	CrashSPE Kind = iota
	// DMADrop makes the Nth DMA command issued by the SPE's MFC never
	// complete: the transfer is lost and its tag stays pending forever
	// (the classic hung-tag failure mode).
	DMADrop
	// DMACorrupt delivers the Nth DMA command's payload corrupted. The
	// MFC detects it (modeled bus/transfer error) and flags the SPE
	// context, so the dispatcher reports a retryable DMA-fault result.
	DMACorrupt
	// MboxStall delays the Nth mailbox write touching the SPE by Delay of
	// virtual time (a congested or wedged MMIO path).
	MboxStall
	// LSOverflow makes the Nth local-store allocation on the SPE fail
	// once (soft overflow: transient allocation pressure).
	LSOverflow

	// Fleet-level kinds. These target a whole serving blade, not one SPE
	// of one machine: they are consumed by the serve pool's blade
	// lifecycle (DESIGN.md §12), never by the per-machine Injector, which
	// skips them. Plan.MachineFaults / Plan.FleetFaults split a mixed plan
	// into the two audiences.

	// BladeCrash kills blade Blade at virtual time At: its queued and
	// in-flight requests are re-routed (or shed with an attributed
	// reason) and the blade never serves again.
	BladeCrash
	// BladeStall freezes blade Blade at virtual time At for Delay: the
	// blade admits nothing during the stall and its in-flight dispatch
	// finishes Delay late.
	BladeStall
	// BladeRestart begins a rolling restart of blade Blade at virtual
	// time At: the blade drains (no new admissions) for the Drain window,
	// then anything still unfinished is re-routed and the blade comes
	// back cold (warmup re-charged).
	BladeRestart
)

var kindNames = [...]string{
	CrashSPE:     "crash",
	DMADrop:      "dma-drop",
	DMACorrupt:   "dma-corrupt",
	MboxStall:    "mbox-stall",
	LSOverflow:   "ls-overflow",
	BladeCrash:   "blade-crash",
	BladeStall:   "blade-stall",
	BladeRestart: "blade-restart",
}

// FleetLevel reports whether the kind targets a serving blade (consumed
// by the serve pool) rather than the simulated machine.
func (k Kind) FleetLevel() bool {
	return k == BladeCrash || k == BladeStall || k == BladeRestart
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

func parseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown fault kind %q", s)
}

// Fault is one planned fault.
type Fault struct {
	Kind Kind
	// SPE selects the target SPE index (machine-level kinds).
	SPE int
	// Blade selects the target blade index (fleet-level kinds).
	Blade int
	// At is the trigger time for CrashSPE and the fleet-level kinds.
	At sim.Time
	// Nth is the 1-based operation count that triggers the count-based
	// kinds (DMA command, mailbox write, or LS allocation on the SPE).
	Nth uint64
	// Delay is the stall length for MboxStall and BladeStall.
	Delay sim.Duration
	// Drain is the BladeRestart drain window: virtual time the blade
	// keeps working its queue after admissions stop, before the kill.
	Drain sim.Duration
}

// String renders the fault in the canonical spec grammar.
func (f Fault) String() string {
	switch f.Kind {
	case CrashSPE:
		return fmt.Sprintf("crash:spe=%d,at=%s", f.SPE, formatDur(sim.Duration(f.At)))
	case MboxStall:
		return fmt.Sprintf("%s:spe=%d,n=%d,delay=%s", f.Kind, f.SPE, f.Nth, formatDur(f.Delay))
	case BladeCrash:
		return fmt.Sprintf("blade-crash:blade=%d,at=%s", f.Blade, formatDur(sim.Duration(f.At)))
	case BladeStall:
		return fmt.Sprintf("blade-stall:blade=%d,at=%s,delay=%s", f.Blade, formatDur(sim.Duration(f.At)), formatDur(f.Delay))
	case BladeRestart:
		return fmt.Sprintf("blade-restart:blade=%d,at=%s,drain=%s", f.Blade, formatDur(sim.Duration(f.At)), formatDur(f.Drain))
	default:
		return fmt.Sprintf("%s:spe=%d,n=%d", f.Kind, f.SPE, f.Nth)
	}
}

// Plan is an ordered fault schedule. The zero or nil plan is empty (no
// injection; the runtime takes its exact fault-free paths).
type Plan struct {
	Faults []Fault
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Faults) == 0 }

// MachineFaults returns the machine-level subset of the plan (the kinds
// the per-machine Injector consumes), preserving order. A plan with no
// machine faults yields nil, so a purely fleet-level plan leaves the
// machine runtime on its exact fault-free paths.
func (p *Plan) MachineFaults() *Plan {
	if p == nil {
		return nil
	}
	var sub *Plan
	for _, f := range p.Faults {
		if !f.Kind.FleetLevel() {
			if sub == nil {
				sub = &Plan{}
			}
			sub.Faults = append(sub.Faults, f)
		}
	}
	return sub
}

// FleetFaults returns the fleet-level subset of the plan (blade
// lifecycle kinds consumed by the serve pool), preserving order.
func (p *Plan) FleetFaults() []Fault {
	if p == nil {
		return nil
	}
	var sub []Fault
	for _, f := range p.Faults {
		if f.Kind.FleetLevel() {
			sub = append(sub, f)
		}
	}
	return sub
}

// String renders the plan in the spec grammar accepted by Parse.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	parts := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ";")
}

// Parse builds a plan from a spec string: semicolon-separated faults of
// the form kind:key=value,key=value. For example:
//
//	crash:spe=1,at=2ms;dma-drop:spe=0,n=3;dma-corrupt:spe=2,n=1;
//	mbox-stall:spe=3,n=2,delay=500us;ls-overflow:spe=0,n=1;
//	blade-restart:blade=2,at=40ms,drain=5ms;blade-crash:blade=0,at=60ms
//
// Machine-level kinds take spe=, fleet-level kinds blade=. Durations
// take an fs/ns/us/ms/s suffix. An empty spec is an empty plan.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kindStr, args, _ := strings.Cut(entry, ":")
		kind, err := parseKind(strings.TrimSpace(kindStr))
		if err != nil {
			return nil, err
		}
		f := Fault{Kind: kind, SPE: -1, Blade: -1}
		var haveAt, haveN, haveDelay, haveDrain bool
		for _, kv := range strings.Split(args, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("fault: %q: expected key=value, got %q", entry, kv)
			}
			switch key {
			case "spe":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault: %q: bad SPE index %q", entry, val)
				}
				f.SPE = n
			case "blade":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault: %q: bad blade index %q", entry, val)
				}
				f.Blade = n
			case "at":
				d, err := parseDur(val)
				if err != nil {
					return nil, fmt.Errorf("fault: %q: %w", entry, err)
				}
				f.At = sim.Time(d)
				haveAt = true
			case "n":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil || n == 0 {
					return nil, fmt.Errorf("fault: %q: bad count %q (1-based)", entry, val)
				}
				f.Nth = n
				haveN = true
			case "delay":
				d, err := parseDur(val)
				if err != nil {
					return nil, fmt.Errorf("fault: %q: %w", entry, err)
				}
				f.Delay = d
				haveDelay = true
			case "drain":
				d, err := parseDur(val)
				if err != nil {
					return nil, fmt.Errorf("fault: %q: %w", entry, err)
				}
				f.Drain = d
				haveDrain = true
			default:
				return nil, fmt.Errorf("fault: %q: unknown key %q", entry, key)
			}
		}
		if kind.FleetLevel() {
			if f.Blade < 0 {
				return nil, fmt.Errorf("fault: %q: missing blade=", entry)
			}
			f.SPE = 0
		} else {
			if f.SPE < 0 {
				return nil, fmt.Errorf("fault: %q: missing spe=", entry)
			}
			f.Blade = 0
		}
		switch kind {
		case CrashSPE:
			if !haveAt {
				return nil, fmt.Errorf("fault: %q: crash needs at=<time>", entry)
			}
		case MboxStall:
			if !haveN || !haveDelay {
				return nil, fmt.Errorf("fault: %q: mbox-stall needs n= and delay=", entry)
			}
		case BladeCrash:
			if !haveAt {
				return nil, fmt.Errorf("fault: %q: blade-crash needs at=<time>", entry)
			}
		case BladeStall:
			if !haveAt || !haveDelay {
				return nil, fmt.Errorf("fault: %q: blade-stall needs at= and delay=", entry)
			}
		case BladeRestart:
			if !haveAt || !haveDrain {
				return nil, fmt.Errorf("fault: %q: blade-restart needs at= and drain=", entry)
			}
		default:
			if !haveN {
				return nil, fmt.Errorf("fault: %q: %s needs n=<count>", entry, kind)
			}
		}
		p.Faults = append(p.Faults, f)
	}
	return p, nil
}

// parseDur parses a duration with an fs/ns/us/ms/s suffix. Integral
// counts are converted exactly (no float rounding), so any value
// formatDur emits parses back bit-for-bit.
func parseDur(s string) (sim.Duration, error) {
	units := []struct {
		suffix string
		unit   sim.Duration
	}{
		{"ns", sim.Nanosecond},
		{"us", sim.Microsecond},
		{"ms", sim.Millisecond},
		{"fs", sim.Femtosecond},
		{"s", sim.Second},
	}
	for _, u := range units {
		num, ok := strings.CutSuffix(s, u.suffix)
		if !ok {
			continue
		}
		if v, err := strconv.ParseInt(num, 10, 64); err == nil {
			if v < 0 || v > int64(1<<63-1)/int64(u.unit) {
				return 0, fmt.Errorf("bad duration %q", s)
			}
			return sim.Duration(v) * u.unit, nil
		}
		v, err := strconv.ParseFloat(num, 64)
		if err != nil {
			return 0, fmt.Errorf("bad duration %q", s)
		}
		scaled := v * float64(u.unit)
		// The range check also rejects NaN and ±Inf (every comparison
		// with NaN is false).
		if !(scaled >= 0 && scaled < float64(1<<63)) {
			return 0, fmt.Errorf("bad duration %q", s)
		}
		return sim.Duration(scaled), nil
	}
	return 0, fmt.Errorf("duration %q needs an fs/ns/us/ms/s suffix", s)
}

// ParseDuration parses a virtual-time duration in the plan grammar's
// fs/ns/us/ms/s syntax (exported for CLI flags like -watchdog).
func ParseDuration(s string) (sim.Duration, error) { return parseDur(s) }

// formatDur renders a duration exactly, using the largest suffix that
// divides it (so Parse round-trips the value bit-for-bit; sub-ns
// remainders fall through to the native femtosecond unit).
func formatDur(d sim.Duration) string {
	switch {
	case d%sim.Second == 0 && d != 0:
		return fmt.Sprintf("%ds", d/sim.Second)
	case d%sim.Millisecond == 0 && d != 0:
		return fmt.Sprintf("%dms", d/sim.Millisecond)
	case d%sim.Microsecond == 0 && d != 0:
		return fmt.Sprintf("%dus", d/sim.Microsecond)
	case d%sim.Nanosecond == 0:
		return fmt.Sprintf("%dns", d/sim.Nanosecond)
	default:
		return fmt.Sprintf("%dfs", d)
	}
}

// splitmix64 is the PRNG behind Seeded: tiny, well-mixed, and fully
// reproducible across platforms.
type splitmix64 uint64

func (r *splitmix64) next() uint64 {
	*r += 0x9E3779B97F4A7C15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *splitmix64) intn(n int) int { return int(r.next() % uint64(n)) }

// Seeded derives an adversarial plan from a seed: one fault of every
// count-based kind plus one SPE crash, with targets and trigger points
// drawn from a splitmix64 stream. The same (seed, numSPEs) pair always
// yields the same plan.
func Seeded(seed uint64, numSPEs int) *Plan {
	if numSPEs <= 0 {
		return &Plan{}
	}
	r := splitmix64(seed)
	return &Plan{Faults: []Fault{
		{Kind: CrashSPE, SPE: r.intn(numSPEs), At: sim.Time((2 + r.intn(8))) * sim.Time(sim.Millisecond)},
		{Kind: DMADrop, SPE: r.intn(numSPEs), Nth: uint64(1 + r.intn(8))},
		{Kind: DMACorrupt, SPE: r.intn(numSPEs), Nth: uint64(1 + r.intn(8))},
		{Kind: MboxStall, SPE: r.intn(numSPEs), Nth: uint64(1 + r.intn(4)), Delay: sim.Duration(100+r.intn(900)) * sim.Microsecond},
		{Kind: LSOverflow, SPE: r.intn(numSPEs), Nth: uint64(1 + r.intn(4))},
	}}
}

// SeededFleet derives a fleet-level chaos schedule from a seed: a
// rolling-restart wave across distinct blades, one blade crash, and one
// transient stall, with trigger points spread over the given span (the
// expected busy window of the run). Targets are a seeded permutation of
// the blade indices so small fleets still exercise distinct blades. The
// same (seed, blades, span) triple always yields the same plan.
func SeededFleet(seed uint64, blades int, span sim.Duration) *Plan {
	if blades <= 0 || span <= 0 {
		return &Plan{}
	}
	r := splitmix64(seed)
	// Fisher-Yates over the blade indices, driven by the same stream.
	perm := make([]int, blades)
	for i := range perm {
		perm[i] = i
	}
	for i := blades - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	target := func(i int) int { return perm[i%blades] }
	// Trigger points in percent of the span, jittered by the seed; the
	// quantum divides exactly so every instant round-trips through the
	// grammar bit-for-bit.
	q := span / 100
	if q <= 0 {
		q = 1
	}
	at := func(pct int) sim.Time { return sim.Time(sim.Duration(pct) * q) }
	return &Plan{Faults: []Fault{
		{Kind: BladeRestart, Blade: target(0), At: at(15 + r.intn(10)), Drain: 8 * q},
		{Kind: BladeRestart, Blade: target(1), At: at(35 + r.intn(10)), Drain: 8 * q},
		{Kind: BladeCrash, Blade: target(2), At: at(52 + r.intn(10))},
		{Kind: BladeStall, Blade: target(3), At: at(68 + r.intn(10)), Delay: sim.Duration(4+r.intn(4)) * q},
	}}
}
