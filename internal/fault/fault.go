// Package fault implements deterministic fault injection for the
// simulated Cell machine. A Plan is a typed schedule of faults — SPE
// crashes at a virtual time, dropped or corrupted DMA commands, mailbox
// stalls, local-store soft overflows — either parsed from an explicit
// spec string or derived from a seed. An Injector evaluates the plan
// against a running simulation: delivery hooks installed at the hardware
// model's choke points (cell.Machine.InjectFaults) consult it on every
// countable operation. Matching is one-shot and purely count- or
// virtual-time-triggered, with no host randomness, so two runs of the
// same workload under the same plan inject identically and produce the
// same event stream.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"cellport/internal/sim"
)

// Kind is a fault type.
type Kind int

// The fault taxonomy (DESIGN.md §6).
const (
	// CrashSPE halts an SPE at virtual time At: its program is killed
	// mid-flight, queued and in-flight DMA is aborted, and the SPE refuses
	// all further program loads.
	CrashSPE Kind = iota
	// DMADrop makes the Nth DMA command issued by the SPE's MFC never
	// complete: the transfer is lost and its tag stays pending forever
	// (the classic hung-tag failure mode).
	DMADrop
	// DMACorrupt delivers the Nth DMA command's payload corrupted. The
	// MFC detects it (modeled bus/transfer error) and flags the SPE
	// context, so the dispatcher reports a retryable DMA-fault result.
	DMACorrupt
	// MboxStall delays the Nth mailbox write touching the SPE by Delay of
	// virtual time (a congested or wedged MMIO path).
	MboxStall
	// LSOverflow makes the Nth local-store allocation on the SPE fail
	// once (soft overflow: transient allocation pressure).
	LSOverflow
)

var kindNames = [...]string{
	CrashSPE:   "crash",
	DMADrop:    "dma-drop",
	DMACorrupt: "dma-corrupt",
	MboxStall:  "mbox-stall",
	LSOverflow: "ls-overflow",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

func parseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown fault kind %q", s)
}

// Fault is one planned fault.
type Fault struct {
	Kind Kind
	// SPE selects the target SPE index.
	SPE int
	// At is the trigger time for CrashSPE.
	At sim.Time
	// Nth is the 1-based operation count that triggers the count-based
	// kinds (DMA command, mailbox write, or LS allocation on the SPE).
	Nth uint64
	// Delay is the stall length for MboxStall.
	Delay sim.Duration
}

// String renders the fault in the canonical spec grammar.
func (f Fault) String() string {
	switch f.Kind {
	case CrashSPE:
		return fmt.Sprintf("crash:spe=%d,at=%s", f.SPE, formatDur(sim.Duration(f.At)))
	case MboxStall:
		return fmt.Sprintf("%s:spe=%d,n=%d,delay=%s", f.Kind, f.SPE, f.Nth, formatDur(f.Delay))
	default:
		return fmt.Sprintf("%s:spe=%d,n=%d", f.Kind, f.SPE, f.Nth)
	}
}

// Plan is an ordered fault schedule. The zero or nil plan is empty (no
// injection; the runtime takes its exact fault-free paths).
type Plan struct {
	Faults []Fault
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Faults) == 0 }

// String renders the plan in the spec grammar accepted by Parse.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	parts := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ";")
}

// Parse builds a plan from a spec string: semicolon-separated faults of
// the form kind:key=value,key=value. For example:
//
//	crash:spe=1,at=2ms;dma-drop:spe=0,n=3;dma-corrupt:spe=2,n=1;
//	mbox-stall:spe=3,n=2,delay=500us;ls-overflow:spe=0,n=1
//
// Durations take an ns/us/ms/s suffix. An empty spec is an empty plan.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kindStr, args, _ := strings.Cut(entry, ":")
		kind, err := parseKind(strings.TrimSpace(kindStr))
		if err != nil {
			return nil, err
		}
		f := Fault{Kind: kind, SPE: -1}
		var haveAt, haveN, haveDelay bool
		for _, kv := range strings.Split(args, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("fault: %q: expected key=value, got %q", entry, kv)
			}
			switch key {
			case "spe":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault: %q: bad SPE index %q", entry, val)
				}
				f.SPE = n
			case "at":
				d, err := parseDur(val)
				if err != nil {
					return nil, fmt.Errorf("fault: %q: %w", entry, err)
				}
				f.At = sim.Time(d)
				haveAt = true
			case "n":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil || n == 0 {
					return nil, fmt.Errorf("fault: %q: bad count %q (1-based)", entry, val)
				}
				f.Nth = n
				haveN = true
			case "delay":
				d, err := parseDur(val)
				if err != nil {
					return nil, fmt.Errorf("fault: %q: %w", entry, err)
				}
				f.Delay = d
				haveDelay = true
			default:
				return nil, fmt.Errorf("fault: %q: unknown key %q", entry, key)
			}
		}
		if f.SPE < 0 {
			return nil, fmt.Errorf("fault: %q: missing spe=", entry)
		}
		switch kind {
		case CrashSPE:
			if !haveAt {
				return nil, fmt.Errorf("fault: %q: crash needs at=<time>", entry)
			}
		case MboxStall:
			if !haveN || !haveDelay {
				return nil, fmt.Errorf("fault: %q: mbox-stall needs n= and delay=", entry)
			}
		default:
			if !haveN {
				return nil, fmt.Errorf("fault: %q: %s needs n=<count>", entry, kind)
			}
		}
		p.Faults = append(p.Faults, f)
	}
	return p, nil
}

// parseDur parses a duration with an ns/us/ms/s suffix.
func parseDur(s string) (sim.Duration, error) {
	units := []struct {
		suffix string
		unit   sim.Duration
	}{
		{"ns", sim.Nanosecond},
		{"us", sim.Microsecond},
		{"ms", sim.Millisecond},
		{"s", sim.Second},
	}
	for _, u := range units {
		if num, ok := strings.CutSuffix(s, u.suffix); ok {
			v, err := strconv.ParseFloat(num, 64)
			if err != nil || v < 0 {
				return 0, fmt.Errorf("bad duration %q", s)
			}
			return sim.Duration(v * float64(u.unit)), nil
		}
	}
	return 0, fmt.Errorf("duration %q needs an ns/us/ms/s suffix", s)
}

// formatDur renders a duration exactly, using the largest suffix that
// divides it (so Parse round-trips the value bit-for-bit).
func formatDur(d sim.Duration) string {
	switch {
	case d%sim.Second == 0 && d != 0:
		return fmt.Sprintf("%ds", d/sim.Second)
	case d%sim.Millisecond == 0 && d != 0:
		return fmt.Sprintf("%dms", d/sim.Millisecond)
	case d%sim.Microsecond == 0 && d != 0:
		return fmt.Sprintf("%dus", d/sim.Microsecond)
	default:
		return fmt.Sprintf("%dns", d/sim.Nanosecond)
	}
}

// splitmix64 is the PRNG behind Seeded: tiny, well-mixed, and fully
// reproducible across platforms.
type splitmix64 uint64

func (r *splitmix64) next() uint64 {
	*r += 0x9E3779B97F4A7C15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *splitmix64) intn(n int) int { return int(r.next() % uint64(n)) }

// Seeded derives an adversarial plan from a seed: one fault of every
// count-based kind plus one SPE crash, with targets and trigger points
// drawn from a splitmix64 stream. The same (seed, numSPEs) pair always
// yields the same plan.
func Seeded(seed uint64, numSPEs int) *Plan {
	if numSPEs <= 0 {
		return &Plan{}
	}
	r := splitmix64(seed)
	return &Plan{Faults: []Fault{
		{Kind: CrashSPE, SPE: r.intn(numSPEs), At: sim.Time((2 + r.intn(8))) * sim.Time(sim.Millisecond)},
		{Kind: DMADrop, SPE: r.intn(numSPEs), Nth: uint64(1 + r.intn(8))},
		{Kind: DMACorrupt, SPE: r.intn(numSPEs), Nth: uint64(1 + r.intn(8))},
		{Kind: MboxStall, SPE: r.intn(numSPEs), Nth: uint64(1 + r.intn(4)), Delay: sim.Duration(100+r.intn(900)) * sim.Microsecond},
		{Kind: LSOverflow, SPE: r.intn(numSPEs), Nth: uint64(1 + r.intn(4))},
	}}
}
