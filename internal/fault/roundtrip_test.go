package fault

import (
	"reflect"
	"testing"

	"cellport/internal/sim"
)

// genFault draws one canonical fault of any kind from a splitmix64
// stream. "Canonical" means the fields irrelevant to the kind stay at
// their Parse-normalized values (SPE 0 for fleet kinds, Blade 0 for
// machine kinds), so a generated fault must DeepEqual its re-parse.
func genFault(r *splitmix64) Fault {
	// Durations up to ~1s with femtosecond granularity: far below 2^53,
	// and frequently not a whole number of nanoseconds, which is exactly
	// the regime where the old ns-truncating formatter broke.
	dur := func() sim.Duration { return sim.Duration(1 + r.intn(int(sim.Second))) }
	kinds := []Kind{CrashSPE, DMADrop, DMACorrupt, MboxStall, LSOverflow,
		BladeCrash, BladeStall, BladeRestart}
	k := kinds[r.intn(len(kinds))]
	f := Fault{Kind: k}
	switch k {
	case CrashSPE:
		f.SPE = r.intn(16)
		f.At = sim.Time(dur())
	case MboxStall:
		f.SPE = r.intn(16)
		f.Nth = uint64(1 + r.intn(1000))
		f.Delay = dur()
	case DMADrop, DMACorrupt, LSOverflow:
		f.SPE = r.intn(16)
		f.Nth = uint64(1 + r.intn(1000))
	case BladeCrash:
		f.Blade = r.intn(16)
		f.At = sim.Time(dur())
	case BladeStall:
		f.Blade = r.intn(16)
		f.At = sim.Time(dur())
		f.Delay = dur()
	case BladeRestart:
		f.Blade = r.intn(16)
		f.At = sim.Time(dur())
		f.Drain = dur()
	}
	return f
}

// TestPlanRoundTripProperty: for seeded random plans over the full
// grammar — every kind, femtosecond-grain times — Parse(plan.String())
// reproduces the plan exactly, and the rendered spec is a fixed point of
// another String/Parse cycle.
func TestPlanRoundTripProperty(t *testing.T) {
	r := splitmix64(20070710)
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.intn(6)
		plan := &Plan{}
		for i := 0; i < n; i++ {
			plan.Faults = append(plan.Faults, genFault(&r))
		}
		spec := plan.String()
		back, err := Parse(spec)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, spec, err)
		}
		if !reflect.DeepEqual(back, plan) {
			t.Fatalf("trial %d: round trip diverged\n spec %q\n got  %+v\n want %+v",
				trial, spec, back.Faults, plan.Faults)
		}
		if again := back.String(); again != spec {
			t.Fatalf("trial %d: String not a fixed point: %q vs %q", trial, again, spec)
		}
	}
}

// TestBladeKindRoundTrip pins the grammar of each new fleet-level kind
// explicitly, including sub-nanosecond instants (exercising the fs
// suffix) and the spe=/blade= key split.
func TestBladeKindRoundTrip(t *testing.T) {
	spec := "blade-crash:blade=2,at=60ms;" +
		"blade-stall:blade=0,at=70ms,delay=1500us;" +
		"blade-restart:blade=5,at=123456789fs,drain=5ms"
	p, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := []Fault{
		{Kind: BladeCrash, Blade: 2, At: sim.Time(60 * sim.Millisecond)},
		{Kind: BladeStall, Blade: 0, At: sim.Time(70 * sim.Millisecond), Delay: 1500 * sim.Microsecond},
		{Kind: BladeRestart, Blade: 5, At: 123456789, Drain: 5 * sim.Millisecond},
	}
	if !reflect.DeepEqual(p.Faults, want) {
		t.Fatalf("Parse = %+v, want %+v", p.Faults, want)
	}
	if got := p.String(); got != spec {
		t.Errorf("String = %q, want %q", got, spec)
	}
	for _, f := range p.Faults {
		if !f.Kind.FleetLevel() {
			t.Errorf("%v not FleetLevel", f.Kind)
		}
	}
	bad := []string{
		"blade-crash:blade=0",          // no at=
		"blade-crash:spe=0,at=5ms",     // fleet kind needs blade=
		"blade-stall:blade=0,at=5ms",   // no delay=
		"blade-restart:blade=0,at=5ms", // no drain=
		"blade-crash:blade=-1,at=5ms",  // negative blade
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

// TestPlanSplit: MachineFaults/FleetFaults partition a mixed plan in
// order, and a plan with no machine-level entries subsets to nil so the
// machine runtime keeps its exact fault-free paths.
func TestPlanSplit(t *testing.T) {
	mixed, err := Parse("crash:spe=1,at=2ms;blade-crash:blade=0,at=50ms;dma-drop:spe=0,n=3;blade-restart:blade=1,at=60ms,drain=4ms")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := mixed.MachineFaults()
	if len(m.Faults) != 2 || m.Faults[0].Kind != CrashSPE || m.Faults[1].Kind != DMADrop {
		t.Fatalf("MachineFaults = %+v", m)
	}
	fl := mixed.FleetFaults()
	if len(fl) != 2 || fl[0].Kind != BladeCrash || fl[1].Kind != BladeRestart {
		t.Fatalf("FleetFaults = %+v", fl)
	}
	pure, _ := Parse("blade-crash:blade=0,at=50ms")
	if pure.MachineFaults() != nil {
		t.Error("pure fleet plan's MachineFaults not nil")
	}
	var nilPlan *Plan
	if nilPlan.MachineFaults() != nil || nilPlan.FleetFaults() != nil {
		t.Error("nil plan subsets not nil")
	}
}

// TestSeededFleetDeterministic: same inputs, same plan; the plan stays
// inside the fleet grammar, targets in-range blades, and round-trips.
func TestSeededFleetDeterministic(t *testing.T) {
	span := 200 * sim.Millisecond
	a := SeededFleet(7, 8, span)
	if !reflect.DeepEqual(a, SeededFleet(7, 8, span)) {
		t.Fatal("same seed diverged")
	}
	if reflect.DeepEqual(a, SeededFleet(8, 8, span)) {
		t.Error("different seeds produced identical plans")
	}
	back, err := Parse(a.String())
	if err != nil {
		t.Fatalf("Parse(SeededFleet.String): %v", err)
	}
	if !reflect.DeepEqual(back, a) {
		t.Errorf("seeded fleet plan did not round-trip: %q vs %q", back, a)
	}
	crashes := 0
	for _, f := range a.Faults {
		if !f.Kind.FleetLevel() {
			t.Errorf("SeededFleet produced machine-level %v", f.Kind)
		}
		if f.Blade < 0 || f.Blade >= 8 {
			t.Errorf("fault targets out-of-range blade %d", f.Blade)
		}
		if f.At <= 0 || sim.Duration(f.At) > span {
			t.Errorf("trigger %d fs outside span", f.At)
		}
		if f.Kind == BladeCrash {
			crashes++
		}
	}
	if crashes != 1 {
		t.Errorf("SeededFleet crashes = %d, want 1", crashes)
	}
	if p := SeededFleet(7, 0, span); !p.Empty() {
		t.Error("zero blades not empty")
	}
	if p := SeededFleet(7, 8, 0); !p.Empty() {
		t.Error("zero span not empty")
	}
}

// FuzzParseRoundTrip feeds arbitrary specs through Parse; whenever one
// parses, its String must be a fixed point: Parse(String(p)) succeeds,
// re-renders identically, and reproduces the same plan. This is the
// grammar's total round-trip property — it holds even for sloppy inputs
// (extra keys, float durations) because String canonicalizes.
func FuzzParseRoundTrip(f *testing.F) {
	f.Add("crash:spe=1,at=2ms;dma-drop:spe=0,n=3")
	f.Add("mbox-stall:spe=3,n=2,delay=500us;ls-overflow:spe=0,n=1")
	f.Add("blade-crash:blade=0,at=50ms;blade-restart:blade=1,at=60ms,drain=4ms")
	f.Add("blade-stall:blade=7,at=1234567fs,delay=0.5ms")
	f.Add("crash:spe=0,at=0.3ns") // sub-ns: needs the fs fallback
	r := splitmix64(99)
	for i := 0; i < 16; i++ {
		plan := &Plan{Faults: []Fault{genFault(&r), genFault(&r)}}
		f.Add(plan.String())
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			return // invalid specs are fine; only valid ones must round-trip
		}
		s1 := p.String()
		p2, err := Parse(s1)
		if err != nil {
			t.Fatalf("Parse(%q).String() = %q does not re-parse: %v", spec, s1, err)
		}
		s2 := p2.String()
		if s2 != s1 {
			t.Fatalf("String not a fixed point: %q -> %q -> %q", spec, s1, s2)
		}
		// Parse tolerates irrelevant keys (e.g. n= on a crash) that String
		// canonicalizes away, so compare plans only after one render.
		p3, err := Parse(s2)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s2, err)
		}
		if !reflect.DeepEqual(p3, p2) {
			t.Fatalf("canonical plan not stable: %+v vs %+v", p3.Faults, p2.Faults)
		}
	})
}
