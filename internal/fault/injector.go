package fault

import (
	"fmt"

	"cellport/internal/sim"
)

// Action is the injector's verdict for one DMA command.
type Action int

// DMA command verdicts.
const (
	ActNone Action = iota
	ActDrop
	ActCorrupt
)

// Event records one injected fault occurrence.
type Event struct {
	Kind   string   `json:"kind"`
	SPE    int      `json:"spe"`
	At     sim.Time `json:"at_fs"`
	Detail string   `json:"detail"`
}

// Report is the structured fault record a supervised run surfaces: the
// plan, what actually fired, and how the supervision loop recovered.
// Counter fields are mutated by the supervisor as it handles faults.
type Report struct {
	// Spec is the canonical plan (Parse-able).
	Spec string `json:"spec"`
	// Planned counts the plan's faults; Injected lists those that fired.
	Planned  int     `json:"planned"`
	Injected []Event `json:"injected"`
	// Supervision-loop outcomes.
	Retries          int          `json:"retries"`
	Redispatches     int          `json:"redispatches"`
	Fallbacks        int          `json:"fallbacks"`
	WatchdogTimeouts int          `json:"watchdog_timeouts"`
	SPEsLost         []int        `json:"spes_lost,omitempty"`
	BackoffTime      sim.Duration `json:"backoff_fs"`
	// DegradedTime is PPE virtual time spent executing kernels that fell
	// back to host-side execution.
	DegradedTime sim.Duration `json:"degraded_fs"`
}

type pendingFault struct {
	Fault
	fired bool
}

// Injector evaluates a plan against one simulation run. Delivery hooks
// call the count-based methods on every countable operation; matching is
// one-shot per fault. All bookkeeping uses slices indexed by SPE, so the
// injector itself introduces no iteration-order nondeterminism.
type Injector struct {
	engine  *sim.Engine
	pending []pendingFault
	rep     Report

	dmaOps   []uint64 // DMA commands issued per SPE
	mboxOps  []uint64 // mailbox writes touching each SPE
	allocOps []uint64 // LS allocations per SPE
}

// NewInjector binds a plan to an engine for a machine with numSPEs SPEs.
func NewInjector(e *sim.Engine, p *Plan, numSPEs int) *Injector {
	in := &Injector{
		engine:   e,
		dmaOps:   make([]uint64, numSPEs),
		mboxOps:  make([]uint64, numSPEs),
		allocOps: make([]uint64, numSPEs),
	}
	if p != nil {
		in.rep.Spec = p.String()
		for _, f := range p.Faults {
			// Fleet-level kinds target whole blades, not this machine;
			// they are consumed by the serve pool's lifecycle layer and
			// must stay inert here.
			if f.Kind.FleetLevel() {
				continue
			}
			in.rep.Planned++
			in.pending = append(in.pending, pendingFault{Fault: f})
		}
	}
	return in
}

// Report returns the run's mutable fault report.
func (in *Injector) Report() *Report { return &in.rep }

// CrashFaults lists the planned SPE-crash faults, for timer wiring.
func (in *Injector) CrashFaults() []Fault {
	var out []Fault
	for _, f := range in.pending {
		if f.Kind == CrashSPE {
			out = append(out, f.Fault)
		}
	}
	return out
}

// NoteCrash records a crash fault as injected (called by the wiring when
// its timer fires and actually kills the SPE).
func (in *Injector) NoteCrash(f Fault) {
	for i := range in.pending {
		p := &in.pending[i]
		if !p.fired && p.Kind == CrashSPE && p.SPE == f.SPE && p.At == f.At {
			p.fired = true
			in.note(p.Fault, "SPE killed")
			return
		}
	}
}

// DMAAction counts one DMA command on the SPE and returns the planned
// verdict for it.
func (in *Injector) DMAAction(spe int) Action {
	if spe < 0 || spe >= len(in.dmaOps) {
		return ActNone
	}
	in.dmaOps[spe]++
	n := in.dmaOps[spe]
	for i := range in.pending {
		f := &in.pending[i]
		if f.fired || f.SPE != spe || f.Nth != n {
			continue
		}
		switch f.Kind {
		case DMADrop:
			f.fired = true
			in.note(f.Fault, fmt.Sprintf("DMA command %d dropped", n))
			return ActDrop
		case DMACorrupt:
			f.fired = true
			in.note(f.Fault, fmt.Sprintf("DMA command %d corrupted", n))
			return ActCorrupt
		}
	}
	return ActNone
}

// MboxDelay counts one mailbox write touching the SPE and returns the
// stall to apply before it (zero for none).
func (in *Injector) MboxDelay(spe int) sim.Duration {
	if spe < 0 || spe >= len(in.mboxOps) {
		return 0
	}
	in.mboxOps[spe]++
	n := in.mboxOps[spe]
	for i := range in.pending {
		f := &in.pending[i]
		if f.fired || f.Kind != MboxStall || f.SPE != spe || f.Nth != n {
			continue
		}
		f.fired = true
		in.note(f.Fault, fmt.Sprintf("mailbox write %d stalled %s", n, f.Delay))
		return f.Delay
	}
	return 0
}

// AllocFault counts one local-store allocation on the SPE and reports
// whether it should fail (soft overflow).
func (in *Injector) AllocFault(spe int) bool {
	if spe < 0 || spe >= len(in.allocOps) {
		return false
	}
	in.allocOps[spe]++
	n := in.allocOps[spe]
	for i := range in.pending {
		f := &in.pending[i]
		if f.fired || f.Kind != LSOverflow || f.SPE != spe || f.Nth != n {
			continue
		}
		f.fired = true
		in.note(f.Fault, fmt.Sprintf("LS allocation %d failed", n))
		return true
	}
	return false
}

func (in *Injector) note(f Fault, detail string) {
	in.rep.Injected = append(in.rep.Injected, Event{
		Kind:   f.Kind.String(),
		SPE:    f.SPE,
		At:     in.engine.Now(),
		Detail: detail,
	})
}
