package fault

import (
	"reflect"
	"testing"

	"cellport/internal/sim"
)

func TestParseStringRoundTrip(t *testing.T) {
	spec := "crash:spe=1,at=2ms;dma-drop:spe=0,n=3;dma-corrupt:spe=2,n=1;" +
		"mbox-stall:spe=3,n=2,delay=500us;ls-overflow:spe=0,n=1"
	p, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := []Fault{
		{Kind: CrashSPE, SPE: 1, At: sim.Time(2 * sim.Millisecond)},
		{Kind: DMADrop, SPE: 0, Nth: 3},
		{Kind: DMACorrupt, SPE: 2, Nth: 1},
		{Kind: MboxStall, SPE: 3, Nth: 2, Delay: 500 * sim.Microsecond},
		{Kind: LSOverflow, SPE: 0, Nth: 1},
	}
	if !reflect.DeepEqual(p.Faults, want) {
		t.Fatalf("Parse = %+v, want %+v", p.Faults, want)
	}
	// String must render back into the same plan.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("Parse(String): %v", err)
	}
	if !reflect.DeepEqual(p2, p) {
		t.Errorf("round trip: %q != %q", p2, p)
	}
}

func TestParseDurations(t *testing.T) {
	cases := []struct {
		in   string
		want sim.Duration
	}{
		{"750ns", 750 * sim.Nanosecond},
		{"5us", 5 * sim.Microsecond},
		{"2ms", 2 * sim.Millisecond},
		{"1s", sim.Second},
		{"1.5ms", 1500 * sim.Microsecond},
	}
	for _, c := range cases {
		p, err := Parse("mbox-stall:spe=0,n=1,delay=" + c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := p.Faults[0].Delay; got != c.want {
			t.Errorf("delay %q = %d fs, want %d fs", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"nova:spe=0,n=1",              // unknown kind
		"crash:spe=0",                 // crash without at=
		"dma-drop:spe=0",              // count-based without n=
		"dma-drop:n=1",                // missing spe=
		"dma-drop:spe=0,n=0",          // counts are 1-based
		"mbox-stall:spe=0,n=1",        // stall without delay=
		"mbox-stall:spe=0,n=1,delay=5", // bare duration, no suffix
		"crash:spe=-1,at=1ms",         // negative SPE
		"crash:spe=0,at=1ms,bogus=1",  // unknown key
		"crash:spe=0,at",              // not key=value
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	p, err := Parse("")
	if err != nil {
		t.Fatalf("Parse(\"\"): %v", err)
	}
	if !p.Empty() {
		t.Error("empty spec parsed non-empty")
	}
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Error("nil plan not Empty")
	}
	if nilPlan.String() != "" {
		t.Error("nil plan String not empty")
	}
}

func TestSeededDeterministic(t *testing.T) {
	a := Seeded(42, 8)
	b := Seeded(42, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	if reflect.DeepEqual(Seeded(42, 8), Seeded(43, 8)) {
		t.Error("different seeds produced identical plans")
	}
	// The derived plan must be expressible in (and recoverable from) the
	// spec grammar.
	back, err := Parse(a.String())
	if err != nil {
		t.Fatalf("Parse(Seeded.String): %v", err)
	}
	if !reflect.DeepEqual(back, a) {
		t.Errorf("seeded plan did not round-trip: %q vs %q", back, a)
	}
	for _, f := range a.Faults {
		if f.SPE < 0 || f.SPE >= 8 {
			t.Errorf("fault targets out-of-range SPE %d", f.SPE)
		}
	}
}

// TestInjectorOneShot: each planned fault fires at most once, at exactly
// its trigger count, and lands in the report's Injected list.
func TestInjectorOneShot(t *testing.T) {
	e := sim.NewEngine()
	p := &Plan{Faults: []Fault{
		{Kind: DMADrop, SPE: 0, Nth: 2},
		{Kind: DMACorrupt, SPE: 1, Nth: 1},
		{Kind: MboxStall, SPE: 0, Nth: 3, Delay: sim.Millisecond},
		{Kind: LSOverflow, SPE: 1, Nth: 2},
	}}
	in := NewInjector(e, p, 2)

	got := []Action{in.DMAAction(0), in.DMAAction(0), in.DMAAction(0)}
	want := []Action{ActNone, ActDrop, ActNone}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SPE0 DMA verdicts = %v, want %v", got, want)
	}
	if in.DMAAction(1) != ActCorrupt {
		t.Error("SPE1 first DMA command not corrupted")
	}
	if in.DMAAction(1) != ActNone {
		t.Error("corrupt fault fired twice")
	}

	if d := in.MboxDelay(0); d != 0 {
		t.Errorf("mbox write 1 stalled %v", d)
	}
	in.MboxDelay(0)
	if d := in.MboxDelay(0); d != sim.Millisecond {
		t.Errorf("mbox write 3 stall = %v, want 1ms", d)
	}
	if d := in.MboxDelay(0); d != 0 {
		t.Error("stall fault fired twice")
	}

	if in.AllocFault(1) {
		t.Error("alloc 1 failed, want alloc 2")
	}
	if !in.AllocFault(1) {
		t.Error("alloc 2 did not fail")
	}
	if in.AllocFault(1) {
		t.Error("overflow fault fired twice")
	}

	// Out-of-range SPEs never match.
	if in.DMAAction(-1) != ActNone || in.DMAAction(99) != ActNone {
		t.Error("out-of-range SPE matched a fault")
	}

	rep := in.Report()
	if rep.Planned != 4 || len(rep.Injected) != 4 {
		t.Fatalf("Planned=%d Injected=%d, want 4/4", rep.Planned, len(rep.Injected))
	}
	kinds := map[string]bool{}
	for _, ev := range rep.Injected {
		kinds[ev.Kind] = true
	}
	for _, k := range []string{"dma-drop", "dma-corrupt", "mbox-stall", "ls-overflow"} {
		if !kinds[k] {
			t.Errorf("report missing injected kind %q", k)
		}
	}
}

// TestInjectorNoteCrashOneShot: a crash fault is marked injected exactly
// once, matched by (SPE, At).
func TestInjectorNoteCrashOneShot(t *testing.T) {
	e := sim.NewEngine()
	f := Fault{Kind: CrashSPE, SPE: 3, At: sim.Time(2 * sim.Millisecond)}
	in := NewInjector(e, &Plan{Faults: []Fault{f}}, 8)
	if crashes := in.CrashFaults(); len(crashes) != 1 || crashes[0] != f {
		t.Fatalf("CrashFaults = %v", crashes)
	}
	in.NoteCrash(f)
	in.NoteCrash(f)
	if n := len(in.Report().Injected); n != 1 {
		t.Errorf("crash recorded %d times, want 1", n)
	}
}
