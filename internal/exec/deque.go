package exec

import "sync"

// deque is one worker's double-ended task queue. The owner pushes and
// pops at the bottom (the newest end — LIFO keeps a task chain's working
// set hot in one worker's cache); thieves take from the top (the oldest
// end), removing half the queue in one critical section so a single
// steal rebalances a long backlog instead of migrating it one task at a
// time.
//
// The implementation is a mutex around a slice rather than the classic
// lock-free Chase-Lev deque: steal-half moves a batch anyway, so the
// lock is held once per batch and contention is bounded by the steal
// rate, not the task rate. Locks are never nested — stealHalf releases
// the victim's lock before touching the thief's — so lock ordering is
// trivially acyclic.
type deque struct {
	mu    sync.Mutex
	tasks []task // tasks[0] is the top (oldest); the owner works the tail
}

// push adds a task at the bottom (owner end).
func (d *deque) push(t task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

// pop removes the newest task (owner end, LIFO).
func (d *deque) pop() (task, bool) {
	d.mu.Lock()
	n := len(d.tasks)
	if n == 0 {
		d.mu.Unlock()
		return nil, false
	}
	t := d.tasks[n-1]
	d.tasks[n-1] = nil
	d.tasks = d.tasks[:n-1]
	d.mu.Unlock()
	return t, true
}

// size reports the current queue length (racy between lock drops; used
// only as a victim-selection hint and in tests).
func (d *deque) size() int {
	d.mu.Lock()
	n := len(d.tasks)
	d.mu.Unlock()
	return n
}

// stealHalf moves the oldest ceil(n/2) tasks from d into the thief's
// deque and reports how many moved. The stolen batch keeps its age
// order at the thief's bottom, so the thief starts on the batch's
// newest task, mirroring what the owner would have run next from that
// region.
func (d *deque) stealHalf(thief *deque) int {
	d.mu.Lock()
	n := len(d.tasks)
	if n == 0 {
		d.mu.Unlock()
		return 0
	}
	k := (n + 1) / 2
	got := make([]task, k)
	copy(got, d.tasks[:k])
	rest := copy(d.tasks, d.tasks[k:])
	for i := rest; i < n; i++ {
		d.tasks[i] = nil
	}
	d.tasks = d.tasks[:rest]
	d.mu.Unlock()

	thief.mu.Lock()
	thief.tasks = append(thief.tasks, got...)
	thief.mu.Unlock()
	return k
}
