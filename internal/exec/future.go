package exec

import (
	"sync"
	"sync/atomic"
)

// Future is a single-assignment result cell with continuation chaining:
// work attached with Then runs on the pool as soon as the value is
// ready, scheduled onto the deque of the worker that produced it (the
// value is the continuation's working set, and that worker's cache just
// wrote it). Only code outside the pool should block in Wait; a task
// that needs a future's value must chain on it instead, so no worker is
// ever parked inside a task.
type Future[T any] struct {
	mu    sync.Mutex
	done  bool
	val   T
	conts []task
	// ch is closed exactly once, after val is written; Wait blocks on it
	// and the close orders the write before any reader.
	ch chan struct{}
}

func newFuture[T any]() *Future[T] {
	return &Future[T]{ch: make(chan struct{})}
}

// Done returns an already-completed future holding v.
func Done[T any](v T) *Future[T] {
	f := newFuture[T]()
	f.val = v
	f.done = true
	close(f.ch)
	return f
}

// Go submits fn to the pool and returns the future of its result.
func Go[T any](e *Executor, fn func() T) *Future[T] {
	f := newFuture[T]()
	e.spawn(nil, func(w *worker) { f.complete(e, w, fn()) })
	return f
}

// Then chains fn as a continuation of f: it runs on the pool once f
// completes, receiving f's value, and its own result is again a future.
func Then[T, U any](e *Executor, f *Future[T], fn func(T) U) *Future[U] {
	out := newFuture[U]()
	f.addCont(e, func(w *worker) { out.complete(e, w, fn(f.val)) })
	return out
}

// WhenAll resolves once every input future has, with the values in
// input order. The returned future completes on the worker that
// finished the last input; an empty input resolves immediately.
func WhenAll[T any](e *Executor, fs []*Future[T]) *Future[[]T] {
	out := newFuture[[]T]()
	if len(fs) == 0 {
		out.complete(e, nil, nil)
		return out
	}
	var pending atomic.Int64
	pending.Store(int64(len(fs)))
	for _, f := range fs {
		f.addCont(e, func(w *worker) {
			if pending.Add(-1) == 0 {
				vals := make([]T, len(fs))
				for i, g := range fs {
					vals[i] = g.val
				}
				out.complete(e, w, vals)
			}
		})
	}
	return out
}

// Wait blocks until the future completes and returns its value. Call it
// only from outside the pool (the orchestrator); tasks chain with Then.
func (f *Future[T]) Wait() T {
	<-f.ch
	return f.val
}

// complete assigns the value and schedules the registered continuations
// on w's deque (nil w = the injection queue). Completing twice is a
// programming error and panics.
func (f *Future[T]) complete(e *Executor, w *worker, v T) {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		panic("exec: future completed twice")
	}
	f.val = v
	f.done = true
	conts := f.conts
	f.conts = nil
	close(f.ch)
	f.mu.Unlock()
	for _, c := range conts {
		e.spawn(w, c)
	}
}

// addCont registers t to run after completion; if the future is already
// complete the task is submitted immediately.
func (f *Future[T]) addCont(e *Executor, t task) {
	f.mu.Lock()
	if !f.done {
		f.conts = append(f.conts, t)
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	e.spawn(nil, t)
}
