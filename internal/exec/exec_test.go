package exec

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestExecutorDrainsOnClose(t *testing.T) {
	e := New(4)
	var ran atomic.Int64
	for i := 0; i < 500; i++ {
		e.spawn(nil, func(w *worker) { ran.Add(1) })
	}
	e.Close()
	if got := ran.Load(); got != 500 {
		t.Fatalf("ran %d of 500 tasks after Close", got)
	}
	s := e.Stats()
	if s.Spawned != s.Ran {
		t.Fatalf("spawned %d != ran %d", s.Spawned, s.Ran)
	}
}

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	e := New(0)
	defer e.Close()
	if e.Workers() <= 0 {
		t.Fatalf("Workers() = %d, want > 0", e.Workers())
	}
}

func TestSubmitAfterClosePanics(t *testing.T) {
	e := New(1)
	e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("spawn on a closed executor did not panic")
		}
	}()
	e.spawn(nil, func(w *worker) {})
}

func TestFutureChain(t *testing.T) {
	e := New(2)
	defer e.Close()
	f := Go(e, func() int { return 3 })
	g := Then(e, f, func(v int) int { return v * 7 })
	h := Then(e, g, func(v int) string {
		if v != 21 {
			t.Errorf("chained value = %d, want 21", v)
		}
		return "done"
	})
	if got := h.Wait(); got != "done" {
		t.Fatalf("Wait() = %q, want %q", got, "done")
	}
}

func TestThenOnCompletedFuture(t *testing.T) {
	e := New(1)
	defer e.Close()
	f := Done(10)
	if got := Then(e, f, func(v int) int { return v + 1 }).Wait(); got != 11 {
		t.Fatalf("Then on Done future = %d, want 11", got)
	}
}

func TestWhenAllPreservesInputOrder(t *testing.T) {
	e := New(4)
	defer e.Close()
	var fs []*Future[int]
	for i := 0; i < 64; i++ {
		i := i
		fs = append(fs, Go(e, func() int {
			if i%7 == 0 {
				time.Sleep(time.Millisecond) // scramble completion order
			}
			return i
		}))
	}
	vals := WhenAll(e, fs).Wait()
	if len(vals) != 64 {
		t.Fatalf("WhenAll returned %d values, want 64", len(vals))
	}
	for i, v := range vals {
		if v != i {
			t.Fatalf("vals[%d] = %d, want %d (input order must be preserved)", i, v, i)
		}
	}
}

func TestWhenAllEmpty(t *testing.T) {
	e := New(1)
	defer e.Close()
	if vals := WhenAll[int](e, nil).Wait(); vals != nil {
		t.Fatalf("WhenAll(nil) = %v, want nil", vals)
	}
}

func TestDoubleCompletePanics(t *testing.T) {
	e := New(1)
	defer e.Close()
	f := Done(1)
	defer func() {
		if recover() == nil {
			t.Fatal("completing a future twice did not panic")
		}
	}()
	f.complete(e, nil, 2)
}

// TestStealRebalances parks a long backlog on one worker's deque and
// checks that siblings steal it: the backlog's tasks are slow enough
// that the owner alone could not finish within the test's patience, and
// every task still runs.
func TestStealRebalances(t *testing.T) {
	e := New(4)
	var ran atomic.Int64
	const n = 512
	var release sync.WaitGroup
	release.Add(1)
	e.spawn(nil, func(w *worker) {
		for i := 0; i < n; i++ {
			e.spawn(w, func(*worker) {
				time.Sleep(50 * time.Microsecond)
				ran.Add(1)
			})
		}
		release.Done()
	})
	release.Wait()
	e.Close()
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d of %d backlog tasks", got, n)
	}
	if s := e.Stats(); s.Steals == 0 {
		t.Fatalf("no steals over a %d-task single-worker backlog: %+v", n, s)
	}
}

// TestStealStorm is the deque's concurrency stress: every worker floods
// its own deque while every other worker steals from it, under the race
// detector in CI. Correctness criterion: nothing lost, nothing doubled.
func TestStealStorm(t *testing.T) {
	const (
		spawners = 8
		perSpawn = 2000
	)
	e := New(spawners)
	var ran atomic.Int64
	var release sync.WaitGroup
	release.Add(spawners)
	for s := 0; s < spawners; s++ {
		e.spawn(nil, func(w *worker) {
			for i := 0; i < perSpawn; i++ {
				e.spawn(w, func(*worker) { ran.Add(1) })
			}
			release.Done()
		})
	}
	release.Wait()
	e.Close()
	if got, want := ran.Load(), int64(spawners*perSpawn); got != want {
		t.Fatalf("ran %d of %d tasks under steal storm", got, want)
	}
	if s := e.Stats(); s.Spawned != s.Ran {
		t.Fatalf("spawned %d != ran %d", s.Spawned, s.Ran)
	}
}

// TestContinuationRunsOnPool asserts a Then continuation runs on a pool
// worker (w != nil), i.e. the locality path, not the caller.
func TestContinuationRunsOnPool(t *testing.T) {
	e := New(2)
	defer e.Close()
	onPool := Then(e, Go(e, func() int { return 1 }), func(int) bool { return true })
	if !onPool.Wait() {
		t.Fatal("continuation did not run")
	}
	s := e.Stats()
	if s.Spawned < 2 {
		t.Fatalf("expected both task and continuation spawned, stats %+v", s)
	}
}

// FuzzDeque drives the deque against a reference slice model with an
// arbitrary op sequence: push, owner pop (must be LIFO), and steal-half
// (must take exactly ceil(n/2) oldest tasks, in age order).
func FuzzDeque(f *testing.F) {
	f.Add([]byte{0, 0, 0, 2, 1, 1})
	f.Add([]byte{0, 1, 2, 0, 0, 0, 0, 2, 2, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var d, thief deque
		var model, thiefModel []int
		next := 0
		// Task identity: each pushed task records its id when run.
		var popped []int
		push := func(id int) task {
			return func(*worker) { popped = append(popped, id) }
		}
		run := func(tk task) int {
			popped = popped[:0]
			tk(nil)
			if len(popped) != 1 {
				t.Fatalf("task ran %d times", len(popped))
			}
			return popped[0]
		}
		for _, op := range ops {
			switch op % 3 {
			case 0: // owner push
				d.push(push(next))
				model = append(model, next)
				next++
			case 1: // owner pop: LIFO from the model's tail
				tk, ok := d.pop()
				if ok != (len(model) > 0) {
					t.Fatalf("pop ok=%v with model size %d", ok, len(model))
				}
				if !ok {
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if got := run(tk); got != want {
					t.Fatalf("pop = task %d, want %d (LIFO violated)", got, want)
				}
			case 2: // steal: ceil(n/2) oldest, age order preserved
				n := len(model)
				got := d.stealHalf(&thief)
				want := (n + 1) / 2
				if got != want {
					t.Fatalf("stealHalf moved %d of %d, want %d", got, n, want)
				}
				thiefModel = append(thiefModel, model[:want]...)
				model = append([]int(nil), model[want:]...)
			}
			if d.size() != len(model) || thief.size() != len(thiefModel) {
				t.Fatalf("sizes (%d, %d) diverged from model (%d, %d)",
					d.size(), thief.size(), len(model), len(thiefModel))
			}
		}
		// Drain both deques and check full content equality in pop order.
		for i := len(model) - 1; i >= 0; i-- {
			tk, ok := d.pop()
			if !ok {
				t.Fatalf("victim deque exhausted with %d model tasks left", i+1)
			}
			if got := run(tk); got != model[i] {
				t.Fatalf("victim drain = %d, want %d", got, model[i])
			}
		}
		for i := len(thiefModel) - 1; i >= 0; i-- {
			tk, ok := thief.pop()
			if !ok {
				t.Fatalf("thief deque exhausted with %d model tasks left", i+1)
			}
			if got := run(tk); got != thiefModel[i] {
				t.Fatalf("thief drain = %d, want %d", got, thiefModel[i])
			}
		}
	})
}
