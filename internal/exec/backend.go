package exec

import (
	"fmt"
	"sync"
	"time"

	"cellport/internal/img"
	"cellport/internal/marvel"
	"cellport/internal/metrics"
	"cellport/internal/trace"
)

// Backend runs MARVEL batch points for real on the work-stealing pool,
// as a marvel.ExecBackend. The task graph mirrors what the simulator
// charges for, structurally:
//
//   - each extraction kernel's image traversal follows the simulated
//     kernel's own slice plan (marvel.ExecPlan — same local-store
//     budget, halos and granularity), with the slices of one lane
//     chained as continuations so a lane runs its slices in order;
//   - job distribution (MultiSPE2) processes the batch one image at a
//     time, preprocessing serially between images, with the four
//     extraction→finalize→detection lanes racing in parallel;
//   - data distribution (Pipelined) double-buffers the pixel block and
//     preprocesses image i+1 while image i's lanes run — the same
//     overlap the estimator credits the scheme with;
//   - the accumulators are marvel's own (marvel.NewAccumulator), so
//     outputs are bit-exact against the host references at any worker
//     count: parallelism is across lanes and slices of independent
//     accumulators, never inside one.
//
// Everything it measures is host wall clock; nothing here touches
// virtual time except to encode trace timestamps via trace.WallNanos.
type Backend struct {
	ex         *Executor
	arts       *marvel.ArtifactCache
	reps       int
	instrument bool
	now        func() time.Duration

	// traceMu serializes span recording: lanes finish concurrently and
	// trace.Recorder is not thread-safe.
	traceMu sync.Mutex
	rec     *trace.Recorder
}

// Options configures a Backend.
type Options struct {
	// Workers is the pool width (<= 0 selects GOMAXPROCS).
	Workers int
	// Reps is how many times Execute runs each point's graph, keeping
	// the fastest wall time (default 3). Outputs come from the last rep.
	Reps int
	// Artifacts supplies the model set and host references; nil computes
	// privately.
	Artifacts *marvel.ArtifactCache
	// Instrument records wall-clock spans and "exec" metrics on each
	// returned run.
	Instrument bool
	// Now overrides the wall clock (elapsed time since an arbitrary
	// epoch). Tests inject a deterministic clock; nil selects the host
	// monotonic clock.
	Now func() time.Duration
}

// NewBackend starts a backend and its worker pool; Close releases the
// workers.
func NewBackend(o Options) *Backend {
	b := &Backend{
		ex:         New(o.Workers),
		arts:       o.Artifacts,
		reps:       o.Reps,
		instrument: o.Instrument,
		now:        o.Now,
	}
	if b.reps <= 0 {
		b.reps = 3
	}
	if b.now == nil {
		start := time.Now()
		b.now = func() time.Duration { return time.Since(start) }
	}
	return b
}

// Close stops the worker pool after draining.
func (b *Backend) Close() { b.ex.Close() }

// Workers reports the pool width.
func (b *Backend) Workers() int { return b.ex.Workers() }

// span records one wall-clock span when instrumenting the current rep.
func (b *Backend) span(lane string, start, end time.Duration, kind trace.Kind, label string) {
	if b.rec == nil {
		return
	}
	b.traceMu.Lock()
	b.rec.Span(lane, trace.WallNanos(start.Nanoseconds()), trace.WallNanos(end.Nanoseconds()), kind, label)
	b.traceMu.Unlock()
}

// extractionLanes lists the four extraction kernels in the launch order
// the ported schedules use (shortest first, the correlogram last).
var extractionLanes = []marvel.KernelID{marvel.KCH, marvel.KTX, marvel.KEH, marvel.KCC}

// decision evaluates a feature vector against its kernel's concept
// model.
func decision(ms *marvel.ModelSet, id marvel.KernelID, vec []float32) float64 {
	switch id {
	case marvel.KCH:
		return ms.CH.Decision(vec)
	case marvel.KCC:
		return ms.CC.Decision(vec)
	case marvel.KEH:
		return ms.EH.Decision(vec)
	default:
		return ms.TX.Decision(vec)
	}
}

// Execute implements marvel.ExecBackend: it runs the point's batch
// graph Reps times and reports the fastest wall time together with the
// outputs of the final rep.
func (b *Backend) Execute(p marvel.ExecPoint) (*marvel.ExecRun, error) {
	w := p.Workload
	if w.Images <= 0 || w.W <= 0 || w.H <= 0 {
		return nil, fmt.Errorf("exec: bad workload %+v", w)
	}
	ms, err := b.arts.ModelSet(w.Seed)
	if err != nil {
		return nil, err
	}
	plans := map[marvel.KernelID][]img.Slice{}
	for _, id := range extractionLanes {
		if plans[id], err = marvel.ExecPlan(id, p.Variant, w.W, w.H); err != nil {
			return nil, err
		}
	}

	run := &marvel.ExecRun{Workers: b.ex.Workers(), Reps: b.reps}
	var reg *metrics.Registry
	for rep := 0; rep < b.reps; rep++ {
		last := rep == b.reps-1
		if b.instrument && last {
			b.rec = trace.NewRecorder()
		}
		s0 := b.ex.Stats()
		t0 := b.now()
		images, err := b.runBatch(p, ms, plans)
		wall := (b.now() - t0).Nanoseconds()
		if err != nil {
			return nil, err
		}
		if run.WallNS == 0 || wall < run.WallNS {
			run.WallNS = wall
		}
		if last {
			s1 := b.ex.Stats()
			run.Images = images
			run.Tasks = s1.Ran - s0.Ran
			run.Steals = s1.Steals - s0.Steals
			run.Stolen = s1.Stolen - s0.Stolen
		}
	}
	if b.instrument {
		run.Trace, b.rec = b.rec, nil
		reg = metrics.NewRegistry()
		reg.Counter("exec", "wall_ns").Add(run.WallNS)
		reg.Counter("exec", "tasks").Add(int64(run.Tasks))
		reg.Counter("exec", "steals").Add(int64(run.Steals))
		reg.Counter("exec", "stolen").Add(int64(run.Stolen))
		reg.Gauge("exec", "workers").Set(int64(run.Workers))
		reg.Gauge("exec", "reps").Set(int64(run.Reps))
		run.Metrics = reg.Snapshot()
	}
	return run, nil
}

// laneOut is one extraction lane's result: the finalized feature vector
// and (when the lane chain includes detection) the float32-rounded
// concept score.
type laneOut struct {
	id    marvel.KernelID
	vec   []float32
	score float64
}

// batchState carries one rep's buffers through the schedule drivers.
type batchState struct {
	b      *Backend
	p      marvel.ExecPoint
	ms     *marvel.ModelSet
	plans  map[marvel.KernelID][]img.Slice
	stride int
	bufs   [][]byte
}

// runBatch executes one rep of the point's task graph.
func (b *Backend) runBatch(p marvel.ExecPoint, ms *marvel.ModelSet, plans map[marvel.KernelID][]img.Slice) ([]marvel.ImageResult, error) {
	w := p.Workload
	st := &batchState{b: b, p: p, ms: ms, plans: plans, stride: img.StrideFor(w.W)}
	numBufs := 1
	if p.Scenario == marvel.Pipelined {
		numBufs = 2
	}
	for i := 0; i < numBufs; i++ {
		st.bufs = append(st.bufs, make([]byte, st.stride*w.H))
	}
	switch p.Scenario {
	case marvel.Pipelined:
		return st.runPipelined()
	default:
		return st.runSequential()
	}
}

// preprocess regenerates image n (the decode analog of the PPE's
// per-image preprocessing — real per-pixel work, not a memcpy of a
// cached frame) and stores it strided into pixel buffer buf.
func (st *batchState) preprocess(n, buf int) {
	w := st.p.Workload
	t0 := st.b.now()
	dec := img.Synthesize(img.CorpusSeed(w.Seed, n), w.W, w.H)
	dst := st.bufs[buf]
	for y := 0; y < w.H; y++ {
		copy(dst[y*st.stride:], dec.Row(y))
	}
	st.b.span("pre", t0, st.b.now(), trace.KindIO, fmt.Sprintf("img%d", n))
}

// processSlice runs one slice of a lane: wrap the band in the pixel
// buffer (the analog of the kernel's view of its DMA'd local-store
// band) and fold its payload rows into the accumulator.
func (st *batchState) processSlice(acc marvel.Accumulator, buf int, s img.Slice, lane string, n, si int) {
	t0 := st.b.now()
	rows := s.TransferRows()
	band := img.Wrap(st.bufs[buf][s.TransferY0()*st.stride:][:rows*st.stride], st.p.Workload.W, rows, st.stride)
	acc.Process(band, s.HaloTop, s.HaloTop+s.PayloadRows())
	st.b.span(lane, t0, st.b.now(), trace.KindCompute, fmt.Sprintf("img%d/slice%d", n, si))
}

// extractLane builds one kernel's slice chain over pixel buffer buf for
// image n: slice i+1 is a continuation of slice i (so the lane stays on
// one worker unless stolen), ending in finalize.
func (st *batchState) extractLane(id marvel.KernelID, buf, n int) *Future[laneOut] {
	slices := st.plans[id]
	acc := marvel.NewAccumulator(id)
	lane := id.String()
	f := Go(st.b.ex, func() struct{} {
		st.processSlice(acc, buf, slices[0], lane, n, 0)
		return struct{}{}
	})
	for si := 1; si < len(slices); si++ {
		si := si
		f = Then(st.b.ex, f, func(struct{}) struct{} {
			st.processSlice(acc, buf, slices[si], lane, n, si)
			return struct{}{}
		})
	}
	return Then(st.b.ex, f, func(struct{}) laneOut {
		t0 := st.b.now()
		vec := acc.Finalize()
		st.b.span(lane, t0, st.b.now(), trace.KindCompute, fmt.Sprintf("img%d/finalize", n))
		return laneOut{id: id, vec: vec}
	})
}

// detect chains the concept detection onto a finalized lane, rounding
// the score to float32 exactly as the SPE kernel reports it.
func (st *batchState) detect(f *Future[laneOut], lane string, n int) *Future[laneOut] {
	return Then(st.b.ex, f, func(o laneOut) laneOut {
		t0 := st.b.now()
		o.score = float64(float32(decision(st.ms, o.id, o.vec)))
		st.b.span(lane, t0, st.b.now(), trace.KindCompute, fmt.Sprintf("img%d/detect-%s", n, o.id))
		return o
	})
}

// assemble folds lane outputs into the per-image result.
func assemble(r *marvel.ImageResult, outs []laneOut) {
	for _, o := range outs {
		switch o.id {
		case marvel.KCH:
			r.CH = o.vec
		case marvel.KCC:
			r.CC = o.vec
		case marvel.KEH:
			r.EH = o.vec
		default:
			r.TX = o.vec
		}
		r.Scores[marvel.ScoreIndex(o.id)] = o.score
	}
}

// runSequential drives the one-image-at-a-time schedules: SingleSPE
// (one lane at a time), MultiSPE (lanes parallel, detections serialized
// on one "detect" lane), and MultiSPE2 / job distribution (lanes
// parallel, each with its own detection).
func (st *batchState) runSequential() ([]marvel.ImageResult, error) {
	w := st.p.Workload
	out := make([]marvel.ImageResult, 0, w.Images)
	for n := 0; n < w.Images; n++ {
		st.preprocess(n, 0)
		var outs []laneOut
		switch st.p.Scenario {
		case marvel.SingleSPE:
			// No task parallelism: each lane runs to completion (including
			// its detection) before the next lane starts.
			for _, id := range extractionLanes {
				outs = append(outs, st.detect(st.extractLane(id, 0, n), id.String(), n).Wait())
			}
		case marvel.MultiSPE:
			// Extractions race; the detections share one serial lane.
			var lanes []*Future[laneOut]
			for _, id := range extractionLanes {
				lanes = append(lanes, st.extractLane(id, 0, n))
			}
			outs = Then(st.b.ex, WhenAll(st.b.ex, lanes), func(os []laneOut) []laneOut {
				for i := range os {
					t0 := st.b.now()
					os[i].score = float64(float32(decision(st.ms, os[i].id, os[i].vec)))
					st.b.span("detect", t0, st.b.now(), trace.KindCompute, fmt.Sprintf("img%d/detect-%s", n, os[i].id))
				}
				return os
			}).Wait()
		default: // MultiSPE2: replicated detectors, one per lane
			var lanes []*Future[laneOut]
			for _, id := range extractionLanes {
				lanes = append(lanes, st.detect(st.extractLane(id, 0, n), id.String(), n))
			}
			outs = WhenAll(st.b.ex, lanes).Wait()
		}
		var r marvel.ImageResult
		assemble(&r, outs)
		out = append(out, r)
	}
	return out, nil
}

// runPipelined drives data distribution: image n's four lanes run from
// pixel buffer n%2 while the orchestrator preprocesses image n+1 into
// the other buffer — preprocessing overlaps SPE-side work exactly as
// the simulated Pipelined schedule (and the estimator's Eq. 3 overlap
// term) has it.
func (st *batchState) runPipelined() ([]marvel.ImageResult, error) {
	w := st.p.Workload
	out := make([]marvel.ImageResult, 0, w.Images)
	st.preprocess(0, 0)
	for n := 0; n < w.Images; n++ {
		var lanes []*Future[laneOut]
		for _, id := range extractionLanes {
			lanes = append(lanes, st.detect(st.extractLane(id, n%2, n), id.String(), n))
		}
		if n+1 < w.Images {
			st.preprocess(n+1, (n+1)%2)
		}
		var r marvel.ImageResult
		assemble(&r, WhenAll(st.b.ex, lanes).Wait())
		out = append(out, r)
	}
	return out, nil
}
