// Package exec is the real-execution substrate: a bounded work-stealing
// goroutine pool running task graphs expressed as futures with
// continuation chaining (the HPX-style model argued for in "Closing the
// Performance Gap with Modern C++"). The simulator predicts; this
// package actually runs the MARVEL kernels — with the same slicing,
// buffering depth and placement the simulator models — so `paperbench
// -exp race` can report estimator error against measured wall clock.
//
// Everything here runs in the host's wall-clock domain. Virtual time
// (sim.Time as simulated femtoseconds) never appears in this package;
// when an execution trace and a simulation trace share one Chrome-trace
// artifact they are kept on separate `exec/*` vs `sim/*` tracks (see
// DESIGN.md §14).
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// task is one unit of work. It receives the worker running it so
// continuations it spawns can land on that worker's own deque.
type task func(w *worker)

// Executor is a bounded work-stealing pool. Tasks submitted from
// outside (Go, or a continuation attached to an already-completed
// future) enter a shared injection queue; tasks spawned by a running
// task go to that worker's own deque. Idle workers first drain their
// own deque, then steal half of a sibling's, then take from the
// injection queue, and only then park.
type Executor struct {
	mu       sync.Mutex
	cond     *sync.Cond
	inject   []task
	closed   bool
	sleeping int

	workers []*worker
	wg      sync.WaitGroup

	spawned atomic.Uint64
	ran     atomic.Uint64
	steals  atomic.Uint64
	stolen  atomic.Uint64
}

type worker struct {
	e  *Executor
	id int
	dq deque
}

// New starts a pool of the given width; workers <= 0 selects
// runtime.GOMAXPROCS(0). Close must be called to stop the workers.
func New(workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Executor{}
	e.cond = sync.NewCond(&e.mu)
	for i := 0; i < workers; i++ {
		e.workers = append(e.workers, &worker{e: e, id: i})
	}
	for _, w := range e.workers {
		e.wg.Add(1)
		go w.loop()
	}
	return e
}

// Workers reports the pool width.
func (e *Executor) Workers() int { return len(e.workers) }

// Stats is a snapshot of the pool's lifetime counters.
type Stats struct {
	Workers int
	// Spawned counts tasks submitted; Ran counts tasks completed.
	Spawned, Ran uint64
	// Steals counts successful steal operations; Stolen counts the tasks
	// they moved (each steal takes half the victim's queue).
	Steals, Stolen uint64
}

// Stats returns the current counter snapshot. Counters are monotonic,
// so two snapshots bracket the work between them.
func (e *Executor) Stats() Stats {
	return Stats{
		Workers: len(e.workers),
		Spawned: e.spawned.Load(),
		Ran:     e.ran.Load(),
		Steals:  e.steals.Load(),
		Stolen:  e.stolen.Load(),
	}
}

// Close shuts the pool down after draining: workers finish every task
// already submitted (and everything those tasks transitively spawn onto
// their own deques), then exit. Submitting from outside the pool after
// Close panics.
func (e *Executor) Close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

// spawn schedules t. From inside a task (w != nil) it lands on the
// running worker's own deque — the locality path continuations take.
// External submissions go to the shared injection queue under the pool
// lock.
func (e *Executor) spawn(w *worker, t task) {
	e.spawned.Add(1)
	if w != nil {
		w.dq.push(t)
		// A sibling may be parked while this worker's deque grows; wake
		// one so it can steal.
		e.mu.Lock()
		if e.sleeping > 0 {
			e.cond.Signal()
		}
		e.mu.Unlock()
		return
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		panic("exec: task submitted to a closed executor")
	}
	e.inject = append(e.inject, t)
	e.cond.Signal()
	e.mu.Unlock()
}

// loop is one worker's scheduling loop. A worker only parks when its
// own deque, every sibling's deque, and the injection queue are all
// empty at the instant it checks under the pool lock; every submission
// signals the condvar, so no task can be stranded with all workers
// asleep.
func (w *worker) loop() {
	e := w.e
	defer e.wg.Done()
	for {
		if t, ok := w.dq.pop(); ok {
			w.run(t)
			continue
		}
		if w.steal() {
			continue
		}
		e.mu.Lock()
		if n := len(e.inject); n > 0 {
			t := e.inject[0]
			e.inject[0] = nil
			e.inject = e.inject[1:]
			e.mu.Unlock()
			w.run(t)
			continue
		}
		if e.closed && w.idle() {
			e.mu.Unlock()
			return
		}
		// Re-check sibling deques under the lock: a sibling may have
		// pushed between our steal scan and here, and its signal may have
		// fired before we started waiting.
		if !w.idle() {
			e.mu.Unlock()
			continue
		}
		e.sleeping++
		e.cond.Wait()
		e.sleeping--
		e.mu.Unlock()
	}
}

func (w *worker) run(t task) {
	t(w)
	w.e.ran.Add(1)
}

// steal scans siblings round-robin from the worker's right neighbour
// and takes half of the first non-empty deque found.
func (w *worker) steal() bool {
	peers := w.e.workers
	n := len(peers)
	for i := 1; i < n; i++ {
		v := peers[(w.id+i)%n]
		if got := v.dq.stealHalf(&w.dq); got > 0 {
			w.e.steals.Add(1)
			w.e.stolen.Add(uint64(got))
			return true
		}
	}
	return false
}

// idle reports whether every deque in the pool is empty. Called with
// the pool lock held before parking or exiting; deque sizes are read
// under their own locks, which is enough because every push is followed
// by a signal under the pool lock.
func (w *worker) idle() bool {
	for _, p := range w.e.workers {
		if p.dq.size() > 0 {
			return false
		}
	}
	return true
}
