package exec

import (
	"fmt"
	"testing"
	"time"

	"cellport/internal/cost"
	"cellport/internal/marvel"
)

// TestBackendBitExact is the property the whole race experiment stands
// on: the executed kernels produce exactly the host-reference features
// and decisions — for every schedule shape, batch size, variant and
// worker count. Parallelism is across independent accumulators, so the
// worker count can never change a bit of output.
func TestBackendBitExact(t *testing.T) {
	arts := marvel.NewArtifactCache()
	host := cost.NewPPE()
	scenarios := []marvel.Scenario{marvel.SingleSPE, marvel.MultiSPE, marvel.MultiSPE2, marvel.Pipelined}
	for _, workers := range []int{1, 0} { // serial oracle vs GOMAXPROCS
		b := NewBackend(Options{Workers: workers, Reps: 1, Artifacts: arts})
		for _, images := range []int{1, 3} {
			w := marvel.Workload{Images: images, W: 352, H: 96, Seed: 11}
			ref, err := arts.Reference(host, w)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			for _, sc := range scenarios {
				for _, v := range []marvel.Variant{marvel.Naive, marvel.Optimized} {
					name := fmt.Sprintf("workers=%d/images=%d/%v/%v", workers, images, sc, v)
					run, err := b.Execute(marvel.ExecPoint{Workload: w, Scenario: sc, Variant: v})
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if len(run.Images) != len(ref.Images) {
						t.Fatalf("%s: got %d images, reference has %d", name, len(run.Images), len(ref.Images))
					}
					for i := range run.Images {
						if m := marvel.CompareImageResults(&ref.Images[i], &run.Images[i]); m != 0 {
							t.Errorf("%s: image %d differs from host reference in %d fields", name, i, m)
						}
					}
					if run.WallNS <= 0 {
						t.Errorf("%s: non-positive wall time %d", name, run.WallNS)
					}
				}
			}
		}
		b.Close()
	}
}

// TestBackendRejectsBadWorkload pins the validation path.
func TestBackendRejectsBadWorkload(t *testing.T) {
	b := NewBackend(Options{Workers: 1, Reps: 1, Artifacts: marvel.NewArtifactCache()})
	defer b.Close()
	if _, err := b.Execute(marvel.ExecPoint{}); err == nil {
		t.Fatal("Execute accepted a zero workload")
	}
}

// TestBackendInstrumentation checks the clock-domain rules on the
// instrumented run: all metrics live in the single "exec" component and
// every trace span sits on an executor lane, never a simulator track.
func TestBackendInstrumentation(t *testing.T) {
	var tick time.Duration
	b := NewBackend(Options{
		Workers:    1,
		Reps:       2,
		Artifacts:  marvel.NewArtifactCache(),
		Instrument: true,
		Now: func() time.Duration {
			tick += time.Millisecond
			return tick
		},
	})
	defer b.Close()
	w := marvel.Workload{Images: 2, W: 352, H: 96, Seed: 11}
	run, err := b.Execute(marvel.ExecPoint{Workload: w, Scenario: marvel.Pipelined, Variant: marvel.Optimized})
	if err != nil {
		t.Fatal(err)
	}
	if run.Trace == nil || run.Metrics == nil {
		t.Fatal("instrumented run returned no trace or metrics")
	}
	if got := run.Metrics.Components(); len(got) != 1 || got[0] != "exec" {
		t.Fatalf("exec metrics components = %v, want [exec] only (clock domains must not mix)", got)
	}
	if len(run.Trace.Spans()) == 0 {
		t.Fatal("instrumented run recorded no spans")
	}
	if run.Tasks == 0 {
		t.Fatal("run counted no tasks")
	}
	// Deterministic clock + one worker: a second identical execute must
	// produce the identical span list.
	tick = 0
	run2, err := b.Execute(marvel.ExecPoint{Workload: w, Scenario: marvel.Pipelined, Variant: marvel.Optimized})
	if err != nil {
		t.Fatal(err)
	}
	a, b2 := run.Trace.Spans(), run2.Trace.Spans()
	if len(a) != len(b2) {
		t.Fatalf("span counts differ across identical runs: %d vs %d", len(a), len(b2))
	}
	for i := range a {
		if a[i] != b2[i] {
			t.Fatalf("span %d differs across identical runs: %+v vs %+v", i, a[i], b2[i])
		}
	}
}
