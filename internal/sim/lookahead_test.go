package sim

import (
	"reflect"
	"testing"
)

// Tests for the conservative-lookahead primitives: Engine.NextEventTime,
// ShardedEngine.Horizon, the barrier-wait accounting, and the stall
// bookkeeping the lookahead coordinator leans on.

func TestNextEventTimeEmpty(t *testing.T) {
	e := NewEngine()
	if at, ok := e.NextEventTime(); ok {
		t.Fatalf("empty engine reported a next event at %v", at)
	}
}

func TestNextEventTimeHeapAndLane(t *testing.T) {
	e := NewEngine()
	e.At(5*Time(Millisecond), func() {})
	if at, ok := e.NextEventTime(); !ok || at != 5*Time(Millisecond) {
		t.Fatalf("heap event: got (%v, %v), want (5ms, true)", at, ok)
	}
	// An event at the current instant goes to the same-timestamp lane, not
	// the heap; it must still lower the bound.
	e.At(0, func() {})
	if at, ok := e.NextEventTime(); !ok || at != 0 {
		t.Fatalf("lane event: got (%v, %v), want (0, true)", at, ok)
	}
	if err := e.RunUntil(Time(Millisecond)); err != nil {
		t.Fatal(err)
	}
	if at, ok := e.NextEventTime(); !ok || at != 5*Time(Millisecond) {
		t.Fatalf("after draining the lane: got (%v, %v), want (5ms, true)", at, ok)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("drained engine still reports a pending event")
	}
}

func TestShardedHorizonMinOverWheels(t *testing.T) {
	s := NewSharded(3, 1)
	if h := s.Horizon(); h != Never {
		t.Fatalf("empty sharded engine horizon %v, want Never", h)
	}
	s.Wheel(0).At(3*Time(Millisecond), func() {})
	s.Wheel(1).At(Time(Millisecond), func() {})
	// Wheel 2 stays empty: an empty wheel must not drag the horizon down.
	if h := s.Horizon(); h != Time(Millisecond) {
		t.Fatalf("horizon %v, want 1ms (min over wheels)", h)
	}
}

// TestHorizonFence: a coordinator fence caps the horizon below any wheel
// event, clears back to the wheel minimum, and an all-empty engine with a
// fence reports the fence itself — the contract the serve chaos
// coordinator uses to keep lookahead windows from admitting across a
// scheduled blade fault no wheel knows about yet.
func TestHorizonFence(t *testing.T) {
	s := NewSharded(2, 1)
	s.SetFence(4 * Time(Millisecond))
	if h := s.Horizon(); h != 4*Time(Millisecond) {
		t.Fatalf("empty wheels: horizon %v, want the 4ms fence", h)
	}
	s.Wheel(0).At(6*Time(Millisecond), func() {})
	if h := s.Horizon(); h != 4*Time(Millisecond) {
		t.Fatalf("fence below wheel events: horizon %v, want 4ms", h)
	}
	s.Wheel(1).At(Time(Millisecond), func() {})
	if h := s.Horizon(); h != Time(Millisecond) {
		t.Fatalf("wheel event below fence: horizon %v, want 1ms", h)
	}
	s.SetFence(Never)
	if h := s.Horizon(); h != Time(Millisecond) {
		t.Fatalf("fence cleared: horizon %v, want 1ms", h)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if h := s.Horizon(); h != Never {
		t.Fatalf("drained, no fence: horizon %v, want Never", h)
	}
}

// TestHorizonAfter: the O(1) single-wheel refresh must agree with a full
// Horizon() recompute whenever only that wheel was touched — including
// under a fence, which HorizonAfter never needs to re-read because
// touching a wheel cannot raise the bound.
func TestHorizonAfter(t *testing.T) {
	s := NewSharded(3, 1)
	s.SetFence(9 * Time(Millisecond))
	s.Wheel(1).At(7*Time(Millisecond), func() {})
	h := s.Horizon()
	if h != 7*Time(Millisecond) {
		t.Fatalf("horizon %v, want 7ms", h)
	}
	// An event later than the current bound must not move it.
	s.Wheel(0).At(8*Time(Millisecond), func() {})
	if got := s.HorizonAfter(0, h); got != h {
		t.Fatalf("later event moved the horizon: got %v, want %v", got, h)
	}
	// An earlier event on the touched wheel pulls it down, matching the
	// full recompute.
	s.Wheel(2).At(2*Time(Millisecond), func() {})
	got := s.HorizonAfter(2, h)
	if want := s.Horizon(); got != want || got != 2*Time(Millisecond) {
		t.Fatalf("HorizonAfter %v, full Horizon %v, want 2ms both", got, want)
	}
	// From an unbounded prior the refresh falls to the touched wheel's
	// own next event.
	if got := s.HorizonAfter(0, Never); got != 8*Time(Millisecond) {
		t.Fatalf("HorizonAfter from Never: got %v, want 8ms", got)
	}
}

// TestHorizonScheduleNoDoubleRun pins the boundary semantics the serve
// coordinator relies on: driving barriers by next() = Horizon() runs an
// event landing exactly on the horizon exactly once, even when it chains
// a same-instant successor, and the schedule terminates.
func TestHorizonScheduleNoDoubleRun(t *testing.T) {
	s := NewSharded(2, 2)
	at := Time(Millisecond)
	counts := map[string]int{}
	s.Wheel(0).At(at, func() {
		counts["w0"]++
		// Same-instant chained successor: lands on the already-passed
		// horizon, must run in a later epoch without re-running w0.
		s.Wheel(0).At(at, func() { counts["w0chain"]++ })
	})
	s.Wheel(1).At(at, func() { counts["w1"]++ })
	err := s.Run(func() (Time, bool) {
		h := s.Horizon()
		if h == Never {
			return 0, false
		}
		return h, true
	}, func(Time) {})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"w0", "w0chain", "w1"} {
		if counts[k] != 1 {
			t.Fatalf("event %s ran %d times, want exactly once (counts %v)", k, counts[k], counts)
		}
	}
}

// TestHorizonScheduleStorm fuzzes the horizon negotiation: for seeded
// event storms, a coordinator that places every barrier on the current
// horizon must reproduce the drain schedule's per-wheel dispatch logs and
// event count exactly, at every worker count — in particular no event on
// the horizon may be double-run or skipped. BarrierWait must also be a
// pure function of the schedule (identical across worker counts).
func TestHorizonScheduleStorm(t *testing.T) {
	run := func(spec stormSpec, seed uint64, workers int, horizonSchedule bool) ([]string, uint64, Duration) {
		s := NewSharded(spec.wheels, workers)
		logs := make([][]string, spec.wheels)
		span := Time(spec.barriers+1) * Time(Millisecond)
		for w := 0; w < spec.wheels; w++ {
			rng := stormRand(seed + uint64(w)*0x9e3779b9)
			for e := 0; e < spec.events; e++ {
				at := Time(rng.intn(int(span)))
				depth := rng.intn(spec.chain + 1)
				step := Duration(1 + rng.intn(int(Millisecond)))
				var fire func(d int, at Time) func()
				w, e := w, e
				fire = func(d int, at Time) func() {
					return func() {
						logs[w] = append(logs[w], fmtLog(w, e*100+d, s.Wheel(w).Now()))
						if d > 0 {
							s.Wheel(w).At(at.Add(step), fire(d-1, at.Add(step)))
						}
					}
				}
				s.Wheel(w).At(at, fire(depth, at))
			}
		}
		var err error
		if horizonSchedule {
			err = s.Run(func() (Time, bool) {
				h := s.Horizon()
				if h == Never {
					return 0, false
				}
				return h, true
			}, func(Time) {})
		} else {
			err = s.Drain()
		}
		if err != nil {
			t.Fatalf("storm (workers=%d, horizon=%v): %v", workers, horizonSchedule, err)
		}
		var flat []string
		for _, l := range logs {
			flat = append(flat, l...)
		}
		return flat, s.EventCount(), s.BarrierWait()
	}

	specs := []struct {
		name string
		spec stormSpec
		seed uint64
	}{
		{"dense", stormSpec{wheels: 3, events: 10, barriers: 4, chain: 3}, 11},
		{"wide", stormSpec{wheels: 8, events: 5, barriers: 2, chain: 2}, 20070710},
		{"collisions", stormSpec{wheels: 2, events: 16, barriers: 1, chain: 1}, 5},
	}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			refLog, refCount, _ := run(tc.spec, tc.seed, 1, false)
			if len(refLog) == 0 {
				t.Fatal("degenerate storm: no events dispatched")
			}
			var wait Duration
			for i, workers := range []int{1, 2, 8} {
				log, count, w := run(tc.spec, tc.seed, workers, true)
				if count != refCount {
					t.Fatalf("workers=%d horizon schedule dispatched %d events, want %d (double-run or skip on the horizon)",
						workers, count, refCount)
				}
				if !reflect.DeepEqual(log, refLog) {
					t.Fatalf("workers=%d horizon schedule diverged from drain:\n got %v\nwant %v", workers, log, refLog)
				}
				if i == 0 {
					wait = w
				} else if w != wait {
					t.Fatalf("workers=%d barrier wait %v, want %v (must be schedule-determined)", workers, w, wait)
				}
			}
		})
	}
}

func fmtLog(w, id int, at Time) string {
	return string(rune('a'+w)) + "#" + itoa(id) + "@" + itoa(int(at))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestShardedStallEpochClearsOnResolve is the note-reset regression test:
// a wheel that stalls mid-run, is resolved by the coordinator, and later
// deadlocks for good must report the *final* epoch, not the long-resolved
// first stall.
func TestShardedStallEpochClearsOnResolve(t *testing.T) {
	s := NewSharded(2, 1)
	q := NewQueue("work")
	q2 := NewQueue("never-signalled")
	s.Wheel(0).Spawn("worker", func(p *Proc) {
		p.Wait(q) // stalls in epoch 1, resolved at its barrier
		p.Sleep(10 * Millisecond)
		p.Wait(q2) // permanent: no one ever signals q2
	})
	// Wheel 1 has real work so every epoch advances something.
	s.Wheel(1).At(Time(Millisecond), func() {})
	s.Wheel(1).At(3*Time(Millisecond), func() {})

	barriers := []Time{Time(Millisecond), 2 * Time(Millisecond)}
	bi := 0
	err := s.Run(func() (Time, bool) {
		if bi >= len(barriers) {
			return 0, false
		}
		bt := barriers[bi]
		bi++
		return bt, true
	}, func(at Time) {
		if at == barriers[0] {
			q.WakeOne(s.Wheel(0)) // resolve the first stall
		}
	})
	if err == nil {
		t.Fatal("expected the final drain to surface the permanent deadlock")
	}
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("error type %T, want *DeadlockError", err)
	}
	// Epoch 1: stall on q (recorded). Epoch 2: resumed, sleeping past the
	// barrier — the stall record must clear here. Epoch 3 (final drain):
	// the permanent stall on q2. A stale record would report epoch 1.
	if de.Epoch != 3 || de.Barrier != Never {
		t.Fatalf("deadlock reported epoch %d barrier %v, want epoch 3 barrier Never (stale stall record not cleared)",
			de.Epoch, de.Barrier)
	}
}

// TestBarrierWaitAccounting checks the accumulated virtual idle metric on
// a hand-computable schedule.
func TestBarrierWaitAccounting(t *testing.T) {
	s := NewSharded(2, 1)
	s.Wheel(0).At(2*Time(Millisecond), func() {})
	s.Wheel(1).At(5*Time(Millisecond), func() {})
	fired := false
	err := s.Run(func() (Time, bool) {
		if fired {
			return 0, false
		}
		fired = true
		return 6 * Time(Millisecond), true
	}, func(Time) {})
	if err != nil {
		t.Fatal(err)
	}
	// Wheel 0 quiesces at 2ms (waits 4ms), wheel 1 at 5ms (waits 1ms); the
	// final drain has no finite deadline and adds nothing.
	if want := 5 * Millisecond; s.BarrierWait() != want {
		t.Fatalf("barrier wait %v, want %v", s.BarrierWait(), want)
	}
}
