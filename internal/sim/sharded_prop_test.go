package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// The storm property: a randomized event storm — bursts of same-timestamp
// events, chained reschedules, and cross-wheel injections at barriers,
// all drawn from a seeded splitmix64 stream — must produce byte-identical
// per-wheel dispatch logs and event counts at every worker count. This
// pins the two merge guarantees the sharded engine is built on: events at
// the same timestamp dispatch in scheduling (FIFO) order within a wheel,
// and the epoch barriers impose a deterministic cross-wheel order that
// does not depend on goroutine scheduling.

// stormRand is the same tiny splitmix64 generator the serve load
// generator and the fault planner use.
type stormRand uint64

func (r *stormRand) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a deterministic draw in [0, n).
func (r *stormRand) intn(n int) int { return int(r.next() % uint64(n)) }

// stormSpec sizes one randomized storm.
type stormSpec struct {
	wheels   int
	events   int // initial events per wheel
	bursts   int // extra same-timestamp events layered on random instants
	barriers int
	injects  int // coordinator injections per barrier
	chain    int // chained reschedule depth per initial event
}

// runStorm builds and runs one storm at the given worker count and
// returns the per-wheel dispatch logs (concatenated wheel-major) plus the
// total event count. Everything random is drawn from seed, never from the
// execution, so two invocations with equal (spec, seed) describe the
// identical simulation.
func runStorm(t testing.TB, spec stormSpec, seed uint64, workers int) ([]string, uint64) {
	t.Helper()
	s := NewSharded(spec.wheels, workers)
	logs := make([][]string, spec.wheels)
	horizon := Time(spec.barriers+1) * Time(Millisecond)

	note := func(w int, tag string, id int) func() {
		return func() {
			logs[w] = append(logs[w], fmt.Sprintf("w%d %s#%d @%d", w, tag, id, s.Wheel(w).Now()))
		}
	}
	// Per-wheel seeded streams so wheel construction order cannot leak
	// between wheels.
	for w := 0; w < spec.wheels; w++ {
		rng := stormRand(seed + uint64(w)*0x9e3779b9)
		for e := 0; e < spec.events; e++ {
			at := Time(rng.intn(int(horizon)))
			depth := rng.intn(spec.chain + 1)
			step := Duration(1 + rng.intn(int(Millisecond)))
			var fire func(d int, at Time) func()
			w, e := w, e
			fire = func(d int, at Time) func() {
				return func() {
					note(w, "evt", e*100+d)()
					if d > 0 {
						s.Wheel(w).At(at.Add(step), fire(d-1, at.Add(step)))
					}
				}
			}
			s.Wheel(w).At(at, fire(depth, at))
		}
		// Same-timestamp bursts: several events on one instant; their log
		// order must equal their scheduling order at any worker count.
		for b := 0; b < spec.bursts; b++ {
			at := Time(rng.intn(int(horizon)))
			n := 2 + rng.intn(3)
			for k := 0; k < n; k++ {
				s.Wheel(w).At(at, note(w, fmt.Sprintf("burst%d", b), k))
			}
		}
	}

	// Barrier schedule and cross-wheel injections from a separate stream.
	crng := stormRand(seed ^ 0xabcdef12345678)
	bi := 0
	err := s.Run(
		func() (Time, bool) {
			if bi >= spec.barriers {
				return 0, false
			}
			bi++
			return Time(bi) * Time(Millisecond), true
		},
		func(at Time) {
			for k := 0; k < spec.injects; k++ {
				w := crng.intn(spec.wheels)
				// Injections may land before the barrier (clamped to the
				// wheel's own clock), exactly at it, or in a later epoch.
				target := at.Add(Duration(crng.intn(int(2*Millisecond))) - Duration(Millisecond))
				s.Wheel(w).At(target, note(w, fmt.Sprintf("inj%d", bi), k))
			}
		},
	)
	if err != nil {
		t.Fatalf("storm run (workers=%d): %v", workers, err)
	}
	var flat []string
	for _, l := range logs {
		flat = append(flat, l...)
	}
	return flat, s.EventCount()
}

// TestShardedStormDeterminism is the table-driven property test: for each
// seeded storm shape, every worker count reproduces the workers=1 run
// exactly.
func TestShardedStormDeterminism(t *testing.T) {
	type test struct {
		name string
		spec stormSpec
		seed uint64
	}
	runTests := func(t *testing.T, tests []test) {
		for _, tc := range tests {
			t.Run(tc.name, func(t *testing.T) {
				refLog, refCount := runStorm(t, tc.spec, tc.seed, 1)
				if len(refLog) == 0 {
					t.Fatal("degenerate storm: no events dispatched")
				}
				for _, workers := range []int{2, 4, 8} {
					log, count := runStorm(t, tc.spec, tc.seed, workers)
					if count != refCount {
						t.Fatalf("workers=%d event count %d, want %d", workers, count, refCount)
					}
					if !reflect.DeepEqual(log, refLog) {
						i := 0
						for i < len(log) && i < len(refLog) && log[i] == refLog[i] {
							i++
						}
						t.Fatalf("workers=%d diverged at entry %d (len %d vs %d): got %v want %v",
							workers, i, len(log), len(refLog), tail(log, i), tail(refLog, i))
					}
				}
			})
		}
	}
	runTests(t, []test{
		{"small dense", stormSpec{wheels: 2, events: 8, bursts: 3, barriers: 3, injects: 2, chain: 2}, 1},
		{"wide pool", stormSpec{wheels: 16, events: 4, bursts: 2, barriers: 2, injects: 4, chain: 1}, 7},
		{"deep chains", stormSpec{wheels: 3, events: 5, bursts: 1, barriers: 4, injects: 1, chain: 6}, 42},
		{"burst heavy", stormSpec{wheels: 4, events: 2, bursts: 8, barriers: 2, injects: 3, chain: 0}, 20070710},
		{"single wheel", stormSpec{wheels: 1, events: 12, bursts: 4, barriers: 3, injects: 2, chain: 3}, 99},
	})
}

func tail(log []string, i int) []string {
	if i >= len(log) {
		return nil
	}
	end := i + 3
	if end > len(log) {
		end = len(log)
	}
	return log[i:end]
}

// TestShardedSameTimestampFIFO pins the now-lane guarantee through the
// sharded runner directly: k events scheduled on one instant dispatch in
// scheduling order, even when the instant is also a barrier deadline.
func TestShardedSameTimestampFIFO(t *testing.T) {
	s := NewSharded(2, 2)
	var order []int
	at := Time(Millisecond)
	for k := 0; k < 16; k++ {
		k := k
		s.Wheel(1).At(at, func() { order = append(order, k) })
	}
	fired := false
	err := s.Run(func() (Time, bool) {
		if fired {
			return 0, false
		}
		fired = true
		return at, true // barrier exactly on the burst instant
	}, func(Time) {})
	if err != nil {
		t.Fatal(err)
	}
	for k, got := range order {
		if got != k {
			t.Fatalf("same-timestamp dispatch order %v is not FIFO", order)
		}
	}
	if len(order) != 16 {
		t.Fatalf("dispatched %d of 16 burst events", len(order))
	}
}

// FuzzShardedStorm fuzzes the storm property over the seed and shape:
// any (seed, wheels, events) must be worker-count invariant.
func FuzzShardedStorm(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(6))
	f.Add(uint64(7), uint8(5), uint8(3))
	f.Add(uint64(20070710), uint8(9), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, wheels, events uint8) {
		spec := stormSpec{
			wheels:   1 + int(wheels%12),
			events:   1 + int(events%10),
			bursts:   2,
			barriers: 3,
			injects:  2,
			chain:    2,
		}
		refLog, refCount := runStorm(t, spec, seed, 1)
		log, count := runStorm(t, spec, seed, 4)
		if count != refCount || !reflect.DeepEqual(log, refLog) {
			t.Fatalf("seed %d spec %+v: workers=4 diverged from workers=1", seed, spec)
		}
	})
}
