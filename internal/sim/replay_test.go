package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestSameTimestampFIFOAcrossLanes pins the dispatch order when heap-resident
// events (scheduled for a future instant) and fast-lane events (scheduled at
// the current instant) share a timestamp: insertion (seq) order must win,
// exactly as a pure heap would order them.
func TestSameTimestampFIFOAcrossLanes(t *testing.T) {
	e := NewEngine()
	var order []string
	// A and B are scheduled from t=0 for t=5: both take the heap path.
	e.At(Time(5), func() {
		order = append(order, "A")
		// C and D are scheduled at t=5 while now==5: both take the fast
		// lane, and must run after B (smaller seq, already in the heap).
		e.At(Time(5), func() { order = append(order, "C") })
		e.After(0, func() { order = append(order, "D") })
	})
	e.At(Time(5), func() { order = append(order, "B") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := []string{"A", "B", "C", "D"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestNowLaneTimerCancel cancels a timer that lives in the same-timestamp
// lane (a tombstone, not a heap removal) and checks it never fires while
// later events still do.
func TestNowLaneTimerCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	laterRan := false
	e.At(Time(3), func() {
		tm := e.Schedule(e.Now(), func() { fired = true }) // lane-resident
		if !tm.Active() {
			t.Error("timer should be pending")
		}
		tm.Cancel()
		if tm.Active() {
			t.Error("cancelled timer still active")
		}
		e.Schedule(e.Now(), func() { laterRan = true })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled lane timer fired")
	}
	if !laterRan {
		t.Fatal("event behind the tombstone did not run")
	}
}

// TestTimerRearmFromCallback re-arms a timer from its own callback; the
// recycled event must not corrupt the new arming.
func TestTimerRearmFromCallback(t *testing.T) {
	e := NewEngine()
	var fires []Time
	var tm *Timer
	tm = e.Schedule(Time(2), func() {
		fires = append(fires, e.Now())
		if len(fires) < 3 {
			tm.Reschedule(e.Now().Add(2))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := []Time{2, 4, 6}; !reflect.DeepEqual(fires, want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	_ = tm
}

// replayTrace runs a randomized workload mixing every scheduling primitive —
// sleeps, zero-sleeps (fast lane), queue wake-ups, timers, timer cancels —
// and records the full dispatch trace plus the final event count.
func replayTrace(t *testing.T, seed int64) ([]string, uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	e := NewEngine()
	var log []string
	q := NewQueue("shared")
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("p%d", i)
		steps := make([]int, 8)
		for j := range steps {
			steps[j] = rng.Intn(6)
		}
		delay := Duration(rng.Intn(20)) * Nanosecond
		e.Spawn(name, func(p *Proc) {
			for _, s := range steps {
				switch s {
				case 0:
					p.Sleep(delay)
				case 1:
					p.Yield() // fast lane
				case 2:
					q.WakeOne(e)
				case 3:
					tm := e.Schedule(p.Now().Add(delay), func() {
						log = append(log, name+":timer@"+e.Now().String())
					})
					if delay%2 == 0 {
						tm.Cancel()
					}
				case 4:
					p.WaitForTimeout(q, 5*Nanosecond, func() bool { return q.Len() > 2 })
				case 5:
					e.After(0, func() { q.WakeAll(e) }) // lane callback
				}
				log = append(log, fmt.Sprintf("%s@%d", name, int64(p.Now())))
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return log, e.EventCount
}

// TestReplayIdenticalEventOrder is the determinism invariant behind the
// engine fast paths: same inputs ⇒ identical dispatch order and event
// count, across repeated runs and many seeds.
func TestReplayIdenticalEventOrder(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		first, count := replayTrace(t, seed)
		for rep := 0; rep < 3; rep++ {
			got, gotCount := replayTrace(t, seed)
			if gotCount != count {
				t.Fatalf("seed %d rep %d: EventCount %d, want %d", seed, rep, gotCount, count)
			}
			if !reflect.DeepEqual(got, first) {
				t.Fatalf("seed %d rep %d: trace diverged", seed, rep)
			}
		}
	}
}

// TestEventPoolRecycling sanity-checks the free list: after a burst of
// events drains, subsequent scheduling reuses pooled structs rather than
// growing the pool without bound.
func TestEventPoolRecycling(t *testing.T) {
	e := NewEngine()
	for round := 0; round < 4; round++ {
		for i := 0; i < 100; i++ {
			e.After(Duration(i)*Nanosecond, func() {})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(e.free); n > 220 {
		t.Fatalf("free list grew to %d events; recycling is not bounding allocations", n)
	}
}

// --- WaitForTimeout edge cases ------------------------------------------

// TestWaitForTimeoutExactDeadlineWake: the waker fires at exactly the
// deadline but was scheduled before the timeout timer, so the wake-up
// dispatches first and the predicate (now true) wins over the expiry.
func TestWaitForTimeoutPredicateTrueAtExpiryInstant(t *testing.T) {
	e := NewEngine()
	q := NewQueue("edge")
	ready := false
	var got bool
	var at Time
	e.Spawn("setter", func(p *Proc) {
		p.Sleep(10 * Nanosecond) // wake event scheduled before waiter's timer
		ready = true
		q.WakeOne(e)
	})
	e.Spawn("waiter", func(p *Proc) {
		got = p.WaitForTimeout(q, 10*Nanosecond, func() bool { return ready })
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !got || at != Time(10*Nanosecond) {
		t.Fatalf("predicate-at-expiry: got=%v at=%v, want success at 10ns", got, at)
	}
}

// TestWaitForTimeoutPredicateWinsEvenAfterTimerFires documents the tie
// rule: the predicate is re-evaluated when the waiter actually resumes, so
// a condition that becomes true at the expiry instant — even via a wake
// dispatched AFTER the timeout timer removed the waiter from the queue —
// still reports success. Expiry only wins when the predicate stays false.
func TestWaitForTimeoutPredicateWinsEvenAfterTimerFires(t *testing.T) {
	e := NewEngine()
	q := NewQueue("edge2")
	ready := false
	var got bool
	var at Time
	e.Spawn("waiter", func(p *Proc) { // spawned first: its timer wins ties
		got = p.WaitForTimeout(q, 10*Nanosecond, func() bool { return ready })
		at = p.Now()
	})
	e.Spawn("setter", func(p *Proc) {
		p.Sleep(10 * Nanosecond) // resumes after the waiter's expiry timer
		ready = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !got || at != Time(10*Nanosecond) {
		t.Fatalf("late-true predicate: got=%v at=%v, want success at 10ns", got, at)
	}
}

// TestWaitForTimeoutExpiryWithSpuriousWakeAtDeadline: a wake landing at
// exactly the deadline with the predicate still false must not defeat the
// timeout; the wait fails at precisely the deadline instant.
func TestWaitForTimeoutExpiryWithSpuriousWakeAtDeadline(t *testing.T) {
	e := NewEngine()
	q := NewQueue("edge3")
	var got bool
	var at Time
	e.Spawn("waiter", func(p *Proc) {
		got = p.WaitForTimeout(q, 10*Nanosecond, func() bool { return false })
		at = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(10 * Nanosecond)
		q.WakeAll(e) // spurious: predicate remains false
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got || at != Time(10*Nanosecond) {
		t.Fatalf("spurious wake at deadline: got=%v at=%v, want failure at 10ns", got, at)
	}
}

// TestWaitForTimeoutZeroDuration: a zero timeout with a false predicate
// expires at the current instant without deadlocking.
func TestWaitForTimeoutZeroDuration(t *testing.T) {
	e := NewEngine()
	q := NewQueue("zero")
	var got bool
	var at Time
	e.Spawn("waiter", func(p *Proc) {
		got = p.WaitForTimeout(q, 0, func() bool { return false })
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got || at != 0 {
		t.Fatalf("zero timeout: got=%v at=%v", got, at)
	}
}

// TestQueueReuseAfterTimedOutWaiter: a timed-out waiter must be fully
// removed from the queue; later waiters keep strict FIFO order and WakeOne
// never resumes the stale process.
func TestQueueReuseAfterTimedOutWaiter(t *testing.T) {
	e := NewEngine()
	q := NewQueue("reuse")
	var order []string
	e.Spawn("loser", func(p *Proc) {
		if p.WaitForTimeout(q, 5*Nanosecond, func() bool { return false }) {
			t.Error("loser should have timed out")
		}
		order = append(order, "loser-timeout")
	})
	for _, name := range []string{"w1", "w2"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			p.Sleep(10 * Nanosecond)
			p.Wait(q)
			order = append(order, name)
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(20 * Nanosecond)
		if q.Len() != 2 {
			t.Errorf("queue len = %d after timeout removal, want 2", q.Len())
		}
		q.WakeOne(e)
		q.WakeOne(e)
		if q.WakeOne(e) {
			t.Error("third WakeOne woke a stale waiter")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"loser-timeout", "w1", "w2"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}
