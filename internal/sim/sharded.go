package sim

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardedEngine runs a set of independent event wheels — one Engine per
// shard — under a conservative epoch-barrier protocol, so one simulation
// run can execute on many cores without giving up determinism.
//
// The model: shards own disjoint simulated state and never touch each
// other's wheels directly. All cross-shard interaction happens at
// barriers, where a single coordinator runs serially with every wheel
// quiescent. Between barriers the wheels advance independently — each one
// is a deterministic sequential engine, so its event order is a pure
// function of its own inputs regardless of which goroutine happens to
// drive it or how the other wheels are scheduled. Barriers execute in a
// fixed order (driven by the caller's virtual-time schedule), and the
// coordinator observes the wheels in wheel-index order, so the whole run
// is byte-identical at any worker count, including the fully sequential
// workers=1 fallback (which drives the wheels one after another through
// the exact same code path).
//
// A ShardedEngine is not itself an Engine: it has no global clock. Each
// wheel keeps its own virtual time, advanced only by its own events; the
// barrier deadline is the only global synchronization point.
type ShardedEngine struct {
	wheels  []*Engine
	workers int

	epoch   uint64 // barrier rounds started (the final drain counts as one)
	barrier Time   // deadline of the current/last epoch (Never for the drain)

	// barrierWait accumulates the virtual idle time each barrier imposes:
	// the sum over wheels of (barrier deadline − wheel clock) when the
	// wheel quiesced before the deadline. It measures how pessimistic the
	// barrier schedule is — a lookahead coordinator exists to shrink it.
	barrierWait Duration

	// stalled records, per wheel, the epoch at which the wheel last drained
	// its queue with processes still blocked (a would-be deadlock that the
	// coordinator may still resolve by injecting events at a barrier).
	stalled []wheelStall

	// fence is the earliest coordinator-scheduled instant (Never if none):
	// a future event the coordinator has committed to but not yet injected
	// into any wheel, e.g. a planned blade fault. Horizon() never reports
	// past it, so lookahead windows cannot admit across such an instant
	// even though no wheel knows about it yet.
	fence Time
}

// wheelStall is one wheel's recorded mid-epoch stall: the epoch and
// barrier deadline at which the wheel first drained its queue with
// processes still blocked. A zero epoch means "not stalled"; note clears
// the record when a later epoch resolves the stall.
type wheelStall struct {
	epoch   uint64
	barrier Time
}

// NewSharded builds a sharded engine with the given number of wheels.
// workers bounds how many wheels execute concurrently between barriers:
// 0 selects GOMAXPROCS, 1 selects the sequential fallback. The worker
// count never affects results, only host wall time.
func NewSharded(wheels, workers int) *ShardedEngine {
	if wheels < 1 {
		panic("sim: NewSharded needs at least one wheel")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &ShardedEngine{workers: workers}
	s.wheels = make([]*Engine, wheels)
	for i := range s.wheels {
		s.wheels[i] = NewEngine()
	}
	s.stalled = make([]wheelStall, wheels)
	s.fence = Never
	return s
}

// SetFence publishes the earliest instant the coordinator has scheduled
// outside the wheels (Never to clear). It caps Horizon(): external work
// with timestamps at or past the fence must go through a barrier, where
// the coordinator can first materialize whatever it planned at the fence
// instant. Only the coordinator may call it (from next/barrier, or
// before Run).
func (s *ShardedEngine) SetFence(t Time) { s.fence = t }

// Wheels reports the number of wheels.
func (s *ShardedEngine) Wheels() int { return len(s.wheels) }

// Wheel returns wheel i. The caller may schedule events on it freely
// before Run and from within barrier callbacks; scheduling from another
// wheel's events is a data race and breaks determinism.
func (s *ShardedEngine) Wheel(i int) *Engine { return s.wheels[i] }

// EventCount reports the total events dispatched across all wheels.
func (s *ShardedEngine) EventCount() uint64 {
	var n uint64
	for _, w := range s.wheels {
		n += w.EventCount
	}
	return n
}

// Epochs reports how many epochs have started (the final drain included).
func (s *ShardedEngine) Epochs() uint64 { return s.epoch }

// BarrierWait reports the accumulated virtual idle time the barrier
// schedule has imposed so far: for every finished epoch with a finite
// deadline, the sum over wheels of how far short of the deadline each
// wheel's clock stopped. Purely a function of the schedule and the
// events, so it is byte-identical at any worker count.
func (s *ShardedEngine) BarrierWait() Duration { return s.barrierWait }

// Horizon reports the engine's conservative lookahead bound: the
// earliest pending event time across all wheels (min over wheels, taken
// in wheel-index order) capped by the coordinator fence (SetFence), or
// Never when every wheel is empty and no fence is set. While the wheels
// are quiescent — i.e. from the coordinator's next/barrier callbacks —
// nothing in the simulation can happen strictly before the horizon, so
// any external event (an arrival, an injection) with a timestamp
// strictly below it may be committed immediately without running an
// epoch: no wheel event can intervene, and no coordinator-scheduled
// instant is skipped. Scheduling new wheel events moves the horizon, so
// callers interleaving queries with injections must re-query after each
// one.
func (s *ShardedEngine) Horizon() Time {
	h := s.fence
	for _, w := range s.wheels {
		if t, ok := w.NextEventTime(); ok && t < h {
			h = t
		}
	}
	return h
}

// HorizonAfter is the O(1) refresh of a previously computed horizon when
// only wheel w has been touched since: scheduling events on a wheel can
// only pull the horizon earlier, and only through that wheel's own next
// pending event, so min(prev, wheel w's next event) equals a full
// Horizon() recompute. A lookahead coordinator admitting a long run of
// external events into single wheels uses this to avoid rescanning every
// wheel per admission. prev must be a value returned by Horizon() or
// HorizonAfter() with no intervening fence change and no wheel other
// than w touched.
func (s *ShardedEngine) HorizonAfter(w int, prev Time) Time {
	if t, ok := s.wheels[w].NextEventTime(); ok && t < prev {
		return t
	}
	return prev
}

// Run executes the epoch-barrier protocol:
//
//	for next() reports a barrier time t:
//	    run every wheel up to t (concurrently, workers permitting)
//	    run barrier(t) serially with all wheels quiescent
//	when next() reports no more barriers:
//	    drain every wheel to completion and return
//
// next and barrier run on the caller's goroutine, always alone: the
// coordinator is the only code that may look across wheels, and it is the
// only legal channel for cross-wheel interaction (reading shard state,
// injecting events via Wheel(i)).
//
// A wheel that drains its queue mid-epoch with processes still blocked is
// not yet a failure — the coordinator may wake it at the next barrier —
// so such stalls are only recorded. At the final drain a stall is
// permanent: Run returns the stalled wheel's DeadlockError, annotated
// with the wheel index and epoch-barrier state (see DeadlockError), with
// the lowest wheel index winning deterministically when several wheels
// are stuck.
func (s *ShardedEngine) Run(next func() (Time, bool), barrier func(t Time)) error {
	for {
		t, ok := next()
		if !ok {
			s.epoch++
			s.barrier = Never
			return s.promote(s.runEpoch(Never))
		}
		s.epoch++
		s.barrier = t
		s.note(s.runEpoch(t))
		if t != Never {
			for _, w := range s.wheels {
				if now := w.Now(); now < t {
					s.barrierWait += t.Sub(now)
				}
			}
		}
		barrier(t)
	}
}

// Drain runs every wheel to completion with no barriers — the degenerate
// single-epoch schedule for fully independent shards (e.g. a grid of
// simulations that never interact).
func (s *ShardedEngine) Drain() error {
	return s.Run(func() (Time, bool) { return 0, false }, nil)
}

// runEpoch advances every wheel to the deadline and returns the per-wheel
// RunUntil results. Wheels are distributed over the worker pool by an
// atomic work-stealing counter; with workers <= 1 they run in index order
// on the calling goroutine through the same code. The WaitGroup gives the
// coordinator a happens-before edge over every wheel's writes.
func (s *ShardedEngine) runEpoch(deadline Time) []error {
	errs := make([]error, len(s.wheels))
	workers := s.workers
	if workers > len(s.wheels) {
		workers = len(s.wheels)
	}
	if workers <= 1 {
		for i, w := range s.wheels {
			errs[i] = w.RunUntil(deadline)
		}
		return errs
	}
	var idx atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(idx.Add(1)) - 1
				if i >= len(s.wheels) {
					return
				}
				errs[i] = s.wheels[i].RunUntil(deadline)
			}
		}()
	}
	wg.Wait()
	return errs
}

// note records mid-epoch stalls (keeping the first stall epoch) and
// clears stalls that resolved.
func (s *ShardedEngine) note(errs []error) {
	for i, err := range errs {
		var de *DeadlockError
		if errors.As(err, &de) {
			if s.stalled[i].epoch == 0 {
				s.stalled[i].epoch = s.epoch
				s.stalled[i].barrier = s.barrier
			}
		} else {
			s.stalled[i].epoch = 0
		}
	}
}

// promote turns the final drain's per-wheel results into Run's return
// value: the lowest-indexed wheel's error wins, and DeadlockErrors are
// annotated with the shard context so a stalled shard never surfaces as a
// bare global deadlock table.
func (s *ShardedEngine) promote(errs []error) error {
	for i, err := range errs {
		if err == nil {
			continue
		}
		var de *DeadlockError
		if errors.As(err, &de) {
			de.Sharded = true
			de.Wheel = i
			de.Epoch = s.epoch
			de.Barrier = s.barrier
			if st := s.stalled[i]; st.epoch != 0 {
				de.Epoch = st.epoch
				de.Barrier = st.barrier
			}
		}
		return err
	}
	return nil
}
