package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != Duration(1500)*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
	if got := (Duration(2500) * Microsecond).Milliseconds(); got != 2.5 {
		t.Fatalf("Milliseconds = %v, want 2.5", got)
	}
	if got := Time(3 * Second).Seconds(); got != 3 {
		t.Fatalf("Seconds = %v, want 3", got)
	}
}

func TestTimeAddSaturates(t *testing.T) {
	if Never.Add(Second) != Never {
		t.Fatal("Never.Add should stay Never")
	}
	big := Time(1)
	if big.Add(Duration(Never)) != Never {
		t.Fatal("overflowing Add should saturate at Never")
	}
	if got := Time(10).Add(-3); got != 7 {
		t.Fatalf("Add(-3) = %v, want 7", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{2 * Second, "2s"},
		{3 * Millisecond, "3ms"},
		{4 * Microsecond, "4us"},
		{5 * Nanosecond, "5ns"},
		{7, "7fs"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestCallbackOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(Time(10), func() { order = append(order, 1) })
	e.At(Time(5), func() { order = append(order, 0) })
	e.At(Time(10), func() { order = append(order, 2) }) // same time: insertion order
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2}) {
		t.Fatalf("order = %v, want [0 1 2]", order)
	}
	if e.Now() != Time(10) {
		t.Fatalf("Now = %v, want 10", e.Now())
	}
}

func TestCallbackInPastRunsNow(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(Time(100), func() {
		e.At(Time(1), func() { at = e.Now() }) // in the past
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(100) {
		t.Fatalf("past callback ran at %v, want 100", at)
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	e := NewEngine()
	var stamps []Time
	e.Spawn("sleeper", func(p *Proc) {
		stamps = append(stamps, p.Now())
		p.Sleep(3 * Nanosecond)
		stamps = append(stamps, p.Now())
		p.Sleep(2 * Nanosecond)
		stamps = append(stamps, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, Time(3 * Nanosecond), Time(5 * Nanosecond)}
	if !reflect.DeepEqual(stamps, want) {
		t.Fatalf("stamps = %v, want %v", stamps, want)
	}
}

func TestSpawnAt(t *testing.T) {
	e := NewEngine()
	var started Time
	e.SpawnAt(Time(42), "late", func(p *Proc) { started = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if started != Time(42) {
		t.Fatalf("started at %v, want 42", started)
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for _, name := range []string{"a", "b"} {
			name := name
			e.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					log = append(log, fmt.Sprintf("%s%d@%d", name, i, int64(p.Now())))
					p.Sleep(Duration(1+i) * Nanosecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d diverged:\n%v\nvs\n%v", i, got, first)
		}
	}
}

func TestQueueWaitWake(t *testing.T) {
	e := NewEngine()
	q := NewQueue("cond")
	var got Time
	e.Spawn("waiter", func(p *Proc) {
		p.Wait(q)
		got = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(7 * Nanosecond)
		q.WakeOne(e)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != Time(7*Nanosecond) {
		t.Fatalf("woken at %v, want 7ns", got)
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	e := NewEngine()
	q := NewQueue("fifo")
	var order []string
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("w%d", i)
		i := i
		e.Spawn(name, func(p *Proc) {
			p.Sleep(Duration(i) * Nanosecond) // stagger arrival
			p.Wait(q)
			order = append(order, name)
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(100 * Nanosecond)
		for i := 0; i < 4; i++ {
			q.WakeOne(e)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []string{"w0", "w1", "w2", "w3"}) {
		t.Fatalf("wake order = %v", order)
	}
}

func TestWakeAll(t *testing.T) {
	e := NewEngine()
	q := NewQueue("all")
	count := 0
	for i := 0; i < 5; i++ {
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Wait(q)
			count++
		})
	}
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(Nanosecond)
		if n := q.WakeAll(e); n != 5 {
			t.Errorf("WakeAll woke %d, want 5", n)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestWaitForPredicateAlreadyTrue(t *testing.T) {
	e := NewEngine()
	q := NewQueue("pred")
	ran := false
	e.Spawn("p", func(p *Proc) {
		p.WaitFor(q, func() bool { return true })
		ran = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("WaitFor with true predicate blocked")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	q := NewQueue("orphan")
	e.Spawn("stuck", func(p *Proc) { p.Wait(q) })
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "stuck") || !strings.Contains(err.Error(), "orphan") {
		t.Fatalf("unhelpful deadlock report: %v", err)
	}
}

func TestNoDeadlockWhenAllDone(t *testing.T) {
	e := NewEngine()
	e.Spawn("fine", func(p *Proc) { p.Sleep(Nanosecond) })
	if err := e.Run(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(Time(10), func() { fired++ })
	e.At(Time(20), func() { fired++ })
	if err := e.RunUntil(Time(15)); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 after Run", fired)
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(Time(1), func() { fired++; e.Halt() })
	e.At(Time(2), func() { fired++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d after Halt, want 1", fired)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "units", 2)
	active, peak := 0, 0
	for i := 0; i < 6; i++ {
		e.Spawn(fmt.Sprintf("user%d", i), func(p *Proc) {
			sem.Acquire(p)
			active++
			if active > peak {
				peak = active
			}
			p.Sleep(10 * Nanosecond)
			active--
			sem.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
	if sem.Available() != 2 {
		t.Fatalf("available = %d, want 2", sem.Available())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, "try", 1)
	if !sem.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if sem.TryAcquire() {
		t.Fatal("second TryAcquire should fail")
	}
	sem.Release()
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
}

func TestSemaphoreOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-release")
		}
	}()
	e := NewEngine()
	sem := NewSemaphore(e, "over", 1)
	sem.Release()
}

// TestEngineDeterminism runs a randomized mix of sleeping processes twice
// with the same seed and requires identical event traces.
func TestEngineDeterminism(t *testing.T) {
	trace := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var log []string
		q := NewQueue("shared")
		for i := 0; i < 20; i++ {
			name := fmt.Sprintf("p%d", i)
			delays := make([]Duration, 5)
			for j := range delays {
				delays[j] = Duration(rng.Intn(50)) * Nanosecond
			}
			e.Spawn(name, func(p *Proc) {
				for _, d := range delays {
					p.Sleep(d)
					log = append(log, fmt.Sprintf("%s@%d", name, int64(p.Now())))
					q.WakeOne(e) // stir the queue
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	for seed := int64(0); seed < 3; seed++ {
		a, b := trace(seed), trace(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: nondeterministic trace", seed)
		}
	}
}

// Property: virtual time as observed by any single process is monotonically
// nondecreasing across arbitrary sleeps.
func TestPropTimeMonotonic(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		ok := true
		e.Spawn("mono", func(p *Proc) {
			last := p.Now()
			for _, r := range raw {
				p.Sleep(Duration(r) * Picosecond)
				if p.Now() < last {
					ok = false
				}
				last = p.Now()
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: total elapsed time equals the sum of the sleeps.
func TestPropSleepSums(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var want Duration
		for _, r := range raw {
			want += Duration(r) * Picosecond
		}
		e.Spawn("sum", func(p *Proc) {
			for _, r := range raw {
				p.Sleep(Duration(r) * Picosecond)
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return e.Now() == Time(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineEvents(b *testing.B) {
	e := NewEngine()
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Nanosecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestWaitForTimeoutExpires(t *testing.T) {
	e := NewEngine()
	q := NewQueue("never")
	var got bool
	var at Time
	e.Spawn("waiter", func(p *Proc) {
		got = p.WaitForTimeout(q, 10*Nanosecond, func() bool { return false })
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("timeout wait reported success")
	}
	if at != Time(10*Nanosecond) {
		t.Fatalf("expired at %v, want 10ns", at)
	}
}

func TestWaitForTimeoutSucceedsBeforeDeadline(t *testing.T) {
	e := NewEngine()
	q := NewQueue("cond")
	ready := false
	var got bool
	e.Spawn("waiter", func(p *Proc) {
		got = p.WaitForTimeout(q, 100*Nanosecond, func() bool { return ready })
	})
	e.Spawn("setter", func(p *Proc) {
		p.Sleep(5 * Nanosecond)
		ready = true
		q.WakeOne(e)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("wait should have succeeded before the deadline")
	}
}

func TestWaitForTimeoutPredicateAlreadyTrue(t *testing.T) {
	e := NewEngine()
	q := NewQueue("now")
	var got bool
	var at Time
	e.Spawn("waiter", func(p *Proc) {
		got = p.WaitForTimeout(q, 50*Nanosecond, func() bool { return true })
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !got || at != 0 {
		t.Fatalf("already-true predicate: got=%v at=%v", got, at)
	}
}

func TestWaitForTimeoutSpuriousWakeThenExpiry(t *testing.T) {
	// Wakes that do not satisfy the predicate must not defeat the timeout.
	e := NewEngine()
	q := NewQueue("spurious")
	var got bool
	var at Time
	e.Spawn("waiter", func(p *Proc) {
		got = p.WaitForTimeout(q, 20*Nanosecond, func() bool { return false })
		at = p.Now()
	})
	e.Spawn("waker", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(4 * Nanosecond)
			q.WakeAll(e)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got || at != Time(20*Nanosecond) {
		t.Fatalf("spurious wakes: got=%v at=%v", got, at)
	}
}
