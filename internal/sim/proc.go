package sim

import "fmt"

type procState int

const (
	procNew procState = iota
	procRunning
	procBlocked // waiting on a Queue, no scheduled resume event
	procSleeping
	procDone
)

// Proc is a simulated process: a goroutine whose execution is interleaved
// with all other processes by the engine, one at a time, in virtual-time
// order. All Proc methods must be called only from the process's own body,
// except Kill, which any other process or engine callback may call.
type Proc struct {
	engine       *Engine
	name         string
	resume       chan signal
	state        procState
	blockedOn    string
	blockedSince Time   // when the process entered procBlocked
	wake         *event // pending resume event, if sleeping
	procIdx      int    // position in engine.procs for O(1) removal
	killed       bool

	// interruptible wait support
	waitingIn *Queue
	waitPos   int
}

// killUnwind is the panic value that unwinds a killed process's stack from
// its current yield point; the spawn goroutine's recover absorbs it.
type killUnwind struct{ p *Proc }

// Spawn creates a process that starts running at the current virtual time.
// The body runs on its own goroutine but never concurrently with the engine
// or another process.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, body)
}

// SpawnAt is Spawn with a delayed start.
func (e *Engine) SpawnAt(t Time, name string, body func(p *Proc)) *Proc {
	if t < e.now {
		t = e.now
	}
	p := &Proc{engine: e, name: name, resume: make(chan signal), state: procNew}
	e.addProc(p)
	go func() {
		<-p.resume // wait for first dispatch
		defer func() {
			r := recover()
			p.state = procDone
			e.removeProc(p)
			if r != nil {
				if ku, ok := r.(killUnwind); !ok || ku.p != p {
					panic(r) // a real panic from the body: crash loudly
				}
			}
			e.ready <- signal{}
		}()
		if !p.killed {
			body(p)
		}
	}()
	ev := e.alloc()
	ev.at = t
	ev.proc = p
	e.push(ev)
	return p
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.engine }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.engine.now }

// yield parks the process and returns control to the engine. The caller
// must have arranged for a future resume (scheduled event or queue entry).
// A process killed while parked unwinds here instead of returning.
func (p *Proc) yield() {
	p.engine.ready <- signal{}
	<-p.resume
	if p.killed {
		panic(killUnwind{p})
	}
	p.state = procRunning
}

// Kill terminates the process at its current suspension point: its stack
// unwinds (running deferred functions), it is removed from any wait queue,
// and any pending wake-up event is cancelled. Killing a finished or
// already-killed process is a no-op. A process that has not started yet
// never runs its body. Kill is the one Proc method that other processes
// and engine callbacks may call; the victim is gone (procDone) after the
// kill event at the current virtual time is dispatched.
func (p *Proc) Kill() {
	if p.state == procDone || p.killed {
		return
	}
	p.killed = true
	switch p.state {
	case procBlocked:
		if q := p.waitingIn; q != nil {
			q.remove(p)
			p.waitingIn = nil
		}
		p.scheduleKillResume()
	case procSleeping:
		if p.wake != nil {
			p.engine.cancel(p.wake)
			p.wake = nil
		}
		p.scheduleKillResume()
	case procNew, procRunning:
		// procNew: the spawn event is already pending; the body is skipped
		// at first dispatch. procRunning: the process unwinds at its next
		// yield (only reachable from the process killing itself).
	}
}

// Killed reports whether Kill has been called on the process.
func (p *Proc) Killed() bool { return p.killed }

// scheduleKillResume arranges an immediate resume so the killed process
// can unwind at the current virtual time.
func (p *Proc) scheduleKillResume() {
	p.state = procSleeping
	ev := p.engine.alloc()
	ev.at = p.engine.now
	ev.proc = p
	p.engine.push(ev)
}

// Sleep advances the process's virtual time by d. Non-positive durations
// yield the processor without advancing time (other events at the current
// instant run first).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.state = procSleeping
	ev := p.engine.alloc()
	ev.at = p.engine.now.Add(d)
	ev.proc = p
	p.wake = ev
	p.engine.push(ev)
	p.yield()
	p.wake = nil
}

// SleepUntil advances the process's virtual time to t (no-op if t has
// passed).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.engine.now {
		p.Yield()
		return
	}
	p.Sleep(t.Sub(p.engine.now))
}

// Yield reschedules the process at the current instant, behind events
// already pending at this time.
func (p *Proc) Yield() { p.Sleep(0) }

// Queue is a FIFO wait queue for processes blocking on a condition owned by
// some piece of simulated state (a mailbox slot, a DMA completion, ...).
// The zero value is ready to use once Name is set (or via NewQueue).
type Queue struct {
	name    string
	waiters []*Proc
}

// NewQueue returns a wait queue labelled for deadlock reports.
func NewQueue(name string) *Queue { return &Queue{name: name} }

// Name returns the queue's label.
func (q *Queue) Name() string { return q.name }

// Len reports the number of blocked processes.
func (q *Queue) Len() int { return len(q.waiters) }

// Wait blocks the calling process until another process calls WakeOne or
// WakeAll. Wait does not advance virtual time by itself; the wake-up occurs
// at the waker's current time.
func (p *Proc) Wait(q *Queue) {
	p.state = procBlocked
	p.blockedOn = q.name
	p.blockedSince = p.engine.now
	p.waitingIn = q
	q.waiters = append(q.waiters, p)
	p.yield()
	p.waitingIn = nil
	p.blockedOn = ""
}

// remove deletes p from the wait queue (if present), preserving FIFO
// order of the remaining waiters.
func (q *Queue) remove(p *Proc) {
	for i, w := range q.waiters {
		if w == p {
			copy(q.waiters[i:], q.waiters[i+1:])
			q.waiters[len(q.waiters)-1] = nil
			q.waiters = q.waiters[:len(q.waiters)-1]
			return
		}
	}
}

// WakeOne resumes the longest-waiting process, if any, scheduling it at the
// current virtual time. It reports whether a process was woken.
func (q *Queue) WakeOne(e *Engine) bool {
	if len(q.waiters) == 0 {
		return false
	}
	p := q.waiters[0]
	copy(q.waiters, q.waiters[1:])
	q.waiters = q.waiters[:len(q.waiters)-1]
	p.state = procSleeping
	ev := e.alloc()
	ev.at = e.now
	ev.proc = p
	e.push(ev)
	return true
}

// WakeAll resumes every waiting process in FIFO order.
func (q *Queue) WakeAll(e *Engine) int {
	n := len(q.waiters)
	for i := 0; i < n; i++ {
		p := q.waiters[i]
		p.state = procSleeping
		ev := e.alloc()
		ev.at = e.now
		ev.proc = p
		e.push(ev)
	}
	q.waiters = q.waiters[:0]
	return n
}

// WaitFor blocks until pred() is true, re-testing each time the queue is
// woken. The predicate is evaluated before the first wait, so a condition
// that already holds never blocks.
func (p *Proc) WaitFor(q *Queue, pred func() bool) {
	for !pred() {
		p.Wait(q)
	}
}

// WaitForTimeout is WaitFor with a deadline: it returns true as soon as
// pred() holds, or false once d of virtual time elapses first. On timeout
// the process is removed from the queue.
func (p *Proc) WaitForTimeout(q *Queue, d Duration, pred func() bool) bool {
	deadline := p.engine.now.Add(d)
	expired := false
	timer := p.engine.Schedule(deadline, func() {
		expired = true
		// Resume the process only if it is actually blocked on this
		// queue; otherwise it is running and will observe `expired` at
		// its next loop check.
		for i, w := range q.waiters {
			if w == p {
				copy(q.waiters[i:], q.waiters[i+1:])
				q.waiters = q.waiters[:len(q.waiters)-1]
				p.state = procSleeping
				ev := p.engine.alloc()
				ev.at = p.engine.now
				ev.proc = p
				p.engine.push(ev)
				return
			}
		}
	})
	defer timer.Cancel()
	for !pred() {
		if expired || p.engine.now >= deadline {
			return false
		}
		p.Wait(q)
	}
	return true
}

func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }
