package sim

import "testing"

func TestTimerFires(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.Schedule(Time(10), func() { fired = true })
	if !tm.Active() || tm.When() != Time(10) {
		t.Fatal("timer should be active at t=10")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("timer did not fire")
	}
	if tm.Active() {
		t.Fatal("fired timer still active")
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.Schedule(Time(10), func() { fired = true })
	e.At(Time(5), func() { tm.Cancel() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
	tm.Cancel() // double-cancel is a no-op
	if tm.When() != Never {
		t.Fatal("cancelled timer should report Never")
	}
}

func TestTimerReschedule(t *testing.T) {
	e := NewEngine()
	var at Time
	tm := e.Schedule(Time(10), func() { at = e.Now() })
	e.At(Time(5), func() { tm.Reschedule(Time(30)) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(30) {
		t.Fatalf("fired at %v, want 30", at)
	}
}

func TestTimerRearmAfterFire(t *testing.T) {
	e := NewEngine()
	count := 0
	var tm *Timer
	tm = e.Schedule(Time(10), func() { count++ })
	e.At(Time(20), func() { tm.Reschedule(Time(25)) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2 (re-armed timer fires again)", count)
	}
}
