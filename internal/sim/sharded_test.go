package sim

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestShardedDrainRunsAllWheels checks the degenerate no-barrier schedule:
// every wheel's events run to completion, per-wheel order and clocks are
// preserved, and EventCount sums over the wheels.
func TestShardedDrainRunsAllWheels(t *testing.T) {
	s := NewSharded(4, 2)
	logs := make([][]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		w := s.Wheel(i)
		for j := 0; j < 3; j++ {
			j := j
			w.At(Time(j+1)*Time(Millisecond), func() { logs[i] = append(logs[i], j) })
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for i, log := range logs {
		if len(log) != 3 || log[0] != 0 || log[1] != 1 || log[2] != 2 {
			t.Fatalf("wheel %d ran out of order: %v", i, log)
		}
		if now := s.Wheel(i).Now(); now != Time(3*Millisecond) {
			t.Fatalf("wheel %d clock %v, want 3ms", i, now)
		}
	}
	if s.EventCount() != 12 {
		t.Fatalf("EventCount %d, want 12", s.EventCount())
	}
}

// TestShardedEpochBarrier checks the conservative protocol: wheels stop
// exactly at each barrier deadline, the coordinator runs alone between
// epochs and may inject events into any wheel, and injected events are
// honoured in the following epoch.
func TestShardedEpochBarrier(t *testing.T) {
	s := NewSharded(2, 2)
	var mu sync.Mutex
	var log []string
	append_ := func(tag string) {
		mu.Lock()
		log = append(log, tag)
		mu.Unlock()
	}
	record := func(tag string) func() {
		return func() { append_(tag) }
	}
	s.Wheel(0).At(Time(1*Millisecond), record("w0@1"))
	s.Wheel(0).At(Time(5*Millisecond), record("w0@5"))
	s.Wheel(1).At(Time(3*Millisecond), record("w1@3"))

	barriers := []Time{Time(2 * Millisecond), Time(4 * Millisecond)}
	bi := 0
	err := s.Run(
		func() (Time, bool) {
			if bi >= len(barriers) {
				return 0, false
			}
			t := barriers[bi]
			bi++
			return t, true
		},
		func(at Time) {
			// The coordinator sees both wheels quiescent at the barrier
			// and is the only legal cross-wheel channel.
			append_(fmt.Sprintf("barrier@%dms", int64(at)/int64(Millisecond)))
			if at == Time(2*Millisecond) {
				// Wheel 0 already ran its 1ms event; wheel 1's 3ms event
				// must not have run yet.
				s.Wheel(1).At(Time(3*Millisecond)+Time(500*Microsecond), record("w1@3.5(injected)"))
			}
		},
	)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"w0@1", "barrier@2ms", "w1@3", "w1@3.5(injected)", "barrier@4ms", "w0@5"}
	if len(log) != len(want) {
		t.Fatalf("log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log[%d] = %q, want %q (full: %v)", i, log[i], want[i], log)
		}
	}
	if s.Epochs() != 3 { // two barrier epochs plus the final drain
		t.Fatalf("Epochs %d, want 3", s.Epochs())
	}
}

// TestShardedDeadlockIsShardAware checks the bugfix: a wheel that ends
// the run with blocked processes surfaces as that wheel's annotated
// DeadlockError — wheel index, stall epoch and barrier state in the
// message — with the lowest wheel index winning when several are stuck.
func TestShardedDeadlockIsShardAware(t *testing.T) {
	s := NewSharded(4, 2)
	block := func(w *Engine, name string) {
		q := NewQueue("never-signalled")
		w.Spawn(name, func(p *Proc) { p.Wait(q) })
	}
	// Wheels 1 and 3 block forever; 0 and 2 finish clean work.
	block(s.Wheel(1), "stuck-b")
	block(s.Wheel(3), "stuck-d")
	s.Wheel(0).At(Time(Millisecond), func() {})
	s.Wheel(2).At(Time(Millisecond), func() {})

	barriers := []Time{Time(2 * Millisecond), Time(4 * Millisecond)}
	bi := 0
	err := s.Run(func() (Time, bool) {
		if bi >= len(barriers) {
			return 0, false
		}
		t := barriers[bi]
		bi++
		return t, true
	}, func(Time) {})
	if err == nil {
		t.Fatal("expected a deadlock error")
	}
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("error type %T, want *DeadlockError", err)
	}
	if !de.Sharded || de.Wheel != 1 {
		t.Fatalf("annotation Sharded=%v Wheel=%d, want Sharded=true Wheel=1 (lowest stuck wheel)", de.Sharded, de.Wheel)
	}
	if de.Epoch != 1 || de.Barrier != Time(2*Millisecond) {
		t.Fatalf("stall epoch/barrier = %d/%v, want 1/2ms (first epoch the wheel stalled in)", de.Epoch, de.Barrier)
	}
	msg := err.Error()
	for _, frag := range []string{"wheel 1 deadlocked", "epoch 1", "stuck-b", "never-signalled"} {
		if !strings.Contains(msg, frag) {
			t.Fatalf("deadlock message missing %q: %s", frag, msg)
		}
	}
}

// TestShardedStallResolvedByBarrier checks that a mid-epoch stall is not
// an error when the coordinator wakes the wheel at a later barrier.
func TestShardedStallResolvedByBarrier(t *testing.T) {
	s := NewSharded(2, 1)
	q := NewQueue("work")
	var got bool
	s.Wheel(0).Spawn("waiter", func(p *Proc) {
		p.Wait(q)
		got = true
	})
	fired := false
	err := s.Run(func() (Time, bool) {
		if fired {
			return 0, false
		}
		fired = true
		return Time(Millisecond), true
	}, func(Time) {
		q.WakeOne(s.Wheel(0)) // the coordinator resolves the stall
	})
	if err != nil {
		t.Fatalf("Run: %v (stall should have been resolved at the barrier)", err)
	}
	if !got {
		t.Fatal("waiter never resumed")
	}
}

// TestUnshardedDeadlockMessageUnchanged pins the non-sharded error shape:
// engines outside a ShardedEngine must keep the bare global report.
func TestUnshardedDeadlockMessageUnchanged(t *testing.T) {
	e := NewEngine()
	q := NewQueue("empty-mailbox")
	e.Spawn("reader", func(p *Proc) { p.Wait(q) })
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock")
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, "sim: deadlock at ") {
		t.Fatalf("unsharded prefix changed: %s", msg)
	}
	if strings.Contains(msg, "wheel") {
		t.Fatalf("unsharded deadlock mentions wheels: %s", msg)
	}
}

// TestShardedWorkerCountInvariance runs the same two-wheel schedule with
// completion-chain events (each event schedules its successor, the serve
// layer's dispatch pattern) at several worker counts and requires
// byte-identical logs and event counts.
func TestShardedWorkerCountInvariance(t *testing.T) {
	build := func(workers int) ([]string, uint64) {
		s := NewSharded(3, workers)
		logs := make([][]string, 3)
		var chain func(w int, depth int, at Time)
		chain = func(w int, depth int, at Time) {
			s.Wheel(w).At(at, func() {
				logs[w] = append(logs[w], fmt.Sprintf("w%d d%d @%d", w, depth, s.Wheel(w).Now()))
				if depth < 4 {
					chain(w, depth+1, at+Time(depth+1)*Time(Microsecond))
				}
			})
		}
		for w := 0; w < 3; w++ {
			chain(w, 0, Time(w+1)*Time(Microsecond))
		}
		barriers := []Time{Time(3 * Microsecond), Time(9 * Microsecond)}
		bi := 0
		err := s.Run(func() (Time, bool) {
			if bi >= len(barriers) {
				return 0, false
			}
			t := barriers[bi]
			bi++
			return t, true
		}, func(at Time) {
			for w := 0; w < 3; w++ {
				logs[w] = append(logs[w], fmt.Sprintf("w%d barrier@%d", w, at))
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var flat []string
		for _, l := range logs {
			flat = append(flat, l...)
		}
		return flat, s.EventCount()
	}
	refLog, refCount := build(1)
	for _, workers := range []int{2, 3, 8} {
		log, count := build(workers)
		if count != refCount {
			t.Fatalf("workers=%d EventCount %d, want %d", workers, count, refCount)
		}
		if len(log) != len(refLog) {
			t.Fatalf("workers=%d log length %d, want %d", workers, len(log), len(refLog))
		}
		for i := range log {
			if log[i] != refLog[i] {
				t.Fatalf("workers=%d log[%d] = %q, want %q", workers, i, log[i], refLog[i])
			}
		}
	}
}
