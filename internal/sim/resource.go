package sim

// Semaphore is a counting semaphore in virtual time. Acquire blocks the
// calling process until a unit is available; Release never blocks.
// Fairness is FIFO among blocked processes.
type Semaphore struct {
	engine *Engine
	avail  int
	cap    int
	q      *Queue
}

// NewSemaphore returns a semaphore with the given number of units.
func NewSemaphore(e *Engine, name string, units int) *Semaphore {
	if units < 0 {
		panic("sim: negative semaphore capacity")
	}
	return &Semaphore{engine: e, avail: units, cap: units, q: NewQueue(name)}
}

// Available reports the number of free units.
func (s *Semaphore) Available() int { return s.avail }

// Cap reports the total number of units.
func (s *Semaphore) Cap() int { return s.cap }

// Acquire takes one unit, blocking in virtual time until one is free.
func (s *Semaphore) Acquire(p *Proc) {
	p.WaitFor(s.q, func() bool { return s.avail > 0 })
	s.avail--
}

// TryAcquire takes a unit without blocking; it reports whether it succeeded.
func (s *Semaphore) TryAcquire() bool {
	if s.avail == 0 {
		return false
	}
	s.avail--
	return true
}

// Release returns one unit and wakes a blocked acquirer, if any.
func (s *Semaphore) Release() {
	if s.avail >= s.cap {
		panic("sim: semaphore released above capacity: " + s.q.name)
	}
	s.avail++
	s.q.WakeOne(s.engine)
}
