package sim

// Timer is a handle to a scheduled callback that can be cancelled or
// rescheduled before it fires. It is the building block for models that
// must revise a predicted completion time when conditions change (e.g. the
// EIB bandwidth-sharing model reschedules transfer completions whenever a
// transfer starts or ends).
type Timer struct {
	engine *Engine
	ev     *event
	fn     func()
}

// Schedule registers fn to run at absolute time t and returns a handle.
func (e *Engine) Schedule(t Time, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	tm := &Timer{engine: e, fn: fn}
	tm.arm(t)
	return tm
}

// arm allocates and pushes the timer's event at time t. The wrapper drops
// the handle's reference before running fn, so the dispatched event can be
// recycled safely even if fn re-arms the timer.
func (t *Timer) arm(at Time) {
	ev := t.engine.alloc()
	ev.at = at
	ev.fn = func() { t.ev = nil; t.fn() }
	t.ev = ev
	t.engine.push(ev)
}

// Cancel removes the pending callback. Cancelling a fired or already
// cancelled timer is a no-op.
func (t *Timer) Cancel() {
	if t.ev != nil {
		t.engine.cancel(t.ev)
		t.ev = nil
	}
}

// Reschedule moves the pending callback to a new time (or re-arms a fired
// timer with the original callback).
func (t *Timer) Reschedule(at Time) {
	t.Cancel()
	if at < t.engine.now {
		at = t.engine.now
	}
	t.arm(at)
}

// Active reports whether the callback is still pending.
func (t *Timer) Active() bool { return t.ev != nil }

// When returns the pending fire time, or Never if inactive.
func (t *Timer) When() Time {
	if t.ev == nil {
		return Never
	}
	return t.ev.at
}
