package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// event is a scheduled occurrence: either a callback or a process resume.
type event struct {
	at   Time
	seq  uint64 // tie-break: insertion order, keeps the engine deterministic
	fn   func()
	proc *Proc
	idx  int // heap index (-1 when popped/cancelled)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulator.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	procs  map[*Proc]struct{} // all live (not yet terminated) processes
	ready  chan signal        // process -> engine handshake
	halted bool

	// EventCount is the total number of events dispatched so far.
	EventCount uint64
}

type signal struct{}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{
		procs: make(map[*Proc]struct{}),
		ready: make(chan signal),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t (not before the current
// time). Callbacks run in scheduling order among events with equal time.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.push(&event{at: t, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now.Add(d), fn) }

func (e *Engine) push(ev *event) {
	e.seq++
	ev.seq = e.seq
	heap.Push(&e.queue, ev)
}

func (e *Engine) cancel(ev *event) {
	if ev.idx >= 0 {
		heap.Remove(&e.queue, ev.idx)
	}
}

// Run dispatches events until the queue is empty or the engine is halted.
// It returns an error if live processes remain blocked with no pending
// events (a simulated deadlock), listing the stuck processes.
func (e *Engine) Run() error { return e.RunUntil(Never) }

// RunUntil dispatches events with timestamp <= deadline. Reaching the
// deadline with work left is not an error; an empty queue with blocked
// processes is.
func (e *Engine) RunUntil(deadline Time) error {
	for !e.halted {
		if len(e.queue) == 0 {
			return e.checkQuiescent()
		}
		next := e.queue[0]
		if next.at > deadline {
			return nil
		}
		ev := heap.Pop(&e.queue).(*event)
		if ev.at > e.now {
			e.now = ev.at
		}
		e.EventCount++
		switch {
		case ev.fn != nil:
			ev.fn()
		case ev.proc != nil:
			e.resume(ev.proc)
		}
	}
	return nil
}

// Halt stops the engine after the current event completes. Remaining
// processes are abandoned in place; the engine must not be reused afterward.
func (e *Engine) Halt() { e.halted = true }

// checkQuiescent reports an error when blocked processes can never resume.
func (e *Engine) checkQuiescent() error {
	var stuck []string
	for p := range e.procs {
		if p.state == procBlocked {
			stuck = append(stuck, fmt.Sprintf("%s (blocked on %s)", p.name, p.blockedOn))
		}
	}
	if len(stuck) == 0 {
		return nil
	}
	sort.Strings(stuck)
	return fmt.Errorf("sim: deadlock at %s: no events pending and %d process(es) blocked: %s",
		e.now, len(stuck), strings.Join(stuck, "; "))
}

// resume hands control to p until it yields back.
func (e *Engine) resume(p *Proc) {
	if p.state == procDone {
		return
	}
	p.state = procRunning
	p.resume <- signal{}
	<-e.ready
}
