package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// event is a scheduled occurrence: either a callback or a process resume.
// Events are pooled on the engine free list; idx doubles as the location
// tag (heap index, now-lane, popped, or cancelled-in-lane).
type event struct {
	at   Time
	seq  uint64 // tie-break: insertion order, keeps the engine deterministic
	fn   func()
	proc *Proc
	idx  int // heap index; idxPopped / idxNowLane / idxDead when not in heap
}

// idx sentinels for events outside the heap.
const (
	idxPopped  = -1 // dispatched or removed from the heap
	idxNowLane = -2 // waiting in the same-timestamp FIFO lane
	idxDead    = -3 // cancelled while in the now lane; skipped on drain
)

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = idxPopped
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulator.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now   Time
	seq   uint64
	queue eventHeap
	// nowq is the same-timestamp fast lane: events scheduled at exactly
	// the current time bypass the heap and run in FIFO (= seq) order.
	// Wake-at-now (WakeOne, Yield, Spawn) is the dominant scheduling
	// pattern, so this skips the O(log n) sift for most events. Dispatch
	// merges the lane head with the heap top by (at, seq), preserving the
	// exact total order a pure heap would produce.
	nowq    []*event
	nowHead int
	free    []*event // recycled event structs
	procs   []*Proc  // all live (not yet terminated) processes
	ready   chan signal
	halted  bool

	// EventCount is the total number of events dispatched so far.
	EventCount uint64
}

type signal struct{}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{ready: make(chan signal)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t (not before the current
// time). Callbacks run in scheduling order among events with equal time.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	ev := e.alloc()
	ev.at = t
	ev.fn = fn
	e.push(ev)
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now.Add(d), fn) }

// alloc takes an event from the free list (or the heap allocator). Callers
// fill at/fn/proc and hand it to push, which owns seq assignment.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle clears a dispatched/cancelled event and returns it to the pool.
func (e *Engine) recycle(ev *event) {
	*ev = event{}
	e.free = append(e.free, ev)
}

func (e *Engine) push(ev *event) {
	e.seq++
	ev.seq = e.seq
	if ev.at == e.now {
		ev.idx = idxNowLane
		e.nowq = append(e.nowq, ev)
		return
	}
	heap.Push(&e.queue, ev)
}

func (e *Engine) cancel(ev *event) {
	switch {
	case ev.idx >= 0:
		heap.Remove(&e.queue, ev.idx)
		e.recycle(ev)
	case ev.idx == idxNowLane:
		// Still referenced by the lane slice: tombstone it; the dispatch
		// loop recycles it when drained.
		ev.idx = idxDead
		ev.fn = nil
		ev.proc = nil
	}
}

// Run dispatches events until the queue is empty or the engine is halted.
// It returns an error if live processes remain blocked with no pending
// events (a simulated deadlock), listing the stuck processes.
func (e *Engine) Run() error { return e.RunUntil(Never) }

// RunUntil dispatches events with timestamp <= deadline. Reaching the
// deadline with work left is not an error; an empty queue with blocked
// processes is.
func (e *Engine) RunUntil(deadline Time) error {
	for !e.halted {
		// Skip tombstoned lane entries.
		for e.nowHead < len(e.nowq) && e.nowq[e.nowHead].idx == idxDead {
			e.recycle(e.nowq[e.nowHead])
			e.nowq[e.nowHead] = nil
			e.nowHead++
		}
		var ev *event
		if e.nowHead < len(e.nowq) {
			// Lane events sit at e.now, so they precede any heap event at
			// a later time; at equal time the smaller seq wins.
			nw := e.nowq[e.nowHead]
			if len(e.queue) == 0 || e.queue[0].at > nw.at ||
				(e.queue[0].at == nw.at && e.queue[0].seq > nw.seq) {
				if nw.at > deadline {
					return nil
				}
				ev = nw
				e.nowq[e.nowHead] = nil
				e.nowHead++
			}
		} else if e.nowHead > 0 {
			// Lane drained: reset it so the backing array is reused.
			e.nowq = e.nowq[:0]
			e.nowHead = 0
		}
		if ev == nil {
			if len(e.queue) == 0 {
				return e.checkQuiescent()
			}
			if e.queue[0].at > deadline {
				return nil
			}
			ev = heap.Pop(&e.queue).(*event)
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		e.EventCount++
		switch {
		case ev.fn != nil:
			ev.fn()
		case ev.proc != nil:
			e.resume(ev.proc)
		}
		e.recycle(ev)
	}
	return nil
}

// Halt stops the engine after the current event completes. Remaining
// processes are abandoned in place; the engine must not be reused afterward.
func (e *Engine) Halt() { e.halted = true }

// NextEventTime reports the timestamp of the earliest pending event, and
// whether one exists. It is the engine's lower bound on when its state
// can next change: no callback or process resume can fire strictly
// before the returned time. The sharded coordinator uses this between
// epochs to negotiate a conservative lookahead horizon (see
// ShardedEngine.Horizon); calling it while the engine is dispatching
// events is meaningless (the answer is already stale).
func (e *Engine) NextEventTime() (Time, bool) {
	best := Never
	ok := false
	for i := e.nowHead; i < len(e.nowq); i++ {
		if e.nowq[i].idx == idxDead {
			continue
		}
		// Lane events all sit at the time they were pushed (== now then);
		// the engine never travels backward, so the earliest live lane
		// entry is a valid lower bound.
		if e.nowq[i].at < best {
			best = e.nowq[i].at
		}
		ok = true
	}
	if len(e.queue) > 0 {
		ok = true
		if e.queue[0].at < best {
			best = e.queue[0].at
		}
	}
	return best, ok
}

// addProc registers a live process (O(1) slice append).
func (e *Engine) addProc(p *Proc) {
	p.procIdx = len(e.procs)
	e.procs = append(e.procs, p)
}

// removeProc unregisters a terminated process by swapping in the last slot.
func (e *Engine) removeProc(p *Proc) {
	last := len(e.procs) - 1
	moved := e.procs[last]
	e.procs[p.procIdx] = moved
	moved.procIdx = p.procIdx
	e.procs[last] = nil
	e.procs = e.procs[:last]
}

// BlockedProc describes one stuck process: its name, the wait queue it is
// blocked on (the wait cause), and when it blocked.
type BlockedProc struct {
	Name  string
	Queue string
	Since Time
}

// DeadlockError reports a simulated deadlock: the event queue drained
// while processes were still blocked, so none of them can ever resume.
// Instead of ending the run as if it completed, Run surfaces every stuck
// process and its wait cause.
//
// When the deadlocked engine was one wheel of a ShardedEngine run, the
// shard fields identify the blocked wheel and the epoch-barrier state at
// the first stall, so a stuck shard reads as "wheel N stalled at epoch E"
// rather than a bare global deadlock table.
type DeadlockError struct {
	At      Time
	Blocked []BlockedProc

	// Sharded execution context (populated by ShardedEngine).
	Sharded bool
	Wheel   int    // index of the deadlocked wheel
	Epoch   uint64 // epoch in which the wheel first stalled
	Barrier Time   // that epoch's barrier deadline (Never for the final drain)
}

func (e *DeadlockError) Error() string {
	parts := make([]string, len(e.Blocked))
	for i, b := range e.Blocked {
		parts[i] = fmt.Sprintf("%s (blocked on %s since %s)", b.Name, b.Queue, b.Since)
	}
	head := fmt.Sprintf("sim: deadlock at %s", e.At)
	if e.Sharded {
		head = fmt.Sprintf("sim: wheel %d deadlocked at %s (stalled in epoch %d, barrier %s)",
			e.Wheel, e.At, e.Epoch, e.Barrier)
	}
	return fmt.Sprintf("%s: no events pending and %d process(es) blocked: %s",
		head, len(e.Blocked), strings.Join(parts, "; "))
}

// Blocked returns a snapshot of the currently blocked processes, sorted by
// name then queue for deterministic reporting.
func (e *Engine) Blocked() []BlockedProc {
	var stuck []BlockedProc
	for _, p := range e.procs {
		if p.state == procBlocked {
			stuck = append(stuck, BlockedProc{Name: p.name, Queue: p.blockedOn, Since: p.blockedSince})
		}
	}
	sort.Slice(stuck, func(i, j int) bool {
		if stuck[i].Name != stuck[j].Name {
			return stuck[i].Name < stuck[j].Name
		}
		return stuck[i].Queue < stuck[j].Queue
	})
	return stuck
}

// checkQuiescent reports a DeadlockError when blocked processes can never
// resume.
func (e *Engine) checkQuiescent() error {
	stuck := e.Blocked()
	if len(stuck) == 0 {
		return nil
	}
	return &DeadlockError{At: e.now, Blocked: stuck}
}

// resume hands control to p until it yields back.
func (e *Engine) resume(p *Proc) {
	if p.state == procDone {
		return
	}
	p.state = procRunning
	p.resume <- signal{}
	<-e.ready
}
