// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine. It is the substrate on which the simulated Cell B.E.
// machine (PPE, SPEs, DMA engines, buses) executes in virtual time.
//
// The engine runs exactly one simulated process at a time; processes yield
// to the engine whenever they advance virtual time or block on a condition.
// Because execution is serialized, simulated processes may share state
// without locks, and two runs with the same inputs produce the same event
// order (see TestEngineDeterminism).
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is an absolute virtual timestamp in femtoseconds.
//
// Femtoseconds keep cycle-to-time conversion exact for the 3.2 GHz Cell
// clock (1 cycle = 312,500 fs) and keep rounding error for non-divisor
// frequencies (e.g. the 3.4 GHz "Desktop" host model) below one part in
// 1e5 per cycle. An int64 of femtoseconds covers about 2.5 hours of
// virtual time, far beyond any experiment in this repository.
type Time int64

// Duration is a span of virtual time in femtoseconds.
type Duration int64

// Common durations.
const (
	Femtosecond Duration = 1
	Picosecond           = 1000 * Femtosecond
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Never is a sentinel Time later than any reachable simulation instant.
const Never Time = math.MaxInt64

// Seconds reports the timestamp as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Std converts a virtual duration to a time.Duration (nanosecond
// granularity, rounding half away from zero).
func (d Duration) Std() time.Duration {
	return time.Duration((int64(d) + int64(Nanosecond)/2) / int64(Nanosecond))
}

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds reports the duration as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds reports the duration as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// FromSeconds converts floating-point seconds to a Duration.
func FromSeconds(s float64) Duration { return Duration(math.Round(s * float64(Second))) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	abs := d
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Second:
		return fmt.Sprintf("%.6gs", d.Seconds())
	case abs >= Millisecond:
		return fmt.Sprintf("%.6gms", d.Milliseconds())
	case abs >= Microsecond:
		return fmt.Sprintf("%.6gus", d.Microseconds())
	case abs >= Nanosecond:
		return fmt.Sprintf("%.6gns", float64(d)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dfs", int64(d))
	}
}

// String formats the timestamp as seconds.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return fmt.Sprintf("t=%.9fs", t.Seconds())
}

// Add returns the time d after t, saturating at Never.
func (t Time) Add(d Duration) Time {
	if t == Never {
		return Never
	}
	s := Time(int64(t) + int64(d))
	if d > 0 && s < t {
		return Never
	}
	return s
}

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(int64(t) - int64(u)) }
