package sim

import (
	"errors"
	"testing"
)

// TestKillBlockedProc kills a process parked on a wait queue: its stack
// must unwind (running defers), it must leave the queue, and the run must
// end cleanly instead of reporting a deadlock.
func TestKillBlockedProc(t *testing.T) {
	e := NewEngine()
	q := NewQueue("never-signaled")
	var finished, unwound bool
	victim := e.Spawn("victim", func(p *Proc) {
		defer func() { unwound = true }()
		p.Wait(q)
		finished = true
	})
	e.Spawn("killer", func(p *Proc) {
		p.Sleep(Microsecond)
		victim.Kill()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if finished {
		t.Error("killed process ran past its wait")
	}
	if !unwound {
		t.Error("killed process did not run its deferred functions")
	}
	if q.Len() != 0 {
		t.Errorf("queue still holds %d waiter(s)", q.Len())
	}
	if !victim.Killed() {
		t.Error("Killed() = false after Kill")
	}
}

// TestKillPreservesQueueFIFO removes only the killed waiter; the
// remaining waiters keep their FIFO order.
func TestKillPreservesQueueFIFO(t *testing.T) {
	e := NewEngine()
	q := NewQueue("fifo")
	var order []string
	waiter := func(name string) *Proc {
		return e.Spawn(name, func(p *Proc) {
			p.Wait(q)
			order = append(order, name)
		})
	}
	a := waiter("a")
	waiter("b")
	waiter("c")
	e.Spawn("driver", func(p *Proc) {
		p.Sleep(Microsecond)
		a.Kill()
		q.WakeOne(e)
		q.WakeOne(e)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "b" || order[1] != "c" {
		t.Errorf("wake order = %v, want [b c]", order)
	}
}

// TestKillSleepingProc cancels the pending wake event, so a killed
// sleeper neither resumes nor leaves a dangling event.
func TestKillSleepingProc(t *testing.T) {
	e := NewEngine()
	var woke bool
	victim := e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(Millisecond)
		woke = true
	})
	e.Spawn("killer", func(p *Proc) {
		p.Sleep(Microsecond)
		victim.Kill()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woke {
		t.Error("killed sleeper still woke")
	}
	if got := e.Now(); got != Time(Microsecond) {
		t.Errorf("engine ran to %s, want the kill time %s", got, Time(Microsecond))
	}
}

// TestKillUnstartedProc: a process killed before its first dispatch never
// runs its body.
func TestKillUnstartedProc(t *testing.T) {
	e := NewEngine()
	var ran bool
	victim := e.SpawnAt(Time(Millisecond), "late", func(p *Proc) { ran = true })
	victim.Kill()
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Error("killed unstarted process ran its body")
	}
}

// TestKillSelf: a running process that kills itself unwinds at its next
// yield point.
func TestKillSelf(t *testing.T) {
	e := NewEngine()
	var after bool
	e.Spawn("self", func(p *Proc) {
		p.Kill()
		p.Sleep(Microsecond) // the yield where the unwind happens
		after = true
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if after {
		t.Error("self-killed process ran past its yield")
	}
}

// TestKillIdempotent: double-kill and kill-after-done are no-ops.
func TestKillIdempotent(t *testing.T) {
	e := NewEngine()
	done := e.Spawn("done", func(p *Proc) {})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	done.Kill()
	done.Kill()
}

// TestDeadlockErrorTyped: an event-queue-empty-with-blocked-processes run
// surfaces a *DeadlockError carrying every stuck process, its wait queue
// (the wait cause), and when it blocked.
func TestDeadlockErrorTyped(t *testing.T) {
	e := NewEngine()
	qa := NewQueue("orphan-a")
	qb := NewQueue("orphan-b")
	e.Spawn("stuck-2", func(p *Proc) {
		p.Sleep(2 * Microsecond)
		p.Wait(qb)
	})
	e.Spawn("stuck-1", func(p *Proc) {
		p.Sleep(Microsecond)
		p.Wait(qa)
	})
	err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run error %T (%v), want *DeadlockError", err, err)
	}
	if len(dl.Blocked) != 2 {
		t.Fatalf("Blocked = %v, want 2 entries", dl.Blocked)
	}
	// Sorted by name: stuck-1 first.
	b0, b1 := dl.Blocked[0], dl.Blocked[1]
	if b0.Name != "stuck-1" || b0.Queue != "orphan-a" || b0.Since != Time(Microsecond) {
		t.Errorf("Blocked[0] = %+v", b0)
	}
	if b1.Name != "stuck-2" || b1.Queue != "orphan-b" || b1.Since != Time(2*Microsecond) {
		t.Errorf("Blocked[1] = %+v", b1)
	}
	if dl.At != Time(2*Microsecond) {
		t.Errorf("At = %s", dl.At)
	}
}
