package trace

import (
	"strings"
	"testing"

	"cellport/internal/sim"
)

func TestNopDiscards(t *testing.T) {
	var n Nop
	n.Span("x", 0, 10, KindCompute, "ok") // must not panic
}

func TestRecorderAccumulates(t *testing.T) {
	r := NewRecorder()
	r.Span("PPE", 0, sim.Time(10*sim.Microsecond), KindCompute, "a")
	r.Span("SPE0", sim.Time(5*sim.Microsecond), sim.Time(15*sim.Microsecond), KindDMA, "b")
	r.Span("PPE", sim.Time(12*sim.Microsecond), sim.Time(20*sim.Microsecond), KindIO, "c")
	if len(r.Spans()) != 3 {
		t.Fatalf("spans = %d", len(r.Spans()))
	}
	lanes := r.Lanes()
	if len(lanes) != 2 || lanes[0] != "PPE" || lanes[1] != "SPE0" {
		t.Fatalf("lanes = %v", lanes)
	}
	busy := r.BusyTime(KindCompute)
	if busy["PPE"] != 10*sim.Microsecond {
		t.Fatalf("PPE compute = %v", busy["PPE"])
	}
	if busy["SPE0"] != 0 {
		t.Fatalf("SPE0 compute = %v, want 0 (span is DMA)", busy["SPE0"])
	}
}

func TestSpanClipsReversedEndpoints(t *testing.T) {
	// A reversed interval is a recording bug; the recorder must not invent
	// activity over the reversed window (the old swap behaviour inflated
	// BusyTime), so it clips to zero length at the start timestamp.
	r := NewRecorder()
	r.Span("L", sim.Time(20), sim.Time(10), KindCompute, "rev")
	s := r.Spans()[0]
	if s.Start != 20 || s.End != 20 {
		t.Fatalf("span = %+v, want clipped to [20,20]", s)
	}
	if busy := r.BusyTime(KindCompute)["L"]; busy != 0 {
		t.Fatalf("reversed span contributed %v busy time", busy)
	}
}

func TestGanttZeroDuration(t *testing.T) {
	// All spans zero-length: the timeline has no extent, but the chart must
	// still render every lane plus the footer instead of dividing by zero.
	r := NewRecorder()
	r.Span("PPE", sim.Time(5), sim.Time(5), KindCompute, "x")
	r.Span("SPE0", sim.Time(5), sim.Time(5), KindDMA, "y")
	var sb strings.Builder
	if err := r.Gantt(&sb, 20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // two lanes + footer
		t.Fatalf("zero-duration gantt rendered %d lines:\n%s", len(lines), out)
	}
	for _, needle := range []string{"PPE", "SPE0"} {
		if !strings.Contains(out, needle) {
			t.Errorf("gantt missing lane %q:\n%s", needle, out)
		}
	}
}

func TestInstantsRecordedAndClipped(t *testing.T) {
	r := NewRecorder()
	RecordInstant(r, "SPE1", sim.Time(30), "fault: dma-drop")
	RecordInstant(r, "SPE2", sim.Time(500), "fault: mbox-stall")
	RecordInstant(Nop{}, "SPE1", sim.Time(30), "discarded") // must not panic
	if got := len(r.Instants()); got != 2 {
		t.Fatalf("instants = %d, want 2", got)
	}
	lanes := r.Lanes()
	if len(lanes) != 2 || lanes[0] != "SPE1" || lanes[1] != "SPE2" {
		t.Fatalf("lanes = %v", lanes)
	}
	c := r.Clip(0, 100)
	if got := len(c.Instants()); got != 1 || c.Instants()[0].Label != "fault: dma-drop" {
		t.Fatalf("clipped instants = %+v", c.Instants())
	}
}

func TestClip(t *testing.T) {
	r := NewRecorder()
	r.Span("L", 0, 100, KindCompute, "long")
	r.Span("L", 200, 300, KindCompute, "late")
	c := r.Clip(50, 250)
	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("clipped spans = %d", len(spans))
	}
	if spans[0].Start != 50 || spans[0].End != 100 {
		t.Fatalf("clip[0] = %+v", spans[0])
	}
	if spans[1].Start != 200 || spans[1].End != 250 {
		t.Fatalf("clip[1] = %+v", spans[1])
	}
	if got := r.Clip(400, 500).Spans(); len(got) != 0 {
		t.Fatalf("out-of-window clip kept %d spans", len(got))
	}
}

func TestGanttRendering(t *testing.T) {
	r := NewRecorder()
	r.Span("PPE", 0, sim.Time(50*sim.Microsecond), KindIO, "io")
	r.Span("PPE", sim.Time(50*sim.Microsecond), sim.Time(100*sim.Microsecond), KindCompute, "c")
	r.Span("SPE0", sim.Time(60*sim.Microsecond), sim.Time(90*sim.Microsecond), KindCompute, "k")
	var sb strings.Builder
	if err := r.Gantt(&sb, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, needle := range []string{"PPE", "SPE0", "I", "C"} {
		if !strings.Contains(out, needle) {
			t.Errorf("gantt missing %q:\n%s", needle, out)
		}
	}
	// The PPE line must show I before C.
	ppeLine := strings.Split(out, "\n")[0]
	if strings.Index(ppeLine, "I") > strings.Index(ppeLine, "C") {
		t.Errorf("I should precede C on the PPE lane: %s", ppeLine)
	}
}

func TestGanttEmpty(t *testing.T) {
	var sb strings.Builder
	if err := NewRecorder().Gantt(&sb, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no spans") {
		t.Fatalf("empty gantt output: %s", sb.String())
	}
}

func TestGanttMinimumColumns(t *testing.T) {
	r := NewRecorder()
	r.Span("L", 0, sim.Time(sim.Microsecond), KindCompute, "x")
	var sb strings.Builder
	if err := r.Gantt(&sb, 1); err != nil { // clamps to 10
		t.Fatal(err)
	}
	line := strings.Split(sb.String(), "\n")[0]
	if len(line) < 10 {
		t.Fatalf("line too short: %q", line)
	}
}

func TestWaitSpansExcludedFromGanttBars(t *testing.T) {
	r := NewRecorder()
	r.Span("L", 0, sim.Time(100), KindWait, "idle")
	var sb strings.Builder
	if err := r.Gantt(&sb, 20); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.Split(sb.String(), "\n")[0], string(rune(KindWait))) &&
		strings.Contains(sb.String(), "|.") {
		t.Error("wait spans should render blank")
	}
}
