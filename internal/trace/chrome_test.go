package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cellport/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRecorder builds a small deterministic recording exercising every
// event shape: spans on PPE/SPE/MFC lanes, same-timestamp ties, and
// instant events.
func goldenRecorder() *Recorder {
	r := NewRecorder()
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Time(sim.Microsecond) }
	r.Span("PPE", us(0), us(40), KindIO, "load-input")
	r.Span("PPE", us(40), us(50), KindCompute, "dispatch")
	r.Span("SPE0", us(50), us(90), KindCompute, "kernel")
	r.Span("SPE1", us(50), us(95), KindCompute, "kernel")
	r.Span("MFC0", us(45), us(50), KindDMA, "get")
	r.Span("MFC0", us(90), us(92), KindDMA, "put")
	r.Span("MFC1", us(45), us(50), KindDMA, "get")
	r.Span("SPE0", us(90), us(90), KindWait, "drain") // zero-length
	r.Instant("SPE1", us(70), "fault: dma-corrupt")
	r.Instant("PPE", us(95), "watchdog: kill SPE1")
	return r
}

func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	procs := []ChromeProcess{{Pid: 1, Name: "fig7/n=2", Rec: goldenRecorder()}}
	if err := WriteChrome(&buf, procs); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace differs from golden; run with -update if intended.\ngot:\n%s", buf.String())
	}
}

// chromeDoc mirrors the subset of the trace format the tests inspect.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Ts   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		S    string            `json:"s"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeValidAndMonotonic(t *testing.T) {
	var buf bytes.Buffer
	procs := []ChromeProcess{
		{Pid: 1, Name: "run-a", Rec: goldenRecorder()},
		{Pid: 2, Name: "run-b", Rec: goldenRecorder()},
		{Pid: 3, Name: "empty", Rec: NewRecorder()},
		{Pid: 4, Name: "nil", Rec: nil},
	}
	if err := WriteChrome(&buf, procs); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	type track struct{ pid, tid int }
	last := map[track]float64{}
	laneNames := map[track]string{}
	instants := 0
	for _, ev := range doc.TraceEvents {
		k := track{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				laneNames[k] = ev.Args["name"]
			}
		case "X", "i":
			if prev, ok := last[k]; ok && ev.Ts < prev {
				t.Fatalf("track %v (%s): ts %v after %v — not monotonic",
					k, laneNames[k], ev.Ts, prev)
			}
			last[k] = ev.Ts
			if ev.Ph == "i" {
				instants++
				if ev.S != "t" {
					t.Fatalf("instant event missing thread scope: %+v", ev)
				}
			}
			if ev.Ph == "X" && ev.Dur < 0 {
				t.Fatalf("negative duration: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if instants != 4 { // 2 per non-empty process
		t.Fatalf("instant events = %d, want 4", instants)
	}

	// Track layout: PPE first, then SPEs, then MFCs, within each process.
	wantOrder := []string{"PPE", "SPE0", "SPE1", "MFC0", "MFC1"}
	for pid := 1; pid <= 2; pid++ {
		for i, lane := range wantOrder {
			if got := laneNames[track{pid, i + 1}]; got != lane {
				t.Fatalf("pid %d tid %d = %q, want %q", pid, i+1, got, lane)
			}
		}
	}
}

func TestLaneOrdering(t *testing.T) {
	in := []string{"MFC1", "SPE10", "Mem", "SPE2", "PPE", "MFC0", "EIB"}
	want := []string{"PPE", "SPE2", "SPE10", "MFC0", "MFC1", "EIB", "Mem"}
	got := append([]string(nil), in...)
	for i := range got { // insertion sort via laneLess to keep it simple
		for j := i; j > 0 && laneLess(got[j], got[j-1]); j-- {
			got[j], got[j-1] = got[j-1], got[j]
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lane order = %v, want %v", got, want)
		}
	}
}
