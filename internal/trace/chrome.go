// Chrome trace-event export: turns recorded spans and instants into the
// JSON Array/Object trace format that chrome://tracing and Perfetto
// (https://ui.perfetto.dev) load directly. Each simulated run becomes one
// process; each lane (PPE, SPE0..7, MFC0..7) becomes one named thread
// track; spans become complete ("X") events and instants become thread-
// scoped instant ("i") events — faults and watchdog kills show up as
// markers on the core that suffered them.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"cellport/internal/sim"
)

// ChromeProcess is one simulated run in a Chrome trace: a recorder plus
// the pid/name identifying its track group in the viewer.
type ChromeProcess struct {
	Pid  int
	Name string
	Rec  *Recorder
}

// chromeEvent is one trace event in Chrome's JSON schema. Ts and Dur are
// microseconds (the format's native unit).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

func (k Kind) category() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindDMA:
		return "dma"
	case KindIO:
		return "io"
	default:
		return "wait"
	}
}

// tsMicros converts a virtual timestamp to trace microseconds.
func tsMicros(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// laneOrder ranks lanes for track layout: the PPE first, then SPEs and
// MFCs by index, then anything else alphabetically.
func laneOrder(lane string) (int, int, string) {
	num := func(prefix string) (int, bool) {
		n, err := strconv.Atoi(strings.TrimPrefix(lane, prefix))
		return n, err == nil
	}
	switch {
	case lane == "PPE":
		return 0, 0, lane
	case strings.HasPrefix(lane, "SPE"):
		if n, ok := num("SPE"); ok {
			return 1, n, lane
		}
	case strings.HasPrefix(lane, "MFC"):
		if n, ok := num("MFC"); ok {
			return 2, n, lane
		}
	}
	return 3, 0, lane
}

func laneLess(a, b string) bool {
	ra, na, sa := laneOrder(a)
	rb, nb, sb := laneOrder(b)
	if ra != rb {
		return ra < rb
	}
	if na != nb {
		return na < nb
	}
	return sa < sb
}

// WriteChrome serializes the processes as one Chrome trace document. The
// output is deterministic: processes are emitted in slice order, lanes in
// laneOrder, and events per lane in (start, recording-order) order, so
// per-track timestamps are monotonic.
func WriteChrome(w io.Writer, procs []ChromeProcess) error {
	var events []chromeEvent
	for _, p := range procs {
		if p.Rec == nil {
			continue
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: p.Pid, Tid: 0,
			Args: map[string]string{"name": p.Name},
		})
		lanes := p.Rec.Lanes()
		sort.Slice(lanes, func(i, j int) bool { return laneLess(lanes[i], lanes[j]) })
		tids := make(map[string]int, len(lanes))
		for i, lane := range lanes {
			tid := i + 1
			tids[lane] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: p.Pid, Tid: tid,
				Args: map[string]string{"name": lane},
			})
		}
		// One merged per-lane stream: spans and instants sorted by time
		// with recording order as the tie-break.
		type timed struct {
			at   sim.Time
			seq  int
			ev   chromeEvent
		}
		var lane []timed
		for i, s := range p.Rec.Spans() {
			dur := tsMicros(s.End) - tsMicros(s.Start)
			d := dur
			lane = append(lane, timed{at: s.Start, seq: i, ev: chromeEvent{
				Name: s.Label, Cat: s.Kind.category(), Ph: "X",
				Ts: tsMicros(s.Start), Dur: &d, Pid: p.Pid, Tid: tids[s.Lane],
			}})
		}
		n := len(p.Rec.Spans())
		for i, in := range p.Rec.Instants() {
			lane = append(lane, timed{at: in.At, seq: n + i, ev: chromeEvent{
				Name: in.Label, Cat: "fault", Ph: "i", S: "t",
				Ts: tsMicros(in.At), Pid: p.Pid, Tid: tids[in.Lane],
			}})
		}
		sort.Slice(lane, func(i, j int) bool {
			a, b := lane[i], lane[j]
			if a.ev.Tid != b.ev.Tid {
				return a.ev.Tid < b.ev.Tid
			}
			if a.at != b.at {
				return a.at < b.at
			}
			return a.seq < b.seq
		})
		for _, t := range lane {
			events = append(events, t.ev)
		}
	}

	// One event per line keeps the artifact diffable and golden-testable.
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", b, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
