package trace

import "cellport/internal/sim"

// Clock domains. The trace format carries one timestamp type, but the
// repo records in two incommensurable clocks: simulator spans are
// virtual time (sim.Time femtoseconds of simulated execution) and
// real-execution spans are host wall clock. Mixing them on one track
// would render a meaningless timeline, so exported Chrome traces keep
// the domains on separate processes, named by these prefixes — a
// `sim/...` process never contains a wall-clock span and an `exec/...`
// process never contains a virtual-time span. Consumers (and the golden
// test pinning the export) rely on the prefix to tell the domains
// apart.
const (
	// DomainSim prefixes process labels whose spans are virtual time.
	DomainSim = "sim/"
	// DomainExec prefixes process labels whose spans are host wall
	// clock, encoded via WallNanos.
	DomainExec = "exec/"
)

// WallNanos converts a host wall-clock reading (nanoseconds since the
// run's start) into a trace timestamp. Wall nanoseconds map onto the
// femtosecond tick so the Chrome export's microsecond conversion shows
// wall microseconds directly; at this scale the int64 range covers runs
// of about 2.5 hours, far beyond any measured batch.
func WallNanos(ns int64) sim.Time {
	return sim.Time(ns) * sim.Time(sim.Nanosecond)
}
