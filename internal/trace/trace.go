// Package trace records per-core activity spans (compute, DMA wait,
// mailbox wait, idle) during a simulation and renders them as a textual
// Gantt chart — the view the paper's Figure 4 sketches for the sequential
// and parallel schedules.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cellport/internal/sim"
)

// Kind classifies a span for rendering and accounting.
type Kind byte

// Span kinds.
const (
	KindCompute Kind = 'C'
	KindDMA     Kind = 'D'
	KindWait    Kind = '.'
	KindIO      Kind = 'I'
)

// Tracer receives activity spans. Implementations must be cheap; they run
// inside the simulation.
type Tracer interface {
	Span(lane string, start, end sim.Time, kind Kind, label string)
}

// InstantRecorder is implemented by tracers that also accept point events
// (fault injections, watchdog kills). It is optional so existing Tracer
// implementations keep working; use RecordInstant to deliver an instant to
// any tracer.
type InstantRecorder interface {
	Instant(lane string, at sim.Time, label string)
}

// RecordInstant delivers a point event to t if it supports instants, and
// discards it otherwise.
func RecordInstant(t Tracer, lane string, at sim.Time, label string) {
	if ir, ok := t.(InstantRecorder); ok {
		ir.Instant(lane, at, label)
	}
}

// Nop discards all spans.
type Nop struct{}

// Span implements Tracer.
func (Nop) Span(string, sim.Time, sim.Time, Kind, string) {}

// Recorder accumulates spans for later rendering and accounting.
type Recorder struct {
	spans    []Span
	instants []Instant
}

// Span is one recorded activity interval.
type Span struct {
	Lane       string
	Start, End sim.Time
	Kind       Kind
	Label      string
}

// Instant is one recorded point event (a fault injection, a watchdog
// kill) — rendered as an instant marker in the Chrome trace export.
type Instant struct {
	Lane  string
	At    sim.Time
	Label string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Span implements Tracer. A span whose end precedes its start is clipped
// to zero length at its start: a reversed interval is a recording bug, and
// inventing activity over the reversed window (the old swap behaviour)
// would corrupt BusyTime accounting and the rendered schedule.
func (r *Recorder) Span(lane string, start, end sim.Time, kind Kind, label string) {
	if end < start {
		end = start
	}
	r.spans = append(r.spans, Span{Lane: lane, Start: start, End: end, Kind: kind, Label: label})
}

// Instant implements InstantRecorder.
func (r *Recorder) Instant(lane string, at sim.Time, label string) {
	r.instants = append(r.instants, Instant{Lane: lane, At: at, Label: label})
}

// Spans returns all recorded spans in recording order.
func (r *Recorder) Spans() []Span { return r.spans }

// Instants returns all recorded point events in recording order.
func (r *Recorder) Instants() []Instant { return r.instants }

// BusyTime sums span durations of the given kind per lane.
func (r *Recorder) BusyTime(kind Kind) map[string]sim.Duration {
	out := map[string]sim.Duration{}
	for _, s := range r.spans {
		if s.Kind == kind {
			out[s.Lane] += s.End.Sub(s.Start)
		}
	}
	return out
}

// Clip returns a new recorder holding only the parts of spans (and the
// instants) that fall inside [start, end] — useful to zoom a Gantt chart
// into one phase (e.g. past an application's one-time setup).
func (r *Recorder) Clip(start, end sim.Time) *Recorder {
	out := NewRecorder()
	for _, s := range r.spans {
		if s.End <= start || s.Start >= end {
			continue
		}
		c := s
		if c.Start < start {
			c.Start = start
		}
		if c.End > end {
			c.End = end
		}
		out.spans = append(out.spans, c)
	}
	for _, i := range r.instants {
		if i.At >= start && i.At <= end {
			out.instants = append(out.instants, i)
		}
	}
	return out
}

// Lanes returns the sorted set of lane names.
func (r *Recorder) Lanes() []string {
	set := map[string]bool{}
	for _, s := range r.spans {
		set[s.Lane] = true
	}
	for _, i := range r.instants {
		set[i.Lane] = true
	}
	lanes := make([]string, 0, len(set))
	for l := range set {
		lanes = append(lanes, l)
	}
	sort.Strings(lanes)
	return lanes
}

// Gantt renders an ASCII Gantt chart with the given number of columns.
// Each cell shows the kind of the activity dominating that time slot.
// An empty recording, or one whose spans are all zero-length (a timeline
// with no extent), renders a well-formed chart with blank bars rather
// than dividing by the width of an empty timeline.
func (r *Recorder) Gantt(w io.Writer, columns int) error {
	if columns < 10 {
		columns = 10
	}
	var tMin, tMax sim.Time = sim.Never, 0
	for _, s := range r.spans {
		if s.Start < tMin {
			tMin = s.Start
		}
		if s.End > tMax {
			tMax = s.End
		}
	}
	if len(r.spans) == 0 {
		_, err := fmt.Fprintln(w, "trace: no spans recorded")
		return err
	}
	span := tMax.Sub(tMin) // may be zero: all spans zero-length
	lanes := r.Lanes()
	width := 0
	for _, l := range lanes {
		if len(l) > width {
			width = len(l)
		}
	}
	for _, lane := range lanes {
		row := make([]float64, columns) // accumulated busy fraction per cell
		kinds := make([]Kind, columns)
		for _, s := range r.spans {
			if span <= 0 || s.Lane != lane || s.Kind == KindWait {
				continue
			}
			f0 := float64(s.Start.Sub(tMin)) / float64(span) * float64(columns)
			f1 := float64(s.End.Sub(tMin)) / float64(span) * float64(columns)
			for c := int(f0); c < columns && float64(c) < f1; c++ {
				lo, hi := f0, f1
				if lo < float64(c) {
					lo = float64(c)
				}
				if hi > float64(c+1) {
					hi = float64(c + 1)
				}
				if hi > lo {
					row[c] += hi - lo
					kinds[c] = s.Kind
				}
			}
		}
		var b strings.Builder
		for c := 0; c < columns; c++ {
			switch {
			case row[c] == 0:
				b.WriteByte(' ')
			case row[c] < 0.5:
				b.WriteByte('-')
			default:
				b.WriteByte(byte(kinds[c]))
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", width, lane, b.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s  %s .. %s  (C=compute D=dma I=io -=partial)\n",
		width, "", tMin, tMax)
	return err
}
