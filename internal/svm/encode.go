package svm

import (
	"fmt"
	"math"
)

// Flat float32 model encoding, so precomputed models can be placed in
// simulated main memory and DMA'd into SPE local stores in 16 KB pieces.
// Layout (all float32):
//
//	[0] numSV  [1] dim  [2] bias  [3] gamma (0 = linear kernel)
//	[4 : 4+numSV]                coefficients
//	[4+numSV : 4+numSV+numSV*dim] support vectors, row-major
const encodeHeader = 4

// EncodedLen returns the float32 count of a model with the given shape.
func EncodedLen(numSV, dim int) int { return encodeHeader + numSV + numSV*dim }

// Encode flattens the model. Only RBF and Linear kernels are encodable.
func Encode(m *Model) ([]float32, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	gamma := 0.0
	switch k := m.Kernel.(type) {
	case RBF:
		if k.Gamma <= 0 {
			return nil, fmt.Errorf("svm: cannot encode RBF with gamma %g", k.Gamma)
		}
		gamma = k.Gamma
	case Linear:
	default:
		return nil, fmt.Errorf("svm: cannot encode kernel %v", m.Kernel)
	}
	n, dim := len(m.SupportVectors), m.Dim()
	out := make([]float32, 0, EncodedLen(n, dim))
	out = append(out, float32(n), float32(dim), float32(m.Bias), float32(gamma))
	for _, c := range m.Coeffs {
		out = append(out, float32(c))
	}
	for _, sv := range m.SupportVectors {
		out = append(out, sv...)
	}
	return out, nil
}

// Decode reconstructs a model from its flat encoding.
func Decode(concept string, data []float32) (*Model, error) {
	if len(data) < encodeHeader {
		return nil, fmt.Errorf("svm: encoded model too short (%d)", len(data))
	}
	n, dim := int(data[0]), int(data[1])
	if n <= 0 || dim <= 0 {
		return nil, fmt.Errorf("svm: encoded model shape %dx%d invalid", n, dim)
	}
	if want := EncodedLen(n, dim); len(data) != want {
		return nil, fmt.Errorf("svm: encoded model length %d, want %d for %dx%d", len(data), want, n, dim)
	}
	m := &Model{Concept: concept, Bias: float64(data[2])}
	if g := float64(data[3]); g > 0 {
		m.Kernel = RBF{Gamma: g}
	} else {
		m.Kernel = Linear{}
	}
	coeffs := data[encodeHeader : encodeHeader+n]
	m.Coeffs = make([]float64, n)
	for i, c := range coeffs {
		m.Coeffs[i] = float64(c)
	}
	rows := data[encodeHeader+n:]
	m.SupportVectors = make([][]float32, n)
	for i := 0; i < n; i++ {
		sv := make([]float32, dim)
		copy(sv, rows[i*dim:(i+1)*dim])
		m.SupportVectors[i] = sv
	}
	return m, m.Validate()
}

// Synthetic constructs a deterministic model with exactly numSV support
// vectors of the given dimension — the stand-in for MARVEL's precomputed
// concept models whose sizes §5.5 reports (186/225/210/255 vectors).
// Support vectors are unit-L1 random histogram-like vectors; coefficients
// alternate sign and are bounded; the bias centers typical decisions near
// zero so both classification outcomes occur.
func Synthetic(concept string, seed uint64, numSV, dim int, gamma float64) *Model {
	if numSV <= 0 || dim <= 0 {
		panic(fmt.Sprintf("svm: invalid synthetic shape %dx%d", numSV, dim))
	}
	s := seed | 1
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%1_000_003) / 1_000_003.0
	}
	m := &Model{Concept: concept, Kernel: RBF{Gamma: gamma}}
	for i := 0; i < numSV; i++ {
		sv := make([]float32, dim)
		var sum float64
		for d := range sv {
			v := math.Pow(next(), 3) // sparse-ish, like real histograms
			sv[d] = float32(v)
			sum += v
		}
		if sum > 0 {
			for d := range sv {
				sv[d] = float32(float64(sv[d]) / sum)
			}
		}
		m.SupportVectors = append(m.SupportVectors, sv)
		coeff := 0.5 + next()
		if i%2 == 1 {
			coeff = -coeff
		}
		m.Coeffs = append(m.Coeffs, coeff)
	}
	m.Bias = next() - 0.5
	return m
}
