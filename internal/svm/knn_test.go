package svm

import (
	"testing"
	"testing/quick"
)

func knnSet() ([][]float32, []int) {
	return [][]float32{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{3, 3}, {3.1, 3}, {3, 3.1},
	}, []int{-1, -1, -1, 1, 1, 1}
}

func TestKNNValidation(t *testing.T) {
	x, y := knnSet()
	if _, err := NewKNN("c", 0, x, y); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewKNN("c", 3, nil, nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewKNN("c", 7, x, y); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := NewKNN("c", 3, x, y[:5]); err == nil {
		t.Error("label mismatch accepted")
	}
	bad := append([][]float32{}, x...)
	bad[2] = []float32{1}
	if _, err := NewKNN("c", 3, bad, y); err == nil {
		t.Error("ragged examples accepted")
	}
	badY := append([]int{}, y...)
	badY[0] = 2
	if _, err := NewKNN("c", 3, x, badY); err == nil {
		t.Error("label 2 accepted")
	}
}

func TestKNNClassifiesClusters(t *testing.T) {
	x, y := knnSet()
	k, err := NewKNN("c", 3, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if k.Classify([]float32{0.05, 0.05}) {
		t.Error("near-origin point misclassified as positive")
	}
	if !k.Classify([]float32{2.9, 3.2}) {
		t.Error("near-cluster point misclassified as negative")
	}
	if d := k.Decision([]float32{0, 0}); d != -1 {
		t.Errorf("unanimous decision = %v, want -1", d)
	}
}

func TestKNNDecisionRange(t *testing.T) {
	x, y := knnSet()
	k, err := NewKNN("c", 5, x, y)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b int8) bool {
		d := k.Decision([]float32{float32(a) / 16, float32(b) / 16})
		return d >= -1 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKNNDimCheckPanics(t *testing.T) {
	x, y := knnSet()
	k, _ := NewKNN("c", 1, x, y)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Decision([]float32{1, 2, 3})
}

func TestKNNDeterministicTieBreak(t *testing.T) {
	// Two examples at identical distance with different labels: the lower
	// index must win deterministically.
	x := [][]float32{{1, 0}, {-1, 0}, {5, 5}}
	y := []int{1, -1, -1}
	k, err := NewKNN("c", 1, x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !k.Classify([]float32{0, 0}) {
			t.Fatal("tie break not deterministic toward index 0")
		}
	}
}

func TestKNNDetectOps(t *testing.T) {
	x, y := knnSet()
	k, _ := NewKNN("c", 3, x, y)
	if got, want := k.DetectOps(), 6.0*(3*2+10); got != want {
		t.Fatalf("DetectOps = %v, want %v", got, want)
	}
}

// TestKNNAgreesWithSVMOnSeparableData: both available classifiers must
// make the same calls on cleanly separated data — the property that lets
// MARVEL swap classification methods (§5.1).
func TestKNNAgreesWithSVMOnSeparableData(t *testing.T) {
	x, y := separableSet()
	k, err := NewKNN("c", 3, x, y)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train("c", x, y, RBF{Gamma: 1}, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	probes := [][]float32{{0.02, 0.02}, {3.05, 3.05}, {-0.5, 0}, {4, 3.5}}
	for _, p := range probes {
		if k.Classify(p) != m.Classify(p) {
			t.Errorf("kNN and SVM disagree on %v", p)
		}
	}
}
