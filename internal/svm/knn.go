package svm

import (
	"fmt"
	"sort"
)

// KNN is the k-nearest-neighbour classifier MARVEL offers as an
// alternative statistical classification method (§5.1 lists "Support
// Vector Machines (SVMs), k-nearest neighbor search (kNN), etc."). It
// shares the feature-vector representation with the SVM models so either
// can back concept detection.
type KNN struct {
	// Concept names the semantic concept.
	Concept string
	// K is the neighbourhood size (odd values avoid ties).
	K int
	// Examples holds the training vectors; Labels their +1/-1 classes.
	Examples [][]float32
	Labels   []int
}

// NewKNN builds a validated classifier.
func NewKNN(concept string, k int, examples [][]float32, labels []int) (*KNN, error) {
	if k <= 0 {
		return nil, fmt.Errorf("svm: kNN needs k > 0, got %d", k)
	}
	if len(examples) == 0 || len(examples) != len(labels) {
		return nil, fmt.Errorf("svm: kNN training set mismatch (%d examples, %d labels)",
			len(examples), len(labels))
	}
	if k > len(examples) {
		return nil, fmt.Errorf("svm: k=%d exceeds %d examples", k, len(examples))
	}
	dim := len(examples[0])
	for i, e := range examples {
		if len(e) != dim {
			return nil, fmt.Errorf("svm: kNN example %d has dim %d, want %d", i, len(e), dim)
		}
	}
	for i, l := range labels {
		if l != 1 && l != -1 {
			return nil, fmt.Errorf("svm: kNN label %d is %d, want +1/-1", i, l)
		}
	}
	return &KNN{Concept: concept, K: k, Examples: examples, Labels: labels}, nil
}

// Dim returns the feature dimension.
func (k *KNN) Dim() int { return len(k.Examples[0]) }

// Decision returns the mean label of the K nearest examples (in squared
// Euclidean distance), a value in [-1, 1]; > 0 means the concept is
// detected. Ties in distance break deterministically by example index.
func (k *KNN) Decision(x []float32) float64 {
	if len(x) != k.Dim() {
		panic(fmt.Sprintf("svm: kNN input dim %d, want %d", len(x), k.Dim()))
	}
	type cand struct {
		d2  float64
		idx int
	}
	cands := make([]cand, len(k.Examples))
	for i, e := range k.Examples {
		var d2 float64
		for j := range e {
			d := float64(e[j]) - float64(x[j])
			d2 += d * d
		}
		cands[i] = cand{d2, i}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d2 != cands[b].d2 {
			return cands[a].d2 < cands[b].d2
		}
		return cands[a].idx < cands[b].idx
	})
	sum := 0
	for _, c := range cands[:k.K] {
		sum += k.Labels[c.idx]
	}
	return float64(sum) / float64(k.K)
}

// Classify reports whether x is detected as the concept.
func (k *KNN) Classify(x []float32) bool { return k.Decision(x) > 0 }

// DetectOps returns the nominal operation count of one classification
// (distance per example: 3 ops/dim; selection ~log cost folded in).
func (k *KNN) DetectOps() float64 {
	return float64(len(k.Examples)) * (3*float64(k.Dim()) + 10)
}
