package svm

import (
	"fmt"
	"math"
)

// TrainConfig controls the SMO trainer.
type TrainConfig struct {
	// C is the soft-margin penalty (>0).
	C float64
	// Tol is the KKT violation tolerance.
	Tol float64
	// MaxPasses is the number of full passes without any alpha update
	// before the trainer declares convergence.
	MaxPasses int
	// MaxIter bounds total optimization sweeps (safety valve).
	MaxIter int
	// Seed drives the deterministic partner-selection sequence.
	Seed uint64
}

// DefaultTrainConfig returns settings adequate for the small synthetic
// training sets used here.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{C: 1.0, Tol: 1e-3, MaxPasses: 5, MaxIter: 10000, Seed: 1}
}

// Train fits a binary SVM with the simplified SMO algorithm (Platt 1998 in
// the simplified form): labels must be +1/-1. The returned model keeps
// only the support vectors (alpha > 0). Training is deterministic for a
// given seed.
func Train(concept string, x [][]float32, y []int, k Kernel, cfg TrainConfig) (*Model, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("svm: training set size mismatch (%d samples, %d labels)", n, len(y))
	}
	hasPos, hasNeg := false, false
	for _, label := range y {
		switch label {
		case 1:
			hasPos = true
		case -1:
			hasNeg = true
		default:
			return nil, fmt.Errorf("svm: labels must be +1/-1, got %d", label)
		}
	}
	if !hasPos || !hasNeg {
		return nil, fmt.Errorf("svm: training needs both classes")
	}
	if cfg.C <= 0 {
		return nil, fmt.Errorf("svm: C must be positive")
	}
	dim := len(x[0])
	for i, xi := range x {
		if len(xi) != dim {
			return nil, fmt.Errorf("svm: sample %d has dim %d, want %d", i, len(xi), dim)
		}
	}

	// Precompute the kernel matrix (training sets here are small).
	km := make([][]float64, n)
	for i := range km {
		km[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := k.Eval(x[i], x[j])
			km[i][j] = v
			km[j][i] = v
		}
	}

	alpha := make([]float64, n)
	b := 0.0
	f := func(i int) float64 {
		s := b
		for j := 0; j < n; j++ {
			if alpha[j] > 0 {
				s += alpha[j] * float64(y[j]) * km[i][j]
			}
		}
		return s
	}

	rng := cfg.Seed
	nextJ := func(i int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		j := int(rng % uint64(n))
		if j == i {
			j = (j + 1) % n
		}
		return j
	}

	passes, iter := 0, 0
	for passes < cfg.MaxPasses && iter < cfg.MaxIter {
		iter++
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - float64(y[i])
			if !((float64(y[i])*ei < -cfg.Tol && alpha[i] < cfg.C) ||
				(float64(y[i])*ei > cfg.Tol && alpha[i] > 0)) {
				continue
			}
			j := nextJ(i)
			ej := f(j) - float64(y[j])
			ai, aj := alpha[i], alpha[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(cfg.C, cfg.C+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-cfg.C)
				hi = math.Min(cfg.C, ai+aj)
			}
			if lo == hi {
				continue
			}
			eta := 2*km[i][j] - km[i][i] - km[j][j]
			if eta >= 0 {
				continue
			}
			alpha[j] = aj - float64(y[j])*(ei-ej)/eta
			if alpha[j] > hi {
				alpha[j] = hi
			}
			if alpha[j] < lo {
				alpha[j] = lo
			}
			if math.Abs(alpha[j]-aj) < 1e-7 {
				continue
			}
			alpha[i] = ai + float64(y[i]*y[j])*(aj-alpha[j])
			b1 := b - ei - float64(y[i])*(alpha[i]-ai)*km[i][i] - float64(y[j])*(alpha[j]-aj)*km[i][j]
			b2 := b - ej - float64(y[i])*(alpha[i]-ai)*km[i][j] - float64(y[j])*(alpha[j]-aj)*km[j][j]
			switch {
			case alpha[i] > 0 && alpha[i] < cfg.C:
				b = b1
			case alpha[j] > 0 && alpha[j] < cfg.C:
				b = b2
			default:
				b = (b1 + b2) / 2
			}
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	m := &Model{Concept: concept, Kernel: k, Bias: b}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-9 {
			m.SupportVectors = append(m.SupportVectors, x[i])
			m.Coeffs = append(m.Coeffs, alpha[i]*float64(y[i]))
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("svm: training produced invalid model: %w", err)
	}
	return m, nil
}
