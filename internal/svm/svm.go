// Package svm implements the statistical classifier MARVEL's concept
// detection uses (§5.1): support vector machines with RBF or linear
// kernels, a deterministic SMO trainer (the "short training phase" that
// produces the precomputed models), and a flat float32 model encoding so
// models can live in simulated main memory and be DMA'd to SPE kernels.
package svm

import (
	"fmt"
	"math"
)

// Kernel is an SVM kernel function over float32 feature vectors.
type Kernel interface {
	Eval(a, b []float32) float64
	String() string
}

// RBF is the Gaussian radial-basis kernel exp(-gamma * ||a-b||²).
type RBF struct{ Gamma float64 }

// Eval implements Kernel.
func (k RBF) Eval(a, b []float32) float64 {
	var d2 float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		d2 += d * d
	}
	return math.Exp(-k.Gamma * d2)
}

func (k RBF) String() string { return fmt.Sprintf("rbf(gamma=%g)", k.Gamma) }

// Linear is the dot-product kernel.
type Linear struct{}

// Eval implements Kernel.
func (Linear) Eval(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

func (Linear) String() string { return "linear" }

// Model is a trained (or synthesized) SVM for one semantic concept.
type Model struct {
	// Concept names the semantic concept this model detects.
	Concept string
	// Kernel evaluates similarity against support vectors.
	Kernel Kernel
	// SupportVectors holds the model's support vectors, all of equal
	// dimension.
	SupportVectors [][]float32
	// Coeffs holds alpha_i * y_i per support vector.
	Coeffs []float64
	// Bias is the decision-function offset b.
	Bias float64
}

// Validate checks structural consistency.
func (m *Model) Validate() error {
	if len(m.SupportVectors) == 0 {
		return fmt.Errorf("svm: model %q has no support vectors", m.Concept)
	}
	if len(m.Coeffs) != len(m.SupportVectors) {
		return fmt.Errorf("svm: model %q has %d coeffs for %d support vectors",
			m.Concept, len(m.Coeffs), len(m.SupportVectors))
	}
	dim := len(m.SupportVectors[0])
	for i, sv := range m.SupportVectors {
		if len(sv) != dim {
			return fmt.Errorf("svm: model %q support vector %d has dim %d, want %d",
				m.Concept, i, len(sv), dim)
		}
	}
	if m.Kernel == nil {
		return fmt.Errorf("svm: model %q has no kernel", m.Concept)
	}
	return nil
}

// Dim returns the feature dimension.
func (m *Model) Dim() int {
	if len(m.SupportVectors) == 0 {
		return 0
	}
	return len(m.SupportVectors[0])
}

// Decision evaluates the decision function f(x) = Σ coeff_i K(sv_i, x) + b.
func (m *Model) Decision(x []float32) float64 {
	if len(x) != m.Dim() {
		panic(fmt.Sprintf("svm: input dim %d, model %q wants %d", len(x), m.Concept, m.Dim()))
	}
	s := m.Bias
	for i, sv := range m.SupportVectors {
		s += m.Coeffs[i] * m.Kernel.Eval(sv, x)
	}
	return s
}

// Classify reports whether x is detected as the concept (f(x) > 0).
func (m *Model) Classify(x []float32) bool { return m.Decision(x) > 0 }

// DetectOps returns the nominal operation count of one decision-function
// evaluation: per support vector, dim subtract/multiply/accumulate steps
// plus the kernel's exponential.
func (m *Model) DetectOps() float64 {
	return float64(len(m.SupportVectors)) * (3*float64(m.Dim()) + 25)
}
