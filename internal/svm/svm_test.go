package svm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRBFKernelProperties(t *testing.T) {
	k := RBF{Gamma: 0.5}
	a := []float32{1, 2, 3}
	b := []float32{1, 2, 3}
	if v := k.Eval(a, b); math.Abs(v-1) > 1e-12 {
		t.Fatalf("K(a,a) = %v, want 1", v)
	}
	c := []float32{4, 5, 6}
	if k.Eval(a, c) >= 1 || k.Eval(a, c) <= 0 {
		t.Fatal("RBF must be in (0,1) for distinct points")
	}
	if k.Eval(a, c) != k.Eval(c, a) {
		t.Fatal("kernel must be symmetric")
	}
}

func TestLinearKernel(t *testing.T) {
	k := Linear{}
	if v := k.Eval([]float32{1, 2}, []float32{3, 4}); v != 11 {
		t.Fatalf("linear = %v, want 11", v)
	}
}

func TestModelValidate(t *testing.T) {
	m := &Model{Concept: "c"}
	if err := m.Validate(); err == nil {
		t.Error("empty model should fail")
	}
	m.SupportVectors = [][]float32{{1, 2}}
	m.Coeffs = []float64{1, 2}
	if err := m.Validate(); err == nil {
		t.Error("coeff mismatch should fail")
	}
	m.Coeffs = []float64{1}
	if err := m.Validate(); err == nil {
		t.Error("nil kernel should fail")
	}
	m.Kernel = Linear{}
	if err := m.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	m.SupportVectors = append(m.SupportVectors, []float32{1})
	m.Coeffs = append(m.Coeffs, 1)
	if err := m.Validate(); err == nil {
		t.Error("ragged support vectors should fail")
	}
}

func TestDecisionDimCheckPanics(t *testing.T) {
	m := Synthetic("c", 1, 4, 8, 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch should panic")
		}
	}()
	m.Decision([]float32{1})
}

// separableSet builds two well-separated 2-D clusters.
func separableSet() (x [][]float32, y []int) {
	offsets := [][2]float32{{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1}, {0.05, 0.05}}
	for _, o := range offsets {
		x = append(x, []float32{o[0], o[1]})
		y = append(y, -1)
		x = append(x, []float32{o[0] + 3, o[1] + 3})
		y = append(y, 1)
	}
	return
}

func TestTrainSeparatesClusters(t *testing.T) {
	x, y := separableSet()
	for _, k := range []Kernel{Linear{}, RBF{Gamma: 1.0}} {
		m, err := Train("sep", x, y, k, DefaultTrainConfig())
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		for i := range x {
			pred := 1
			if !m.Classify(x[i]) {
				pred = -1
			}
			if pred != y[i] {
				t.Errorf("%v: sample %d misclassified (decision %v, want class %d)",
					k, i, m.Decision(x[i]), y[i])
			}
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	x, y := separableSet()
	a, err := Train("d", x, y, RBF{Gamma: 1}, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train("d", x, y, RBF{Gamma: 1}, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.SupportVectors) != len(b.SupportVectors) || a.Bias != b.Bias {
		t.Fatal("training is not deterministic")
	}
}

func TestTrainRejectsBadInput(t *testing.T) {
	x, y := separableSet()
	if _, err := Train("b", nil, nil, Linear{}, DefaultTrainConfig()); err == nil {
		t.Error("empty set should fail")
	}
	badY := append([]int(nil), y...)
	badY[0] = 0
	if _, err := Train("b", x, badY, Linear{}, DefaultTrainConfig()); err == nil {
		t.Error("label 0 should fail")
	}
	oneClass := make([]int, len(y))
	for i := range oneClass {
		oneClass[i] = 1
	}
	if _, err := Train("b", x, oneClass, Linear{}, DefaultTrainConfig()); err == nil {
		t.Error("single-class set should fail")
	}
	cfg := DefaultTrainConfig()
	cfg.C = 0
	if _, err := Train("b", x, y, Linear{}, cfg); err == nil {
		t.Error("C=0 should fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := Synthetic("roundtrip", 7, 12, 166, 2.5)
	enc, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != EncodedLen(12, 166) {
		t.Fatalf("encoded len = %d, want %d", len(enc), EncodedLen(12, 166))
	}
	dec, err := Decode("roundtrip", enc)
	if err != nil {
		t.Fatal(err)
	}
	// Decisions must agree on arbitrary inputs within float32 slack.
	probe := make([]float32, 166)
	for i := range probe {
		probe[i] = float32(i%7) / 7
	}
	if d1, d2 := m.Decision(probe), dec.Decision(probe); math.Abs(d1-d2) > 1e-4 {
		t.Fatalf("decisions diverge: %v vs %v", d1, d2)
	}
}

func TestDecodeRejectsCorruptData(t *testing.T) {
	if _, err := Decode("x", nil); err == nil {
		t.Error("nil data should fail")
	}
	if _, err := Decode("x", []float32{0, 0, 0, 0}); err == nil {
		t.Error("zero shape should fail")
	}
	m := Synthetic("x", 1, 3, 4, 1)
	enc, _ := Encode(m)
	if _, err := Decode("x", enc[:len(enc)-1]); err == nil {
		t.Error("truncated data should fail")
	}
}

func TestSyntheticShape(t *testing.T) {
	m := Synthetic("concept", 42, 225, 166, 4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.SupportVectors) != 225 || m.Dim() != 166 {
		t.Fatalf("shape %dx%d", len(m.SupportVectors), m.Dim())
	}
	// Support vectors are unit-L1.
	for i, sv := range m.SupportVectors {
		var s float64
		for _, v := range sv {
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-4 {
			t.Fatalf("SV %d L1 = %v", i, s)
		}
	}
	// Deterministic.
	m2 := Synthetic("concept", 42, 225, 166, 4)
	if m.Bias != m2.Bias || m.Coeffs[3] != m2.Coeffs[3] {
		t.Fatal("synthetic models not deterministic")
	}
}

func TestDetectOps(t *testing.T) {
	m := Synthetic("c", 1, 100, 166, 1)
	want := 100.0 * (3*166 + 25)
	if got := m.DetectOps(); got != want {
		t.Fatalf("DetectOps = %v, want %v", got, want)
	}
}

// Property: decisions are invariant under permutation of support vectors.
func TestPropDecisionPermutationInvariant(t *testing.T) {
	m := Synthetic("p", 3, 16, 8, 1.5)
	probe := make([]float32, 8)
	for i := range probe {
		probe[i] = float32(i) / 8
	}
	base := m.Decision(probe)
	f := func(seed uint32) bool {
		perm := &Model{Concept: "p", Kernel: m.Kernel, Bias: m.Bias}
		idx := make([]int, 16)
		for i := range idx {
			idx[i] = i
		}
		s := uint64(seed) | 1
		for i := 15; i > 0; i-- {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			j := int(s % uint64(i+1))
			idx[i], idx[j] = idx[j], idx[i]
		}
		for _, i := range idx {
			perm.SupportVectors = append(perm.SupportVectors, m.SupportVectors[i])
			perm.Coeffs = append(perm.Coeffs, m.Coeffs[i])
		}
		return math.Abs(perm.Decision(probe)-base) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
