package ls

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLoadProgramTooBig(t *testing.T) {
	l := New()
	if err := l.LoadProgram(Size); err == nil {
		t.Fatal("program of full LS size must not fit (stack reservation)")
	}
	if err := l.LoadProgram(Size - DefaultStackBytes); err != nil {
		t.Fatalf("exact fit should load: %v", err)
	}
}

func TestAllocRespectsCapacity(t *testing.T) {
	l := New()
	if err := l.LoadProgram(64 * 1024); err != nil {
		t.Fatal(err)
	}
	// 256K - 8K stack - 64K code = 184K available.
	if _, err := l.Alloc(184*1024, 16); err != nil {
		t.Fatalf("exact-fit alloc failed: %v", err)
	}
	if _, err := l.Alloc(1, 1); err == nil {
		t.Fatal("allocation beyond capacity should fail")
	}
}

func TestAllocErrorIsInformative(t *testing.T) {
	l := New()
	if err := l.LoadProgram(200 * 1024); err != nil {
		t.Fatal(err)
	}
	_, err := l.Alloc(100*1024, 16)
	if err == nil {
		t.Fatal("expected failure")
	}
	for _, needle := range []string{"code", "stack", "available"} {
		if !strings.Contains(err.Error(), needle) {
			t.Errorf("error %q should mention %q", err, needle)
		}
	}
}

func TestResetReleasesData(t *testing.T) {
	l := New()
	if err := l.LoadProgram(10 * 1024); err != nil {
		t.Fatal(err)
	}
	before := l.Free()
	l.MustAlloc(50*1024, 128)
	l.Reset()
	if l.Free() != before {
		t.Fatalf("Free after Reset = %d, want %d", l.Free(), before)
	}
	if l.Peak() < 60*1024 {
		t.Fatalf("Peak = %d, should remember high water", l.Peak())
	}
}

func TestBytesBacked(t *testing.T) {
	l := New()
	a := l.MustAlloc(32, 16)
	l.Bytes(a, 32)[7] = 0x5A
	if l.Bytes(a, 32)[7] != 0x5A {
		t.Fatal("LS writes not visible")
	}
}

func TestBytesOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Bytes(Size-4, 8)
}

// Property: allocations are aligned, in bounds, non-overlapping, and never
// intrude on the stack reservation.
func TestPropBumpAllocator(t *testing.T) {
	f := func(sizes []uint16, aligns []uint8, codeKB uint8) bool {
		l := New()
		code := uint32(codeKB%128) * 1024
		if err := l.LoadProgram(code); err != nil {
			return false
		}
		var prevEnd uint32 = code
		for i, s := range sizes {
			size := uint32(s)%8192 + 1
			align := uint32(1)
			if i < len(aligns) {
				align = 1 << (aligns[i] % 8)
			}
			a, err := l.Alloc(size, align)
			if err != nil {
				return l.Free() < size+align // failure only when genuinely tight
			}
			if uint32(a)%align != 0 || uint32(a) < prevEnd {
				return false
			}
			if uint64(a)+uint64(size) > Size-DefaultStackBytes {
				return false
			}
			prevEnd = uint32(a) + size
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
