package ls

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestAllocOverflowFaultTyped: capacity exhaustion wraps the typed
// sentinel so supervisors can match it with errors.Is.
func TestAllocOverflowFaultTyped(t *testing.T) {
	l := New()
	if _, err := l.Alloc(Size-DefaultStackBytes, 16); err != nil {
		t.Fatalf("filling alloc: %v", err)
	}
	_, err := l.Alloc(16, 16)
	if !errors.Is(err, ErrLocalStoreOverflow) {
		t.Fatalf("overflow err = %v, want ErrLocalStoreOverflow", err)
	}
}

// TestInjectedAllocFault: the injection hook fails exactly the
// allocations it chooses, the failure carries the sentinel, and clearing
// the hook restores normal service.
func TestInjectedAllocFault(t *testing.T) {
	l := New()
	calls := 0
	l.SetAllocFault(func(size, align uint32) error {
		calls++
		if calls == 2 {
			return fmt.Errorf("%w: injected soft overflow (%d B, align %d)",
				ErrLocalStoreOverflow, size, align)
		}
		return nil
	})
	if _, err := l.Alloc(64, 16); err != nil {
		t.Fatalf("alloc 1: %v", err)
	}
	_, err := l.Alloc(64, 16)
	if !errors.Is(err, ErrLocalStoreOverflow) {
		t.Fatalf("injected fault err = %v, want ErrLocalStoreOverflow", err)
	}
	if _, err := l.Alloc(64, 16); err != nil {
		t.Fatalf("alloc 3 after one-shot fault: %v", err)
	}
	l.SetAllocFault(nil)
	if _, err := l.Alloc(64, 16); err != nil {
		t.Fatalf("alloc with hook cleared: %v", err)
	}
	if free := l.Free(); free != Size-DefaultStackBytes-3*64 {
		t.Errorf("failed alloc consumed space: %d B free", free)
	}
}

// TestMustAllocPanicContext: the panic message carries enough context to
// diagnose a buffer-plan bug without a debugger — request size,
// alignment, and the store's occupancy.
func TestMustAllocPanicContext(t *testing.T) {
	l := New()
	if err := l.LoadProgram(4096); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustAlloc on an overcommitted store did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		for _, want := range []string{"MustAlloc(1048576 B", "align 128", "free", "code 4096 B", "out of local store"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic %q missing %q", msg, want)
			}
		}
	}()
	l.MustAlloc(1<<20, 128)
}
