// Package ls models an SPE Local Storage: 256 KB of unified code+data
// memory, entirely software-managed (§2). Kernels that do not fit — code
// image plus buffers plus stack — fail to load, which is exactly the
// constraint that forces the paper's sliced DMA processing (§3.4).
package ls

import (
	"errors"
	"fmt"
)

// ErrLocalStoreOverflow is the typed sentinel wrapped by every
// out-of-capacity (or injected soft-overflow) allocation failure, so
// callers can distinguish capacity faults from porting bugs.
var ErrLocalStoreOverflow = errors.New("ls: out of local store")

// Size is the architected local store capacity in bytes.
const Size = 256 * 1024

// DefaultStackBytes is the stack reservation at the top of the LS.
const DefaultStackBytes = 8 * 1024

// Addr is a local-store address.
type Addr uint32

// LocalStore is one SPE's local memory with a code region at the bottom, a
// bump-allocated data region above it, and a stack reservation at the top.
type LocalStore struct {
	data  []byte
	code  uint32 // bytes reserved for the program image, from address 0
	brk   uint32 // next free data address
	stack uint32 // bytes reserved at the top
	peak  uint32
	// fault, when set, is consulted before every Alloc; a non-nil return
	// fails that allocation (deterministic soft-overflow injection).
	fault func(size, align uint32) error
}

// SetAllocFault installs (or clears, with nil) the allocation fault hook.
func (l *LocalStore) SetAllocFault(h func(size, align uint32) error) { l.fault = h }

// New returns an empty local store with the default stack reservation.
func New() *LocalStore {
	return &LocalStore{data: make([]byte, Size), stack: DefaultStackBytes}
}

// LoadProgram reserves the bottom of the LS for a program image of the
// given size, resetting any data allocations. It fails if the image plus
// stack cannot fit.
func (l *LocalStore) LoadProgram(codeBytes uint32) error {
	if codeBytes+l.stack > Size {
		return fmt.Errorf("ls: program image %d B + stack %d B exceeds %d B local store",
			codeBytes, l.stack, Size)
	}
	l.code = codeBytes
	l.brk = (codeBytes + 15) &^ 15
	l.peak = l.brk
	return nil
}

// CodeBytes reports the loaded program image size.
func (l *LocalStore) CodeBytes() uint32 { return l.code }

// Alloc reserves size bytes aligned to align (power of two) in the data
// region. Allocation is bump-only; Reset releases everything, matching the
// static-buffer discipline of real SPE kernels.
func (l *LocalStore) Alloc(size, align uint32) (Addr, error) {
	if size == 0 {
		return 0, fmt.Errorf("ls: zero-size allocation")
	}
	if align == 0 || align&(align-1) != 0 {
		return 0, fmt.Errorf("ls: alignment %d not a power of two", align)
	}
	if l.fault != nil {
		if err := l.fault(size, align); err != nil {
			return 0, err
		}
	}
	base := (l.brk + align - 1) &^ (align - 1)
	end := uint64(base) + uint64(size)
	if end > uint64(Size-l.stack) {
		return 0, fmt.Errorf("%w: need %d B at %#x, %d B available (code %d B, stack %d B)",
			ErrLocalStoreOverflow, size, base, Size-l.stack-l.brk, l.code, l.stack)
	}
	l.brk = uint32(end)
	if l.brk > l.peak {
		l.peak = l.brk
	}
	return Addr(base), nil
}

// MustAlloc is Alloc that panics on failure, for kernels with static
// buffer plans validated at port time.
func (l *LocalStore) MustAlloc(size, align uint32) Addr {
	a, err := l.Alloc(size, align)
	if err != nil {
		panic(fmt.Sprintf("ls: MustAlloc(%d B, align %d) on a store with %d B free (code %d B): %v",
			size, align, l.Free(), l.code, err))
	}
	return a
}

// Reset releases all data allocations (the program image stays loaded).
func (l *LocalStore) Reset() { l.brk = (l.code + 15) &^ 15 }

// Free reports the bytes still available for data.
func (l *LocalStore) Free() uint32 { return Size - l.stack - l.brk }

// Used reports bytes in use (code + data, excluding stack).
func (l *LocalStore) Used() uint32 { return l.brk }

// Peak reports the data-region high-water mark (including code).
func (l *LocalStore) Peak() uint32 { return l.peak }

// Bytes returns a mutable bounds-checked view of n bytes at addr. Access
// to the stack region is allowed (it is memory like any other).
func (l *LocalStore) Bytes(addr Addr, n uint32) []byte {
	end := uint64(addr) + uint64(n)
	if end > Size {
		panic(fmt.Sprintf("ls: access [%#x,%#x) beyond %d B local store", uint32(addr), end, Size))
	}
	return l.data[addr:end:end]
}
