package mainmem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocAlignment(t *testing.T) {
	m := New(1 << 20)
	for _, align := range []uint32{1, 2, 4, 8, 16, 128, 4096} {
		a, err := m.Alloc(100, align)
		if err != nil {
			t.Fatalf("Alloc(align=%d): %v", align, err)
		}
		if uint32(a)%align != 0 {
			t.Errorf("Alloc(align=%d) returned %#x, misaligned", align, uint32(a))
		}
	}
}

func TestAllocRejectsBadArgs(t *testing.T) {
	m := New(1 << 16)
	if _, err := m.Alloc(0, 16); err == nil {
		t.Error("zero-size alloc should fail")
	}
	if _, err := m.Alloc(16, 3); err == nil {
		t.Error("non-power-of-two align should fail")
	}
	if _, err := m.Alloc(1<<20, 16); err == nil {
		t.Error("oversized alloc should fail")
	}
}

func TestAddressZeroNeverAllocated(t *testing.T) {
	m := New(1 << 16)
	a, err := m.Alloc(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a == 0 {
		t.Fatal("address 0 must stay reserved as the null address")
	}
}

func TestFreeAndReuse(t *testing.T) {
	m := New(1 << 16)
	a := m.MustAlloc(1024, 16)
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	b := m.MustAlloc(1024, 16)
	if a != b {
		t.Errorf("freed block not reused: first %#x, second %#x", uint32(a), uint32(b))
	}
}

func TestDoubleFreeFails(t *testing.T) {
	m := New(1 << 16)
	a := m.MustAlloc(64, 16)
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(a); err == nil {
		t.Fatal("double free should fail")
	}
	if err := m.Free(Addr(12345)); err == nil {
		t.Fatal("free of never-allocated address should fail")
	}
}

func TestCoalescingRestoresSpan(t *testing.T) {
	m := New(1 << 16)
	var addrs []Addr
	for i := 0; i < 8; i++ {
		addrs = append(addrs, m.MustAlloc(512, 16))
	}
	// Free in shuffled order; afterwards the memory must be one span again.
	rand.New(rand.NewSource(1)).Shuffle(len(addrs), func(i, j int) { addrs[i], addrs[j] = addrs[j], addrs[i] })
	for _, a := range addrs {
		if err := m.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.FreeSpans(); got != 1 {
		t.Fatalf("after freeing everything, FreeSpans = %d, want 1", got)
	}
	if m.Allocated() != 0 {
		t.Fatalf("Allocated = %d, want 0", m.Allocated())
	}
	if err := m.CheckLeaks(); err != nil {
		t.Fatalf("unexpected leak report: %v", err)
	}
}

func TestCheckLeaksReports(t *testing.T) {
	m := New(1 << 16)
	m.MustAlloc(64, 16)
	if err := m.CheckLeaks(); err == nil {
		t.Fatal("CheckLeaks should report the live allocation")
	}
}

func TestBytesViewsAreBacked(t *testing.T) {
	m := New(1 << 16)
	a := m.MustAlloc(16, 16)
	m.Bytes(a, 16)[3] = 0xAB
	if m.Bytes(a, 16)[3] != 0xAB {
		t.Fatal("writes through Bytes view not visible")
	}
	// The view must be capacity-limited so appends cannot clobber neighbours.
	v := m.Bytes(a, 4)
	if cap(v) != 4 {
		t.Fatalf("Bytes cap = %d, want 4", cap(v))
	}
}

func TestBytesOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range access")
		}
	}()
	m := New(1 << 12)
	m.Bytes(Addr(1<<12-8), 16)
}

func TestPeakTracksHighWater(t *testing.T) {
	m := New(1 << 16)
	a := m.MustAlloc(1000, 16)
	b := m.MustAlloc(2000, 16)
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(b); err != nil {
		t.Fatal(err)
	}
	if m.PeakAllocated() != 3000 {
		t.Fatalf("peak = %d, want 3000", m.PeakAllocated())
	}
	if m.Allocations() != 2 {
		t.Fatalf("allocations = %d, want 2", m.Allocations())
	}
}

// Property: any sequence of allocations yields non-overlapping, aligned,
// in-bounds blocks, and freeing everything restores a single span.
func TestPropAllocatorInvariant(t *testing.T) {
	type req struct {
		Size  uint16
		Align uint8
	}
	f := func(reqs []req) bool {
		m := New(1 << 20)
		type block struct {
			base Addr
			size uint32
		}
		var live []block
		for _, r := range reqs {
			size := uint32(r.Size)%4096 + 1
			align := uint32(1) << (uint32(r.Align) % 8) // 1..128
			a, err := m.Alloc(size, align)
			if err != nil {
				continue // out of memory is legal; invariants still hold
			}
			if uint32(a)%align != 0 {
				return false
			}
			if uint64(a)+uint64(size) > uint64(m.Size()) {
				return false
			}
			for _, b := range live {
				if uint32(a) < uint32(b.base)+b.size && uint32(b.base) < uint32(a)+size {
					return false // overlap
				}
			}
			live = append(live, block{a, size})
		}
		for _, b := range live {
			if err := m.Free(b.base); err != nil {
				return false
			}
		}
		return m.FreeSpans() == 1 && m.Allocated() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseRecyclesZeroed: a Memory built after a Release must see all
// bytes zero, even where the released predecessor wrote — the pooled
// backing store re-zeroes its touched prefix on reuse.
func TestReleaseRecyclesZeroed(t *testing.T) {
	const size = 1 << 20
	m := New(size)
	a := m.MustAlloc(4096, AlignCacheLine)
	b := m.Bytes(a, 4096)
	for i := range b {
		b[i] = 0xAB
	}
	// Touch a high address directly so the dirty prefix is large.
	hi := m.Bytes(size-64, 64)
	hi[0] = 0xCD
	m.Release()

	m2 := New(size)
	got := m2.Bytes(0, size)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("recycled memory dirty at %#x: %#x", i, v)
		}
	}
}

// TestReleaseInvalidatesMemory: any access after Release panics.
func TestReleaseInvalidatesMemory(t *testing.T) {
	m := New(1 << 16)
	m.Release()
	m.Release() // double release is a no-op
	defer func() {
		if recover() == nil {
			t.Fatal("Bytes after Release did not panic")
		}
	}()
	m.Bytes(0, 1)
}

// TestDoubleReleaseDoesNotAliasPool: if a double Release pushed the same
// backing store into the pool twice, the next two News would hand out the
// same array as two "fresh" memories and writes through one would appear
// in the other. Pin the idempotency guard by observing isolation.
func TestDoubleReleaseDoesNotAliasPool(t *testing.T) {
	const size = 3 << 16 // distinctive size so other tests' pooled buffers don't match
	m := New(size)
	m.Bytes(0, 16) // touch so the store is dirty-tracked
	m.Release()
	m.Release() // must be a no-op, not a second pool put

	m1 := New(size)
	m2 := New(size)
	m1.Bytes(0, 16)[0] = 0xEE
	if got := m2.Bytes(0, 16)[0]; got != 0 {
		t.Fatalf("two fresh memories alias one backing store: m2[0] = %#x", got)
	}
}

// TestAllocAfterReleasePanics: allocation on a released memory must fail
// loudly, not hand out addresses into a store another run may now own.
func TestAllocAfterReleasePanics(t *testing.T) {
	m := New(1 << 16)
	m.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc after Release did not panic")
		}
	}()
	m.Alloc(64, AlignQuadword) //nolint:errcheck // panics before returning
}
