// Package mainmem models the Cell's XDR main memory: a flat byte-addressed
// store shared by the PPE and (via DMA) the SPEs, plus an aligned allocator
// equivalent to the SDK's malloc_align/free_align that the paper's data
// wrappers rely on (§3.3: "preserve/enforce data alignment for future DMA
// operations").
//
// Data is stored for real: DMA operations copy bytes between this memory
// and SPE local stores, so a mis-programmed transfer produces wrong feature
// vectors, exactly as it would on hardware.
package mainmem

import (
	"fmt"
	"sort"
	"sync"
)

// Addr is an effective address in main memory.
type Addr uint32

// Quadword alignment required by the paper's wrapper rule; DMA of >=16
// bytes performs best at 128-byte alignment.
const (
	AlignQuadword  = 16
	AlignCacheLine = 128
)

// Memory is a flat main memory with an aligned first-fit allocator.
type Memory struct {
	data  []byte
	free  []span          // sorted by base, coalesced
	alloc map[Addr]uint32 // base -> size of live allocations

	// touched is the high-water mark of Bytes views handed out; on
	// Release only [0, touched) needs re-zeroing for the next New to see
	// an all-zero memory.
	touched uint32

	// Stats
	allocated   uint32
	peak        uint32
	allocations uint64
}

type span struct {
	base Addr
	size uint32
}

// Building a Memory is dominated by zeroing the backing store (256 MB
// for the default machine) — a cost every simulated machine in a
// multi-point sweep pays. Release recycles the store through this pool;
// New re-zeroes only the prefix a previous machine actually touched, so
// a recycled Memory is indistinguishable from a fresh one.
var bufPool sync.Pool // holds *pooledBuf

type pooledBuf struct {
	data    []byte
	touched uint32
}

// New returns a memory of the given size in bytes. Address 0 is reserved
// (kept unallocatable) so that 0 can serve as a null address in wrappers.
func New(size uint32) *Memory {
	if size < AlignCacheLine {
		panic("mainmem: memory too small")
	}
	return &Memory{
		data:  newData(size),
		free:  []span{{base: AlignCacheLine, size: size - AlignCacheLine}},
		alloc: make(map[Addr]uint32),
	}
}

func newData(size uint32) []byte {
	if v := bufPool.Get(); v != nil {
		b := v.(*pooledBuf)
		if uint32(len(b.data)) == size {
			clear(b.data[:b.touched])
			return b.data
		}
		// Wrong size: drop it and allocate fresh.
	}
	return make([]byte, size)
}

// Release returns the backing store to a process-wide pool for reuse by
// a future New. The Memory must not be used afterwards (Alloc and Bytes
// panic). Calling Release is optional — an unreleased store is simply
// garbage-collected.
//
// Release is idempotent: a second Release (e.g. Machine.Release after a
// caller already released the memory directly) is a no-op. Without the
// guard the same backing store would enter the pool twice and two
// subsequent News would alias one array — silent cross-run corruption.
func (m *Memory) Release() {
	if m.data == nil {
		return
	}
	bufPool.Put(&pooledBuf{data: m.data, touched: m.touched})
	m.data = nil
}

// checkLive panics with a clear diagnosis when the memory was released;
// the backing store may already belong to another Memory, so any further
// use would corrupt an unrelated run.
func (m *Memory) checkLive() {
	if m.data == nil {
		panic("mainmem: use after Release")
	}
}

// Size returns the total memory size.
func (m *Memory) Size() uint32 { return uint32(len(m.data)) }

// Allocated returns the number of live allocated bytes.
func (m *Memory) Allocated() uint32 { return m.allocated }

// PeakAllocated returns the high-water mark of live bytes.
func (m *Memory) PeakAllocated() uint32 { return m.peak }

// Alloc reserves size bytes aligned to align (a power of two) and returns
// the base address. It fails when no suitable free span exists.
func (m *Memory) Alloc(size, align uint32) (Addr, error) {
	m.checkLive()
	if size == 0 {
		return 0, fmt.Errorf("mainmem: zero-size allocation")
	}
	if align == 0 || align&(align-1) != 0 {
		return 0, fmt.Errorf("mainmem: alignment %d is not a power of two", align)
	}
	for i, s := range m.free {
		base := (uint32(s.base) + align - 1) &^ (align - 1)
		pad := base - uint32(s.base)
		if pad+size > s.size {
			continue
		}
		// Carve [base, base+size) out of s, keeping the pad and the tail.
		m.free = append(m.free[:i], m.free[i+1:]...)
		if pad > 0 {
			m.insertFree(span{base: s.base, size: pad})
		}
		if tail := s.size - pad - size; tail > 0 {
			m.insertFree(span{base: Addr(base + size), size: tail})
		}
		m.alloc[Addr(base)] = size
		m.allocated += size
		m.allocations++
		if m.allocated > m.peak {
			m.peak = m.allocated
		}
		return Addr(base), nil
	}
	return 0, fmt.Errorf("mainmem: out of memory allocating %d bytes (align %d, %d live)", size, align, m.allocated)
}

// MustAlloc is Alloc that panics on failure; for setup code whose sizes are
// static.
func (m *Memory) MustAlloc(size, align uint32) Addr {
	a, err := m.Alloc(size, align)
	if err != nil {
		panic(fmt.Sprintf("mainmem: MustAlloc(%d B, align %d) with %d B live of %d B total: %v",
			size, align, m.allocated, len(m.data), err))
	}
	return a
}

// Free releases an allocation made by Alloc. Freeing an unknown address is
// an error (it would indicate wrapper corruption).
func (m *Memory) Free(a Addr) error {
	size, ok := m.alloc[a]
	if !ok {
		return fmt.Errorf("mainmem: free of unallocated address %#x", uint32(a))
	}
	delete(m.alloc, a)
	m.allocated -= size
	m.insertFree(span{base: a, size: size})
	m.coalesce()
	return nil
}

func (m *Memory) insertFree(s span) {
	i := sort.Search(len(m.free), func(i int) bool { return m.free[i].base >= s.base })
	m.free = append(m.free, span{})
	copy(m.free[i+1:], m.free[i:])
	m.free[i] = s
}

func (m *Memory) coalesce() {
	out := m.free[:0]
	for _, s := range m.free {
		if n := len(out); n > 0 && uint32(out[n-1].base)+out[n-1].size == uint32(s.base) {
			out[n-1].size += s.size
			continue
		}
		out = append(out, s)
	}
	m.free = out
}

// Bytes returns a mutable view of n bytes at addr, bounds-checked against
// the whole memory (not against allocation boundaries, as on hardware).
func (m *Memory) Bytes(addr Addr, n uint32) []byte {
	m.checkLive()
	end := uint64(addr) + uint64(n)
	if end > uint64(len(m.data)) {
		panic(fmt.Sprintf("mainmem: access [%#x,%#x) beyond memory size %#x", uint32(addr), end, len(m.data)))
	}
	if uint32(end) > m.touched {
		m.touched = uint32(end)
	}
	return m.data[addr:end:end]
}

// CheckLeaks returns an error naming live allocations; test helpers use it
// to assert that ported applications release their wrappers.
func (m *Memory) CheckLeaks() error {
	if len(m.alloc) == 0 {
		return nil
	}
	addrs := make([]Addr, 0, len(m.alloc))
	for a := range m.alloc {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return fmt.Errorf("mainmem: %d allocation(s) leaked, first at %#x (%d bytes)",
		len(addrs), uint32(addrs[0]), m.alloc[addrs[0]])
}

// FreeSpans returns the number of free spans (exposed for fragmentation
// tests).
func (m *Memory) FreeSpans() int { return len(m.free) }

// Allocations returns the cumulative number of successful allocations.
func (m *Memory) Allocations() uint64 { return m.allocations }
