// Package mbox models the Cell's PPE↔SPE small-message hardware: per-SPE
// mailboxes (a 4-entry inbound FIFO written by the PPE, a 1-entry outbound
// FIFO and a 1-entry outbound-interrupt FIFO written by the SPU) and the
// two 32-bit signal-notification registers. These are the channels the
// paper's SendAndWait protocol (§3.5, Listing 3) is built on.
package mbox

import (
	"errors"
	"fmt"

	"cellport/internal/sim"
)

// Capacities of the hardware FIFOs.
const (
	InboundDepth  = 4
	OutboundDepth = 1
)

// ErrMailboxFull is the typed sentinel reported by WriteNonBlocking on a
// full FIFO, so callers can distinguish capacity pressure from protocol
// bugs.
var ErrMailboxFull = errors.New("mbox: mailbox full")

// Mailbox is a fixed-capacity 32-bit FIFO with blocking semantics on both
// sides, in virtual time.
type Mailbox struct {
	engine   *sim.Engine
	name     string
	capacity int
	fifo     []uint32
	notEmpty *sim.Queue
	notFull  *sim.Queue
	// writeDelay, when set, stalls each blocking Write by the returned
	// duration before it enqueues (deterministic fault injection).
	writeDelay func() sim.Duration

	writes uint64
	reads  uint64
	peak   int // occupancy high-water mark
}

// SetWriteDelay installs (or clears, with nil) the per-write stall hook.
func (m *Mailbox) SetWriteDelay(h func() sim.Duration) { m.writeDelay = h }

// NewMailbox returns a mailbox with the given entry capacity.
func NewMailbox(e *sim.Engine, name string, capacity int) *Mailbox {
	if capacity <= 0 {
		panic("mbox: capacity must be positive")
	}
	return &Mailbox{
		engine:   e,
		name:     name,
		capacity: capacity,
		notEmpty: sim.NewQueue(name + " not-empty"),
		notFull:  sim.NewQueue(name + " not-full"),
	}
}

// Name returns the mailbox label.
func (m *Mailbox) Name() string { return m.name }

// Count reports the number of queued entries (the spe_stat_* analog).
func (m *Mailbox) Count() int { return len(m.fifo) }

// Space reports the number of free entries.
func (m *Mailbox) Space() int { return m.capacity - len(m.fifo) }

// Write enqueues v, blocking the calling process until space is available.
func (m *Mailbox) Write(p *sim.Proc, v uint32) {
	if m.writeDelay != nil {
		if d := m.writeDelay(); d > 0 {
			p.Sleep(d)
		}
	}
	p.WaitFor(m.notFull, func() bool { return len(m.fifo) < m.capacity })
	m.fifo = append(m.fifo, v)
	m.writes++
	m.notePeak()
	m.notEmpty.WakeAll(m.engine)
}

// WriteNonBlocking enqueues v if space is available, or fails with a
// wrapped ErrMailboxFull.
func (m *Mailbox) WriteNonBlocking(v uint32) error {
	if len(m.fifo) >= m.capacity {
		return fmt.Errorf("%s (%d/%d entries): %w", m.name, len(m.fifo), m.capacity, ErrMailboxFull)
	}
	m.fifo = append(m.fifo, v)
	m.writes++
	m.notePeak()
	m.notEmpty.WakeAll(m.engine)
	return nil
}

func (m *Mailbox) notePeak() {
	if len(m.fifo) > m.peak {
		m.peak = len(m.fifo)
	}
}

// TryWrite enqueues v without blocking; it reports whether it succeeded.
func (m *Mailbox) TryWrite(v uint32) bool {
	return m.WriteNonBlocking(v) == nil
}

// Read dequeues the oldest entry, blocking the calling process until one
// is available.
func (m *Mailbox) Read(p *sim.Proc) uint32 {
	p.WaitFor(m.notEmpty, func() bool { return len(m.fifo) > 0 })
	v := m.fifo[0]
	copy(m.fifo, m.fifo[1:])
	m.fifo = m.fifo[:len(m.fifo)-1]
	m.reads++
	m.notFull.WakeAll(m.engine)
	return v
}

// TryRead dequeues without blocking.
func (m *Mailbox) TryRead() (uint32, bool) {
	if len(m.fifo) == 0 {
		return 0, false
	}
	v := m.fifo[0]
	copy(m.fifo, m.fifo[1:])
	m.fifo = m.fifo[:len(m.fifo)-1]
	m.reads++
	m.notFull.WakeAll(m.engine)
	return v, true
}

// WaitNotEmpty blocks until the mailbox has at least one entry without
// consuming it (interrupt-style completion notification).
func (m *Mailbox) WaitNotEmpty(p *sim.Proc) {
	p.WaitFor(m.notEmpty, func() bool { return len(m.fifo) > 0 })
}

// Writes reports the cumulative number of successful writes.
func (m *Mailbox) Writes() uint64 { return m.writes }

// Reads reports the cumulative number of successful reads.
func (m *Mailbox) Reads() uint64 { return m.reads }

// Peak reports the occupancy high-water mark over the mailbox's lifetime.
func (m *Mailbox) Peak() int { return m.peak }

// SignalMode selects how concurrent writes to a signal register combine.
type SignalMode int

// Signal register modes (hardware-configurable per register).
const (
	// SignalOR accumulates set bits across writers.
	SignalOR SignalMode = iota
	// SignalOverwrite keeps only the last written value.
	SignalOverwrite
)

// Signal is one SPU signal-notification register: a 32-bit value readable
// (and cleared) by the SPU, writable by other elements.
type Signal struct {
	engine  *sim.Engine
	name    string
	mode    SignalMode
	value   uint32
	pending bool
	notZero *sim.Queue
}

// NewSignal returns a signal register in the given mode.
func NewSignal(e *sim.Engine, name string, mode SignalMode) *Signal {
	return &Signal{engine: e, name: name, mode: mode, notZero: sim.NewQueue(name + " signal")}
}

// Send writes v into the register (OR or overwrite per mode) and wakes a
// blocked reader.
func (s *Signal) Send(v uint32) {
	if s.mode == SignalOR && s.pending {
		s.value |= v
	} else {
		s.value = v
	}
	s.pending = true
	s.notZero.WakeAll(s.engine)
}

// Read blocks until a signal is pending, then returns and clears it
// (read-and-clear channel semantics).
func (s *Signal) Read(p *sim.Proc) uint32 {
	p.WaitFor(s.notZero, func() bool { return s.pending })
	v := s.value
	s.value = 0
	s.pending = false
	return v
}

// Peek reports the pending value without clearing.
func (s *Signal) Peek() (uint32, bool) { return s.value, s.pending }

// WaitNotEmptyTimeout blocks until the mailbox has an entry or d of
// virtual time passes; it reports whether an entry is available.
func (m *Mailbox) WaitNotEmptyTimeout(p *sim.Proc, d sim.Duration) bool {
	return p.WaitForTimeout(m.notEmpty, d, func() bool { return len(m.fifo) > 0 })
}
