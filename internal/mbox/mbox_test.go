package mbox

import (
	"reflect"
	"testing"
	"testing/quick"

	"cellport/internal/sim"
)

func TestMailboxFIFO(t *testing.T) {
	e := sim.NewEngine()
	m := NewMailbox(e, "in", InboundDepth)
	var got []uint32
	e.Spawn("writer", func(p *sim.Proc) {
		for _, v := range []uint32{10, 20, 30} {
			m.Write(p, v)
		}
	})
	e.Spawn("reader", func(p *sim.Proc) {
		p.Sleep(sim.Nanosecond)
		for i := 0; i < 3; i++ {
			got = append(got, m.Read(p))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uint32{10, 20, 30}) {
		t.Fatalf("got %v, want FIFO order", got)
	}
	if m.Writes() != 3 || m.Reads() != 3 {
		t.Fatalf("stats writes=%d reads=%d, want 3/3", m.Writes(), m.Reads())
	}
}

func TestMailboxWriterBlocksWhenFull(t *testing.T) {
	e := sim.NewEngine()
	m := NewMailbox(e, "in", 2)
	var fifthWriteAt sim.Time
	e.Spawn("writer", func(p *sim.Proc) {
		for i := uint32(0); i < 3; i++ {
			m.Write(p, i) // third write must block until the read below
		}
		fifthWriteAt = p.Now()
	})
	e.Spawn("reader", func(p *sim.Proc) {
		p.Sleep(5 * sim.Nanosecond)
		m.Read(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fifthWriteAt != sim.Time(5*sim.Nanosecond) {
		t.Fatalf("blocked write completed at %v, want 5ns", fifthWriteAt)
	}
}

func TestMailboxReaderBlocksWhenEmpty(t *testing.T) {
	e := sim.NewEngine()
	m := NewMailbox(e, "out", OutboundDepth)
	var readAt sim.Time
	var val uint32
	e.Spawn("reader", func(p *sim.Proc) {
		val = m.Read(p)
		readAt = p.Now()
	})
	e.Spawn("writer", func(p *sim.Proc) {
		p.Sleep(9 * sim.Nanosecond)
		m.Write(p, 77)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if readAt != sim.Time(9*sim.Nanosecond) || val != 77 {
		t.Fatalf("read %d at %v, want 77 at 9ns", val, readAt)
	}
}

func TestTryWriteTryRead(t *testing.T) {
	e := sim.NewEngine()
	m := NewMailbox(e, "x", 1)
	if _, ok := m.TryRead(); ok {
		t.Fatal("TryRead on empty should fail")
	}
	if !m.TryWrite(5) {
		t.Fatal("TryWrite on empty should succeed")
	}
	if m.TryWrite(6) {
		t.Fatal("TryWrite on full should fail")
	}
	if m.Count() != 1 || m.Space() != 0 {
		t.Fatalf("Count=%d Space=%d, want 1/0", m.Count(), m.Space())
	}
	v, ok := m.TryRead()
	if !ok || v != 5 {
		t.Fatalf("TryRead = %d,%v want 5,true", v, ok)
	}
}

func TestWaitNotEmptyDoesNotConsume(t *testing.T) {
	e := sim.NewEngine()
	m := NewMailbox(e, "intr", 1)
	var observed uint32
	e.Spawn("ppe", func(p *sim.Proc) {
		m.WaitNotEmpty(p)
		observed = m.Read(p) // still there
	})
	e.Spawn("spu", func(p *sim.Proc) {
		p.Sleep(sim.Nanosecond)
		m.Write(p, 42)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if observed != 42 {
		t.Fatalf("observed %d, want 42", observed)
	}
}

func TestSignalORMode(t *testing.T) {
	e := sim.NewEngine()
	s := NewSignal(e, "sig", SignalOR)
	var got uint32
	e.Spawn("spu", func(p *sim.Proc) {
		p.Sleep(10 * sim.Nanosecond)
		got = s.Read(p)
	})
	e.Spawn("ppe", func(p *sim.Proc) {
		s.Send(0b01)
		p.Sleep(sim.Nanosecond)
		s.Send(0b10)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0b11 {
		t.Fatalf("OR-mode signal = %#b, want 0b11", got)
	}
}

func TestSignalOverwriteMode(t *testing.T) {
	e := sim.NewEngine()
	s := NewSignal(e, "sig", SignalOverwrite)
	var got uint32
	e.Spawn("spu", func(p *sim.Proc) {
		p.Sleep(10 * sim.Nanosecond)
		got = s.Read(p)
	})
	e.Spawn("ppe", func(p *sim.Proc) {
		s.Send(1)
		p.Sleep(sim.Nanosecond)
		s.Send(2)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("overwrite-mode signal = %d, want 2", got)
	}
}

func TestSignalReadClears(t *testing.T) {
	e := sim.NewEngine()
	s := NewSignal(e, "sig", SignalOR)
	var second uint32
	e.Spawn("spu", func(p *sim.Proc) {
		s.Send(7)
		if v := s.Read(p); v != 7 {
			t.Errorf("first read = %d, want 7", v)
		}
		if _, pending := s.Peek(); pending {
			t.Error("signal should be clear after read")
		}
		s.Send(9)
		second = s.Read(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if second != 9 {
		t.Fatalf("second read = %d, want 9 (no stale OR)", second)
	}
}

// Property: for any write sequence, a single reader drains values in
// exactly the written order, regardless of FIFO capacity pressure.
func TestPropMailboxPreservesOrder(t *testing.T) {
	f := func(vals []uint32, capRaw uint8) bool {
		capacity := int(capRaw%4) + 1
		e := sim.NewEngine()
		m := NewMailbox(e, "prop", capacity)
		var got []uint32
		e.Spawn("w", func(p *sim.Proc) {
			for _, v := range vals {
				m.Write(p, v)
			}
		})
		e.Spawn("r", func(p *sim.Proc) {
			for range vals {
				got = append(got, m.Read(p))
				p.Sleep(sim.Nanosecond)
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return reflect.DeepEqual(got, append([]uint32(nil), vals...)) ||
			(len(vals) == 0 && len(got) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
