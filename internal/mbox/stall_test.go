package mbox

import (
	"errors"
	"testing"

	"cellport/internal/sim"
)

// TestWriterStallOnCrashedReader is the capacity-edge hazard: a writer
// blocked on a full 4-deep inbound mailbox whose reader has crashed must
// surface as a typed deadlock from the engine — with the writer and its
// wait cause named — instead of hanging the test binary forever.
func TestWriterStallOnCrashedReader(t *testing.T) {
	e := sim.NewEngine()
	m := NewMailbox(e, "spe0 in-mbox", InboundDepth)
	var reader *sim.Proc
	reader = e.Spawn("reader", func(p *sim.Proc) {
		m.Read(p) // consume one word, then wedge forever
		p.Wait(sim.NewQueue("wedged"))
	})
	e.Spawn("writer", func(p *sim.Proc) {
		for i := uint32(0); i < uint32(InboundDepth)+2; i++ {
			m.Write(p, i) // fills the FIFO, then blocks on not-full
		}
	})
	e.Spawn("watchdog", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		reader.Kill() // the crash: the reader will never drain the FIFO
	})
	err := e.Run()
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run = %v (%T), want *sim.DeadlockError", err, err)
	}
	found := false
	for _, b := range dl.Blocked {
		if b.Name == "writer" {
			found = true
			if b.Queue != "spe0 in-mbox not-full" {
				t.Errorf("writer blocked on %q, want the mailbox not-full queue", b.Queue)
			}
		}
	}
	if !found {
		t.Errorf("deadlock report %v does not name the stalled writer", dl.Blocked)
	}
	if m.Count() != InboundDepth {
		t.Errorf("FIFO holds %d entries at deadlock, want full (%d)", m.Count(), InboundDepth)
	}
}

// TestWriteNonBlockingFullFault pins the typed sentinel on the
// capacity edge: depth writes succeed, the depth+1st fails with
// ErrMailboxFull and does not enqueue.
func TestWriteNonBlockingFullFault(t *testing.T) {
	e := sim.NewEngine()
	m := NewMailbox(e, "in", InboundDepth)
	for i := uint32(0); i < uint32(InboundDepth); i++ {
		if err := m.WriteNonBlocking(i); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	err := m.WriteNonBlocking(99)
	if !errors.Is(err, ErrMailboxFull) {
		t.Fatalf("overflow write err = %v, want ErrMailboxFull", err)
	}
	if m.Count() != InboundDepth || m.Writes() != uint64(InboundDepth) {
		t.Errorf("failed write mutated the FIFO: count=%d writes=%d", m.Count(), m.Writes())
	}
	if m.TryWrite(99) {
		t.Error("TryWrite succeeded on a full mailbox")
	}
}

// TestWriteDelayStallsInVirtualTime: an installed write-delay hook (the
// mbox-stall fault) pushes the write later in virtual time but keeps the
// data path intact.
func TestWriteDelayStallsInVirtualTime(t *testing.T) {
	e := sim.NewEngine()
	m := NewMailbox(e, "in", InboundDepth)
	calls := 0
	m.SetWriteDelay(func() sim.Duration {
		calls++
		if calls == 2 {
			return 7 * sim.Microsecond
		}
		return 0
	})
	var wroteAt [3]sim.Time
	var got []uint32
	e.Spawn("writer", func(p *sim.Proc) {
		for i := uint32(0); i < 3; i++ {
			m.Write(p, i)
			wroteAt[i] = p.Now()
		}
	})
	e.Spawn("reader", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, m.Read(p))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wroteAt[0] != 0 || wroteAt[1] != sim.Time(7*sim.Microsecond) || wroteAt[2] != wroteAt[1] {
		t.Errorf("write times = %v, want only the second stalled by 7us", wroteAt)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("reader saw %v, want in-order values despite the stall", got)
	}
}
