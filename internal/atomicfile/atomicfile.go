// Package atomicfile writes files atomically: content goes to a temp file
// in the destination's directory and is renamed into place only after a
// successful write and sync-less close. A crash or write error mid-run
// leaves either the old file or nothing — never a truncated artifact that
// downstream tooling would half-parse.
package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile streams write's output into path atomically. On any error the
// temp file is removed and path is left untouched.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("atomicfile: writing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	return nil
}
