package atomicfile

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new contents")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new contents" {
		t.Fatalf("contents = %q", got)
	}
	assertNoTempLeft(t, dir)
}

func TestWriteFileErrorKeepsOldFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("mid-run failure")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage") //nolint:errcheck
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped mid-run failure", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "precious" {
		t.Fatalf("old artifact clobbered: %q", got)
	}
	assertNoTempLeft(t, dir)
}

func TestWriteFileUnwritableDirectory(t *testing.T) {
	// A directory that does not exist is unwritable for every uid
	// (chmod-based setups are bypassed when tests run as root).
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "out.json")
	err := WriteFile(path, func(w io.Writer) error { return nil })
	if err == nil {
		t.Fatal("expected error for unwritable directory")
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatalf("artifact appeared despite error: %v", statErr)
	}
}

func assertNoTempLeft(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}
