package serve

import (
	"bytes"
	"testing"

	"cellport/internal/fault"
	"cellport/internal/sim"
)

// fleetConfig is the acceptance scenario scaled to test size: 4 pools of
// 2 blades under the shared calibration, overloaded, with a diurnal +
// flash-crowd stream and the autoscaler armed.
func fleetConfig(t *testing.T) Config {
	t.Helper()
	cfg := quickConfig()
	cfg.Blades = 2
	cfg.Pools = 4
	cfg.Requests = 96
	cfg.Rate = 1.5
	cfg.Cal = mustCal(t)
	cfg.Load = &RateModel{DiurnalAmp: 0.6, FlashCount: 2, FlashFactor: 3}
	cfg.Autoscale = &Autoscale{}
	return cfg
}

// TestFleetDeterminismMatrix is the tentpole guarantee at fleet scale:
// one fleet run under flash-crowd load, routing, and autoscaling is
// byte-identical across the sequential reference loop, every sharded
// worker count, lookahead on/off, and calibration parallelism.
func TestFleetDeterminismMatrix(t *testing.T) {
	base := fleetConfig(t)
	seq := base
	seq.SeqSim = true
	golden := marshal(t, mustRun(t, seq))

	for _, shards := range []int{0, 1, 2, 8} {
		for _, noLookahead := range []bool{false, true} {
			cfg := base
			cfg.Shards = shards
			cfg.NoLookahead = noLookahead
			if got := marshal(t, mustRun(t, cfg)); !bytes.Equal(got, golden) {
				t.Fatalf("shards=%d lookahead=%v diverged from -seqsim:\n got %s\nwant %s",
					shards, !noLookahead, got, golden)
			}
		}
	}
	par := base
	par.Parallel = 8
	if got := marshal(t, mustRun(t, par)); !bytes.Equal(got, golden) {
		t.Fatalf("-parallel 8 changed the fleet report")
	}
}

// TestFleetLedgerConservation: the six-term ledger balances exactly
// under routing + autoscaling, the per-pool served counts re-sum to the
// fleet total, and every request the router placed is accounted.
func TestFleetLedgerConservation(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		cfg := fleetConfig(t)
		cfg.Seed = seed
		rep := mustRun(t, cfg)
		checkLedger(t, rep)
		if rep.Fleet == nil {
			t.Fatalf("seed %d: fleet run produced no fleet stats", seed)
		}
		if rep.Fleet.Pools != cfg.Pools {
			t.Fatalf("seed %d: fleet stats report %d pools, want %d", seed, rep.Fleet.Pools, cfg.Pools)
		}
		var poolServed int
		for i, ps := range rep.Fleet.PerPool {
			if ps.Pool != i {
				t.Fatalf("seed %d: per-pool merge out of order: index %d holds pool %d", seed, i, ps.Pool)
			}
			if ps.Blades != cfg.Blades {
				t.Fatalf("seed %d: pool %d reports %d blades, want %d", seed, i, ps.Blades, cfg.Blades)
			}
			poolServed += ps.Served
		}
		if poolServed != rep.Served {
			t.Fatalf("seed %d: per-pool served sums to %d, fleet served %d", seed, poolServed, rep.Served)
		}
		if rep.Blades != cfg.Pools*cfg.Blades {
			t.Fatalf("seed %d: fleet report blades %d, want %d", seed, rep.Blades, cfg.Pools*cfg.Blades)
		}
	}
}

// TestFleetAutoscaleDrains: under the diurnal stream's off-peak trough
// the autoscaler must demonstrably drain pools — the observed minimum
// active count drops below the configured fleet size — and scale
// actions are reflected in the stats.
func TestFleetAutoscaleDrains(t *testing.T) {
	cfg := fleetConfig(t)
	rep := mustRun(t, cfg)
	f := rep.Fleet
	if f == nil {
		t.Fatal("fleet run produced no fleet stats")
	}
	if f.ScaleDowns == 0 {
		t.Fatalf("autoscaler never drained a pool: %+v", f)
	}
	if f.ActiveMin >= f.Pools {
		t.Fatalf("active_min %d never dropped below the fleet size %d", f.ActiveMin, f.Pools)
	}
	// The drain must go through the lifecycle machinery: some blade ends
	// the run parked or draining, or was revived through warming.
	saw := false
	for _, bs := range rep.PerBlade {
		if bs.Health == "parked" || bs.Health == "draining" || bs.Health == "warming" {
			saw = true
		}
	}
	if !saw && f.ScaleUps == 0 {
		t.Fatalf("scale-downs fired but no blade shows a lifecycle drain state: %+v", rep.PerBlade)
	}
}

// TestFleetStaticNoAutoscale: without an Autoscale config the fleet is
// static — no scale actions, every pool active throughout.
func TestFleetStaticNoAutoscale(t *testing.T) {
	cfg := fleetConfig(t)
	cfg.Autoscale = nil
	rep := mustRun(t, cfg)
	f := rep.Fleet
	if f == nil {
		t.Fatal("fleet run produced no fleet stats")
	}
	if f.ScaleUps != 0 || f.ScaleDowns != 0 || f.ActiveMin != f.Pools || f.ActiveFinal != f.Pools {
		t.Fatalf("static fleet scaled anyway: %+v", f)
	}
	checkLedger(t, rep)
}

// TestFleetBeatsSinglePool: on the identical arrival stream (offered
// rate pinned in absolute terms), the fleet's goodput under overload
// beats the static single-pool baseline — the router spreads what one
// admission queue would have shed.
func TestFleetBeatsSinglePool(t *testing.T) {
	cal := mustCal(t)
	fleet := fleetConfig(t)
	fleet.Autoscale = nil // static fleet: capacity comparison, not scaling
	// Pin the absolute offered rate at 1.5× the whole fleet's capacity so
	// both runs consume the byte-identical stream.
	offered := 1.5 * cal.perBlade * float64(fleet.Pools*fleet.Blades)
	fleet.OfferedRPS = offered
	fleet.Rate = 0

	single := fleet
	single.Pools = 0
	single.Load = fleet.Load
	fleetRep := mustRun(t, fleet)
	singleRep := mustRun(t, single)

	if fleetRep.OfferedRPS != singleRep.OfferedRPS {
		t.Fatalf("offered rates diverged: fleet %v single %v", fleetRep.OfferedRPS, singleRep.OfferedRPS)
	}
	goodput := func(r *Report) int { return r.Served - r.Late }
	if gf, gs := goodput(fleetRep), goodput(singleRep); gf <= gs {
		t.Fatalf("fleet goodput %d does not beat the single-pool baseline %d (fleet served %d late %d; single served %d late %d)",
			gf, gs, fleetRep.Served, fleetRep.Late, singleRep.Served, singleRep.Late)
	}
	checkLedger(t, fleetRep)
	checkLedger(t, singleRep)
}

// TestFleetArmedUnfiredPlan: a fleet fault plan scheduled entirely past
// the end of the run must leave the report byte-identical to running
// with no plan at all — the PR-3 invariant at fleet scope, now with
// routing and autoscaling in the loop.
func TestFleetArmedUnfiredPlan(t *testing.T) {
	base := fleetConfig(t)
	golden := marshal(t, mustRun(t, base))

	armed := base
	armed.Faults = mustPlan(t, "blade-crash:blade=0,at=1800s;blade-restart:blade=5,at=1900s,drain=1s")
	if got := marshal(t, mustRun(t, armed)); !bytes.Equal(got, golden) {
		t.Fatalf("armed-but-unfired fleet plan changed the report:\n got %s\nwant %s", got, golden)
	}
}

// TestFleetChaos: seeded blade-lifecycle chaos over the routed fleet —
// the ledger still conserves, and the run stays byte-identical between
// the sequential loop and the sharded engine.
func TestFleetChaos(t *testing.T) {
	cfg := fleetConfig(t)
	total := cfg.Pools * cfg.Blades
	offered := cfg.Rate * cfg.Cal.perBlade * float64(total)
	span := sim.FromSeconds(float64(cfg.Requests) / offered)
	for _, seed := range []uint64{3, 11} {
		cfg.Faults = fault.SeededFleet(seed, total, span)
		seq := cfg
		seq.SeqSim = true
		golden := mustRun(t, seq)
		checkLedger(t, golden)
		sharded := cfg
		sharded.Shards = 8
		if got := marshal(t, mustRun(t, sharded)); !bytes.Equal(got, marshal(t, golden)) {
			t.Fatalf("seed %d: sharded fleet chaos diverged from -seqsim", seed)
		}
	}
}

// TestFleetRouterStability: with a conclusive estimator the router keeps
// the ledger conserved while overriding the hash placement at least
// occasionally under skewed load, and the consistent-hash path routes
// every request somewhere while capacity remains.
func TestFleetRouterStability(t *testing.T) {
	cfg := fleetConfig(t)
	cfg.Autoscale = nil
	rep := mustRun(t, cfg)
	checkLedger(t, rep)
	var routed int
	for _, ps := range rep.Fleet.PerPool {
		routed += ps.Routed
		if ps.Routed == 0 {
			t.Fatalf("pool %d was never routed to: %+v", ps.Pool, rep.Fleet.PerPool)
		}
	}
	if routed < rep.Served {
		t.Fatalf("router placed %d requests but %d were served", routed, rep.Served)
	}
}

// FuzzFleetLedger drives seeded routing + autoscale + chaos through
// arbitrary (seed, shape) corners and checks the two invariants that
// must never break: exact six-term ledger conservation, and sequential
// vs sharded byte-identity.
func FuzzFleetLedger(f *testing.F) {
	f.Add(uint64(7), uint64(0), uint8(4), false)
	f.Add(uint64(1), uint64(3), uint8(2), true)
	f.Add(uint64(42), uint64(9), uint8(6), true)
	cal, err := sharedCal()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed, faultSeed uint64, pools uint8, autoscale bool) {
		cfg := quickConfig()
		cfg.Blades = 2
		cfg.Pools = 1 + int(pools%6)
		cfg.Requests = 48
		cfg.Rate = 1.5
		cfg.Seed = seed
		cfg.Cal = cal
		cfg.Load = &RateModel{DiurnalAmp: 0.5, FlashCount: 1 + int(seed%3), FlashFactor: 2.5}
		if autoscale {
			cfg.Autoscale = &Autoscale{}
		}
		total := cfg.Pools * cfg.Blades
		offered := cfg.Rate * cal.perBlade * float64(total)
		span := sim.FromSeconds(float64(cfg.Requests) / offered)
		if faultSeed != 0 {
			cfg.Faults = fault.SeededFleet(faultSeed, total, span)
		}
		seq := cfg
		seq.SeqSim = true
		seqRep, err := Run(seq)
		if err != nil {
			t.Fatal(err)
		}
		checkLedger(t, seqRep)
		shard := cfg
		shard.Shards = 4
		shardRep, err := Run(shard)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshal(t, seqRep), marshal(t, shardRep)) {
			t.Fatalf("sharded fleet run diverged from -seqsim (seed=%d faultSeed=%d pools=%d autoscale=%v)",
				seed, faultSeed, cfg.Pools, autoscale)
		}
	})
}
