package serve

import (
	"container/heap"
	"fmt"
	"sort"

	"cellport/internal/fault"
	"cellport/internal/sim"
	"cellport/internal/trace"
)

// The blade lifecycle layer (DESIGN.md §12): fleet-level fault plans
// kill, stall, and restart whole blades at planned virtual instants, and
// the pool re-routes the victims' work through the normal placement path
// under a retry budget. Everything here runs on the coordinator — in the
// sharded run only at epoch barriers, with every wheel quiescent — so
// blade state transitions are serial in both event loops and the chaos
// run stays byte-identical across -seqsim, -shards N, and -lookahead.

// health is a blade's lifecycle state. Admission treats the states as a
// circuit breaker: only admittable() states accept new requests.
//
//	      blade-restart            drain elapsed
//	up ───────────────► draining ───────────────► warming
//	 ▲                                               │
//	 └────────────── first completion ◄──────────────┘
//	up/warming ──blade-stall──► stalled ──delay──► (previous state)
//	any live state ──blade-crash──► down (terminal)
//
// The fleet autoscaler (DESIGN.md §13) adds one more state: a drained
// pool's blades park once idle and empty (powered down, warmth lost),
// and a later scale-up revives them through warming — the same
// warmup-recharge path a restart takes.
//
//	draining (parkPending) ──idle+empty──► parked ──scale-up──► warming
type health int

const (
	healthUp health = iota
	healthDraining
	healthStalled
	healthDown
	healthWarming
	healthParked
)

var healthNames = [...]string{
	healthUp:       "up",
	healthDraining: "draining",
	healthStalled:  "stalled",
	healthDown:     "down",
	healthWarming:  "warming",
	healthParked:   "parked",
}

func (h health) String() string { return healthNames[h] }

// admittable reports whether the state accepts new admissions. A warming
// blade does: it pays its re-charged warmup on the next dispatch, and
// hiding it from placement would leave restarted capacity idle.
func (h health) admittable() bool { return h == healthUp || h == healthWarming }

// bladeEventKind is one lifecycle transition instant. A blade-crash plan
// entry compiles to one event; blade-stall and blade-restart compile to
// a begin/end pair.
type bladeEventKind int

const (
	evBladeCrash bladeEventKind = iota
	evDrainStart
	evRestartFire
	evStallStart
	evStallEnd
)

// bladeEvent is one compiled lifecycle instant.
type bladeEvent struct {
	at    sim.Time
	kind  bladeEventKind
	blade int
	delay sim.Duration // stall length (evStallStart only)
}

// armFleet compiles the plan's fleet-level faults into the pool's
// lifecycle schedule: per-fault events, stably sorted by instant so
// same-instant events keep plan order. Blade indices must name blades of
// this pool.
func (p *pool) armFleet(plan *fault.Plan) error {
	for _, f := range plan.FleetFaults() {
		if f.Blade < 0 || f.Blade >= len(p.blades) {
			return fmt.Errorf("serve: fault %q targets blade %d of a %d-blade pool", f, f.Blade, len(p.blades))
		}
		switch f.Kind {
		case fault.BladeCrash:
			p.faultSched = append(p.faultSched, bladeEvent{at: f.At, kind: evBladeCrash, blade: f.Blade})
		case fault.BladeStall:
			p.faultSched = append(p.faultSched,
				bladeEvent{at: f.At, kind: evStallStart, blade: f.Blade, delay: f.Delay},
				bladeEvent{at: f.At.Add(f.Delay), kind: evStallEnd, blade: f.Blade})
		case fault.BladeRestart:
			p.faultSched = append(p.faultSched,
				bladeEvent{at: f.At, kind: evDrainStart, blade: f.Blade},
				bladeEvent{at: f.At.Add(f.Drain), kind: evRestartFire, blade: f.Blade})
		}
	}
	sort.SliceStable(p.faultSched, func(a, b int) bool {
		return p.faultSched[a].at < p.faultSched[b].at
	})
	return nil
}

// applyFault runs one lifecycle transition on the coordinator. Guards
// make overlapping plans first-wins: a transition finding its blade in
// an incompatible state (already down, already stalled, stall on a
// draining blade) is a no-op, deterministically in plan order.
func (p *pool) applyFault(ev bladeEvent) {
	b := p.blades[ev.blade]
	switch ev.kind {
	case evBladeCrash:
		if b.health == healthDown {
			return
		}
		b.crashes++
		b.health = healthDown
		// Death cancels whatever was pending: the paired restart fire
		// finds the blade down and no-ops, and a queued autoscale park
		// has nothing left to park.
		b.restartPending = false
		b.parkPending = false
		trace.RecordInstant(b.tr, b.lane, p.now, "blade-crash")
		p.killBlade(b)
	case evDrainStart:
		if !b.health.admittable() {
			return
		}
		b.health = healthDraining
		// restartPending pairs this drain with its evRestartFire: a fire
		// whose own drain no-op'd (blade was already draining, stalled,
		// or parked) must not hijack an unrelated drain — in particular
		// an autoscale drain, where firing would re-charge warmup on a
		// blade that never restarted.
		b.restartPending = true
		trace.RecordInstant(b.tr, b.lane, p.now, "restart: draining")
	case evRestartFire:
		if b.health != healthDraining || !b.restartPending {
			return
		}
		b.restartPending = false
		b.parkPending = false // the restart supersedes a queued autoscale park
		b.restarts++
		b.health = healthWarming
		b.warm = false // warmup re-charged on the next dispatch
		trace.RecordInstant(b.tr, b.lane, p.now, "restart: warming")
		p.killBlade(b)
	case evStallStart:
		if !b.health.admittable() {
			return
		}
		b.stalls++
		b.stallRestore = b.health
		b.health = healthStalled
		trace.RecordInstant(b.tr, b.lane, p.now, fmt.Sprintf("blade-stall %s", ev.delay))
		if b.busy {
			// The in-flight dispatch finishes late by the stall length.
			// Invalidate the already-scheduled completion (generation
			// bump) and reschedule at the pushed-back instant.
			b.gen++
			if b.start > p.now {
				b.start = b.start.Add(ev.delay)
			}
			b.done = b.done.Add(ev.delay)
			p.scheduleCompletion(b)
		}
	case evStallEnd:
		if b.health != healthStalled {
			return
		}
		b.health = b.stallRestore
		if b.parkPending {
			// An autoscale drain arrived mid-stall: the blade resumes
			// directly into draining (it still serves out its queue, then
			// parks) instead of its pre-stall admittable state.
			b.health = healthDraining
		}
		trace.RecordInstant(b.tr, b.lane, p.now, "stall-end")
		if !b.busy && len(b.queue) > 0 {
			p.dispatch(b, p.now)
		}
		p.maybePark(b, p.now)
	}
}

// maybePark completes an autoscale drain: a draining blade with the park
// flag set powers down once it has neither in-flight work nor queue.
// Parking loses warmth, so a later scale-up re-charges warmup exactly
// like a restart. Only blade-owned state is touched, so the call is
// legal both from the coordinator and from the blade's own wheel (the
// completion path).
func (p *pool) maybePark(b *blade, now sim.Time) {
	if !b.parkPending || b.health != healthDraining || b.busy || len(b.queue) > 0 {
		return
	}
	b.parkPending = false
	b.health = healthParked
	b.warm = false
	trace.RecordInstant(b.tr, b.lane, now, "autoscale: parked")
}

// killBlade evicts b's work at p.now: the in-flight batch first (in
// batch order), then the queue (in admission order), each request going
// through the retry machinery. Partial busy time up to the kill instant
// is accounted so utilization stays honest. Coordinator-only: in the
// sharded run the wheels are quiescent, and the generation bump turns
// the already-scheduled completion event into a no-op.
func (p *pool) killBlade(b *blade) {
	if b.busy {
		if p.now > b.start {
			b.busyTime += p.now.Sub(b.start)
		}
		b.busy = false
		b.gen++
		for _, r := range b.cur {
			p.reroute(b, r)
		}
		b.spare = b.cur[:0]
		b.cur = nil
	}
	for _, r := range b.queue {
		p.reroute(b, r)
	}
	b.queue = b.queue[:0]
}

// reroute sends one evicted request back through admission after an
// exponential virtual-time backoff, unless its retry budget is exhausted
// (shed as exhausted) or the backoff alone already overshoots its
// deadline (shed as rerouted — it died in transit). Sheds are attributed
// to the blade that lost the request, keeping the conservation ledger's
// merge blade-index-ordered.
func (p *pool) reroute(b *blade, r Request) {
	r.Attempts++
	if r.Attempts > p.cfg.RetryBudget {
		b.shedExhausted++
		trace.RecordInstant(b.tr, b.lane, p.now, fmt.Sprintf("shed-exhausted req %d", r.ID))
		return
	}
	at := p.now.Add(rerouteBackoff(p.cfg.RetryBackoff, r.Attempts))
	if r.Deadline != sim.Never && at > r.Deadline {
		b.shedRerouted++
		trace.RecordInstant(b.tr, b.lane, p.now, fmt.Sprintf("shed-rerouted req %d", r.ID))
		return
	}
	b.rerouted++
	p.rerouteSeq++
	heap.Push(&p.reroutes, rerouteEntry{at: at, seq: p.rerouteSeq, req: r})
}

// rerouteBackoff mirrors the marvel supervision loop's backoffDelay:
// attempt k (1-based) waits base << (k-1), saturating at 16 doublings so
// the shift can never overflow.
func rerouteBackoff(base sim.Duration, attempt int) sim.Duration {
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 16 {
		shift = 16
	}
	return base << shift
}

// rerouteEntry is one re-routed request waiting out its backoff. The
// (at, seq) key makes heap order total and deterministic: seq is
// assigned in eviction order, which both event loops produce
// identically.
type rerouteEntry struct {
	at  sim.Time
	seq uint64
	req Request
}

// rerouteHeap is a min-heap of pending re-admissions keyed by (at, seq).
type rerouteHeap []rerouteEntry

func (h rerouteHeap) Len() int { return len(h) }
func (h rerouteHeap) Less(a, b int) bool {
	if h[a].at != h[b].at {
		return h[a].at < h[b].at
	}
	return h[a].seq < h[b].seq
}
func (h rerouteHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *rerouteHeap) Push(x interface{}) { *h = append(*h, x.(rerouteEntry)) }
func (h *rerouteHeap) Pop() interface{} {
	old := *h
	n := len(old) - 1
	e := old[n]
	*h = old[:n]
	return e
}

// popReroute removes and returns the earliest pending re-admission.
func (p *pool) popReroute() Request {
	return heap.Pop(&p.reroutes).(rerouteEntry).req
}

// anyBusy reports whether any blade has an in-flight dispatch.
// Coordinator-only (the wheels must be quiescent).
func (p *pool) anyBusy() bool {
	for _, b := range p.blades {
		if b.busy {
			return true
		}
	}
	return false
}

// faultEligible reports whether pending lifecycle faults may still fire:
// only while the run has live work (arrivals or re-admissions pending,
// or a dispatch in flight). Once the last request resolves the run is
// over, so later-scheduled faults stay armed-but-unfired — exactly the
// PR-3 invariant lifted to fleet scope, and what makes an unfired blade
// plan byte-identical to no plan.
func (p *pool) faultEligible(reqs []Request, ai int) bool {
	return ai < len(reqs) || len(p.reroutes) > 0 || p.anyBusy()
}

// coordClass orders same-instant coordinator events. Completions (wheel
// events) always run first — RunUntil is inclusive of the barrier
// instant — then faults, then autoscale ticks, then re-admissions, then
// fresh arrivals. The sequential loop applies the identical priority,
// which is what keeps the two event loops byte-identical under chaos
// schedules.
type coordClass int

const (
	coordFault coordClass = iota
	coordTick
	coordReroute
	coordArrival
)

// nextTick reports the next armed autoscale sample instant (Never when
// the fleet runs without an autoscaler).
func (p *pool) nextTick() sim.Time {
	if p.fleet == nil || p.fleet.scaler == nil {
		return sim.Never
	}
	return p.fleet.scaler.next
}

// nextCoord reports the earliest pending coordinator event and its
// class; priority breaks timestamp ties. Fault and tick instants
// participate only while faultEligible holds — once the last request
// resolves, remaining faults stay armed-but-unfired and the autoscaler
// stops sampling, in both event loops.
func (p *pool) nextCoord(reqs []Request, ai int) (sim.Time, coordClass, bool) {
	var t sim.Time
	var class coordClass
	ok := false
	if p.fi < len(p.faultSched) && p.faultEligible(reqs, ai) {
		t, class, ok = p.faultSched[p.fi].at, coordFault, true
	}
	if tick := p.nextTick(); tick != sim.Never && p.faultEligible(reqs, ai) && (!ok || tick < t) {
		t, class, ok = tick, coordTick, true
	}
	if len(p.reroutes) > 0 && (!ok || p.reroutes[0].at < t) {
		t, class, ok = p.reroutes[0].at, coordReroute, true
	}
	if ai < len(reqs) && (!ok || reqs[ai].Arrival < t) {
		t, class, ok = reqs[ai].Arrival, coordArrival, true
	}
	return t, class, ok
}
