package serve

import (
	"math"

	"cellport/internal/sim"
)

// The load generator produces a seeded, open-loop arrival stream: request
// timestamps are drawn up front from a splitmix64 stream and never react
// to the serving side (arrivals keep coming whether or not the blades
// keep up — the overload regime the admission layer exists for). The
// same (seed, rate, burst, tallFrac, n) always yields byte-identical
// streams, which is what makes a whole serve run a pure function of its
// configuration.

// Request is one concept-detection query: classify a single frame of the
// given geometry against the model library.
type Request struct {
	// ID is the arrival-order index (also the corpus image the request
	// conceptually addresses).
	ID int
	// Arrival is the request's virtual arrival timestamp.
	Arrival sim.Time
	// Tall marks the larger frame geometry (double-height); only
	// same-geometry requests can be coalesced into one SPE dispatch.
	Tall bool
	// Deadline is the virtual completion deadline (sim.Never when the
	// stream runs without deadlines).
	Deadline sim.Time
	// Attempts counts how many times the request has lost its blade and
	// been re-routed (0 on first admission). The lifecycle layer sheds a
	// request whose attempts exceed the pool's retry budget.
	Attempts int
}

// splitmix64 is the same tiny, well-mixed PRNG the fault planner uses;
// the stream is fully determined by the seed.
type splitmix64 uint64

func (r *splitmix64) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (r *splitmix64) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// exp returns an exponential draw with the given rate (per virtual
// second), as a virtual duration.
func (r *splitmix64) exp(rate float64) sim.Duration {
	// Log1p(-u) keeps the tail exact for u near 0 and can never hit
	// log(0) since u < 1.
	return sim.FromSeconds(-math.Log1p(-r.float()) / rate)
}

// arrivals generates the stream: n requests at an average of ratePerSec
// requests per virtual second. Burstiness burst >= 1 groups arrivals into
// bursts whose size is geometric with mean burst (burst = 1 degenerates
// to a plain Poisson process); the burst-event rate is scaled down by the
// mean burst size so the offered load stays ratePerSec.
func arrivals(seed uint64, n int, ratePerSec, burst, tallFrac float64, deadline sim.Duration) []Request {
	if burst < 1 {
		burst = 1
	}
	rng := splitmix64(seed)
	out := make([]Request, 0, n)
	t := sim.Time(0)
	for len(out) < n {
		t = t.Add(rng.exp(ratePerSec / burst))
		// Geometric burst size, mean `burst`: count failures of a
		// p = 1/burst trial.
		size := 1
		for rng.float() >= 1/burst {
			size++
		}
		for i := 0; i < size && len(out) < n; i++ {
			r := Request{
				ID:       len(out),
				Arrival:  t,
				Tall:     rng.float() < tallFrac,
				Deadline: sim.Never,
			}
			if deadline > 0 {
				r.Deadline = t.Add(deadline)
			}
			out = append(out, r)
		}
	}
	return out
}
