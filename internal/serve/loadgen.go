package serve

import (
	"math"

	"cellport/internal/sim"
)

// The load generator produces a seeded, open-loop arrival stream: request
// timestamps are drawn up front from a splitmix64 stream and never react
// to the serving side (arrivals keep coming whether or not the blades
// keep up — the overload regime the admission layer exists for). The
// same (seed, rate, burst, tallFrac, n) always yields byte-identical
// streams, which is what makes a whole serve run a pure function of its
// configuration.

// Request is one concept-detection query: classify a single frame of the
// given geometry against the model library.
type Request struct {
	// ID is the arrival-order index (also the corpus image the request
	// conceptually addresses).
	ID int
	// Arrival is the request's virtual arrival timestamp.
	Arrival sim.Time
	// Tall marks the larger frame geometry (double-height); only
	// same-geometry requests can be coalesced into one SPE dispatch.
	Tall bool
	// Deadline is the virtual completion deadline (sim.Never when the
	// stream runs without deadlines).
	Deadline sim.Time
	// Attempts counts how many times the request has lost its blade and
	// been re-routed (0 on first admission). The lifecycle layer sheds a
	// request whose attempts exceed the pool's retry budget.
	Attempts int
}

// splitmix64 is the same tiny, well-mixed PRNG the fault planner uses;
// the stream is fully determined by the seed.
type splitmix64 uint64

func (r *splitmix64) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (r *splitmix64) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// maxGap bounds one inter-arrival gap and maxArrival bounds an absolute
// arrival timestamp. FromSeconds converts through float64, so a gap
// drawn at an extreme rate (tiny -rate, or a NaN survived from upstream)
// would otherwise overflow the int64 femtosecond representation into an
// implementation-defined — typically negative — value, making the stream
// run backwards and breaking same-instant FIFO order. The absolute cap
// sits well below sim.Never so deadline arithmetic on a clamped arrival
// can never collide with the "no deadline" sentinel, and maxGap is low
// enough that one clamped step can never push a clamped timestamp past
// the int64 range.
const (
	maxGap     = sim.Duration(math.MaxInt64 / 4)
	maxArrival = sim.Time(math.MaxInt64 / 2)
)

// maxGapSeconds is maxGap expressed in seconds, the clamp threshold
// applied before the float→int64 conversion where the overflow happens.
var maxGapSeconds = float64(maxGap) / 1e15

// clampGap turns a gap drawn in seconds into a bounded virtual duration.
// Non-finite and negative draws (possible only from degenerate rates
// that Validate rejects, kept as defense in depth) clamp to the maximum
// gap, pushing the stream deterministically into the far future rather
// than backwards.
func clampGap(s float64) sim.Duration {
	if !(s >= 0) || s >= maxGapSeconds {
		return maxGap
	}
	return sim.FromSeconds(s)
}

// exp returns an exponential draw with the given rate (per virtual
// second), as a bounded virtual duration. Exactly one uniform draw is
// consumed regardless of clamping, so clamped and unclamped streams stay
// aligned.
func (r *splitmix64) exp(rate float64) sim.Duration {
	// Log1p(-u) keeps the tail exact for u near 0 and can never hit
	// log(0) since u < 1.
	return clampGap(-math.Log1p(-r.float()) / rate)
}

// arrivals generates the stream: n requests at an average of ratePerSec
// requests per virtual second. Burstiness burst >= 1 groups arrivals into
// bursts whose size is geometric with mean burst (burst = 1 degenerates
// to a plain Poisson process); the burst-event rate is scaled down by the
// mean burst size so the offered load stays ratePerSec.
func arrivals(seed uint64, n int, ratePerSec, burst, tallFrac float64, deadline sim.Duration) []Request {
	if burst < 1 {
		burst = 1
	}
	rng := splitmix64(seed)
	out := make([]Request, 0, n)
	t := sim.Time(0)
	for len(out) < n {
		t = nextArrivalTime(t, rng.exp(ratePerSec/burst))
		for i, size := 0, burstSize(&rng, burst, n); i < size && len(out) < n; i++ {
			out = append(out, makeRequest(&rng, len(out), t, tallFrac, deadline))
		}
	}
	return out
}

// nextArrivalTime advances the stream clock by one bounded gap, capping
// the absolute timestamp so the stream is monotone non-decreasing all
// the way to the clamp ceiling (never overflowing, never reaching the
// Never sentinel).
func nextArrivalTime(t sim.Time, gap sim.Duration) sim.Time {
	t = t.Add(gap)
	if t > maxArrival {
		t = maxArrival
	}
	return t
}

// burstSize draws a geometric burst size with mean burst (count failures
// of a p = 1/burst trial), capped at the stream length so a degenerate
// success probability (burst huge enough that 1/burst underflows to 0)
// terminates instead of spinning.
func burstSize(rng *splitmix64, burst float64, n int) int {
	size := 1
	for size < n && rng.float() >= 1/burst {
		size++
	}
	return size
}

func makeRequest(rng *splitmix64, id int, t sim.Time, tallFrac float64, deadline sim.Duration) Request {
	r := Request{
		ID:       id,
		Arrival:  t,
		Tall:     rng.float() < tallFrac,
		Deadline: sim.Never,
	}
	if deadline > 0 {
		r.Deadline = t.Add(deadline)
	}
	return r
}

// RateModel shapes the offered rate over virtual time: a diurnal
// sinusoid plus seeded flash-crowd windows, realized by thinning a
// homogeneous candidate stream drawn at the peak rate. The shaped stream
// is still a pure function of (seed, model): flash-window placement
// comes from an independent splitmix64 stream derived from the same
// seed, so the model changes nothing outside its windows' influence on
// the thinning draws.
type RateModel struct {
	// DiurnalAmp is the relative amplitude A of the diurnal sinusoid:
	// the instantaneous base rate is base × (1 + A·sin(2πt/Period)),
	// 0 ≤ A ≤ 1. Zero leaves the base rate flat.
	DiurnalAmp float64
	// Period is the diurnal period in virtual time; zero selects the
	// expected span of the unshaped stream (one simulated "day" per
	// run).
	Period sim.Duration
	// FlashCount is how many flash-crowd windows each period carries.
	FlashCount int
	// FlashFactor multiplies the instantaneous rate inside a flash
	// window; values ≤ 1 disable the flashes.
	FlashFactor float64
	// FlashFrac is each flash window's length as a fraction of the
	// period (zero selects 1/16).
	FlashFrac float64
}

// active reports whether the model shapes the stream at all; an inactive
// model yields the exact homogeneous arrivals() stream.
func (m *RateModel) active() bool {
	return m != nil && (m.DiurnalAmp > 0 || (m.FlashCount > 0 && m.FlashFactor > 1))
}

// flashSeedSalt derives the flash-window stream from the main seed; any
// fixed odd constant works, this one is the splitmix64 increment.
const flashSeedSalt = 0x9e3779b97f4a7c15

// resolved fills the model's defaults against the base stream: the
// diurnal period and flash-window geometry in absolute virtual time.
type resolvedModel struct {
	RateModel
	period   sim.Duration
	flashLen sim.Duration
	starts   []sim.Time // flash-window starts within one period, sorted
}

func (m RateModel) resolve(seed uint64, n int, ratePerSec float64) resolvedModel {
	r := resolvedModel{RateModel: m}
	if r.FlashFactor < 1 {
		r.FlashFactor = 1
		r.FlashCount = 0
	}
	if r.FlashFrac <= 0 {
		r.FlashFrac = 1.0 / 16
	}
	r.period = m.Period
	if r.period <= 0 {
		r.period = clampGap(float64(n) / ratePerSec)
	}
	if r.period <= 0 {
		r.period = sim.Second
	}
	r.flashLen = sim.Duration(float64(r.period) * r.FlashFrac)
	if r.FlashCount > 0 {
		frng := splitmix64(seed ^ flashSeedSalt)
		r.starts = make([]sim.Time, r.FlashCount)
		for i := range r.starts {
			r.starts[i] = sim.Time(frng.float() * float64(r.period))
		}
		// Sorted for a deterministic, early-exit window scan.
		for i := 1; i < len(r.starts); i++ {
			for j := i; j > 0 && r.starts[j] < r.starts[j-1]; j-- {
				r.starts[j], r.starts[j-1] = r.starts[j-1], r.starts[j]
			}
		}
	}
	return r
}

// rate is the instantaneous offered rate at virtual time t, as a
// multiple of the base rate. Flash windows repeat each period, so a
// multi-day run sees its flash crowds daily at the same phase. The
// result is clamped at zero: an amplitude above 1 (rejected by
// Validate, but this layer must not rely on its callers) would
// otherwise drive the diurnal trough negative, and a negative thinning
// probability in arrivalsShaped silently accepts every candidate —
// inverting the intended load shape instead of failing loudly.
func (r *resolvedModel) rate(t sim.Time) float64 {
	phase := sim.Duration(t) % r.period
	mult := 1.0
	if r.DiurnalAmp > 0 {
		mult *= 1 + r.DiurnalAmp*math.Sin(2*math.Pi*float64(phase)/float64(r.period))
	}
	for _, s := range r.starts {
		if d := sim.Duration(t) % r.period; d >= sim.Duration(s) && d < sim.Duration(s)+r.flashLen {
			mult *= r.FlashFactor
			break
		}
	}
	if mult < 0 {
		mult = 0
	}
	return mult
}

// peak is the model's maximum rate multiple — the thinning envelope.
func (r *resolvedModel) peak() float64 {
	return (1 + r.DiurnalAmp) * r.FlashFactor
}

// arrivalsShaped generates a non-homogeneous arrival stream by thinning:
// burst events are drawn at the peak rate and accepted with probability
// rate(t)/peak, so the accepted process has exactly the shaped intensity
// while remaining a pure function of the seed. A nil or inactive model
// yields the exact arrivals() stream, byte for byte.
func arrivalsShaped(seed uint64, n int, ratePerSec, burst, tallFrac float64, deadline sim.Duration, model *RateModel) []Request {
	if !model.active() {
		return arrivals(seed, n, ratePerSec, burst, tallFrac, deadline)
	}
	if burst < 1 {
		burst = 1
	}
	m := model.resolve(seed, n, ratePerSec)
	peak := m.peak()
	rng := splitmix64(seed)
	out := make([]Request, 0, n)
	t := sim.Time(0)
	for len(out) < n {
		t = nextArrivalTime(t, rng.exp(ratePerSec*peak/burst))
		// Thin: one uniform draw per candidate burst event, consumed
		// whether or not the event survives, keeping the stream aligned.
		if rng.float() >= m.rate(t)/peak {
			continue
		}
		for i, size := 0, burstSize(&rng, burst, n); i < size && len(out) < n; i++ {
			out = append(out, makeRequest(&rng, len(out), t, tallFrac, deadline))
		}
	}
	return out
}
