package serve

import (
	"bytes"
	"testing"

	"cellport/internal/fault"
	"cellport/internal/sim"
)

// TestLookaheadByteIdentityMatrix is the tentpole invariant of the
// lookahead protocol: across every stressful scenario — overload with
// deadline/expiry shedding, an armed fault plan, verified full-fidelity
// dispatch — and at every shard count, the lookahead run and the
// per-arrival-barrier run both serialize byte-for-byte identically to
// the sequential reference loop.
func TestLookaheadByteIdentityMatrix(t *testing.T) {
	overload := func() Config {
		cfg := quickConfig()
		cfg.Cal = mustCal(t)
		cfg.Rate = 2
		cfg.Deadline = 150 * sim.Millisecond
		return cfg
	}
	faulted := func() Config {
		cfg := quickConfig().withDefaults()
		cfg.Faults = fault.Seeded(7, cfg.MachineConfig.NumSPEs)
		cfg.Rate = 2
		cal, err := Calibrate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cal = cal
		return cfg
	}
	fullsim := func() Config {
		cfg := quickConfig()
		cfg.Cal = mustCal(t)
		cfg.Requests = 24
		cfg.FullFidelity = true
		return cfg
	}
	scenarios := []struct {
		name   string
		build  func() Config
		shards []int
	}{
		{"overload-deadlines", overload, []int{0, 1, 2, 8}},
		{"faults", faulted, []int{0, 1, 2, 8}},
		{"fullsim", fullsim, []int{1, 8}}, // nested machine sims: keep the grid affordable
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			base := sc.build()
			seq := base
			seq.SeqSim = true
			golden := marshal(t, mustRun(t, seq))
			for _, noLookahead := range []bool{false, true} {
				for _, shards := range sc.shards {
					cfg := base
					cfg.Shards = shards
					cfg.NoLookahead = noLookahead
					if got := marshal(t, mustRun(t, cfg)); !bytes.Equal(got, golden) {
						t.Fatalf("noLookahead=%v shards=%d diverged from sequential loop:\n got %s\nwant %s",
							noLookahead, shards, got, golden)
					}
				}
			}
		})
	}
}

// TestLookaheadSeededSweep is the property sweep: over a spread of
// arrival seeds and load levels, lookahead on/off and the sequential
// loop must agree byte-for-byte, and lookahead must actually commit
// arrivals without barriers (otherwise the protocol is vacuous and this
// test is pinning nothing).
func TestLookaheadSeededSweep(t *testing.T) {
	cal := mustCal(t)
	windowAdmits := 0
	for _, rate := range []float64{0.8, 2.5} {
		for seed := uint64(1); seed <= 5; seed++ {
			base := quickConfig()
			base.Cal = cal
			base.Rate = rate
			base.Seed = seed
			base.Requests = 48
			seq := base
			seq.SeqSim = true
			golden := marshal(t, mustRun(t, seq))

			la := base
			la.Shards = 4
			laRep := mustRun(t, la)
			if got := marshal(t, laRep); !bytes.Equal(got, golden) {
				t.Fatalf("rate=%v seed=%d: lookahead diverged:\n got %s\nwant %s", rate, seed, got, golden)
			}
			windowAdmits += laRep.WindowAdmits

			nola := base
			nola.Shards = 4
			nola.NoLookahead = true
			if got := marshal(t, mustRun(t, nola)); !bytes.Equal(got, golden) {
				t.Fatalf("rate=%v seed=%d: per-arrival barriers diverged:\n got %s\nwant %s", rate, seed, got, golden)
			}
		}
	}
	if windowAdmits == 0 {
		t.Fatal("no arrival was ever admitted inside a lookahead window; the sweep exercises nothing")
	}
}

// TestLookaheadEpochReduction pins the perf claim behind the protocol:
// on the overloaded quick scenario the lookahead schedule needs several
// times fewer epochs than per-arrival barriers, while the serialized
// reports stay identical. (The ≥5× acceptance bound on the default -exp
// serve scenario is pinned in internal/experiments; this local scenario
// barriers more often because its tight deadline keeps queues short.)
// It also pins the counter plumbing: sequential runs report no epochs,
// sharded runs report the engine's count.
func TestLookaheadEpochReduction(t *testing.T) {
	base := quickConfig()
	base.Cal = mustCal(t)
	base.Rate = 2
	base.Requests = 128 // a longer stream, matching the default -exp serve shape

	la := base
	laRep := mustRun(t, la)
	nola := base
	nola.NoLookahead = true
	nolaRep := mustRun(t, nola)
	if !bytes.Equal(marshal(t, laRep), marshal(t, nolaRep)) {
		t.Fatal("lookahead and per-arrival reports diverged")
	}
	if laRep.Epochs == 0 || nolaRep.Epochs == 0 {
		t.Fatalf("sharded runs must report epochs: lookahead %d, per-arrival %d", laRep.Epochs, nolaRep.Epochs)
	}
	if nolaRep.Epochs < 4*laRep.Epochs {
		t.Fatalf("epoch reduction below 4×: lookahead %d epochs vs per-arrival %d", laRep.Epochs, nolaRep.Epochs)
	}
	if laRep.WindowAdmits == 0 {
		t.Fatal("lookahead run admitted nothing inside a window")
	}
	if nolaRep.WindowAdmits != 0 {
		t.Fatalf("per-arrival run reported %d window admits, want 0", nolaRep.WindowAdmits)
	}
	if laRep.BarrierWait > nolaRep.BarrierWait {
		t.Fatalf("lookahead barrier wait %v exceeds per-arrival %v", laRep.BarrierWait, nolaRep.BarrierWait)
	}

	seq := base
	seq.SeqSim = true
	seqRep := mustRun(t, seq)
	if seqRep.Epochs != 0 || seqRep.Barriers != 0 || seqRep.WindowAdmits != 0 {
		t.Fatalf("sequential run reports sync stats: epochs %d barriers %d windowAdmits %d",
			seqRep.Epochs, seqRep.Barriers, seqRep.WindowAdmits)
	}
}

// TestLookaheadSimMetricsAndCoordinatorTrace checks the observability
// satellite: with Instrument set, the report carries the sim.* counters
// and one coordinator instant per paid barrier — and instrumentation
// stays fingerprint-neutral (byte-identical serialized report).
func TestLookaheadSimMetricsAndCoordinatorTrace(t *testing.T) {
	base := quickConfig()
	base.Cal = mustCal(t)
	base.Rate = 2
	golden := marshal(t, mustRun(t, base))

	inst := base
	inst.Instrument = true
	rep := mustRun(t, inst)
	if got := marshal(t, rep); !bytes.Equal(got, golden) {
		t.Fatalf("instrumentation perturbed the report:\n got %s\nwant %s", got, golden)
	}
	if rep.Sim == nil {
		t.Fatal("instrumented sharded run carries no sim metrics snapshot")
	}
	want := map[string]int64{
		"epochs":        int64(rep.Epochs),
		"barriers":      int64(rep.Barriers),
		"barrier_wait":  int64(rep.BarrierWait),
		"window_admits": int64(rep.WindowAdmits),
	}
	got := map[string]int64{}
	for _, s := range rep.Sim.Samples {
		if s.Component == "sim" {
			got[s.Name] = s.Value
		}
	}
	for name, v := range want {
		if got[name] != v {
			t.Fatalf("sim metric %q = %d, want %d (all: %v)", name, got[name], v, got)
		}
	}
	if rep.Coordinator == nil {
		t.Fatal("instrumented sharded run carries no coordinator trace")
	}
	if n := len(rep.Coordinator.Instants()); uint64(n) != rep.Barriers {
		t.Fatalf("coordinator recorded %d barrier instants, want %d", n, rep.Barriers)
	}
}
