package serve

import (
	"errors"
	"math"
	"testing"

	"cellport/internal/sim"
)

// Satellite regression suite for the diurnal-trough clamp: an amplitude
// above 1 would drive the sinusoid's trough negative, turning the
// thinning probability in arrivalsShaped negative (which accepts every
// candidate — the inverse of the intended load shape). Validate rejects
// such amplitudes at the boundary; rate() clamps at zero as defense in
// depth for callers that bypass validation.

// TestDiurnalAmpBoundary pins the [0, 1] acceptance boundary: both
// endpoints validate cleanly, both sides beyond them are rejected with
// a typed *ConfigError naming the field.
func TestDiurnalAmpBoundary(t *testing.T) {
	for _, amp := range []float64{0, 0.5, 1} {
		cfg := quickConfig()
		cfg.Load = &RateModel{DiurnalAmp: amp}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("DiurnalAmp %v rejected: %v", amp, err)
		}
	}
	for _, amp := range []float64{-0.001, -1, 1.001, 2, math.NaN()} {
		cfg := quickConfig()
		cfg.Load = &RateModel{DiurnalAmp: amp}
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("DiurnalAmp %v validated cleanly", amp)
		}
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != "Load.DiurnalAmp" {
			t.Fatalf("DiurnalAmp %v: error %v does not name Load.DiurnalAmp", amp, err)
		}
	}
}

// TestRateClampsAtZero bypasses validation with an over-unity amplitude
// and checks the instantaneous rate can never go negative: the trough
// clamps to exactly zero instead of handing arrivalsShaped a negative
// thinning probability.
func TestRateClampsAtZero(t *testing.T) {
	m := RateModel{DiurnalAmp: 1.5}.resolve(7, 1000, 100)
	sawZero := false
	for i := 0; i <= 1024; i++ {
		tm := sim.Time(float64(m.period) * float64(i) / 1024)
		r := m.rate(tm)
		if r < 0 {
			t.Fatalf("rate(%d) = %v < 0 with DiurnalAmp 1.5", tm, r)
		}
		if r == 0 {
			sawZero = true
		}
	}
	if !sawZero {
		t.Fatal("over-unity amplitude never hit the zero clamp across a full period (trough should reach 1 - 1.5 < 0)")
	}
	// An in-range amplitude must never trip the clamp.
	m = RateModel{DiurnalAmp: 1}.resolve(7, 1000, 100)
	for i := 0; i <= 1024; i++ {
		tm := sim.Time(float64(m.period) * float64(i) / 1024)
		if r := m.rate(tm); r < 0 {
			t.Fatalf("rate(%d) = %v < 0 with DiurnalAmp 1", tm, r)
		}
	}
}

// TestShapedStreamSurvivesOverAmp generates a shaped stream under the
// bypassed over-unity amplitude: the clamp keeps the stream structurally
// valid (monotone, complete) rather than silently inverting its shape.
func TestShapedStreamSurvivesOverAmp(t *testing.T) {
	const n = 256
	reqs := arrivalsShaped(7, n, 50, 1, 0.25, 0, &RateModel{DiurnalAmp: 1.5})
	checkStream(t, reqs, n)
}
