package serve

import (
	"reflect"
	"testing"

	"cellport/internal/sim"
)

func TestArrivalsDeterministic(t *testing.T) {
	a := arrivals(42, 200, 100, 3, 0.25, 50*sim.Millisecond)
	b := arrivals(42, 200, 100, 3, 0.25, 50*sim.Millisecond)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different arrival streams")
	}
	c := arrivals(43, 200, 100, 3, 0.25, 50*sim.Millisecond)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical arrival streams")
	}
}

func TestArrivalsShape(t *testing.T) {
	const n = 2000
	const rate = 100.0
	reqs := arrivals(7, n, rate, 1, 0.25, 0)
	last := sim.Time(0)
	tall := 0
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if r.Arrival < last {
			t.Fatalf("arrivals not monotonic at %d", i)
		}
		last = r.Arrival
		if r.Deadline != sim.Never {
			t.Fatalf("request %d has a deadline with deadlines disabled", i)
		}
		if r.Tall {
			tall++
		}
	}
	// Mean inter-arrival 1/rate: the empirical rate of 2000 draws should
	// land well within ±15%.
	empirical := float64(n) / last.Seconds()
	if empirical < rate*0.85 || empirical > rate*1.15 {
		t.Fatalf("empirical rate %.1f rps, want ~%.0f", empirical, rate)
	}
	if frac := float64(tall) / n; frac < 0.18 || frac > 0.32 {
		t.Fatalf("tall fraction %.3f, want ~0.25", frac)
	}
}

func TestArrivalsBurstsShareTimestamps(t *testing.T) {
	reqs := arrivals(7, 500, 100, 4, 0, 0)
	shared := 0
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival == reqs[i-1].Arrival {
			shared++
		}
	}
	// Mean burst size 4 ⇒ roughly 3/4 of consecutive pairs share a burst
	// timestamp; anything clearly above the Poisson case (~0) proves the
	// burst mechanism is live.
	if shared < 200 {
		t.Fatalf("only %d/499 consecutive pairs share a burst timestamp, want bursty stream", shared)
	}
}

func TestArrivalsDeadlinesOffsetArrival(t *testing.T) {
	d := 80 * sim.Millisecond
	for _, r := range arrivals(3, 50, 100, 2, 0.5, d) {
		if r.Deadline != r.Arrival.Add(d) {
			t.Fatalf("request %d deadline %v, want arrival+%v", r.ID, r.Deadline, d)
		}
	}
}
