package serve

import (
	"math"
	"reflect"
	"testing"

	"cellport/internal/sim"
)

// Satellite regression suite for the load-generator clamps: extreme
// rates and burst factors must never overflow sim.Time, run the stream
// backwards, or spin the burst sampler — and the clamps must be inert
// for every ordinary configuration (byte-identical streams).

// checkStream asserts the structural invariants every arrival stream
// must satisfy: exactly n requests, IDs in arrival order, timestamps
// monotone non-decreasing, nothing negative, nothing past the clamp
// ceiling (and so nothing colliding with sim.Never).
func checkStream(t *testing.T, reqs []Request, n int) {
	t.Helper()
	if len(reqs) != n {
		t.Fatalf("stream holds %d requests, want %d", len(reqs), n)
	}
	prev := sim.Time(0)
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("request %d carries ID %d", i, r.ID)
		}
		if r.Arrival < 0 {
			t.Fatalf("request %d arrives at negative time %d", i, r.Arrival)
		}
		if r.Arrival < prev {
			t.Fatalf("stream runs backwards at request %d: %d after %d", i, r.Arrival, prev)
		}
		if r.Arrival > maxArrival {
			t.Fatalf("request %d overflows the arrival ceiling: %d > %d", i, r.Arrival, maxArrival)
		}
		prev = r.Arrival
	}
}

// TestClampGapBoundary pins the overflow boundary itself: a gap drawn
// right at or beyond the seconds-space threshold clamps to maxGap,
// while an ordinary gap converts exactly. This is the regression test
// for the float→int64 overflow FromSeconds would otherwise hit.
func TestClampGapBoundary(t *testing.T) {
	cases := []struct {
		name string
		s    float64
		want sim.Duration
	}{
		{"ordinary gap", 1.5, sim.FromSeconds(1.5)},
		{"zero", 0, 0},
		{"just below the threshold", maxGapSeconds * (1 - 1e-9), sim.FromSeconds(maxGapSeconds * (1 - 1e-9))},
		{"exactly the threshold", maxGapSeconds, maxGap},
		{"far past the threshold", 1e300, maxGap},
		{"would overflow int64", math.MaxFloat64, maxGap},
		{"positive infinity", math.Inf(1), maxGap},
		{"NaN", math.NaN(), maxGap},
		{"negative", -1, maxGap},
	}
	for _, tc := range cases {
		if got := clampGap(tc.s); got != tc.want {
			t.Errorf("%s: clampGap(%g) = %d, want %d", tc.name, tc.s, got, tc.want)
		}
		if got := clampGap(tc.s); got < 0 || got > maxGap {
			t.Errorf("%s: clampGap(%g) = %d escapes [0, maxGap]", tc.name, tc.s, got)
		}
	}
}

// TestArrivalsExtremeRates drives the generator at the rates that used
// to overflow: a rate so tiny every exponential draw lands in the
// clamped tail, and a rate so huge the gaps collapse to zero. Both must
// terminate with a well-formed monotone stream.
func TestArrivalsExtremeRates(t *testing.T) {
	for _, rate := range []float64{1e-300, 5e-324, 1e300} {
		reqs := arrivals(7, 32, rate, 1, 0.25, 0)
		checkStream(t, reqs, 32)
	}
	// The tiny-rate stream saturates at the arrival ceiling rather than
	// wrapping negative: the tail of a fully clamped stream sits at the
	// cap exactly.
	reqs := arrivals(7, 32, 1e-300, 1, 0.25, 0)
	if last := reqs[len(reqs)-1].Arrival; last != maxArrival {
		t.Fatalf("fully clamped stream tail = %d, want the ceiling %d", last, maxArrival)
	}
}

// TestBurstSizeTerminates pins the other half of satellite 2: a burst
// factor huge enough that the geometric success probability underflows
// to zero must still terminate (capped at the stream length), and an
// ordinary burst factor keeps its sizes in [1, n].
func TestBurstSizeTerminates(t *testing.T) {
	rng := splitmix64(3)
	for i := 0; i < 64; i++ {
		if size := burstSize(&rng, math.MaxFloat64, 16); size != 16 {
			t.Fatalf("degenerate burst draw %d returned %d, want the cap 16", i, size)
		}
	}
	for i := 0; i < 64; i++ {
		if size := burstSize(&rng, 3, 16); size < 1 || size > 16 {
			t.Fatalf("ordinary burst draw %d returned %d outside [1, 16]", i, size)
		}
	}
	// An end-to-end huge-burst stream terminates and stays well formed.
	checkStream(t, arrivals(11, 48, 2, math.MaxFloat64, 0.25, 0), 48)
}

// TestArrivalsDeadlineUnderClamp checks deadline arithmetic on a
// clamped arrival never collides with the no-deadline sentinel.
func TestArrivalsDeadlineUnderClamp(t *testing.T) {
	reqs := arrivals(7, 16, 1e-300, 1, 0, 250*sim.Millisecond)
	for i, r := range reqs {
		if r.Deadline == sim.Never {
			t.Fatalf("request %d lost its deadline", i)
		}
		if r.Deadline < r.Arrival {
			t.Fatalf("request %d deadline %d precedes arrival %d", i, r.Deadline, r.Arrival)
		}
	}
}

// TestShapedStreamInvariants: the thinned non-homogeneous stream obeys
// the same structural invariants as the homogeneous one, is a pure
// function of its seed, and an inactive model reproduces arrivals()
// byte for byte.
func TestShapedStreamInvariants(t *testing.T) {
	model := &RateModel{DiurnalAmp: 0.6, FlashCount: 2, FlashFactor: 3}
	a := arrivalsShaped(7, 96, 2, 2, 0.25, 0, model)
	checkStream(t, a, 96)
	b := arrivalsShaped(7, 96, 2, 2, 0.25, 0, model)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("shaped stream is not a pure function of its seed")
	}
	if c := arrivalsShaped(8, 96, 2, 2, 0.25, 0, model); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical shaped streams")
	}

	// Inactive models — nil, zeroed, and flashes disabled by factor ≤ 1 —
	// all fall back to the exact homogeneous stream.
	plain := arrivals(7, 96, 2, 2, 0.25, 0)
	for _, m := range []*RateModel{nil, {}, {FlashCount: 3, FlashFactor: 1}} {
		if got := arrivalsShaped(7, 96, 2, 2, 0.25, 0, m); !reflect.DeepEqual(got, plain) {
			t.Fatalf("inactive model %+v diverged from arrivals()", m)
		}
	}

	// The shaped generator inherits the clamps: extreme rates stay safe.
	checkStream(t, arrivalsShaped(7, 32, 1e-300, 1, 0.25, 0, model), 32)
	checkStream(t, arrivalsShaped(7, 32, 1e300, math.MaxFloat64, 0.25, 0, model), 32)
}

// TestRateModelResolve pins the model's resolved geometry: flash
// windows land inside the period, sorted, and the instantaneous rate
// never exceeds the thinning envelope.
func TestRateModelResolve(t *testing.T) {
	m := RateModel{DiurnalAmp: 0.6, FlashCount: 4, FlashFactor: 3}
	r := m.resolve(7, 96, 2)
	if r.period <= 0 {
		t.Fatalf("resolved period %d not positive", r.period)
	}
	if len(r.starts) != 4 {
		t.Fatalf("resolved %d flash windows, want 4", len(r.starts))
	}
	for i, s := range r.starts {
		if s < 0 || sim.Duration(s) >= r.period {
			t.Fatalf("flash window %d starts at %d, outside the period %d", i, s, r.period)
		}
		if i > 0 && s < r.starts[i-1] {
			t.Fatalf("flash windows unsorted at %d", i)
		}
	}
	peak := r.peak()
	for i := 0; i < 256; i++ {
		at := sim.Time(float64(r.period) * float64(i) / 256)
		if got := r.rate(at); got < 0 || got > peak+1e-9 {
			t.Fatalf("rate(%d) = %g escapes [0, peak=%g]", at, got, peak)
		}
	}
	// Flash factor below 1 disables the windows entirely.
	off := RateModel{FlashCount: 3, FlashFactor: 0.5}.resolve(7, 96, 2)
	if len(off.starts) != 0 || off.FlashFactor != 1 {
		t.Fatalf("sub-unity flash factor left windows armed: %+v", off)
	}
}
