package serve

import (
	"bytes"
	"strings"
	"testing"

	"cellport/internal/fault"
	"cellport/internal/sim"
)

// TestShardedMatchesSequentialLoop is the tentpole invariant at the serve
// layer: for both placement policies and at every worker count, the
// sharded per-blade-wheel run serializes byte-for-byte identically to
// the sequential reference loop over the same calibration and arrival
// stream.
func TestShardedMatchesSequentialLoop(t *testing.T) {
	base := quickConfig()
	base.Cal = mustCal(t)
	for _, pol := range []Policy{PolicyEstimator, PolicyRoundRobin} {
		seq := base
		seq.Policy = pol
		seq.SeqSim = true
		golden := marshal(t, mustRun(t, seq))
		for _, shards := range []int{0, 1, 2, 8} {
			cfg := base
			cfg.Policy = pol
			cfg.Shards = shards
			if got := marshal(t, mustRun(t, cfg)); !bytes.Equal(got, golden) {
				t.Fatalf("policy=%v shards=%d diverged from sequential loop:\n got %s\nwant %s",
					pol, shards, got, golden)
			}
		}
	}
}

// TestShardedMatchesSequentialOverload drives the pool through the
// stressful paths — overload, bursts, tight deadlines, expiry shedding —
// and requires the same byte identity.
func TestShardedMatchesSequentialOverload(t *testing.T) {
	base := quickConfig()
	base.Cal = mustCal(t)
	base.Rate = 2
	base.Deadline = 150 * sim.Millisecond
	seq := base
	seq.SeqSim = true
	golden := marshal(t, mustRun(t, seq))
	rep := mustRun(t, seq)
	if rep.ShedExpired == 0 {
		t.Fatal("scenario does not exercise expiry shedding; tighten the deadline")
	}
	for _, shards := range []int{1, 4} {
		cfg := base
		cfg.Shards = shards
		if got := marshal(t, mustRun(t, cfg)); !bytes.Equal(got, golden) {
			t.Fatalf("shards=%d diverged under overload:\n got %s\nwant %s", shards, got, golden)
		}
	}
}

// TestShardedMatchesSequentialUnderFaults arms a seeded fault plan (so
// the calibration table carries degraded services) and checks the byte
// identity holds when dispatches run degraded.
func TestShardedMatchesSequentialUnderFaults(t *testing.T) {
	cfg := quickConfig().withDefaults()
	cfg.Faults = fault.Seeded(7, cfg.MachineConfig.NumSPEs)
	cfg.Rate = 2
	cal, err := Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cal = cal

	seq := cfg
	seq.SeqSim = true
	golden := marshal(t, mustRun(t, seq))
	sharded := cfg
	sharded.Shards = 4
	if got := marshal(t, mustRun(t, sharded)); !bytes.Equal(got, golden) {
		t.Fatalf("faulted sharded run diverged:\n got %s\nwant %s", got, golden)
	}
}

// TestFullFidelityByteIdentical checks verified-dispatch mode: re-running
// the machine behind every dispatch (sequentially inline, or nested in
// the blades' wheels) must not perturb the report at all.
func TestFullFidelityByteIdentical(t *testing.T) {
	base := quickConfig()
	base.Cal = mustCal(t)
	base.Requests = 24 // every dispatch costs a nested machine simulation
	golden := marshal(t, mustRun(t, base))

	ffSeq := base
	ffSeq.SeqSim = true
	ffSeq.FullFidelity = true
	if got := marshal(t, mustRun(t, ffSeq)); !bytes.Equal(got, golden) {
		t.Fatalf("sequential full-fidelity diverged:\n got %s\nwant %s", got, golden)
	}

	ffSh := base
	ffSh.FullFidelity = true
	ffSh.Shards = 4
	if got := marshal(t, mustRun(t, ffSh)); !bytes.Equal(got, golden) {
		t.Fatalf("sharded full-fidelity diverged:\n got %s\nwant %s", got, golden)
	}
}

// BenchmarkPoolEventLoop times the admission/dispatch loop alone (no
// nested dispatch simulations): calibration is shared and the stream is
// long, so per-arrival allocation on the placement and batching paths
// dominates allocs/op. This is the benchmark behind the placeOrder /
// batch-buffer hoists documented in EXPERIMENTS.md.
func BenchmarkPoolEventLoop(b *testing.B) {
	cal, err := sharedCal()
	if err != nil {
		b.Fatal(err)
	}
	cfg := quickConfig()
	cfg.Requests = 512
	cfg.Rate = 2
	cfg.Cal = cal
	cfg.SeqSim = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFullFidelityCatchesStaleCalibration poisons one calibration table
// entry and checks verified dispatch fails the run with the blade's
// divergence instead of silently serving from a stale table.
func TestFullFidelityCatchesStaleCalibration(t *testing.T) {
	cal := mustCal(t)
	poisoned := &Calibration{
		maxBatch: cal.maxBatch,
		services: map[svcKey]svc{},
		geoms:    cal.geoms,
		perBlade: cal.perBlade,
	}
	for k, v := range cal.services {
		poisoned.services[k] = v
	}
	k := svcKey{Scheme: SchemeJob, Tall: false, K: 1}
	v := poisoned.services[k]
	v.Service += sim.Microsecond
	poisoned.services[k] = v

	cfg := quickConfig()
	cfg.Cal = poisoned
	cfg.Requests = 16
	cfg.FullFidelity = true
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("poisoned calibration served without a full-fidelity error")
	}
	if !strings.Contains(err.Error(), "full-fidelity") || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("unexpected error: %v", err)
	}
}
