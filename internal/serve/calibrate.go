package serve

import (
	"fmt"

	"cellport/internal/amdahl"
	"cellport/internal/marvel"
	"cellport/internal/parallel"
	"cellport/internal/sim"
)

// Scheme selects the scheduling scheme a batch is dispatched under — the
// §4 job- vs data-distribution choice the paper's estimator exists to
// make.
type Scheme int

const (
	// SchemeJob is job distribution: each kernel resident on its own SPE
	// (extractions on SPE0-3, replicated detections on SPE4-7), one image
	// at a time — marvel.MultiSPE2.
	SchemeJob Scheme = iota
	// SchemeData is data distribution across the batch: the same kernel
	// placement, but the PPE streams the batch's images through the SPEs
	// with double-buffered preprocessing so image i+1's preprocessing
	// overlaps image i's SPE work — marvel.Pipelined.
	SchemeData
	numSchemes
)

func (s Scheme) String() string {
	if s == SchemeJob {
		return "job-dist"
	}
	return "data-dist"
}

func (s Scheme) scenario() marvel.Scenario {
	if s == SchemeJob {
		return marvel.MultiSPE2
	}
	return marvel.Pipelined
}

// svcKey identifies one measured dispatch configuration.
type svcKey struct {
	Scheme Scheme
	Tall   bool
	K      int
}

// svc is one measured dispatch: the steady-state service time of a
// k-image batch, the one-time warm-up (model load) charged on a blade's
// first dispatch, and whether the run's supervision loop had to degrade
// (retries, redispatches or PPE fallbacks under an armed fault plan).
type svc struct {
	Service  sim.Duration
	Warmup   sim.Duration
	Degraded bool
	DegTime  sim.Duration
}

// geomCal holds one frame geometry's estimator inputs and outputs.
type geomCal struct {
	// RefPerImage is the PPE reference per-image processing time.
	RefPerImage sim.Duration
	// NonKernel is the per-image PPE time outside the five kernels
	// (preprocessing, glue) — the part no SPE scheme can remove.
	NonKernel sim.Duration
	// LaneMax is the slowest extraction+detection lane's estimated SPE
	// time, from the Eq. 3 lane construction.
	LaneMax sim.Duration
	// EstSpeedUp is the Eq. 3 whole-application speed-up estimate for the
	// job-distribution scheme.
	EstSpeedUp float64
	// Conclusive reports whether the estimate is usable (valid kernel
	// fractions and speed-ups); inconclusive geometries make the policy
	// fall back to round-robin.
	Conclusive bool
}

// Calibration is the measured service table plus the Eqs. 1-3 estimator
// state one serve run (or a pair of runs comparing policies) needs. It is
// a pure function of the serve configuration's workload-shaping fields,
// so two runs sharing a Calibration see identical virtual-time behaviour
// to runs that each calibrated privately.
type Calibration struct {
	maxBatch int
	services map[svcKey]svc
	geoms    map[bool]*geomCal
	// perBlade is the estimated per-blade capacity in requests per
	// virtual second at full batch size under the best measured scheme.
	perBlade float64
}

// Conclusive reports whether every calibrated geometry produced a usable
// Eq. 3 estimate.
func (c *Calibration) Conclusive() bool {
	for _, g := range c.geoms {
		if !g.Conclusive {
			return false
		}
	}
	return len(c.geoms) > 0
}

// PerBladeCapacity returns the estimated per-blade throughput ceiling
// (requests per virtual second, standard geometry, full batches).
func (c *Calibration) PerBladeCapacity() float64 { return c.perBlade }

// service returns the measured dispatch record for a key; the key set is
// total over (scheme, seen geometry, 1..maxBatch) by construction.
func (c *Calibration) service(k svcKey) svc { return c.services[k] }

// MaxBatch reports the largest batch size the table was measured at.
func (c *Calibration) MaxBatch() int { return c.maxBatch }

// MeasuredService returns the calibrated (simulated) steady-state
// service time for a k-image batch under a scheme and geometry — the
// table entry the serving loop's arithmetic uses. Zero means the point
// was not calibrated. Exported for the estimator-race harness, which
// compares these virtual-time predictions against real executions of
// the same points.
func (c *Calibration) MeasuredService(s Scheme, tall bool, k int) sim.Duration {
	return c.services[svcKey{Scheme: s, Tall: tall, K: k}].Service
}

// EstimatedService returns the Eqs. 1-3 estimate for the same point
// (zero when the geometry's estimator fit was inconclusive).
func (c *Calibration) EstimatedService(s Scheme, tall bool, k int) sim.Duration {
	return c.estService(s, tall, k)
}

// estService is the estimator's predicted service time for a k-image
// batch under a scheme: job distribution processes images back to back
// (Eq. 3 per image), data distribution overlaps PPE preprocessing of
// image i+1 with SPE work on image i, so only the first image pays both
// serially.
func (c *Calibration) estService(s Scheme, tall bool, k int) sim.Duration {
	g := c.geoms[tall]
	if g == nil || !g.Conclusive {
		return 0
	}
	perImage := g.NonKernel + g.LaneMax
	if s == SchemeJob {
		return sim.Duration(k) * perImage
	}
	overlap := g.NonKernel
	if g.LaneMax > overlap {
		overlap = g.LaneMax
	}
	return perImage + sim.Duration(k-1)*overlap
}

// estBest returns the faster estimated scheme for a k-image batch and
// whether the choice is conclusive (estimates further apart than the
// estimator's resolution). Inconclusive choices fall back to the fixed
// job-distribution default.
func (c *Calibration) estBest(tall bool, k int) (Scheme, sim.Duration, bool) {
	job := c.estService(SchemeJob, tall, k)
	data := c.estService(SchemeData, tall, k)
	if job <= 0 || data <= 0 {
		return SchemeJob, 0, false
	}
	min, max, best := job, data, SchemeJob
	if data < job {
		min, max, best = data, job, SchemeData
	}
	// Within 0.5% the Eq. 3 estimate cannot distinguish the schemes (the
	// estimate's own error against the measured table is an order of
	// magnitude smaller, so this margin is conservative).
	if float64(max-min) < 0.005*float64(min) {
		return SchemeJob, job, false
	}
	return best, min, true
}

// detOpsShare apportions the detection kernel's time across the four
// feature lanes by nominal operation count (the Eq. 3 lane construction
// of §4.2).
func detOpsShare(n, dim int) float64 {
	total := float64(marvel.NumSVCH)*(3*float64(marvel.DimCH)+25) +
		float64(marvel.NumSVCC)*(3*float64(marvel.DimCC)+25) +
		float64(marvel.NumSVEH)*(3*float64(marvel.DimEH)+25) +
		float64(marvel.NumSVTX)*(3*float64(marvel.DimTX)+25)
	return float64(n) * (3*float64(dim) + 25) / total
}

// Calibrate measures the dispatch service table (every scheme × geometry
// × batch size the loop can request) and fits the Eqs. 1-3 estimator
// from a PPE reference run and a single-SPE ported run per geometry. All
// simulations are independent and fan out wheel-per-job over a drained
// ShardedEngine (parallel.RunWheels) bounded by the configured worker
// pool; the assembled table is byte-identical at any parallelism, and
// workcache hits/misses stay deterministic because the job set — not the
// execution order — determines which artifacts are built.
func Calibrate(cfg Config) (*Calibration, error) {
	cfg = cfg.withDefaults()
	geoms := []bool{false}
	if cfg.TallFrac > 0 {
		geoms = append(geoms, true)
	}

	cal := &Calibration{
		maxBatch: cfg.MaxBatch,
		services: map[svcKey]svc{},
		geoms:    map[bool]*geomCal{},
	}

	// One flat job grid: per geometry a reference run and a single-SPE
	// calibration run, then every (scheme, geometry, batch size) point.
	type jobSpec struct {
		tall   bool
		kind   int // 0 = reference, 1 = single-SPE, 2 = service point
		scheme Scheme
		k      int
	}
	var jobs []jobSpec
	for _, tall := range geoms {
		jobs = append(jobs, jobSpec{tall: tall, kind: 0}, jobSpec{tall: tall, kind: 1})
		for s := Scheme(0); s < numSchemes; s++ {
			for k := 1; k <= cfg.MaxBatch; k++ {
				jobs = append(jobs, jobSpec{tall: tall, kind: 2, scheme: s, k: k})
			}
		}
	}
	type jobOut struct {
		ref    *marvel.ReferenceResult
		ported *marvel.PortedResult
	}
	outs, err := parallel.RunWheels(cfg.Parallel, len(jobs), func(i int, _ *sim.Engine) (jobOut, error) {
		j := jobs[i]
		switch j.kind {
		case 0:
			ref, err := cfg.Artifacts.Reference(cfg.MachineConfig.PPEModel, cfg.workload(j.tall, 1))
			return jobOut{ref: ref}, err
		case 1:
			p, err := marvel.RunPorted(cfg.portedConfig(marvel.SingleSPE, j.tall, 1, false))
			return jobOut{ported: p}, err
		default:
			p, err := marvel.RunPorted(cfg.portedConfig(j.scheme.scenario(), j.tall, j.k, true))
			return jobOut{ported: p}, err
		}
	})
	if err != nil {
		return nil, fmt.Errorf("serve: calibration: %w", err)
	}

	refs := map[bool]*marvel.ReferenceResult{}
	singles := map[bool]*marvel.PortedResult{}
	for i, j := range jobs {
		switch j.kind {
		case 0:
			refs[j.tall] = outs[i].ref
		case 1:
			singles[j.tall] = outs[i].ported
		default:
			p := outs[i].ported
			s := svc{Service: p.Total - p.OneTime, Warmup: p.OneTime}
			if rep := p.Faults; rep != nil {
				s.Degraded = rep.Retries > 0 || rep.Redispatches > 0 || rep.Fallbacks > 0
				s.DegTime = rep.DegradedTime
			}
			cal.services[svcKey{Scheme: j.scheme, Tall: j.tall, K: j.k}] = s
		}
	}
	for _, tall := range geoms {
		cal.geoms[tall] = fitEstimator(refs[tall], singles[tall])
	}

	// Estimated per-blade capacity: full batches under the best measured
	// scheme at standard geometry.
	best := cal.services[svcKey{Scheme: SchemeJob, Tall: false, K: cfg.MaxBatch}].Service
	if d := cal.services[svcKey{Scheme: SchemeData, Tall: false, K: cfg.MaxBatch}].Service; d < best {
		best = d
	}
	if best > 0 {
		cal.perBlade = float64(cfg.MaxBatch) / best.Seconds()
	}
	return cal, nil
}

// fitEstimator builds one geometry's Eq. 3 lane estimate from the
// measured kernel coverage (reference run) and kernel speed-ups
// (single-SPE round trips), exactly the §4.2 procedure.
func fitEstimator(ref *marvel.ReferenceResult, single *marvel.PortedResult) *geomCal {
	g := &geomCal{RefPerImage: ref.PerImage}
	cov := ref.KernelCoverage()
	speed := map[marvel.KernelID]float64{}
	var kernelSum sim.Duration
	for _, id := range marvel.KernelIDs {
		if single.KernelTime[id] <= 0 {
			return g // no usable speed-up: inconclusive
		}
		speed[id] = ref.KernelTime[id].Seconds() / single.KernelTime[id].Seconds()
		kernelSum += ref.KernelTime[id]
	}
	g.NonKernel = ref.PerImage - kernelSum
	if g.NonKernel < 0 {
		g.NonKernel = 0
	}
	detShare := map[marvel.KernelID]float64{
		marvel.KCH: detOpsShare(marvel.NumSVCH, marvel.DimCH),
		marvel.KCC: detOpsShare(marvel.NumSVCC, marvel.DimCC),
		marvel.KEH: detOpsShare(marvel.NumSVEH, marvel.DimEH),
		marvel.KTX: detOpsShare(marvel.NumSVTX, marvel.DimTX),
	}
	lane := amdahl.Group{}
	for _, id := range []marvel.KernelID{marvel.KCH, marvel.KCC, marvel.KEH, marvel.KTX} {
		frac := cov[id] + cov[marvel.KCD]*detShare[id]
		ported := cov[id]/speed[id] + cov[marvel.KCD]*detShare[id]/speed[marvel.KCD]
		if frac <= 0 || ported <= 0 {
			return g
		}
		lane = append(lane, amdahl.Kernel{Name: id.String() + "+det", Fraction: frac, SpeedUp: frac / ported})
		if t := sim.FromSeconds(ported * ref.PerImage.Seconds()); t > g.LaneMax {
			g.LaneMax = t
		}
	}
	est, err := amdahl.SpeedUpGrouped([]amdahl.Group{lane})
	if err != nil || est <= 0 {
		return g
	}
	g.EstSpeedUp = est
	g.Conclusive = true
	return g
}
