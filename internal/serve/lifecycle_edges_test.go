package serve

import (
	"testing"

	"cellport/internal/sim"
)

// The transition-edge audit (DESIGN.md §12/§13): every overlapping-plan
// corner of the health state machine is pinned table-driven, directly
// against applyFault on a quiescent pool. What must never happen:
// a restart fire claiming a drain it did not start (double warmup
// recharge on a blade that never restarted), a generation bump leaking
// from a no-op transition, or a crash leaving a pending flag armed.

type edgeStep struct {
	kind bladeEventKind
	at   sim.Time
}

func TestLifecycleTransitionEdges(t *testing.T) {
	cases := []struct {
		name  string
		prep  func(b *blade) // optional state injection before the steps
		steps []edgeStep

		wantHealth         health
		wantCrashes        int
		wantRestarts       int
		wantStalls         int
		wantGen            uint64
		wantWarm           bool
		wantRestartPending bool
		wantParkPending    bool
	}{
		{
			name:       "crash while draining cancels the restart",
			steps:      []edgeStep{{evDrainStart, 10}, {evBladeCrash, 20}, {evRestartFire, 30}},
			wantHealth: healthDown, wantCrashes: 1, wantRestarts: 0, wantWarm: true,
		},
		{
			name:       "crash while warming",
			steps:      []edgeStep{{evDrainStart, 10}, {evRestartFire, 20}, {evBladeCrash, 30}},
			wantHealth: healthDown, wantCrashes: 1, wantRestarts: 1,
		},
		{
			name:       "double crash counts once and keeps one generation bump",
			prep:       func(b *blade) { b.busy = true; b.done = 50 },
			steps:      []edgeStep{{evBladeCrash, 20}, {evBladeCrash, 30}},
			wantHealth: healthDown, wantCrashes: 1, wantGen: 1, wantWarm: true,
		},
		{
			name:       "restart fire on an up blade is a no-op",
			steps:      []edgeStep{{evRestartFire, 10}},
			wantHealth: healthUp, wantRestarts: 0, wantWarm: true,
		},
		{
			name:       "second drain of the same blade is a no-op",
			steps:      []edgeStep{{evDrainStart, 10}, {evDrainStart, 20}, {evRestartFire, 30}},
			wantHealth: healthWarming, wantRestarts: 1,
		},
		{
			name: "restart fire cannot hijack an autoscale drain",
			prep: func(b *blade) {
				b.health = healthDraining
				b.parkPending = true
			},
			steps:      []edgeStep{{evDrainStart, 10}, {evRestartFire, 20}},
			wantHealth: healthDraining, wantRestarts: 0, wantWarm: true,
			wantParkPending: true,
		},
		{
			name:       "double restart fire recharges warmup once",
			steps:      []edgeStep{{evDrainStart, 10}, {evRestartFire, 20}, {evRestartFire, 30}},
			wantHealth: healthWarming, wantRestarts: 1, wantWarm: false,
		},
		{
			name:       "stall on a draining blade is a no-op",
			steps:      []edgeStep{{evDrainStart, 10}, {evStallStart, 20}, {evStallEnd, 30}},
			wantHealth: healthDraining, wantStalls: 0, wantWarm: true,
			wantRestartPending: true,
		},
		{
			name:       "stall end restores warming, not up",
			steps:      []edgeStep{{evDrainStart, 10}, {evRestartFire, 20}, {evStallStart, 30}, {evStallEnd, 40}},
			wantHealth: healthWarming, wantRestarts: 1, wantStalls: 1,
		},
		{
			name:  "autoscale drain arriving mid-stall resumes into draining",
			prep:  func(b *blade) { b.parkPending = true },
			steps: []edgeStep{{evStallStart, 10}, {evStallEnd, 20}},
			// With no queue and no in-flight work the drain parks at the
			// stall end.
			wantHealth: healthParked, wantStalls: 1, wantWarm: false,
		},
		{
			name:       "crash on a parked blade",
			prep:       func(b *blade) { b.health = healthParked; b.warm = false },
			steps:      []edgeStep{{evBladeCrash, 10}},
			wantHealth: healthDown, wantCrashes: 1, wantWarm: false,
		},
		{
			name:       "stall on an idle blade bumps no generation",
			steps:      []edgeStep{{evStallStart, 10}, {evStallEnd, 20}},
			wantHealth: healthUp, wantStalls: 1, wantGen: 0, wantWarm: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := quickConfig().withDefaults()
			cfg.Blades = 1
			p := newPool(cfg, mustCal(t), 0)
			b := p.blades[0]
			// The default pool starts cold; these edges audit a blade
			// mid-run, after its first dispatch warmed it.
			b.warm = true
			if tc.prep != nil {
				tc.prep(b)
			}
			for _, st := range tc.steps {
				p.now = st.at
				p.applyFault(bladeEvent{at: st.at, kind: st.kind, blade: 0, delay: 5})
			}
			if b.health != tc.wantHealth {
				t.Errorf("health = %v, want %v", b.health, tc.wantHealth)
			}
			if b.crashes != tc.wantCrashes {
				t.Errorf("crashes = %d, want %d", b.crashes, tc.wantCrashes)
			}
			if b.restarts != tc.wantRestarts {
				t.Errorf("restarts = %d, want %d", b.restarts, tc.wantRestarts)
			}
			if b.stalls != tc.wantStalls {
				t.Errorf("stalls = %d, want %d", b.stalls, tc.wantStalls)
			}
			if b.gen != tc.wantGen {
				t.Errorf("gen = %d, want %d (generation counter leak)", b.gen, tc.wantGen)
			}
			if b.warm != tc.wantWarm {
				t.Errorf("warm = %v, want %v (warmup recharge audit)", b.warm, tc.wantWarm)
			}
			if b.restartPending != tc.wantRestartPending {
				t.Errorf("restartPending = %v, want %v", b.restartPending, tc.wantRestartPending)
			}
			if b.parkPending != tc.wantParkPending {
				t.Errorf("parkPending = %v, want %v", b.parkPending, tc.wantParkPending)
			}
		})
	}
}
