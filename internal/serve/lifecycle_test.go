package serve

import (
	"bytes"
	"fmt"
	"testing"

	"cellport/internal/fault"
	"cellport/internal/sim"
)

// runSpan estimates the arrival stream's busy window for cfg under the
// shared calibration: the virtual time the offered load needs to deliver
// all requests. Chaos schedules place their triggers inside it.
func runSpan(t *testing.T, cfg Config) sim.Duration {
	t.Helper()
	cal := mustCal(t)
	offered := cfg.Rate * cal.perBlade * float64(cfg.Blades)
	return sim.FromSeconds(float64(cfg.Requests) / offered)
}

func mustPlan(t *testing.T, spec string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// chaosConfig is quickConfig scaled to the acceptance scenario: 8 blades
// under the shared calibration (calibration is per-machine, so blade
// count does not change the table).
func chaosConfig(t *testing.T) Config {
	t.Helper()
	cfg := quickConfig()
	cfg.Blades = 8
	cfg.Requests = 96
	cfg.Cal = mustCal(t)
	return cfg
}

// TestChaosConservation: under seeded rolling-restart schedules the
// ledger still conserves exactly — every request is served or shed with
// an attributed reason — and the lifecycle counters record what fired.
func TestChaosConservation(t *testing.T) {
	cfg := chaosConfig(t)
	span := runSpan(t, cfg)
	for _, seed := range []uint64{1, 7, 42} {
		cfg.Faults = fault.SeededFleet(seed, cfg.Blades, span)
		rep := mustRun(t, cfg)
		checkLedger(t, rep)
		if rep.BladeCrashes == 0 {
			t.Fatalf("seed %d: seeded fleet schedule fired no crash", seed)
		}
		if rep.Rerouted == 0 {
			t.Fatalf("seed %d: chaos run re-routed nothing", seed)
		}
		var perBladeSheds, perBladeReroutes int
		for _, bs := range rep.PerBlade {
			perBladeSheds += bs.ShedRerouted + bs.ShedExhausted
			perBladeReroutes += bs.Rerouted
		}
		if perBladeSheds != rep.ShedRerouted+rep.ShedExhausted {
			t.Fatalf("seed %d: per-blade shed attribution %d != totals %d",
				seed, perBladeSheds, rep.ShedRerouted+rep.ShedExhausted)
		}
		if perBladeReroutes != rep.Rerouted {
			t.Fatalf("seed %d: per-blade reroutes %d != total %d", seed, perBladeReroutes, rep.Rerouted)
		}
	}
}

// TestChaosDeterminismMatrix is the acceptance matrix: a seeded
// blade-fault schedule must serialize byte-identically across
// -shards {0,1,2,8} × -lookahead {on,off} vs the -seqsim reference.
func TestChaosDeterminismMatrix(t *testing.T) {
	cfg := chaosConfig(t)
	cfg.Faults = fault.SeededFleet(7, cfg.Blades, runSpan(t, cfg))

	seq := cfg
	seq.SeqSim = true
	golden := marshal(t, mustRun(t, seq))

	for _, shards := range []int{0, 1, 2, 8} {
		for _, lookahead := range []bool{true, false} {
			run := cfg
			run.Shards = shards
			run.NoLookahead = !lookahead
			name := fmt.Sprintf("shards=%d lookahead=%v", shards, lookahead)
			if got := marshal(t, mustRun(t, run)); !bytes.Equal(got, golden) {
				t.Fatalf("%s diverged from seqsim:\n got %s\nwant %s", name, got, golden)
			}
		}
	}
}

// TestArmedButUnfiredFleetPlan extends the PR-3 invariant to fleet
// scope: a blade plan whose triggers all land past the end of the run
// must leave the report byte-identical to running with no plan at all.
func TestArmedButUnfiredFleetPlan(t *testing.T) {
	cfg := chaosConfig(t)
	golden := marshal(t, mustRun(t, cfg))

	far := 1000 * runSpan(t, cfg)
	armed := cfg
	armed.Faults = &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.BladeCrash, Blade: 0, At: sim.Time(far)},
		{Kind: fault.BladeRestart, Blade: 1, At: sim.Time(far), Drain: sim.Millisecond},
		{Kind: fault.BladeStall, Blade: 2, At: sim.Time(far), Delay: sim.Millisecond},
	}}
	for _, mode := range []struct {
		name string
		mut  func(*Config)
	}{
		{"sharded", func(*Config) {}},
		{"seqsim", func(c *Config) { c.SeqSim = true }},
		{"nolookahead", func(c *Config) { c.NoLookahead = true }},
	} {
		run := armed
		mode.mut(&run)
		if got := marshal(t, mustRun(t, run)); !bytes.Equal(got, golden) {
			t.Fatalf("%s: armed-but-unfired blade plan changed the report:\n got %s\nwant %s", mode.name, got, golden)
		}
	}
}

// TestBladeCrashGoodputBound is the acceptance scenario: killing 1 of 8
// blades mid-run completes or attributably sheds every request, and
// degrades goodput (on-time served) by no more than the lost capacity
// fraction plus a bounded reroute overhead.
func TestBladeCrashGoodputBound(t *testing.T) {
	cfg := chaosConfig(t)
	base := mustRun(t, cfg)
	checkLedger(t, base)

	span := runSpan(t, cfg)
	crashAt := sim.Time(span * 2 / 5)
	chaos := cfg
	chaos.Faults = &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.BladeCrash, Blade: 3, At: crashAt},
	}}
	rep := mustRun(t, chaos)
	checkLedger(t, rep)

	if rep.BladeCrashes != 1 {
		t.Fatalf("crashes fired %d, want 1", rep.BladeCrashes)
	}
	if rep.PerBlade[3].Health != "down" {
		t.Fatalf("blade 3 health %q after crash, want down", rep.PerBlade[3].Health)
	}
	goodBase := base.Served - base.Late
	goodChaos := rep.Served - rep.Late
	if goodBase <= 0 {
		t.Fatalf("degenerate baseline: goodput %d", goodBase)
	}
	// Losing one of eight blades for the tail of the run can cost at
	// most one blade-share of the baseline goodput, plus the requests
	// that were in transit on the dead blade (each re-route or in-flight
	// batch slot can turn one on-time completion into a late or shed
	// one).
	lost := goodBase - goodChaos
	bound := goodBase/cfg.Blades + rep.Rerouted + cfg.MaxBatch
	if lost > bound {
		t.Fatalf("goodput degraded by %d (baseline %d, chaos %d), bound %d",
			lost, goodBase, goodChaos, bound)
	}
}

// TestBladeRestartRecharge: a rolling restart drains the blade, evicts
// what remains, and re-charges warmup — the blade pays the model-library
// load twice and ends the run healthy.
func TestBladeRestartRecharge(t *testing.T) {
	cfg := quickConfig()
	cfg.Cal = mustCal(t)
	span := runSpan(t, cfg)
	cfg.Faults = mustPlan(t, fmt.Sprintf("blade-restart:blade=1,at=%dfs,drain=%dfs",
		span*3/10, span/20))
	rep := mustRun(t, cfg)
	checkLedger(t, rep)
	if rep.BladeRestarts != 1 {
		t.Fatalf("restarts fired %d, want 1", rep.BladeRestarts)
	}
	w := mustCal(t).service(svcKey{Scheme: SchemeJob, Tall: false, K: 1}).Warmup
	bs := rep.PerBlade[1]
	if bs.Restarts != 1 {
		t.Fatalf("blade 1 restarts %d, want 1", bs.Restarts)
	}
	if bs.Warmup != 2*w {
		t.Fatalf("blade 1 warmup %v after restart, want re-charged 2×%v", bs.Warmup, w)
	}
	if h := bs.Health; h != "up" && h != "warming" {
		t.Fatalf("blade 1 health %q after restart, want up/warming", h)
	}
}

// TestBladeStallDelaysInFlight: a stall freezes admissions and pushes
// the in-flight completion by the stall length; the blade recovers to
// its pre-stall state.
func TestBladeStallDelaysInFlight(t *testing.T) {
	cfg := quickConfig()
	cfg.Cal = mustCal(t)
	span := runSpan(t, cfg)
	cfg.Faults = mustPlan(t, fmt.Sprintf("blade-stall:blade=0,at=%dfs,delay=%dfs",
		span*3/10, span/10))
	rep := mustRun(t, cfg)
	checkLedger(t, rep)
	if rep.BladeStalls != 1 {
		t.Fatalf("stalls fired %d, want 1", rep.BladeStalls)
	}
	if rep.PerBlade[0].Stalls != 1 {
		t.Fatalf("blade 0 stalls %d, want 1", rep.PerBlade[0].Stalls)
	}
	if h := rep.PerBlade[0].Health; h != "up" {
		t.Fatalf("blade 0 health %q after stall window, want up", h)
	}
	// The stall must cost something somewhere: either makespan moved or
	// the ledger shifted relative to the fault-free run.
	free := cfg
	free.Faults = nil
	baseline := mustRun(t, free)
	if bytes.Equal(marshal(t, rep), marshal(t, baseline)) {
		t.Fatal("stall run byte-identical to fault-free run: stall had no effect")
	}
}

// TestRerouteBackoffMirrorsSupervision pins the backoff law to the
// supervision loop's: base << (attempt-1), saturating at 16 doublings.
func TestRerouteBackoffMirrorsSupervision(t *testing.T) {
	base := 100 * sim.Microsecond
	cases := []struct {
		attempt int
		want    sim.Duration
	}{
		{1, base}, {2, 2 * base}, {3, 4 * base}, {4, 8 * base},
		{17, base << 16}, {40, base << 16}, {0, base},
	}
	for _, c := range cases {
		if got := rerouteBackoff(base, c.attempt); got != c.want {
			t.Errorf("rerouteBackoff(attempt=%d) = %v, want %v", c.attempt, got, c.want)
		}
	}
}

// TestRetryBudgetExhaustion: with every blade crashing there is nowhere
// left to run; every outstanding request must drain through the re-route
// machinery into an attributed shed, and the run must terminate.
func TestRetryBudgetExhaustion(t *testing.T) {
	cfg := quickConfig()
	cfg.Cal = mustCal(t)
	span := runSpan(t, cfg)
	spec := ""
	for b := 0; b < cfg.Blades; b++ {
		spec += fmt.Sprintf("blade-crash:blade=%d,at=%dfs;", b, span/4)
	}
	cfg.Faults = mustPlan(t, spec)
	rep := mustRun(t, cfg)
	checkLedger(t, rep)
	if rep.BladeCrashes != cfg.Blades {
		t.Fatalf("crashes fired %d, want %d", rep.BladeCrashes, cfg.Blades)
	}
	for _, bs := range rep.PerBlade {
		if bs.Health != "down" {
			t.Fatalf("blade %d health %q, want down", bs.Blade, bs.Health)
		}
	}
	if rep.ShedRejected == 0 {
		t.Fatal("arrivals into a dead fleet were not rejected")
	}
}

// TestBladeFaultValidation: fleet faults must name blades of the pool.
func TestBladeFaultValidation(t *testing.T) {
	cfg := quickConfig()
	cfg.Cal = mustCal(t)
	cfg.Faults = mustPlan(t, "blade-crash:blade=99,at=5ms")
	if _, err := Run(cfg); err == nil {
		t.Fatal("out-of-range blade index accepted")
	}
}
