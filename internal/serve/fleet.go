package serve

import (
	"fmt"

	"cellport/internal/trace"
)

// Fleet mode (DESIGN.md §13): the run's blades are partitioned into
// Config.Pools independent pools of Config.Blades blades each. Each pool
// keeps its own admission rotation and queue set; calibration tables and
// the wheel set are shared across the fleet (one wheel per blade, as in
// the single-pool run). A router places each arrival on a pool by
// consistent hashing of its geometry key, with an estimator-aware
// override toward the pool with the earliest estimated finish frontier;
// when no active pool has room the request is shed globally
// (shed_global — the fleet ledger's sixth term). A deterministic
// autoscaler (autoscale.go) activates and drains pools from virtual-time
// load signals, driving drains through the blade lifecycle machinery.
//
// Everything here is coordinator state: routing, scaling, and the ring
// are only touched while the wheels are quiescent, so fleet runs stay
// byte-identical across -seqsim, -shards N, -lookahead, and -parallel.

// poolShard is one pool of the fleet: a contiguous pool-major slice of
// the run's blades plus the pool-local admission rotation.
type poolShard struct {
	id     int
	blades []*blade
	rr     int
	active bool
	routed int // arrivals and re-admissions the router sent here
}

// fleetState is the router + autoscaler layer over the pool's blades.
type fleetState struct {
	pools  []*poolShard
	ring   []ringEntry
	scaler *autoscaler

	visited []bool // ring-walk scratch, one slot per pool

	shedGlobal int // requests shed by global backpressure (no candidate pool)
	overrides  int // estimator frontier overrides of the hash placement
	scaleUps   int
	scaleDowns int
	activeMin  int // fewest simultaneously active pools observed
}

func newFleet(p *pool) *fleetState {
	per := p.cfg.Blades
	n := p.cfg.Pools
	f := &fleetState{
		pools:     make([]*poolShard, n),
		visited:   make([]bool, n),
		activeMin: n,
	}
	for i := range f.pools {
		f.pools[i] = &poolShard{
			id:     i,
			blades: p.blades[i*per : (i+1)*per],
			active: true,
		}
	}
	f.rebuildRing()
	return f
}

// activeCount reports how many pools are currently active.
func (f *fleetState) activeCount() int {
	n := 0
	for _, pl := range f.pools {
		if pl.active {
			n++
		}
	}
	return n
}

// poolHasRoom reports whether pl can take one more request: it is active
// and some admittable blade has queue space. Router candidacy predicate.
func (p *pool) poolHasRoom(pl *poolShard) bool {
	if !pl.active {
		return false
	}
	for _, b := range pl.blades {
		if b.health.admittable() && len(b.queue) < p.cfg.MaxQueue {
			return true
		}
	}
	return false
}

// admitFleet is fleet-mode admission: route to a pool, then place within
// it through the normal per-pool policy order. The router guarantees the
// chosen pool has room, so the inner admission cannot fail; the
// defensive shed keeps the ledger conserved even if that invariant ever
// broke.
func (p *pool) admitFleet(r Request) {
	pl := p.routePool(r)
	if pl == nil {
		p.fleet.shedGlobal++
		if p.ctr != nil {
			p.ctr.Instant(coordLane, p.now, fmt.Sprintf("shed-global req %d (fleet backpressure)", r.ID))
		}
		return
	}
	pl.routed++
	order := p.placeOrderIn(r, pl.blades, &pl.rr)
	if p.admitInto(r, order) {
		return
	}
	p.shedRejected++
	if len(order) > 0 {
		first := order[0]
		trace.RecordInstant(first.tr, first.lane, p.now, fmt.Sprintf("shed-rejected req %d", r.ID))
	}
}
