package serve

import (
	"fmt"
	"sort"

	"cellport/internal/marvel"
	"cellport/internal/sim"
	"cellport/internal/trace"
)

// blade is one serving Cell blade: a bounded admission queue, the
// in-flight dispatch (if any), and the blade-local slice of the run's
// accounting. The blade's machine itself is not held here — dispatch
// timing comes from the calibrated service table, which was measured on
// a machine identical to the one this blade models (FullFidelity re-runs
// that machine per dispatch to prove it).
//
// All mutable state below the wheel field is owned by the blade: in a
// sharded run it is touched only by events on this blade's wheel, or by
// the coordinator while every wheel is quiescent at an epoch barrier.
// That ownership is what lets the wheels run concurrently without locks,
// and the blade-index merge in report() is what keeps the result
// byte-identical to the sequential loop.
type blade struct {
	id    int
	lane  string
	wheel *sim.Engine // this blade's event wheel (nil in the sequential loop)

	queue []Request
	spare []Request // recycled batch buffer (capacity MaxBatch, reused across dispatches)
	busy  bool
	warm  bool
	start sim.Time // current dispatch start (batch work, after any warmup)
	done  sim.Time // current dispatch completion
	cur   []Request
	deg   bool // current dispatch runs degraded (supervised recovery)

	// Lifecycle state (DESIGN.md §12). health gates admission; gen
	// invalidates completion events scheduled for dispatches that a kill
	// or stall subsequently rewrote (the stale closure finds a newer
	// generation and returns untouched); stallRestore remembers the state
	// a transient stall must restore.
	health       health
	gen          uint64
	stallRestore health
	// restartPending pairs a fault drain with its restart fire so the
	// fire can't claim an unrelated drain; parkPending marks an
	// autoscale drain, completed by maybePark once the blade is idle
	// and empty.
	restartPending bool
	parkPending    bool

	dispatches int
	requests   int
	busyTime   sim.Duration
	warmupTime sim.Duration

	// Blade-local run accounting, merged in blade-index order by report().
	served          int
	late            int
	degraded        int
	shedExpired     int
	shedRerouted    int // evicted, backoff overshot the deadline
	shedExhausted   int // evicted, retry budget exhausted
	rerouted        int // evictions sent back through admission
	crashes         int
	restarts        int
	stalls          int
	batches         int
	batchRequests   int
	schemeFallbacks int
	schemeBatches   [numSchemes]int
	latencies       []sim.Duration
	lastDone        sim.Time

	verifyErr error // first FullFidelity divergence on this blade

	tr  trace.Tracer
	rec *trace.Recorder
}

// pool is the deterministic serving event loop: a virtual clock advanced
// strictly by arrival and completion events. Completions at a timestamp
// are processed before arrivals at the same timestamp; simultaneous
// completions resolve by blade index (trivially in the sequential loop,
// and by construction in the sharded run, where same-timestamp
// completions on different wheels touch only disjoint blade state).
//
// Admission state (rr, shedRejected, placement fallbacks, the placeOrder
// scratch buffers) belongs to the coordinator alone: it is only touched
// while the wheels are quiescent.
type pool struct {
	cfg      Config
	cal      *Calibration
	deadline sim.Duration
	blades   []*blade
	rr       int
	now      sim.Time
	sharded  bool

	// fleet is the multi-pool routing/autoscaling layer (DESIGN.md §13);
	// nil selects the classic single-pool admission path. In fleet mode
	// p.blades still holds every blade (pool-major, blade-index order) —
	// the wheels, the ledger merge, and the lifecycle machinery are
	// shared — while fleet.pools partitions them for routing.
	fleet *fleetState

	// lastTouched is the wheel index the most recent admit dispatched or
	// queued into (−1 when the request was shed), letting the lookahead
	// coordinator refresh its horizon in O(1) via sim.HorizonAfter.
	lastTouched int

	shedRejected   int
	placeFallbacks int

	// Lifecycle coordinator state: the compiled blade-fault schedule
	// (sorted, consumed via fi) and the pending re-admissions heap. Both
	// are coordinator-only, like the admission state above.
	faultSched []bladeEvent
	fi         int
	reroutes   rerouteHeap
	rerouteSeq uint64

	// Coordinator-side synchronization accounting (sharded run only):
	// epochs/barriers from the engine, windowAdmits counts arrivals the
	// lookahead coordinator committed without paying a barrier, and
	// barrierWait is the engine's accumulated virtual idle time.
	epochs       uint64
	barriers     uint64
	windowAdmits int
	barrierWait  sim.Duration

	// ctr records coordinator-lane trace events (one instant per epoch
	// barrier) when Config.Instrument is set; nil otherwise.
	ctr *trace.Recorder

	// placeOrder scratch, hoisted out of the admission hot path.
	ordBuf   []*blade
	scoreBuf []sim.Duration
	idxBuf   []int
}

// coordLane is the trace lane carrying coordinator events (epoch
// barriers), distinct from the per-blade lanes.
const coordLane = "coordinator"

func newPool(cfg Config, cal *Calibration, deadline sim.Duration) *pool {
	total := cfg.Blades
	if cfg.Pools > 0 {
		// Fleet mode: Blades is the per-pool size, the run owns
		// Pools × Blades blades in pool-major order.
		total = cfg.Blades * cfg.Pools
	}
	p := &pool{
		cfg:         cfg,
		cal:         cal,
		deadline:    deadline,
		lastTouched: -1,
		ordBuf:      make([]*blade, total),
		scoreBuf:    make([]sim.Duration, total),
		idxBuf:      make([]int, total),
	}
	if cfg.Instrument {
		p.ctr = trace.NewRecorder()
	}
	for i := 0; i < total; i++ {
		b := &blade{
			id:    i,
			lane:  fmt.Sprintf("blade%d", i),
			spare: make([]Request, 0, cfg.MaxBatch),
			tr:    trace.Nop{},
		}
		if cfg.Instrument {
			b.rec = trace.NewRecorder()
			b.tr = b.rec
		}
		p.blades = append(p.blades, b)
	}
	if cfg.Pools > 0 {
		p.fleet = newFleet(p)
	}
	return p
}

// run plays the sequential event loop over the arrival stream until every
// admitted request has completed or been shed. It is the reference
// semantics the sharded run must reproduce byte-for-byte.
//
// Event priority at equal timestamps: completions, then lifecycle
// faults, then re-admissions of evicted requests, then fresh arrivals —
// the same total order the sharded coordinator derives from inclusive
// RunUntil plus coordClass. The run ends when no completion, re-route,
// or arrival remains; lifecycle faults scheduled past that point never
// fire (armed-but-unfired, see faultEligible).
func (p *pool) run(reqs []Request) {
	ai := 0
	for {
		nextArr := sim.Never
		if ai < len(reqs) {
			nextArr = reqs[ai].Arrival
		}
		db := p.earliestBusy()
		doneT := sim.Never
		if db != nil {
			doneT = db.done
		}
		nextRer := sim.Never
		if len(p.reroutes) > 0 {
			nextRer = p.reroutes[0].at
		}
		if doneT == sim.Never && nextRer == sim.Never && nextArr == sim.Never {
			return
		}
		nextFault := sim.Never
		if p.fi < len(p.faultSched) {
			nextFault = p.faultSched[p.fi].at
		}
		nextTick := p.nextTick()
		switch {
		case doneT <= nextFault && doneT <= nextTick && doneT <= nextRer && doneT <= nextArr:
			p.now = doneT
			p.complete(db)
		case nextFault <= nextTick && nextFault <= nextRer && nextFault <= nextArr:
			p.now = nextFault
			p.applyFault(p.faultSched[p.fi])
			p.fi++
		case nextTick <= nextRer && nextTick <= nextArr:
			p.now = nextTick
			p.autoscaleTick()
		case nextRer <= nextArr:
			p.now = nextRer
			p.admit(p.popReroute())
		default:
			p.now = nextArr
			p.admit(reqs[ai])
			ai++
		}
	}
}

// runSharded plays the identical semantics on one event wheel per blade.
// With lookahead off, each distinct arrival timestamp is an epoch
// barrier: the coordinator admits that instant's arrivals alone, in
// stream order, exactly as the sequential loop would. RunUntil is
// inclusive of the barrier time, so completions at an arrival's
// timestamp still precede the admission, matching the sequential loop's
// tie-break.
//
// With lookahead on, the coordinator exploits the conservative horizon
// (ShardedEngine.Horizon — the earliest pending event across all
// wheels): while the wheels are quiescent, any arrival strictly below
// the horizon can be admitted immediately, because no wheel event — in
// particular no completion — exists at or before its timestamp, so the
// per-arrival schedule would have admitted it into exactly this pool
// state anyway. Admission itself schedules completion events (shrinking
// the horizon), so the horizon is re-read after every commit. Only the
// first arrival at or past the horizon forces a barrier; arrivals
// sharing that barrier's timestamp are then admitted after the epoch
// runs, preserving the completions-before-same-instant-arrivals rule.
// The two schedules produce identical per-wheel event sequences, so the
// reports are byte-identical — lookahead only deletes barriers whose
// ordering constraints were vacuous.
//
// Lifecycle faults are coordinator-observed events: a planned blade
// fault is always a barrier (killing a blade reads and writes state
// across the pool, so the wheels must be quiescent), and the engine
// fence (ShardedEngine.SetFence) pins the horizon at the next scheduled
// fault instant, so lookahead windows structurally cannot admit past a
// fault even before any wheel knows about it. Re-admissions of evicted
// requests window-admit exactly like arrivals when strictly below the
// horizon. Same-instant ordering matches the sequential loop: wheel
// completions run inside the epoch (RunUntil is inclusive), then the
// barrier applies faults, re-admissions, and arrivals in coordClass
// order.
func (p *pool) runSharded(reqs []Request, workers int, lookahead bool) error {
	sh := sim.NewSharded(len(p.blades), workers)
	for i, b := range p.blades {
		b.wheel = sh.Wheel(i)
	}
	p.sharded = true
	ai := 0
	p.setFence(sh)
	err := sh.Run(
		func() (sim.Time, bool) {
			h := sh.Horizon()
			for {
				t, class, ok := p.nextCoord(reqs, ai)
				if !ok {
					return 0, false
				}
				// Coordinator-scheduled instants (faults, autoscale
				// ticks) are always barriers: they read and write state
				// across the pool, so the wheels must be quiescent.
				if !lookahead || class == coordFault || class == coordTick || t >= h {
					return t, true
				}
				// p.now drives placement scoring and deadline shedding,
				// so it must track each admitted event exactly as a
				// barrier at that instant would have set it.
				p.now = t
				if class == coordReroute {
					p.admit(p.popReroute())
				} else {
					p.admit(reqs[ai])
					ai++
				}
				p.windowAdmits++
				// Admission touches at most one wheel, so the horizon
				// refresh is O(1) instead of an all-wheels rescan.
				if p.lastTouched >= 0 {
					h = sh.HorizonAfter(p.lastTouched, h)
				}
			}
		},
		func(t sim.Time) {
			p.barriers++
			if p.ctr != nil {
				p.ctr.Instant(coordLane, t, "epoch barrier")
			}
			p.now = t
			for p.fi < len(p.faultSched) && p.faultSched[p.fi].at == t {
				if !p.faultEligible(reqs, ai) {
					// The last request resolved during this epoch: the
					// run is over and every remaining fault stays
					// armed-but-unfired, as in the sequential loop.
					p.fi = len(p.faultSched)
					break
				}
				p.applyFault(p.faultSched[p.fi])
				p.fi++
			}
			for p.nextTick() == t {
				if !p.faultEligible(reqs, ai) {
					// Run over: the autoscaler stops sampling, exactly as
					// the sequential loop returns before a trailing tick.
					p.fleet.scaler.next = sim.Never
					break
				}
				p.autoscaleTick()
			}
			p.setFence(sh)
			for len(p.reroutes) > 0 && p.reroutes[0].at == t {
				p.admit(p.popReroute())
			}
			for ai < len(reqs) && reqs[ai].Arrival == t {
				p.admit(reqs[ai])
				ai++
			}
		},
	)
	p.epochs = sh.Epochs()
	p.barrierWait = sh.BarrierWait()
	return err
}

// setFence pins the engine fence at the earliest coordinator-scheduled
// instant — the next planned fault or autoscale tick — so lookahead
// windows structurally cannot admit past it even before any wheel knows
// about it.
func (p *pool) setFence(sh *sim.ShardedEngine) {
	fence := sim.Never
	if p.fi < len(p.faultSched) {
		fence = p.faultSched[p.fi].at
	}
	if tick := p.nextTick(); tick < fence {
		fence = tick
	}
	sh.SetFence(fence)
}

// earliestBusy returns the busy blade finishing first (lowest index on
// ties), or nil when the pool is idle.
func (p *pool) earliestBusy() *blade {
	var best *blade
	for _, b := range p.blades {
		if b.busy && (best == nil || b.done < best.done) {
			best = b
		}
	}
	return best
}

// estOne is the estimator's per-request service estimate (a lone
// dispatch), used to score queue backlogs and deadline feasibility. When
// the Eq. 3 estimate is inconclusive it falls back to the measured
// single-request service, which the calibration table always has.
func (p *pool) estOne(r Request) sim.Duration {
	if est := p.cal.estService(SchemeJob, r.Tall, 1); est > 0 {
		return est
	}
	return p.cal.service(svcKey{Scheme: SchemeJob, Tall: r.Tall, K: 1}).Service
}

// bladeScore is the estimator's finish frontier for one blade: the
// remaining in-flight work, plus warmup for a cold or restarted blade,
// plus the estimated backlog of its queue. Both the per-pool placement
// order and the fleet router's frontier comparison rank by it.
// Coordinator-only (reads cross-blade state through p.now).
func (p *pool) bladeScore(b *blade) sim.Duration {
	var s sim.Duration
	if b.busy {
		s += b.done.Sub(p.now)
	}
	if !b.warm {
		s += p.cal.service(svcKey{Scheme: SchemeJob, Tall: false, K: 1}).Warmup
	}
	for _, q := range b.queue {
		s += p.estOne(q)
	}
	return s
}

// placeOrder ranks the whole pool's admittable blades (the classic
// single-pool path; the fleet router ranks within the routed pool via
// placeOrderIn).
func (p *pool) placeOrder(r Request) []*blade {
	return p.placeOrderIn(r, p.blades, &p.rr)
}

// placeOrderIn ranks the admittable blades of one candidate set for
// admitting r — lifecycle health is the circuit breaker: draining,
// stalled, parked, and dead blades never appear in the order. The
// estimator policy orders by earliest estimated finish (bladeScore); the
// round-robin policy — and the estimator when its scores cannot separate
// the blades — uses plain rotation over rr, which belongs to the
// candidate set (the pool shard in fleet mode). With every blade healthy
// the order is exactly the pre-lifecycle one. The returned slice is pool
// scratch, valid until the next call (coordinator-only); it is empty
// when no blade is admittable.
func (p *pool) placeOrderIn(r Request, blades []*blade, rr *int) []*blade {
	n := len(blades)
	rot := func() []*blade {
		out := p.ordBuf[:0]
		for i := 0; i < n; i++ {
			if b := blades[(*rr+i)%n]; b.health.admittable() {
				out = append(out, b)
			}
		}
		*rr = (*rr + 1) % n
		return out
	}
	if p.cfg.Policy == PolicyRoundRobin || !p.cal.Conclusive() {
		return rot()
	}
	scores := p.scoreBuf[:n]
	idx := p.idxBuf[:0]
	for i, b := range blades {
		if !b.health.admittable() {
			continue
		}
		scores[i] = p.bladeScore(b)
		idx = append(idx, i)
	}
	if len(idx) == 0 {
		return p.ordBuf[:0]
	}
	min, max := scores[idx[0]], scores[idx[0]]
	for _, i := range idx[1:] {
		if scores[i] < min {
			min = scores[i]
		}
		if scores[i] > max {
			max = scores[i]
		}
	}
	if min == max {
		// All admittable blades look identical to the estimator:
		// inconclusive, so rotate to avoid piling onto the lowest index.
		p.placeFallbacks++
		return rot()
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	out := p.ordBuf[:len(idx)]
	for i, j := range idx {
		out[i] = blades[j]
	}
	return out
}

// admitInto places r on the first blade of order with queue room,
// dispatching immediately if that blade is idle, and reports whether
// the request was admitted. The touched wheel is recorded for the
// lookahead coordinator's O(1) horizon refresh.
func (p *pool) admitInto(r Request, order []*blade) bool {
	for _, b := range order {
		if len(b.queue) < p.cfg.MaxQueue {
			b.queue = append(b.queue, r)
			p.lastTouched = b.id
			if !b.busy {
				p.dispatch(b, p.now)
			}
			return true
		}
	}
	return false
}

// admit places one request (a fresh arrival or a re-routed eviction) on
// the first blade in policy preference order with queue room,
// dispatching immediately if that blade is idle. Requests finding every
// candidate queue full — or no admittable blade at all — are shed
// (backpressure). In fleet mode the router first picks the pool
// (consistent hashing with estimator override), and exhausted candidacy
// is global backpressure (shed_global). Admission always runs on the
// coordinator: in the sharded run the wheels are quiescent at the
// barrier, so the synchronous dispatch here observes exactly the state
// the sequential loop would.
func (p *pool) admit(r Request) {
	p.lastTouched = -1
	if p.fleet != nil {
		p.admitFleet(r)
		return
	}
	order := p.placeOrder(r)
	if p.admitInto(r, order) {
		return
	}
	p.shedRejected++
	if len(order) > 0 {
		first := order[0]
		trace.RecordInstant(first.tr, first.lane, p.now, fmt.Sprintf("shed-rejected req %d", r.ID))
	} else if p.ctr != nil {
		p.ctr.Instant(coordLane, p.now, fmt.Sprintf("shed-rejected req %d (no admittable blade)", r.ID))
	}
}

// dispatch sheds queued requests that can no longer meet their deadline,
// coalesces the head-compatible requests into one batch, picks the
// scheduling scheme, and starts the dispatch on b at virtual time now.
// It runs either on the coordinator (admission to an idle blade) or on
// b's own wheel (completion-triggered redispatch), so it must only touch
// b and immutable pool state.
func (p *pool) dispatch(b *blade, now sim.Time) {
	// A request that cannot finish by its deadline even if dispatched
	// alone right now is hopeless: shed it instead of wasting a blade.
	keep := b.queue[:0]
	for _, r := range b.queue {
		if r.Deadline != sim.Never && now.Add(p.estOne(r)) > r.Deadline {
			b.shedExpired++
			trace.RecordInstant(b.tr, b.lane, now, fmt.Sprintf("shed-expired req %d", r.ID))
			continue
		}
		keep = append(keep, r)
	}
	b.queue = keep
	if len(b.queue) == 0 {
		return
	}

	// Coalesce: the head request plus every same-geometry request behind
	// it, in arrival order, up to the batch bound. The batch buffer is
	// the blade's recycled spare (capacity MaxBatch), so steady-state
	// dispatch allocates nothing.
	tall := b.queue[0].Tall
	batch := b.spare[:0]
	rest := b.queue[:0]
	for _, r := range b.queue {
		if r.Tall == tall && len(batch) < p.cfg.MaxBatch {
			batch = append(batch, r)
		} else {
			rest = append(rest, r)
		}
	}
	b.queue = rest

	scheme := SchemeJob
	if p.cfg.Policy == PolicyEstimator && p.cal.Conclusive() {
		if s, _, ok := p.cal.estBest(tall, len(batch)); ok {
			scheme = s
		} else {
			b.schemeFallbacks++ // estimate can't separate the schemes: job-distribution default
		}
	}

	s := p.cal.service(svcKey{Scheme: scheme, Tall: tall, K: len(batch)})
	start := now
	if !b.warm {
		// A restarted blade comes back cold, so warmup can recur;
		// warmupTime accumulates every charge.
		b.warm = true
		b.warmupTime += s.Warmup
		b.tr.Span(b.lane, start, start.Add(s.Warmup), trace.KindIO, "warmup: model library load")
		start = start.Add(s.Warmup)
	}
	b.busy = true
	b.start = start
	b.done = start.Add(s.Service)
	b.cur = batch
	b.deg = s.Degraded
	b.dispatches++
	b.batches++
	b.batchRequests += len(batch)
	b.schemeBatches[scheme]++
	geom := ""
	if tall {
		geom = " tall"
	}
	b.tr.Span(b.lane, start, b.done, trace.KindCompute,
		fmt.Sprintf("batch#%d ×%d %s%s", b.dispatches, len(batch), scheme, geom))

	if p.cfg.FullFidelity {
		k := len(batch)
		if b.wheel != nil {
			// Scheduled before the completion event at the same instant,
			// so the wheel's FIFO lane runs the verification first — and,
			// crucially, inside the wheel's goroutine, which is where the
			// sharded run's real parallel work comes from.
			b.wheel.At(b.done, func() { p.verifyDispatch(b, scheme, tall, k) })
		} else {
			p.verifyDispatch(b, scheme, tall, k)
		}
	}
	p.scheduleCompletion(b)
}

// scheduleCompletion schedules b's current dispatch completion on its
// wheel (no-op in the sequential loop, which polls earliestBusy). The
// closure captures the dispatch generation: a kill or stall that rewrote
// the dispatch bumps b.gen, so the stale event fires, finds a newer
// generation, and returns without touching the ledger.
func (p *pool) scheduleCompletion(b *blade) {
	if b.wheel == nil {
		return
	}
	gen := b.gen
	b.wheel.At(b.done, func() {
		if b.gen == gen {
			p.complete(b)
		}
	})
}

// verifyDispatch re-runs the full machine simulation behind one dispatch
// and cross-checks it against the calibration table entry the event loop
// charged. The nested run is a pure function of its config, so any
// divergence means the table no longer describes the machine. Only the
// first divergence per blade is kept.
func (p *pool) verifyDispatch(b *blade, scheme Scheme, tall bool, k int) {
	if b.verifyErr != nil {
		return
	}
	res, err := marvel.RunPorted(p.cfg.portedConfig(scheme.scenario(), tall, k, true))
	if err != nil {
		b.verifyErr = fmt.Errorf("serve: blade %d: full-fidelity dispatch %s/tall=%v/k=%d: %w",
			b.id, scheme, tall, k, err)
		return
	}
	got := svc{Service: res.Total - res.OneTime, Warmup: res.OneTime}
	if rep := res.Faults; rep != nil {
		got.Degraded = rep.Retries > 0 || rep.Redispatches > 0 || rep.Fallbacks > 0
		got.DegTime = rep.DegradedTime
	}
	want := p.cal.service(svcKey{Scheme: scheme, Tall: tall, K: k})
	if got != want {
		b.verifyErr = fmt.Errorf("serve: blade %d: full-fidelity dispatch %s/tall=%v/k=%d diverged from calibration: got %+v want %+v",
			b.id, scheme, tall, k, got, want)
	}
}

// firstVerifyErr returns the lowest-blade-index FullFidelity divergence,
// if any — a deterministic pick regardless of wheel scheduling.
func (p *pool) firstVerifyErr() error {
	for _, b := range p.blades {
		if b.verifyErr != nil {
			return b.verifyErr
		}
	}
	return nil
}

// complete retires b's in-flight batch, accounts per-request latency and
// deadline outcomes on the blade, and immediately redispatches if work
// is queued. In the sharded run it fires as an event on b's wheel, so it
// derives its own time from the dispatch record rather than the
// coordinator clock.
func (p *pool) complete(b *blade) {
	t := b.done
	for _, r := range b.cur {
		b.served++
		b.latencies = append(b.latencies, t.Sub(r.Arrival))
		if r.Deadline != sim.Never && t > r.Deadline {
			b.late++
		}
		if b.deg {
			b.degraded++
		}
	}
	b.requests += len(b.cur)
	b.busyTime += t.Sub(b.start)
	if t > b.lastDone {
		b.lastDone = t
	}
	b.busy = false
	b.spare = b.cur[:0]
	b.cur = nil
	if b.health == healthWarming {
		// First completed dispatch after a restart: warmed and proven.
		b.health = healthUp
	}
	p.dispatch(b, t)
	// An autoscale-drained blade parks once its queue is served out.
	// maybePark touches only blade-owned state, so it is safe here on
	// the blade's own wheel.
	p.maybePark(b, t)
}
