package serve

import (
	"fmt"
	"sort"

	"cellport/internal/sim"
	"cellport/internal/trace"
)

// blade is one serving Cell blade: a bounded admission queue plus the
// in-flight dispatch, if any. The blade's machine itself is not held
// here — dispatch timing comes from the calibrated service table, which
// was measured on a machine identical to the one this blade models.
type blade struct {
	id   int
	lane string

	queue []Request
	busy  bool
	warm  bool
	start sim.Time // current dispatch start (batch work, after any warmup)
	done  sim.Time // current dispatch completion
	cur   []Request
	deg   bool // current dispatch runs degraded (supervised recovery)

	dispatches int
	requests   int
	busyTime   sim.Duration
	warmupTime sim.Duration

	tr  trace.Tracer
	rec *trace.Recorder
}

// pool is the deterministic serving event loop: a virtual clock advanced
// strictly by arrival and completion events. Completions at a timestamp
// are processed before arrivals at the same timestamp; simultaneous
// completions resolve by blade index.
type pool struct {
	cfg      Config
	cal      *Calibration
	deadline sim.Duration
	blades   []*blade
	rr       int
	now      sim.Time

	served        int
	late          int
	degraded      int
	shedRejected  int
	shedExpired   int
	batches       int
	batchRequests int
	fallbacks     int
	schemeBatches map[string]int
	latencies     []sim.Duration
	lastDone      sim.Time
}

func newPool(cfg Config, cal *Calibration, deadline sim.Duration) *pool {
	p := &pool{cfg: cfg, cal: cal, deadline: deadline, schemeBatches: map[string]int{}}
	for i := 0; i < cfg.Blades; i++ {
		b := &blade{id: i, lane: fmt.Sprintf("blade%d", i), tr: trace.Nop{}}
		if cfg.Instrument {
			b.rec = trace.NewRecorder()
			b.tr = b.rec
		}
		p.blades = append(p.blades, b)
	}
	return p
}

// run plays the event loop over the arrival stream until every admitted
// request has completed or been shed.
func (p *pool) run(reqs []Request) {
	ai := 0
	for {
		nextArr := sim.Never
		if ai < len(reqs) {
			nextArr = reqs[ai].Arrival
		}
		db := p.earliestBusy()
		doneT := sim.Never
		if db != nil {
			doneT = db.done
		}
		if doneT == sim.Never && nextArr == sim.Never {
			return
		}
		if doneT <= nextArr {
			p.now = doneT
			p.complete(db)
		} else {
			p.now = nextArr
			p.admit(reqs[ai])
			ai++
		}
	}
}

// earliestBusy returns the busy blade finishing first (lowest index on
// ties), or nil when the pool is idle.
func (p *pool) earliestBusy() *blade {
	var best *blade
	for _, b := range p.blades {
		if b.busy && (best == nil || b.done < best.done) {
			best = b
		}
	}
	return best
}

// estOne is the estimator's per-request service estimate (a lone
// dispatch), used to score queue backlogs and deadline feasibility. When
// the Eq. 3 estimate is inconclusive it falls back to the measured
// single-request service, which the calibration table always has.
func (p *pool) estOne(r Request) sim.Duration {
	if est := p.cal.estService(SchemeJob, r.Tall, 1); est > 0 {
		return est
	}
	return p.cal.service(svcKey{Scheme: SchemeJob, Tall: r.Tall, K: 1}).Service
}

// placeOrder ranks the blades for admitting r. The estimator policy
// orders by earliest estimated finish (remaining in-flight work plus the
// estimated backlog of queued requests); the round-robin policy — and
// the estimator when its scores cannot separate the blades — uses plain
// rotation.
func (p *pool) placeOrder(r Request) []*blade {
	n := len(p.blades)
	rot := func() []*blade {
		out := make([]*blade, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, p.blades[(p.rr+i)%n])
		}
		p.rr = (p.rr + 1) % n
		return out
	}
	if p.cfg.Policy == PolicyRoundRobin || !p.cal.Conclusive() {
		return rot()
	}
	scores := make([]sim.Duration, n)
	for i, b := range p.blades {
		var s sim.Duration
		if b.busy {
			s += b.done.Sub(p.now)
		}
		if !b.warm {
			s += p.cal.service(svcKey{Scheme: SchemeJob, Tall: false, K: 1}).Warmup
		}
		for _, q := range b.queue {
			s += p.estOne(q)
		}
		scores[i] = s
	}
	min, max := scores[0], scores[0]
	for _, s := range scores[1:] {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if min == max {
		// All blades look identical to the estimator: inconclusive, so
		// rotate to avoid piling onto blade 0.
		p.fallbacks++
		return rot()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	out := make([]*blade, n)
	for i, j := range idx {
		out[i] = p.blades[j]
	}
	return out
}

// admit places one arrival on the first blade in policy preference order
// with queue room, dispatching immediately if that blade is idle.
// Arrivals finding every candidate queue full are shed (backpressure).
func (p *pool) admit(r Request) {
	order := p.placeOrder(r)
	for _, b := range order {
		if len(b.queue) < p.cfg.MaxQueue {
			b.queue = append(b.queue, r)
			if !b.busy {
				p.dispatch(b)
			}
			return
		}
	}
	p.shedRejected++
	first := order[0]
	trace.RecordInstant(first.tr, first.lane, p.now, fmt.Sprintf("shed-rejected req %d", r.ID))
}

// dispatch sheds queued requests that can no longer meet their deadline,
// coalesces the head-compatible requests into one batch, picks the
// scheduling scheme, and starts the dispatch on b.
func (p *pool) dispatch(b *blade) {
	// A request that cannot finish by its deadline even if dispatched
	// alone right now is hopeless: shed it instead of wasting a blade.
	keep := b.queue[:0]
	for _, r := range b.queue {
		if r.Deadline != sim.Never && p.now.Add(p.estOne(r)) > r.Deadline {
			p.shedExpired++
			trace.RecordInstant(b.tr, b.lane, p.now, fmt.Sprintf("shed-expired req %d", r.ID))
			continue
		}
		keep = append(keep, r)
	}
	b.queue = keep
	if len(b.queue) == 0 {
		return
	}

	// Coalesce: the head request plus every same-geometry request behind
	// it, in arrival order, up to the batch bound.
	tall := b.queue[0].Tall
	batch := make([]Request, 0, p.cfg.MaxBatch)
	rest := b.queue[:0]
	for _, r := range b.queue {
		if r.Tall == tall && len(batch) < p.cfg.MaxBatch {
			batch = append(batch, r)
		} else {
			rest = append(rest, r)
		}
	}
	b.queue = rest

	scheme := SchemeJob
	if p.cfg.Policy == PolicyEstimator && p.cal.Conclusive() {
		if s, _, ok := p.cal.estBest(tall, len(batch)); ok {
			scheme = s
		} else {
			p.fallbacks++ // estimate can't separate the schemes: job-distribution default
		}
	}

	s := p.cal.service(svcKey{Scheme: scheme, Tall: tall, K: len(batch)})
	start := p.now
	if !b.warm {
		b.warm = true
		b.warmupTime = s.Warmup
		b.tr.Span(b.lane, start, start.Add(s.Warmup), trace.KindIO, "warmup: model library load")
		start = start.Add(s.Warmup)
	}
	b.busy = true
	b.start = start
	b.done = start.Add(s.Service)
	b.cur = batch
	b.deg = s.Degraded
	b.dispatches++
	p.batches++
	p.batchRequests += len(batch)
	p.schemeBatches[scheme.String()]++
	geom := ""
	if tall {
		geom = " tall"
	}
	b.tr.Span(b.lane, start, b.done, trace.KindCompute,
		fmt.Sprintf("batch#%d ×%d %s%s", b.dispatches, len(batch), scheme, geom))
}

// complete retires b's in-flight batch, accounts per-request latency and
// deadline outcomes, and immediately redispatches if work is queued.
func (p *pool) complete(b *blade) {
	t := b.done
	for _, r := range b.cur {
		p.served++
		p.latencies = append(p.latencies, t.Sub(r.Arrival))
		if r.Deadline != sim.Never && t > r.Deadline {
			p.late++
		}
		if b.deg {
			p.degraded++
		}
	}
	b.requests += len(b.cur)
	b.busyTime += t.Sub(b.start)
	if t > p.lastDone {
		p.lastDone = t
	}
	b.busy = false
	b.cur = nil
	p.dispatch(b)
}
