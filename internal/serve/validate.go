package serve

import (
	"fmt"
	"math"
)

// ConfigError reports one rejected Config field. Callers (paperbench)
// match on the type to distinguish a bad configuration (usage error,
// exit 2) from a failed run.
type ConfigError struct {
	Field  string
	Value  interface{}
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("serve: invalid Config.%s = %v: %s", e.Field, e.Value, e.Reason)
}

func badField(field string, value interface{}, reason string) error {
	return &ConfigError{Field: field, Value: value, Reason: reason}
}

// Validate rejects degenerate Config values before they can panic the
// pool or spin the load generator. The convention is the one
// withDefaults documents: a zero value selects that field's default, so
// zero is always accepted; what Validate rejects is an explicit
// out-of-range request — negative counts, a non-finite or negative
// rate, a fraction outside [0, 1], a burst in (0, 1) that would invert
// the geometric burst-size distribution. Run calls it first, so every
// entry point shares the same gate.
func (c Config) Validate() error {
	switch {
	case c.Blades < 0:
		return badField("Blades", c.Blades, "blade count cannot be negative")
	case c.MaxQueue < 0:
		return badField("MaxQueue", c.MaxQueue, "queue bound cannot be negative")
	case c.MaxBatch < 0:
		return badField("MaxBatch", c.MaxBatch, "batch bound cannot be negative")
	case c.Requests < 0:
		return badField("Requests", c.Requests, "request count cannot be negative")
	case c.Pools < 0:
		return badField("Pools", c.Pools, "pool count cannot be negative")
	case c.RetryBudget < 0:
		return badField("RetryBudget", c.RetryBudget, "retry budget cannot be negative")
	case c.RetryBackoff < 0:
		return badField("RetryBackoff", c.RetryBackoff, "retry backoff cannot be negative")
	case c.Parallel < 0:
		return badField("Parallel", c.Parallel, "worker bound cannot be negative")
	case c.Shards < 0:
		return badField("Shards", c.Shards, "shard worker bound cannot be negative")
	}
	if math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) {
		return badField("Rate", c.Rate, "rate must be finite")
	}
	if c.Rate < 0 {
		return badField("Rate", c.Rate, "offered-load multiple cannot be negative")
	}
	if math.IsNaN(c.OfferedRPS) || math.IsInf(c.OfferedRPS, 0) {
		return badField("OfferedRPS", c.OfferedRPS, "offered rate must be finite")
	}
	if c.OfferedRPS < 0 {
		return badField("OfferedRPS", c.OfferedRPS, "offered rate cannot be negative")
	}
	if math.IsNaN(c.Burst) || math.IsInf(c.Burst, 0) {
		return badField("Burst", c.Burst, "burst must be finite")
	}
	if c.Burst != 0 && c.Burst < 1 {
		return badField("Burst", c.Burst, "mean burst size must be at least 1 (0 selects the default)")
	}
	if math.IsNaN(c.TallFrac) || c.TallFrac < 0 || c.TallFrac > 1 {
		return badField("TallFrac", c.TallFrac, "fraction must lie in [0, 1]")
	}
	if c.Load != nil {
		if err := c.Load.validate(); err != nil {
			return err
		}
	}
	if c.Autoscale != nil {
		if err := c.Autoscale.validate(); err != nil {
			return err
		}
	}
	return nil
}

func (m *RateModel) validate() error {
	if math.IsNaN(m.DiurnalAmp) || m.DiurnalAmp < 0 || m.DiurnalAmp > 1 {
		return badField("Load.DiurnalAmp", m.DiurnalAmp, "diurnal amplitude must lie in [0, 1]")
	}
	if m.FlashCount < 0 {
		return badField("Load.FlashCount", m.FlashCount, "flash-crowd count cannot be negative")
	}
	if math.IsNaN(m.FlashFactor) || math.IsInf(m.FlashFactor, 0) || m.FlashFactor < 0 {
		return badField("Load.FlashFactor", m.FlashFactor, "flash factor must be finite and non-negative")
	}
	if math.IsNaN(m.FlashFrac) || m.FlashFrac < 0 || m.FlashFrac > 1 {
		return badField("Load.FlashFrac", m.FlashFrac, "flash-window fraction must lie in [0, 1]")
	}
	if m.Period < 0 {
		return badField("Load.Period", m.Period, "diurnal period cannot be negative")
	}
	return nil
}

func (a *Autoscale) validate() error {
	if a.Interval < 0 {
		return badField("Autoscale.Interval", a.Interval, "sample interval cannot be negative")
	}
	if a.Window < 0 {
		return badField("Autoscale.Window", a.Window, "sample window cannot be negative")
	}
	if math.IsNaN(a.High) || math.IsInf(a.High, 0) || a.High < 0 {
		return badField("Autoscale.High", a.High, "scale-up threshold must be finite and non-negative")
	}
	if math.IsNaN(a.Low) || math.IsInf(a.Low, 0) || a.Low < 0 {
		return badField("Autoscale.Low", a.Low, "scale-down threshold must be finite and non-negative")
	}
	if a.High > 0 && a.Low > 0 && a.Low >= a.High {
		return badField("Autoscale.Low", a.Low, "scale-down threshold must lie below the scale-up threshold")
	}
	if a.MinPools < 0 || a.MaxPools < 0 {
		return badField("Autoscale.MinPools", a.MinPools, "pool bounds cannot be negative")
	}
	if a.MinPools > 0 && a.MaxPools > 0 && a.MinPools > a.MaxPools {
		return badField("Autoscale.MinPools", a.MinPools, "MinPools cannot exceed MaxPools")
	}
	return nil
}
