// Package serve is the multi-blade serving layer: a pool of simulated
// Cell blades (each a private deterministic machine) serving a seeded,
// open-loop stream of MARVEL concept-detection requests. Admission is
// backpressured per blade, compatible requests are coalesced into one
// SPE dispatch, and the placement policy uses the paper's Eqs. 1-3
// estimator to pick both the blade and the scheduling scheme (job vs
// data distribution) per batch, falling back to round-robin when the
// estimate is inconclusive. Every run is a pure function of (Config,
// seed): virtual time only, no host clocks, so the same configuration
// always produces a byte-identical report.
package serve

import (
	"fmt"

	"cellport/internal/cell"
	"cellport/internal/fault"
	"cellport/internal/marvel"
	"cellport/internal/sim"
)

// Policy selects how arrivals are placed onto blades and how batches
// pick their scheduling scheme.
type Policy int

const (
	// PolicyEstimator places each request on the blade with the earliest
	// estimated finish and picks the batch's scheduling scheme by the
	// Eqs. 1-3 service estimate, falling back to round-robin rotation /
	// the job-distribution default when the estimate cannot separate the
	// candidates.
	PolicyEstimator Policy = iota
	// PolicyRoundRobin rotates placement over the blades and always
	// dispatches under job distribution — the estimator-free baseline.
	PolicyRoundRobin
)

func (p Policy) String() string {
	if p == PolicyRoundRobin {
		return "round-robin"
	}
	return "estimator"
}

// Config describes one serve run.
type Config struct {
	// Blades is the number of simulated Cell blades in the pool.
	Blades int
	// MaxQueue bounds each blade's admission queue; arrivals finding
	// every candidate queue full are shed (backpressure).
	MaxQueue int
	// MaxBatch bounds how many compatible requests one SPE dispatch may
	// coalesce.
	MaxBatch int
	// Requests is the length of the generated arrival stream.
	Requests int
	// Rate is the offered load as a multiple of the pool's estimated
	// capacity (Blades × per-blade full-batch throughput); values above
	// 1 drive the pool into overload.
	Rate float64
	// Burst is the mean arrival burst size (1 = plain Poisson arrivals).
	Burst float64
	// Pools, when positive, selects fleet mode (DESIGN.md §13): the run
	// owns Pools independent pools of Blades blades each, routed by
	// consistent hashing of request geometry with an estimator-aware
	// override, with global backpressure (shed_global) when every
	// candidate pool is full. Zero keeps the classic single-pool layout.
	Pools int
	// Autoscale, when non-nil in fleet mode, arms the deterministic
	// autoscaler: pools are activated and drained from virtual-time load
	// signals sampled on a fixed tick grid (autoscale.go).
	Autoscale *Autoscale
	// Load, when non-nil, shapes the arrival rate over virtual time
	// with a seeded diurnal sinusoid plus flash-crowd windows
	// (loadgen.go). Nil keeps the homogeneous stream.
	Load *RateModel
	// OfferedRPS, when positive, pins the absolute offered load in
	// requests per virtual second, overriding the Rate-derived value.
	// Pinning lets two configurations (e.g. a fleet and a single-pool
	// baseline) consume one byte-identical arrival stream.
	OfferedRPS float64
	// TallFrac is the fraction of requests carrying the double-height
	// frame geometry; only same-geometry requests coalesce.
	TallFrac float64
	// Deadline is each request's virtual completion budget after
	// arrival. Zero selects an automatic deadline (one blade warmup
	// plus 6× the best measured full-batch service time); negative
	// disables deadlines.
	Deadline sim.Duration
	// Seed drives the arrival stream.
	Seed uint64
	// Policy selects the placement/scheme policy.
	Policy Policy
	// Frame sets the base frame geometry and corpus seed (Images is
	// ignored; the zero value selects the paper's 352×240 workload).
	Frame marvel.Workload
	// Variant selects the kernel port variant used by every dispatch.
	Variant marvel.Variant
	// MachineConfig overrides the per-blade machine (nil selects the
	// default machine with blade-sized 64 MB memory).
	MachineConfig *cell.Config
	// Artifacts shares workload artifacts across calibration runs; nil
	// uses the process-wide shared cache.
	Artifacts *marvel.ArtifactCache
	// Faults, when non-nil, arms the deterministic fault plan. Its
	// machine-level faults run inside every dispatch simulation, so
	// measured services include the supervision loop's retries and
	// fallbacks (degraded service); its fleet-level faults (blade-crash,
	// blade-stall, blade-restart) drive the pool's blade lifecycle
	// (DESIGN.md §12).
	Faults *fault.Plan
	// Watchdog overrides the supervision watchdog (only with Faults).
	Watchdog sim.Duration
	// RetryBudget bounds how many times one request may be re-routed
	// after losing its blade before being shed as exhausted (default 3,
	// mirroring the supervision loop's retry bound).
	RetryBudget int
	// RetryBackoff is the base virtual-time backoff a re-routed request
	// waits before re-entering admission; attempt k waits
	// RetryBackoff << (k-1), saturating at 16 doublings (default 100µs,
	// mirroring the supervision loop's backoff).
	RetryBackoff sim.Duration
	// Parallel bounds the worker pool used for calibration simulations;
	// it never affects results, only wall-clock time.
	Parallel int
	// Shards bounds the workers driving the per-blade event wheels in the
	// sharded run (zero selects GOMAXPROCS). Like Parallel it never
	// affects results: the epoch-barrier protocol makes every worker
	// count byte-identical.
	Shards int
	// SeqSim selects the sequential reference event loop instead of the
	// sharded per-blade wheels. Both produce byte-identical reports; the
	// sequential loop exists as the determinism oracle and fallback.
	SeqSim bool
	// NoLookahead disables the conservative lookahead protocol in the
	// sharded run, restoring an epoch barrier at every distinct arrival
	// instant. Reports are byte-identical either way; the per-arrival
	// schedule exists as the oracle for the lookahead coordinator (and
	// as the slow-but-obvious fallback).
	NoLookahead bool
	// FullFidelity re-runs the full machine simulation behind every
	// dispatch (nested in the dispatching blade's wheel) and fails the
	// run if any dispatch diverges from the calibration table. This is
	// the verified-dispatch mode: much more expensive, byte-identical
	// report.
	FullFidelity bool
	// Instrument attaches a per-blade trace recorder and metrics
	// registry to the report (excluded from JSON, so artifacts stay
	// byte-identical with instrumentation on or off).
	Instrument bool
	// Cal, when non-nil, reuses a previously measured calibration (for
	// policy comparisons over the identical service table).
	Cal *Calibration
}

func (c Config) withDefaults() Config {
	if c.Blades <= 0 {
		c.Blades = 3
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4
	}
	if c.Requests <= 0 {
		c.Requests = 64
	}
	if c.Rate <= 0 {
		c.Rate = 2
	}
	if c.Burst < 1 {
		c.Burst = 1
	}
	if c.Frame.W <= 0 || c.Frame.H <= 0 {
		def := marvel.DefaultWorkload(1)
		c.Frame.W, c.Frame.H = def.W, def.H
		if c.Frame.Seed == 0 {
			c.Frame.Seed = def.Seed
		}
	}
	if c.MachineConfig == nil {
		mc := cell.DefaultConfig()
		mc.MemorySize = 64 << 20 // one blade's local share, not the default desktop 256 MB
		c.MachineConfig = &mc
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * sim.Microsecond
	}
	return c
}

// workload is the k-image workload for one dispatch at a geometry.
func (c Config) workload(tall bool, k int) marvel.Workload {
	h := c.Frame.H
	if tall {
		h *= 2
	}
	return marvel.Workload{Images: k, W: c.Frame.W, H: h, Seed: c.Frame.Seed}
}

// portedConfig assembles the simulation config for one dispatch
// measurement. Fault plans are armed only on the dispatch points, not on
// the estimator's clean single-SPE calibration run.
func (c Config) portedConfig(scen marvel.Scenario, tall bool, k int, withFaults bool) marvel.PortedConfig {
	pc := marvel.PortedConfig{
		Workload:      c.workload(tall, k),
		Scenario:      scen,
		Variant:       c.Variant,
		MachineConfig: c.MachineConfig,
		Artifacts:     c.Artifacts,
		Watchdog:      c.Watchdog,
	}
	if withFaults {
		// Only the machine-level subset reaches the dispatch simulation;
		// fleet-level faults belong to the pool's lifecycle layer. The
		// subset is nil for a purely fleet-level plan, so such a plan
		// leaves every machine run on its exact fault-free paths.
		pc.Faults = c.Faults.MachineFaults()
	}
	return pc
}

// RacePointConfig exposes one calibration point's simulation config
// with the config's defaults applied: exactly the PortedConfig the
// (scheme, geometry, batch) service point of Calibrate measures. The
// estimator-race harness re-runs these points with an execution backend
// attached, so the simulated half of a race is the same run — byte for
// byte — that produced the calibration table.
func (c Config) RacePointConfig(s Scheme, tall bool, k int) marvel.PortedConfig {
	return c.withDefaults().portedConfig(s.scenario(), tall, k, true)
}

// Run executes one serve run: validate and default the config,
// calibrate (or reuse cfg.Cal), generate the seeded arrival stream, and
// play the admission/dispatch event loop to completion.
func Run(cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	cal := cfg.Cal
	if cal == nil {
		var err error
		if cal, err = Calibrate(cfg); err != nil {
			return nil, err
		}
	}
	if cal.perBlade <= 0 {
		return nil, fmt.Errorf("serve: calibration produced a non-positive per-blade capacity")
	}

	totalBlades := cfg.Blades
	if cfg.Pools > 0 {
		totalBlades = cfg.Blades * cfg.Pools
	}
	offered := cfg.OfferedRPS
	if offered <= 0 {
		offered = cfg.Rate * cal.perBlade * float64(totalBlades)
	}
	deadline := cfg.Deadline
	if deadline == 0 {
		best := cal.service(svcKey{Scheme: SchemeJob, Tall: false, K: cfg.MaxBatch})
		if d := cal.service(svcKey{Scheme: SchemeData, Tall: false, K: cfg.MaxBatch}); d.Service < best.Service {
			best = d
		}
		// Early requests land on cold blades and pay the one-time
		// warmup before any service; without this term the automatic
		// deadline is unreachable on workloads whose warmup dominates
		// the per-batch service time.
		deadline = best.Warmup + 6*best.Service
	} else if deadline < 0 {
		deadline = 0
	}

	reqs := arrivalsShaped(cfg.Seed, cfg.Requests, offered, cfg.Burst, cfg.TallFrac, deadline, cfg.Load)
	p := newPool(cfg, cal, deadline)
	if err := p.armFleet(cfg.Faults); err != nil {
		return nil, err
	}
	// The expected arrival span is the autoscaler's natural time unit
	// for its default sample grid.
	p.armAutoscale(clampGap(float64(cfg.Requests) / offered))
	if cfg.SeqSim {
		p.run(reqs)
	} else if err := p.runSharded(reqs, cfg.Shards, !cfg.NoLookahead); err != nil {
		return nil, fmt.Errorf("serve: sharded run: %w", err)
	}
	if err := p.firstVerifyErr(); err != nil {
		return nil, err
	}
	return p.report(offered), nil
}
