package serve

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"cellport/internal/marvel"
	"cellport/internal/sim"
)

// quickConfig is the small, fast serve configuration the tests share:
// the reduced-height frame keeps one calibration (16 simulations) well
// under a second.
func quickConfig() Config {
	return Config{
		Blades:    3,
		MaxQueue:  6,
		MaxBatch:  3,
		Requests:  64,
		Rate:      1.6,
		Burst:     2,
		TallFrac:  0.25,
		Seed:      7,
		Frame:     marvel.Workload{W: 352, H: 96, Seed: 20070710},
		Parallel:  4,
		Artifacts: marvel.NewArtifactCache(),
	}
}

// sharedCal memoizes one calibration of the quick configuration for the
// tests that only exercise the event loop.
var sharedCal = sync.OnceValues(func() (*Calibration, error) {
	return Calibrate(quickConfig())
})

func mustCal(t *testing.T) *Calibration {
	t.Helper()
	cal, err := sharedCal()
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

func mustRun(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func marshal(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServeDeterminism is the tentpole guarantee: the serialized report
// is a pure function of (Config, seed) — byte-identical across repeated
// runs, across calibration parallelism, across a shared vs private
// calibration, and with instrumentation on or off.
func TestServeDeterminism(t *testing.T) {
	base := quickConfig()
	golden := marshal(t, mustRun(t, base))

	rerun := base
	rerun.Artifacts = marvel.NewArtifactCache() // fresh caches: nothing carried over
	if got := marshal(t, mustRun(t, rerun)); !bytes.Equal(got, golden) {
		t.Fatalf("rerun diverged:\n got %s\nwant %s", got, golden)
	}

	for _, par := range []int{1, 8} {
		cfg := base
		cfg.Parallel = par
		cfg.Artifacts = marvel.NewArtifactCache()
		if got := marshal(t, mustRun(t, cfg)); !bytes.Equal(got, golden) {
			t.Fatalf("parallel=%d diverged:\n got %s\nwant %s", par, got, golden)
		}
	}

	shared := base
	shared.Cal = mustCal(t)
	if got := marshal(t, mustRun(t, shared)); !bytes.Equal(got, golden) {
		t.Fatalf("shared calibration diverged from private:\n got %s\nwant %s", got, golden)
	}

	inst := base
	inst.Instrument = true
	inst.Artifacts = marvel.NewArtifactCache()
	rep := mustRun(t, inst)
	if got := marshal(t, rep); !bytes.Equal(got, golden) {
		t.Fatalf("instrumented JSON diverged:\n got %s\nwant %s", got, golden)
	}
	for _, bs := range rep.PerBlade {
		if bs.Trace == nil || bs.Metrics == nil {
			t.Fatalf("blade %d missing trace/metrics under Instrument", bs.Blade)
		}
		if bs.Dispatches > 0 && len(bs.Trace.Spans()) == 0 {
			t.Fatalf("blade %d dispatched %d batches but recorded no spans", bs.Blade, bs.Dispatches)
		}
	}
}

// checkLedger asserts full request conservation over every shed
// category (including the lifecycle ones) and that the per-blade merge
// stayed blade-index-ordered.
func checkLedger(t *testing.T, rep *Report) {
	t.Helper()
	total := rep.Served + rep.ShedRejected + rep.ShedExpired + rep.ShedRerouted + rep.ShedExhausted + rep.ShedGlobal
	if total != rep.Requests {
		t.Fatalf("ledger leaks: served %d + rejected %d + expired %d + rerouted %d + exhausted %d + global %d = %d, want %d",
			rep.Served, rep.ShedRejected, rep.ShedExpired, rep.ShedRerouted, rep.ShedExhausted, rep.ShedGlobal, total, rep.Requests)
	}
	for i, bs := range rep.PerBlade {
		if bs.Blade != i {
			t.Fatalf("per-blade merge out of order: index %d holds blade %d", i, bs.Blade)
		}
	}
}

// TestServeConservation checks the admission ledger: every generated
// request is served, rejected at admission, or shed as hopeless —
// nothing is lost or double-counted.
func TestServeConservation(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		cfg := quickConfig()
		cfg.Seed = seed
		cfg.Cal = mustCal(t)
		rep := mustRun(t, cfg)
		checkLedger(t, rep)
		if rep.Served > 0 && (rep.LatencyP50 <= 0 || rep.LatencyP50 > rep.LatencyP95 || rep.LatencyP95 > rep.LatencyP99) {
			t.Fatalf("seed %d: percentiles out of order: p50=%v p95=%v p99=%v",
				seed, rep.LatencyP50, rep.LatencyP95, rep.LatencyP99)
		}
		var reqs int
		for _, bs := range rep.PerBlade {
			reqs += bs.Requests
			if bs.Dispatches > 0 && bs.Warmup <= 0 {
				t.Fatalf("seed %d: blade %d dispatched but charged no warmup", seed, bs.Blade)
			}
		}
		if reqs != rep.Served {
			t.Fatalf("seed %d: per-blade requests sum %d != served %d", seed, reqs, rep.Served)
		}
	}
}

// TestServeBatchCoalescing checks that overload actually coalesces
// compatible requests: mean batch size above one, and strictly fewer
// dispatches than served requests.
func TestServeBatchCoalescing(t *testing.T) {
	cfg := quickConfig()
	cfg.Rate = 2
	cfg.Cal = mustCal(t)
	rep := mustRun(t, cfg)
	if rep.MeanBatch <= 1.2 {
		t.Fatalf("mean batch %.2f under 2× overload, want coalescing > 1.2", rep.MeanBatch)
	}
	if rep.Batches >= rep.Served {
		t.Fatalf("batches %d >= served %d: no coalescing happened", rep.Batches, rep.Served)
	}
}

// TestServeDeadlineShedding checks the deadline machinery: a deadline
// tighter than the queueing delay under overload must shed hopeless
// requests before dispatch, and no served request may be reported both
// on time and past its deadline inconsistently.
func TestServeDeadlineShedding(t *testing.T) {
	cfg := quickConfig()
	cfg.Rate = 2
	cfg.Deadline = 150 * sim.Millisecond
	cfg.Cal = mustCal(t)
	rep := mustRun(t, cfg)
	if rep.ShedExpired == 0 {
		t.Fatalf("tight deadline under overload shed nothing: %+v", rep)
	}
	if rep.Served+rep.ShedRejected+rep.ShedExpired != rep.Requests {
		t.Fatalf("ledger broken with deadlines: %+v", rep)
	}

	// Disabling deadlines must eliminate both expiry sheds and lateness.
	cfg.Deadline = -1
	rep = mustRun(t, cfg)
	if rep.ShedExpired != 0 || rep.Late != 0 {
		t.Fatalf("deadline-free run reports expired=%d late=%d", rep.ShedExpired, rep.Late)
	}
}

// TestEstimatorBeatsRoundRobin pins the acceptance scenario: under 2×
// overload with mixed frame geometries, estimator-driven placement
// serves strictly more requests (and rejects strictly fewer) than blind
// round-robin over the identical calibration and arrival stream, and it
// exercises both scheduling schemes.
func TestEstimatorBeatsRoundRobin(t *testing.T) {
	cfg := quickConfig()
	cfg.Rate = 2
	cfg.Burst = 1
	cfg.Cal = mustCal(t)

	cfg.Policy = PolicyEstimator
	est := mustRun(t, cfg)
	cfg.Policy = PolicyRoundRobin
	rr := mustRun(t, cfg)

	if est.Served <= rr.Served {
		t.Fatalf("estimator served %d, round-robin %d: estimator must win this pinned scenario", est.Served, rr.Served)
	}
	if est.ShedRejected >= rr.ShedRejected {
		t.Fatalf("estimator rejected %d, round-robin %d: estimator must shed less", est.ShedRejected, rr.ShedRejected)
	}
	if est.SchemeBatches["data-dist"] == 0 || est.SchemeBatches["job-dist"] == 0 {
		t.Fatalf("estimator used only one scheme: %v", est.SchemeBatches)
	}
	if rr.SchemeBatches["data-dist"] != 0 {
		t.Fatalf("round-robin must stick to job distribution, got %v", rr.SchemeBatches)
	}
	if !est.EstimatorConclusive {
		t.Fatal("quick workload calibration should be conclusive")
	}
}

// TestServeInconclusiveFallsBack forces an inconclusive calibration and
// checks the estimator policy degrades to round-robin placement instead
// of failing.
func TestServeInconclusiveFallsBack(t *testing.T) {
	cal := mustCal(t)
	broken := &Calibration{
		maxBatch: cal.maxBatch,
		services: cal.services,
		geoms:    map[bool]*geomCal{},
		perBlade: cal.perBlade,
	}
	for tall, g := range cal.geoms {
		gc := *g
		gc.Conclusive = false
		broken.geoms[tall] = &gc
	}

	cfg := quickConfig()
	cfg.Cal = broken
	cfg.Policy = PolicyEstimator
	est := mustRun(t, cfg)
	cfg.Policy = PolicyRoundRobin
	rr := mustRun(t, cfg)

	if est.EstimatorConclusive {
		t.Fatal("broken calibration reported conclusive")
	}
	// With the estimator disarmed, both policies are the same rotation.
	ej, rj := marshal(t, est), marshal(t, rr)
	ej = bytes.Replace(ej, []byte(`"policy":"estimator"`), []byte(`"policy":"round-robin"`), 1)
	if !bytes.Equal(ej, rj) {
		t.Fatalf("inconclusive estimator diverged from round-robin:\n est %s\n rr  %s", ej, rj)
	}
}

// TestCalibrationTable checks the measured service table is total over
// its key grid and that warmup is geometry-invariant batch-invariant
// one-time work.
func TestCalibrationTable(t *testing.T) {
	cal := mustCal(t)
	cfg := quickConfig()
	for s := Scheme(0); s < numSchemes; s++ {
		for _, tall := range []bool{false, true} {
			for k := 1; k <= cfg.MaxBatch; k++ {
				v := cal.service(svcKey{Scheme: s, Tall: tall, K: k})
				if v.Service <= 0 || v.Warmup <= 0 {
					t.Fatalf("missing table entry %v/%v/k=%d: %+v", s, tall, k, v)
				}
				if v.Degraded {
					t.Fatalf("fault-free calibration marked degraded at %v/%v/k=%d", s, tall, k)
				}
			}
		}
	}
	if cal.PerBladeCapacity() <= 0 {
		t.Fatal("non-positive per-blade capacity")
	}
	// Larger batches must take longer end to end but amortize better:
	// service(k)/k non-increasing for data distribution.
	for _, s := range []Scheme{SchemeJob, SchemeData} {
		prev := cal.service(svcKey{Scheme: s, Tall: false, K: 1}).Service
		for k := 2; k <= cfg.MaxBatch; k++ {
			cur := cal.service(svcKey{Scheme: s, Tall: false, K: k}).Service
			if cur <= prev {
				t.Fatalf("%v service not increasing in batch size at k=%d", s, k)
			}
			if float64(cur)/float64(k) > float64(prev) {
				t.Fatalf("%v per-request service worsened with batching at k=%d", s, k)
			}
			prev = cur
		}
	}
}
