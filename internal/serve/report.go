package serve

import (
	"math"
	"sort"

	"cellport/internal/metrics"
	"cellport/internal/sim"
	"cellport/internal/trace"
)

// BladeStats is one blade's share of the run. Trace and Metrics are
// populated only when Config.Instrument is set and are excluded from
// JSON so serialized reports are byte-identical either way.
type BladeStats struct {
	Blade      int          `json:"blade"`
	Health     string       `json:"health"`
	Dispatches int          `json:"dispatches"`
	Requests   int          `json:"requests"`
	Busy       sim.Duration `json:"busy_fs"`
	Warmup     sim.Duration `json:"warmup_fs"`

	// Lifecycle outcomes (DESIGN.md §12). Sheds are attributed to the
	// blade that lost the request, so these merge like every other
	// ledger column.
	Crashes       int `json:"crashes"`
	Restarts      int `json:"restarts"`
	Stalls        int `json:"stalls"`
	Rerouted      int `json:"rerouted"`
	ShedRerouted  int `json:"shed_rerouted"`
	ShedExhausted int `json:"shed_exhausted"`

	Trace   *trace.Recorder   `json:"-"`
	Metrics *metrics.Snapshot `json:"-"`
}

// Report is the outcome of one serve run: a pure function of (Config,
// seed). All durations are virtual femtoseconds; throughputs are
// requests per virtual second.
type Report struct {
	Policy   string `json:"policy"`
	Blades   int    `json:"blades"`
	Requests int    `json:"requests"`

	PerBladeCapacityRPS float64      `json:"per_blade_capacity_rps"`
	OfferedRPS          float64      `json:"offered_rps"`
	AchievedRPS         float64      `json:"achieved_rps"`
	RateMultiple        float64      `json:"rate_multiple"`
	Deadline            sim.Duration `json:"deadline_fs"`

	Served       int `json:"served"`
	Late         int `json:"late"`
	Degraded     int `json:"degraded"`
	ShedRejected int `json:"shed_rejected"`
	ShedExpired  int `json:"shed_expired"`
	// Lifecycle shed reasons: a re-routed request whose backoff overshot
	// its deadline, and one that exhausted its retry budget. ShedGlobal
	// is the fleet router's global backpressure: no active pool had any
	// admittable blade with queue room (always 0 outside fleet mode).
	// The six-term ledger conserves exactly:
	// Served + ShedRejected + ShedExpired + ShedRerouted + ShedExhausted
	// + ShedGlobal == Requests.
	ShedRerouted  int `json:"shed_rerouted"`
	ShedExhausted int `json:"shed_exhausted"`
	ShedGlobal    int `json:"shed_global"`

	// Fleet lifecycle outcomes: re-route events and the lifecycle
	// transitions that actually fired (armed-but-unfired plan entries
	// count nothing).
	Rerouted      int `json:"rerouted"`
	BladeCrashes  int `json:"blade_crashes"`
	BladeRestarts int `json:"blade_restarts"`
	BladeStalls   int `json:"blade_stalls"`

	Batches             int            `json:"batches"`
	MeanBatch           float64        `json:"mean_batch"`
	SchemeBatches       map[string]int `json:"scheme_batches"`
	PolicyFallbacks     int            `json:"policy_fallbacks"`
	EstimatorConclusive bool           `json:"estimator_conclusive"`

	Makespan   sim.Duration `json:"makespan_fs"`
	LatencyP50 sim.Duration `json:"latency_p50_fs"`
	LatencyP95 sim.Duration `json:"latency_p95_fs"`
	LatencyP99 sim.Duration `json:"latency_p99_fs"`

	PerBlade []BladeStats `json:"per_blade"`

	// Fleet is the routing/autoscaling layer's outcome, present only in
	// fleet mode (Config.Pools > 0).
	Fleet *FleetStats `json:"fleet,omitempty"`

	// Coordinator synchronization stats (sharded runs only; zero under
	// SeqSim). Excluded from JSON: the serialized report must stay
	// byte-identical across -seqsim, -lookahead on/off, and every
	// -shards count — these fields describe the schedule, not the
	// simulation outcome.
	Epochs       uint64       `json:"-"` // epoch-barrier rounds (final drain included)
	Barriers     uint64       `json:"-"` // finite-deadline barriers the coordinator paid
	WindowAdmits int          `json:"-"` // arrivals admitted inside a lookahead window (no barrier)
	BarrierWait  sim.Duration `json:"-"` // virtual idle imposed by the barrier schedule

	// Coordinator is the coordinator-lane trace (one instant per epoch
	// barrier) and Sim the synchronization metrics snapshot; both only
	// with Config.Instrument, both excluded from JSON.
	Coordinator *trace.Recorder   `json:"-"`
	Sim         *metrics.Snapshot `json:"-"`
}

// PoolStats is one fleet pool's share of the run.
type PoolStats struct {
	Pool   int  `json:"pool"`
	Blades int  `json:"blades"`
	Active bool `json:"active"`
	Routed int  `json:"routed"`
	Served int  `json:"served"`
}

// FleetStats is the fleet router and autoscaler outcome (fleet mode
// only). ActiveMin is the fewest simultaneously active pools the
// autoscaler reached — the off-peak drain depth.
type FleetStats struct {
	Pools           int         `json:"pools"`
	ActiveFinal     int         `json:"active_final"`
	ActiveMin       int         `json:"active_min"`
	ScaleUps        int         `json:"scale_ups"`
	ScaleDowns      int         `json:"scale_downs"`
	RouterOverrides int         `json:"router_overrides"`
	PerPool         []PoolStats `json:"per_pool"`
}

// percentile returns the q-quantile (0 < q <= 1) of the sample by the
// nearest-rank method on a sorted copy; 0 for an empty sample.
func percentile(sample []sim.Duration, q float64) sim.Duration {
	if len(sample) == 0 {
		return 0
	}
	sorted := append([]sim.Duration(nil), sample...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// report assembles the run outcome by merging the blade-local ledgers in
// blade-index order. Every merged quantity is either a sum, a max, or an
// order-insensitive percentile over the union of per-blade samples, so
// the report is identical whether the blades ran sequentially or each on
// its own wheel.
func (p *pool) report(offered float64) *Report {
	var served, late, degraded, shedExpired, batches, batchRequests, fallbacks int
	var shedRerouted, shedExhausted, rerouted, crashes, restarts, stalls int
	var schemeBatches [numSchemes]int
	var lastDone sim.Time
	var latencies []sim.Duration
	for _, b := range p.blades {
		served += b.served
		late += b.late
		degraded += b.degraded
		shedExpired += b.shedExpired
		shedRerouted += b.shedRerouted
		shedExhausted += b.shedExhausted
		rerouted += b.rerouted
		crashes += b.crashes
		restarts += b.restarts
		stalls += b.stalls
		batches += b.batches
		batchRequests += b.batchRequests
		fallbacks += b.schemeFallbacks
		for s := range schemeBatches {
			schemeBatches[s] += b.schemeBatches[s]
		}
		latencies = append(latencies, b.latencies...)
		if b.lastDone > lastDone {
			lastDone = b.lastDone
		}
	}
	// Only schemes that actually dispatched appear, matching the
	// increment-on-use map the loop historically built.
	schemes := map[string]int{}
	for s := Scheme(0); s < numSchemes; s++ {
		if n := schemeBatches[s]; n > 0 {
			schemes[s.String()] = n
		}
	}
	rateMultiple := p.cfg.Rate
	if p.cfg.OfferedRPS > 0 && p.cal.perBlade > 0 {
		// The pinned absolute rate defines the multiple, not the config
		// knob it overrode.
		rateMultiple = offered / (p.cal.perBlade * float64(len(p.blades)))
	}
	r := &Report{
		Policy:              p.cfg.Policy.String(),
		Blades:              len(p.blades),
		Requests:            p.cfg.Requests,
		PerBladeCapacityRPS: p.cal.perBlade,
		OfferedRPS:          offered,
		RateMultiple:        rateMultiple,
		Deadline:            p.deadline,
		Served:              served,
		Late:                late,
		Degraded:            degraded,
		ShedRejected:        p.shedRejected,
		ShedExpired:         shedExpired,
		ShedRerouted:        shedRerouted,
		ShedExhausted:       shedExhausted,
		Rerouted:            rerouted,
		BladeCrashes:        crashes,
		BladeRestarts:       restarts,
		BladeStalls:         stalls,
		Batches:             batches,
		SchemeBatches:       schemes,
		PolicyFallbacks:     p.placeFallbacks + fallbacks,
		EstimatorConclusive: p.cal.Conclusive(),
		Makespan:            lastDone.Sub(0),
		LatencyP50:          percentile(latencies, 0.50),
		LatencyP95:          percentile(latencies, 0.95),
		LatencyP99:          percentile(latencies, 0.99),
	}
	if batches > 0 {
		r.MeanBatch = float64(batchRequests) / float64(batches)
	}
	if f := p.fleet; f != nil {
		r.ShedGlobal = f.shedGlobal
		fs := &FleetStats{
			Pools:           len(f.pools),
			ActiveFinal:     f.activeCount(),
			ActiveMin:       f.activeMin,
			ScaleUps:        f.scaleUps,
			ScaleDowns:      f.scaleDowns,
			RouterOverrides: f.overrides,
		}
		for _, pl := range f.pools {
			ps := PoolStats{Pool: pl.id, Blades: len(pl.blades), Active: pl.active, Routed: pl.routed}
			for _, b := range pl.blades {
				ps.Served += b.served
			}
			fs.PerPool = append(fs.PerPool, ps)
		}
		r.Fleet = fs
	}
	if served > 0 && lastDone > 0 {
		r.AchievedRPS = float64(served) / lastDone.Seconds()
	}
	r.Epochs = p.epochs
	r.Barriers = p.barriers
	r.WindowAdmits = p.windowAdmits
	r.BarrierWait = p.barrierWait
	if p.cfg.Instrument {
		r.Coordinator = p.ctr
		reg := metrics.NewRegistry()
		reg.Counter("sim", "epochs").Add(int64(p.epochs))
		reg.Counter("sim", "barriers").Add(int64(p.barriers))
		reg.Counter("sim", "barrier_wait").Add(int64(p.barrierWait))
		reg.Counter("sim", "window_admits").Add(int64(p.windowAdmits))
		r.Sim = reg.Snapshot()
	}
	for _, b := range p.blades {
		bs := BladeStats{
			Blade:         b.id,
			Health:        b.health.String(),
			Dispatches:    b.dispatches,
			Requests:      b.requests,
			Busy:          b.busyTime,
			Warmup:        b.warmupTime,
			Crashes:       b.crashes,
			Restarts:      b.restarts,
			Stalls:        b.stalls,
			Rerouted:      b.rerouted,
			ShedRerouted:  b.shedRerouted,
			ShedExhausted: b.shedExhausted,
			Trace:         b.rec,
		}
		if p.cfg.Instrument {
			reg := metrics.NewRegistry()
			reg.Counter(b.lane, "dispatches").Add(int64(b.dispatches))
			reg.Counter(b.lane, "requests").Add(int64(b.requests))
			reg.Counter(b.lane, "busy_fs").Add(int64(b.busyTime))
			reg.Counter(b.lane, "warmup_fs").Add(int64(b.warmupTime))
			reg.Counter(b.lane, "crashes").Add(int64(b.crashes))
			reg.Counter(b.lane, "restarts").Add(int64(b.restarts))
			reg.Counter(b.lane, "stalls").Add(int64(b.stalls))
			reg.Counter(b.lane, "rerouted").Add(int64(b.rerouted))
			reg.Counter(b.lane, "shed_rerouted").Add(int64(b.shedRerouted))
			reg.Counter(b.lane, "shed_exhausted").Add(int64(b.shedExhausted))
			bs.Metrics = reg.Snapshot()
		}
		r.PerBlade = append(r.PerBlade, bs)
	}
	return r
}
