package serve

import (
	"sort"

	"cellport/internal/sim"
)

// The fleet router: consistent hashing of request geometry over a vnode
// ring of the active pools, with an estimator-aware override. Hashing
// gives stable, membership-tolerant placement (a pool draining or
// activating only moves the keys that hashed to it); the override is the
// paper's Eqs. 1-3 "is this worth it" check promoted to fleet scope —
// when the hashed pool's estimated finish frontier trails the best
// pool's by more than half a request's service estimate, the migration
// is worth it and the request follows the estimator instead.

// vnodesPerPool spreads each pool over the ring so membership changes
// rebalance smoothly; 16 keeps the ring tiny while bounding per-pool
// load skew.
const vnodesPerPool = 16

// ringEntry is one virtual node: a pool replica at a hashed position.
type ringEntry struct {
	hash uint64
	pool int
}

// mix64 is the splitmix64 finalizer as a standalone hash — the same
// mixing the load generator's PRNG uses, reused so the router adds no
// new hashing primitive.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// requestKey hashes the request's routing geometry: its identity and
// frame class. Every re-admission of the same request hashes to the same
// ring position, so retries probe the same pool first unless membership
// or load moved underneath them.
func requestKey(r Request) uint64 {
	k := uint64(r.ID) << 1
	if r.Tall {
		k |= 1
	}
	return mix64(k + 0x9e3779b97f4a7c15)
}

// rebuildRing rebuilds the vnode ring from the active pools. Called only
// on membership changes (activate/drain), never per request; sorted by
// (hash, pool) for a total deterministic order.
func (f *fleetState) rebuildRing() {
	f.ring = f.ring[:0]
	for _, pl := range f.pools {
		if !pl.active {
			continue
		}
		for v := 0; v < vnodesPerPool; v++ {
			h := mix64(uint64(pl.id)<<32 | uint64(v) | 0x517cc1b727220a95)
			f.ring = append(f.ring, ringEntry{hash: h, pool: pl.id})
		}
	}
	sort.Slice(f.ring, func(a, b int) bool {
		if f.ring[a].hash != f.ring[b].hash {
			return f.ring[a].hash < f.ring[b].hash
		}
		return f.ring[a].pool < f.ring[b].pool
	})
}

// lookup walks the ring clockwise from key and returns the first pool
// satisfying ok, or nil when no pool on the ring does. Each pool is
// evaluated at most once per walk.
func (f *fleetState) lookup(key uint64, ok func(*poolShard) bool) *poolShard {
	n := len(f.ring)
	if n == 0 {
		return nil
	}
	for i := range f.visited {
		f.visited[i] = false
	}
	start := sort.Search(n, func(i int) bool { return f.ring[i].hash >= key })
	for i := 0; i < n; i++ {
		e := f.ring[(start+i)%n]
		if f.visited[e.pool] {
			continue
		}
		f.visited[e.pool] = true
		if pl := f.pools[e.pool]; ok(pl) {
			return pl
		}
	}
	return nil
}

// poolFrontier is the pool's earliest estimated finish across its
// admittable blades with queue room — what a request routed there now
// would be waiting behind.
func (p *pool) poolFrontier(pl *poolShard) (sim.Duration, bool) {
	var best sim.Duration
	found := false
	for _, b := range pl.blades {
		if !b.health.admittable() || len(b.queue) >= p.cfg.MaxQueue {
			continue
		}
		if s := p.bladeScore(b); !found || s < best {
			best, found = s, true
		}
	}
	return best, found
}

// routePool picks the pool for one request: the consistent-hash owner
// with room, overridden toward the earliest-frontier pool when the
// estimator is conclusive and the gap exceeds half the request's own
// service estimate (hysteresis — ties and small imbalances stay on the
// hash placement, keeping routing stable). Returns nil under global
// backpressure: no active pool has any admittable blade with queue room.
func (p *pool) routePool(r Request) *poolShard {
	f := p.fleet
	hashed := f.lookup(requestKey(r), p.hasRoomFn())
	if hashed == nil {
		return nil
	}
	if p.cfg.Policy != PolicyEstimator || !p.cal.Conclusive() {
		return hashed
	}
	var best *poolShard
	var bestFrontier sim.Duration
	for _, pl := range f.pools {
		if !p.poolHasRoom(pl) {
			continue
		}
		if s, ok := p.poolFrontier(pl); ok && (best == nil || s < bestFrontier) {
			best, bestFrontier = pl, s
		}
	}
	if best == nil || best == hashed {
		return hashed
	}
	hashedFrontier, ok := p.poolFrontier(hashed)
	if !ok {
		return hashed
	}
	if hashedFrontier-bestFrontier > p.estOne(r)/2 {
		f.overrides++
		return best
	}
	return hashed
}

// hasRoomFn adapts poolHasRoom to the ring-walk predicate.
func (p *pool) hasRoomFn() func(*poolShard) bool {
	return func(pl *poolShard) bool { return p.poolHasRoom(pl) }
}
