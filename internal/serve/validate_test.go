package serve

import (
	"errors"
	"math"
	"testing"
)

// Satellite regression suite for Config.Validate: every degenerate
// field is rejected with a typed *ConfigError naming the field, and the
// zero-selects-default convention means a zero value is never rejected.

func TestValidateRejectsDegenerateConfigs(t *testing.T) {
	mod := func(f func(*Config)) Config {
		cfg := quickConfig()
		f(&cfg)
		return cfg
	}
	cases := []struct {
		name      string
		cfg       Config
		wantField string
	}{
		{"negative blades", mod(func(c *Config) { c.Blades = -1 }), "Blades"},
		{"negative queue", mod(func(c *Config) { c.MaxQueue = -2 }), "MaxQueue"},
		{"negative batch", mod(func(c *Config) { c.MaxBatch = -1 }), "MaxBatch"},
		{"negative requests", mod(func(c *Config) { c.Requests = -5 }), "Requests"},
		{"negative pools", mod(func(c *Config) { c.Pools = -1 }), "Pools"},
		{"negative retry budget", mod(func(c *Config) { c.RetryBudget = -1 }), "RetryBudget"},
		{"negative retry backoff", mod(func(c *Config) { c.RetryBackoff = -1 }), "RetryBackoff"},
		{"negative parallel", mod(func(c *Config) { c.Parallel = -4 }), "Parallel"},
		{"negative shards", mod(func(c *Config) { c.Shards = -8 }), "Shards"},
		{"NaN rate", mod(func(c *Config) { c.Rate = math.NaN() }), "Rate"},
		{"infinite rate", mod(func(c *Config) { c.Rate = math.Inf(1) }), "Rate"},
		{"negative rate", mod(func(c *Config) { c.Rate = -0.5 }), "Rate"},
		{"NaN offered rate", mod(func(c *Config) { c.OfferedRPS = math.NaN() }), "OfferedRPS"},
		{"negative offered rate", mod(func(c *Config) { c.OfferedRPS = -1 }), "OfferedRPS"},
		{"NaN burst", mod(func(c *Config) { c.Burst = math.NaN() }), "Burst"},
		{"sub-unity burst", mod(func(c *Config) { c.Burst = 0.5 }), "Burst"},
		{"negative burst", mod(func(c *Config) { c.Burst = -2 }), "Burst"},
		{"tall fraction above one", mod(func(c *Config) { c.TallFrac = 1.5 }), "TallFrac"},
		{"negative tall fraction", mod(func(c *Config) { c.TallFrac = -0.1 }), "TallFrac"},
		{"NaN tall fraction", mod(func(c *Config) { c.TallFrac = math.NaN() }), "TallFrac"},
		{"diurnal amplitude above one", mod(func(c *Config) { c.Load = &RateModel{DiurnalAmp: 1.5} }), "Load.DiurnalAmp"},
		{"negative flash count", mod(func(c *Config) { c.Load = &RateModel{FlashCount: -1} }), "Load.FlashCount"},
		{"infinite flash factor", mod(func(c *Config) { c.Load = &RateModel{FlashFactor: math.Inf(1)} }), "Load.FlashFactor"},
		{"flash fraction above one", mod(func(c *Config) { c.Load = &RateModel{FlashFrac: 2} }), "Load.FlashFrac"},
		{"negative diurnal period", mod(func(c *Config) { c.Load = &RateModel{Period: -1} }), "Load.Period"},
		{"negative autoscale interval", mod(func(c *Config) { c.Autoscale = &Autoscale{Interval: -1} }), "Autoscale.Interval"},
		{"negative autoscale window", mod(func(c *Config) { c.Autoscale = &Autoscale{Window: -1} }), "Autoscale.Window"},
		{"NaN high watermark", mod(func(c *Config) { c.Autoscale = &Autoscale{High: math.NaN()} }), "Autoscale.High"},
		{"negative low watermark", mod(func(c *Config) { c.Autoscale = &Autoscale{Low: -0.1} }), "Autoscale.Low"},
		{"inverted watermarks", mod(func(c *Config) { c.Autoscale = &Autoscale{High: 0.2, Low: 0.8} }), "Autoscale.Low"},
		{"inverted pool bounds", mod(func(c *Config) { c.Autoscale = &Autoscale{MinPools: 4, MaxPools: 2} }), "Autoscale.MinPools"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatal("degenerate config validated cleanly")
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v is not a *ConfigError", err)
			}
			if ce.Field != tc.wantField {
				t.Fatalf("error names field %q, want %q (%v)", ce.Field, tc.wantField, err)
			}
			if ce.Error() == "" {
				t.Fatal("empty error string")
			}
			// The gate is shared: Run must refuse the same config with the
			// same typed error before doing any work.
			if _, runErr := Run(tc.cfg); !errors.As(runErr, &ce) {
				t.Fatalf("Run let the degenerate config through: %v", runErr)
			}
		})
	}
}

// TestValidateAcceptsZeroDefaults pins the convention the rejects lean
// on: zero means "use the default", so an all-zero Config (and zeroed
// sub-configs) must validate.
func TestValidateAcceptsZeroDefaults(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero Config rejected: %v", err)
	}
	cfg := quickConfig()
	cfg.Load = &RateModel{}
	cfg.Autoscale = &Autoscale{}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zeroed sub-configs rejected: %v", err)
	}
	if err := fleetConfig(t).Validate(); err != nil {
		t.Fatalf("the fleet test scenario rejected: %v", err)
	}
}
