package serve

import (
	"cellport/internal/sim"
)

// The fleet autoscaler: a deterministic controller sampling virtual-time
// load signals on a fixed tick grid. Each tick reads two coordinator
// observables over the active pools — queue depth relative to capacity,
// and the estimated finish lag behind the frontier — averages them over
// a sliding window, and moves one pool per decision: activate the
// lowest-index drainable-back pool on sustained overload, drain the
// highest-index active pool on sustained idleness. Ticks are
// coordinator-scheduled instants exactly like planned faults (fenced in
// the sharded run, priority-ordered between faults and re-admissions in
// both loops), so every schedule decision is a pure function of the
// virtual history and fleet runs stay byte-identical at any worker
// count.

// Autoscale configures the fleet autoscaler. The zero value of each
// field selects its documented default; the struct itself is opt-in
// (Config.Autoscale nil runs a static fleet).
type Autoscale struct {
	// Interval is the virtual time between load samples (zero selects
	// 1/16 of the expected arrival span, so a default run takes ~16
	// samples).
	Interval sim.Duration
	// Window is how many consecutive samples are averaged before a
	// decision (default 3). The window refills from empty after every
	// scale action, giving the fleet time to absorb the change.
	Window int
	// High is the mean load above which a pool is activated (default 1:
	// the active blades hold roughly a full queue's worth of estimated
	// work each).
	High float64
	// Low is the mean load below which a pool is drained (default 0.25).
	Low float64
	// MinPools/MaxPools bound the active pool count (defaults 1 and
	// Config.Pools).
	MinPools int
	// MaxPools caps scale-up (default Config.Pools).
	MaxPools int
}

// autoscaler is the armed controller: resolved config, the tick grid,
// and the sliding sample window.
type autoscaler struct {
	cfg      Autoscale
	interval sim.Duration
	next     sim.Time
	window   []float64
	samples  int // lifetime samples taken (diagnostic)
}

// armAutoscale arms the controller on the fleet. span is the expected
// arrival span of the stream, the natural unit for the default sample
// interval. No-op outside fleet mode or without an Autoscale config.
func (p *pool) armAutoscale(span sim.Duration) {
	if p.fleet == nil || p.cfg.Autoscale == nil {
		return
	}
	a := *p.cfg.Autoscale
	if a.Window <= 0 {
		a.Window = 3
	}
	if a.High <= 0 {
		a.High = 1
	}
	if a.Low <= 0 {
		a.Low = 0.25
	}
	pools := len(p.fleet.pools)
	if a.MinPools <= 0 {
		a.MinPools = 1
	}
	if a.MinPools > pools {
		a.MinPools = pools
	}
	if a.MaxPools <= 0 || a.MaxPools > pools {
		a.MaxPools = pools
	}
	interval := a.Interval
	if interval <= 0 {
		interval = span / 16
	}
	if interval <= 0 {
		// Degenerate span (sub-femtosecond): fall back to a fixed grid
		// rather than a zero interval that would never advance the tick.
		interval = sim.Millisecond
	}
	p.fleet.scaler = &autoscaler{
		cfg:      a,
		interval: interval,
		next:     sim.Time(0).Add(interval),
		window:   make([]float64, 0, a.Window),
	}
}

// fleetLoad is the instantaneous load signal over the active pools'
// admittable blades: mean queue occupancy (fraction of MaxQueue) plus
// the mean estimated finish lag normalized to a full queue of
// single-request services. A balanced fleet at the edge of its capacity
// reads about 1.0. With no admittable blade in any active pool the
// signal saturates high, forcing a scale-up.
func (p *pool) fleetLoad() float64 {
	var queued, blades int
	var backlog sim.Duration
	for _, pl := range p.fleet.pools {
		if !pl.active {
			continue
		}
		for _, b := range pl.blades {
			if !b.health.admittable() {
				continue
			}
			blades++
			queued += len(b.queue)
			backlog += p.bladeScore(b)
		}
	}
	if blades == 0 {
		return 2 * p.fleet.scaler.cfg.High
	}
	unit := p.estOne(Request{})
	if unit <= 0 {
		unit = 1
	}
	occupancy := float64(queued) / float64(blades*p.cfg.MaxQueue)
	lag := float64(backlog) / float64(blades) / float64(unit) / float64(p.cfg.MaxQueue)
	return occupancy + lag
}

// autoscaleTick takes one load sample and applies at most one scale
// action. Coordinator-only, at a fenced instant: in the sharded run the
// wheels are quiescent, so the signals it reads are exactly what the
// sequential loop reads at the same virtual time.
func (p *pool) autoscaleTick() {
	f := p.fleet
	s := f.scaler
	s.samples++
	s.next = p.now.Add(s.interval)
	s.window = append(s.window, p.fleetLoad())
	if len(s.window) > s.cfg.Window {
		copy(s.window, s.window[1:])
		s.window = s.window[:len(s.window)-1]
	}
	if len(s.window) < s.cfg.Window {
		return
	}
	var sum float64
	for _, v := range s.window {
		sum += v
	}
	avg := sum / float64(len(s.window))
	active := f.activeCount()
	acted := false
	switch {
	case avg > s.cfg.High && active < s.cfg.MaxPools:
		acted = p.activatePool()
	case avg < s.cfg.Low && active > s.cfg.MinPools:
		acted = p.drainPool()
	}
	if acted {
		s.window = s.window[:0]
		if p.ctr != nil {
			p.ctr.Instant(coordLane, p.now, "autoscale action")
		}
	}
	if a := f.activeCount(); a < f.activeMin {
		f.activeMin = a
	}
}

// activatePool brings the lowest-index inactive pool with any revivable
// blade back into routing membership: parked blades power up through
// warming (warmup re-charged, like a restart), blades caught mid-drain
// resume admitting. Reports whether a pool was activated.
func (p *pool) activatePool() bool {
	f := p.fleet
	for _, pl := range f.pools {
		if pl.active {
			continue
		}
		revivable := false
		for _, b := range pl.blades {
			if b.health != healthDown {
				revivable = true
				break
			}
		}
		if !revivable {
			continue
		}
		pl.active = true
		f.scaleUps++
		for _, b := range pl.blades {
			switch {
			case b.health == healthParked:
				b.health = healthWarming
			case b.health == healthDraining && b.parkPending:
				// Caught mid-drain with its warmth and queue intact:
				// cancel the park and resume as up (no warmup recharge —
				// the blade never stopped).
				b.parkPending = false
				b.health = healthUp
			case b.health == healthStalled && b.parkPending:
				b.parkPending = false // stall will restore its pre-stall state
			}
		}
		f.rebuildRing()
		return true
	}
	return false
}

// drainPool removes the highest-index active pool from routing
// membership and drains its blades through the lifecycle machinery:
// each admittable blade flips to draining with the park flag set (it
// serves out its queue, then parks); a stalled blade inherits the park
// flag and enters its drain when the stall ends; fault-draining and
// down blades are left to their own transitions. Reports whether a pool
// was drained.
func (p *pool) drainPool() bool {
	f := p.fleet
	for i := len(f.pools) - 1; i >= 0; i-- {
		pl := f.pools[i]
		if !pl.active {
			continue
		}
		pl.active = false
		f.scaleDowns++
		for _, b := range pl.blades {
			switch {
			case b.health == healthStalled:
				b.parkPending = true
			case b.health.admittable():
				b.health = healthDraining
				b.parkPending = true
				p.maybePark(b, p.now)
			}
		}
		f.rebuildRing()
		return true
	}
	return false
}
