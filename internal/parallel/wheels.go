package parallel

import "cellport/internal/sim"

// RunWheels executes job(0..n-1) with the sharded DES engine as the
// execution substrate instead of a raw goroutine pool: each job runs as
// the sole event of its own wheel of a sim.ShardedEngine, and Drain fans
// the wheels out over up to `workers` goroutines (<= 0 selects
// GOMAXPROCS, 1 the sequential fallback). Results come back in index
// order and, like RunIndexed, the lowest-index error wins
// deterministically when several jobs fail.
//
// The point of routing embarrassingly parallel grids through wheels is
// uniformity, not speed: every fan-out in the repository — serve's
// per-blade event loop, the calibration table, the faults and scaling
// grids — then runs on the same engine with the same determinism
// contract, and a job that is itself a simulation may host its machine
// directly on its wheel (cell.Config.Engine) instead of nesting a
// private engine. Jobs must be independent: a job may not touch another
// job's wheel or shared mutable state.
//
// Unlike RunIndexed, a failure does not stop the remaining jobs — every
// wheel drains to completion — so jobs must be safe to run even after a
// sibling has failed.
func RunWheels[T any](workers, n int, job func(i int, wheel *sim.Engine) (T, error)) ([]T, error) {
	if n == 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)
	sh := sim.NewSharded(n, workers)
	for i := 0; i < n; i++ {
		i := i
		w := sh.Wheel(i)
		w.At(0, func() { results[i], errs[i] = job(i, w) })
	}
	if err := sh.Drain(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
