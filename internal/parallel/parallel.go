// Package parallel provides the bounded worker pool used to fan
// independent, deterministic simulation runs out over host goroutines.
// Both the experiment harness and the serving layer route their
// index-addressed job grids through RunIndexed, so parallel host
// execution returns byte-identical artifacts to the sequential path.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RunIndexed executes job(0..n-1) on up to `workers` goroutines and
// returns the results in index order. workers <= 0 means GOMAXPROCS;
// workers == 1 runs every job inline on the calling goroutine (the
// sequential path). On failure, every job that was already claimed runs
// to completion and the error of the lowest-index failing job is
// returned; only jobs not yet claimed when a failure was observed are
// skipped. Because indices are claimed in increasing order and a claimed
// job always executes, the lowest failing index is always among the
// executed jobs, so the returned error is deterministic no matter how
// the goroutines are scheduled (pinned by
// TestRunIndexedLowestIndexErrorDeterministic).
func RunIndexed[T any](workers, n int, job func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			r, err := job(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				// The failure check happens BEFORE claiming an index: once an
				// index is claimed its job always runs, so a lower-index
				// failure can never be silently skipped in favour of a
				// higher-index error that happened to complete first.
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, err := job(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
