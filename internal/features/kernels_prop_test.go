package features

import (
	"math/rand"
	"testing"

	"cellport/internal/img"
)

// Reference implementations of the remaining feature kernels, kept
// verbatim as oracles for the bounds-check-hoisted versions (the same
// pattern as accumulateCorrelogramReference).

// accumulateHistogramReference is the original per-pixel indexed scan.
func accumulateHistogramReference(a *HistAcc, im *img.RGB, y0, y1 int) {
	for y := y0; y < y1; y++ {
		row := im.Pix[y*im.Stride:]
		for x := 0; x < im.W; x++ {
			bin := img.QuantizeHSV166(row[3*x], row[3*x+1], row[3*x+2])
			a.Counts[bin]++
		}
		a.Pixels += uint64(im.W)
	}
}

// accumulateEdgeReference is the original uniformly clamped Sobel scan.
func accumulateEdgeReference(a *EdgeAcc, band *img.RGB, py0, py1 int) {
	w, h := band.W, band.H
	gray := band.Gray()
	at := func(x, y int) int {
		if x < 0 {
			x = 0
		}
		if x > w-1 {
			x = w - 1
		}
		if y < 0 {
			y = 0
		}
		if y > h-1 {
			y = h - 1
		}
		return int(gray[y*w+x])
	}
	for y := py0; y < py1; y++ {
		for x := 0; x < w; x++ {
			gx := -at(x-1, y-1) + at(x+1, y-1) +
				-2*at(x-1, y) + 2*at(x+1, y) +
				-at(x-1, y+1) + at(x+1, y+1)
			gy := -at(x-1, y-1) - 2*at(x, y-1) - at(x+1, y-1) +
				at(x-1, y+1) + 2*at(x, y+1) + at(x+1, y+1)
			a.Counts[edgeBin(gx, gy)]++
		}
	}
}

// haarTileReference is the original column-major in-place decomposition.
func haarTileReference(a *TexAcc, t *[TexTile][TexTile]int32) {
	size := TexTile
	var tmp [TexTile]int32
	for level := 0; level < texLevels; level++ {
		half := size / 2
		for y := 0; y < size; y++ {
			for x := 0; x < half; x++ {
				p, q := t[y][2*x], t[y][2*x+1]
				tmp[x] = (p + q) >> 1
				tmp[half+x] = p - q
			}
			copy(t[y][:size], tmp[:size])
		}
		for x := 0; x < size; x++ {
			for y := 0; y < half; y++ {
				p, q := t[2*y][x], t[2*y+1][x]
				tmp[y] = (p + q) >> 1
				tmp[half+y] = p - q
			}
			for y := 0; y < size; y++ {
				t[y][x] = tmp[y]
			}
		}
		var hl, lh, hh uint64
		for y := 0; y < half; y++ {
			for x := half; x < size; x++ {
				hl += absU(t[y][x])
			}
		}
		for y := half; y < size; y++ {
			for x := 0; x < half; x++ {
				lh += absU(t[y][x])
			}
			for x := half; x < size; x++ {
				hh += absU(t[y][x])
			}
		}
		a.Energy[level*3+0] += hl
		a.Energy[level*3+1] += lh
		a.Energy[level*3+2] += hh
		size = half
	}
	var ll uint64
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			ll += absU(t[y][x])
		}
	}
	a.Energy[9] += ll
}

// accumulateTextureReference is the original tile loop (clamped per-pixel
// load + column-major Haar).
func accumulateTextureReference(a *TexAcc, band *img.RGB, py0, py1 int) {
	w := band.W
	gray := band.Gray()
	var tile [TexTile][TexTile]int32
	for ty := py0; ty < py1; ty += TexTile {
		for tx := 0; tx < w; tx += TexTile {
			for y := 0; y < TexTile; y++ {
				sy := ty + y
				if sy > py1-1 {
					sy = py1 - 1
				}
				row := gray[sy*w:]
				for x := 0; x < TexTile; x++ {
					sx := tx + x
					if sx > w-1 {
						sx = w - 1
					}
					tile[y][x] = int32(row[sx])
				}
			}
			haarTileReference(a, &tile)
			a.Pixels += TexTile * TexTile
		}
	}
}

// randomImage builds either a synthesized full-width frame or a
// uniform-random image with dimensions biased toward kernel-geometry edge
// cases (single-pixel rows/columns, sub-window, sub-tile sizes).
func randomImage(rng *rand.Rand, trial int) *img.RGB {
	if trial < 4 {
		return img.Synthesize(rng.Uint64(), 352, 24+rng.Intn(40))
	}
	w := 1 + rng.Intn(3*TexTile-1)
	h := 1 + rng.Intn(3*TexTile-1)
	im := img.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
		}
	}
	return im
}

// TestHistogramMatchesReference: the hoisted-row histogram is bit-exact
// against the original scan, whole-image and split into arbitrary bands
// (pointwise kernel: no halo, any split works).
func TestHistogramMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		im := randomImage(rng, trial)
		var ref, opt HistAcc
		accumulateHistogramReference(&ref, im, 0, im.H)
		opt.AccumulateHistogram(im, 0, im.H)
		if ref != opt {
			t.Fatalf("trial %d (%dx%d): histogram diverges from reference", trial, im.W, im.H)
		}
		if im.H >= 2 {
			split := 1 + rng.Intn(im.H-1)
			var banded HistAcc
			banded.AccumulateHistogram(im, 0, split)
			banded.AccumulateHistogram(im, split, im.H)
			if banded != ref {
				t.Fatalf("trial %d (%dx%d split %d): banded histogram diverges", trial, im.W, im.H, split)
			}
		}
	}
}

// TestEdgeMatchesReference: the interior-fast-path Sobel scan is bit-exact
// against the uniformly clamped scan, whole-image and in halo'd bands.
func TestEdgeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		im := randomImage(rng, trial)
		w, h := im.W, im.H
		var ref, opt EdgeAcc
		accumulateEdgeReference(&ref, im, 0, h)
		opt.AccumulateEdge(im, 0, h)
		if ref != opt {
			t.Fatalf("trial %d (%dx%d): edge histogram diverges from reference", trial, w, h)
		}
		// Banded with EdgeRadius halos, as the SPE kernels run it.
		if h >= 2 {
			split := 1 + rng.Intn(h-1)
			var banded, bandedRef EdgeAcc
			for _, b := range [][2]int{{0, split}, {split, h}} {
				y0, y1 := b[0], b[1]
				haloTop := EdgeRadius
				if y0-haloTop < 0 {
					haloTop = y0
				}
				haloBot := EdgeRadius
				if y1+haloBot > h {
					haloBot = h - y1
				}
				band := im.Rows(y0-haloTop, y1+haloBot)
				banded.AccumulateEdge(band, haloTop, haloTop+(y1-y0))
				accumulateEdgeReference(&bandedRef, band, haloTop, haloTop+(y1-y0))
			}
			if banded != bandedRef {
				t.Fatalf("trial %d (%dx%d split %d): banded edge diverges from banded reference",
					trial, w, h, split)
			}
		}
	}
}

// TestTextureMatchesReference: the row-major Haar and hoisted tile load
// are bit-exact against the column-major original, whole-image and split
// at tile-aligned rows.
func TestTextureMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		im := randomImage(rng, trial)
		var ref, opt TexAcc
		accumulateTextureReference(&ref, im, 0, im.H)
		opt.AccumulateTexture(im, 0, im.H)
		if ref != opt {
			t.Fatalf("trial %d (%dx%d): texture diverges from reference", trial, im.W, im.H)
		}
		// Tile-aligned banding (the PlanSlices granularity contract).
		if im.H > TexTile {
			split := TexTile * (1 + rng.Intn((im.H-1)/TexTile))
			var banded TexAcc
			for _, b := range [][2]int{{0, split}, {split, im.H}} {
				band := im.Rows(b[0], b[1])
				banded.AccumulateTexture(band, 0, band.H)
			}
			if banded != ref {
				t.Fatalf("trial %d (%dx%d split %d): banded texture diverges", trial, im.W, im.H, split)
			}
		}
	}
}

func BenchmarkHistogram(b *testing.B) {
	im := img.Synthesize(13, 352, 240)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acc HistAcc
		acc.AccumulateHistogram(im, 0, im.H)
	}
}

func BenchmarkHistogramReference(b *testing.B) {
	im := img.Synthesize(13, 352, 240)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acc HistAcc
		accumulateHistogramReference(&acc, im, 0, im.H)
	}
}

func BenchmarkEdge(b *testing.B) {
	im := img.Synthesize(13, 352, 240)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acc EdgeAcc
		acc.AccumulateEdge(im, 0, im.H)
	}
}

func BenchmarkEdgeReference(b *testing.B) {
	im := img.Synthesize(13, 352, 240)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acc EdgeAcc
		accumulateEdgeReference(&acc, im, 0, im.H)
	}
}

func BenchmarkTexture(b *testing.B) {
	im := img.Synthesize(13, 352, 240)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acc TexAcc
		acc.AccumulateTexture(im, 0, im.H)
	}
}

func BenchmarkTextureReference(b *testing.B) {
	im := img.Synthesize(13, 352, 240)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acc TexAcc
		accumulateTextureReference(&acc, im, 0, im.H)
	}
}
