package features

import "cellport/internal/img"

// HistAcc accumulates color-histogram counts across row bands.
type HistAcc struct {
	Counts [HistBins]uint64
	Pixels uint64
}

// AccumulateHistogram adds rows [y0, y1) of im to the accumulator. The
// color histogram is pointwise, so bands need no halo.
//
// The inner loop walks a full-row slice in 3-byte steps so the compiler
// can hoist the bounds checks out of the per-pixel path; counts are exact
// integers, bit-identical to the naive scan (enforced by the
// reference-vs-optimized property test).
func (a *HistAcc) AccumulateHistogram(im *img.RGB, y0, y1 int) {
	w := im.W
	for y := y0; y < y1; y++ {
		off := y * im.Stride
		row := im.Pix[off : off+3*w : off+3*w]
		for ; len(row) >= 3; row = row[3:] {
			a.Counts[img.QuantizeHSV166(row[0], row[1], row[2])]++
		}
		a.Pixels += uint64(w)
	}
}

// Finalize returns the normalized 166-bin histogram.
func (a *HistAcc) Finalize() []float32 { return normalize(a.Counts[:]) }

// ColorHistogram computes the whole-image reference histogram [18]: the
// image's colors are quantized into the 166-bin HSV space and counted.
func ColorHistogram(im *img.RGB) []float32 {
	var acc HistAcc
	acc.AccumulateHistogram(im, 0, im.H)
	return acc.Finalize()
}

// Nominal per-pixel operation counts for the histogram kernel (integer
// HSV conversion, quantization, counter update). Used by the cost models.
const (
	HistOpsPerPixel      = 38.0
	HistBranchesPerPixel = 7.0
)
