package features

import "cellport/internal/img"

// HistAcc accumulates color-histogram counts across row bands.
type HistAcc struct {
	Counts [HistBins]uint64
	Pixels uint64
}

// AccumulateHistogram adds rows [y0, y1) of im to the accumulator. The
// color histogram is pointwise, so bands need no halo.
func (a *HistAcc) AccumulateHistogram(im *img.RGB, y0, y1 int) {
	for y := y0; y < y1; y++ {
		row := im.Pix[y*im.Stride:]
		for x := 0; x < im.W; x++ {
			bin := img.QuantizeHSV166(row[3*x], row[3*x+1], row[3*x+2])
			a.Counts[bin]++
		}
		a.Pixels += uint64(im.W)
	}
}

// Finalize returns the normalized 166-bin histogram.
func (a *HistAcc) Finalize() []float32 { return normalize(a.Counts[:]) }

// ColorHistogram computes the whole-image reference histogram [18]: the
// image's colors are quantized into the 166-bin HSV space and counted.
func ColorHistogram(im *img.RGB) []float32 {
	var acc HistAcc
	acc.AccumulateHistogram(im, 0, im.H)
	return acc.Finalize()
}

// Nominal per-pixel operation counts for the histogram kernel (integer
// HSV conversion, quantization, counter update). Used by the cost models.
const (
	HistOpsPerPixel      = 38.0
	HistBranchesPerPixel = 7.0
)
