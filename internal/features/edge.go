package features

import "cellport/internal/img"

// Edge-histogram geometry: Sobel is a 3×3 operator, so bands need one
// halo row per side.
const (
	EdgeRadius  = 1
	edgeAngles  = 8
	edgeMags    = 8
	sobelMaxMag = 2040 // max |gx|+|gy| for 8-bit input
)

// EdgeAcc accumulates edge-histogram counts across row bands.
type EdgeAcc struct {
	Counts [EdgeBins]uint64
}

// AccumulateEdge processes payload rows [py0, py1) of band (which includes
// any halo rows). The §5.2 pipeline: RGB→gray conversion, Sobel gradients,
// per-pixel edge angle and magnitude, then quantization into an
// 8-direction × 8-magnitude histogram. Gradients clamp (replicate) at the
// band edge, which coincides with the image edge exactly when no halo was
// available — the same border rule as the correlogram.
// Interior pixels (away from every clamped border) take a fast path over
// three hoisted row slices with no per-access clamping; border rows and
// columns keep the clamped scan. Gradients are exact integers, so the
// split is bit-identical to the uniform clamped scan (enforced by the
// reference-vs-optimized property test).
func (a *EdgeAcc) AccumulateEdge(band *img.RGB, py0, py1 int) {
	w, h := band.W, band.H
	gray := band.Gray()
	at := func(x, y int) int {
		if x < 0 {
			x = 0
		}
		if x > w-1 {
			x = w - 1
		}
		if y < 0 {
			y = 0
		}
		if y > h-1 {
			y = h - 1
		}
		return int(gray[y*w+x])
	}
	clamped := func(x, y int) {
		// Sobel operators.
		gx := -at(x-1, y-1) + at(x+1, y-1) +
			-2*at(x-1, y) + 2*at(x+1, y) +
			-at(x-1, y+1) + at(x+1, y+1)
		gy := -at(x-1, y-1) - 2*at(x, y-1) - at(x+1, y-1) +
			at(x-1, y+1) + 2*at(x, y+1) + at(x+1, y+1)
		a.Counts[edgeBin(gx, gy)]++
	}
	for y := py0; y < py1; y++ {
		if y < 1 || y > h-2 || w < 3 {
			for x := 0; x < w; x++ {
				clamped(x, y)
			}
			continue
		}
		up := gray[(y-1)*w : y*w : y*w]
		mid := gray[y*w : y*w+w : y*w+w]
		dn := gray[(y+1)*w : (y+1)*w+w : (y+1)*w+w]
		clamped(0, y)
		for x := 1; x < w-1; x++ {
			a00, a01, a02 := int(up[x-1]), int(up[x]), int(up[x+1])
			a10, a12 := int(mid[x-1]), int(mid[x+1])
			a20, a21, a22 := int(dn[x-1]), int(dn[x]), int(dn[x+1])
			gx := -a00 + a02 - 2*a10 + 2*a12 - a20 + a22
			gy := -a00 - 2*a01 - a02 + a20 + 2*a21 + a22
			a.Counts[edgeBin(gx, gy)]++
		}
		clamped(w-1, y)
	}
}

// edgeBin quantizes a gradient into one of 64 bins: the octant of the
// gradient direction (integer-only, no atan2 — the comparisons an SPE
// would use) crossed with the L1 magnitude level.
func edgeBin(gx, gy int) int {
	ax, ay := gx, gy
	if ax < 0 {
		ax = -ax
	}
	if ay < 0 {
		ay = -ay
	}
	mag := ax + ay
	magBin := mag * edgeMags / (sobelMaxMag + 1)
	if magBin >= edgeMags {
		magBin = edgeMags - 1
	}
	oct := 0
	if gy < 0 {
		oct |= 4
	}
	if gx < 0 {
		oct |= 2
	}
	if ay > ax {
		oct |= 1
	}
	return oct*edgeMags + magBin
}

// Finalize returns the normalized 64-bin edge histogram.
func (a *EdgeAcc) Finalize() []float32 { return normalize(a.Counts[:]) }

// EdgeHistogram computes the whole-image reference edge histogram.
func EdgeHistogram(im *img.RGB) []float32 {
	var acc EdgeAcc
	acc.AccumulateEdge(im, 0, im.H)
	return acc.Finalize()
}

// Nominal per-pixel operation counts (gray conversion, two 3×3
// convolutions, magnitude/octant quantization, counter update).
const (
	EdgeOpsPerPixel      = 5.0 + 22.0 + 10.0 + 2.0
	EdgeBranchesPerPixel = 9.0
)
