// Package features implements MARVEL's four visual feature extractors
// (§5.2): the 166-bin HSV color histogram, the color (auto)correlogram
// over a 17×17 window, the wavelet-energy texture feature, and the Sobel
// edge histogram — plus nominal operation counts per pixel that the cost
// models turn into virtual time.
//
// Every extractor comes in two forms that must agree exactly:
//
//   - a whole-image reference function (what the sequential C++
//     application computes), and
//   - a row-range accumulator over slices with halos (what the SPE
//     kernels compute incrementally as DMA'd bands arrive, §3.4).
//
// The agreement is the paper's "application functional at all times"
// invariant and is enforced by property tests.
package features

import "cellport/internal/img"

// Feature vector dimensions.
const (
	HistBins = img.HistBins // color histogram & correlogram: 166
	EdgeBins = 64           // 8 gradient octants × 8 magnitude levels
	TexBins  = 10           // 3 Haar levels × {LH,HL,HH} + final LL
)

// normalize converts counts to a unit-sum float32 vector (all-zero counts
// yield the zero vector).
func normalize(counts []uint64) []float32 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	out := make([]float32, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float32(float64(c) / float64(total))
	}
	return out
}
