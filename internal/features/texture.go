package features

import "cellport/internal/img"

// Texture geometry: the image is processed in 32×32 tiles (replicating
// edge pixels for partial tiles), each decomposed by a 3-level 2-D Haar
// transform; the feature is the distribution of absolute coefficient
// energy across the spatial-frequency subbands ([14], §5.2): for each
// level the HL, LH and HH detail bands, plus the final approximation.
const (
	TexTile   = 32
	texLevels = 3
)

// TexAcc accumulates subband energies across row bands. Tiling is
// anchored at the image origin, so bands must start at multiples of
// TexTile rows (PlanSlices' granularity argument) for band-wise
// accumulation to equal the whole-image computation.
type TexAcc struct {
	Energy [TexBins]uint64
	Pixels uint64
}

// AccumulateTexture processes payload rows [py0, py1) of band (no halo
// needed; py0 must be tile-aligned relative to the image unless it is 0).
func (a *TexAcc) AccumulateTexture(band *img.RGB, py0, py1 int) {
	w := band.W
	gray := band.Gray()
	var tile [TexTile][TexTile]int32
	for ty := py0; ty < py1; ty += TexTile {
		for tx := 0; tx < w; tx += TexTile {
			// Load tile with edge replication (within the payload rows:
			// vertical replication only happens at the true image bottom,
			// where the band ends).
			for y := 0; y < TexTile; y++ {
				sy := ty + y
				if sy > py1-1 {
					sy = py1 - 1
				}
				row := gray[sy*w:]
				for x := 0; x < TexTile; x++ {
					sx := tx + x
					if sx > w-1 {
						sx = w - 1
					}
					tile[y][x] = int32(row[sx])
				}
			}
			a.haarTile(&tile)
			a.Pixels += TexTile * TexTile
		}
	}
}

// haarTile runs the 3-level 2-D Haar decomposition in place and
// accumulates |coefficient| sums per subband.
func (a *TexAcc) haarTile(t *[TexTile][TexTile]int32) {
	size := TexTile
	var tmp [TexTile]int32
	for level := 0; level < texLevels; level++ {
		half := size / 2
		// Row pass on the current LL region.
		for y := 0; y < size; y++ {
			for x := 0; x < half; x++ {
				p, q := t[y][2*x], t[y][2*x+1]
				tmp[x] = (p + q) >> 1 // approximation
				tmp[half+x] = p - q   // detail
			}
			copy(t[y][:size], tmp[:size])
		}
		// Column pass.
		for x := 0; x < size; x++ {
			for y := 0; y < half; y++ {
				p, q := t[2*y][x], t[2*y+1][x]
				tmp[y] = (p + q) >> 1
				tmp[half+y] = p - q
			}
			for y := 0; y < size; y++ {
				t[y][x] = tmp[y]
			}
		}
		// Accumulate detail-band energies: HL (high x, low y), LH, HH.
		var hl, lh, hh uint64
		for y := 0; y < half; y++ {
			for x := half; x < size; x++ {
				hl += absU(t[y][x])
			}
		}
		for y := half; y < size; y++ {
			for x := 0; x < half; x++ {
				lh += absU(t[y][x])
			}
			for x := half; x < size; x++ {
				hh += absU(t[y][x])
			}
		}
		a.Energy[level*3+0] += hl
		a.Energy[level*3+1] += lh
		a.Energy[level*3+2] += hh
		size = half
	}
	// Final approximation band (size×size LL).
	var ll uint64
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			ll += absU(t[y][x])
		}
	}
	a.Energy[9] += ll
}

func absU(v int32) uint64 {
	if v < 0 {
		v = -v
	}
	return uint64(v)
}

// Finalize returns the 10-dimensional relative subband-energy vector.
func (a *TexAcc) Finalize() []float32 { return normalize(a.Energy[:]) }

// Texture computes the whole-image reference texture feature.
func Texture(im *img.RGB) []float32 {
	var acc TexAcc
	acc.AccumulateTexture(im, 0, im.H)
	return acc.Finalize()
}

// Nominal per-pixel operation counts (gray conversion, ~2.7 passes of the
// Haar butterfly per pixel across levels, energy accumulation). The
// transform's strided column accesses and short rows limit SIMD benefit —
// the structural reason TXExtract shows the weakest SPE speed-up in
// Table 1.
const (
	TexOpsPerPixel      = 5.0 + 11.0 + 2.0
	TexBranchesPerPixel = 4.0
)
