package features

import "cellport/internal/img"

// Texture geometry: the image is processed in 32×32 tiles (replicating
// edge pixels for partial tiles), each decomposed by a 3-level 2-D Haar
// transform; the feature is the distribution of absolute coefficient
// energy across the spatial-frequency subbands ([14], §5.2): for each
// level the HL, LH and HH detail bands, plus the final approximation.
const (
	TexTile   = 32
	texLevels = 3
)

// TexAcc accumulates subband energies across row bands. Tiling is
// anchored at the image origin, so bands must start at multiples of
// TexTile rows (PlanSlices' granularity argument) for band-wise
// accumulation to equal the whole-image computation.
type TexAcc struct {
	Energy [TexBins]uint64
	Pixels uint64
}

// AccumulateTexture processes payload rows [py0, py1) of band (no halo
// needed; py0 must be tile-aligned relative to the image unless it is 0).
func (a *TexAcc) AccumulateTexture(band *img.RGB, py0, py1 int) {
	w := band.W
	gray := band.Gray()
	var tile [TexTile][TexTile]int32
	for ty := py0; ty < py1; ty += TexTile {
		for tx := 0; tx < w; tx += TexTile {
			// Load tile with edge replication (within the payload rows:
			// vertical replication only happens at the true image bottom,
			// where the band ends). The in-bounds span copies from a
			// hoisted row slice; only the replicated tail clamps.
			for y := 0; y < TexTile; y++ {
				sy := ty + y
				if sy > py1-1 {
					sy = py1 - 1
				}
				row := gray[sy*w : sy*w+w : sy*w+w]
				dst := tile[y][:]
				n := w - tx
				if n > TexTile {
					n = TexTile
				}
				for x := 0; x < n; x++ {
					dst[x] = int32(row[tx+x])
				}
				last := int32(row[w-1])
				for x := n; x < TexTile; x++ {
					dst[x] = last
				}
			}
			a.haarTile(&tile)
			a.Pixels += TexTile * TexTile
		}
	}
}

// haarTile runs the 3-level 2-D Haar decomposition in place and
// accumulates |coefficient| sums per subband.
//
// Both butterfly passes walk hoisted row slices: the row pass works on a
// full-slice row, and the column pass is restructured row-major — the
// source row pair (2y, 2y+1) produces the approximation row y and detail
// row half+y of a scratch matrix, which is then copied back. (In-place
// row-pair writes are impossible: row half+y is a later iteration's
// source.) The strided per-column walk this replaces is the transform's
// structural weakness on real SPEs (see the note at the bottom of this
// file); here it just cost bounds checks and cache misses. All arithmetic
// is integer, so the layout change is bit-identical to the column-major
// pass (enforced by the reference-vs-optimized property test).
func (a *TexAcc) haarTile(t *[TexTile][TexTile]int32) {
	size := TexTile
	var tmp [TexTile]int32
	var sc [TexTile][TexTile]int32
	for level := 0; level < texLevels; level++ {
		half := size / 2
		// Row pass on the current LL region.
		for y := 0; y < size; y++ {
			row := t[y][:size:size]
			for x := 0; x < half; x++ {
				p, q := row[2*x], row[2*x+1]
				tmp[x] = (p + q) >> 1 // approximation
				tmp[half+x] = p - q   // detail
			}
			copy(row, tmp[:size])
		}
		// Column pass, row-major via the scratch matrix.
		for y := 0; y < half; y++ {
			r0 := t[2*y][:size:size]
			r1 := t[2*y+1][:size:size]
			approx := sc[y][:size:size]
			detail := sc[half+y][:size:size]
			for x := 0; x < size; x++ {
				p, q := r0[x], r1[x]
				approx[x] = (p + q) >> 1
				detail[x] = p - q
			}
		}
		for y := 0; y < size; y++ {
			copy(t[y][:size], sc[y][:size])
		}
		// Accumulate detail-band energies: HL (high x, low y), LH, HH.
		var hl, lh, hh uint64
		for y := 0; y < half; y++ {
			for _, v := range t[y][half:size] {
				hl += absU(v)
			}
		}
		for y := half; y < size; y++ {
			row := t[y][:size:size]
			for _, v := range row[:half] {
				lh += absU(v)
			}
			for _, v := range row[half:] {
				hh += absU(v)
			}
		}
		a.Energy[level*3+0] += hl
		a.Energy[level*3+1] += lh
		a.Energy[level*3+2] += hh
		size = half
	}
	// Final approximation band (size×size LL).
	var ll uint64
	for y := 0; y < size; y++ {
		for _, v := range t[y][:size] {
			ll += absU(v)
		}
	}
	a.Energy[9] += ll
}

func absU(v int32) uint64 {
	if v < 0 {
		v = -v
	}
	return uint64(v)
}

// Finalize returns the 10-dimensional relative subband-energy vector.
func (a *TexAcc) Finalize() []float32 { return normalize(a.Energy[:]) }

// Texture computes the whole-image reference texture feature.
func Texture(im *img.RGB) []float32 {
	var acc TexAcc
	acc.AccumulateTexture(im, 0, im.H)
	return acc.Finalize()
}

// Nominal per-pixel operation counts (gray conversion, ~2.7 passes of the
// Haar butterfly per pixel across levels, energy accumulation). The
// transform's strided column accesses and short rows limit SIMD benefit —
// the structural reason TXExtract shows the weakest SPE speed-up in
// Table 1.
const (
	TexOpsPerPixel      = 5.0 + 11.0 + 2.0
	TexBranchesPerPixel = 4.0
)
