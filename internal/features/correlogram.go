package features

import "cellport/internal/img"

// Correlogram geometry (§5.2: "a square window of size 17x17 around P").
const (
	CorrWindow = 17
	CorrRadius = CorrWindow / 2 // halo rows required per side
)

// CorrAcc accumulates color-autocorrelogram statistics across row bands.
// For every pixel P of quantized color c, Same[c] counts the neighbours
// inside P's (clamped) 17×17 window sharing c, and Total[c] counts all
// neighbours considered — so the finalized feature is the per-color
// clustering probability ([10]).
type CorrAcc struct {
	Same  [HistBins]uint64
	Total [HistBins]uint64
}

// AccumulateCorrelogram processes payload rows [py0, py1) of band, a
// sub-image that already includes any halo rows (up to CorrRadius above
// and below the payload). Windows are clamped to the band: for interior
// bands the halo guarantees the window never reaches the band edge, and
// for bands at the image boundary the band edge *is* the image boundary —
// the §3.4 border-condition rule.
//
// The window is maintained as a sliding per-color census: stepping P from
// x to x+1 subtracts the column leaving the window and adds the column
// entering it, so each pixel costs O(CorrWindow) column work instead of
// the O(CorrWindow²) full rescan. Counts are exact integers, so Same and
// Total are bit-identical to the reference scan (enforced by the
// reference-vs-optimized property test).
func (a *CorrAcc) AccumulateCorrelogram(band *img.RGB, py0, py1 int) {
	w, h := band.W, band.H
	bins := make([]int32, w*h)
	img.QuantizeRows(band, 0, h, bins)
	var cnt [HistBins]uint32 // per-color census of the current window
	for y := py0; y < py1; y++ {
		yLo, yHi := y-CorrRadius, y+CorrRadius
		if yLo < 0 {
			yLo = 0
		}
		if yHi > h-1 {
			yHi = h - 1
		}
		winH := uint64(yHi - yLo + 1)
		// Seed the census with the window of x=0: columns [0, min(R, w-1)].
		for i := range cnt {
			cnt[i] = 0
		}
		seedHi := CorrRadius
		if seedHi > w-1 {
			seedHi = w - 1
		}
		for wy := yLo; wy <= yHi; wy++ {
			row := bins[wy*w : wy*w+w]
			for wx := 0; wx <= seedHi; wx++ {
				cnt[row[wx]]++
			}
		}
		winW := uint64(seedHi + 1)
		for x := 0; x < w; x++ {
			if x > 0 {
				if in := x + CorrRadius; in <= w-1 {
					for wy := yLo; wy <= yHi; wy++ {
						cnt[bins[wy*w+in]]++
					}
					winW++
				}
				if out := x - CorrRadius - 1; out >= 0 {
					for wy := yLo; wy <= yHi; wy++ {
						cnt[bins[wy*w+out]]--
					}
					winW--
				}
			}
			c := bins[y*w+x]
			// Exclude P itself from both numerator and denominator.
			a.Same[c] += uint64(cnt[c]) - 1
			a.Total[c] += winH*winW - 1
		}
	}
}

// Finalize returns the 166-dimensional autocorrelogram: for each color,
// the probability that a window neighbour of a pixel of that color shares
// it (zero for colors absent from the image).
func (a *CorrAcc) Finalize() []float32 {
	out := make([]float32, HistBins)
	for c := 0; c < HistBins; c++ {
		if a.Total[c] > 0 {
			out[c] = float32(float64(a.Same[c]) / float64(a.Total[c]))
		}
	}
	return out
}

// ColorCorrelogram computes the whole-image reference autocorrelogram.
func ColorCorrelogram(im *img.RGB) []float32 {
	var acc CorrAcc
	acc.AccumulateCorrelogram(im, 0, im.H)
	return acc.Finalize()
}

// Nominal per-pixel operation counts: quantization plus one
// compare-accumulate per window position. The window walk is byte-wide
// and branch-light when vectorized (compare + sum across 16 lanes), which
// is why the optimized SPE version SIMDizes so well.
const (
	CorrOpsPerPixel      = 38.0 + 2.0*CorrWindow*CorrWindow
	CorrBranchesPerPixel = 7.0 + CorrWindow // one loop branch per window row
)
