package features

import (
	"math"
	"testing"
	"testing/quick"

	"cellport/internal/img"
)

func sum32(v []float32) float64 {
	s := 0.0
	for _, x := range v {
		s += float64(x)
	}
	return s
}

func vecEqual(a, b []float32, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(float64(a[i])-float64(b[i])) > tol {
			return false
		}
	}
	return true
}

// --- color histogram -----------------------------------------------------

func TestHistogramSumsToOne(t *testing.T) {
	im := img.Synthesize(1, 80, 60)
	h := ColorHistogram(im)
	if len(h) != HistBins {
		t.Fatalf("len = %d", len(h))
	}
	if s := sum32(h); math.Abs(s-1) > 1e-5 {
		t.Fatalf("histogram sums to %v", s)
	}
}

func TestHistogramUniformImage(t *testing.T) {
	im := img.New(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			im.Set(x, y, 255, 0, 0)
		}
	}
	h := ColorHistogram(im)
	bin := img.QuantizeHSV166(255, 0, 0)
	if h[bin] != 1 {
		t.Fatalf("uniform image: bin %d = %v, want 1", bin, h[bin])
	}
}

func TestHistogramBandDecomposition(t *testing.T) {
	f := func(seed uint16, cut uint8) bool {
		im := img.Synthesize(uint64(seed), 48, 36)
		full := ColorHistogram(im)
		mid := int(cut)%(im.H-1) + 1
		var acc HistAcc
		acc.AccumulateHistogram(im, 0, mid)
		acc.AccumulateHistogram(im, mid, im.H)
		return vecEqual(full, acc.Finalize(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- correlogram ---------------------------------------------------------

func TestCorrelogramUniformImageIsOne(t *testing.T) {
	im := img.New(40, 40)
	for y := 0; y < 40; y++ {
		for x := 0; x < 40; x++ {
			im.Set(x, y, 0, 255, 0)
		}
	}
	c := ColorCorrelogram(im)
	bin := img.QuantizeHSV166(0, 255, 0)
	if math.Abs(float64(c[bin])-1) > 1e-6 {
		t.Fatalf("uniform correlogram = %v, want 1", c[bin])
	}
	for i, v := range c {
		if i != bin && v != 0 {
			t.Fatalf("bin %d = %v, want 0", i, v)
		}
	}
}

func TestCorrelogramValuesInUnitRange(t *testing.T) {
	im := img.Synthesize(5, 64, 48)
	for i, v := range ColorCorrelogram(im) {
		if v < 0 || v > 1 {
			t.Fatalf("corr[%d] = %v outside [0,1]", i, v)
		}
	}
}

// TestCorrelogramSliceDecomposition is the paper's functional invariant:
// processing halo'd slices incrementally must reproduce the whole-image
// correlogram exactly.
func TestCorrelogramSliceDecomposition(t *testing.T) {
	f := func(seed uint16, maxRaw uint8) bool {
		im := img.Synthesize(uint64(seed), 40, 70)
		full := ColorCorrelogram(im)
		maxRows := int(maxRaw)%40 + 2*CorrRadius + 1
		slices, err := img.PlanSlices(im.H, maxRows, CorrRadius, 1)
		if err != nil {
			return false
		}
		var acc CorrAcc
		for _, s := range slices {
			band := im.Rows(s.TransferY0(), s.TransferY1())
			acc.AccumulateCorrelogram(band, s.HaloTop, s.HaloTop+s.PayloadRows())
		}
		return vecEqual(full, acc.Finalize(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelogramInsufficientHaloDiffers(t *testing.T) {
	// Sanity check that the invariant is non-trivial: slicing with NO halo
	// must (generally) change the result.
	im := img.Synthesize(11, 40, 64)
	full := ColorCorrelogram(im)
	var acc CorrAcc
	acc.AccumulateCorrelogram(im.Rows(0, 32), 0, 32)
	acc.AccumulateCorrelogram(im.Rows(32, 64), 0, 32)
	if vecEqual(full, acc.Finalize(), 1e-12) {
		t.Fatal("halo-free slicing accidentally matched; test image too uniform")
	}
}

// --- edge histogram ------------------------------------------------------

func TestEdgeHistogramFlatImageHasNoEdges(t *testing.T) {
	im := img.New(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			im.Set(x, y, 100, 150, 200)
		}
	}
	e := EdgeHistogram(im)
	// All gradient mass in octant 0, magnitude 0.
	if math.Abs(float64(e[0])-1) > 1e-6 {
		t.Fatalf("flat image edge histogram = %v, want bin0=1", e[0])
	}
}

func TestEdgeHistogramVerticalEdgeDirection(t *testing.T) {
	// Left half black, right half white: gradients point in +x with zero
	// gy on interior rows, i.e. octants with gx>0, ax>=ay (oct 0).
	im := img.New(32, 32)
	for y := 0; y < 32; y++ {
		for x := 16; x < 32; x++ {
			im.Set(x, y, 255, 255, 255)
		}
	}
	e := EdgeHistogram(im)
	var oct0, others float64
	for b, v := range e {
		if b/8 == 0 {
			oct0 += float64(v)
		} else if v > 0 {
			others += float64(v)
		}
	}
	if oct0 < 0.95 {
		t.Fatalf("vertical edge: octant0 mass = %v (others %v)", oct0, others)
	}
}

func TestEdgeBinRange(t *testing.T) {
	f := func(gxr, gyr int16) bool {
		gx := int(gxr) % (sobelMaxMag/2 + 1)
		gy := int(gyr) % (sobelMaxMag/2 + 1)
		b := edgeBin(gx, gy)
		return b >= 0 && b < EdgeBins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeSliceDecomposition(t *testing.T) {
	f := func(seed uint16, maxRaw uint8) bool {
		im := img.Synthesize(uint64(seed)+100, 36, 50)
		full := EdgeHistogram(im)
		maxRows := int(maxRaw)%30 + 2*EdgeRadius + 1
		slices, err := img.PlanSlices(im.H, maxRows, EdgeRadius, 1)
		if err != nil {
			return false
		}
		var acc EdgeAcc
		for _, s := range slices {
			band := im.Rows(s.TransferY0(), s.TransferY1())
			acc.AccumulateEdge(band, s.HaloTop, s.HaloTop+s.PayloadRows())
		}
		return vecEqual(full, acc.Finalize(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// --- texture -------------------------------------------------------------

func TestTextureFlatImageEnergyInLL(t *testing.T) {
	im := img.New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			im.Set(x, y, 200, 200, 200)
		}
	}
	tx := Texture(im)
	if math.Abs(float64(tx[9])-1) > 1e-6 {
		t.Fatalf("flat texture: LL share = %v, want 1 (vector %v)", tx[9], tx)
	}
}

func TestTextureCheckerboardHasDetailEnergy(t *testing.T) {
	im := img.New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			if (x+y)%2 == 0 {
				im.Set(x, y, 255, 255, 255)
			}
		}
	}
	tx := Texture(im)
	// A 1-pixel checkerboard concentrates energy in the level-1 HH band.
	if tx[2] < 0.5 {
		t.Fatalf("checkerboard HH1 share = %v, want dominant (vector %v)", tx[2], tx)
	}
}

func TestTextureTileAlignedSliceDecomposition(t *testing.T) {
	f := func(seed uint16) bool {
		im := img.Synthesize(uint64(seed)+500, 96, 160)
		full := Texture(im)
		slices, err := img.PlanSlices(im.H, 64, 0, TexTile)
		if err != nil {
			return false
		}
		var acc TexAcc
		for _, s := range slices {
			band := im.Rows(s.TransferY0(), s.TransferY1())
			acc.AccumulateTexture(band, 0, band.H)
		}
		return vecEqual(full, acc.Finalize(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTexturePartialTilesHandled(t *testing.T) {
	// 50×45 image: partial tiles on both axes must not panic and must
	// produce a unit-sum vector.
	im := img.Synthesize(77, 50, 45)
	tx := Texture(im)
	if s := sum32(tx); math.Abs(s-1) > 1e-5 {
		t.Fatalf("partial-tile texture sums to %v", s)
	}
}

// --- shared --------------------------------------------------------------

func TestNormalizeZeroCounts(t *testing.T) {
	out := normalize(make([]uint64, 5))
	for _, v := range out {
		if v != 0 {
			t.Fatal("zero counts should normalize to zero vector")
		}
	}
}

func TestAllFeatureVectorsHaveDeclaredDims(t *testing.T) {
	im := img.Synthesize(2, 352, 240)
	if got := len(ColorHistogram(im)); got != 166 {
		t.Errorf("CH dim = %d", got)
	}
	if got := len(ColorCorrelogram(im)); got != 166 {
		t.Errorf("CC dim = %d", got)
	}
	if got := len(EdgeHistogram(im)); got != 64 {
		t.Errorf("EH dim = %d", got)
	}
	if got := len(Texture(im)); got != 10 {
		t.Errorf("TX dim = %d", got)
	}
}

func BenchmarkColorHistogram352x240(b *testing.B) {
	im := img.Synthesize(1, 352, 240)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ColorHistogram(im)
	}
}

func BenchmarkColorCorrelogram352x240(b *testing.B) {
	im := img.Synthesize(1, 352, 240)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ColorCorrelogram(im)
	}
}

func BenchmarkEdgeHistogram352x240(b *testing.B) {
	im := img.Synthesize(1, 352, 240)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeHistogram(im)
	}
}

func BenchmarkTexture352x240(b *testing.B) {
	im := img.Synthesize(1, 352, 240)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Texture(im)
	}
}
