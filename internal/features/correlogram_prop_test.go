package features

import (
	"math/rand"
	"testing"

	"cellport/internal/img"
)

// accumulateCorrelogramReference is the original O(CorrWindow²)-per-pixel
// full-window rescan, kept verbatim as the oracle for the sliding-window
// implementation.
func accumulateCorrelogramReference(a *CorrAcc, band *img.RGB, py0, py1 int) {
	w, h := band.W, band.H
	bins := make([]int32, w*h)
	img.QuantizeRows(band, 0, h, bins)
	for y := py0; y < py1; y++ {
		yLo, yHi := y-CorrRadius, y+CorrRadius
		if yLo < 0 {
			yLo = 0
		}
		if yHi > h-1 {
			yHi = h - 1
		}
		for x := 0; x < w; x++ {
			c := bins[y*w+x]
			xLo, xHi := x-CorrRadius, x+CorrRadius
			if xLo < 0 {
				xLo = 0
			}
			if xHi > w-1 {
				xHi = w - 1
			}
			same := uint64(0)
			for wy := yLo; wy <= yHi; wy++ {
				row := bins[wy*w:]
				for wx := xLo; wx <= xHi; wx++ {
					if row[wx] == c {
						same++
					}
				}
			}
			a.Same[c] += same - 1
			a.Total[c] += uint64((yHi-yLo+1)*(xHi-xLo+1) - 1)
		}
	}
}

// TestCorrelogramSlidingWindowMatchesReference is the bit-exactness
// property: across random seeded images — including degenerate widths and
// heights smaller than the window, where every band is boundary-clamped —
// the sliding-window accumulator produces exactly the reference Same and
// Total arrays, both whole-image and split into halo'd bands.
func TestCorrelogramSlidingWindowMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20070710))
	for trial := 0; trial < 40; trial++ {
		// Bias toward window-sized edge cases: dims in [1, 3*CorrWindow).
		w := 1 + rng.Intn(3*CorrWindow-1)
		h := 1 + rng.Intn(3*CorrWindow-1)
		var im *img.RGB
		if trial < 4 { // a few full-width frames like the real workload
			w, h = 352, 24+rng.Intn(40)
			im = img.Synthesize(rng.Uint64(), w, h)
		} else { // uniform-random pixels exercise every color bin
			im = img.New(w, h)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					im.Set(x, y, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
				}
			}
		}

		var ref, opt CorrAcc
		accumulateCorrelogramReference(&ref, im, 0, h)
		opt.AccumulateCorrelogram(im, 0, h)
		if ref != opt {
			t.Fatalf("trial %d (%dx%d): whole-image sliding window diverges from reference", trial, w, h)
		}

		// Banded accumulation with halos, as the SPE kernels run it: split
		// the payload at a random row, give each band CorrRadius halo rows
		// clamped at the image bounds.
		if h >= 2 {
			split := 1 + rng.Intn(h-1)
			var banded CorrAcc
			for _, b := range [][2]int{{0, split}, {split, h}} {
				y0, y1 := b[0], b[1]
				haloTop := CorrRadius
				if y0-haloTop < 0 {
					haloTop = y0
				}
				haloBot := CorrRadius
				if y1+haloBot > h {
					haloBot = h - y1
				}
				band := im.Rows(y0-haloTop, y1+haloBot)
				banded.AccumulateCorrelogram(band, haloTop, haloTop+(y1-y0))
			}
			var bandedRef CorrAcc
			for _, b := range [][2]int{{0, split}, {split, h}} {
				y0, y1 := b[0], b[1]
				haloTop := CorrRadius
				if y0-haloTop < 0 {
					haloTop = y0
				}
				haloBot := CorrRadius
				if y1+haloBot > h {
					haloBot = h - y1
				}
				band := im.Rows(y0-haloTop, y1+haloBot)
				accumulateCorrelogramReference(&bandedRef, band, haloTop, haloTop+(y1-y0))
			}
			if banded != bandedRef {
				t.Fatalf("trial %d (%dx%d split %d): banded sliding window diverges from banded reference",
					trial, w, h, split)
			}
		}
	}
}

func BenchmarkCorrelogramSlidingWindow(b *testing.B) {
	im := img.Synthesize(13, 352, 240)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acc CorrAcc
		acc.AccumulateCorrelogram(im, 0, im.H)
	}
}

func BenchmarkCorrelogramReference(b *testing.B) {
	im := img.Synthesize(13, 352, 240)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acc CorrAcc
		accumulateCorrelogramReference(&acc, im, 0, im.H)
	}
}
