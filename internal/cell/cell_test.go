package cell

import (
	"bytes"
	"strings"
	"testing"

	"cellport/internal/ls"
	"cellport/internal/sim"
	"cellport/internal/spe"
	"cellport/internal/trace"
)

func TestMachineBringUp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemorySize = 16 << 20
	m := New(cfg)
	if len(m.SPEs) != 8 {
		t.Fatalf("SPEs = %d, want 8", len(m.SPEs))
	}
	if m.Memory.Size() != 16<<20 {
		t.Fatalf("memory = %d", m.Memory.Size())
	}
	d, err := m.RunMain("noop", func(ctx *Context) {})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("noop main took %v, want 0", d)
	}
}

func TestPPEComputeAdvancesTime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemorySize = 16 << 20
	m := New(cfg)
	d, err := m.RunMain("work", func(ctx *Context) {
		ctx.ComputeScalar(1.6e9, "busy") // exactly 1 s on the PPE model
	})
	if err != nil {
		t.Fatal(err)
	}
	if d != sim.Second {
		t.Fatalf("elapsed = %v, want 1s", d)
	}
}

// TestMailboxRoundTrip exercises the full §3.5 protocol: PPE writes a
// command and an address; the SPE program reads both, "computes", and
// answers through the outbound mailbox which the PPE polls.
func TestMailboxRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemorySize = 16 << 20
	m := New(cfg)
	echo := spe.Program{
		Name:      "echo",
		CodeBytes: 4096,
		Main: func(ctx *spe.Context) {
			for {
				op := ctx.ReadInMbox()
				if op == 0xFFFF {
					return
				}
				arg := ctx.ReadInMbox()
				ctx.ComputeScalar(1000, "echo-work")
				ctx.WriteOutMbox(op + arg)
			}
		},
	}
	var got uint32
	d, err := m.RunMain("driver", func(ctx *Context) {
		if err := ctx.LoadSPE(0, echo); err != nil {
			t.Error(err)
			return
		}
		ctx.WriteInMbox(0, 40)
		ctx.WriteInMbox(0, 2)
		got = ctx.PollOutMbox(0)
		ctx.WriteInMbox(0, 0xFFFF)
		ctx.WaitSPE(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("round trip = %d, want 42", got)
	}
	if d <= 0 {
		t.Fatal("round trip should take virtual time")
	}
}

func TestInterruptMailboxPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemorySize = 16 << 20
	m := New(cfg)
	prog := spe.Program{
		Name:      "intr",
		CodeBytes: 4096,
		Main: func(ctx *spe.Context) {
			v := ctx.ReadInMbox()
			ctx.WriteOutIntrMbox(v * 2)
		},
	}
	var got uint32
	_, err := m.RunMain("driver", func(ctx *Context) {
		if err := ctx.LoadSPE(3, prog); err != nil {
			t.Error(err)
			return
		}
		ctx.WriteInMbox(3, 21)
		got = ctx.WaitOutIntrMbox(3)
		ctx.WaitSPE(3)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("interrupt path = %d, want 42", got)
	}
}

// TestSPEDMAKernel runs a real data-moving kernel: the PPE places bytes in
// main memory, the SPE DMAs them in, transforms them, DMAs them back.
func TestSPEDMAKernel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemorySize = 16 << 20
	m := New(cfg)
	const n = 4096
	in := m.Memory.MustAlloc(n, 128)
	out := m.Memory.MustAlloc(n, 128)
	src := m.Memory.Bytes(in, n)
	for i := range src {
		src[i] = byte(i * 7)
	}
	kernel := spe.Program{
		Name:      "negate",
		CodeBytes: 8192,
		Main: func(ctx *spe.Context) {
			buf := ctx.Store().MustAlloc(n, 128)
			if err := ctx.Get(buf, in, n, 0); err != nil {
				t.Error(err)
				return
			}
			ctx.WaitTag(0)
			b := ctx.Store().Bytes(buf, n)
			for i := range b {
				b[i] = ^b[i]
			}
			ctx.ComputeSIMD(n, 8, 0.9, "negate")
			if err := ctx.Put(buf, out, n, 1); err != nil {
				t.Error(err)
				return
			}
			ctx.WaitTag(1)
			ctx.WriteOutMbox(1)
		},
	}
	_, err := m.RunMain("driver", func(ctx *Context) {
		if err := ctx.LoadSPE(0, kernel); err != nil {
			t.Error(err)
			return
		}
		ctx.PollOutMbox(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, n)
	for i := range want {
		want[i] = ^byte(i * 7)
	}
	if !bytes.Equal(m.Memory.Bytes(out, n), want) {
		t.Fatal("SPE kernel output wrong")
	}
	if m.SPE(0).DMAWait() <= 0 {
		t.Error("expected nonzero DMA wait accounting")
	}
	if m.SPE(0).BusyTime() <= 0 {
		t.Error("expected nonzero busy accounting")
	}
}

func TestLoadRejectsOversizedProgram(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemorySize = 16 << 20
	m := New(cfg)
	_, err := m.RunMain("driver", func(ctx *Context) {
		err := ctx.LoadSPE(0, spe.Program{Name: "huge", CodeBytes: ls.Size, Main: func(*spe.Context) {}})
		if err == nil || !strings.Contains(err.Error(), "local store") {
			t.Errorf("oversized load error = %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsDoubleLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemorySize = 16 << 20
	m := New(cfg)
	_, err := m.RunMain("driver", func(ctx *Context) {
		idle := spe.Program{Name: "idle", CodeBytes: 1024, Main: func(c *spe.Context) { c.ReadInMbox() }}
		if err := ctx.LoadSPE(1, idle); err != nil {
			t.Error(err)
		}
		if err := ctx.LoadSPE(1, idle); err == nil {
			t.Error("double load accepted")
		}
		ctx.WriteInMbox(1, 0)
		ctx.WaitSPE(1)
		// After the program exits the SPE is reloadable.
		if err := ctx.LoadSPE(1, idle); err != nil {
			t.Errorf("reload failed: %v", err)
		}
		ctx.WriteInMbox(1, 0)
		ctx.WaitSPE(1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSignalPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemorySize = 16 << 20
	m := New(cfg)
	var got uint32
	prog := spe.Program{
		Name:      "sigwait",
		CodeBytes: 2048,
		Main: func(ctx *spe.Context) {
			got = ctx.ReadSignal1()
			ctx.WriteOutMbox(0)
		},
	}
	_, err := m.RunMain("driver", func(ctx *Context) {
		if err := ctx.LoadSPE(2, prog); err != nil {
			t.Error(err)
			return
		}
		ctx.SendSignal1(2, 0xBEEF)
		ctx.PollOutMbox(2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xBEEF {
		t.Fatalf("signal = %#x, want 0xBEEF", got)
	}
}

func TestTracerReceivesSpans(t *testing.T) {
	cfg := DefaultConfig()
	rec := trace.NewRecorder()
	cfg.Tracer = rec
	m := New(cfg)
	_, err := m.RunMain("traced", func(ctx *Context) {
		ctx.ComputeScalar(1e6, "ppe-work")
		prog := spe.Program{Name: "w", CodeBytes: 1024, Main: func(c *spe.Context) {
			c.ComputeScalar(1e6, "spe-work")
		}}
		if err := ctx.LoadSPE(0, prog); err != nil {
			t.Error(err)
		}
		ctx.WaitSPE(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	lanes := rec.Lanes()
	if len(lanes) != 2 || lanes[0] != "PPE" || lanes[1] != "SPE0" {
		t.Fatalf("lanes = %v", lanes)
	}
	var sb strings.Builder
	if err := rec.Gantt(&sb, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "PPE") || !strings.Contains(sb.String(), "C") {
		t.Fatalf("gantt rendering missing content:\n%s", sb.String())
	}
}

func TestParallelSPEsOverlap(t *testing.T) {
	// Two SPEs each computing 1s driven from one PPE thread via Send-style
	// commands must finish in ~1s, not 2s.
	cfg := DefaultConfig()
	cfg.MemorySize = 16 << 20
	m := New(cfg)
	work := spe.Program{
		Name:      "work",
		CodeBytes: 2048,
		Main: func(ctx *spe.Context) {
			ctx.ReadInMbox()
			ctx.ComputeScalar(0.35*3.2e9, "1s-of-work") // exactly 1 s at SPU scalar rate
			ctx.WriteOutMbox(1)
		},
	}
	d, err := m.RunMain("driver", func(ctx *Context) {
		for i := 0; i < 2; i++ {
			if err := ctx.LoadSPE(i, work); err != nil {
				t.Error(err)
			}
		}
		ctx.WriteInMbox(0, 1)
		ctx.WriteInMbox(1, 1)
		ctx.PollOutMbox(0)
		ctx.PollOutMbox(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Seconds() > 1.01 {
		t.Fatalf("parallel SPEs took %v, want about 1s", d)
	}
}
