// Package cell assembles the simulated Cell Broadband Engine: one PPE,
// eight SPEs (configurable), the EIB, and main memory, and provides the
// PPE-side programming interface the paper's SPEInterface stub builds on
// (the libspe analogs: loading SPE programs, mailbox access, signals).
package cell

import (
	"fmt"

	"cellport/internal/cost"
	"cellport/internal/eib"
	"cellport/internal/fault"
	"cellport/internal/ls"
	"cellport/internal/mainmem"
	"cellport/internal/metrics"
	"cellport/internal/mfc"
	"cellport/internal/sim"
	"cellport/internal/spe"
	"cellport/internal/trace"
)

// Config describes a machine instance.
type Config struct {
	NumSPEs    int
	MemorySize uint32
	Bus        eib.Config
	MFC        mfc.Config
	PPEModel   *cost.Model
	SPEModel   *cost.Model
	Tracer     trace.Tracer
	// Metrics, when non-nil, receives the machine's instrumentation
	// (per-SPE time split, MFC histograms, EIB shares; see
	// HarvestMetrics). The nil path hands nil-safe handles to every
	// component, so an unobserved machine takes its exact unobserved path
	// — instrumentation never adds engine events or virtual time either
	// way, keeping the replay fingerprint (EventCount) identical.
	Metrics *metrics.Registry
	// MboxAccessCost is PPE time per MMIO mailbox access; mailbox reads
	// and writes from the PPE cross the bus and are not cheap.
	MboxAccessCost sim.Duration
	// PollInterval is the PPE's polling period in SendAndWait-style busy
	// loops (spe_stat_out_mbox spin).
	PollInterval sim.Duration
	// Engine, when non-nil, hosts the machine on an externally owned
	// event wheel instead of a private engine — the hook that lets a
	// sharded run (sim.ShardedEngine) place each machine on its own
	// wheel. The machine must be the wheel's only tenant; results are
	// identical to a private engine.
	Engine *sim.Engine
}

// DefaultConfig returns a standard 8-SPE, 256 MB machine.
func DefaultConfig() Config {
	return Config{
		NumSPEs:        8,
		MemorySize:     256 << 20,
		Bus:            eib.DefaultConfig(),
		MFC:            mfc.DefaultConfig(),
		PPEModel:       cost.NewPPE(),
		SPEModel:       cost.NewSPE(),
		MboxAccessCost: 50 * sim.Nanosecond,
		PollInterval:   250 * sim.Nanosecond,
	}
}

// Machine is a simulated Cell B.E.
type Machine struct {
	cfg    Config
	Engine *sim.Engine
	Bus    *eib.Bus
	Memory *mainmem.Memory
	SPEs   []*spe.SPE
	tracer trace.Tracer
}

// New builds a machine from the configuration.
func New(cfg Config) *Machine {
	if cfg.NumSPEs <= 0 {
		panic("cell: need at least one SPE")
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.Nop{}
	}
	e := cfg.Engine
	if e == nil {
		e = sim.NewEngine()
	}
	bus := eib.New(e, cfg.Bus)
	mem := mainmem.New(cfg.MemorySize)
	m := &Machine{cfg: cfg, Engine: e, Bus: bus, Memory: mem, tracer: cfg.Tracer}
	for i := 0; i < cfg.NumSPEs; i++ {
		s := spe.New(e, i, bus, mem, cfg.SPEModel, cfg.MFC, cfg.Tracer)
		s.MFC.SetTracer(cfg.Tracer, fmt.Sprintf("MFC%d", i))
		s.MFC.SetMetrics(cfg.Metrics, fmt.Sprintf("mfc%d", i))
		m.SPEs = append(m.SPEs, s)
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Release returns pooled resources (the main-memory backing store) for
// reuse by a future New. The machine must not be used afterwards.
// Optional: an unreleased machine is simply garbage-collected.
func (m *Machine) Release() { m.Memory.Release() }

// SPE returns SPE i.
func (m *Machine) SPE(i int) *spe.SPE {
	if i < 0 || i >= len(m.SPEs) {
		panic(fmt.Sprintf("cell: SPE index %d out of range [0,%d)", i, len(m.SPEs)))
	}
	return m.SPEs[i]
}

// InjectFaults installs the injector's delivery hooks at every fault
// choke point — local-store allocation, MFC command issue, mailbox
// writes — and arms a timer for each planned SPE crash. Call before
// RunMain. A machine that never calls InjectFaults has nil hooks
// everywhere and takes its exact fault-free paths.
func (m *Machine) InjectFaults(inj *fault.Injector) {
	for i, s := range m.SPEs {
		i, s := i, s
		speLane := fmt.Sprintf("SPE%d", i)
		mfcLane := fmt.Sprintf("MFC%d", i)
		s.Store.SetAllocFault(func(size, align uint32) error {
			if inj.AllocFault(i) {
				trace.RecordInstant(m.tracer, speLane, m.Engine.Now(), "fault: ls-overflow")
				return fmt.Errorf("%w: injected soft overflow (%d B, align %d)",
					ls.ErrLocalStoreOverflow, size, align)
			}
			return nil
		})
		s.MFC.SetFaultHook(func() mfc.FaultAction {
			switch inj.DMAAction(i) {
			case fault.ActDrop:
				trace.RecordInstant(m.tracer, mfcLane, m.Engine.Now(), "fault: dma-drop")
				return mfc.FaultDrop
			case fault.ActCorrupt:
				trace.RecordInstant(m.tracer, mfcLane, m.Engine.Now(), "fault: dma-corrupt")
				return mfc.FaultCorrupt
			default:
				return mfc.FaultNone
			}
		})
		delay := func() sim.Duration {
			d := inj.MboxDelay(i)
			if d > 0 {
				trace.RecordInstant(m.tracer, speLane, m.Engine.Now(), "fault: mbox-stall")
			}
			return d
		}
		s.InMbox.SetWriteDelay(delay)
		s.OutMbox.SetWriteDelay(delay)
		s.OutIntrMbox.SetWriteDelay(delay)
	}
	for _, f := range inj.CrashFaults() {
		if f.SPE < 0 || f.SPE >= len(m.SPEs) {
			continue
		}
		f := f
		s := m.SPEs[f.SPE]
		m.Engine.Schedule(f.At, func() {
			if !s.Failed() {
				s.Fail("injected crash")
				inj.NoteCrash(f)
			}
		})
	}
}

// HarvestMetrics copies the machine's accumulated statistics into the
// configured registry: per-SPE time split (compute / DMA wait / mailbox
// wait / idle over total, in femtoseconds), local-store and mailbox
// high-water marks, per-MFC command and byte counts, per-port EIB
// delivered bytes and flow counts, and the bus reallocation split. A
// no-op without a registry. Harvesting reads completed counters only —
// it schedules nothing and charges no virtual time, so it cannot perturb
// the replay fingerprint.
func (m *Machine) HarvestMetrics(total sim.Duration) {
	reg := m.cfg.Metrics
	if reg == nil {
		return
	}
	for i, s := range m.SPEs {
		comp := fmt.Sprintf("spe%d", i)
		reg.Counter(comp, "compute_fs").Add(int64(s.BusyTime()))
		reg.Counter(comp, "dma_wait_fs").Add(int64(s.DMAWait()))
		reg.Counter(comp, "mbox_wait_fs").Add(int64(s.MboxWait()))
		if idle := total - s.BusyTime() - s.DMAWait() - s.MboxWait(); idle > 0 {
			reg.Counter(comp, "idle_fs").Add(int64(idle))
		} else {
			reg.Counter(comp, "idle_fs") // register at zero for stable dumps
		}
		reg.Gauge(comp, "ls_peak_bytes").SetMax(int64(s.Store.Peak()))
		reg.Gauge(comp, "in_mbox_peak").SetMax(int64(s.InMbox.Peak()))
		reg.Gauge(comp, "out_mbox_peak").SetMax(int64(s.OutMbox.Peak()))
		reg.Gauge(comp, "out_intr_mbox_peak").SetMax(int64(s.OutIntrMbox.Peak()))
		reg.Counter(comp, "mbox_writes").Add(int64(s.InMbox.Writes() + s.OutMbox.Writes() + s.OutIntrMbox.Writes()))

		st := s.MFC.Stats()
		mcomp := fmt.Sprintf("mfc%d", i)
		reg.Counter(mcomp, "commands").Add(int64(st.Commands))
		reg.Counter(mcomp, "list_commands").Add(int64(st.ListCommands))
		reg.Counter(mcomp, "bytes_in").Add(int64(st.BytesIn))
		reg.Counter(mcomp, "bytes_out").Add(int64(st.BytesOut))
		reg.Gauge(mcomp, "queue_peak").SetMax(int64(st.PeakQueue))
	}

	reg.Counter("eib", "bytes_moved").Add(int64(m.Bus.BytesMoved()))
	reg.Counter("eib", "transfers").Add(int64(m.Bus.Transfers()))
	reallocs, fast, full := m.Bus.Reallocs()
	reg.Counter("eib", "realloc_total").Add(int64(reallocs))
	reg.Counter("eib", "realloc_fast_path").Add(int64(fast))
	reg.Counter("eib", "realloc_full_waterfill").Add(int64(full))
	for port, bytes := range m.Bus.PortBytes() {
		reg.Counter("eib", "port_bytes_"+port.String()).Add(int64(bytes))
	}
	for port, flows := range m.Bus.PortFlows() {
		reg.Counter("eib", "port_flows_"+port.String()).Add(int64(flows))
	}

	reg.Gauge("mem", "peak_bytes").SetMax(int64(m.Memory.PeakAllocated()))
	reg.Counter("mem", "allocations").Add(int64(m.Memory.Allocations()))
}

// MainRun is a PPE main program whose simulation is driven externally:
// StartMain spawns it, and whoever owns the engine (typically a
// sim.ShardedEngine wheel) runs it to completion.
type MainRun struct {
	elapsed sim.Duration
	done    bool
}

// Elapsed reports the virtual time main consumed (spawn to return) and
// whether main has actually returned; the duration is meaningless until
// done is true.
func (r *MainRun) Elapsed() (sim.Duration, bool) { return r.elapsed, r.done }

// StartMain spawns the PPE main program on the machine's engine without
// running the simulation — the partition-mode half of RunMain. The
// caller drives the engine (Run, RunUntil, or a sharded wheel) and reads
// the result through the returned MainRun.
func (m *Machine) StartMain(name string, body func(ctx *Context)) *MainRun {
	r := &MainRun{}
	m.Engine.Spawn("PPE:"+name, func(p *sim.Proc) {
		start := p.Now()
		body(&Context{machine: m, p: p})
		r.elapsed = p.Now().Sub(start)
		r.done = true
	})
	return r
}

// RunMain spawns the PPE main program and runs the simulation to
// completion. It returns the virtual time consumed by main (from spawn to
// return) and any simulation error (e.g. a deadlock).
func (m *Machine) RunMain(name string, body func(ctx *Context)) (sim.Duration, error) {
	r := m.StartMain(name, body)
	if err := m.Engine.Run(); err != nil {
		return r.elapsed, err
	}
	return r.elapsed, nil
}

// Context is the PPE-side execution environment (main application thread).
type Context struct {
	machine *Machine
	p       *sim.Proc
	busy    sim.Duration
}

// Machine returns the hosting machine.
func (c *Context) Machine() *Machine { return c.machine }

// Now returns the current virtual time.
func (c *Context) Now() sim.Time { return c.p.Now() }

// Proc exposes the underlying simulated process.
func (c *Context) Proc() *sim.Proc { return c.p }

// Memory returns main memory (the PPE has direct load/store access).
func (c *Context) Memory() *mainmem.Memory { return c.machine.Memory }

// Model returns the PPE cost model.
func (c *Context) Model() *cost.Model { return c.machine.cfg.PPEModel }

// BusyTime reports accumulated PPE compute+IO time for this context.
func (c *Context) BusyTime() sim.Duration { return c.busy }

func (c *Context) charge(d sim.Duration, kind trace.Kind, label string) {
	if d <= 0 {
		return
	}
	start := c.p.Now()
	c.p.Sleep(d)
	c.busy += d
	c.machine.tracer.Span("PPE", start, c.p.Now(), kind, label)
}

// ComputeScalar charges n scalar operations on the PPE.
func (c *Context) ComputeScalar(n float64, label string) {
	c.charge(c.machine.cfg.PPEModel.ScalarOps(n), trace.KindCompute, label)
}

// ComputeSIMD charges n element-ops through the PPE's VMX unit.
func (c *Context) ComputeSIMD(n float64, w cost.Width, eff float64, label string) {
	c.charge(c.machine.cfg.PPEModel.SIMDOps(n, w, eff), trace.KindCompute, label)
}

// ComputeBranches charges branch misprediction stalls.
func (c *Context) ComputeBranches(n, rate float64, label string) {
	c.charge(c.machine.cfg.PPEModel.Branches(n, rate), trace.KindCompute, label)
}

// ComputeCycles charges raw PPE cycles.
func (c *Context) ComputeCycles(cycles float64, label string) {
	c.charge(c.machine.cfg.PPEModel.CyclesToDuration(cycles), trace.KindCompute, label)
}

// DiskRead charges a file read of n bytes (image/model loading).
func (c *Context) DiskRead(bytes float64, label string) {
	c.charge(c.machine.cfg.PPEModel.DiskRead(bytes), trace.KindIO, label)
}

// MemStream charges streaming n bytes through the PPE cache hierarchy.
func (c *Context) MemStream(bytes float64, label string) {
	c.charge(c.machine.cfg.PPEModel.MemStream(bytes), trace.KindCompute, label)
}

// Go spawns an auxiliary PPE thread sharing the machine.
func (c *Context) Go(name string, body func(ctx *Context)) {
	c.machine.Engine.Spawn("PPE:"+name, func(p *sim.Proc) {
		body(&Context{machine: c.machine, p: p})
	})
}

// Sleep advances virtual time without charging busy accounting.
func (c *Context) Sleep(d sim.Duration) { c.p.Sleep(d) }

// --- SPE control (libspe analogs) ---------------------------------------

// LoadSPE loads and starts a program on SPE i (spe_create_thread).
func (c *Context) LoadSPE(i int, prog spe.Program) error {
	return c.machine.SPE(i).Load(prog)
}

// WriteInMbox writes a word into SPE i's inbound mailbox, blocking while
// full (spe_write_in_mbox).
func (c *Context) WriteInMbox(i int, v uint32) {
	c.charge(c.machine.cfg.MboxAccessCost, trace.KindCompute, "mbox-write")
	c.machine.SPE(i).InMbox.Write(c.p, v)
}

// StatOutMbox reports queued entries in SPE i's outbound mailbox
// (spe_stat_out_mbox); each probe costs an MMIO access.
func (c *Context) StatOutMbox(i int) int {
	c.charge(c.machine.cfg.MboxAccessCost, trace.KindCompute, "mbox-stat")
	return c.machine.SPE(i).OutMbox.Count()
}

// ReadOutMbox pops SPE i's outbound mailbox, blocking until a value is
// present (read after a successful poll never blocks).
func (c *Context) ReadOutMbox(i int) uint32 {
	c.charge(c.machine.cfg.MboxAccessCost, trace.KindCompute, "mbox-read")
	return c.machine.SPE(i).OutMbox.Read(c.p)
}

// PollOutMbox spins at the configured poll interval until SPE i's
// outbound mailbox is non-empty, then reads it — the Listing 3
// `while(spe_stat_out_mbox(spuid)==0);` loop. The spin is simulated
// without emitting one event per probe: the context blocks until the
// mailbox fills and then rounds the detection up to the next poll-interval
// boundary, which is when the spinning PPE would actually have seen it.
func (c *Context) PollOutMbox(i int) uint32 {
	s := c.machine.SPE(i)
	if c.StatOutMbox(i) == 0 {
		start := c.p.Now()
		s.OutMbox.WaitNotEmpty(c.p)
		if iv := c.machine.cfg.PollInterval; iv > 0 {
			if rem := c.p.Now().Sub(start) % iv; rem != 0 {
				c.p.Sleep(iv - rem)
			}
		}
	}
	return c.ReadOutMbox(i)
}

// WaitOutIntrMbox blocks on SPE i's interrupting outbound mailbox and
// reads it (the interrupt-driven completion path).
func (c *Context) WaitOutIntrMbox(i int) uint32 {
	s := c.machine.SPE(i)
	s.OutIntrMbox.WaitNotEmpty(c.p)
	c.charge(c.machine.cfg.MboxAccessCost, trace.KindCompute, "mbox-intr-read")
	return s.OutIntrMbox.Read(c.p)
}

// SendSignal1 writes SPE i's signal-notification register 1.
func (c *Context) SendSignal1(i int, v uint32) {
	c.charge(c.machine.cfg.MboxAccessCost, trace.KindCompute, "signal")
	c.machine.SPE(i).Signal1.Send(v)
}

// SendSignal2 writes SPE i's signal-notification register 2.
func (c *Context) SendSignal2(i int, v uint32) {
	c.charge(c.machine.cfg.MboxAccessCost, trace.KindCompute, "signal")
	c.machine.SPE(i).Signal2.Send(v)
}

// WaitSPE blocks until SPE i's program returns.
func (c *Context) WaitSPE(i int) { c.machine.SPE(i).WaitStopped(c.p) }

// PollOutMboxTimeout is PollOutMbox bounded by a virtual-time deadline;
// ok reports whether a value arrived before the timeout.
func (c *Context) PollOutMboxTimeout(i int, timeout sim.Duration) (v uint32, ok bool) {
	s := c.machine.SPE(i)
	if c.StatOutMbox(i) == 0 {
		start := c.p.Now()
		if !s.OutMbox.WaitNotEmptyTimeout(c.p, timeout) {
			return 0, false
		}
		if iv := c.machine.cfg.PollInterval; iv > 0 {
			if rem := c.p.Now().Sub(start) % iv; rem != 0 {
				c.p.Sleep(iv - rem)
			}
		}
	}
	return c.ReadOutMbox(i), true
}

// WaitOutIntrMboxTimeout is WaitOutIntrMbox bounded by a deadline.
func (c *Context) WaitOutIntrMboxTimeout(i int, timeout sim.Duration) (v uint32, ok bool) {
	s := c.machine.SPE(i)
	if !s.OutIntrMbox.WaitNotEmptyTimeout(c.p, timeout) {
		return 0, false
	}
	c.charge(c.machine.cfg.MboxAccessCost, trace.KindCompute, "mbox-intr-read")
	return s.OutIntrMbox.Read(c.p), true
}
