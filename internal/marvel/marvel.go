// Package marvel implements the paper's case study (§5): a MARVEL-like
// multimedia analysis engine — image preprocessing, four visual feature
// extractors and SVM concept detection — in two builds:
//
//   - the sequential reference application (the "original C++" analog),
//     runnable under the Desktop, Laptop and PPE cost models with the
//     §3.2 profiler attached, and
//   - the Cell port produced by the paper's strategy: the same pipeline
//     with the five kernels of §5.2 detached behind SPEInterface stubs
//     and executed on simulated SPEs with sliced DMA, in the naive
//     (§5.3) and optimized (Table 1) variants, under the three §5.5
//     scheduling scenarios.
//
// Feature values are computed for real in both builds and must agree
// exactly; virtual time comes from the cost models plus the simulated
// communication fabric.
package marvel

import (
	"fmt"

	"cellport/internal/img"
	"cellport/internal/svm"
)

// KernelID identifies one of the five §5.2 kernels.
type KernelID int

// The five kernels, in the paper's listing order.
const (
	KCH KernelID = iota // color histogram extraction
	KCC                 // color correlogram extraction
	KTX                 // texture extraction
	KEH                 // edge histogram extraction
	KCD                 // concept detection (all four features)
	numKernels
)

// KernelIDs lists all kernels in order.
var KernelIDs = []KernelID{KCH, KCC, KTX, KEH, KCD}

func (k KernelID) String() string {
	switch k {
	case KCH:
		return "CHExtract"
	case KCC:
		return "CCExtract"
	case KTX:
		return "TXExtract"
	case KEH:
		return "EHExtract"
	case KCD:
		return "ConceptDet"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Workload describes an experiment input: n synthetic images of the
// paper's 352×240 frame size by default.
type Workload struct {
	Images int
	W, H   int
	Seed   uint64
}

// DefaultWorkload returns the paper's configuration for n images.
func DefaultWorkload(n int) Workload {
	return Workload{Images: n, W: 352, H: 240, Seed: 20070710}
}

// Generate materializes the workload's images.
func (w Workload) Generate() []*img.RGB {
	return img.Corpus(w.Seed, w.Images, w.W, w.H)
}

// CompressedImageBytes is the on-disk size charged per image read (a
// JPEG-ish frame); DecodeOpsPerPixel the decode cost.
const (
	CompressedImageBytes = 30 * 1024
	DecodeOpsPerPixel    = 12.0
	// ModelFileBytes is the on-disk size of the precomputed concept model
	// library read during the one-time preprocessing (§5.2 measures this
	// one-time overhead at ~60% of single-image PPE runtime).
	ModelFileBytes = 4_800_000
	ModelParseOps  = 2_000_000
)

// Feature dimensions and §5.5 support-vector counts per feature model.
const (
	DimCH = 166
	DimCC = 166
	DimEH = 64
	DimTX = 10

	NumSVCH = 186
	NumSVCC = 225
	NumSVEH = 210
	NumSVTX = 255
)

// ModelSet holds the four precomputed concept models, both as decoded
// (float32-rounded) SVMs for reference detection and in the flat encoding
// placed in simulated main memory for the SPE kernel.
type ModelSet struct {
	CH, CC, EH, TX *svm.Model
	EncCH, EncCC   []float32
	EncEH, EncTX   []float32
}

// NewModelSet builds the deterministic synthetic model library with the
// paper's support-vector counts.
func NewModelSet(seed uint64) (*ModelSet, error) {
	build := func(name string, s uint64, n, dim int, gamma float64) (*svm.Model, []float32, error) {
		m := svm.Synthetic(name, s, n, dim, gamma)
		enc, err := svm.Encode(m)
		if err != nil {
			return nil, nil, err
		}
		// Reference detection must see exactly the float32-rounded data
		// the SPE kernel will stream, so decode back.
		dec, err := svm.Decode(name, enc)
		if err != nil {
			return nil, nil, err
		}
		return dec, enc, nil
	}
	ms := &ModelSet{}
	var err error
	if ms.CH, ms.EncCH, err = build("concept-ch", seed+1, NumSVCH, DimCH, 4.0); err != nil {
		return nil, err
	}
	if ms.CC, ms.EncCC, err = build("concept-cc", seed+2, NumSVCC, DimCC, 4.0); err != nil {
		return nil, err
	}
	if ms.EH, ms.EncEH, err = build("concept-eh", seed+3, NumSVEH, DimEH, 4.0); err != nil {
		return nil, err
	}
	if ms.TX, ms.EncTX, err = build("concept-tx", seed+4, NumSVTX, DimTX, 4.0); err != nil {
		return nil, err
	}
	return ms, nil
}

// ImageResult carries the real outputs computed for one image.
type ImageResult struct {
	CH, CC, EH, TX []float32
	// Scores holds the four decision values (CH, CC, EH, TX concepts).
	Scores [4]float64
}

// Detect runs the four concept detections on extracted features.
func (ms *ModelSet) Detect(r *ImageResult) {
	r.Scores[0] = ms.CH.Decision(r.CH)
	r.Scores[1] = ms.CC.Decision(r.CC)
	r.Scores[2] = ms.EH.Decision(r.EH)
	r.Scores[3] = ms.TX.Decision(r.TX)
}

// MarshalText renders kernel IDs by name in JSON map keys.
func (k KernelID) MarshalText() ([]byte, error) { return []byte(k.String()), nil }
