package marvel

import (
	"reflect"
	"testing"

	"cellport/internal/cell"
	"cellport/internal/fault"
	"cellport/internal/sim"
)

// faultCfg is the baseline supervised-run configuration the fault tests
// perturb.
func faultCfg(n int) PortedConfig {
	return PortedConfig{
		Workload:      testWorkload(n),
		Scenario:      MultiSPE,
		Variant:       Optimized,
		Validate:      true,
		MachineConfig: testMachineConfig(),
		NoCache:       true,
	}
}

func mustRun(t *testing.T, cfg PortedConfig) *PortedResult {
	t.Helper()
	res, err := RunPorted(cfg)
	if err != nil {
		t.Fatalf("RunPorted(%v): %v", cfg.Scenario, err)
	}
	return res
}

// TestFaultFreeByteIdentical is the tentpole's first invariant: arming
// the fault layer with a plan that never fires must leave the run
// byte-identical to one with no fault support at all — same outputs, same
// virtual time, same dispatched-event fingerprint.
func TestFaultFreeByteIdentical(t *testing.T) {
	base := mustRun(t, faultCfg(2))
	// Count-based faults with unreachable trigger counts: every hook is
	// installed and sampled, but nothing ever fires.
	armed := faultCfg(2)
	var err error
	armed.Faults, err = fault.Parse(
		"dma-drop:spe=0,n=999999999;dma-corrupt:spe=1,n=999999999;" +
			"mbox-stall:spe=2,n=999999999,delay=1ms;ls-overflow:spe=3,n=999999999")
	if err != nil {
		t.Fatal(err)
	}
	got := mustRun(t, armed)

	if !reflect.DeepEqual(got.Images, base.Images) {
		t.Error("armed-but-unfired run produced different outputs")
	}
	if got.EventCount != base.EventCount {
		t.Errorf("EventCount %d != baseline %d: arming faults perturbed the event stream",
			got.EventCount, base.EventCount)
	}
	if got.Total != base.Total {
		t.Errorf("Total %v != baseline %v", got.Total, base.Total)
	}
	if got.ValidationErrors != 0 || base.ValidationErrors != 0 {
		t.Errorf("validation errors: base=%d armed=%d", base.ValidationErrors, got.ValidationErrors)
	}
	if got.Faults == nil || len(got.Faults.Injected) != 0 {
		t.Errorf("Faults report = %+v, want present with nothing injected", got.Faults)
	}
	if base.Faults != nil {
		t.Error("fault-free run carries a fault report")
	}
}

// TestSeededFaultPlanDeterministic: the same seed yields the same plan,
// the same injected events, the same recovery counters, and the same
// event-count fingerprint — the replay guarantee under faults.
func TestSeededFaultPlanDeterministic(t *testing.T) {
	run := func() *PortedResult {
		cfg := faultCfg(2)
		cfg.Faults = fault.Seeded(7, cfg.MachineConfig.NumSPEs)
		return mustRun(t, cfg)
	}
	a, b := run(), run()
	if a.ValidationErrors != 0 {
		t.Errorf("%d validation errors under seeded faults: recovery must stay bit-exact", a.ValidationErrors)
	}
	if !reflect.DeepEqual(a.Faults, b.Faults) {
		t.Errorf("fault reports diverged:\n%+v\n%+v", a.Faults, b.Faults)
	}
	if a.EventCount != b.EventCount {
		t.Errorf("EventCount %d vs %d: seeded fault runs must replay exactly", a.EventCount, b.EventCount)
	}
	if !reflect.DeepEqual(a.Images, b.Images) {
		t.Error("seeded fault runs produced different outputs")
	}
}

// TestCrashRedispatchBitExact: an SPE crash mid-run is recovered by
// re-dispatching its kernel to a spare SPE, and the outputs still match
// the host reference bit-for-bit.
func TestCrashRedispatchBitExact(t *testing.T) {
	base := mustRun(t, faultCfg(2))
	cfg := faultCfg(2)
	cfg.Faults = &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.CrashSPE, SPE: 0, At: sim.Time(base.Total / 2)},
	}}
	got := mustRun(t, cfg)
	if got.ValidationErrors != 0 {
		t.Errorf("%d validation errors after crash recovery", got.ValidationErrors)
	}
	if !reflect.DeepEqual(got.Images, base.Images) {
		t.Error("recovered run's outputs differ from the fault-free run")
	}
	rep := got.Faults
	if rep == nil {
		t.Fatal("no fault report")
	}
	if len(rep.Injected) != 1 || rep.Injected[0].Kind != "crash" {
		t.Fatalf("Injected = %+v, want the one crash", rep.Injected)
	}
	if len(rep.SPEsLost) != 1 || rep.SPEsLost[0] != 0 {
		t.Errorf("SPEsLost = %v, want [0]", rep.SPEsLost)
	}
	if rep.Redispatches < 1 {
		t.Errorf("Redispatches = %d, want >=1 (spare SPE took over)", rep.Redispatches)
	}
}

// TestDMACorruptRetriesWithBackoff: a corrupted DMA surfaces as a
// retryable DMA-fault result; the supervisor retries with backoff and the
// retried run is bit-exact.
func TestDMACorruptRetriesWithBackoff(t *testing.T) {
	base := mustRun(t, faultCfg(1))
	cfg := faultCfg(1)
	var err error
	cfg.Faults, err = fault.Parse("dma-corrupt:spe=0,n=2")
	if err != nil {
		t.Fatal(err)
	}
	got := mustRun(t, cfg)
	if got.ValidationErrors != 0 {
		t.Errorf("%d validation errors after DMA-corrupt retry", got.ValidationErrors)
	}
	if !reflect.DeepEqual(got.Images, base.Images) {
		t.Error("retried run's outputs differ from the fault-free run")
	}
	rep := got.Faults
	if rep.Retries < 1 {
		t.Errorf("Retries = %d, want >=1", rep.Retries)
	}
	if rep.BackoffTime <= 0 {
		t.Errorf("BackoffTime = %v, want > 0", rep.BackoffTime)
	}
	if len(rep.Injected) != 1 || rep.Injected[0].Kind != "dma-corrupt" {
		t.Errorf("Injected = %+v", rep.Injected)
	}
}

// TestDMADropWatchdogRecovers: a dropped DMA hangs its kernel invocation
// forever; the virtual-time watchdog declares the SPE dead, re-dispatches,
// and the run completes bit-exact.
func TestDMADropWatchdogRecovers(t *testing.T) {
	base := mustRun(t, faultCfg(1))
	cfg := faultCfg(1)
	var err error
	cfg.Faults, err = fault.Parse("dma-drop:spe=1,n=2")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Watchdog = 2 * sim.Millisecond
	got := mustRun(t, cfg)
	if got.ValidationErrors != 0 {
		t.Errorf("%d validation errors after watchdog recovery", got.ValidationErrors)
	}
	if !reflect.DeepEqual(got.Images, base.Images) {
		t.Error("watchdog-recovered run's outputs differ from the fault-free run")
	}
	rep := got.Faults
	if rep.WatchdogTimeouts < 1 {
		t.Errorf("WatchdogTimeouts = %d, want >=1", rep.WatchdogTimeouts)
	}
	if len(rep.SPEsLost) != 1 || rep.SPEsLost[0] != 1 {
		t.Errorf("SPEsLost = %v, want [1]", rep.SPEsLost)
	}
	if rep.Redispatches < 1 {
		t.Errorf("Redispatches = %d, want >=1", rep.Redispatches)
	}
}

// TestCrashFallsBackToPPE: with no spare SPE to re-dispatch to, the
// supervisor degrades the lost kernel to PPE execution — slower, but
// still bit-exact against the host reference.
func TestCrashFallsBackToPPE(t *testing.T) {
	mcfg := cell.DefaultConfig()
	mcfg.MemorySize = 64 << 20
	mcfg.NumSPEs = 5 // MultiSPE uses all five: no redispatch pool
	base := faultCfg(1)
	base.MachineConfig = &mcfg
	baseRes := mustRun(t, base)

	cfg := base
	cfg.Faults = &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.CrashSPE, SPE: 0, At: sim.Time(baseRes.Total / 2)},
	}}
	got := mustRun(t, cfg)
	if got.ValidationErrors != 0 {
		t.Errorf("%d validation errors in degraded mode", got.ValidationErrors)
	}
	if !reflect.DeepEqual(got.Images, baseRes.Images) {
		t.Error("PPE-fallback outputs differ from the fault-free run")
	}
	rep := got.Faults
	if rep.Fallbacks < 1 {
		t.Errorf("Fallbacks = %d, want >=1 (no spare SPE remains)", rep.Fallbacks)
	}
	if rep.DegradedTime <= 0 {
		t.Errorf("DegradedTime = %v, want > 0", rep.DegradedTime)
	}
	if len(rep.SPEsLost) != 1 || rep.SPEsLost[0] != 0 {
		t.Errorf("SPEsLost = %v, want [0]", rep.SPEsLost)
	}
}

// TestMboxStallAndLSOverflowRecover: the two "soft" fault kinds — a
// stalled mailbox write and a transient local-store allocation failure —
// are absorbed (delay; retry) without output damage.
func TestMboxStallAndLSOverflowRecover(t *testing.T) {
	base := mustRun(t, faultCfg(1))
	cfg := faultCfg(1)
	var err error
	cfg.Faults, err = fault.Parse("mbox-stall:spe=0,n=1,delay=300us;ls-overflow:spe=2,n=3")
	if err != nil {
		t.Fatal(err)
	}
	got := mustRun(t, cfg)
	if got.ValidationErrors != 0 {
		t.Errorf("%d validation errors", got.ValidationErrors)
	}
	if !reflect.DeepEqual(got.Images, base.Images) {
		t.Error("outputs differ from the fault-free run")
	}
	if n := len(got.Faults.Injected); n != 2 {
		t.Errorf("Injected = %+v, want both soft faults fired", got.Faults.Injected)
	}
	if got.Faults.Retries < 1 {
		t.Errorf("Retries = %d, want >=1 (the failed allocation forced a kernel retry)", got.Faults.Retries)
	}
	if got.Total <= base.Total {
		t.Errorf("faulted Total %v <= fault-free %v: the stall and retry cost no time", got.Total, base.Total)
	}
}
