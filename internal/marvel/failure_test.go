package marvel

import (
	"testing"

	"cellport/internal/cell"
	"cellport/internal/core"
	"cellport/internal/mainmem"
)

// Failure injection: kernels must report errors through the mailbox
// result word (never hang or corrupt memory) when fed malformed wrappers
// — the situations a real port hits while the data interfaces (§3.4) are
// still being debugged.

func runFailureCase(t *testing.T, spec core.KernelSpec, fill func(mem *mainmem.Memory, w *core.Wrapper)) uint32 {
	t.Helper()
	cfg := cell.DefaultConfig()
	cfg.MemorySize = 32 << 20
	m := cell.New(cfg)
	var result uint32
	_, err := m.RunMain("failure", func(ctx *cell.Context) {
		iface, err := core.Open(ctx, 0, spec)
		if err != nil {
			t.Error(err)
			return
		}
		w, err := core.NewWrapper(ctx.Memory(), extractFields(KCH)...)
		if err != nil {
			t.Error(err)
			return
		}
		fill(ctx.Memory(), w)
		res, _ := iface.SendAndWait(OpRun, w.Addr())
		result = res
		if err := iface.Close(); err != nil {
			t.Error(err)
		}
		if err := w.Free(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return result
}

func TestExtractKernelRejectsZeroWidth(t *testing.T) {
	res := runFailureCase(t, ExtractKernelSpec(KCH, Optimized), func(mem *mainmem.Memory, w *core.Wrapper) {
		pix := mem.MustAlloc(1024, 128)
		fillExtractHeader(w, 0, 10, 48, pix, 0, 10)
	})
	if res != resErr {
		t.Fatalf("zero-width header: result %#x, want resErr", res)
	}
}

func TestExtractKernelRejectsBadStride(t *testing.T) {
	res := runFailureCase(t, ExtractKernelSpec(KCH, Optimized), func(mem *mainmem.Memory, w *core.Wrapper) {
		pix := mem.MustAlloc(1024, 128)
		fillExtractHeader(w, 32, 8, 32 /* < 3*W */, pix, 0, 8)
	})
	if res != resErr {
		t.Fatalf("bad stride: result %#x, want resErr", res)
	}
}

func TestExtractKernelRejectsBadRowRange(t *testing.T) {
	for _, rng := range [][2]int{{5, 5}, {8, 4}, {0, 99}} {
		res := runFailureCase(t, ExtractKernelSpec(KEH, Optimized), func(mem *mainmem.Memory, w *core.Wrapper) {
			pix := mem.MustAlloc(32*1024, 128)
			fillExtractHeader(w, 32, 8, 96, pix, rng[0], rng[1])
		})
		if res != resErr {
			t.Fatalf("row range %v: result %#x, want resErr", rng, res)
		}
	}
}

func TestExtractKernelRejectsOversizedStride(t *testing.T) {
	// A row wider than one DMA command (16 KB) cannot be fetched by the
	// row-sliced kernels; the kernel must fail cleanly.
	res := runFailureCase(t, ExtractKernelSpec(KCH, Optimized), func(mem *mainmem.Memory, w *core.Wrapper) {
		pix := mem.MustAlloc(20<<20, 128)
		// 5600 px * 3 B = 16800 B stride > 16384.
		fillExtractHeader(w, 5600, 4, 16800, pix, 0, 4)
	})
	if res != resErr {
		t.Fatalf("oversized stride: result %#x, want resErr", res)
	}
}

func TestDetectKernelRejectsCorruptHeaders(t *testing.T) {
	cfg := cell.DefaultConfig()
	cfg.MemorySize = 32 << 20
	m := cell.New(cfg)
	ms, err := NewModelSet(3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.RunMain("detfail", func(ctx *cell.Context) {
		mem := ctx.Memory()
		pm, err := PlaceModel(mem, ms.TX)
		if err != nil {
			t.Error(err)
			return
		}
		iface, err := core.Open(ctx, 0, DetectKernelSpec(Optimized))
		if err != nil {
			t.Error(err)
			return
		}
		// Case 1: zero dim.
		w1, _ := core.NewWrapper(mem, detectFields(DimTX)...)
		fillDetectHeader(w1, 0, pm.NumSV, pm.EA, 0)
		if res, _ := iface.SendAndWait(OpRun, w1.Addr()); res != resErr {
			t.Errorf("zero dim: result %#x", res)
		}
		// Case 2: SV count disagrees with the placed model's own header.
		w2, _ := core.NewWrapper(mem, detectFields(DimTX)...)
		fillDetectHeader(w2, DimTX, pm.NumSV+1, pm.EA, 0)
		if res, _ := iface.SendAndWait(OpRun, w2.Addr()); res != resErr {
			t.Errorf("SV mismatch: result %#x", res)
		}
		// Case 3: a correct header still works on the same warm kernel.
		w3, _ := core.NewWrapper(mem, detectFields(DimTX)...)
		fillDetectHeader(w3, DimTX, pm.NumSV, pm.EA, 0)
		feat := make([]float32, DimTX)
		for i := range feat {
			feat[i] = 0.1
		}
		w3.SetFloat32s("feature", feat)
		if res, err := iface.SendAndWait(OpRun, w3.Addr()); err != nil || res != resOK {
			t.Errorf("valid detection after failures: res=%#x err=%v", res, err)
		}
		if err := iface.Close(); err != nil {
			t.Error(err)
		}
		for _, w := range []*core.Wrapper{w1, w2, w3} {
			if err := w.Free(); err != nil {
				t.Error(err)
			}
		}
		if err := pm.Free(mem); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestKernelSurvivesRepeatedFailures(t *testing.T) {
	// The dispatcher's idle loop must keep serving after failed calls —
	// the "application functional at all times" property extends to error
	// paths.
	cfg := cell.DefaultConfig()
	cfg.MemorySize = 32 << 20
	m := cell.New(cfg)
	_, err := m.RunMain("loop", func(ctx *cell.Context) {
		mem := ctx.Memory()
		iface, err := core.Open(ctx, 0, ExtractKernelSpec(KCH, Naive))
		if err != nil {
			t.Error(err)
			return
		}
		bad, _ := core.NewWrapper(mem, extractFields(KCH)...)
		fillExtractHeader(bad, 0, 0, 0, 0, 0, 0)
		for i := 0; i < 3; i++ {
			if res, _ := iface.SendAndWait(OpRun, bad.Addr()); res != resErr {
				t.Errorf("iteration %d: result %#x", i, res)
			}
		}
		// Then a good call.
		im := Workload{Images: 1, W: 64, H: 48, Seed: 5}.Generate()[0]
		stride := im.Stride
		pix := mem.MustAlloc(uint32(im.Bytes()), 128)
		copy(mem.Bytes(pix, uint32(im.Bytes())), im.Pix)
		good, _ := core.NewWrapper(mem, extractFields(KCH)...)
		fillExtractHeader(good, im.W, im.H, stride, pix, 0, im.H)
		if res, err := iface.SendAndWait(OpRun, good.Addr()); err != nil || res != resOK {
			t.Errorf("good call after failures: res=%#x err=%v", res, err)
		}
		if err := iface.Close(); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
