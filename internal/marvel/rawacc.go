package marvel

import (
	"fmt"

	"cellport/internal/features"
)

// Raw accumulator encodings for data-parallel extraction: a partial
// (OpRunPartial) kernel invocation covers only a row range, so it cannot
// finalize (normalization needs global totals). Instead it emits its
// accumulator state as uint32 words, which the PPE merges across SPEs and
// finalizes — the extra "data parallelism across multiple SPEs" layer §2
// names beyond per-kernel task parallelism.
//
// All counts fit uint32 for the frame sizes in play: pixel counts and
// histogram counts are bounded by W×H (≤ a few hundred thousand),
// correlogram pair counts by W×H×17² (≈ 2.4e7 for 352×240), texture
// energies by 255×W×H (≈ 2.2e7).

// Raw word counts (uint32 units) used by the wrapper layout.
const (
	HistBinsU = uint32(features.HistBins)
	EdgeBinsU = uint32(features.EdgeBins)
	TexBinsU  = uint32(features.TexBins)
)

// encodeRaw serializes an accumulator into words (the kernel side).
func encodeRaw(id KernelID, acc sliceAcc) []uint32 {
	switch a := acc.(type) {
	case *histAcc:
		out := make([]uint32, 0, HistBinsU+1)
		for _, c := range a.a.Counts {
			out = append(out, uint32(c))
		}
		return append(out, uint32(a.a.Pixels))
	case *corrAcc:
		out := make([]uint32, 0, 2*HistBinsU)
		for _, c := range a.a.Same {
			out = append(out, uint32(c))
		}
		for _, c := range a.a.Total {
			out = append(out, uint32(c))
		}
		return out
	case *edgeAcc:
		out := make([]uint32, 0, EdgeBinsU)
		for _, c := range a.a.Counts {
			out = append(out, uint32(c))
		}
		return out
	case *texAcc:
		out := make([]uint32, 0, TexBinsU+1)
		for _, e := range a.a.Energy {
			out = append(out, uint32(e))
		}
		return append(out, uint32(a.a.Pixels))
	default:
		panic(fmt.Sprintf("marvel: no raw encoding for %T", acc))
	}
}

// mergeRaw folds one partial result into the merger accumulator
// (the PPE side).
func mergeRaw(id KernelID, words []uint32, into sliceAcc) error {
	if want := rawWords(id); uint32(len(words)) != want {
		return fmt.Errorf("marvel: raw %s payload has %d words, want %d", id, len(words), want)
	}
	switch a := into.(type) {
	case *histAcc:
		for i := range a.a.Counts {
			a.a.Counts[i] += uint64(words[i])
		}
		a.a.Pixels += uint64(words[HistBinsU])
	case *corrAcc:
		for i := range a.a.Same {
			a.a.Same[i] += uint64(words[i])
			a.a.Total[i] += uint64(words[uint32(i)+HistBinsU])
		}
	case *edgeAcc:
		for i := range a.a.Counts {
			a.a.Counts[i] += uint64(words[i])
		}
	case *texAcc:
		for i := range a.a.Energy {
			a.a.Energy[i] += uint64(words[i])
		}
		a.a.Pixels += uint64(words[TexBinsU])
	default:
		return fmt.Errorf("marvel: no raw merge for %T", into)
	}
	return nil
}
