package marvel

import (
	"fmt"

	"cellport/internal/img"
	"cellport/internal/ls"
	"cellport/internal/metrics"
	"cellport/internal/trace"
)

// This file is the seam between the simulated port and the
// real-execution backend (internal/exec): exported views of the kernel
// accumulators and the in-kernel slice planning, plus the ExecBackend
// hook RunPorted drives. The backend lives outside this package so
// marvel stays free of host-clock concerns; everything exported here is
// deterministic.

// Accumulator is the exported view of the incremental per-slice feature
// computation every extraction kernel runs over its DMA'd bands — the
// exact code the simulated SPE kernels execute, so anything driving it
// over the same slice plan reproduces kernel outputs bit for bit.
type Accumulator interface {
	// Process folds payload rows [y0, y1) of band (band-relative
	// coordinates) into the accumulator.
	Process(band *img.RGB, y0, y1 int)
	// Finalize returns the feature vector. Call once, after the last
	// slice.
	Finalize() []float32
}

type accExport struct{ a sliceAcc }

func (e accExport) Process(b *img.RGB, y0, y1 int) { e.a.process(b, y0, y1) }
func (e accExport) Finalize() []float32            { return e.a.finalize() }

// NewAccumulator returns a fresh accumulator for an extraction kernel.
// It panics for KCD (detection has no slice geometry), like the
// kernel-geometry table it fronts.
func NewAccumulator(id KernelID) Accumulator {
	return accExport{a: kernelGeom(id).newAcc()}
}

// ExecPlan reproduces, outside the simulator, the exact halo'd slice
// plan the simulated kernel computes for a whole-image OpRun against
// its local store: a fresh LS image with the kernel's program loaded
// and the wrapper header allocated, then the same per-row budget
// arithmetic (sliceBudget) and the same planner (planRange). The
// real-execution backend streams bands by this plan so its memory
// traversal — slice extents, halos, double-buffer reuse — matches what
// the simulator charged for.
func ExecPlan(id KernelID, v Variant, w, h int) ([]img.Slice, error) {
	if id == KCD {
		return nil, fmt.Errorf("marvel: ExecPlan: %s has no slice geometry", id)
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("marvel: ExecPlan: bad geometry %dx%d", w, h)
	}
	st := ls.New()
	if err := st.LoadProgram(Cal(id).CodeBytes); err != nil {
		return nil, err
	}
	if _, err := st.Alloc(exHdrBytes, 16); err != nil {
		return nil, err
	}
	g := kernelGeom(id)
	stride := img.StrideFor(w)
	budget := sliceBudget(st.Free(), id, v, w, stride)
	return planRange(0, h, h, budget, g.halo, g.granularity)
}

// ScoreIndex maps an extraction kernel to its concept-score slot in
// ImageResult.Scores (CH, CC, EH, TX order).
func ScoreIndex(id KernelID) int { return scoreIndex(id) }

// CompareImageResults counts output mismatches between two per-image
// results with the port's validation semantics: feature vectors must
// match bit for bit, scores after float32 rounding. Exported for the
// real-execution harness, which validates executed outputs against the
// retained host references.
func CompareImageResults(ref, got *ImageResult) int { return compareImage(ref, got) }

// ExecPoint identifies one real-execution batch: the workload (k images
// of one geometry), the scheduling scenario, and the kernel variant —
// the same triple that configures a simulated dispatch.
type ExecPoint struct {
	Workload Workload
	Scenario Scenario
	Variant  Variant
}

// ExecRun reports one real execution of a point. Every field in the
// wall-clock domain (WallNS and the scheduler counters) is
// host-dependent; Images is deterministic (and bit-exact against the
// host references at any worker count). Trace and Metrics mirror
// PortedResult's instrumentation fields and are excluded from JSON for
// the same fingerprint-neutrality reason — but note their clock domain:
// exec trace timestamps are wall nanoseconds, never virtual time.
type ExecRun struct {
	// Workers is the pool width that ran the task graph; Reps is how
	// many times the graph was run (WallNS keeps the fastest).
	Workers int `json:"measured_workers"`
	Reps    int `json:"measured_reps"`
	// WallNS is the best-of-reps wall-clock time for the batch graph in
	// host nanoseconds.
	WallNS int64 `json:"measured_wall_ns"`
	// Tasks, Steals and Stolen are the executor's counters over the last
	// rep (tasks completed, successful steal operations, tasks moved).
	Tasks  uint64 `json:"measured_tasks"`
	Steals uint64 `json:"measured_steals"`
	Stolen uint64 `json:"measured_stolen"`
	// Images holds the outputs computed by the real kernels.
	Images []ImageResult `json:"-"`
	// Trace holds wall-clock spans when the backend instruments
	// (exec/* tracks; see DESIGN.md §14).
	Trace *trace.Recorder `json:"-"`
	// Metrics is the backend's snapshot (all keys under the "exec"
	// component) when instrumenting.
	Metrics *metrics.Snapshot `json:"-"`
}

// ExecBackend runs a point's kernels for real. Implementations live
// outside this package (internal/exec); RunPorted drives the configured
// backend after the simulation finishes, attaching the run to
// PortedResult.Exec.
type ExecBackend interface {
	Execute(p ExecPoint) (*ExecRun, error)
}
