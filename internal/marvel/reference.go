package marvel

import (
	"cellport/internal/cost"
	"cellport/internal/features"
	"cellport/internal/img"
	"cellport/internal/profile"
	"cellport/internal/sim"
)

// ReferenceResult reports a sequential reference run (the original
// application on the Desktop, the Laptop, or the PPE).
type ReferenceResult struct {
	// Host names the cost model used.
	Host string
	// Total is end-to-end virtual time including the one-time overhead.
	Total sim.Duration
	// OneTime is the application-wide setup (model library load).
	OneTime sim.Duration
	// PreprocessPerImage is the average per-image read+decode time.
	PreprocessPerImage sim.Duration
	// KernelTime is the average per-image time of each kernel.
	KernelTime map[KernelID]sim.Duration
	// PerImage is the average per-image processing time (everything but
	// the one-time overhead).
	PerImage sim.Duration
	// Images holds the real per-image outputs (features and decisions).
	Images []ImageResult
	// Profile is the attached §3.2 profiler.
	Profile *profile.Profiler
}

// hostClock is the sequential run's virtual clock: a pure accumulator.
type hostClock struct{ now sim.Time }

func (c *hostClock) charge(d sim.Duration) { c.now = c.now.Add(d) }

// RunReference executes the sequential application under the given host
// model: the one-time model-library load, then per image the §5.1
// pipeline (read/decode, four feature extractions, concept detection).
// Feature values are computed for real; time comes from the calibrated
// cost model.
func RunReference(host *cost.Model, w Workload, ms *ModelSet) *ReferenceResult {
	return runReference(host, w, ms, w.Generate())
}

// runReference is RunReference over a pre-generated image set, so an
// ArtifactCache can feed the shared images instead of regenerating them.
// images must equal w.Generate() for the result to be meaningful.
func runReference(host *cost.Model, w Workload, ms *ModelSet, images []*img.RGB) *ReferenceResult {
	clk := &hostClock{}
	prof := profile.New(func() sim.Time { return clk.now })
	res := &ReferenceResult{
		Host:       host.Name,
		KernelTime: make(map[KernelID]sim.Duration),
	}
	pixels := float64(w.W * w.H)

	prof.Enter("App", "main")

	// One-time overhead: load and parse the precomputed model library.
	prof.Enter("App", "loadModels")
	clk.charge(host.DiskRead(ModelFileBytes))
	clk.charge(host.ScalarOps(ModelParseOps))
	prof.Exit()
	res.OneTime = clk.now.Sub(0)

	chargeKernel := func(id KernelID, class, method string, body func()) {
		cal := Cal(id)
		prof.Enter(class, method)
		start := clk.now
		body() // the real computation (virtual-time free)
		var nomOps float64
		if id == KCD {
			nomOps = detectNomOpsAll()
		} else {
			nomOps = cal.NomOpsPerPixel * pixels
			clk.charge(host.Branches(cal.NomBranchesPerPixel*pixels, -1))
		}
		clk.charge(host.ScalarOps(nomOps * cal.HostOpsMult))
		res.KernelTime[id] += clk.now.Sub(start)
		prof.Exit()
	}

	for _, im := range images {
		var r ImageResult
		prof.Enter("Preprocess", "readImage")
		pre := clk.now
		clk.charge(host.DiskRead(CompressedImageBytes))
		clk.charge(host.ScalarOps(DecodeOpsPerPixel * pixels))
		res.PreprocessPerImage += clk.now.Sub(pre)
		prof.Exit()

		im := im
		chargeKernel(KCH, "ColorHistogram", "extract", func() { r.CH = features.ColorHistogram(im) })
		chargeKernel(KCC, "ColorCorrelogram", "extract", func() { r.CC = features.ColorCorrelogram(im) })
		chargeKernel(KTX, "Texture", "extract", func() { r.TX = features.Texture(im) })
		chargeKernel(KEH, "EdgeHistogram", "extract", func() { r.EH = features.EdgeHistogram(im) })
		chargeKernel(KCD, "ConceptDetect", "detect", func() { ms.Detect(&r) })

		res.Images = append(res.Images, r)
	}
	prof.Exit()

	res.Total = clk.now.Sub(0)
	n := sim.Duration(w.Images)
	if w.Images > 0 {
		for id := range res.KernelTime {
			res.KernelTime[id] /= n
		}
		res.PreprocessPerImage /= n
		res.PerImage = (res.Total - res.OneTime) / n
	}
	res.Profile = prof
	return res
}

// KernelCoverage returns each kernel's share of the per-image processing
// time (the §5.2 coverage numbers).
func (r *ReferenceResult) KernelCoverage() map[KernelID]float64 {
	out := make(map[KernelID]float64, len(r.KernelTime))
	if r.PerImage <= 0 {
		return out
	}
	for id, t := range r.KernelTime {
		out[id] = t.Seconds() / r.PerImage.Seconds()
	}
	return out
}

// ProcessingCoverage returns the fraction of total runtime spent in
// feature extraction + concept detection (the 87% / 96% numbers of §5.2).
func (r *ReferenceResult) ProcessingCoverage() float64 {
	if r.Total <= 0 {
		return 0
	}
	var k sim.Duration
	for _, t := range r.KernelTime {
		k += t
	}
	return float64(k) * float64(len(r.Images)) / float64(r.Total)
}
