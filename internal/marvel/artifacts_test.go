package marvel

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"cellport/internal/cost"
)

func TestArtifactCacheSharesPointers(t *testing.T) {
	c := NewArtifactCache()
	w := testWorkload(2)

	if a, b := c.Images(w), c.Images(w); len(a) != 2 || &a[0] != &b[0] {
		t.Fatal("Images not shared across lookups")
	}
	ma, err := c.ModelSet(w.Seed)
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := c.ModelSet(w.Seed)
	if ma != mb {
		t.Fatal("ModelSet not shared across lookups")
	}
	ra, err := c.Reference(cost.NewPPE(), w)
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := c.Reference(cost.NewPPE(), w)
	if ra != rb {
		t.Fatal("Reference not shared across lookups")
	}
	// A different host model is a different artifact.
	rd, err := c.Reference(cost.NewDesktop(), w)
	if err != nil {
		t.Fatal(err)
	}
	if rd == ra || rd.Host == ra.Host {
		t.Fatal("Desktop reference must be distinct from the PPE one")
	}
}

func TestArtifactCacheNilIsColdPath(t *testing.T) {
	var c *ArtifactCache
	w := testWorkload(1)
	if a, b := c.Images(w), c.Images(w); &a[0] == &b[0] {
		t.Fatal("nil cache must regenerate images per call")
	}
	ref, err := c.Reference(cost.NewPPE(), w)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Host != "PPE" || len(ref.Images) != 1 {
		t.Fatalf("nil-cache reference malformed: host %q, %d images", ref.Host, len(ref.Images))
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("nil cache stats = %d/%d, want 0/0", h, m)
	}
	c.Flush() // must not panic
}

// TestArtifactCacheMatchesUncached is the tentpole identity check on the
// artifact layer itself: cached artifacts must be bit-identical to ones
// computed cold.
func TestArtifactCacheMatchesUncached(t *testing.T) {
	w := testWorkload(2)
	c := NewArtifactCache()

	cached, err := c.Reference(cost.NewPPE(), w)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewModelSet(w.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cold := RunReference(cost.NewPPE(), w, ms)
	if cached.Total != cold.Total || cached.OneTime != cold.OneTime || cached.PerImage != cold.PerImage {
		t.Fatalf("cached reference timing differs: %+v vs %+v", cached.Total, cold.Total)
	}
	if len(cached.Images) != len(cold.Images) {
		t.Fatalf("image counts differ: %d vs %d", len(cached.Images), len(cold.Images))
	}
	for i := range cached.Images {
		a, b := &cold.Images[i], &cached.Images[i]
		if !reflect.DeepEqual(a.CH, b.CH) || !reflect.DeepEqual(a.CC, b.CC) ||
			!reflect.DeepEqual(a.EH, b.EH) || !reflect.DeepEqual(a.TX, b.TX) ||
			a.Scores != b.Scores {
			t.Fatalf("image %d outputs differ between cached and cold reference", i)
		}
	}
}

func TestArtifactCacheConcurrentReference(t *testing.T) {
	c := NewArtifactCache()
	w := testWorkload(1)
	const workers = 8
	refs := make([]*ReferenceResult, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Reference(cost.NewPPE(), w)
			if err != nil {
				t.Error(err)
			}
			refs[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if refs[i] != refs[0] {
			t.Fatal("concurrent Reference callers must share one result")
		}
	}
	// One miss per layer (images, model set, reference); everything else
	// is hits.
	if _, misses := c.Stats(); misses != 3 {
		t.Fatalf("misses = %d, want 3 (one per artifact layer)", misses)
	}
}

func TestRunPortedEmptyWorkload(t *testing.T) {
	_, err := RunPorted(PortedConfig{
		Workload:      Workload{Images: 0, W: 352, H: 96, Seed: 1},
		Scenario:      SingleSPE,
		Variant:       Optimized,
		MachineConfig: testMachineConfig(),
	})
	if !errors.Is(err, ErrEmptyWorkload) {
		t.Fatalf("err = %v, want ErrEmptyWorkload", err)
	}
	_, err = RunPorted(PortedConfig{
		Workload:      Workload{Images: -1, W: 352, H: 96, Seed: 1},
		Scenario:      Pipelined,
		MachineConfig: testMachineConfig(),
	})
	if !errors.Is(err, ErrEmptyWorkload) {
		t.Fatalf("negative image count: err = %v, want ErrEmptyWorkload", err)
	}
}

// TestPortedCacheOnOffIdentical asserts the acceptance criterion: a run
// through the shared-artifact path and a cold NoCache run produce
// byte-identical feature outputs, identical virtual times, and the same
// EventCount replay fingerprint.
func TestPortedCacheOnOffIdentical(t *testing.T) {
	for _, scen := range []Scenario{SingleSPE, MultiSPE2, Pipelined} {
		base := PortedConfig{
			Workload:      testWorkload(2),
			Scenario:      scen,
			Variant:       Optimized,
			Validate:      true,
			MachineConfig: testMachineConfig(),
		}
		warm := base
		warm.Artifacts = NewArtifactCache()
		cold := base
		cold.NoCache = true

		a, err := RunPorted(warm)
		if err != nil {
			t.Fatalf("%v cached: %v", scen, err)
		}
		// Second cached run actually exercises the hit path.
		a2, err := RunPorted(warm)
		if err != nil {
			t.Fatalf("%v cached(2): %v", scen, err)
		}
		b, err := RunPorted(cold)
		if err != nil {
			t.Fatalf("%v nocache: %v", scen, err)
		}
		for _, got := range []*PortedResult{a2, b} {
			if got.Total != a.Total || got.OneTime != a.OneTime || got.PerImage != a.PerImage {
				t.Fatalf("%v: virtual times differ cache-on vs cache-off", scen)
			}
			if got.EventCount != a.EventCount {
				t.Fatalf("%v: EventCount %d vs %d — replay fingerprint changed", scen, got.EventCount, a.EventCount)
			}
			if got.ValidationErrors != 0 || a.ValidationErrors != 0 {
				t.Fatalf("%v: validation errors (%d, %d)", scen, a.ValidationErrors, got.ValidationErrors)
			}
			if len(got.Images) != len(a.Images) {
				t.Fatalf("%v: image result counts differ", scen)
			}
			for i := range a.Images {
				if compareImage(&a.Images[i], &got.Images[i]) != 0 {
					t.Fatalf("%v image %d: feature outputs differ cache-on vs cache-off", scen, i)
				}
			}
		}
		if hits, misses := warm.Artifacts.Stats(); hits == 0 || misses != 3 {
			t.Fatalf("%v: cache stats %d hits / %d misses — second run did not hit", scen, hits, misses)
		}
	}
}
