package marvel

import (
	"cellport/internal/cost"
	"cellport/internal/img"
	"cellport/internal/workcache"
)

// ArtifactCache memoizes the workload artifacts that are bit-identical
// across the points of an experiment sweep: the generated image set, the
// synthetic model library (train + encode + float32-rounded decode), and
// the sequential reference run. A Fig7-style grid of spes × scenarios ×
// variants computes each artifact exactly once; concurrent sweep workers
// (experiments.RunIndexed) share one in-flight computation per key via
// the workcache singleflight.
//
// All returned values are shared across callers and goroutines and MUST
// be treated as immutable: images are only read (the ported preprocessing
// copies rows into simulated memory, the reference extractors only scan
// pixels), model sets are only read (placement copies the encodings into
// simulated memory), and reference results are only compared against.
//
// A nil *ArtifactCache is valid and means "no caching": every accessor
// falls back to computing a private artifact, which is the isolation path
// for calibration runs and cache-sensitivity tests.
type ArtifactCache struct {
	images workcache.Cache[Workload, []*img.RGB]
	models workcache.Cache[uint64, *ModelSet]
	refs   workcache.Cache[refKey, *ReferenceResult]
}

// refKey identifies a reference run: the cost model's name plus the full
// workload parameters (Images, W, H, Seed). The model set is derived from
// the workload seed, so it does not appear separately in the key.
type refKey struct {
	Host string
	W    Workload
}

// sharedArtifacts is the process-wide cache used when a config neither
// disables caching nor supplies its own instance.
var sharedArtifacts ArtifactCache

// SharedArtifacts returns the process-wide artifact cache. Repeated
// sweeps within one process (successive paperbench experiments, repeated
// benchmark iterations) reuse its entries.
func SharedArtifacts() *ArtifactCache { return &sharedArtifacts }

// NewArtifactCache returns an empty private cache, for callers that want
// sharing within one sweep but isolation from the rest of the process.
func NewArtifactCache() *ArtifactCache { return &ArtifactCache{} }

// Images returns the workload's generated image set, shared and read-only.
func (c *ArtifactCache) Images(w Workload) []*img.RGB {
	if c == nil {
		return w.Generate()
	}
	images, _ := c.images.Do(w, func() ([]*img.RGB, error) {
		return w.Generate(), nil
	})
	return images
}

// ModelSet returns the synthetic model library for seed, shared and
// read-only.
func (c *ArtifactCache) ModelSet(seed uint64) (*ModelSet, error) {
	if c == nil {
		return NewModelSet(seed)
	}
	return c.models.Do(seed, func() (*ModelSet, error) {
		return NewModelSet(seed)
	})
}

// Reference returns the sequential reference run of workload w under the
// host cost model, shared and read-only. The model set and image set are
// resolved through the same cache, so a cold Reference call on one worker
// warms all three artifact layers for every other sweep point.
func (c *ArtifactCache) Reference(host *cost.Model, w Workload) (*ReferenceResult, error) {
	if c == nil {
		ms, err := NewModelSet(w.Seed)
		if err != nil {
			return nil, err
		}
		return RunReference(host, w, ms), nil
	}
	return c.refs.Do(refKey{Host: host.Name, W: w}, func() (*ReferenceResult, error) {
		ms, err := c.ModelSet(w.Seed)
		if err != nil {
			return nil, err
		}
		return runReference(host, w, ms, c.Images(w)), nil
	})
}

// Stats reports cumulative (hits, misses) over the three artifact layers.
func (c *ArtifactCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	for _, s := range []func() (uint64, uint64){c.images.Stats, c.models.Stats, c.refs.Stats} {
		h, m := s()
		hits += h
		misses += m
	}
	return hits, misses
}

// Flush drops all cached artifacts (cold-path calibration, tests).
func (c *ArtifactCache) Flush() {
	if c == nil {
		return
	}
	c.images.Flush()
	c.models.Flush()
	c.refs.Flush()
}
