package marvel

import (
	"errors"
	"fmt"
	"math"

	"cellport/internal/cell"
	"cellport/internal/core"
	"cellport/internal/fault"
	"cellport/internal/features"
	"cellport/internal/img"
	"cellport/internal/mainmem"
	"cellport/internal/metrics"
	"cellport/internal/sim"
	"cellport/internal/trace"
)

// Scenario selects the §5.5 scheduling scheme.
type Scenario int

// The three evaluated scenarios.
const (
	// SingleSPE: all kernels execute sequentially — no task parallelism
	// between SPEs (scenario 1, Fig. 4b). Kernels stay resident on their
	// own SPEs to avoid dynamic code switching, exactly as the paper
	// describes.
	SingleSPE Scenario = iota
	// MultiSPE: the four feature extractions run in parallel on four
	// SPEs; all concept detections run sequentially on a fifth
	// (scenario 2, Fig. 4c).
	MultiSPE
	// MultiSPE2: extractions run in parallel and the detection kernel is
	// replicated on four more SPEs so each extraction is immediately
	// followed by its own detection (scenario 3).
	MultiSPE2
	// Pipelined is an EXTENSION beyond the paper's three scenarios: the
	// §4.2 observation that "the execution model should increase
	// concurrency by using several SPEs and the PPE in parallel" applied
	// across images — the PPE preprocesses image i+1 (disk read, decode)
	// into a second pixel buffer while the SPEs process image i. Since
	// per-image preprocessing is about twice the parallel extraction
	// time, it dominates the ported application's critical path; this
	// schedule hides the SPE work behind it almost entirely.
	Pipelined
)

func (s Scenario) String() string {
	switch s {
	case SingleSPE:
		return "single-spe"
	case MultiSPE:
		return "multi-spe"
	case MultiSPE2:
		return "multi-spe2"
	default:
		return "pipelined"
	}
}

// PortedConfig configures a ported-application run.
type PortedConfig struct {
	Workload Workload
	Scenario Scenario
	Variant  Variant
	// Validate compares every kernel output with the reference
	// computation (the "application functional at all times" check).
	Validate bool
	// MachineConfig overrides the default machine when non-nil.
	MachineConfig *cell.Config
	// Artifacts selects the cache used for the image set, model set, and
	// (when Validate is set) the reference run. Nil means the process-wide
	// SharedArtifacts cache, unless NoCache is set.
	Artifacts *ArtifactCache
	// NoCache forces cold-path behaviour: every artifact is recomputed
	// privately for this run. Ignored when Artifacts is non-nil.
	NoCache bool
	// Faults, when non-empty, arms deterministic fault injection and the
	// self-healing supervision loop. A nil or empty plan leaves every
	// fault hook uninstalled: the run is byte-identical to one without
	// fault support.
	Faults *fault.Plan
	// Watchdog overrides the supervision watchdog timeout (zero selects
	// DefaultWatchdog). Only consulted when Faults is armed.
	Watchdog sim.Duration
	// Exec, when non-nil, additionally runs the point's kernels for real
	// on the execution backend after the simulation finishes, attaching
	// the measured run to PortedResult.Exec. The simulated half is
	// untouched: virtual-time results are byte-identical with or without
	// a backend.
	Exec ExecBackend
}

// ErrEmptyWorkload is returned by RunPorted when the workload has no
// images: the per-image averages (PerImage, KernelTime) would be
// meaningless and the schedules have nothing to execute.
var ErrEmptyWorkload = errors.New("marvel: workload has no images")

// artifacts resolves the cache a run should use: an explicit instance
// wins, NoCache yields nil (the compute-privately path), and the default
// is the process-wide shared cache.
func (cfg *PortedConfig) artifacts() *ArtifactCache {
	if cfg.Artifacts != nil {
		return cfg.Artifacts
	}
	if cfg.NoCache {
		return nil
	}
	return SharedArtifacts()
}

// PortedResult reports a ported run.
type PortedResult struct {
	Scenario Scenario
	Variant  Variant
	// Total includes the one-time overhead; PerImage excludes it.
	Total    sim.Duration
	OneTime  sim.Duration
	PerImage sim.Duration
	// KernelTime is the average per-image PPE-observed round-trip time of
	// each kernel (detection summed over the four features). Meaningful
	// for SingleSPE, where invocations do not overlap.
	KernelTime map[KernelID]sim.Duration
	// Images holds the outputs read back from the wrappers.
	Images []ImageResult
	// ValidationErrors counts mismatches against the reference outputs.
	ValidationErrors int
	// SPEBusy reports each SPE's accumulated compute time.
	SPEBusy []sim.Duration
	// EventCount is the simulator's total dispatched-event count for the
	// run — a replay fingerprint: identical inputs must reproduce it
	// exactly, whether the run executed sequentially or inside the
	// parallel experiment harness.
	EventCount uint64
	// Faults is the structured fault report (nil when no plan was armed):
	// what was injected and how the supervision loop recovered.
	Faults *fault.Report
	// Trace holds the run's recorded spans and instants when the machine
	// was configured with a *trace.Recorder. Excluded from JSON so -json
	// artifacts are byte-identical with instrumentation on or off.
	Trace *trace.Recorder `json:"-"`
	// Metrics is the end-of-run snapshot when the machine was configured
	// with a registry. Excluded from JSON for the same reason.
	Metrics *metrics.Snapshot `json:"-"`
	// Exec is the real-execution run when the config carried a backend
	// (wall-clock domain). Excluded from JSON so -json artifacts are
	// byte-identical whether or not a backend raced the simulation.
	Exec *ExecRun `json:"-"`
}

// extractOrder lists extraction kernels in expected-completion order for
// the parallel scenarios (shortest first, the correlogram last).
var extractOrder = []KernelID{KCH, KTX, KEH, KCC}

// detModelOf maps an extraction kernel to its concept model index in
// ImageResult.Scores.
func scoreIndex(id KernelID) int {
	switch id {
	case KCH:
		return 0
	case KCC:
		return 1
	case KEH:
		return 2
	default:
		return 3
	}
}

// PortedRun is an in-flight ported run in partition mode: StartPorted has
// built the machine and spawned the PPE main program, but the simulation
// itself is driven by the caller (typically as one wheel of a
// sim.ShardedEngine). Finish harvests the result once the engine has run.
type PortedRun struct {
	cfg     PortedConfig
	mcfg    cell.Config
	machine *cell.Machine
	inj     *fault.Injector
	res     *PortedResult
	nImages int
	main    *cell.MainRun
	runErr  error
	ppeBusy sim.Duration
}

// StartPorted prepares a ported run without simulating it: it resolves
// artifacts, builds the machine (on cfg.MachineConfig.Engine when set, so
// a sharded harness can place the run on its own wheel), arms fault
// injection, and spawns the PPE main process. Drive the returned run's
// Engine to completion, then call Finish.
func StartPorted(cfg PortedConfig) (*PortedRun, error) {
	w := cfg.Workload
	if w.Images <= 0 {
		return nil, fmt.Errorf("%w (Workload.Images = %d)", ErrEmptyWorkload, w.Images)
	}
	mcfg := cell.DefaultConfig()
	if cfg.MachineConfig != nil {
		mcfg = *cfg.MachineConfig
	}
	machine := cell.New(mcfg)
	ok := false
	defer func() {
		if !ok {
			machine.Release()
		}
	}()
	arts := cfg.artifacts()
	images := arts.Images(w)
	ms, err := arts.ModelSet(w.Seed)
	if err != nil {
		return nil, err
	}
	var ref *ReferenceResult
	if cfg.Validate {
		ref, err = arts.Reference(mcfg.PPEModel, w)
		if err != nil {
			return nil, err
		}
	}

	r := &PortedRun{
		cfg:     cfg,
		mcfg:    mcfg,
		machine: machine,
		nImages: len(images),
		res: &PortedResult{
			Scenario:   cfg.Scenario,
			Variant:    cfg.Variant,
			KernelTime: make(map[KernelID]sim.Duration),
		},
	}
	if !cfg.Faults.Empty() {
		r.inj = fault.NewInjector(machine.Engine, cfg.Faults, mcfg.NumSPEs)
		machine.InjectFaults(r.inj)
	}
	r.main = machine.StartMain("marvel", func(ctx *cell.Context) {
		r.runErr = portedMain(ctx, cfg, r.inj, images, ms, ref, r.res)
		r.ppeBusy = ctx.BusyTime()
	})
	ok = true
	return r, nil
}

// Engine returns the engine hosting this run (the wheel to drive).
func (r *PortedRun) Engine() *sim.Engine { return r.machine.Engine }

// Finish harvests the result after the run's engine has been driven to
// completion; simErr is the engine's Run error. Finish releases the
// machine and must be called exactly once.
func (r *PortedRun) Finish(simErr error) (*PortedResult, error) {
	defer r.machine.Release()
	if simErr != nil {
		return nil, fmt.Errorf("marvel: simulation: %w", simErr)
	}
	if r.runErr != nil {
		return nil, r.runErr
	}
	res := r.res
	elapsed, done := r.main.Elapsed()
	if !done {
		return nil, fmt.Errorf("marvel: simulation ended before main returned (scenario %s)", r.cfg.Scenario)
	}
	res.Total = elapsed
	if n := r.nImages; n > 0 {
		res.PerImage = (res.Total - res.OneTime) / sim.Duration(n)
		for id := range res.KernelTime {
			res.KernelTime[id] /= sim.Duration(n)
		}
	}
	for _, s := range r.machine.SPEs {
		res.SPEBusy = append(res.SPEBusy, s.BusyTime())
	}
	res.EventCount = r.machine.Engine.EventCount
	if r.inj != nil {
		res.Faults = r.inj.Report()
	}
	// Post-run observability harvest: pure bookkeeping over completed
	// counters, after the engine has stopped — it cannot affect the replay
	// fingerprint captured above.
	if reg := r.mcfg.Metrics; reg != nil {
		r.machine.HarvestMetrics(elapsed)
		reg.Counter("ppe", "busy_fs").Add(int64(r.ppeBusy))
		if res.Faults != nil {
			rep := res.Faults
			reg.Counter("supervisor", "faults_planned").Add(int64(rep.Planned))
			reg.Counter("supervisor", "faults_injected").Add(int64(len(rep.Injected)))
			reg.Counter("supervisor", "retries").Add(int64(rep.Retries))
			reg.Counter("supervisor", "redispatches").Add(int64(rep.Redispatches))
			reg.Counter("supervisor", "fallbacks").Add(int64(rep.Fallbacks))
			reg.Counter("supervisor", "watchdog_timeouts").Add(int64(rep.WatchdogTimeouts))
			reg.Counter("supervisor", "spes_lost").Add(int64(len(rep.SPEsLost)))
			reg.Counter("supervisor", "backoff_fs").Add(int64(rep.BackoffTime))
			reg.Counter("supervisor", "degraded_fs").Add(int64(rep.DegradedTime))
		}
		res.Metrics = reg.Snapshot()
	}
	if rec, ok := r.mcfg.Tracer.(*trace.Recorder); ok {
		res.Trace = rec
	}
	return res, nil
}

// RunPorted executes the ported MARVEL application on a simulated Cell.
// With an execution backend configured, the same point then runs for
// real and the measured run rides along on the result.
func RunPorted(cfg PortedConfig) (*PortedResult, error) {
	r, err := StartPorted(cfg)
	if err != nil {
		return nil, err
	}
	res, err := r.Finish(r.Engine().Run())
	if err != nil {
		return nil, err
	}
	if cfg.Exec != nil {
		run, err := cfg.Exec.Execute(ExecPoint{Workload: cfg.Workload, Scenario: cfg.Scenario, Variant: cfg.Variant})
		if err != nil {
			return nil, fmt.Errorf("marvel: exec backend: %w", err)
		}
		res.Exec = run
	}
	return res, nil
}

// portedMain is the PPE main application after porting (Listing 4 shape).
func portedMain(ctx *cell.Context, cfg PortedConfig, inj *fault.Injector, images []*img.RGB, ms *ModelSet, ref *ReferenceResult, res *PortedResult) error {
	mem := ctx.Memory()
	w := cfg.Workload
	pixels := float64(w.W * w.H)

	// --- one-time: load models from disk, place them in main memory, ---
	// --- load the SPE kernels and leave them idling (§3.3).          ---
	start := ctx.Now()
	ctx.DiskRead(ModelFileBytes, "load-models")
	ctx.ComputeScalar(ModelParseOps, "parse-models")
	type placed struct {
		pm  *PlacedModel
		dim int
		n   int
	}
	models := map[KernelID]placed{}
	place := func(id KernelID, m *PlacedModel, err error) error {
		if err != nil {
			return err
		}
		ctx.MemStream(float64(m.Bytes()), "place-model")
		models[id] = placed{pm: m, dim: m.Dim, n: m.NumSV}
		return nil
	}
	pm, err := PlaceModel(mem, ms.CH)
	if err := place(KCH, pm, err); err != nil {
		return err
	}
	pm, err = PlaceModel(mem, ms.CC)
	if err := place(KCC, pm, err); err != nil {
		return err
	}
	pm, err = PlaceModel(mem, ms.EH)
	if err := place(KEH, pm, err); err != nil {
		return err
	}
	pm, err = PlaceModel(mem, ms.TX)
	if err := place(KTX, pm, err); err != nil {
		return err
	}

	// PPE fallback closures for graceful degradation: each reproduces its
	// SPE kernel's outputs bit-for-bit by running the same feature/SVM
	// code against the wrapper in main memory, charging reference-style
	// PPE time.
	extractFallback := func(id KernelID) fallbackFunc {
		return func(wrapper mainmem.Addr) uint32 {
			hdr := core.GetUint32s(mem.Bytes(wrapper, exHdrBytes))
			iw, ih, stride := int(hdr[0]), int(hdr[1]), int(hdr[2])
			pixEA := mainmem.Addr(hdr[3])
			y0, y1 := int(hdr[4]), int(hdr[5])
			if iw <= 0 || ih <= 0 || stride < 3*iw || y0 != 0 || y1 != ih {
				return resErr
			}
			im := img.Wrap(mem.Bytes(pixEA, uint32(stride*ih)), iw, ih, stride)
			var vec []float32
			switch id {
			case KCH:
				vec = features.ColorHistogram(im)
			case KCC:
				vec = features.ColorCorrelogram(im)
			case KEH:
				vec = features.EdgeHistogram(im)
			default:
				vec = features.Texture(im)
			}
			cal := Cal(id)
			ctx.ComputeBranches(cal.NomBranchesPerPixel*pixels, -1, id.String()+"-ppe")
			ctx.ComputeScalar(cal.NomOpsPerPixel*pixels*cal.HostOpsMult, id.String()+"-ppe")
			core.PutFloat32s(mem.Bytes(wrapper+mainmem.Addr(extractOutOff()), uint32(len(vec)*4)), vec)
			return resOK
		}
	}
	detectFallback := func(wrapper mainmem.Addr) uint32 {
		hdr := core.GetUint32s(mem.Bytes(wrapper, hdrBytes))
		dim, numSV := int(hdr[0]), int(hdr[1])
		modelEA := mainmem.Addr(hdr[2])
		if dim <= 0 || numSV <= 0 {
			return resErr
		}
		// Locate the placed model by effective address; the match is
		// unique, so map order does not matter.
		var model *PlacedModel
		for _, p := range models {
			if p.pm.EA == modelEA {
				model = p.pm
				break
			}
		}
		if model == nil || model.Dim != dim || model.NumSV != numSV {
			return resErr
		}
		feature := core.GetFloat32s(mem.Bytes(wrapper+mainmem.Addr(detectFeatureOff()), uint32(dim)*4))
		sum := model.refModel.Decision(feature)
		ctx.ComputeScalar(detectNomOps(numSV, dim)*Cal(KCD).HostOpsMult, "detect-ppe")
		sb := mem.Bytes(wrapper+mainmem.Addr(detectScoreOff(dim)), scoreBytes)
		core.PutFloat32s(sb[:4], []float32{float32(sum)})
		class := uint32(0)
		if sum > 0 {
			class = 1
		}
		core.PutUint32s(sb[4:8], []uint32{class})
		return resOK
	}

	// Kernel placement: extraction kernels on SPE0-3; detection on SPE4
	// (SingleSPE, MultiSPE) or replicated on SPE4-7 (MultiSPE2). Under
	// supervision, SPEs beyond the planned set form the redispatch pool.
	sup := newSupervisor(ctx, inj, cfg.Watchdog)
	switch cfg.Scenario {
	case MultiSPE2, Pipelined:
		sup.reserve(0, 1, 2, 3, 4, 5, 6, 7)
	default:
		sup.reserve(0, 1, 2, 3, 4)
	}
	extract := map[KernelID]*kern{}
	for i, id := range []KernelID{KCH, KCC, KTX, KEH} {
		k, err := sup.open(i, ExtractKernelSpec(id, cfg.Variant), extractFallback(id))
		if err != nil {
			return err
		}
		extract[id] = k
	}
	detect := map[KernelID]*kern{}
	switch cfg.Scenario {
	case MultiSPE2, Pipelined:
		for i, id := range []KernelID{KCH, KCC, KTX, KEH} {
			k, err := sup.open(4+i, DetectKernelSpec(cfg.Variant), detectFallback)
			if err != nil {
				return err
			}
			detect[id] = k
		}
	default:
		k, err := sup.open(4, DetectKernelSpec(cfg.Variant), detectFallback)
		if err != nil {
			return err
		}
		for _, id := range []KernelID{KCH, KCC, KTX, KEH} {
			detect[id] = k
		}
	}
	res.OneTime = ctx.Now().Sub(start)

	// Persistent wrappers and pixel blocks, reused per image. The
	// pipelined schedule double-buffers the pixel block (and the
	// extraction wrappers pointing at it) so preprocessing of image i+1
	// can overlap SPE processing of image i.
	stride := img.StrideFor(w.W)
	pixBytes := uint32(stride * w.H)
	numBufs := 1
	if cfg.Scenario == Pipelined {
		numBufs = 2
	}
	pixEAs := make([]mainmem.Addr, numBufs)
	exWraps := make([]map[KernelID]*core.Wrapper, numBufs)
	for b := 0; b < numBufs; b++ {
		ea, err := mem.Alloc(pixBytes, mainmem.AlignCacheLine)
		if err != nil {
			return err
		}
		pixEAs[b] = ea
		exWraps[b] = map[KernelID]*core.Wrapper{}
		for _, id := range []KernelID{KCH, KCC, KTX, KEH} {
			ew, err := core.NewWrapper(mem, extractFields(id)...)
			if err != nil {
				return err
			}
			fillExtractHeader(ew, w.W, w.H, stride, ea, 0, w.H)
			exWraps[b][id] = ew
		}
	}
	exWrap := exWraps[0]
	dtWrap := map[KernelID]*core.Wrapper{}
	for _, id := range []KernelID{KCH, KCC, KTX, KEH} {
		p := models[id]
		dw, err := core.NewWrapper(mem, detectFields(p.dim)...)
		if err != nil {
			return err
		}
		fillDetectHeader(dw, p.dim, p.n, p.pm.EA, 0)
		dtWrap[id] = dw
	}

	readFeatureSet := func(set map[KernelID]*core.Wrapper, id KernelID) []float32 {
		return set[id].Float32s("out", outDim(id))
	}
	readFeature := func(id KernelID) []float32 { return readFeatureSet(exWrap, id) }
	feedDetectorSet := func(set map[KernelID]*core.Wrapper, id KernelID) {
		// FILL the detection wrapper from the extraction output (the
		// Listing-4 "put data back / wrap again" step).
		vec := readFeatureSet(set, id)
		dtWrap[id].SetFloat32s("feature", vec)
		ctx.MemStream(float64(len(vec)*4*2), "copy-feature")
	}
	feedDetector := func(id KernelID) { feedDetectorSet(exWrap, id) }
	readScore := func(id KernelID) float64 {
		return float64(dtWrap[id].Float32s("score", 1)[0])
	}
	// preprocessInto reads and decodes one image into pixel block b: the
	// PPE-side preprocessing of §5.1.
	preprocessInto := func(im *img.RGB, b int) {
		ctx.DiskRead(CompressedImageBytes, "read-image")
		ctx.ComputeScalar(DecodeOpsPerPixel*pixels, "decode-image")
		// The decode's store pass writes straight into the aligned pixel
		// block; no extra streaming charge beyond the decode ops (the
		// original code also wrote its framebuffer during decode).
		dst := mem.Bytes(pixEAs[b], pixBytes)
		for y := 0; y < w.H; y++ {
			copy(dst[y*stride:], im.Row(y))
		}
	}

	if cfg.Scenario == Pipelined {
		if err := runPipelined(ctx, images, exWraps, dtWrap, extract, detect,
			preprocessInto, feedDetectorSet, readFeatureSet, readScore, ref, res); err != nil {
			return err
		}
	} else {
		// --- per-image pipeline, sequential schedules ------------------
		if err := runSequentialScenarios(ctx, cfg, images, exWrap, dtWrap, extract, detect,
			preprocessInto, feedDetector, readFeature, readScore, ref, res); err != nil {
			return err
		}
	}

	// Tear down: close interfaces (sends OpExit), free wrappers.
	for _, id := range []KernelID{KCH, KCC, KTX, KEH} {
		if err := extract[id].Close(); err != nil {
			return err
		}
	}
	closed := map[*kern]bool{}
	for _, id := range []KernelID{KCH, KCC, KTX, KEH} {
		k := detect[id]
		if !closed[k] {
			if err := k.Close(); err != nil {
				return err
			}
			closed[k] = true
		}
	}
	for b := 0; b < numBufs; b++ {
		for _, id := range []KernelID{KCH, KCC, KTX, KEH} {
			if err := exWraps[b][id].Free(); err != nil {
				return err
			}
		}
		if err := mem.Free(pixEAs[b]); err != nil {
			return err
		}
	}
	for _, id := range []KernelID{KCH, KCC, KTX, KEH} {
		if err := dtWrap[id].Free(); err != nil {
			return err
		}
		if err := models[id].pm.Free(mem); err != nil {
			return err
		}
	}
	return mem.CheckLeaks()
}

// runSequentialScenarios executes the paper's three schedules (one image
// fully processed before the next one is touched).
func runSequentialScenarios(
	ctx *cell.Context,
	cfg PortedConfig,
	images []*img.RGB,
	exWrap, dtWrap map[KernelID]*core.Wrapper,
	extract, detect map[KernelID]*kern,
	preprocessInto func(*img.RGB, int),
	feedDetector func(KernelID),
	readFeature func(KernelID) []float32,
	readScore func(KernelID) float64,
	ref *ReferenceResult,
	res *PortedResult,
) error {
	for n, im := range images {
		preprocessInto(im, 0)

		var r ImageResult
		invoke := func(id KernelID, k *kern, wrapper mainmem.Addr) error {
			t0 := ctx.Now()
			code, err := k.SendAndWait(OpRun, wrapper)
			if err != nil {
				return err
			}
			if code != resOK {
				return fmt.Errorf("marvel: %s returned %#x", id, code)
			}
			res.KernelTime[id] += ctx.Now().Sub(t0)
			return nil
		}

		switch cfg.Scenario {
		case SingleSPE:
			for _, id := range []KernelID{KCH, KCC, KTX, KEH} {
				if err := invoke(id, extract[id], exWrap[id].Addr()); err != nil {
					return err
				}
			}
			for _, id := range []KernelID{KCH, KCC, KTX, KEH} {
				feedDetector(id)
				if err := invoke(KCD, detect[id], dtWrap[id].Addr()); err != nil {
					return err
				}
			}
		case MultiSPE:
			// Fig. 4(c) with strict group order: the extraction group runs
			// in parallel; once it completes, the detections run
			// sequentially on the shared detector SPE ("the groups ... are
			// still executed sequentially").
			for _, id := range extractOrder {
				if err := extract[id].Send(OpRun, exWrap[id].Addr()); err != nil {
					return err
				}
			}
			for _, id := range extractOrder {
				code, err := extract[id].Wait()
				if err != nil {
					return err
				}
				if code != resOK {
					return fmt.Errorf("marvel: %s returned %#x", id, code)
				}
			}
			for _, id := range extractOrder {
				feedDetector(id)
				if err := invoke(KCD, detect[id], dtWrap[id].Addr()); err != nil {
					return err
				}
			}
		case MultiSPE2:
			// Replicated detectors: each extraction is immediately followed
			// by its own detection on its paired SPE, overlapping with the
			// remaining extractions.
			for _, id := range extractOrder {
				if err := extract[id].Send(OpRun, exWrap[id].Addr()); err != nil {
					return err
				}
			}
			var inFlight []KernelID
			for _, id := range extractOrder {
				code, err := extract[id].Wait()
				if err != nil {
					return err
				}
				if code != resOK {
					return fmt.Errorf("marvel: %s returned %#x", id, code)
				}
				feedDetector(id)
				if err := detect[id].Send(OpRun, dtWrap[id].Addr()); err != nil {
					return err
				}
				inFlight = append(inFlight, id)
			}
			for _, id := range inFlight {
				code, err := detect[id].Wait()
				if err != nil {
					return err
				}
				if code != resOK {
					return fmt.Errorf("marvel: detect(%s) returned %#x", id, code)
				}
			}
		}

		r.CH = readFeature(KCH)
		r.CC = readFeature(KCC)
		r.EH = readFeature(KEH)
		r.TX = readFeature(KTX)
		for _, id := range []KernelID{KCH, KCC, KEH, KTX} {
			r.Scores[scoreIndex(id)] = readScore(id)
		}
		res.Images = append(res.Images, r)

		if ref != nil {
			res.ValidationErrors += compareImage(&ref.Images[n], &r)
		}
	}
	return nil
}

// runPipelined executes the extension schedule: while the SPEs extract
// and detect image i (from pixel-buffer set i%2), the PPE preprocesses
// image i+1 into the other set. Detections use the replicated detectors
// (SPE4-7), so each extraction is followed by its own detection as in
// MultiSPE2.
func runPipelined(
	ctx *cell.Context,
	images []*img.RGB,
	exWraps []map[KernelID]*core.Wrapper,
	dtWrap map[KernelID]*core.Wrapper,
	extract, detect map[KernelID]*kern,
	preprocessInto func(*img.RGB, int),
	feedDetectorSet func(map[KernelID]*core.Wrapper, KernelID),
	readFeatureSet func(map[KernelID]*core.Wrapper, KernelID) []float32,
	readScore func(KernelID) float64,
	ref *ReferenceResult,
	res *PortedResult,
) error {
	if len(images) == 0 {
		return nil
	}
	preprocessInto(images[0], 0)
	for n := range images {
		set := exWraps[n%2]
		// Launch all four extractions on image n.
		for _, id := range extractOrder {
			if err := extract[id].Send(OpRun, set[id].Addr()); err != nil {
				return err
			}
		}
		// Overlap: preprocess image n+1 into the other buffer while the
		// SPEs work.
		if n+1 < len(images) {
			preprocessInto(images[n+1], (n+1)%2)
		}
		// Collect extractions, hand each feature to its own detector.
		var inFlight []KernelID
		for _, id := range extractOrder {
			code, err := extract[id].Wait()
			if err != nil {
				return err
			}
			if code != resOK {
				return fmt.Errorf("marvel: %s returned %#x", id, code)
			}
			feedDetectorSet(set, id)
			if err := detect[id].Send(OpRun, dtWrap[id].Addr()); err != nil {
				return err
			}
			inFlight = append(inFlight, id)
		}
		for _, id := range inFlight {
			code, err := detect[id].Wait()
			if err != nil {
				return err
			}
			if code != resOK {
				return fmt.Errorf("marvel: detect(%s) returned %#x", id, code)
			}
		}

		var r ImageResult
		r.CH = readFeatureSet(set, KCH)
		r.CC = readFeatureSet(set, KCC)
		r.EH = readFeatureSet(set, KEH)
		r.TX = readFeatureSet(set, KTX)
		for _, id := range []KernelID{KCH, KCC, KEH, KTX} {
			r.Scores[scoreIndex(id)] = readScore(id)
		}
		res.Images = append(res.Images, r)
		if ref != nil {
			res.ValidationErrors += compareImage(&ref.Images[n], &r)
		}
	}
	return nil
}

// compareImage counts mismatches between reference and ported outputs.
// Feature vectors must match bit-for-bit; scores must match after
// float32 rounding (the kernel reports a float32).
func compareImage(ref, got *ImageResult) int {
	bad := 0
	cmpVec := func(a, b []float32) {
		if len(a) != len(b) {
			bad++
			return
		}
		for i := range a {
			if a[i] != b[i] {
				bad++
				return
			}
		}
	}
	cmpVec(ref.CH, got.CH)
	cmpVec(ref.CC, got.CC)
	cmpVec(ref.EH, got.EH)
	cmpVec(ref.TX, got.TX)
	for i := range ref.Scores {
		if float64(float32(ref.Scores[i])) != got.Scores[i] {
			if math.Abs(float64(float32(ref.Scores[i]))-got.Scores[i]) > 0 {
				bad++
			}
		}
	}
	return bad
}
