package marvel

import (
	"cellport/internal/cost"
	"cellport/internal/features"
)

// Calibration constants.
//
// Everything the paper MEASURES but does not derive lives here, each
// constant tied to the published number it targets. Structural behaviour
// (DMA time, slice counts, mailbox round trips, schedule overlap) is
// computed by the simulator; these constants set per-kernel effective
// throughput.
//
// Targets:
//
//	§5.2  per-image coverage on the PPE: CH 8%, CC 54%, TX 6%, EH 28%,
//	      ConceptDet 2%, image read/decode 2%.
//	Table 1 optimized SPE-vs-PPE speed-ups: 53.67 / 52.23 / 15.99 /
//	      65.94 / 10.80.
//	§5.3  pre-optimization (naive port) speed-ups: CH 26.41, CC 0.43,
//	      EH 3.85 (TX and ConceptDet were not measured before
//	      optimization; plausible values are assigned and marked).
//
// Derivation sketch: the features package defines nominal per-pixel
// operation counts for the *integer* algorithm each kernel uses after
// porting. The original C++ runs costlier code on the hosts —
// floating-point HSV conversion (CH), float atan2 per pixel (EH), cache
// misses on the window walk (CC), pointer-heavy model evaluation (CD) —
// captured as HostOpsMult, chosen so the PPE per-kernel times land on the
// §5.2 coverage split. Host machines then differ only through their
// sustained scalar throughput, which reproduces the 2.5×/3.2× host
// ratios automatically.
//
// The optimized SPE variant runs the nominal ops SIMDized at OptWidth
// with efficiency OptEff; eff values are solved from Table 1
// (cycles/px = nominalOps / (peakOpsPerCycle × eff)). The naive variant
// models the first functional port: single-buffered DMA, mostly scalar
// code with static-prediction branch stalls, NaiveEff likewise solved
// from §5.3.

// kernelCal is the per-kernel calibration record.
type kernelCal struct {
	// NomOpsPerPixel / NomBranchesPerPixel: the ported integer algorithm
	// (from the features package; detection uses per-SV counts instead).
	NomOpsPerPixel      float64
	NomBranchesPerPixel float64
	// HostOpsMult scales nominal ops to the original C++ implementation's
	// cost on scalar hosts (PPE, Desktop, Laptop).
	HostOpsMult float64
	// Optimized SPE variant: SIMD width and efficiency.
	OptWidth cost.Width
	OptEff   float64
	// Naive SPE variant: if NaiveSIMD, the first port already vectorized
	// (compiler-friendly inner loop); otherwise scalar. NaiveEff applies
	// to the respective peak (SIMD lane rate or scalar IPC).
	NaiveSIMD  bool
	NaiveWidth cost.Width
	NaiveEff   float64
	// CodeBytes is the kernel's program-image footprint in the LS.
	CodeBytes uint32
	// SliceOverheadCycles is fixed SPU work per processed slice (loop
	// setup, address arithmetic, bookkeeping).
	SliceOverheadCycles float64
}

var calibration = map[KernelID]kernelCal{
	KCH: {
		NomOpsPerPixel:      features.HistOpsPerPixel,      // 38
		NomBranchesPerPixel: features.HistBranchesPerPixel, // 7
		// PPE time target 4.92 ms/image (8% of 61.5 ms): float HSV
		// conversion with divisions in the original code.
		HostOpsMult: 2.45,
		// Table 1: 53.67× ⇒ ~3.5 cycles/px ⇒ 16-bit lanes at eff 0.68.
		OptWidth: cost.Bits16,
		OptEff:   0.74,
		// §5.3: 26.41× already before optimization — the histogram inner
		// loop auto-vectorized in the first port (it is a pure per-pixel
		// map), it just lacked multibuffering and unrolling.
		NaiveSIMD:           true,
		NaiveWidth:          cost.Bits16,
		NaiveEff:            0.34,
		CodeBytes:           24 * 1024,
		SliceOverheadCycles: 300,
	},
	KCC: {
		NomOpsPerPixel:      features.CorrOpsPerPixel,      // 616
		NomBranchesPerPixel: features.CorrBranchesPerPixel, // 24
		// CC is the calibration anchor: HostOpsMult 1.0 ⇒ 33.2 ms on the
		// PPE = 54% of the per-image budget.
		HostOpsMult: 1.0,
		// Table 1: 52.23× ⇒ ~24 cycles/px ⇒ byte lanes at eff 0.80 (the
		// window compare-and-count is ideal 16-way byte SIMD).
		OptWidth: cost.Bits8,
		OptEff:   0.81,
		// §5.3: 0.43× — the straight C port ran *slower* than the PPE:
		// scalar compares on a branchy window walk with 18-cycle static
		// mispredictions.
		NaiveSIMD:           false,
		NaiveEff:            0.62,
		CodeBytes:           48 * 1024,
		SliceOverheadCycles: 400,
	},
	KTX: {
		NomOpsPerPixel:      features.TexOpsPerPixel,      // 18
		NomBranchesPerPixel: features.TexBranchesPerPixel, // 4
		// PPE target 3.69 ms (6%): float wavelet filters in the original.
		HostOpsMult: 3.9,
		// Table 1: 15.99× ⇒ ~8.7 cycles/px ⇒ 32-bit lanes at eff 0.26
		// (strided column passes defeat wide SIMD — the paper's weakest
		// kernel).
		OptWidth: cost.Bits32,
		OptEff:   0.254,
		// Not measured in §5.3; assigned: scalar port, moderate branches.
		NaiveSIMD:           false,
		NaiveEff:            0.70,
		CodeBytes:           40 * 1024,
		SliceOverheadCycles: 350,
	},
	KEH: {
		NomOpsPerPixel:      features.EdgeOpsPerPixel,      // 39
		NomBranchesPerPixel: features.EdgeBranchesPerPixel, // 9
		// PPE target 17.2 ms (28%): the original computes a float atan2
		// and sqrt per pixel.
		HostOpsMult: 8.3,
		// Table 1: 65.94× ⇒ ~9.9 cycles/px ⇒ 16-bit lanes at eff 0.25
		// (the big win is dropping atan2 for octant compares).
		OptWidth: cost.Bits16,
		OptEff:   0.25,
		// §5.3: 3.85× — scalar port already beat the PPE because the
		// integer rewrite removed atan2.
		NaiveSIMD:           false,
		NaiveEff:            0.84,
		CodeBytes:           36 * 1024,
		SliceOverheadCycles: 300,
	},
	KCD: {
		// Detection cost is per support vector: 3*dim+25 nominal ops
		// (see svm.Model.DetectOps); per-pixel fields unused.
		HostOpsMult: 7.2, // PPE target 1.23 ms (2%): virtual calls + exp()
		// Table 1: 10.80× ⇒ fp32 4-wide at low efficiency (dot products
		// short, exp scalar).
		OptWidth: cost.Bits32,
		OptEff:   0.104,
		// Not measured in §5.3; assigned: scalar float port.
		NaiveSIMD:           false,
		NaiveEff:            0.55,
		CodeBytes:           32 * 1024,
		SliceOverheadCycles: 500,
	},
}

// Cal returns the calibration record for a kernel.
func Cal(k KernelID) kernelCal { return calibration[k] }

// NaiveMispredict is the misprediction rate charged to naive kernels
// (static prediction on data-dependent branches).
const NaiveMispredict = 0.30

// OptMispredict is the rate after branch removal and hinting (§4.1).
const OptMispredict = 0.02

// detectNomOps returns nominal operations for evaluating a model with n
// support vectors of dimension dim (mirrors svm.Model.DetectOps).
func detectNomOps(n, dim int) float64 { return float64(n) * (3*float64(dim) + 25) }

// detectNomOpsAll is the per-image nominal detection work for the §5.5
// model library.
func detectNomOpsAll() float64 {
	return detectNomOps(NumSVCH, DimCH) + detectNomOps(NumSVCC, DimCC) +
		detectNomOps(NumSVEH, DimEH) + detectNomOps(NumSVTX, DimTX)
}
