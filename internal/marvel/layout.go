package marvel

import (
	"cellport/internal/core"
	"cellport/internal/mainmem"
)

// Shared wrapper layouts — the Go analog of the C header both sides of a
// port compile against. The PPE builds wrappers with these fields; the SPE
// kernels compute the same offsets to DMA individual fields.
//
// Extraction wrapper (one per kernel invocation):
//
//	hdr     32 B   [W][H][stride][pixelsEA][Y0][Y1][0][0]  (uint32 each)
//	out     per-kernel output (padded to 16 B): the float32 feature
//	        vector for OpRun, or the raw accumulator for OpRunPartial
//
// [Y0, Y1) selects the payload rows the kernel is responsible for —
// Y0=0, Y1=H for a whole-image invocation; a sub-range for data-parallel
// extraction across several SPEs (window halos still clamp at the *image*
// boundary, not the partition boundary).
//
// The pixel block itself is a separate 128-byte-aligned allocation shared
// by all four extraction kernels; its address travels in the header —
// the kernel "fetches its required data via DMA" (§3.3).
//
// Detection wrapper (one per feature classification):
//
//	hdr     16 B   [dim][numSV][modelEA][encBytes]
//	feature dim float32 (padded)
//	score   16 B   [score f32][class u32][pad]
const (
	hdrBytes   = 16
	exHdrBytes = 32
	scoreBytes = 16
)

// pad16 rounds n up to a multiple of 16.
func pad16(n uint32) uint32 { return (n + 15) &^ 15 }

// outDim returns the output feature dimension of an extraction kernel.
func outDim(id KernelID) int {
	switch id {
	case KCH, KCC:
		return DimCH
	case KEH:
		return DimEH
	case KTX:
		return DimTX
	default:
		panic("marvel: " + id.String() + " has no extraction output")
	}
}

// outBytes returns the padded byte size of an extraction output field:
// large enough for both the finalized feature vector and the raw
// accumulator a partial (data-parallel) invocation emits.
func outBytes(id KernelID) uint32 {
	final := pad16(uint32(outDim(id)) * 4)
	raw := pad16(rawWords(id) * 4)
	if raw > final {
		return raw
	}
	return final
}

// rawWords returns the uint32 count of a kernel's raw accumulator
// encoding (see rawacc.go).
func rawWords(id KernelID) uint32 {
	switch id {
	case KCH:
		return HistBinsU + 1 // counts + pixel total
	case KCC:
		return 2 * HistBinsU // Same + Total
	case KEH:
		return EdgeBinsU
	case KTX:
		return TexBinsU + 1 // energies + pixel total
	default:
		return 0
	}
}

// Extraction wrapper field layout (kernel-side offset math must match
// core.NewWrapper's: fields padded to 16 in declaration order).
func extractFields(id KernelID) []core.WrapperField {
	return []core.WrapperField{
		{Name: "hdr", Size: exHdrBytes},
		{Name: "out", Size: outBytes(id)},
	}
}

// Kernel-side extraction offsets.
func extractOutOff() uint32 { return exHdrBytes }

// Detection wrapper field layout.
func detectFields(dim int) []core.WrapperField {
	return []core.WrapperField{
		{Name: "hdr", Size: hdrBytes},
		{Name: "feature", Size: pad16(uint32(dim) * 4)},
		{Name: "score", Size: scoreBytes},
	}
}

// Kernel-side detection offsets.
func detectFeatureOff() uint32         { return hdrBytes }
func detectScoreOff(dim int) uint32    { return hdrBytes + pad16(uint32(dim)*4) }
func detectWrapperBytes(dim int) int64 { return int64(detectScoreOff(dim)) + scoreBytes }

// fillExtractHeader writes the extraction header fields for a payload row
// range [y0, y1).
func fillExtractHeader(w *core.Wrapper, width, height, stride int, pixEA mainmem.Addr, y0, y1 int) {
	core.PutUint32s(w.Bytes("hdr"), []uint32{
		uint32(width), uint32(height), uint32(stride), uint32(pixEA),
		uint32(y0), uint32(y1), 0, 0,
	})
}

// fillDetectHeader writes the detection header fields.
func fillDetectHeader(w *core.Wrapper, dim, numSV int, modelEA mainmem.Addr, encBytes uint32) {
	core.PutUint32s(w.Bytes("hdr"), []uint32{
		uint32(dim), uint32(numSV), uint32(modelEA), encBytes,
	})
}
