package marvel

import (
	"fmt"
	"io"

	"cellport/internal/ls"
)

// Local-store footprint planning — §3.2: "the kernels have to be small
// enough to fit in the local store, but large enough to provide some
// meaningful computation". Footprint reports, without running the
// simulator, how an extraction kernel's buffers land in the 256 KB LS for
// a given frame size: the same arithmetic the kernel performs at
// dispatch, factored out so a porting effort can check fit up front.

// Footprint describes one kernel's planned local-store usage.
type Footprint struct {
	Kernel  KernelID
	Variant Variant
	// CodeBytes + StackBytes are fixed reservations.
	CodeBytes  uint32
	StackBytes uint32
	// Buffers is the pixel-band buffer count (1 naive, 2 optimized);
	// BufferBytes the size of each; ScratchBytes per-buffer scratch
	// (quantized bins / gray rows); OutBytes the output field.
	Buffers      int
	BufferBytes  uint32
	ScratchBytes uint32
	OutBytes     uint32
	// Slices is the number of DMA'd bands per image; RowsPerSlice the
	// maximum transferred rows per band.
	Slices       int
	RowsPerSlice int
	// PeakBytes is the total planned LS usage; Free what remains.
	PeakBytes uint32
	FreeBytes uint32
}

// extractBufferBudget mirrors the kernel's dispatch-time arithmetic:
// given the free data bytes after loading the program, it returns the
// per-slice row budget.
func extractBufferBudget(id KernelID, v Variant, w, stride int, freeBytes uint32) (budgetRows, buffers int, oBytes uint32) {
	g := kernelGeom(id)
	buffers = 1
	if v == Optimized {
		buffers = 2
	}
	oBytes = outBytes(id)
	perRow := stride + g.scratchRows*w
	fixed := oBytes + 64
	budgetRows = int(freeBytes-fixed)/(buffers*perRow) - 1
	return budgetRows, buffers, oBytes
}

// PlanFootprint computes the LS layout for a kernel over a w×h frame.
// It fails exactly when the kernel itself would fail to plan (frame too
// wide, code too big, no room for one granule plus halos).
func PlanFootprint(id KernelID, v Variant, w, h int) (*Footprint, error) {
	if id == KCD {
		return nil, fmt.Errorf("marvel: detection streams models, use its chunking instead")
	}
	cal := Cal(id)
	g := kernelGeom(id)
	stride := strideFor(w)
	if stride > 16384 {
		return nil, fmt.Errorf("marvel: %s row stride %d exceeds one DMA command (frame too wide)", id, stride)
	}
	store := ls.New()
	if err := store.LoadProgram(cal.CodeBytes); err != nil {
		return nil, fmt.Errorf("marvel: %s image does not fit: %w", id, err)
	}
	// The kernel allocates the header first.
	if _, err := store.Alloc(exHdrBytes, 16); err != nil {
		return nil, err
	}
	budget, buffers, oBytes := extractBufferBudget(id, v, w, stride, store.Free())
	slices, err := planRange(0, h, h, budget, g.halo, g.granularity)
	if err != nil {
		return nil, fmt.Errorf("marvel: %s cannot slice a %dx%d frame: %w", id, w, h, err)
	}
	maxRows := 0
	for _, s := range slices {
		if r := s.TransferRows(); r > maxRows {
			maxRows = r
		}
	}
	fp := &Footprint{
		Kernel:       id,
		Variant:      v,
		CodeBytes:    cal.CodeBytes,
		StackBytes:   ls.DefaultStackBytes,
		Buffers:      buffers,
		BufferBytes:  uint32(maxRows * stride),
		ScratchBytes: uint32(maxRows * w * g.scratchRows),
		OutBytes:     oBytes,
		Slices:       len(slices),
		RowsPerSlice: maxRows,
	}
	// Replay the kernel's allocations to get the true peak.
	for i := 0; i < buffers; i++ {
		if _, err := store.Alloc(fp.BufferBytes, 16); err != nil {
			return nil, err
		}
		if fp.ScratchBytes > 0 {
			if _, err := store.Alloc(fp.ScratchBytes, 16); err != nil {
				return nil, err
			}
		}
	}
	if _, err := store.Alloc(oBytes, 16); err != nil {
		return nil, err
	}
	fp.PeakBytes = store.Used()
	fp.FreeBytes = store.Free()
	return fp, nil
}

// strideFor mirrors img.StrideFor without importing img here.
func strideFor(w int) int { return (3*w + 15) &^ 15 }

// RenderFootprints prints the LS budget table for all extraction kernels.
func RenderFootprints(w io.Writer, variant Variant, width, height int) error {
	fmt.Fprintf(w, "Local-store budget, %dx%d frame, %s kernels (LS = %d KB, stack %d KB)\n\n",
		width, height, variant, ls.Size/1024, ls.DefaultStackBytes/1024)
	fmt.Fprintf(w, "%-12s %8s %6s %10s %10s %7s %7s %9s %8s\n",
		"Kernel", "code", "bufs", "buf bytes", "scratch", "slices", "rows", "peak", "free")
	for _, id := range []KernelID{KCH, KCC, KTX, KEH} {
		fp, err := PlanFootprint(id, variant, width, height)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %7dK %6d %10d %10d %7d %7d %8dK %7dK\n",
			fp.Kernel, fp.CodeBytes/1024, fp.Buffers, fp.BufferBytes, fp.ScratchBytes,
			fp.Slices, fp.RowsPerSlice, fp.PeakBytes/1024, fp.FreeBytes/1024)
	}
	return nil
}
