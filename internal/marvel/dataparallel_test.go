package marvel

import (
	"testing"

	"cellport/internal/sim"
)

func TestSplitRows(t *testing.T) {
	cases := []struct {
		h, n, gran int
		want       [][2]int
	}{
		{240, 4, 1, [][2]int{{0, 60}, {60, 120}, {120, 180}, {180, 240}}},
		{240, 4, 32, [][2]int{{0, 64}, {64, 128}, {128, 192}, {192, 240}}},
		{96, 1, 1, [][2]int{{0, 96}}},
		{10, 4, 1, [][2]int{{0, 3}, {3, 6}, {6, 9}, {9, 10}}},
		{64, 8, 32, [][2]int{{0, 32}, {32, 64}}}, // fewer bands than SPEs
	}
	for _, c := range cases {
		got := splitRows(c.h, c.n, c.gran)
		if len(got) != len(c.want) {
			t.Errorf("splitRows(%d,%d,%d) = %v, want %v", c.h, c.n, c.gran, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitRows(%d,%d,%d)[%d] = %v, want %v", c.h, c.n, c.gran, i, got[i], c.want[i])
			}
		}
	}
}

// TestDataParallelMatchesReference is the extension's correctness
// invariant: any row split across any SPE count reproduces the
// whole-image feature exactly, for every extraction kernel — including
// the windowed ones whose halos must clamp at image (not partition)
// boundaries.
func TestDataParallelMatchesReference(t *testing.T) {
	w := testWorkload(1)
	for _, id := range []KernelID{KCH, KCC, KEH, KTX} {
		for _, n := range []int{1, 2, 3, 8} {
			res, err := RunDataParallelExtraction(id, n, w, Optimized, testMachineConfig())
			if err != nil {
				t.Fatalf("%s/%d: %v", id, n, err)
			}
			if !res.Matches {
				t.Errorf("%s across %d SPEs: merged feature differs from reference", id, n)
			}
		}
	}
}

func TestDataParallelScalesTheCorrelogram(t *testing.T) {
	w := testWorkload(1)
	times := map[int]sim.Duration{}
	for _, n := range []int{1, 2, 4, 8} {
		res, err := RunDataParallelExtraction(KCC, n, w, Optimized, testMachineConfig())
		if err != nil {
			t.Fatal(err)
		}
		times[n] = res.Time
	}
	if !(times[2] < times[1] && times[4] < times[2]) {
		t.Errorf("correlogram does not scale: %v", times)
	}
	// Near-linear at low counts: 2 SPEs should save at least 35%.
	if float64(times[2]) > 0.65*float64(times[1]) {
		t.Errorf("2-SPE speedup too small: %v vs %v", times[2], times[1])
	}
}

func TestDataParallelRejectsBadArgs(t *testing.T) {
	w := testWorkload(1)
	if _, err := RunDataParallelExtraction(KCD, 2, w, Optimized, testMachineConfig()); err == nil {
		t.Error("KCD accepted")
	}
	if _, err := RunDataParallelExtraction(KCC, 0, w, Optimized, testMachineConfig()); err == nil {
		t.Error("0 SPEs accepted")
	}
	if _, err := RunDataParallelExtraction(KCC, 99, w, Optimized, testMachineConfig()); err == nil {
		t.Error("99 SPEs accepted")
	}
}

func TestDataParallelNaiveVariantAlsoCorrect(t *testing.T) {
	w := testWorkload(1)
	res, err := RunDataParallelExtraction(KEH, 4, w, Naive, testMachineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matches {
		t.Error("naive data-parallel EH differs from reference")
	}
}

func TestPlanRangeClampsAtImageBounds(t *testing.T) {
	// Interior partition: halos extend past partition edges into the image.
	slices, err := planRange(100, 140, 240, 64, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	first, last := slices[0], slices[len(slices)-1]
	if first.HaloTop != 8 {
		t.Errorf("interior partition first slice HaloTop = %d, want 8", first.HaloTop)
	}
	if last.HaloBottom != 8 {
		t.Errorf("interior partition last slice HaloBottom = %d, want 8", last.HaloBottom)
	}
	// Partition at the image top: no rows above to fetch.
	slices, err = planRange(0, 40, 240, 64, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if slices[0].HaloTop != 0 {
		t.Errorf("top partition HaloTop = %d, want 0", slices[0].HaloTop)
	}
	if _, err := planRange(50, 50, 240, 64, 8, 1); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := planRange(-1, 50, 240, 64, 8, 1); err == nil {
		t.Error("negative start accepted")
	}
}

func TestPlanFootprintFits(t *testing.T) {
	for _, v := range []Variant{Naive, Optimized} {
		for _, id := range []KernelID{KCH, KCC, KTX, KEH} {
			fp, err := PlanFootprint(id, v, 352, 240)
			if err != nil {
				t.Fatalf("%s/%s: %v", id, v, err)
			}
			total := fp.PeakBytes + fp.StackBytes
			if total > 256*1024 {
				t.Errorf("%s/%s: peak+stack %d exceeds the local store", id, v, total)
			}
			if fp.Slices < 1 || fp.RowsPerSlice < 1 {
				t.Errorf("%s/%s: degenerate plan %+v", id, v, fp)
			}
			if v == Optimized && fp.Buffers != 2 {
				t.Errorf("%s optimized should double-buffer", id)
			}
			if v == Naive && fp.Buffers != 1 {
				t.Errorf("%s naive should single-buffer", id)
			}
		}
	}
}

func TestPlanFootprintMatchesKernelBehaviour(t *testing.T) {
	// The planner must agree with the kernel: a frame the planner accepts
	// runs, a frame it rejects fails the same way.
	if _, err := PlanFootprint(KCC, Optimized, 5600, 64); err == nil {
		t.Error("planner accepted a frame the kernel cannot DMA")
	}
	if _, err := PlanFootprint(KCD, Optimized, 352, 240); err == nil {
		t.Error("planner should reject the detection kernel")
	}
	fp, err := PlanFootprint(KCC, Optimized, 352, 96)
	if err != nil {
		t.Fatal(err)
	}
	// Run the kernel on that exact frame and verify its real peak LS usage
	// stays within the planned figure.
	res, err := RunDataParallelExtraction(KCC, 1, Workload{Images: 1, W: 352, H: 96, Seed: 3}, Optimized, testMachineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matches {
		t.Error("kernel output mismatch")
	}
	if fp.PeakBytes == 0 {
		t.Error("planner reported zero peak")
	}
}
