package marvel

import (
	"errors"
	"fmt"

	"cellport/internal/cell"
	"cellport/internal/core"
	"cellport/internal/fault"
	"cellport/internal/mainmem"
	"cellport/internal/sim"
	"cellport/internal/spe"
)

// Supervision parameters (used only when fault injection is armed; a
// fault-free run never consults them).
const (
	// DefaultWatchdog bounds how long the PPE waits for a kernel result
	// before declaring the SPE dead.
	DefaultWatchdog = 50 * sim.Millisecond
	// retryBackoff is the base delay before re-dispatching a failed
	// invocation; attempt k (1-based) waits backoffDelay(retryBackoff, k).
	retryBackoff = 100 * sim.Microsecond
	// maxRetries bounds same-invocation retries for retryable result codes.
	maxRetries = 3
	// maxBackoffShift caps the exponential backoff doubling: beyond 16
	// doublings the delay saturates (100 µs << 16 ≈ 6.5 s of virtual
	// time). Uncapped, a misconfigured retry bound past attempt 63 would
	// shift the base out of sim.Duration's int64 range entirely, producing
	// zero or negative sleeps.
	maxBackoffShift = 16
)

// backoffDelay returns the delay before retry number attempt (1-based:
// the first retry waits the base delay). Attempts below 1 are treated as
// the first retry, and the doubling saturates at maxBackoffShift so the
// delay can never overflow sim.Duration.
func backoffDelay(base sim.Duration, attempt int) sim.Duration {
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	return base << shift
}

// fallbackFunc executes one kernel invocation on the PPE against the
// wrapper in main memory — the graceful-degradation path when no healthy
// SPE remains. It must produce bit-identical outputs to the SPE kernel.
type fallbackFunc func(wrapper mainmem.Addr) uint32

// supervisor owns the self-healing runtime state of one ported run:
// which SPEs are occupied, which have been lost, and the recovery
// counters surfaced through the fault report.
type supervisor struct {
	ctx        *cell.Context
	inj        *fault.Injector
	rep        *fault.Report
	watchdog   sim.Duration
	backoff    sim.Duration
	maxRetries int
	// used marks SPEs occupied by a kernel (or dead); rehoming scans for
	// the first free healthy SPE, so spare SPEs form a redispatch pool.
	used []bool
	lost map[int]bool
}

// newSupervisor builds the runtime. inj may be nil: then every kern takes
// the unsupervised fast path and the run is byte-identical to one without
// a supervisor.
func newSupervisor(ctx *cell.Context, inj *fault.Injector, watchdog sim.Duration) *supervisor {
	if watchdog <= 0 {
		watchdog = DefaultWatchdog
	}
	s := &supervisor{
		ctx:        ctx,
		inj:        inj,
		watchdog:   watchdog,
		backoff:    retryBackoff,
		maxRetries: maxRetries,
		used:       make([]bool, ctx.Machine().Config().NumSPEs),
		lost:       map[int]bool{},
	}
	if inj != nil {
		s.rep = inj.Report()
	}
	return s
}

func (s *supervisor) speFailed(i int) bool { return s.ctx.Machine().SPE(i).Failed() }

// reserve marks SPEs claimed by the placement plan before any kernel is
// opened, so a crash discovered during placement cannot rehome an early
// kernel onto an SPE a later kernel is about to be loaded on. Only SPEs
// outside the reserved set form the redispatch pool.
func (s *supervisor) reserve(ids ...int) {
	for _, i := range ids {
		if i >= 0 && i < len(s.used) {
			s.used[i] = true
		}
	}
}

// failSPE declares SPE i dead: the running program is killed and its DMA
// aborted, so a hung invocation cannot later complete and double-deliver.
func (s *supervisor) failSPE(i int, reason string) {
	if sp := s.ctx.Machine().SPE(i); !sp.Failed() {
		sp.Fail(reason)
	}
	s.noteLost(i)
}

func (s *supervisor) noteLost(i int) {
	if s.lost[i] {
		return
	}
	s.lost[i] = true
	if s.rep != nil {
		s.rep.SPEsLost = append(s.rep.SPEsLost, i)
	}
}

// kern is a supervised kernel endpoint: a core.Interface plus the state
// needed to retry, re-dispatch to a surviving SPE, or degrade to PPE
// execution. With a nil injector every method delegates straight to the
// interface, leaving the fault-free event stream untouched.
type kern struct {
	sup      *supervisor
	spec     core.KernelSpec
	iface    *core.Interface // nil once no SPE hosts the kernel
	fallback fallbackFunc
	ppeOnly  bool // no healthy SPE remains: run invocations on the PPE

	// In-flight invocation state (supervised mode only).
	op       core.Opcode
	addr     mainmem.Addr
	attempts int
	pending  bool
	done     bool // completed via PPE fallback; code holds the result
	code     uint32
}

// open loads a kernel on its planned SPE under supervision. If the SPE
// has already crashed, the kernel is rehomed immediately (or marked
// PPE-only when no spare remains).
func (s *supervisor) open(speID int, spec core.KernelSpec, fb fallbackFunc) (*kern, error) {
	k := &kern{sup: s, spec: spec, fallback: fb}
	iface, err := core.Open(s.ctx, speID, spec)
	if err != nil {
		if s.inj != nil && errors.Is(err, spe.ErrSPECrashed) {
			s.used[speID] = true // dead slot stays occupied
			s.noteLost(speID)
			if err := k.rehome(); err != nil {
				return nil, err
			}
			return k, nil
		}
		return nil, err
	}
	s.used[speID] = true
	k.iface = iface
	return k, nil
}

// Name returns the kernel name.
func (k *kern) Name() string { return k.spec.Name }

// rehome moves the kernel to the first free healthy SPE; with none left
// it degrades the kernel to PPE-only execution.
func (k *kern) rehome() error {
	s := k.sup
	for i := range s.used {
		if s.used[i] || s.speFailed(i) {
			continue
		}
		iface, err := core.Open(s.ctx, i, k.spec)
		if err != nil {
			if errors.Is(err, spe.ErrSPECrashed) {
				s.used[i] = true
				s.noteLost(i)
				continue
			}
			return err
		}
		s.used[i] = true
		k.iface = iface
		if s.rep != nil {
			s.rep.Redispatches++
		}
		return nil
	}
	k.iface = nil
	k.ppeOnly = true
	return nil
}

// dispatch issues the stored invocation to a healthy SPE, rehoming or
// falling back as needed.
func (k *kern) dispatch() error {
	for {
		if k.iface == nil && !k.ppeOnly {
			if err := k.rehome(); err != nil {
				return err
			}
		}
		if k.iface == nil {
			k.runFallback()
			return nil
		}
		if k.sup.speFailed(k.iface.SPE()) {
			k.sup.noteLost(k.iface.SPE())
			k.iface.Abandon()
			k.iface = nil
			continue
		}
		return k.iface.Send(k.op, k.addr)
	}
}

// runFallback executes the invocation on the PPE (graceful degradation),
// charging the time to the degraded-mode accounting.
func (k *kern) runFallback() {
	s := k.sup
	if s.rep != nil {
		s.rep.Fallbacks++
	}
	start := s.ctx.Now()
	k.code = k.fallback(k.addr)
	if s.rep != nil {
		s.rep.DegradedTime += s.ctx.Now().Sub(start)
	}
	k.done = true
}

// Send issues a kernel invocation without waiting (Interface.Send analog).
func (k *kern) Send(op core.Opcode, addr mainmem.Addr) error {
	if k.sup.inj == nil {
		return k.iface.Send(op, addr)
	}
	if k.pending {
		return fmt.Errorf("marvel: %s: Send while an invocation is in flight", k.spec.Name)
	}
	k.op, k.addr = op, addr
	k.attempts = 0
	k.pending = true
	k.done = false
	return k.dispatch()
}

// Wait collects the in-flight invocation's result under the supervision
// loop: watchdog timeouts kill the hosting SPE and re-dispatch, retryable
// result codes (kernel resource errors, DMA faults) retry with
// exponential backoff, and exhausted options degrade to the PPE.
func (k *kern) Wait() (uint32, error) {
	if k.sup.inj == nil {
		return k.iface.Wait()
	}
	if !k.pending {
		return 0, fmt.Errorf("marvel: %s: Wait with no invocation in flight", k.spec.Name)
	}
	s := k.sup
	for {
		if k.done {
			k.pending = false
			k.done = false
			return k.code, nil
		}
		result, ok, err := k.iface.WaitTimeout(s.watchdog)
		if err != nil {
			return result, err
		}
		if !ok {
			// Watchdog expired: the SPE is hung (crashed mid-invocation or
			// lost a DMA). Kill it first — a killed SPE can never deliver a
			// duplicate result after the invocation is re-dispatched.
			if s.rep != nil {
				s.rep.WatchdogTimeouts++
			}
			s.failSPE(k.iface.SPE(), "watchdog timeout")
			k.iface.Abandon()
			k.iface = nil
			if err := k.dispatch(); err != nil {
				return 0, err
			}
			continue
		}
		if result == resErr || result == core.ResultDMAFault {
			if k.attempts >= s.maxRetries {
				k.pending = false
				return result, nil
			}
			k.attempts++
			if s.rep != nil {
				s.rep.Retries++
			}
			d := backoffDelay(s.backoff, k.attempts)
			if s.rep != nil {
				s.rep.BackoffTime += d
			}
			s.ctx.Sleep(d)
			if err := k.dispatch(); err != nil {
				return 0, err
			}
			continue
		}
		k.pending = false
		return result, nil
	}
}

// SendAndWait is the supervised Listing-3 protocol.
func (k *kern) SendAndWait(op core.Opcode, addr mainmem.Addr) (uint32, error) {
	if err := k.Send(op, addr); err != nil {
		return 0, err
	}
	return k.Wait()
}

// Close tears the kernel down: drains any in-flight invocation, then
// sends OpExit — unless the hosting SPE is dead (or the kernel is
// PPE-only), in which case there is nothing to hand-shake with.
func (k *kern) Close() error {
	if k.sup.inj == nil {
		return k.iface.Close()
	}
	if k.pending {
		if _, err := k.Wait(); err != nil {
			return err
		}
	}
	if k.iface == nil {
		return nil
	}
	if k.sup.speFailed(k.iface.SPE()) {
		k.iface.Abandon()
		return nil
	}
	return k.iface.Close()
}
