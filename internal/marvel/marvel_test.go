package marvel

import (
	"math"
	"testing"

	"cellport/internal/cell"
	"cellport/internal/cost"
	"cellport/internal/profile"
	"cellport/internal/sim"
)

// small test workload: full-width frames keep DMA strides realistic but a
// reduced height keeps the correlogram cheap in wall time.
func testWorkload(n int) Workload {
	return Workload{Images: n, W: 352, H: 96, Seed: 99}
}

func testMachineConfig() *cell.Config {
	cfg := cell.DefaultConfig()
	cfg.MemorySize = 64 << 20
	return &cfg
}

func TestModelSetShapes(t *testing.T) {
	ms, err := NewModelSet(1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		n, dim int
		got    int
		gotDim int
	}{
		{NumSVCH, DimCH, len(ms.CH.SupportVectors), ms.CH.Dim()},
		{NumSVCC, DimCC, len(ms.CC.SupportVectors), ms.CC.Dim()},
		{NumSVEH, DimEH, len(ms.EH.SupportVectors), ms.EH.Dim()},
		{NumSVTX, DimTX, len(ms.TX.SupportVectors), ms.TX.Dim()},
	}
	for i, c := range cases {
		if c.got != c.n || c.gotDim != c.dim {
			t.Errorf("model %d: %dx%d, want %dx%d", i, c.got, c.gotDim, c.n, c.dim)
		}
	}
}

func TestReferenceCoverageMatchesPaper(t *testing.T) {
	// §5.2: per-image coverage CH 8%, CC 54%, TX 6%, EH 28%, CD 2% at the
	// paper's 352×240 frame size; image read ~2%; one-time overhead ~60%
	// of single-image total on the PPE.
	w := DefaultWorkload(1)
	ms, err := NewModelSet(w.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ref := RunReference(cost.NewPPE(), w, ms)
	cov := ref.KernelCoverage()
	want := map[KernelID]float64{KCH: 0.08, KCC: 0.54, KTX: 0.06, KEH: 0.28, KCD: 0.02}
	for id, target := range want {
		if got := cov[id]; math.Abs(got-target) > 0.02 {
			t.Errorf("%s coverage = %.3f, want %.2f±0.02", id, got, target)
		}
	}
	oneTimeFrac := ref.OneTime.Seconds() / ref.Total.Seconds()
	if oneTimeFrac < 0.53 || oneTimeFrac > 0.67 {
		t.Errorf("one-time fraction = %.2f, want ~0.60 (§5.2)", oneTimeFrac)
	}
	if pc := ref.ProcessingCoverage(); pc < 0.30 || pc > 0.45 {
		t.Errorf("processing coverage (1 image) = %.2f; with one-time overhead it should sit near 0.38", pc)
	}
}

func TestReferenceProcessingCoverageGrowsWithImages(t *testing.T) {
	// §5.2: extraction+detection is 87% of time for 1 image when the
	// one-time overhead is excluded, 96% for 50 images overall. We check
	// the trend with a smaller set (50 full-size images is wall-expensive).
	w := Workload{Images: 1, W: 352, H: 240, Seed: 5}
	ms, err := NewModelSet(w.Seed)
	if err != nil {
		t.Fatal(err)
	}
	one := RunReference(cost.NewPPE(), w, ms)
	w.Images = 8
	eight := RunReference(cost.NewPPE(), w, ms)
	if eight.ProcessingCoverage() <= one.ProcessingCoverage() {
		t.Errorf("coverage should grow with set size: 1->%.3f, 8->%.3f",
			one.ProcessingCoverage(), eight.ProcessingCoverage())
	}
	// Excluding one-time overhead, per-image processing is ~98%
	// extraction+detection (the §5.2 87% includes per-image preprocessing
	// within a run that also amortizes startup).
	var kernels sim.Duration
	for _, d := range one.KernelTime {
		kernels += d
	}
	frac := kernels.Seconds() / one.PerImage.Seconds()
	if frac < 0.93 || frac > 0.995 {
		t.Errorf("per-image kernel fraction = %.3f", frac)
	}
}

func TestReferenceHostRatios(t *testing.T) {
	// §5.2: kernels run 2.5× slower on the PPE than the Laptop, 3.2×
	// slower than the Desktop; preprocessing only ~1.2×/1.4×.
	w := testWorkload(2)
	ms, err := NewModelSet(w.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ppe := RunReference(cost.NewPPE(), w, ms)
	desk := RunReference(cost.NewDesktop(), w, ms)
	lap := RunReference(cost.NewLaptop(), w, ms)
	for _, id := range KernelIDs {
		rd := ppe.KernelTime[id].Seconds() / desk.KernelTime[id].Seconds()
		rl := ppe.KernelTime[id].Seconds() / lap.KernelTime[id].Seconds()
		if math.Abs(rd-3.2) > 0.25 {
			t.Errorf("%s PPE/Desktop = %.2f, want ~3.2", id, rd)
		}
		if math.Abs(rl-2.5) > 0.25 {
			t.Errorf("%s PPE/Laptop = %.2f, want ~2.5", id, rl)
		}
	}
	// Preprocessing ratios depend on the decode/IO balance, i.e. on the
	// paper's full frame size.
	wf := DefaultWorkload(1)
	ppeF := RunReference(cost.NewPPE(), wf, ms)
	deskF := RunReference(cost.NewDesktop(), wf, ms)
	lapF := RunReference(cost.NewLaptop(), wf, ms)
	preL := ppeF.PreprocessPerImage.Seconds() / lapF.PreprocessPerImage.Seconds()
	preD := ppeF.PreprocessPerImage.Seconds() / deskF.PreprocessPerImage.Seconds()
	if preL < 1.05 || preL > 1.45 {
		t.Errorf("preprocess PPE/Laptop = %.2f, want ~1.2", preL)
	}
	if preD < 1.2 || preD > 1.8 {
		t.Errorf("preprocess PPE/Desktop = %.2f, want ~1.4", preD)
	}
}

func TestReferenceDeterministic(t *testing.T) {
	w := testWorkload(1)
	ms, err := NewModelSet(w.Seed)
	if err != nil {
		t.Fatal(err)
	}
	a := RunReference(cost.NewPPE(), w, ms)
	b := RunReference(cost.NewPPE(), w, ms)
	if a.Total != b.Total {
		t.Fatalf("reference totals differ: %v vs %v", a.Total, b.Total)
	}
	for i := range a.Images {
		if a.Images[i].Scores != b.Images[i].Scores {
			t.Fatal("reference scores differ across runs")
		}
	}
}

func TestProfilerSeesKernelClasses(t *testing.T) {
	// Enough images that per-image kernels dominate the one-time model
	// load in the flat profile, as in the paper's 50-image profiling run.
	w := testWorkload(10)
	ms, err := NewModelSet(w.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ref := RunReference(cost.NewPPE(), w, ms)
	cands := ref.Profile.IdentifyKernels(profile.IdentifyOptions{MinCoreCoverage: 0.01, MaxCandidates: 8})
	classes := map[string]bool{}
	for _, c := range cands {
		classes[c.Class] = true
	}
	for _, want := range []string{"ColorHistogram", "ColorCorrelogram", "Texture", "EdgeHistogram", "ConceptDetect"} {
		if !classes[want] {
			t.Errorf("profiler did not propose %s as a kernel (got %v)", want, cands)
		}
	}
	if cands[0].Class != "ColorCorrelogram" {
		t.Errorf("top candidate = %s, want ColorCorrelogram (54%% coverage)", cands[0].Class)
	}
}

func TestPortedMatchesReferenceExactly(t *testing.T) {
	// The paper's functional invariant: the port must keep the
	// application's outputs identical at every step.
	for _, variant := range []Variant{Naive, Optimized} {
		for _, scen := range []Scenario{SingleSPE, MultiSPE, MultiSPE2} {
			res, err := RunPorted(PortedConfig{
				Workload:      testWorkload(2),
				Scenario:      scen,
				Variant:       variant,
				Validate:      true,
				MachineConfig: testMachineConfig(),
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", variant, scen, err)
			}
			if res.ValidationErrors != 0 {
				t.Errorf("%v/%v: %d validation mismatches", variant, scen, res.ValidationErrors)
			}
		}
	}
}

func TestScenarioOrdering(t *testing.T) {
	// Parallel scheduling must not be slower than sequential, and the
	// replicated-detector scenario must be at least as fast as the shared
	// detector (§5.5 finds the difference very small).
	run := func(s Scenario) sim.Duration {
		res, err := RunPorted(PortedConfig{
			Workload:      testWorkload(2),
			Scenario:      s,
			Variant:       Optimized,
			MachineConfig: testMachineConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.PerImage
	}
	single, multi, multi2 := run(SingleSPE), run(MultiSPE), run(MultiSPE2)
	if multi >= single {
		t.Errorf("multi-SPE (%v) not faster than single-SPE (%v)", multi, single)
	}
	if multi2 > multi {
		t.Errorf("multi-SPE2 (%v) slower than multi-SPE (%v)", multi2, multi)
	}
	// The paper's observation: scenario 3 barely improves on scenario 2.
	if delta := (multi.Seconds() - multi2.Seconds()) / multi.Seconds(); delta > 0.15 {
		t.Errorf("multi2 improvement %.1f%% implausibly large", delta*100)
	}
}

func TestOptimizedBeatsNaive(t *testing.T) {
	run := func(v Variant) sim.Duration {
		res, err := RunPorted(PortedConfig{
			Workload:      testWorkload(1),
			Scenario:      SingleSPE,
			Variant:       v,
			MachineConfig: testMachineConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.PerImage
	}
	naive, opt := run(Naive), run(Optimized)
	if opt >= naive {
		t.Fatalf("optimized (%v) not faster than naive (%v)", opt, naive)
	}
	// The naive correlogram alone runs slower than the PPE (0.43×), so
	// the gap must be large.
	if ratio := naive.Seconds() / opt.Seconds(); ratio < 5 {
		t.Errorf("naive/optimized ratio = %.1f, expected >5", ratio)
	}
}

func TestPortedDeterministic(t *testing.T) {
	run := func() *PortedResult {
		res, err := RunPorted(PortedConfig{
			Workload:      testWorkload(1),
			Scenario:      MultiSPE,
			Variant:       Optimized,
			MachineConfig: testMachineConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Total != b.Total || a.PerImage != b.PerImage {
		t.Fatalf("ported runs differ: %v/%v vs %v/%v", a.Total, a.PerImage, b.Total, b.PerImage)
	}
}

func TestSVChunkRowsAlignment(t *testing.T) {
	for _, dim := range []int{DimCH, DimEH, DimTX, 7, 33, 100} {
		k := svChunkRows(dim)
		if k < 1 {
			t.Fatalf("dim %d: k=%d", dim, k)
		}
		bytes := k * dim * 4
		if bytes > 16384 {
			t.Errorf("dim %d: chunk %d bytes exceeds DMA limit", dim, bytes)
		}
		if k > 1 && bytes%16 != 0 {
			t.Errorf("dim %d: chunk %d bytes not quadword-aligned", dim, bytes)
		}
	}
}

func TestPipelinedScenario(t *testing.T) {
	// The extension schedule must (1) keep outputs exact, (2) beat every
	// paper scenario per image once preprocessing overlaps, and (3) be
	// bounded below by the preprocessing time itself.
	w := testWorkload(4)
	res, err := RunPorted(PortedConfig{
		Workload:      w,
		Scenario:      Pipelined,
		Variant:       Optimized,
		Validate:      true,
		MachineConfig: testMachineConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ValidationErrors != 0 {
		t.Fatalf("pipelined validation: %d mismatches", res.ValidationErrors)
	}
	m2, err := RunPorted(PortedConfig{
		Workload:      w,
		Scenario:      MultiSPE2,
		Variant:       Optimized,
		MachineConfig: testMachineConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerImage >= m2.PerImage {
		t.Errorf("pipelined per-image %v not faster than multi-spe2 %v", res.PerImage, m2.PerImage)
	}
	ms, err := NewModelSet(w.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ref := RunReference(cost.NewPPE(), w, ms)
	// Lower bound: cannot beat pure preprocessing throughput.
	if res.PerImage < ref.PreprocessPerImage*9/10 {
		t.Errorf("pipelined per-image %v below the preprocessing bound %v", res.PerImage, ref.PreprocessPerImage)
	}
}

func TestPipelinedSingleImage(t *testing.T) {
	// Degenerate pipeline (nothing to overlap) must still be correct.
	res, err := RunPorted(PortedConfig{
		Workload:      testWorkload(1),
		Scenario:      Pipelined,
		Variant:       Optimized,
		Validate:      true,
		MachineConfig: testMachineConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ValidationErrors != 0 {
		t.Fatalf("validation: %d mismatches", res.ValidationErrors)
	}
}
