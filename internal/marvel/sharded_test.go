package marvel

import (
	"reflect"
	"testing"

	"cellport/internal/fault"
	"cellport/internal/sim"
)

// shardedGrid is the Fig7-style scenario grid plus a seeded-fault
// supervised run: the configurations whose results must be reproduced
// byte-for-byte when each run is hosted on its own wheel of a
// ShardedEngine instead of a private sequential engine.
func shardedGrid() []PortedConfig {
	arts := NewArtifactCache()
	var grid []PortedConfig
	for _, scen := range []Scenario{SingleSPE, MultiSPE, MultiSPE2} {
		for _, n := range []int{1, 2} {
			grid = append(grid, PortedConfig{
				Workload:      testWorkload(n),
				Scenario:      scen,
				Variant:       Optimized,
				Validate:      true,
				MachineConfig: testMachineConfig(),
				Artifacts:     arts,
			})
		}
	}
	faulted := PortedConfig{
		Workload:      testWorkload(2),
		Scenario:      MultiSPE,
		Variant:       Optimized,
		Validate:      true,
		MachineConfig: testMachineConfig(),
		Artifacts:     arts,
		Faults:        fault.Seeded(7, testMachineConfig().NumSPEs),
	}
	return append(grid, faulted)
}

// runGridSharded hosts every grid entry on its own wheel of one
// ShardedEngine, drains them with the given worker count, and harvests
// each result.
func runGridSharded(t *testing.T, grid []PortedConfig, workers int) []*PortedResult {
	t.Helper()
	sh := sim.NewSharded(len(grid), workers)
	runs := make([]*PortedRun, len(grid))
	for i, cfg := range grid {
		mcfg := *cfg.MachineConfig
		mcfg.Engine = sh.Wheel(i)
		cfg.MachineConfig = &mcfg
		r, err := StartPorted(cfg)
		if err != nil {
			t.Fatalf("StartPorted(%v): %v", cfg.Scenario, err)
		}
		runs[i] = r
	}
	if err := sh.Drain(); err != nil {
		t.Fatalf("Drain (workers=%d): %v", workers, err)
	}
	results := make([]*PortedResult, len(grid))
	for i, r := range runs {
		res, err := r.Finish(nil)
		if err != nil {
			t.Fatalf("Finish(%v): %v", grid[i].Scenario, err)
		}
		results[i] = res
	}
	return results
}

// TestShardedGridMatchesSequential is the marvel-level determinism
// invariant for the sharded engine: the full scenario grid — including a
// supervised run with seeded faults — produces deep-equal results
// (outputs, virtual times, fault reports, EventCount fingerprints) whether
// each run owns a private sequential engine or shares a ShardedEngine at
// any worker count.
func TestShardedGridMatchesSequential(t *testing.T) {
	grid := shardedGrid()
	seq := make([]*PortedResult, len(grid))
	for i, cfg := range grid {
		seq[i] = mustRun(t, cfg)
	}
	for _, workers := range []int{1, 4} {
		got := runGridSharded(t, grid, workers)
		for i := range grid {
			if got[i].EventCount != seq[i].EventCount {
				t.Errorf("workers=%d %v/n=%d: EventCount %d != sequential %d",
					workers, grid[i].Scenario, grid[i].Workload.Images,
					got[i].EventCount, seq[i].EventCount)
			}
			if !reflect.DeepEqual(got[i], seq[i]) {
				t.Errorf("workers=%d %v/n=%d: sharded result diverged from sequential",
					workers, grid[i].Scenario, grid[i].Workload.Images)
			}
		}
	}
}

// TestStartPortedFinishMatchesRunPorted pins the partition refactor: for a
// single run, StartPorted + Engine().Run() + Finish is byte-identical to
// the one-shot RunPorted — same totals, kernels, outputs, fingerprint.
func TestStartPortedFinishMatchesRunPorted(t *testing.T) {
	cfg := PortedConfig{
		Workload:      testWorkload(2),
		Scenario:      MultiSPE2,
		Variant:       Optimized,
		Validate:      true,
		MachineConfig: testMachineConfig(),
		NoCache:       true,
	}
	want := mustRun(t, cfg)
	r, err := StartPorted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Finish(r.Engine().Run())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("partitioned run diverged:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestStartPortedRejectsEmptyWorkload keeps the validation contract on the
// partitioned entry point.
func TestStartPortedRejectsEmptyWorkload(t *testing.T) {
	_, err := StartPorted(PortedConfig{Scenario: SingleSPE})
	if err == nil {
		t.Fatal("expected ErrEmptyWorkload")
	}
}
