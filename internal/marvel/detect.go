package marvel

import (
	"fmt"

	"cellport/internal/core"
	"cellport/internal/cost"
	"cellport/internal/ls"
	"cellport/internal/mainmem"
	"cellport/internal/spe"
	"cellport/internal/svm"
)

// PlacedModel is an encoded SVM laid out in simulated main memory for SPE
// streaming:
//
//	hdr    16 B              [numSV f32][dim f32][bias f32][gamma f32]
//	coeffs pad16(numSV*4) B  float32 coefficients
//	svs    numSV*dim*4 B     support vectors, row-major (+16 B tail pad
//	                         so the last chunk's padded DMA stays in
//	                         bounds)
type PlacedModel struct {
	EA       mainmem.Addr
	NumSV    int
	Dim      int
	svOff    uint32
	total    uint32
	refModel *svm.Model
}

// PlaceModel writes the encoded model into main memory.
func PlaceModel(mem *mainmem.Memory, m *svm.Model) (*PlacedModel, error) {
	enc, err := svm.Encode(m)
	if err != nil {
		return nil, err
	}
	n, dim := len(m.SupportVectors), m.Dim()
	coeffBytes := pad16(uint32(n) * 4)
	svBytes := uint32(n*dim) * 4
	total := hdrBytes + coeffBytes + svBytes + 16
	ea, err := mem.Alloc(total, mainmem.AlignCacheLine)
	if err != nil {
		return nil, fmt.Errorf("marvel: placing model %q: %w", m.Concept, err)
	}
	core.PutFloat32s(mem.Bytes(ea, hdrBytes), enc[:4])
	core.PutFloat32s(mem.Bytes(ea+hdrBytes, uint32(n)*4), enc[4:4+n])
	core.PutFloat32s(mem.Bytes(ea+hdrBytes+mainmem.Addr(coeffBytes), svBytes), enc[4+n:])
	return &PlacedModel{
		EA: ea, NumSV: n, Dim: dim,
		svOff: hdrBytes + coeffBytes, total: total, refModel: m,
	}, nil
}

// Bytes returns the placed size (for PPE MemStream accounting).
func (p *PlacedModel) Bytes() uint32 { return p.total }

// Free releases the model block.
func (p *PlacedModel) Free(mem *mainmem.Memory) error { return mem.Free(p.EA) }

// svChunkRows returns how many support-vector rows one DMA chunk holds:
// the largest count whose byte size is <=16 KB and a multiple of 16 (so
// successive chunk EAs stay quadword-aligned).
func svChunkRows(dim int) int {
	rowBytes := dim * 4
	k := 16384 / rowBytes
	for k > 1 && (k*rowBytes)%16 != 0 {
		k--
	}
	if k < 1 {
		k = 1
	}
	return k
}

// DetectKernelSpec builds the concept-detection SPE kernel: it DMAs the
// feature vector, then streams the model's coefficient block and support
// vectors from main memory (double-buffered in the optimized variant),
// evaluating the real SVM decision function exactly as the reference
// does.
func DetectKernelSpec(v Variant) core.KernelSpec {
	cal := Cal(KCD)
	fn := func(ctx *spe.Context, wrapper mainmem.Addr) uint32 {
		st := ctx.Store()
		hdrLS, err := st.Alloc(hdrBytes, 16)
		if err != nil {
			return resErr
		}
		if err := ctx.Get(hdrLS, wrapper, hdrBytes, 0); err != nil {
			return resErr
		}
		ctx.WaitTag(0)
		hdr := core.GetUint32s(st.Bytes(hdrLS, hdrBytes))
		dim, numSV := int(hdr[0]), int(hdr[1])
		modelEA := mainmem.Addr(hdr[2])
		if dim <= 0 || numSV <= 0 {
			return resErr
		}

		// Feature vector.
		featBytes := pad16(uint32(dim) * 4)
		featLS, err := st.Alloc(featBytes, 16)
		if err != nil {
			return resErr
		}
		if err := ctx.Get(featLS, wrapper+mainmem.Addr(detectFeatureOff()), featBytes, 0); err != nil {
			return resErr
		}
		// Model header + coefficients (small; fetched together with the
		// feature under tag 0).
		mHdrLS, err := st.Alloc(hdrBytes, 16)
		if err != nil {
			return resErr
		}
		coeffBytes := pad16(uint32(numSV) * 4)
		coeffLS, err := st.Alloc(coeffBytes, 16)
		if err != nil {
			return resErr
		}
		if err := ctx.Get(mHdrLS, modelEA, hdrBytes, 0); err != nil {
			return resErr
		}
		if err := ctx.Get(coeffLS, modelEA+hdrBytes, coeffBytes, 0); err != nil {
			return resErr
		}
		ctx.WaitTag(0)

		mh := core.GetFloat32s(st.Bytes(mHdrLS, hdrBytes))
		if int(mh[0]) != numSV || int(mh[1]) != dim {
			return resErr
		}
		bias, gamma := float64(mh[2]), float64(mh[3])
		var kern svm.Kernel = svm.Linear{}
		if gamma > 0 {
			kern = svm.RBF{Gamma: gamma}
		}
		feature := core.GetFloat32s(st.Bytes(featLS, uint32(dim)*4))
		coeffs := core.GetFloat32s(st.Bytes(coeffLS, uint32(numSV)*4))

		// Stream support vectors in chunks.
		chunkRows := svChunkRows(dim)
		rowBytes := dim * 4
		chunkBytes := uint32(chunkRows * rowBytes)
		buffers := 1
		if v == Optimized {
			buffers = 2
		}
		var bufs [2]ls.Addr
		for i := 0; i < buffers; i++ {
			if bufs[i], err = st.Alloc(pad16(chunkBytes), 16); err != nil {
				return resErr
			}
		}
		nChunks := (numSV + chunkRows - 1) / chunkRows
		svEA := modelEA + hdrBytes + mainmem.Addr(coeffBytes)
		chunkOf := func(i int) (ea mainmem.Addr, bytes uint32, rows int) {
			start := i * chunkRows
			rows = chunkRows
			if start+rows > numSV {
				rows = numSV - start
			}
			return svEA + mainmem.Addr(start*rowBytes), pad16(uint32(rows * rowBytes)), rows
		}
		fetch := func(i, tag int) error {
			ea, bytes, _ := chunkOf(i)
			return ctx.Get(bufs[tag], ea, bytes, tag)
		}
		sum := bias
		process := func(i, tag int) {
			_, _, rows := chunkOf(i)
			data := core.GetFloat32s(st.Bytes(bufs[tag], uint32(rows*rowBytes)))
			base := i * chunkRows
			for r := 0; r < rows; r++ {
				sv := data[r*dim : (r+1)*dim]
				sum += float64(coeffs[base+r]) * kern.Eval(sv, feature)
			}
			nomOps := detectNomOps(rows, dim)
			switch v {
			case Optimized:
				ctx.ComputeSIMD(nomOps, cost.Bits32, cal.OptEff, "detect")
			default:
				ctx.ComputeCycles(nomOps/(ctx.Model().ScalarIPC*cal.NaiveEff), "detect")
				ctx.ComputeBranches(float64(rows)*3, NaiveMispredict, "detect")
			}
			ctx.ComputeCycles(cal.SliceOverheadCycles, "detect-overhead")
		}
		if v == Optimized {
			if err := fetch(0, 0); err != nil {
				return resErr
			}
			for i := 0; i < nChunks; i++ {
				cur := i % 2
				if i+1 < nChunks {
					if err := fetch(i+1, 1-cur); err != nil {
						return resErr
					}
				}
				ctx.WaitTag(cur)
				process(i, cur)
			}
		} else {
			for i := 0; i < nChunks; i++ {
				if err := fetch(i, 0); err != nil {
					return resErr
				}
				ctx.WaitTag(0)
				process(i, 0)
			}
		}

		// Report the decision: score field + classification bit.
		scoreLS, err := st.Alloc(scoreBytes, 16)
		if err != nil {
			return resErr
		}
		sb := st.Bytes(scoreLS, scoreBytes)
		core.PutFloat32s(sb[:4], []float32{float32(sum)})
		class := uint32(0)
		if sum > 0 {
			class = 1
		}
		core.PutUint32s(sb[4:8], []uint32{class})
		if err := ctx.Put(scoreLS, wrapper+mainmem.Addr(detectScoreOff(dim)), scoreBytes, 1); err != nil {
			return resErr
		}
		ctx.WaitTag(1)
		return resOK
	}
	return core.KernelSpec{
		Name:      fmt.Sprintf("%s-%s", KCD, v),
		CodeBytes: cal.CodeBytes,
		Mode:      core.Polling,
		Functions: map[core.Opcode]core.KernelFunc{OpRun: fn},
	}
}
