package marvel

import (
	"testing"

	"cellport/internal/sim"
)

// TestBackoffDelayTable pins the retry-backoff schedule over attempt
// indices: 1-based numbering (the first retry waits the base delay, not
// zero), out-of-range attempts clamp to the first retry, and the doubling
// saturates at maxBackoffShift so no attempt count can shift the base out
// of sim.Duration's range.
func TestBackoffDelayTable(t *testing.T) {
	const base = 100 * sim.Microsecond
	cases := []struct {
		attempt int
		want    sim.Duration
	}{
		{attempt: -1, want: base}, // defensive clamp
		{attempt: 0, want: base},  // defensive clamp
		{attempt: 1, want: base},  // first retry: base, not base<<-1 or zero
		{attempt: 2, want: base << 1},
		{attempt: 3, want: base << 2},
		{attempt: maxBackoffShift + 1, want: base << maxBackoffShift},
		{attempt: maxBackoffShift + 2, want: base << maxBackoffShift}, // saturated
		{attempt: 64, want: base << maxBackoffShift},                  // would overflow uncapped
		{attempt: 1 << 20, want: base << maxBackoffShift},
	}
	for _, tc := range cases {
		got := backoffDelay(base, tc.attempt)
		if got != tc.want {
			t.Errorf("backoffDelay(base, %d) = %v, want %v", tc.attempt, got, tc.want)
		}
		if got <= 0 {
			t.Errorf("backoffDelay(base, %d) = %v: non-positive delay would skip the sleep", tc.attempt, got)
		}
	}
}
