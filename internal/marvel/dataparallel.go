package marvel

import (
	"fmt"

	"cellport/internal/cell"
	"cellport/internal/core"
	"cellport/internal/features"
	"cellport/internal/img"
	"cellport/internal/mainmem"
	"cellport/internal/sim"
)

// Data-parallel extraction: one kernel, one image, split by rows across
// several SPEs running the same kernel program, each invoked with
// OpRunPartial over its row band; the PPE merges the raw accumulators and
// finalizes. This is the data-parallelism layer §2 lists beyond the
// per-kernel task parallelism the paper evaluates, and the natural next
// optimization once the correlogram dominates the parallel schedule.

// DataParallelResult reports one data-parallel extraction measurement.
type DataParallelResult struct {
	Kernel  KernelID
	NSPEs   int
	Variant Variant
	// Time is the PPE-observed span from first Send to merged feature.
	Time sim.Duration
	// Feature is the merged, finalized vector.
	Feature []float32
	// Matches reports bit-equality with the whole-image reference.
	Matches bool
}

// rowGranularity returns the partition alignment a kernel needs (texture
// tiles anchor at multiples of 32 rows).
func rowGranularity(id KernelID) int {
	if id == KTX {
		return features.TexTile
	}
	return 1
}

// splitRows partitions h rows into n contiguous bands aligned to gran.
// Bands may be empty at the tail for degenerate n; empty bands are
// dropped.
func splitRows(h, n, gran int) [][2]int {
	per := (h + n - 1) / n
	per = (per + gran - 1) / gran * gran
	var out [][2]int
	for y := 0; y < h; y += per {
		y1 := y + per
		if y1 > h {
			y1 = h
		}
		out = append(out, [2]int{y, y1})
	}
	return out
}

// RunDataParallelExtraction runs kernel id over one image of workload w,
// split across nSPEs, and validates the merged feature against the
// whole-image reference computation.
func RunDataParallelExtraction(id KernelID, nSPEs int, w Workload, v Variant, mcfg *cell.Config) (*DataParallelResult, error) {
	if id == KCD {
		return nil, fmt.Errorf("marvel: concept detection is not row-parallel")
	}
	cfg := cell.DefaultConfig()
	if mcfg != nil {
		cfg = *mcfg
	}
	if nSPEs < 1 || nSPEs > cfg.NumSPEs {
		return nil, fmt.Errorf("marvel: nSPEs %d out of range [1,%d]", nSPEs, cfg.NumSPEs)
	}
	machine := cell.New(cfg)
	defer machine.Release()
	image := img.Synthesize(w.Seed, w.W, w.H)
	ref := referenceFeature(id, image)

	res := &DataParallelResult{Kernel: id, NSPEs: nSPEs, Variant: v}
	var runErr error
	_, err := machine.RunMain("dp-extract", func(ctx *cell.Context) {
		runErr = func() error {
			mem := ctx.Memory()
			stride := img.StrideFor(w.W)
			pixBytes := uint32(stride * w.H)
			pixEA, err := mem.Alloc(pixBytes, mainmem.AlignCacheLine)
			if err != nil {
				return err
			}
			dst := mem.Bytes(pixEA, pixBytes)
			for y := 0; y < w.H; y++ {
				copy(dst[y*stride:], image.Row(y))
			}

			bands := splitRows(w.H, nSPEs, rowGranularity(id))
			ifaces := make([]*core.Interface, len(bands))
			wraps := make([]*core.Wrapper, len(bands))
			for i, b := range bands {
				iface, err := core.Open(ctx, i, ExtractKernelSpec(id, v))
				if err != nil {
					return err
				}
				ifaces[i] = iface
				wr, err := core.NewWrapper(mem, extractFields(id)...)
				if err != nil {
					return err
				}
				fillExtractHeader(wr, w.W, w.H, stride, pixEA, b[0], b[1])
				wraps[i] = wr
			}

			start := ctx.Now()
			for i := range bands {
				if err := ifaces[i].Send(OpRunPartial, wraps[i].Addr()); err != nil {
					return err
				}
			}
			merged := kernelGeom(id).newAcc()
			for i := range bands {
				code, err := ifaces[i].Wait()
				if err != nil {
					return err
				}
				if code != resOK {
					return fmt.Errorf("marvel: partial %s[%d] returned %#x", id, i, code)
				}
				words := core.GetUint32s(wraps[i].Bytes("out"))[:rawWords(id)]
				if err := mergeRaw(id, words, merged); err != nil {
					return err
				}
				// Merge cost on the PPE.
				ctx.ComputeScalar(float64(rawWords(id))*4, "merge-raw")
			}
			res.Feature = merged.finalize()
			res.Time = ctx.Now().Sub(start)

			for i := range bands {
				if err := ifaces[i].Close(); err != nil {
					return err
				}
				if err := wraps[i].Free(); err != nil {
					return err
				}
			}
			if err := mem.Free(pixEA); err != nil {
				return err
			}
			return mem.CheckLeaks()
		}()
	})
	if err != nil {
		return nil, fmt.Errorf("marvel: simulation: %w", err)
	}
	if runErr != nil {
		return nil, runErr
	}
	res.Matches = len(res.Feature) == len(ref)
	if res.Matches {
		for i := range ref {
			if res.Feature[i] != ref[i] {
				res.Matches = false
				break
			}
		}
	}
	return res, nil
}

// referenceFeature computes the whole-image reference vector for a kernel.
func referenceFeature(id KernelID, im *img.RGB) []float32 {
	switch id {
	case KCH:
		return features.ColorHistogram(im)
	case KCC:
		return features.ColorCorrelogram(im)
	case KEH:
		return features.EdgeHistogram(im)
	case KTX:
		return features.Texture(im)
	default:
		panic("marvel: no reference feature for " + id.String())
	}
}
