package marvel

import (
	"fmt"

	"cellport/internal/core"
	"cellport/internal/features"
	"cellport/internal/img"
	"cellport/internal/ls"
	"cellport/internal/mainmem"
	"cellport/internal/mfc"
	"cellport/internal/spe"
)

// Variant selects the kernel implementation stage of §5.3: the first
// functional port, or the fully optimized version behind the same
// SPEInterface (the modularity the strategy is designed around).
type Variant int

// Kernel variants.
const (
	// Naive is the first functional port: single-buffered DMA, mostly
	// scalar code, data-dependent branches with static prediction.
	Naive Variant = iota
	// Optimized applies the §4.1 optimizations: DMA multibuffering and
	// lists, SIMDization at the kernel's natural width, branch removal.
	Optimized
)

func (v Variant) String() string {
	if v == Optimized {
		return "optimized"
	}
	return "naive"
}

// Dispatcher opcodes (SPU_Run_* in Listing 1).
const (
	// OpRun processes the header's row range and writes the finalized
	// feature vector (callers pass the full image range).
	OpRun core.Opcode = 1
	// OpRunPartial processes the header's row range and writes the raw
	// accumulator words instead, for PPE-side merging across SPEs
	// (data-parallel extraction).
	OpRunPartial core.Opcode = 2
)

// Kernel result codes (mailbox words).
const (
	resOK  uint32 = 0
	resErr uint32 = 0xE0000001
)

// sliceAcc is the incremental computation every extraction kernel runs
// over DMA'd bands.
type sliceAcc interface {
	process(band *img.RGB, py0, py1 int)
	finalize() []float32
}

type histAcc struct{ a features.HistAcc }

func (h *histAcc) process(b *img.RGB, y0, y1 int) { h.a.AccumulateHistogram(b, y0, y1) }
func (h *histAcc) finalize() []float32            { return h.a.Finalize() }

type corrAcc struct{ a features.CorrAcc }

func (c *corrAcc) process(b *img.RGB, y0, y1 int) { c.a.AccumulateCorrelogram(b, y0, y1) }
func (c *corrAcc) finalize() []float32            { return c.a.Finalize() }

type edgeAcc struct{ a features.EdgeAcc }

func (e *edgeAcc) process(b *img.RGB, y0, y1 int) { e.a.AccumulateEdge(b, y0, y1) }
func (e *edgeAcc) finalize() []float32            { return e.a.Finalize() }

type texAcc struct{ a features.TexAcc }

func (t *texAcc) process(b *img.RGB, y0, y1 int) { t.a.AccumulateTexture(b, y0, y1) }
func (t *texAcc) finalize() []float32            { return t.a.Finalize() }

// geom describes an extraction kernel's slicing needs.
type geom struct {
	halo        int // operator radius in rows
	granularity int // payload row multiple (texture tiles)
	scratchRows int // LS scratch bytes per buffered row, ×W (bins, gray)
	newAcc      func() sliceAcc
}

func kernelGeom(id KernelID) geom {
	switch id {
	case KCH:
		return geom{halo: 0, granularity: 1, scratchRows: 0, newAcc: func() sliceAcc { return &histAcc{} }}
	case KCC:
		return geom{halo: features.CorrRadius, granularity: 1, scratchRows: 1, newAcc: func() sliceAcc { return &corrAcc{} }}
	case KEH:
		return geom{halo: features.EdgeRadius, granularity: 1, scratchRows: 1, newAcc: func() sliceAcc { return &edgeAcc{} }}
	case KTX:
		return geom{halo: 0, granularity: features.TexTile, scratchRows: 1, newAcc: func() sliceAcc { return &texAcc{} }}
	default:
		panic("marvel: no geometry for " + id.String())
	}
}

// chargeExtract charges the SPU time for processing `pixels` payload
// pixels under the given variant's calibration.
func chargeExtract(ctx *spe.Context, id KernelID, v Variant, pixels float64) {
	cal := Cal(id)
	label := id.String()
	switch v {
	case Optimized:
		// Branch stalls are gone: removed, hinted, or folded into SIMD
		// selects (§4.1); their residue is inside OptEff.
		ctx.ComputeSIMD(cal.NomOpsPerPixel*pixels, cal.OptWidth, cal.OptEff, label)
	default:
		if cal.NaiveSIMD {
			ctx.ComputeSIMD(cal.NomOpsPerPixel*pixels, cal.NaiveWidth, cal.NaiveEff, label)
		} else {
			ctx.ComputeCycles(cal.NomOpsPerPixel*pixels/(ctx.Model().ScalarIPC*cal.NaiveEff), label)
			ctx.ComputeBranches(cal.NomBranchesPerPixel*pixels, NaiveMispredict, label)
		}
	}
	ctx.ComputeCycles(cal.SliceOverheadCycles, label+"-overhead")
}

// dmaRows transfers `rows` consecutive image rows (rows*stride bytes,
// contiguous in main memory) into the LS, split into <=16 KB commands. The
// optimized variant batches them as one DMA list (one queue slot); the
// naive variant issues individual gets.
func dmaRows(ctx *spe.Context, lsa ls.Addr, ea mainmem.Addr, rows, stride int, tag int, v Variant) error {
	if stride > mfc.MaxTransfer {
		return fmt.Errorf("marvel: row stride %d exceeds one DMA command", stride)
	}
	rowsPerCmd := mfc.MaxTransfer / stride
	total := rows
	if v == Optimized {
		var list []mfc.ListElement
		off := 0
		for total > 0 {
			n := rowsPerCmd
			if n > total {
				n = total
			}
			list = append(list, mfc.ListElement{EA: ea + mainmem.Addr(off), Size: uint32(n * stride)})
			off += n * stride
			total -= n
		}
		return ctx.GetList(lsa, list, tag)
	}
	off := 0
	for total > 0 {
		n := rowsPerCmd
		if n > total {
			n = total
		}
		if err := ctx.Get(lsa+ls.Addr(off), ea+mainmem.Addr(off), uint32(n*stride), tag); err != nil {
			return err
		}
		off += n * stride
		total -= n
	}
	return nil
}

// planRange plans halo'd slices for payload rows [y0, y1) of an h-row
// image: like img.PlanSlices over the partition, but with halos clamped
// at the *image* boundary, so a window operator behaves identically
// whether the partition covers the whole image or one band of a
// data-parallel split.
func planRange(y0, y1, h, maxRows, halo, granularity int) ([]img.Slice, error) {
	if y0 < 0 || y1 > h || y0 >= y1 {
		return nil, fmt.Errorf("marvel: bad payload range [%d,%d) of %d", y0, y1, h)
	}
	rel, err := img.PlanSlices(y1-y0, maxRows, halo, granularity)
	if err != nil {
		return nil, err
	}
	for i := range rel {
		s := &rel[i]
		s.Y0 += y0
		s.Y1 += y0
		s.HaloTop = halo
		if s.Y0-halo < 0 {
			s.HaloTop = s.Y0
		}
		s.HaloBottom = halo
		if s.Y1+halo > h {
			s.HaloBottom = h - s.Y1
		}
	}
	return rel, nil
}

// sliceBudget is the maximum transferred rows one slice may occupy given
// the kernel's free local store after header allocation: each buffered
// row costs its pixel stride plus the kernel's per-row scratch, the
// optimized variant double-buffers, and a fixed reserve covers the
// output vector plus alignment slack. Shared between the simulated
// kernel and the real-execution seam (ExecPlan) so both always compute
// identical slice plans.
func sliceBudget(free uint32, id KernelID, v Variant, w, stride int) int {
	g := kernelGeom(id)
	buffers := 1
	if v == Optimized {
		buffers = 2
	}
	perRow := stride + g.scratchRows*w
	fixed := outBytes(id) + 64
	return int(free-fixed)/(buffers*perRow) - 1
}

// ExtractKernelSpec builds the SPE program for one extraction kernel: the
// Listing-1 dispatcher around a function that DMAs the header, plans
// halo'd slices against its local-store budget, streams the image through
// one (naive) or two (optimized) buffers, runs the real incremental
// feature computation, and DMAs the result back — the finalized feature
// vector for OpRun, the raw accumulator words for OpRunPartial.
func ExtractKernelSpec(id KernelID, v Variant) core.KernelSpec {
	cal := Cal(id)
	g := kernelGeom(id)
	fn := func(ctx *spe.Context, wrapper mainmem.Addr, partial bool) uint32 {
		st := ctx.Store()
		hdrLS, err := st.Alloc(exHdrBytes, 16)
		if err != nil {
			return resErr
		}
		if err := ctx.Get(hdrLS, wrapper, exHdrBytes, 0); err != nil {
			return resErr
		}
		ctx.WaitTag(0)
		hdr := core.GetUint32s(st.Bytes(hdrLS, exHdrBytes))
		w, h, stride, pixEA := int(hdr[0]), int(hdr[1]), int(hdr[2]), mainmem.Addr(hdr[3])
		y0, y1 := int(hdr[4]), int(hdr[5])
		if w <= 0 || h <= 0 || stride < 3*w || y0 < 0 || y1 > h || y0 >= y1 {
			return resErr
		}

		// Slice plan against the remaining local store.
		oBytes := outBytes(id)
		budget := sliceBudget(st.Free(), id, v, w, stride)
		slices, err := planRange(y0, y1, h, budget, g.halo, g.granularity)
		if err != nil {
			return resErr
		}
		maxRows := 0
		for _, s := range slices {
			if r := s.TransferRows(); r > maxRows {
				maxRows = r
			}
		}
		buffers := 1
		if v == Optimized {
			buffers = 2
		}
		var bufs [2]ls.Addr
		for i := 0; i < buffers; i++ {
			if bufs[i], err = st.Alloc(uint32(maxRows*stride), 16); err != nil {
				return resErr
			}
			if g.scratchRows > 0 {
				// bins/gray scratch
				if _, err = st.Alloc(uint32(maxRows*w*g.scratchRows), 16); err != nil {
					return resErr
				}
			}
		}
		outLS, err := st.Alloc(oBytes, 16)
		if err != nil {
			return resErr
		}

		acc := g.newAcc()
		fetch := func(i, tag int) error {
			s := slices[i]
			return dmaRows(ctx, bufs[tag], pixEA+mainmem.Addr(s.TransferY0()*stride),
				s.TransferRows(), stride, tag, v)
		}
		process := func(i, tag int) {
			s := slices[i]
			band := img.Wrap(st.Bytes(bufs[tag], uint32(s.TransferRows()*stride)), w, s.TransferRows(), stride)
			acc.process(band, s.HaloTop, s.HaloTop+s.PayloadRows())
			chargeExtract(ctx, id, v, float64(s.PayloadRows()*w))
		}
		if v == Optimized {
			// Double buffering: fetch slice i+1 while computing slice i.
			if err := fetch(0, 0); err != nil {
				return resErr
			}
			for i := range slices {
				cur := i % 2
				if i+1 < len(slices) {
					if err := fetch(i+1, 1-cur); err != nil {
						return resErr
					}
				}
				ctx.WaitTag(cur)
				process(i, cur)
			}
		} else {
			for i := range slices {
				if err := fetch(i, 0); err != nil {
					return resErr
				}
				ctx.WaitTag(0)
				process(i, 0)
			}
		}

		if partial {
			words := encodeRaw(id, acc)
			ctx.ComputeScalar(float64(len(words))*3, id.String()+"-emit-raw")
			core.PutUint32s(st.Bytes(outLS, uint32(len(words)*4)), words)
		} else {
			vec := acc.finalize()
			ctx.ComputeScalar(float64(len(vec))*12, id.String()+"-finalize")
			core.PutFloat32s(st.Bytes(outLS, uint32(len(vec)*4)), vec)
		}
		if err := ctx.Put(outLS, wrapper+mainmem.Addr(extractOutOff()), oBytes, 1); err != nil {
			return resErr
		}
		ctx.WaitTag(1)
		return resOK
	}
	return core.KernelSpec{
		Name:      fmt.Sprintf("%s-%s", id, v),
		CodeBytes: cal.CodeBytes,
		Mode:      core.Polling,
		Functions: map[core.Opcode]core.KernelFunc{
			OpRun: func(ctx *spe.Context, wrapper mainmem.Addr) uint32 {
				return fn(ctx, wrapper, false)
			},
			OpRunPartial: func(ctx *spe.Context, wrapper mainmem.Addr) uint32 {
				return fn(ctx, wrapper, true)
			},
		},
	}
}
