package profile

import "sort"

// Candidate is a proposed SPE kernel: a computation core method plus the
// same-class methods clustered around it via call-graph edges (§3.2).
type Candidate struct {
	// Core is the qualified name of the most expensive method.
	Core string
	// Class is the owning class; the cluster never leaves it.
	Class string
	// Methods lists all cluster members (including Core), sorted.
	Methods []string
	// Coverage is the cluster's combined self-time share of the run.
	Coverage float64
}

// IdentifyOptions tunes kernel identification.
type IdentifyOptions struct {
	// MinCoreCoverage is the self-coverage a method needs to seed a
	// candidate (default 2%).
	MinCoreCoverage float64
	// MaxCandidates bounds the number of proposals (default 8, one per
	// SPE).
	MaxCandidates int
}

// IdentifyKernels proposes candidate kernels from a finished profile:
// methods are ranked by self coverage; each sufficiently expensive method
// seeds a cluster that grows along call-graph edges to other methods of
// the same class (callers and callees), because same-class methods share
// member data and port together cheaply. Each class yields at most one
// candidate (its methods would share one wrapper).
func (p *Profiler) IdentifyKernels(opts IdentifyOptions) []Candidate {
	if opts.MinCoreCoverage <= 0 {
		opts.MinCoreCoverage = 0.02
	}
	if opts.MaxCandidates <= 0 {
		opts.MaxCandidates = 8
	}
	flat := p.Flat()
	coverage := map[string]float64{}
	class := map[string]string{}
	for _, l := range flat {
		coverage[l.Name] = l.Coverage
		class[l.Name] = l.Class
	}
	// Adjacency restricted to same-class edges.
	adj := map[string][]string{}
	for _, e := range p.Edges() {
		if class[e.Caller] == class[e.Callee] && e.Caller != e.Callee {
			adj[e.Caller] = append(adj[e.Caller], e.Callee)
			adj[e.Callee] = append(adj[e.Callee], e.Caller)
		}
	}
	var out []Candidate
	usedClass := map[string]bool{}
	for _, l := range flat {
		if len(out) >= opts.MaxCandidates {
			break
		}
		if l.Coverage < opts.MinCoreCoverage || usedClass[l.Class] {
			continue
		}
		// Flood-fill within the class from the core method.
		seen := map[string]bool{l.Name: true}
		queue := []string{l.Name}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adj[cur] {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		cand := Candidate{Core: l.Name, Class: l.Class}
		for m := range seen {
			cand.Methods = append(cand.Methods, m)
			cand.Coverage += coverage[m]
		}
		sort.Strings(cand.Methods)
		usedClass[l.Class] = true
		out = append(out, cand)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Coverage != out[j].Coverage {
			return out[i].Coverage > out[j].Coverage
		}
		return out[i].Core < out[j].Core
	})
	return out
}
