package profile

import (
	"strings"
	"testing"

	"cellport/internal/sim"
)

// fakeClock is a controllable virtual clock.
type fakeClock struct{ now sim.Time }

func (c *fakeClock) advance(d sim.Duration) { c.now = c.now.Add(d) }
func (c *fakeClock) fn() func() sim.Time    { return func() sim.Time { return c.now } }

func TestFlatProfileSelfVsCum(t *testing.T) {
	clk := &fakeClock{}
	p := New(clk.fn())
	p.Enter("App", "main")
	clk.advance(10 * sim.Millisecond)
	p.Enter("Feature", "extract")
	clk.advance(80 * sim.Millisecond)
	p.Exit()
	clk.advance(10 * sim.Millisecond)
	p.Exit()

	if p.Total() != 100*sim.Millisecond {
		t.Fatalf("total = %v", p.Total())
	}
	flat := p.Flat()
	if len(flat) != 2 {
		t.Fatalf("flat lines = %d", len(flat))
	}
	// Sorted by self time: extract (80ms) first.
	if flat[0].Name != "Feature::extract" || flat[0].Self != 80*sim.Millisecond {
		t.Fatalf("line0 = %+v", flat[0])
	}
	if flat[1].Name != "App::main" || flat[1].Self != 20*sim.Millisecond ||
		flat[1].Cum != 100*sim.Millisecond {
		t.Fatalf("line1 = %+v", flat[1])
	}
	if got := flat[0].Coverage; got < 0.79 || got > 0.81 {
		t.Fatalf("coverage = %v", got)
	}
}

func TestRecursionDoesNotDoubleCountCum(t *testing.T) {
	clk := &fakeClock{}
	p := New(clk.fn())
	p.Enter("R", "rec")
	clk.advance(sim.Millisecond)
	p.Enter("R", "rec")
	clk.advance(sim.Millisecond)
	p.Exit()
	clk.advance(sim.Millisecond)
	p.Exit()
	flat := p.Flat()
	if flat[0].Cum != 3*sim.Millisecond {
		t.Fatalf("recursive cum = %v, want 3ms", flat[0].Cum)
	}
	if flat[0].Self != 3*sim.Millisecond {
		t.Fatalf("recursive self = %v, want 3ms", flat[0].Self)
	}
	if flat[0].Calls != 2 {
		t.Fatalf("calls = %d", flat[0].Calls)
	}
}

func TestExitWithoutEnterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New((&fakeClock{}).fn()).Exit()
}

func TestEdgesAttributed(t *testing.T) {
	clk := &fakeClock{}
	p := New(clk.fn())
	p.Enter("A", "main")
	for i := 0; i < 3; i++ {
		p.Enter("B", "work")
		clk.advance(5 * sim.Millisecond)
		p.Exit()
	}
	p.Exit()
	edges := p.Edges()
	if len(edges) != 1 {
		t.Fatalf("edges = %d", len(edges))
	}
	e := edges[0]
	if e.Caller != "A::main" || e.Callee != "B::work" || e.Calls != 3 || e.Time != 15*sim.Millisecond {
		t.Fatalf("edge = %+v", e)
	}
}

func TestCoverageOf(t *testing.T) {
	clk := &fakeClock{}
	p := New(clk.fn())
	p.Enter("App", "main")
	p.Enter("CH", "extract")
	clk.advance(30 * sim.Millisecond)
	p.Exit()
	p.Enter("EH", "extract")
	clk.advance(70 * sim.Millisecond)
	p.Exit()
	p.Exit()
	if got := p.CoverageOf("CH", "EH"); got < 0.999 {
		t.Fatalf("coverage = %v", got)
	}
	if got := p.CoverageOf("CH"); got < 0.29 || got > 0.31 {
		t.Fatalf("CH coverage = %v", got)
	}
}

func TestReportRenders(t *testing.T) {
	clk := &fakeClock{}
	p := New(clk.fn())
	p.Enter("X", "go")
	clk.advance(sim.Millisecond)
	p.Exit()
	r := p.Report()
	if !strings.Contains(r, "X::go") || !strings.Contains(r, "total profiled") {
		t.Fatalf("report:\n%s", r)
	}
}

// buildMarvelLikeProfile constructs the §5.2 shape: one hot class with a
// clustered helper, several independent extractors, cheap glue.
func buildMarvelLikeProfile() *Profiler {
	clk := &fakeClock{}
	p := New(clk.fn())
	p.Enter("App", "main")
	clk.advance(sim.Millisecond) // glue

	p.Enter("ColorCorrelogram", "extract")
	p.Enter("ColorCorrelogram", "quantize")
	clk.advance(10 * sim.Millisecond)
	p.Exit()
	p.Enter("ColorCorrelogram", "windowCount")
	clk.advance(44 * sim.Millisecond)
	p.Exit()
	p.Exit()

	p.Enter("EdgeHistogram", "extract")
	clk.advance(28 * sim.Millisecond)
	p.Exit()

	p.Enter("ColorHistogram", "extract")
	clk.advance(8 * sim.Millisecond)
	p.Exit()

	p.Enter("Texture", "extract")
	clk.advance(6 * sim.Millisecond)
	p.Exit()

	p.Enter("Concepts", "detect")
	clk.advance(2 * sim.Millisecond)
	p.Exit()

	p.Exit()
	return p
}

func TestIdentifyKernelsClustersWithinClass(t *testing.T) {
	p := buildMarvelLikeProfile()
	cands := p.IdentifyKernels(IdentifyOptions{MinCoreCoverage: 0.02, MaxCandidates: 8})
	if len(cands) != 5 {
		t.Fatalf("candidates = %d: %+v", len(cands), cands)
	}
	// Highest coverage first: the correlogram cluster, with both methods.
	top := cands[0]
	if top.Class != "ColorCorrelogram" {
		t.Fatalf("top candidate class = %s", top.Class)
	}
	if len(top.Methods) != 3 { // extract, quantize, windowCount
		t.Fatalf("cluster methods = %v", top.Methods)
	}
	if top.Coverage < 0.50 || top.Coverage > 0.58 {
		t.Fatalf("cluster coverage = %v", top.Coverage)
	}
	// No cluster may cross class boundaries.
	for _, c := range cands {
		for _, m := range c.Methods {
			if !strings.HasPrefix(m, c.Class+"::") {
				t.Fatalf("cluster %s contains foreign method %s", c.Class, m)
			}
		}
	}
}

func TestIdentifyKernelsThreshold(t *testing.T) {
	p := buildMarvelLikeProfile()
	cands := p.IdentifyKernels(IdentifyOptions{MinCoreCoverage: 0.20})
	// Only correlogram (54%) and edge (28%) cores pass 20%.
	if len(cands) != 2 {
		t.Fatalf("candidates at 20%% = %d: %+v", len(cands), cands)
	}
	cands = p.IdentifyKernels(IdentifyOptions{MinCoreCoverage: 0.02, MaxCandidates: 1})
	if len(cands) != 1 {
		t.Fatalf("MaxCandidates ignored: %d", len(cands))
	}
}
