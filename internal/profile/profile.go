// Package profile implements the §3.2 profiling step: a gprof/Xprofiler
// analog that attributes virtual execution time to the methods of an
// instrumented application, builds the call graph, and identifies
// candidate SPE kernels — the most expensive computation cores, grown
// into clusters of related methods without crossing class boundaries
// ("this grouping should not cross class boundaries, due to potential
// data accessibility complications").
package profile

import (
	"fmt"
	"sort"
	"strings"

	"cellport/internal/sim"
)

// Profiler accumulates per-method timing for one run. It is driven by the
// instrumented application through Enter/Exit pairs; time is read from the
// supplied virtual clock.
type Profiler struct {
	clock func() sim.Time
	nodes map[string]*Node
	edges map[edgeKey]*Edge
	stack []frame
	start sim.Time
	total sim.Duration
	began bool
}

type frame struct {
	node      *Node
	start     sim.Time
	childTime sim.Duration
}

// Node is one profiled method.
type Node struct {
	// Class and Method name the code location, C++-style
	// ("ColorHistogram", "extract").
	Class, Method string
	// Self is time spent in the method excluding callees.
	Self sim.Duration
	// Cum is time including callees (top-level invocations only, so
	// recursion does not double-count).
	Cum sim.Duration
	// Calls counts invocations.
	Calls uint64

	onStack int
}

// Name returns the qualified method name.
func (n *Node) Name() string { return n.Class + "::" + n.Method }

type edgeKey struct{ caller, callee string }

// Edge is a call-graph edge with attributed time.
type Edge struct {
	Caller, Callee string
	Calls          uint64
	Time           sim.Duration
}

// New returns a profiler reading the given virtual clock.
func New(clock func() sim.Time) *Profiler {
	return &Profiler{
		clock: clock,
		nodes: make(map[string]*Node),
		edges: make(map[edgeKey]*Edge),
	}
}

func (p *Profiler) node(class, method string) *Node {
	key := class + "::" + method
	n := p.nodes[key]
	if n == nil {
		n = &Node{Class: class, Method: method}
		p.nodes[key] = n
	}
	return n
}

// Enter records entry into class::method. Calls must be balanced with
// Exit; the profiler measures wall (virtual) time between them.
func (p *Profiler) Enter(class, method string) {
	if !p.began {
		p.began = true
		p.start = p.clock()
	}
	n := p.node(class, method)
	n.Calls++
	n.onStack++
	p.stack = append(p.stack, frame{node: n, start: p.clock()})
}

// Exit closes the innermost Enter.
func (p *Profiler) Exit() {
	if len(p.stack) == 0 {
		panic("profile: Exit without matching Enter")
	}
	f := p.stack[len(p.stack)-1]
	p.stack = p.stack[:len(p.stack)-1]
	elapsed := p.clock().Sub(f.start)
	f.node.Self += elapsed - f.childTime
	f.node.onStack--
	if f.node.onStack == 0 {
		f.node.Cum += elapsed
	}
	if len(p.stack) > 0 {
		parent := &p.stack[len(p.stack)-1]
		parent.childTime += elapsed
		k := edgeKey{parent.node.Name(), f.node.Name()}
		e := p.edges[k]
		if e == nil {
			e = &Edge{Caller: k.caller, Callee: k.callee}
			p.edges[k] = e
		}
		e.Calls++
		e.Time += elapsed
	} else {
		p.total = p.clock().Sub(p.start)
	}
}

// Total returns the observed span from first Enter to last top-level Exit.
func (p *Profiler) Total() sim.Duration { return p.total }

// Line is one row of the flat profile.
type Line struct {
	Name     string
	Class    string
	Self     sim.Duration
	Cum      sim.Duration
	Calls    uint64
	Coverage float64 // Self / Total
}

// Flat returns the flat profile sorted by self time, descending.
func (p *Profiler) Flat() []Line {
	out := make([]Line, 0, len(p.nodes))
	for _, n := range p.nodes {
		cov := 0.0
		if p.total > 0 {
			cov = n.Self.Seconds() / p.total.Seconds()
		}
		out = append(out, Line{
			Name: n.Name(), Class: n.Class,
			Self: n.Self, Cum: n.Cum, Calls: n.Calls, Coverage: cov,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Edges returns the call graph sorted by attributed time, descending.
func (p *Profiler) Edges() []Edge {
	out := make([]Edge, 0, len(p.edges))
	for _, e := range p.edges {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Caller+out[i].Callee < out[j].Caller+out[j].Callee
	})
	return out
}

// CoverageOf sums the self coverage of methods matching the class name.
func (p *Profiler) CoverageOf(classes ...string) float64 {
	want := map[string]bool{}
	for _, c := range classes {
		want[c] = true
	}
	cov := 0.0
	for _, l := range p.Flat() {
		if want[l.Class] {
			cov += l.Coverage
		}
	}
	return cov
}

// Report renders a gprof-style flat profile.
func (p *Profiler) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s %10s %10s %8s %7s\n", "method", "self", "cum", "calls", "cover")
	for _, l := range p.Flat() {
		fmt.Fprintf(&b, "%-42s %10s %10s %8d %6.1f%%\n",
			l.Name, l.Self, l.Cum, l.Calls, l.Coverage*100)
	}
	fmt.Fprintf(&b, "total profiled time: %s\n", p.total)
	return b.String()
}
