// Package metrics is the simulator's metrics registry: typed counters,
// gauges and fixed-bucket histograms keyed by (component, name), the
// machine-readable side of the paper's profile-first methodology (Table 1
// and the Eq. 1–3 estimator are both "where does the time go" artifacts).
//
// The registry is built for instrumentation inside the simulation hot
// paths:
//
//   - Updating a metric never allocates: handles are obtained once at
//     wiring time and updates are plain field arithmetic.
//   - Every handle method is nil-safe. Uninstrumented components hold nil
//     handles and pay a single predictable branch, so a machine built
//     without a registry takes its exact unobserved path.
//   - Iteration order is deterministic: snapshots are sorted by
//     (component, name), so dumps are reproducible and diffable.
//
// A Registry belongs to one simulation run (the engine serializes all
// simulated processes, so no locking is needed); cross-run aggregation
// happens on snapshots.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// key identifies one metric inside a registry.
type key struct {
	component string
	name      string
}

// Counter is a monotonically increasing value (operation counts, bytes,
// accumulated virtual time in femtoseconds).
type Counter struct {
	v int64
}

// Add increases the counter. Nil-safe: a nil counter discards the update.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time value (queue depth, live bytes); SetMax turns
// it into a high-water mark.
type Gauge struct {
	v int64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// SetMax stores v if it exceeds the current value (high-water tracking).
// Nil-safe.
func (g *Gauge) SetMax(v int64) {
	if g != nil && v > g.v {
		g.v = v
	}
}

// Value reports the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v <= Bounds[i]; the final implicit bucket counts the rest.
// Bounds are fixed at registration, so Observe is allocation-free.
type Histogram struct {
	bounds []int64
	counts []int64 // len(bounds)+1
	sum    int64
	count  int64
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count reports the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Registry holds one run's metrics. The zero value is not usable;
// construct with NewRegistry. A nil *Registry is a valid "observability
// off" registry: its lookup methods return nil handles.
type Registry struct {
	counters map[key]*Counter
	gauges   map[key]*Gauge
	hists    map[key]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[key]*Counter{},
		gauges:   map[key]*Gauge{},
		hists:    map[key]*Histogram{},
	}
}

// Counter returns the counter registered under (component, name), creating
// it on first use. On a nil registry it returns nil (a valid no-op handle).
func (r *Registry) Counter(component, name string) *Counter {
	if r == nil {
		return nil
	}
	k := key{component, name}
	c := r.counters[k]
	if c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge registered under (component, name), creating it
// on first use. Nil-registry-safe.
func (r *Registry) Gauge(component, name string) *Gauge {
	if r == nil {
		return nil
	}
	k := key{component, name}
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the histogram registered under (component, name) with
// the given ascending bucket bounds, creating it on first use (later calls
// ignore bounds and return the registered instance). Nil-registry-safe.
func (r *Registry) Histogram(component, name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	k := key{component, name}
	h := r.hists[k]
	if h == nil {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("metrics: histogram %s/%s bounds not ascending: %v", component, name, bounds))
			}
		}
		h = &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
		r.hists[k] = h
	}
	return h
}

// Sample is one metric's value in a snapshot.
type Sample struct {
	Component string `json:"component"`
	Name      string `json:"name"`
	Type      string `json:"type"` // "counter" | "gauge" | "histogram"
	Value     int64  `json:"value"`
	// Histogram-only fields.
	Bounds []int64 `json:"bounds,omitempty"`
	Counts []int64 `json:"counts,omitempty"` // len(Bounds)+1, last is +Inf
	Sum    int64   `json:"sum,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, sorted by
// (component, name, type) so serialization is reproducible.
type Snapshot struct {
	Samples []Sample `json:"samples"`
}

// Snapshot copies the registry's current values. On a nil registry it
// returns nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{}
	for k, c := range r.counters {
		s.Samples = append(s.Samples, Sample{Component: k.component, Name: k.name, Type: "counter", Value: c.v})
	}
	for k, g := range r.gauges {
		s.Samples = append(s.Samples, Sample{Component: k.component, Name: k.name, Type: "gauge", Value: g.v})
	}
	for k, h := range r.hists {
		s.Samples = append(s.Samples, Sample{
			Component: k.component, Name: k.name, Type: "histogram",
			Value:  h.count,
			Bounds: append([]int64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Sum:    h.sum,
		})
	}
	s.sort()
	return s
}

func (s *Snapshot) sort() {
	sort.Slice(s.Samples, func(i, j int) bool {
		a, b := s.Samples[i], s.Samples[j]
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Type < b.Type
	})
}

// Diff returns a snapshot holding this snapshot's deltas over prev:
// counter values and histogram counts subtract; gauges keep their current
// value (a gauge is a level, not a rate). Metrics absent from prev pass
// through unchanged. A nil prev returns a copy of s.
func (s *Snapshot) Diff(prev *Snapshot) *Snapshot {
	if s == nil {
		return nil
	}
	base := map[key]Sample{}
	if prev != nil {
		for _, p := range prev.Samples {
			base[key{p.Component, p.Name + "\x00" + p.Type}] = p
		}
	}
	out := &Snapshot{Samples: make([]Sample, 0, len(s.Samples))}
	for _, cur := range s.Samples {
		d := cur
		d.Bounds = append([]int64(nil), cur.Bounds...)
		d.Counts = append([]int64(nil), cur.Counts...)
		if p, ok := base[key{cur.Component, cur.Name + "\x00" + cur.Type}]; ok {
			switch cur.Type {
			case "counter":
				d.Value -= p.Value
			case "histogram":
				d.Value -= p.Value
				d.Sum -= p.Sum
				for i := range d.Counts {
					if i < len(p.Counts) {
						d.Counts[i] -= p.Counts[i]
					}
				}
			}
		}
		out.Samples = append(out.Samples, d)
	}
	out.sort()
	return out
}

// Components returns the sorted set of component names present in the
// snapshot. Metric keys are namespaced by component, and the namespaces
// double as clock domains: simulator registries use machine components
// ("ppe", "spe", "supervisor", ...) whose time-valued metrics are
// virtual femtoseconds, while the real-execution backend puts all its
// wall-clock counters under the single "exec" component. A snapshot
// should live entirely in one domain; tests assert that with this
// accessor.
func (s *Snapshot) Components() []string {
	var out []string
	seen := map[string]bool{}
	for _, sm := range s.Samples {
		if !seen[sm.Component] {
			seen[sm.Component] = true
			out = append(out, sm.Component)
		}
	}
	sort.Strings(out)
	return out
}

// Get returns the sample for (component, name, type), if present.
func (s *Snapshot) Get(component, name, typ string) (Sample, bool) {
	for _, sm := range s.Samples {
		if sm.Component == component && sm.Name == name && sm.Type == typ {
			return sm, true
		}
	}
	return Sample{}, false
}

// WriteJSON serializes the snapshot as indented, deterministic JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
