package metrics

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("spe0", "commands")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("spe0", "commands") != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("spe0", "queue_peak")
	g.SetMax(3)
	g.SetMax(7)
	g.SetMax(2)
	if g.Value() != 7 {
		t.Fatalf("gauge high-water = %d, want 7", g.Value())
	}
	g.Set(1)
	if g.Value() != 1 {
		t.Fatalf("gauge after Set = %d, want 1", g.Value())
	}

	h := r.Histogram("mfc0", "dma_size", []int64{128, 1024, 16384})
	for _, v := range []int64{64, 128, 129, 4096, 99999} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("histogram count = %d, want 5", h.Count())
	}
	s, ok := r.Snapshot().Get("mfc0", "dma_size", "histogram")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	want := []int64{2, 1, 1, 1} // <=128: {64,128}; <=1024: {129}; <=16384: {4096}; rest: {99999}
	for i, c := range want {
		if s.Counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], c, s.Counts)
		}
	}
	if s.Sum != 64+128+129+4096+99999 {
		t.Fatalf("sum = %d", s.Sum)
	}
}

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "y")
	g := r.Gauge("x", "y")
	h := r.Histogram("x", "y", []int64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.SetMax(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must read zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestHotPathUpdatesDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("spe0", "ops")
	g := r.Gauge("spe0", "depth")
	h := r.Histogram("spe0", "sizes", []int64{16, 256, 4096})
	var nilC *Counter
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		g.SetMax(9)
		h.Observe(300)
		nilC.Inc()
	})
	if allocs != 0 {
		t.Fatalf("hot-path updates allocated %.1f times per run, want 0", allocs)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	// Register in scrambled order; snapshot must sort.
	r.Counter("z", "a").Inc()
	r.Gauge("a", "z").Set(1)
	r.Counter("a", "a").Inc()
	r.Histogram("m", "h", []int64{1}).Observe(0)
	s := r.Snapshot()
	if !sort.SliceIsSorted(s.Samples, func(i, j int) bool {
		a, b := s.Samples[i], s.Samples[j]
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Type < b.Type
	}) {
		t.Fatalf("snapshot not sorted: %+v", s.Samples)
	}

	var b1, b2 bytes.Buffer
	if err := s.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two snapshots of the same registry serialized differently")
	}
	var doc Snapshot
	if err := json.Unmarshal(b1.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
}

func TestDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("eib", "bytes")
	g := r.Gauge("mem", "peak")
	h := r.Histogram("mfc0", "sz", []int64{10})
	c.Add(100)
	g.Set(50)
	h.Observe(5)
	before := r.Snapshot()
	c.Add(25)
	g.Set(80)
	h.Observe(20)
	after := r.Snapshot()

	d := after.Diff(before)
	if s, _ := d.Get("eib", "bytes", "counter"); s.Value != 25 {
		t.Fatalf("counter delta = %d, want 25", s.Value)
	}
	if s, _ := d.Get("mem", "peak", "gauge"); s.Value != 80 {
		t.Fatalf("gauge in diff = %d, want current value 80", s.Value)
	}
	s, _ := d.Get("mfc0", "sz", "histogram")
	if s.Value != 1 || s.Counts[0] != 0 || s.Counts[1] != 1 || s.Sum != 20 {
		t.Fatalf("histogram delta = %+v", s)
	}
	// Diff must not mutate its inputs.
	if s, _ := after.Get("eib", "bytes", "counter"); s.Value != 125 {
		t.Fatalf("Diff mutated the newer snapshot: %d", s.Value)
	}

	if d := after.Diff(nil); d == nil || len(d.Samples) != len(after.Samples) {
		t.Fatal("diff against nil must copy")
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds must panic at registration")
		}
	}()
	NewRegistry().Histogram("x", "y", []int64{5, 5})
}
