package core

import (
	"strings"
	"testing"

	"cellport/internal/cell"
	"cellport/internal/mainmem"
	"cellport/internal/sim"
	"cellport/internal/spe"
)

const (
	opDouble Opcode = 1
	opSquare Opcode = 2
)

// arithKernel is a minimal two-function kernel: the wrapper holds one
// uint32 input and one uint32 output field.
func arithKernel(mode CompletionMode) KernelSpec {
	apply := func(f func(uint32) uint32) KernelFunc {
		return func(ctx *spe.Context, wrapper mainmem.Addr) uint32 {
			lsa := ctx.Store().MustAlloc(32, 16)
			if err := ctx.Get(lsa, wrapper, 32, 0); err != nil {
				return ResultUnknownOpcode
			}
			ctx.WaitTag(0)
			in := ByteOrder.Uint32(ctx.Store().Bytes(lsa, 4))
			ctx.ComputeScalar(10, "arith")
			ByteOrder.PutUint32(ctx.Store().Bytes(lsa+16, 4), f(in))
			if err := ctx.Put(lsa+16, wrapper+16, 16, 1); err != nil {
				return ResultUnknownOpcode
			}
			ctx.WaitTag(1)
			return 0
		}
	}
	return KernelSpec{
		Name:      "arith",
		CodeBytes: 8 * 1024,
		Mode:      mode,
		Functions: map[Opcode]KernelFunc{
			opDouble: apply(func(v uint32) uint32 { return v * 2 }),
			opSquare: apply(func(v uint32) uint32 { return v * v }),
		},
	}
}

func runOnCell(t *testing.T, body func(ctx *cell.Context)) {
	t.Helper()
	cfg := cell.DefaultConfig()
	cfg.MemorySize = 16 << 20 // keep test machines small
	m := cell.New(cfg)
	if _, err := m.RunMain("test", body); err != nil {
		t.Fatal(err)
	}
}

func TestSendAndWaitBothModes(t *testing.T) {
	for _, mode := range []CompletionMode{Polling, Interrupt} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			runOnCell(t, func(ctx *cell.Context) {
				iface, err := Open(ctx, 0, arithKernel(mode))
				if err != nil {
					t.Error(err)
					return
				}
				w, err := NewWrapper(ctx.Memory(),
					WrapperField{"in", 4}, WrapperField{"out", 4})
				if err != nil {
					t.Error(err)
					return
				}
				w.SetUint32("in", 21)
				if _, err := iface.SendAndWait(opDouble, w.Addr()); err != nil {
					t.Error(err)
					return
				}
				if got := w.Uint32("out"); got != 42 {
					t.Errorf("double(21) = %d, want 42", got)
				}
				w.SetUint32("in", 9)
				if _, err := iface.SendAndWait(opSquare, w.Addr()); err != nil {
					t.Error(err)
					return
				}
				if got := w.Uint32("out"); got != 81 {
					t.Errorf("square(9) = %d, want 81", got)
				}
				if iface.Invocations() != 2 {
					t.Errorf("invocations = %d, want 2", iface.Invocations())
				}
				if err := w.Free(); err != nil {
					t.Error(err)
				}
				if err := iface.Close(); err != nil {
					t.Error(err)
				}
				if err := ctx.Memory().CheckLeaks(); err != nil {
					t.Error(err)
				}
			})
		})
	}
}

func TestSendWaitSplitEnablesParallelism(t *testing.T) {
	// Two kernels on two SPEs driven with Send+Send then Wait+Wait must
	// overlap: total is about one kernel time, not two.
	busy := KernelSpec{
		Name:      "busy",
		CodeBytes: 4096,
		Functions: map[Opcode]KernelFunc{
			1: func(ctx *spe.Context, _ mainmem.Addr) uint32 {
				ctx.ComputeScalar(0.35*3.2e9/10, "busy") // 100 ms
				return 0
			},
		},
	}
	runOnCell(t, func(ctx *cell.Context) {
		a, err := Open(ctx, 0, busy)
		if err != nil {
			t.Error(err)
			return
		}
		b, err := Open(ctx, 1, busy)
		if err != nil {
			t.Error(err)
			return
		}
		start := ctx.Now()
		if err := a.Send(1, 0); err != nil {
			t.Error(err)
		}
		if err := b.Send(1, 0); err != nil {
			t.Error(err)
		}
		if !a.InFlight() {
			t.Error("a should be in flight")
		}
		if _, err := a.Wait(); err != nil {
			t.Error(err)
		}
		if _, err := b.Wait(); err != nil {
			t.Error(err)
		}
		if d := ctx.Now().Sub(start); d.Seconds() > 0.11 {
			t.Errorf("parallel kernels took %v, want about 100ms", d)
		}
		if err := a.Close(); err != nil {
			t.Error(err)
		}
		if err := b.Close(); err != nil {
			t.Error(err)
		}
	})
}

func TestProtocolMisuse(t *testing.T) {
	runOnCell(t, func(ctx *cell.Context) {
		iface, err := Open(ctx, 0, arithKernel(Polling))
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := iface.Wait(); err == nil {
			t.Error("Wait with nothing in flight should fail")
		}
		if err := iface.Send(OpExit, 0); err == nil {
			t.Error("Send(OpExit) should be rejected")
		}
		w, _ := NewWrapper(ctx.Memory(), WrapperField{"in", 4}, WrapperField{"out", 4})
		if err := iface.Send(opDouble, w.Addr()); err != nil {
			t.Error(err)
		}
		if err := iface.Send(opDouble, w.Addr()); err == nil {
			t.Error("second Send while in flight should fail")
		}
		if _, err := iface.Wait(); err != nil {
			t.Error(err)
		}
		if err := iface.Close(); err != nil {
			t.Error(err)
		}
		if err := iface.Send(opDouble, w.Addr()); err == nil {
			t.Error("Send after Close should fail")
		}
		if err := w.Free(); err != nil {
			t.Error(err)
		}
	})
}

func TestUnknownOpcodeReported(t *testing.T) {
	runOnCell(t, func(ctx *cell.Context) {
		iface, err := Open(ctx, 0, arithKernel(Polling))
		if err != nil {
			t.Error(err)
			return
		}
		res, err := iface.SendAndWait(Opcode(99), 0)
		if err == nil || res != ResultUnknownOpcode {
			t.Errorf("unknown opcode: res=%#x err=%v", res, err)
		}
		if err := iface.Close(); err != nil {
			t.Error(err)
		}
	})
}

func TestCloseDrainsInFlight(t *testing.T) {
	runOnCell(t, func(ctx *cell.Context) {
		iface, err := Open(ctx, 0, arithKernel(Polling))
		if err != nil {
			t.Error(err)
			return
		}
		w, _ := NewWrapper(ctx.Memory(), WrapperField{"in", 4}, WrapperField{"out", 4})
		w.SetUint32("in", 5)
		if err := iface.Send(opDouble, w.Addr()); err != nil {
			t.Error(err)
		}
		if err := iface.Close(); err != nil {
			t.Error(err)
		}
		if got := w.Uint32("out"); got != 10 {
			t.Errorf("drained result = %d, want 10", got)
		}
		if err := w.Free(); err != nil {
			t.Error(err)
		}
		if err := iface.Close(); err != nil {
			t.Error("second Close should be a no-op, got", err)
		}
	})
}

func TestBuildProgramValidation(t *testing.T) {
	if _, err := BuildProgram(KernelSpec{Name: "x", CodeBytes: 100}); err == nil {
		t.Error("no functions should fail")
	}
	fns := map[Opcode]KernelFunc{1: func(*spe.Context, mainmem.Addr) uint32 { return 0 }}
	if _, err := BuildProgram(KernelSpec{Name: "x", Functions: fns}); err == nil {
		t.Error("zero code size should fail")
	}
	bad := map[Opcode]KernelFunc{OpExit: fns[1]}
	if _, err := BuildProgram(KernelSpec{Name: "x", CodeBytes: 10, Functions: bad}); err == nil {
		t.Error("OpExit registration should fail")
	}
}

func TestDispatchOverheadCharged(t *testing.T) {
	// A no-op kernel invocation still takes dispatcher + mailbox time.
	noop := KernelSpec{
		Name:      "noop",
		CodeBytes: 1024,
		Functions: map[Opcode]KernelFunc{
			1: func(*spe.Context, mainmem.Addr) uint32 { return 0 },
		},
	}
	runOnCell(t, func(ctx *cell.Context) {
		iface, err := Open(ctx, 0, noop)
		if err != nil {
			t.Error(err)
			return
		}
		start := ctx.Now()
		if _, err := iface.SendAndWait(1, 0); err != nil {
			t.Error(err)
		}
		if d := ctx.Now().Sub(start); d <= 0 {
			t.Error("invocation should consume virtual time")
		} else if d > 10*sim.Microsecond {
			t.Errorf("empty invocation took %v; suspiciously slow", d)
		}
		if err := iface.Close(); err != nil {
			t.Error(err)
		}
	})
}

func TestWrapperErrors(t *testing.T) {
	mem := mainmem.New(1 << 20)
	if _, err := NewWrapper(mem); err == nil {
		t.Error("empty wrapper should fail")
	}
	if _, err := NewWrapper(mem, WrapperField{"a", 0}); err == nil {
		t.Error("zero-size field should fail")
	}
	if _, err := NewWrapper(mem, WrapperField{"a", 4}, WrapperField{"a", 4}); err == nil {
		t.Error("duplicate field should fail")
	}
	w, err := NewWrapper(mem, WrapperField{"a", 4})
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown field access should panic")
			}
		}()
		w.FieldAddr("nope")
	}()
	if err := w.Free(); err != nil {
		t.Fatal(err)
	}
	if err := w.Free(); err == nil {
		t.Error("double free should fail")
	}
}

func TestWrapperLayout(t *testing.T) {
	mem := mainmem.New(1 << 20)
	w, err := NewWrapper(mem,
		WrapperField{"hdr", 4},     // padded to 16
		WrapperField{"img", 100},   // padded to 112
		WrapperField{"result", 20}, // padded to 32
	)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 16+112+32 {
		t.Fatalf("size = %d, want 160", w.Size())
	}
	if uint32(w.Addr())%mainmem.AlignCacheLine != 0 {
		t.Fatalf("wrapper base %#x not cache-line aligned", uint32(w.Addr()))
	}
	for _, f := range []string{"hdr", "img", "result"} {
		if uint32(w.FieldAddr(f))%16 != 0 {
			t.Errorf("field %s at %#x not quadword aligned", f, uint32(w.FieldAddr(f)))
		}
	}
	if w.FieldAddr("img") != w.Addr()+16 || w.FieldAddr("result") != w.Addr()+128 {
		t.Fatal("field offsets wrong")
	}
	if err := w.Free(); err != nil {
		t.Fatal(err)
	}
}

func TestWrapperFloat32RoundTrip(t *testing.T) {
	mem := mainmem.New(1 << 20)
	w, err := NewWrapper(mem, WrapperField{"v", 64})
	if err != nil {
		t.Fatal(err)
	}
	in := []float32{0, 1.5, -3.25, 1e-20, 3.4e38}
	w.SetFloat32s("v", in)
	out := w.Float32s("v", len(in))
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("float round trip [%d]: %v != %v", i, in[i], out[i])
		}
	}
	if err := w.Free(); err != nil {
		t.Fatal(err)
	}
}

func TestHelpersRoundTrip(t *testing.T) {
	f := []float32{1, 2.5, -7}
	b := make([]byte, 12)
	PutFloat32s(b, f)
	got := GetFloat32s(b)
	for i := range f {
		if got[i] != f[i] {
			t.Fatalf("float helpers: %v != %v", got, f)
		}
	}
	u := []uint32{7, 0xFFFFFFFF, 0}
	bu := make([]byte, 12)
	PutUint32s(bu, u)
	gu := GetUint32s(bu)
	for i := range u {
		if gu[i] != u[i] {
			t.Fatalf("uint helpers: %v != %v", gu, u)
		}
	}
}

func TestOpenFailsOnBusySPE(t *testing.T) {
	runOnCell(t, func(ctx *cell.Context) {
		a, err := Open(ctx, 0, arithKernel(Polling))
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := Open(ctx, 0, arithKernel(Polling)); err == nil ||
			!strings.Contains(err.Error(), "already running") {
			t.Errorf("second Open on same SPE: %v", err)
		}
		if err := a.Close(); err != nil {
			t.Error(err)
		}
	})
}

func TestWaitTimeout(t *testing.T) {
	// A kernel that takes 10us: a 1us wait times out (invocation stays in
	// flight), a later generous wait collects it. Both completion modes.
	for _, mode := range []CompletionMode{Polling, Interrupt} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			slow := KernelSpec{
				Name:      "slow",
				CodeBytes: 2048,
				Mode:      mode,
				Functions: map[Opcode]KernelFunc{
					1: func(ctx *spe.Context, _ mainmem.Addr) uint32 {
						ctx.ComputeCycles(32000, "slow") // 10 us
						return 7
					},
				},
			}
			runOnCell(t, func(ctx *cell.Context) {
				iface, err := Open(ctx, 0, slow)
				if err != nil {
					t.Error(err)
					return
				}
				if _, _, err := iface.WaitTimeout(sim.Microsecond); err == nil {
					t.Error("WaitTimeout with nothing in flight should fail")
				}
				if err := iface.Send(1, 0); err != nil {
					t.Error(err)
					return
				}
				if _, ok, err := iface.WaitTimeout(sim.Microsecond); ok || err != nil {
					t.Errorf("1us wait: ok=%v err=%v, want timeout", ok, err)
				}
				if !iface.InFlight() {
					t.Error("invocation should remain in flight after timeout")
				}
				res, ok, err := iface.WaitTimeout(100 * sim.Microsecond)
				if !ok || err != nil || res != 7 {
					t.Errorf("second wait: res=%d ok=%v err=%v", res, ok, err)
				}
				if err := iface.Close(); err != nil {
					t.Error(err)
				}
			})
		})
	}
}

func TestSignalDelivery(t *testing.T) {
	// §3.4's alternative command channel: opcode via signal register 1,
	// wrapper address via register 2. Both completion modes still work.
	for _, mode := range []CompletionMode{Polling, Interrupt} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			spec := arithKernel(mode)
			spec.Delivery = SignalDelivery
			runOnCell(t, func(ctx *cell.Context) {
				iface, err := Open(ctx, 0, spec)
				if err != nil {
					t.Error(err)
					return
				}
				w, err := NewWrapper(ctx.Memory(),
					WrapperField{"in", 4}, WrapperField{"out", 4})
				if err != nil {
					t.Error(err)
					return
				}
				for i := uint32(1); i <= 3; i++ {
					w.SetUint32("in", i)
					if _, err := iface.SendAndWait(opDouble, w.Addr()); err != nil {
						t.Error(err)
						return
					}
					if got := w.Uint32("out"); got != 2*i {
						t.Errorf("double(%d) = %d via signals", i, got)
					}
				}
				if err := iface.Close(); err != nil {
					t.Error(err)
				}
				if err := w.Free(); err != nil {
					t.Error(err)
				}
			})
		})
	}
}

func TestDeliveryModeString(t *testing.T) {
	if MailboxDelivery.String() != "mailbox" || SignalDelivery.String() != "signals" {
		t.Fatal("delivery mode strings wrong")
	}
}
