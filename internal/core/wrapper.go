package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"cellport/internal/mainmem"
)

// Byte order of the simulated machine (the Cell is big-endian). Kernels
// and wrappers must agree; the helpers below keep both sides consistent.
var ByteOrder = binary.BigEndian

// WrapperField describes one member collected into a data wrapper.
type WrapperField struct {
	Name string
	Size uint32 // bytes
}

// Wrapper is an aligned main-memory block collecting the data an SPE
// kernel needs: the §3.3 "common data structure" whose address travels
// through the mailbox. Every field starts on a quadword boundary so the
// kernel can DMA any field independently; the whole block is allocated on
// a cache-line boundary.
type Wrapper struct {
	mem     *mainmem.Memory
	base    mainmem.Addr
	size    uint32
	offsets map[string]uint32
	sizes   map[string]uint32
	freed   bool
}

// NewWrapper lays out the fields (each padded to a multiple of 16 bytes)
// and allocates the block (the malloc_align analog).
func NewWrapper(mem *mainmem.Memory, fields ...WrapperField) (*Wrapper, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("core: wrapper with no fields")
	}
	w := &Wrapper{
		mem:     mem,
		offsets: make(map[string]uint32, len(fields)),
		sizes:   make(map[string]uint32, len(fields)),
	}
	var off uint32
	for _, f := range fields {
		if f.Size == 0 {
			return nil, fmt.Errorf("core: wrapper field %q has zero size", f.Name)
		}
		if _, dup := w.offsets[f.Name]; dup {
			return nil, fmt.Errorf("core: duplicate wrapper field %q", f.Name)
		}
		w.offsets[f.Name] = off
		w.sizes[f.Name] = f.Size
		off += (f.Size + 15) &^ 15
	}
	w.size = off
	base, err := mem.Alloc(off, mainmem.AlignCacheLine)
	if err != nil {
		return nil, fmt.Errorf("core: allocating %d-byte wrapper: %w", off, err)
	}
	w.base = base
	return w, nil
}

// Addr returns the wrapper's main-memory base address — the value passed
// through the mailbox to the kernel.
func (w *Wrapper) Addr() mainmem.Addr { return w.base }

// Size returns the wrapper size in bytes (a multiple of 16).
func (w *Wrapper) Size() uint32 { return w.size }

// FieldAddr returns the main-memory address of a field.
func (w *Wrapper) FieldAddr(name string) mainmem.Addr {
	off, ok := w.offsets[name]
	if !ok {
		panic(fmt.Sprintf("core: wrapper has no field %q", name))
	}
	return w.base + mainmem.Addr(off)
}

// FieldSize returns a field's declared size in bytes.
func (w *Wrapper) FieldSize(name string) uint32 {
	sz, ok := w.sizes[name]
	if !ok {
		panic(fmt.Sprintf("core: wrapper has no field %q", name))
	}
	return sz
}

// Bytes returns the mutable backing bytes of a field.
func (w *Wrapper) Bytes(name string) []byte {
	return w.mem.Bytes(w.FieldAddr(name), w.FieldSize(name))
}

// SetUint32 stores v into a (>=4-byte) field.
func (w *Wrapper) SetUint32(name string, v uint32) { ByteOrder.PutUint32(w.Bytes(name), v) }

// Uint32 loads the first word of a field.
func (w *Wrapper) Uint32(name string) uint32 { return ByteOrder.Uint32(w.Bytes(name)) }

// SetFloat32s stores a []float32 into a field (which must be large enough).
func (w *Wrapper) SetFloat32s(name string, vals []float32) {
	b := w.Bytes(name)
	if len(vals)*4 > len(b) {
		panic(fmt.Sprintf("core: field %q holds %d bytes, need %d", name, len(b), len(vals)*4))
	}
	PutFloat32s(b, vals)
}

// Float32s loads n float32 values from a field.
func (w *Wrapper) Float32s(name string, n int) []float32 {
	b := w.Bytes(name)
	if n*4 > len(b) {
		panic(fmt.Sprintf("core: field %q holds %d bytes, need %d", name, len(b), n*4))
	}
	return GetFloat32s(b[:n*4])
}

// Free releases the wrapper's memory (the free_align analog in
// Listing 4). Double frees are errors.
func (w *Wrapper) Free() error {
	if w.freed {
		return fmt.Errorf("core: wrapper double free at %#x", uint32(w.base))
	}
	w.freed = true
	return w.mem.Free(w.base)
}

// --- raw big-endian helpers shared by wrappers and kernels ---------------

// PutFloat32s encodes vals into b in machine byte order.
func PutFloat32s(b []byte, vals []float32) {
	for i, v := range vals {
		ByteOrder.PutUint32(b[i*4:], math.Float32bits(v))
	}
}

// GetFloat32s decodes len(b)/4 float32 values from b.
func GetFloat32s(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(ByteOrder.Uint32(b[i*4:]))
	}
	return out
}

// PutUint32s encodes vals into b in machine byte order.
func PutUint32s(b []byte, vals []uint32) {
	for i, v := range vals {
		ByteOrder.PutUint32(b[i*4:], v)
	}
}

// GetUint32s decodes len(b)/4 uint32 values from b.
func GetUint32s(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = ByteOrder.Uint32(b[i*4:])
	}
	return out
}
