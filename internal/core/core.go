// Package core implements the paper's porting framework — its primary
// contribution (§3):
//
//   - KernelSpec / BuildProgram: the SPE-side function-dispatcher template
//     of Listing 1 — an idle loop reading opcodes from the inbound mailbox,
//     invoking the selected kernel function with a main-memory wrapper
//     address, and reporting the result through the polled or interrupting
//     outbound mailbox.
//   - Interface: the PPE-side SPEInterface stub of Listings 2–3, with
//     Send / Wait / SendAndWait / Close and the 2-way mailbox protocol
//     (command word, address word, result word). Kernels are statically
//     scheduled: the SPE thread is started once and kept in an idle state
//     between invocations, avoiding thread create/destroy costs (§3.3).
//   - Wrapper: the aligned data-wrapper structure (the
//     FILL_MSG_FROM_COLORIMAGE analog) that collects the class members a
//     kernel needs into one DMA-able block with quadword-aligned fields.
//
// Because every kernel version adheres to the same Interface, optimized
// kernel variants plug in without touching the main application — the
// modularity argument of §4.1.
package core

import (
	"fmt"

	"cellport/internal/cell"
	"cellport/internal/mainmem"
	"cellport/internal/sim"
	"cellport/internal/spe"
)

// Opcode selects a kernel function in the dispatcher.
type Opcode uint32

// Reserved opcodes.
const (
	// OpExit terminates the kernel's idle loop (SPU_EXIT in Listing 1).
	OpExit Opcode = 0xFFFFFFFF
	// ResultUnknownOpcode is written back when the dispatcher receives an
	// opcode with no registered function.
	ResultUnknownOpcode uint32 = 0xFFFFFFFE
	// ResultDMAFault is written back when a transfer error (corrupted DMA
	// delivery) was detected during the invocation; the invocation is
	// retryable — its inputs in main memory are intact.
	ResultDMAFault uint32 = 0xFFFFFFFD
)

// CompletionMode selects how the kernel reports completion (Listing 1
// supports both).
type CompletionMode int

// Completion modes.
const (
	// Polling: the kernel writes the ordinary outbound mailbox and the PPE
	// spins on spe_stat_out_mbox (Listing 3).
	Polling CompletionMode = iota
	// Interrupt: the kernel writes the interrupting outbound mailbox and
	// the PPE blocks until notified.
	Interrupt
)

func (m CompletionMode) String() string {
	if m == Interrupt {
		return "interrupt"
	}
	return "polling"
}

// DeliveryMode selects the PPE→SPE command channel (§3.4: "typically,
// this channel is based on the use of mailboxes or signals").
type DeliveryMode int

// Delivery modes.
const (
	// MailboxDelivery writes opcode and address to the 4-deep inbound
	// mailbox (Listing 3).
	MailboxDelivery DeliveryMode = iota
	// SignalDelivery writes the opcode to signal-notification register 1
	// and the wrapper address to register 2 (both in overwrite mode for
	// this protocol: one command in flight per kernel).
	SignalDelivery
)

func (d DeliveryMode) String() string {
	if d == SignalDelivery {
		return "signals"
	}
	return "mailbox"
}

// KernelFunc is one function of an SPE kernel. It receives the SPE
// execution context and the main-memory address of the kernel's data
// wrapper, and returns the 32-bit result word for the mailbox.
type KernelFunc func(ctx *spe.Context, wrapper mainmem.Addr) uint32

// KernelSpec describes an SPE kernel assembled from the dispatcher
// template.
type KernelSpec struct {
	// Name labels the kernel in traces and errors.
	Name string
	// CodeBytes is the program-image footprint in the local store.
	CodeBytes uint32
	// Functions maps opcodes to kernel functions.
	Functions map[Opcode]KernelFunc
	// Mode selects polling or interrupt completion.
	Mode CompletionMode
	// Delivery selects the command channel (mailbox or signals).
	Delivery DeliveryMode
	// DispatchCycles is SPU overhead per invocation (mailbox reads, the
	// switch, mailbox write). Zero selects a 60-cycle default.
	DispatchCycles float64
}

// BuildProgram instantiates the Listing-1 dispatcher for the spec.
func BuildProgram(spec KernelSpec) (spe.Program, error) {
	if len(spec.Functions) == 0 {
		return spe.Program{}, fmt.Errorf("core: kernel %q has no functions", spec.Name)
	}
	if spec.CodeBytes == 0 {
		return spe.Program{}, fmt.Errorf("core: kernel %q has zero code size", spec.Name)
	}
	for op := range spec.Functions {
		if op == OpExit {
			return spe.Program{}, fmt.Errorf("core: kernel %q registers reserved opcode OpExit", spec.Name)
		}
	}
	dispatch := spec.DispatchCycles
	if dispatch <= 0 {
		dispatch = 60
	}
	return spe.Program{
		Name:      spec.Name,
		CodeBytes: spec.CodeBytes,
		Main: func(ctx *spe.Context) {
			for {
				var op Opcode
				var addr mainmem.Addr
				if spec.Delivery == SignalDelivery {
					op = Opcode(ctx.ReadSignal1())
					if op == OpExit {
						return
					}
					addr = mainmem.Addr(ctx.ReadSignal2())
				} else {
					op = Opcode(ctx.ReadInMbox())
					if op == OpExit {
						return
					}
					addr = mainmem.Addr(ctx.ReadInMbox())
				}
				ctx.ComputeCycles(dispatch, "dispatch")
				var result uint32
				if fn, ok := spec.Functions[op]; ok {
					// Each invocation starts from a clean data region, as a
					// real kernel's static buffers would be reused.
					ctx.Store().Reset()
					ctx.ClearDMAError()
					result = fn(ctx, addr)
					if ctx.DMAError() {
						result = ResultDMAFault
					}
				} else {
					result = ResultUnknownOpcode
				}
				switch spec.Mode {
				case Interrupt:
					ctx.WriteOutIntrMbox(result)
				default:
					ctx.WriteOutMbox(result)
				}
			}
		},
	}, nil
}

// Interface is the PPE-side stub managing one SPE kernel (the
// SPEInterface class, Listing 2).
type Interface struct {
	ctx      *cell.Context
	speID    int
	spec     KernelSpec
	open     bool
	inFlight bool

	invocations uint64
}

// Open loads the kernel on the given SPE and returns the stub
// (thread_open). The SPE enters its idle loop immediately.
func Open(ctx *cell.Context, speID int, spec KernelSpec) (*Interface, error) {
	prog, err := BuildProgram(spec)
	if err != nil {
		return nil, err
	}
	if err := ctx.LoadSPE(speID, prog); err != nil {
		return nil, fmt.Errorf("core: opening kernel %q: %w", spec.Name, err)
	}
	return &Interface{ctx: ctx, speID: speID, spec: spec, open: true}, nil
}

// Name returns the kernel name.
func (i *Interface) Name() string { return i.spec.Name }

// Spec returns the kernel spec (so a supervisor can reopen the kernel on
// another SPE).
func (i *Interface) Spec() KernelSpec { return i.spec }

// Abandon marks the interface closed without the OpExit handshake, for
// SPEs that have crashed and can no longer answer mailbox traffic.
func (i *Interface) Abandon() {
	i.open = false
	i.inFlight = false
}

// SPE returns the SPE index the kernel is scheduled on.
func (i *Interface) SPE() int { return i.speID }

// Invocations reports how many kernel calls completed.
func (i *Interface) Invocations() uint64 { return i.invocations }

// Send issues a kernel invocation without waiting: it writes the opcode
// and the wrapper address to the SPE's inbound mailbox. Exactly one
// invocation may be in flight per Interface.
func (i *Interface) Send(op Opcode, wrapper mainmem.Addr) error {
	if !i.open {
		return fmt.Errorf("core: %s: Send on closed interface", i.spec.Name)
	}
	if i.inFlight {
		return fmt.Errorf("core: %s: Send while an invocation is in flight", i.spec.Name)
	}
	if op == OpExit {
		return fmt.Errorf("core: %s: OpExit must be sent via Close", i.spec.Name)
	}
	if i.spec.Delivery == SignalDelivery {
		i.ctx.SendSignal1(i.speID, uint32(op))
		i.ctx.SendSignal2(i.speID, uint32(wrapper))
	} else {
		i.ctx.WriteInMbox(i.speID, uint32(op))
		i.ctx.WriteInMbox(i.speID, uint32(wrapper))
	}
	i.inFlight = true
	return nil
}

// Wait blocks until the in-flight invocation completes and returns the
// kernel's result word.
func (i *Interface) Wait() (uint32, error) {
	if !i.inFlight {
		return 0, fmt.Errorf("core: %s: Wait with no invocation in flight", i.spec.Name)
	}
	var result uint32
	if i.spec.Mode == Interrupt {
		result = i.ctx.WaitOutIntrMbox(i.speID)
	} else {
		result = i.ctx.PollOutMbox(i.speID)
	}
	i.inFlight = false
	i.invocations++
	if result == ResultUnknownOpcode {
		return result, fmt.Errorf("core: %s: kernel reported unknown opcode", i.spec.Name)
	}
	return result, nil
}

// SendAndWait is the Listing-3 protocol: command, address, then block for
// the result.
func (i *Interface) SendAndWait(op Opcode, wrapper mainmem.Addr) (uint32, error) {
	if err := i.Send(op, wrapper); err != nil {
		return 0, err
	}
	return i.Wait()
}

// InFlight reports whether an invocation is outstanding.
func (i *Interface) InFlight() bool { return i.inFlight }

// Close sends OpExit and waits for the SPE program to return
// (thread_close). The SPE becomes free for another kernel.
func (i *Interface) Close() error {
	if !i.open {
		return nil
	}
	if i.inFlight {
		if _, err := i.Wait(); err != nil {
			return fmt.Errorf("core: %s: draining before close: %w", i.spec.Name, err)
		}
	}
	if i.spec.Delivery == SignalDelivery {
		i.ctx.SendSignal1(i.speID, uint32(OpExit))
	} else {
		i.ctx.WriteInMbox(i.speID, uint32(OpExit))
	}
	i.ctx.WaitSPE(i.speID)
	i.open = false
	return nil
}

// WaitTimeout is Listing 2's `int Wait(int timeout)`: it blocks up to d of
// virtual time for the in-flight invocation. On timeout it returns
// ok=false and the invocation STAYS in flight — a later Wait or
// WaitTimeout can still collect it.
func (i *Interface) WaitTimeout(d sim.Duration) (result uint32, ok bool, err error) {
	if !i.inFlight {
		return 0, false, fmt.Errorf("core: %s: WaitTimeout with no invocation in flight", i.spec.Name)
	}
	if i.spec.Mode == Interrupt {
		result, ok = i.ctx.WaitOutIntrMboxTimeout(i.speID, d)
	} else {
		result, ok = i.ctx.PollOutMboxTimeout(i.speID, d)
	}
	if !ok {
		return 0, false, nil
	}
	i.inFlight = false
	i.invocations++
	if result == ResultUnknownOpcode {
		return result, true, fmt.Errorf("core: %s: kernel reported unknown opcode", i.spec.Name)
	}
	return result, true, nil
}
