package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"cellport/internal/mainmem"
)

// Property: for any field list, the wrapper layout keeps every field
// quadword-aligned, in declaration order, non-overlapping, and inside the
// allocation; freeing returns the memory.
func TestPropWrapperLayout(t *testing.T) {
	f := func(sizesRaw []uint16) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > 20 {
			return true
		}
		mem := mainmem.New(4 << 20)
		var fields []WrapperField
		for i, s := range sizesRaw {
			fields = append(fields, WrapperField{
				Name: fmt.Sprintf("f%d", i),
				Size: uint32(s)%5000 + 1,
			})
		}
		w, err := NewWrapper(mem, fields...)
		if err != nil {
			return false
		}
		prevEnd := uint32(w.Addr())
		for _, fl := range fields {
			addr := uint32(w.FieldAddr(fl.Name))
			if addr%16 != 0 {
				return false
			}
			if addr < prevEnd {
				return false // overlap or disorder
			}
			if w.FieldSize(fl.Name) != fl.Size {
				return false
			}
			if addr+fl.Size > uint32(w.Addr())+w.Size() {
				return false
			}
			prevEnd = addr + fl.Size
		}
		if err := w.Free(); err != nil {
			return false
		}
		return mem.Allocated() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: field bytes are disjoint — writing a marker through one field
// never shows through another.
func TestPropWrapperFieldIsolation(t *testing.T) {
	f := func(a, b uint8) bool {
		mem := newTestMemory()
		w, err := NewWrapper(mem,
			WrapperField{Name: "a", Size: uint32(a)%200 + 1},
			WrapperField{Name: "b", Size: uint32(b)%200 + 1},
		)
		if err != nil {
			return false
		}
		for i := range w.Bytes("a") {
			w.Bytes("a")[i] = 0xAA
		}
		for _, v := range w.Bytes("b") {
			if v != 0 {
				return false
			}
		}
		return w.Free() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func newTestMemory() *mainmem.Memory { return mainmem.New(1 << 20) }
