// Package amdahl implements the paper's §4.2 performance estimator: the
// Amdahl's-law sanity-check equations that predict whole-application
// speed-up from per-kernel coverage fractions and per-kernel speed-ups,
// for the sequential (Fig. 4b) and grouped-parallel (Fig. 4c) schedules.
//
//	Eq. 1: one kernel.
//	Eq. 2: n kernels executed sequentially.
//	Eq. 3: n kernels in G groups; kernels within a group run in parallel,
//	       groups run sequentially; a group costs its slowest member.
//
// The estimator is what lets a porting effort decide whether optimizing a
// kernel from 10× to 100× is worth it before doing the work (it usually
// is not when the kernel covers 10% of the runtime: 1.0989 vs 1.1098).
package amdahl

import (
	"fmt"
	"math"
)

// Kernel describes one offloaded kernel for estimation purposes.
type Kernel struct {
	// Name identifies the kernel in reports.
	Name string
	// Fraction is Kfr: the kernel's share of original application
	// execution time, in (0, 1].
	Fraction float64
	// SpeedUp is Kspeed-up: the kernel's speed-up over its original
	// (PPE) execution, > 0.
	SpeedUp float64
}

func (k Kernel) validate() error {
	if k.Fraction <= 0 || k.Fraction > 1 {
		return fmt.Errorf("amdahl: kernel %q fraction %v outside (0,1]", k.Name, k.Fraction)
	}
	if k.SpeedUp <= 0 || math.IsNaN(k.SpeedUp) || math.IsInf(k.SpeedUp, 0) {
		return fmt.Errorf("amdahl: kernel %q speed-up %v must be positive and finite", k.Name, k.SpeedUp)
	}
	return nil
}

// SpeedUp1 evaluates Eq. 1 for a single kernel:
//
//	Sapp = 1 / ((1-Kfr) + Kfr/Kspeedup)
func SpeedUp1(k Kernel) (float64, error) {
	if err := k.validate(); err != nil {
		return 0, err
	}
	return 1 / ((1 - k.Fraction) + k.Fraction/k.SpeedUp), nil
}

// SpeedUpSequential evaluates Eq. 2 for kernels executed one after the
// other (Fig. 4b):
//
//	Sapp = 1 / ((1-ΣKfr) + Σ Kfr_i/Kspeedup_i)
func SpeedUpSequential(kernels []Kernel) (float64, error) {
	if len(kernels) == 0 {
		return 0, fmt.Errorf("amdahl: no kernels")
	}
	var covered, residual float64
	for _, k := range kernels {
		if err := k.validate(); err != nil {
			return 0, err
		}
		covered += k.Fraction
		residual += k.Fraction / k.SpeedUp
	}
	if covered > 1+1e-9 {
		return 0, fmt.Errorf("amdahl: kernel fractions sum to %v > 1", covered)
	}
	if covered > 1 {
		covered = 1
	}
	return 1 / ((1 - covered) + residual), nil
}

// Group is a set of kernels scheduled to run in parallel on distinct SPEs.
type Group []Kernel

// SpeedUpGrouped evaluates Eq. 3 for kernels organized in sequentially
// executed groups whose members run in parallel (Fig. 4c):
//
//	Sapp = 1 / ((1-ΣKfr) + Σ_groups max_k (Kfr_k/Kspeedup_k))
func SpeedUpGrouped(groups []Group) (float64, error) {
	if len(groups) == 0 {
		return 0, fmt.Errorf("amdahl: no groups")
	}
	var covered, residual float64
	for gi, g := range groups {
		if len(g) == 0 {
			return 0, fmt.Errorf("amdahl: group %d is empty", gi)
		}
		groupMax := 0.0
		for _, k := range g {
			if err := k.validate(); err != nil {
				return 0, err
			}
			covered += k.Fraction
			if t := k.Fraction / k.SpeedUp; t > groupMax {
				groupMax = t
			}
		}
		residual += groupMax
	}
	if covered > 1+1e-9 {
		return 0, fmt.Errorf("amdahl: kernel fractions sum to %v > 1", covered)
	}
	if covered > 1 {
		covered = 1
	}
	return 1 / ((1 - covered) + residual), nil
}

// UpperBound returns the asymptotic speed-up limit for the given total
// kernel coverage (all kernels infinitely fast): 1/(1-ΣKfr).
func UpperBound(kernels []Kernel) float64 {
	var covered float64
	for _, k := range kernels {
		covered += k.Fraction
	}
	if covered >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - covered)
}

// WorthIt compares the application-level gain of improving one kernel's
// speed-up from 'from' to 'to' while the other kernels stay fixed (the
// §4.2 effort question). It returns the two application speed-ups and
// their ratio.
func WorthIt(kernels []Kernel, name string, from, to float64) (before, after, gain float64, err error) {
	mk := func(s float64) ([]Kernel, error) {
		out := make([]Kernel, len(kernels))
		found := false
		for i, k := range kernels {
			if k.Name == name {
				k.SpeedUp = s
				found = true
			}
			out[i] = k
		}
		if !found {
			return nil, fmt.Errorf("amdahl: no kernel named %q", name)
		}
		return out, nil
	}
	ks, err := mk(from)
	if err != nil {
		return 0, 0, 0, err
	}
	if before, err = SpeedUpSequential(ks); err != nil {
		return 0, 0, 0, err
	}
	ks, err = mk(to)
	if err != nil {
		return 0, 0, 0, err
	}
	if after, err = SpeedUpSequential(ks); err != nil {
		return 0, 0, 0, err
	}
	return before, after, after / before, nil
}
