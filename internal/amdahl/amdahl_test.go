package amdahl

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestPaperEq1Examples reproduces the worked §4.2 example: a kernel
// covering 10% sped up 10× gives 1.0989; sped up 100× gives 1.1098.
func TestPaperEq1Examples(t *testing.T) {
	s10, err := SpeedUp1(Kernel{Name: "k", Fraction: 0.10, SpeedUp: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s10, 1.0989, 0.0001) {
		t.Errorf("Eq1(10%%,10x) = %.4f, want 1.0989", s10)
	}
	s100, err := SpeedUp1(Kernel{Name: "k", Fraction: 0.10, SpeedUp: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s100, 1.1098, 0.0001) {
		t.Errorf("Eq1(10%%,100x) = %.4f, want 1.1098", s100)
	}
}

func TestValidation(t *testing.T) {
	bad := []Kernel{
		{Name: "f0", Fraction: 0, SpeedUp: 10},
		{Name: "f2", Fraction: 2, SpeedUp: 10},
		{Name: "s0", Fraction: 0.5, SpeedUp: 0},
		{Name: "sneg", Fraction: 0.5, SpeedUp: -3},
		{Name: "snan", Fraction: 0.5, SpeedUp: math.NaN()},
	}
	for _, k := range bad {
		if _, err := SpeedUp1(k); err == nil {
			t.Errorf("kernel %q should be rejected", k.Name)
		}
	}
	if _, err := SpeedUpSequential(nil); err == nil {
		t.Error("empty kernel list should be rejected")
	}
	if _, err := SpeedUpGrouped([]Group{{}}); err == nil {
		t.Error("empty group should be rejected")
	}
	if _, err := SpeedUpSequential([]Kernel{
		{Name: "a", Fraction: 0.7, SpeedUp: 10},
		{Name: "b", Fraction: 0.7, SpeedUp: 10},
	}); err == nil {
		t.Error("fractions summing over 1 should be rejected")
	}
}

func TestEq2ReducesToEq1(t *testing.T) {
	k := Kernel{Name: "only", Fraction: 0.54, SpeedUp: 52.23}
	s1, err := SpeedUp1(k)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SpeedUpSequential([]Kernel{k})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s1, s2, 1e-12) {
		t.Fatalf("Eq2 single kernel %.6f != Eq1 %.6f", s2, s1)
	}
}

func TestEq3SingletonGroupsEqualEq2(t *testing.T) {
	ks := []Kernel{
		{Name: "a", Fraction: 0.08, SpeedUp: 53.67},
		{Name: "b", Fraction: 0.54, SpeedUp: 52.23},
		{Name: "c", Fraction: 0.06, SpeedUp: 15.99},
	}
	s2, err := SpeedUpSequential(ks)
	if err != nil {
		t.Fatal(err)
	}
	groups := make([]Group, len(ks))
	for i, k := range ks {
		groups[i] = Group{k}
	}
	s3, err := SpeedUpGrouped(groups)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s2, s3, 1e-12) {
		t.Fatalf("Eq3 singleton groups %.6f != Eq2 %.6f", s3, s2)
	}
}

func TestGroupingNeverHurts(t *testing.T) {
	ks := []Kernel{
		{Name: "a", Fraction: 0.2, SpeedUp: 20},
		{Name: "b", Fraction: 0.3, SpeedUp: 30},
		{Name: "c", Fraction: 0.1, SpeedUp: 5},
	}
	s2, err := SpeedUpSequential(ks)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := SpeedUpGrouped([]Group{{ks[0], ks[1], ks[2]}})
	if err != nil {
		t.Fatal(err)
	}
	if s3 < s2 {
		t.Fatalf("one parallel group (%.4f) should beat sequential (%.4f)", s3, s2)
	}
}

func TestUpperBound(t *testing.T) {
	ks := []Kernel{{Name: "a", Fraction: 0.5, SpeedUp: 10}, {Name: "b", Fraction: 0.25, SpeedUp: 10}}
	if got := UpperBound(ks); !almost(got, 4, 1e-12) {
		t.Fatalf("UpperBound = %v, want 4", got)
	}
	full := []Kernel{{Name: "a", Fraction: 1, SpeedUp: 10}}
	if !math.IsInf(UpperBound(full), 1) {
		t.Fatal("full coverage upper bound should be +Inf")
	}
}

func TestWorthIt(t *testing.T) {
	ks := []Kernel{{Name: "k", Fraction: 0.10, SpeedUp: 10}}
	before, after, gain, err := WorthIt(ks, "k", 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(before, 1.0989, 0.0001) || !almost(after, 1.1098, 0.0001) {
		t.Fatalf("WorthIt = %.4f -> %.4f", before, after)
	}
	if gain > 1.02 {
		t.Fatalf("gain %.4f should be marginal — the paper's point", gain)
	}
	if _, _, _, err := WorthIt(ks, "missing", 1, 2); err == nil {
		t.Fatal("unknown kernel name should fail")
	}
}

// Property: Eq. 2 results are bounded by 1 <= S <= UpperBound when every
// kernel speed-up is >= 1.
func TestPropEq2Bounds(t *testing.T) {
	f := func(fracRaw []uint8, speedRaw []uint8) bool {
		n := len(fracRaw)
		if n == 0 || n > 6 {
			return true
		}
		var ks []Kernel
		total := 0.0
		for i, fr := range fracRaw {
			f := (float64(fr) + 1) / 256 / float64(n) // keeps sum <= 1
			s := 1.0
			if i < len(speedRaw) {
				s = float64(speedRaw[i]) + 1
			}
			total += f
			ks = append(ks, Kernel{Name: "k", Fraction: f, SpeedUp: s})
		}
		got, err := SpeedUpSequential(ks)
		if err != nil {
			return false
		}
		return got >= 1-1e-9 && got <= UpperBound(ks)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging any two adjacent groups never decreases Eq. 3's
// estimate (more parallelism cannot hurt in this model).
func TestPropMergingGroupsMonotone(t *testing.T) {
	f := func(fracRaw [4]uint8, speedRaw [4]uint8) bool {
		var ks []Kernel
		for i := 0; i < 4; i++ {
			ks = append(ks, Kernel{
				Name:     "k",
				Fraction: (float64(fracRaw[i]) + 1) / 1200,
				SpeedUp:  float64(speedRaw[i]) + 1,
			})
		}
		sep, err := SpeedUpGrouped([]Group{{ks[0]}, {ks[1]}, {ks[2]}, {ks[3]}})
		if err != nil {
			return false
		}
		merged, err := SpeedUpGrouped([]Group{{ks[0], ks[1]}, {ks[2], ks[3]}})
		if err != nil {
			return false
		}
		return merged >= sep-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
