package eib

import (
	"math"
	"testing"

	"cellport/internal/sim"
)

// TestAbortReleasesWaiterSkipsOnDone: aborting a mid-flight transfer
// wakes its waiter immediately, marks it aborted, and does NOT run its
// completion callback — the data never arrived.
func TestAbortReleasesWaiterSkipsOnDone(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, DefaultConfig())
	delivered := false
	var tr *Transfer
	var wokeAt sim.Time
	e.Spawn("dma", func(p *sim.Proc) {
		tr = b.Start(PortMemory, SPEPort(0), 25_600_000_000, func() { delivered = true }) // ~1 s
		tr.Wait(p)
		wokeAt = p.Now()
	})
	e.Spawn("killer", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		tr.Abort()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt != sim.Time(sim.Millisecond) {
		t.Errorf("waiter resumed at %v, want the abort time 1ms", wokeAt)
	}
	if !tr.Aborted() || !tr.Done() {
		t.Errorf("Aborted=%v Done=%v, want true/true", tr.Aborted(), tr.Done())
	}
	if delivered {
		t.Error("onDone ran for an aborted transfer")
	}
	if b.ActiveTransfers() != 0 {
		t.Errorf("%d transfers still active after abort", b.ActiveTransfers())
	}
}

// TestAbortFreesBandwidthForSurvivors: when one of two flows sharing the
// memory port is aborted, the survivor's remaining bytes move at full
// port rate — abort must trigger reallocation, not leak allocated
// bandwidth.
func TestAbortFreesBandwidthForSurvivors(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, DefaultConfig())
	bw := b.Config().PortBandwidth
	size := int64(bw) // 1 s alone at port bw
	var victim *Transfer
	var survivorDone sim.Time
	e.Spawn("victim", func(p *sim.Proc) {
		victim = b.Start(PortMemory, SPEPort(0), size, nil)
		victim.Wait(p)
	})
	e.Spawn("survivor", func(p *sim.Proc) {
		tr := b.Start(PortMemory, SPEPort(1), size, nil)
		tr.Wait(p)
		survivorDone = p.Now()
	})
	e.Spawn("killer", func(p *sim.Proc) {
		p.Sleep(sim.Duration(sim.Second / 2))
		victim.Abort()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Shared memory port for 0.5 s (half rate each: 0.25 s of progress),
	// then full rate for the remaining 0.75 s of bytes: 1.25 s total.
	if got := survivorDone.Seconds(); math.Abs(got-1.25) > 1e-6 {
		t.Fatalf("survivor finished at %.9fs, want 1.25s (bandwidth reclaimed on abort)", got)
	}
}

// TestAbortIdempotentAndAfterDone: aborting twice, or aborting a transfer
// that already completed, is a no-op.
func TestAbortIdempotentAndAfterDone(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, DefaultConfig())
	delivered := 0
	e.Spawn("dma", func(p *sim.Proc) {
		tr := b.Start(PortMemory, SPEPort(0), 1024, func() { delivered++ })
		tr.Wait(p)
		tr.Abort() // already done: must not unmark completion
		if tr.Aborted() {
			t.Error("Abort after completion marked the transfer aborted")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("onDone ran %d times, want 1", delivered)
	}
}
