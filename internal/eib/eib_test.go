package eib

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"cellport/internal/sim"
)

func run(t *testing.T, e *sim.Engine) {
	t.Helper()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleTransferPortLimited(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, DefaultConfig())
	var finished sim.Time
	e.Spawn("dma", func(p *sim.Proc) {
		tr := b.Start(PortMemory, SPEPort(0), 25_600_000_000, nil) // 1 s at port bw
		tr.Wait(p)
		finished = p.Now()
	})
	run(t, e)
	if got := finished.Seconds(); math.Abs(got-1.0) > 1e-6 {
		t.Fatalf("single transfer took %.9fs, want 1s (port-limited)", got)
	}
}

func TestZeroSizeCompletesInstantly(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, DefaultConfig())
	done := false
	e.Spawn("dma", func(p *sim.Proc) {
		tr := b.Start(PortMemory, SPEPort(0), 0, nil)
		if !tr.Done() {
			t.Error("zero-size transfer should be done immediately")
		}
		tr.Wait(p) // must not block
		done = true
	})
	run(t, e)
	if !done {
		t.Fatal("waiter never resumed")
	}
}

func TestMemoryPortIsSharedBottleneck(t *testing.T) {
	// 8 SPEs pulling from memory simultaneously share the 25.6 GB/s memory
	// port: each gets 3.2 GB/s, so 3.2 GB each takes 1 s.
	e := sim.NewEngine()
	b := New(e, DefaultConfig())
	var last sim.Time
	for i := 0; i < 8; i++ {
		i := i
		e.Spawn(fmt.Sprintf("spe%d", i), func(p *sim.Proc) {
			tr := b.Start(PortMemory, SPEPort(i), 3_200_000_000, nil)
			tr.Wait(p)
			last = p.Now()
		})
	}
	run(t, e)
	if got := last.Seconds(); math.Abs(got-1.0) > 1e-6 {
		t.Fatalf("8-way shared transfers finished at %.9fs, want 1s", got)
	}
}

func TestDisjointTransfersDontInterfere(t *testing.T) {
	// SPE0->SPE1 and SPE2->SPE3 share only the fabric, which has headroom:
	// both run at full port speed.
	e := sim.NewEngine()
	b := New(e, DefaultConfig())
	times := map[string]float64{}
	pairs := [][2]Port{{SPEPort(0), SPEPort(1)}, {SPEPort(2), SPEPort(3)}}
	for i, pr := range pairs {
		name := fmt.Sprintf("t%d", i)
		pr := pr
		e.Spawn(name, func(p *sim.Proc) {
			tr := b.Start(pr[0], pr[1], 25_600_000_000, nil)
			tr.Wait(p)
			times[name] = p.Now().Seconds()
		})
	}
	run(t, e)
	for name, got := range times {
		if math.Abs(got-1.0) > 1e-6 {
			t.Errorf("%s finished at %.9fs, want 1s", name, got)
		}
	}
}

func TestLateArrivalSpeedsUpAfterFirstFinishes(t *testing.T) {
	// Two transfers share the memory port (12.8 GB/s each). The first is
	// half the size; after it completes, the second runs at full speed.
	// t1: 12.8GB at 12.8 -> done at 1s. t2: 25.6GB: 12.8GB by 1s, then
	// 12.8GB at 25.6 -> +0.5s. Total 1.5s.
	e := sim.NewEngine()
	b := New(e, DefaultConfig())
	var t2done sim.Time
	e.Spawn("a", func(p *sim.Proc) {
		b.Start(PortMemory, SPEPort(0), 12_800_000_000, nil).Wait(p)
	})
	e.Spawn("b", func(p *sim.Proc) {
		tr := b.Start(PortMemory, SPEPort(1), 25_600_000_000, nil)
		tr.Wait(p)
		t2done = p.Now()
	})
	run(t, e)
	if got := t2done.Seconds(); math.Abs(got-1.5) > 1e-6 {
		t.Fatalf("second transfer finished at %.9fs, want 1.5s", got)
	}
}

func TestFabricAggregateLimits(t *testing.T) {
	// 10 disjoint port pairs would want 10 x 25.6 = 256 GB/s; the fabric
	// caps at 204.8, so each gets 20.48 GB/s.
	e := sim.NewEngine()
	cfg := DefaultConfig()
	b := New(e, cfg)
	var last sim.Time
	// Build 10 disjoint pairs from 20 synthetic ports.
	for i := 0; i < 10; i++ {
		i := i
		e.Spawn(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
			tr := b.Start(SPEPort(2*i), SPEPort(2*i+1), 20_480_000_000, nil)
			tr.Wait(p)
			last = p.Now()
		})
	}
	run(t, e)
	if got := last.Seconds(); math.Abs(got-1.0) > 1e-6 {
		t.Fatalf("fabric-limited transfers finished at %.9fs, want 1s", got)
	}
}

func TestOnDoneRunsBeforeWaiters(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, DefaultConfig())
	var order []string
	e.Spawn("dma", func(p *sim.Proc) {
		tr := b.Start(PortMemory, SPEPort(0), 1024, func() { order = append(order, "onDone") })
		tr.Wait(p)
		order = append(order, "waiter")
	})
	run(t, e)
	if len(order) != 2 || order[0] != "onDone" || order[1] != "waiter" {
		t.Fatalf("order = %v, want [onDone waiter]", order)
	}
}

func TestStatsAccumulate(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, DefaultConfig())
	e.Spawn("dma", func(p *sim.Proc) {
		b.Start(PortMemory, SPEPort(0), 1_000_000, nil).Wait(p)
		b.Start(SPEPort(0), PortMemory, 2_000_000, nil).Wait(p)
	})
	run(t, e)
	if b.Transfers() != 2 {
		t.Fatalf("Transfers = %d, want 2", b.Transfers())
	}
	if math.Abs(b.BytesMoved()-3_000_000) > 1 {
		t.Fatalf("BytesMoved = %v, want 3e6", b.BytesMoved())
	}
	if b.ActiveTransfers() != 0 {
		t.Fatalf("ActiveTransfers = %d, want 0", b.ActiveTransfers())
	}
}

// Property: bytes are conserved and completion time is never earlier than
// the single-flow lower bound size/portBW, for random concurrent loads.
func TestPropConservationAndBounds(t *testing.T) {
	f := func(sizes []uint32) bool {
		e := sim.NewEngine()
		b := New(e, DefaultConfig())
		var total float64
		ok := true
		for i, s := range sizes {
			if i >= 8 {
				break
			}
			size := int64(s%(1<<24)) + 1
			total += float64(size)
			i := i
			lower := float64(size) / b.Config().PortBandwidth
			e.Spawn(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
				start := p.Now()
				b.Start(PortMemory, SPEPort(i), size, nil).Wait(p)
				if p.Now().Sub(start).Seconds() < lower-1e-12 {
					ok = false
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok && math.Abs(b.BytesMoved()-total) < 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
