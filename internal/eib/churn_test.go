package eib

import (
	"fmt"
	"math"
	"testing"

	"cellport/internal/sim"
)

// xorshift64* — a tiny deterministic prng so churn traces are reproducible.
type prng uint64

func (r *prng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = prng(x)
	return x * 0x2545F4914F6CDD1D
}

func (r *prng) intn(n int) int { return int(r.next() % uint64(n)) }

// randomFlowSet builds a random active-flow population: a mix of shared-
// bottleneck pulls from memory, disjoint SPE pairs, and loop-backs, so
// traces exercise the fast-path shapes and the mixed shapes that need the
// full waterfill.
func randomFlowSet(r *prng, n int) []*Transfer {
	flows := make([]*Transfer, n)
	for i := range flows {
		var src, dst Port
		switch r.intn(3) {
		case 0: // memory pull — shared bottleneck when it dominates
			src, dst = PortMemory, SPEPort(r.intn(8))
		case 1: // SPE-to-SPE — disjoint or lightly overlapping
			src, dst = SPEPort(r.intn(8)), SPEPort(r.intn(8))
		default:
			src, dst = Port(r.intn(3)), SPEPort(r.intn(8)) // PPE/MEM/IO source
		}
		flows[i] = &Transfer{src: src, dst: dst, remaining: 1}
	}
	return flows
}

func loadsOf(flows []*Transfer) (portLoad map[Port]int, maxLoad int) {
	portLoad = map[Port]int{}
	for _, t := range flows {
		portLoad[t.src]++
		if t.dst != t.src {
			portLoad[t.dst]++
		}
	}
	for _, l := range portLoad {
		if l > maxLoad {
			maxLoad = l
		}
	}
	return portLoad, maxLoad
}

// TestPropFastPathsMatchFullSolver is the ISSUE's rate-for-rate property:
// across randomized churn traces (flows joining and leaving), whenever
// the per-port flow counts admit a closed-form uniform rate, that rate
// must equal the retained full waterfill's allocation exactly — not
// approximately — for every flow.
func TestPropFastPathsMatchFullSolver(t *testing.T) {
	cfgs := []Config{
		DefaultConfig(),
		{PortBandwidth: 25.6e9, TotalBandwidth: 51.2e9},  // tight fabric
		{PortBandwidth: 10e9, TotalBandwidth: 10e9},      // port == fabric ties
		{PortBandwidth: 204.8e9, TotalBandwidth: 25.6e9}, // fabric < port
	}
	for ci, cfg := range cfgs {
		r := prng(0x9E3779B97F4A7C15 + uint64(ci))
		fastHits := 0
		for trace := 0; trace < 50; trace++ {
			flows := randomFlowSet(&r, 1+r.intn(10))
			// Churn: alternate random departures and arrivals so the
			// constraint shape keeps shifting within one trace.
			for step := 0; step < 30; step++ {
				if len(flows) > 0 && r.intn(2) == 0 {
					i := r.intn(len(flows))
					flows = append(flows[:i], flows[i+1:]...)
				} else {
					flows = append(flows, randomFlowSet(&r, 1)...)
				}
				n := len(flows)
				if n == 0 {
					continue
				}
				_, maxLoad := loadsOf(flows)
				uniform, ok := uniformRate(n, maxLoad, cfg)
				full := maxMinRates(flows, cfg)
				if !ok {
					continue
				}
				fastHits++
				for i, rate := range full {
					if rate != uniform {
						t.Fatalf("cfg %d trace %d step %d: flow %d full solver %.17g != fast path %.17g (n=%d maxLoad=%d)",
							ci, trace, step, i, rate, uniform, n, maxLoad)
					}
				}
			}
		}
		if fastHits == 0 {
			t.Fatalf("cfg %d: churn never hit a fast-path shape — property vacuous", ci)
		}
	}
}

// churnOutcome is one simulated churn run's observable behaviour.
type churnOutcome struct {
	completions []sim.Time
	bytesMoved  float64
	events      uint64
}

// runChurn drives one bus through a randomized start/finish interleaving:
// transfers begin at staggered virtual times, so arrivals land while
// earlier transfers are mid-flight and completions reshuffle the
// allocation. The trace is fully determined by the seed.
func runChurn(t *testing.T, seed uint64, forceFull bool) churnOutcome {
	t.Helper()
	r := prng(seed)
	e := sim.NewEngine()
	b := New(e, DefaultConfig())
	b.forceFull = forceFull

	n := 12 + r.intn(8)
	out := churnOutcome{completions: make([]sim.Time, n)}
	for i := 0; i < n; i++ {
		i := i
		var src, dst Port
		switch r.intn(3) {
		case 0:
			src, dst = PortMemory, SPEPort(r.intn(8))
		case 1:
			src, dst = SPEPort(r.intn(8)), SPEPort(r.intn(8))
		default:
			src, dst = Port(r.intn(3)), SPEPort(r.intn(8))
		}
		size := int64(r.next()%(1<<26)) + 1
		start := sim.FromSeconds(float64(r.next()%1000) * 1e-4)
		e.Spawn(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
			p.SleepUntil(sim.Time(0).Add(start))
			b.Start(src, dst, size, nil).Wait(p)
			out.completions[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if b.ActiveTransfers() != 0 {
		t.Fatalf("%d transfers still active after quiescence", b.ActiveTransfers())
	}
	out.bytesMoved = b.BytesMoved()
	out.events = e.EventCount
	return out
}

// TestChurnIncrementalMatchesFullSolver compares the incremental
// allocator against the retained full waterfill over whole randomized
// churn simulations: per-transfer completion times and BytesMoved must
// agree, so the fast paths are behaviourally invisible.
func TestChurnIncrementalMatchesFullSolver(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		inc := runChurn(t, seed, false)
		full := runChurn(t, seed, true)
		for i := range inc.completions {
			if inc.completions[i] != full.completions[i] {
				t.Fatalf("seed %d: transfer %d completed at %v incrementally vs %v with the full solver",
					seed, i, inc.completions[i], full.completions[i])
			}
		}
		if math.Abs(inc.bytesMoved-full.bytesMoved) > 0.5 {
			t.Fatalf("seed %d: BytesMoved %.3f (incremental) vs %.3f (full)",
				seed, inc.bytesMoved, full.bytesMoved)
		}
	}
}

// TestActiveTransfersBookkeeping pins the ActiveTransfers counter through
// a start/finish interleaving: it must rise with each start, fall with
// each completion, and the per-port load counts must drain to empty.
func TestActiveTransfersBookkeeping(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, DefaultConfig())

	var observed []int
	snap := func() { observed = append(observed, b.ActiveTransfers()) }

	e.Spawn("driver", func(p *sim.Proc) {
		snap() // 0
		// Three staggered transfers on the shared memory port: sizes chosen
		// so they finish strictly in reverse start order is impossible —
		// equal shares mean the smallest remaining finishes first.
		t1 := b.Start(PortMemory, SPEPort(0), 25_600_000, nil) // 1 ms alone
		snap()                                                 // 1
		t2 := b.Start(PortMemory, SPEPort(1), 51_200_000, nil)
		snap() // 2
		t3 := b.Start(PortMemory, SPEPort(2), 76_800_000, nil)
		snap() // 3
		t1.Wait(p)
		snap() // 2
		t2.Wait(p)
		snap() // 1
		t3.Wait(p)
		snap() // 0
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 2, 1, 0}
	if len(observed) != len(want) {
		t.Fatalf("observed %v, want %v", observed, want)
	}
	for i := range want {
		if observed[i] != want[i] {
			t.Fatalf("ActiveTransfers sequence %v, want %v", observed, want)
		}
	}
	if len(b.portLoad) != 0 {
		t.Fatalf("port loads did not drain: %v", b.portLoad)
	}
	if b.Transfers() != 3 {
		t.Fatalf("Transfers = %d, want 3", b.Transfers())
	}
}

// TestPortLoadTracksActiveFlows pins the per-port counts that gate the
// fast paths: loop-backs count once, shared endpoints accumulate.
func TestPortLoadTracksActiveFlows(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, DefaultConfig())
	e.Spawn("driver", func(p *sim.Proc) {
		a := b.Start(PortMemory, SPEPort(0), 1<<20, nil)
		c := b.Start(PortMemory, SPEPort(1), 1<<20, nil)
		lb := b.Start(SPEPort(2), SPEPort(2), 1<<20, nil) // loop-back
		if got := b.portLoad[PortMemory]; got != 2 {
			t.Errorf("memory port load = %d, want 2", got)
		}
		if got := b.portLoad[SPEPort(2)]; got != 1 {
			t.Errorf("loop-back port load = %d, want 1 (counted once)", got)
		}
		a.Wait(p)
		c.Wait(p)
		lb.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(b.portLoad) != 0 {
		t.Fatalf("port loads did not drain: %v", b.portLoad)
	}
}
