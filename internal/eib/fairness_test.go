package eib

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"cellport/internal/sim"
)

// TestEqualFlowsFinishTogether: max-min fairness gives identical flows
// identical rates, so same-size transfers sharing the same bottleneck
// complete at the same instant.
func TestEqualFlowsFinishTogether(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, DefaultConfig())
	var done []sim.Time
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
			b.Start(PortMemory, SPEPort(i), 1<<24, nil).Wait(p)
			done = append(done, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(done); i++ {
		if done[i] != done[0] {
			t.Fatalf("equal flows finished at different times: %v", done)
		}
	}
}

// TestSmallFlowNotStarvedByLargeOnes: a tiny transfer sharing the memory
// port with huge ones still gets its fair share and finishes early.
func TestSmallFlowNotStarvedByLargeOnes(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, DefaultConfig())
	var small sim.Time
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("big%d", i), func(p *sim.Proc) {
			b.Start(PortMemory, SPEPort(i), 1<<30, nil).Wait(p)
		})
	}
	e.Spawn("small", func(p *sim.Proc) {
		b.Start(PortMemory, SPEPort(7), 64*1024, nil).Wait(p)
		small = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Fair share = 25.6/4 GB/s; 64 KiB at 6.4 GB/s ≈ 10.24 µs.
	want := 64.0 * 1024 / 6.4e9
	if got := small.Seconds(); math.Abs(got-want)/want > 0.01 {
		t.Fatalf("small flow finished at %.3gs, want ~%.3gs", got, want)
	}
}

// Property: aggregate delivered bandwidth never exceeds the fabric cap —
// checked by total bytes over makespan for random concurrent loads.
func TestPropAggregateBandwidthCap(t *testing.T) {
	f := func(sizes [6]uint32) bool {
		e := sim.NewEngine()
		cfg := DefaultConfig()
		b := New(e, cfg)
		var total float64
		var last sim.Time
		for i, sRaw := range sizes {
			size := int64(sRaw%(1<<22)) + 1024
			total += float64(size)
			i := i
			e.Spawn(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
				b.Start(SPEPort(2*i), SPEPort(2*i+1), size, nil).Wait(p)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		if last == 0 {
			return false
		}
		avgBW := total / last.Seconds()
		return avgBW <= cfg.TotalBandwidth*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
