// Package eib models the Cell's Element Interconnect Bus as a fluid
// (progressive-filling) bandwidth-sharing network. Each bus element — the
// PPE, the eight SPEs, the memory interface controller and the I/O
// interface — owns a port with 25.6 GB/s of bandwidth in each direction,
// and the ring fabric itself sustains an aggregate of 204.8 GB/s (§2,
// [12]). A transfer consumes bandwidth on its source port, its destination
// port, and the shared fabric; concurrent transfers receive the max-min
// fair allocation over those capacities.
//
// The fluid model is event-driven: whenever a transfer starts or finishes,
// remaining byte counts are advanced at the old rates, rates are
// recomputed, and the next completion is rescheduled. Byte conservation
// and capacity respect are property-tested.
package eib

import (
	"fmt"
	"math"

	"cellport/internal/sim"
)

// Port identifies a bus element.
type Port int

// Bus element ports. SPE ports are SPE0 + i.
const (
	PortPPE Port = iota
	PortMemory
	PortIO
	PortSPE0 // SPE n is PortSPE0 + n
)

// SPEPort returns the port of SPE n.
func SPEPort(n int) Port { return PortSPE0 + Port(n) }

func (p Port) String() string {
	switch p {
	case PortPPE:
		return "PPE"
	case PortMemory:
		return "MEM"
	case PortIO:
		return "IO"
	default:
		return fmt.Sprintf("SPE%d", int(p-PortSPE0))
	}
}

// Config sets the bus capacities in bytes per second.
type Config struct {
	PortBandwidth  float64 // per-port, per-direction
	TotalBandwidth float64 // fabric aggregate
}

// DefaultConfig returns the published Cell B.E. capacities.
func DefaultConfig() Config {
	return Config{PortBandwidth: 25.6e9, TotalBandwidth: 204.8e9}
}

// Bus is the shared interconnect. All methods must be called from within
// the owning simulation (engine callbacks or processes).
type Bus struct {
	engine *sim.Engine
	cfg    Config

	active     map[*Transfer]struct{}
	lastUpdate sim.Time

	// Stats
	bytesMoved float64
	transfers  uint64
}

// Transfer is one in-flight bulk data movement.
type Transfer struct {
	src, dst  Port
	remaining float64
	rate      float64 // bytes/s under the current allocation
	done      *sim.Queue
	finished  bool
	timer     *sim.Timer
	bus       *Bus
	onDone    func()
}

// New creates a bus on the given engine.
func New(e *sim.Engine, cfg Config) *Bus {
	if cfg.PortBandwidth <= 0 || cfg.TotalBandwidth <= 0 {
		panic("eib: non-positive bandwidth")
	}
	return &Bus{engine: e, cfg: cfg, active: make(map[*Transfer]struct{})}
}

// Start begins moving size bytes from src to dst and returns the transfer
// handle. onDone, if non-nil, runs at completion time (before waiters are
// woken). Zero-size transfers complete immediately.
func (b *Bus) Start(src, dst Port, size int64, onDone func()) *Transfer {
	t := &Transfer{
		src: src, dst: dst,
		remaining: float64(size),
		done:      sim.NewQueue(fmt.Sprintf("eib %v->%v", src, dst)),
		bus:       b,
		onDone:    onDone,
	}
	b.transfers++
	if size <= 0 {
		t.complete()
		return t
	}
	b.advance()
	b.active[t] = struct{}{}
	b.reallocate()
	return t
}

// Wait blocks p until the transfer completes.
func (t *Transfer) Wait(p *sim.Proc) {
	p.WaitFor(t.done, func() bool { return t.finished })
}

// Done reports whether the transfer has completed.
func (t *Transfer) Done() bool { return t.finished }

func (t *Transfer) complete() {
	t.finished = true
	if t.onDone != nil {
		t.onDone()
	}
	t.done.WakeAll(t.bus.engine)
}

// advance applies the current rates over the time elapsed since the last
// recomputation.
func (b *Bus) advance() {
	now := b.engine.Now()
	dt := now.Sub(b.lastUpdate).Seconds()
	b.lastUpdate = now
	if dt <= 0 {
		return
	}
	for t := range b.active {
		moved := t.rate * dt
		if moved > t.remaining {
			moved = t.remaining
		}
		t.remaining -= moved
		b.bytesMoved += moved
	}
}

// reallocate computes the max-min fair rate for every active transfer and
// reschedules completion timers.
func (b *Bus) reallocate() {
	if len(b.active) == 0 {
		return
	}
	// Water-filling over the constraining resources: each port (a transfer
	// loads both endpoints; a loop-back transfer loads its port once) and
	// the fabric aggregate.
	type resource struct {
		cap   float64
		flows []*Transfer
	}
	res := map[string]*resource{}
	addFlow := func(key string, cap float64, t *Transfer) {
		r := res[key]
		if r == nil {
			r = &resource{cap: cap}
			res[key] = r
		}
		r.flows = append(r.flows, t)
	}
	for t := range b.active {
		addFlow(t.src.String(), b.cfg.PortBandwidth, t)
		if t.dst != t.src {
			addFlow(t.dst.String(), b.cfg.PortBandwidth, t)
		}
		addFlow("fabric", b.cfg.TotalBandwidth, t)
	}
	unassigned := make(map[*Transfer]bool, len(b.active))
	for t := range b.active {
		unassigned[t] = true
		t.rate = 0
	}
	for len(unassigned) > 0 {
		// Find the most constrained resource among those with unassigned flows.
		var tight *resource
		share := math.Inf(1)
		for _, r := range res {
			n := 0
			for _, f := range r.flows {
				if unassigned[f] {
					n++
				}
			}
			if n == 0 {
				continue
			}
			s := r.cap / float64(n)
			if s < share {
				share = s
				tight = r
			}
		}
		if tight == nil {
			break
		}
		// Freeze the tight resource's unassigned flows at the fair share and
		// charge every resource they traverse.
		var frozen []*Transfer
		for _, f := range tight.flows {
			if unassigned[f] {
				frozen = append(frozen, f)
			}
		}
		for _, f := range frozen {
			f.rate = share
			delete(unassigned, f)
		}
		for _, r := range res {
			for _, f := range r.flows {
				for _, fr := range frozen {
					if f == fr {
						r.cap -= share
					}
				}
			}
			if r.cap < 0 {
				r.cap = 0
			}
		}
	}
	// Reschedule completions under the new rates.
	for t := range b.active {
		t.reschedule()
	}
}

func (t *Transfer) reschedule() {
	b := t.bus
	if t.timer != nil {
		t.timer.Cancel()
		t.timer = nil
	}
	if t.rate <= 0 {
		return // starved; will be rescheduled at the next reallocation
	}
	eta := b.engine.Now().Add(sim.FromSeconds(t.remaining / t.rate))
	t.timer = b.engine.Schedule(eta, func() {
		b.advance()
		// Guard against float residue: treat sub-byte remainders as done.
		if t.remaining > 0.5 {
			t.reschedule()
			return
		}
		b.bytesMoved += t.remaining
		t.remaining = 0
		delete(b.active, t)
		t.complete()
		b.reallocate()
	})
}

// ActiveTransfers reports the number of in-flight transfers.
func (b *Bus) ActiveTransfers() int { return len(b.active) }

// BytesMoved reports total bytes delivered so far.
func (b *Bus) BytesMoved() float64 { return b.bytesMoved }

// Transfers reports the cumulative number of transfers started.
func (b *Bus) Transfers() uint64 { return b.transfers }

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }
