// Package eib models the Cell's Element Interconnect Bus as a fluid
// (progressive-filling) bandwidth-sharing network. Each bus element — the
// PPE, the eight SPEs, the memory interface controller and the I/O
// interface — owns a port with 25.6 GB/s of bandwidth in each direction,
// and the ring fabric itself sustains an aggregate of 204.8 GB/s (§2,
// [12]). A transfer consumes bandwidth on its source port, its destination
// port, and the shared fabric; concurrent transfers receive the max-min
// fair allocation over those capacities.
//
// The fluid model is event-driven: whenever a transfer starts or finishes,
// remaining byte counts are advanced at the old rates, rates are
// recomputed, and the next completion is rescheduled. The recomputation is
// incremental: per-port flow counts classify the constraint shape, and the
// common shapes (a single flow; fully disjoint flows; all flows through
// one bottleneck port) get closed-form uniform rates that are float-for-
// float identical to the full waterfill, which runs only for mixed shapes.
// Transfers whose rate did not change keep their scheduled completion
// timer. Byte conservation, capacity respect, and incremental-vs-full
// equivalence are property-tested.
package eib

import (
	"fmt"
	"math"

	"cellport/internal/sim"
)

// Port identifies a bus element.
type Port int

// Bus element ports. SPE ports are SPE0 + i.
const (
	PortPPE Port = iota
	PortMemory
	PortIO
	PortSPE0 // SPE n is PortSPE0 + n
)

// SPEPort returns the port of SPE n.
func SPEPort(n int) Port { return PortSPE0 + Port(n) }

func (p Port) String() string {
	switch p {
	case PortPPE:
		return "PPE"
	case PortMemory:
		return "MEM"
	case PortIO:
		return "IO"
	default:
		return fmt.Sprintf("SPE%d", int(p-PortSPE0))
	}
}

// Config sets the bus capacities in bytes per second.
type Config struct {
	PortBandwidth  float64 // per-port, per-direction
	TotalBandwidth float64 // fabric aggregate
}

// DefaultConfig returns the published Cell B.E. capacities.
func DefaultConfig() Config {
	return Config{PortBandwidth: 25.6e9, TotalBandwidth: 204.8e9}
}

// Bus is the shared interconnect. All methods must be called from within
// the owning simulation (engine callbacks or processes).
type Bus struct {
	engine *sim.Engine
	cfg    Config

	// active holds in-flight transfers in a deterministic order (insertion
	// order with swap-removal); each transfer records its slot in idx.
	active []*Transfer
	// portLoad counts the active flows crossing each port (a loop-back
	// transfer counts once). The counts classify the constraint shape so
	// reallocate can skip the full waterfill for uniform shapes.
	portLoad   map[Port]int
	lastUpdate sim.Time

	// forceFull disables the closed-form fast paths so tests can compare
	// the incremental allocator against the retained full solver.
	forceFull bool

	// Stats
	bytesMoved float64
	transfers  uint64
	// portBytes accumulates delivered bytes per crossed port (a loop-back
	// transfer is credited once) — the per-port bandwidth-share numbers.
	portBytes map[Port]float64
	// portFlows counts transfers started per crossed port.
	portFlows map[Port]uint64
	// Reallocation counters: every reallocate() call, split by whether the
	// closed-form uniform rate applied or the full waterfill ran.
	reallocs    uint64
	reallocFast uint64
	reallocFull uint64
}

// Transfer is one in-flight bulk data movement.
type Transfer struct {
	src, dst  Port
	remaining float64
	rate      float64 // bytes/s under the current allocation
	idx       int     // slot in bus.active
	done      *sim.Queue
	finished  bool
	aborted   bool
	timer     *sim.Timer
	bus       *Bus
	onDone    func()
}

// New creates a bus on the given engine.
func New(e *sim.Engine, cfg Config) *Bus {
	if cfg.PortBandwidth <= 0 || cfg.TotalBandwidth <= 0 {
		panic("eib: non-positive bandwidth")
	}
	return &Bus{
		engine: e, cfg: cfg,
		portLoad:  make(map[Port]int),
		portBytes: make(map[Port]float64),
		portFlows: make(map[Port]uint64),
	}
}

// Start begins moving size bytes from src to dst and returns the transfer
// handle. onDone, if non-nil, runs at completion time (before waiters are
// woken). Zero-size transfers complete immediately.
func (b *Bus) Start(src, dst Port, size int64, onDone func()) *Transfer {
	t := &Transfer{
		src: src, dst: dst,
		remaining: float64(size),
		done:      sim.NewQueue(fmt.Sprintf("eib %v->%v", src, dst)),
		bus:       b,
		onDone:    onDone,
	}
	b.transfers++
	if size <= 0 {
		t.complete()
		return t
	}
	b.advance()
	b.addActive(t)
	b.reallocate()
	return t
}

// Wait blocks p until the transfer completes.
func (t *Transfer) Wait(p *sim.Proc) {
	p.WaitFor(t.done, func() bool { return t.finished })
}

// Done reports whether the transfer has completed.
func (t *Transfer) Done() bool { return t.finished }

// Aborted reports whether the transfer was torn down by Abort.
func (t *Transfer) Aborted() bool { return t.aborted }

// Abort tears down an in-flight transfer: it stops consuming bandwidth,
// its completion callback never runs, and waiters are released (they can
// check Aborted). Aborting a finished transfer is a no-op.
func (t *Transfer) Abort() {
	if t.finished {
		return
	}
	b := t.bus
	b.advance()
	if t.timer != nil {
		t.timer.Cancel()
		t.timer = nil
	}
	b.removeActive(t)
	t.aborted = true
	t.finished = true // deliberately skips onDone: the data never arrived
	t.done.WakeAll(b.engine)
	b.reallocate()
}

func (t *Transfer) complete() {
	t.finished = true
	if t.onDone != nil {
		t.onDone()
	}
	t.done.WakeAll(t.bus.engine)
}

func (b *Bus) addActive(t *Transfer) {
	t.idx = len(b.active)
	b.active = append(b.active, t)
	b.portLoad[t.src]++
	b.portFlows[t.src]++
	if t.dst != t.src {
		b.portLoad[t.dst]++
		b.portFlows[t.dst]++
	}
}

func (b *Bus) removeActive(t *Transfer) {
	last := len(b.active) - 1
	b.active[t.idx] = b.active[last]
	b.active[t.idx].idx = t.idx
	b.active[last] = nil
	b.active = b.active[:last]
	b.decLoad(t.src)
	if t.dst != t.src {
		b.decLoad(t.dst)
	}
}

func (b *Bus) decLoad(p Port) {
	if b.portLoad[p]--; b.portLoad[p] == 0 {
		delete(b.portLoad, p)
	}
}

// advance applies the current rates over the time elapsed since the last
// recomputation.
func (b *Bus) advance() {
	now := b.engine.Now()
	dt := now.Sub(b.lastUpdate).Seconds()
	b.lastUpdate = now
	if dt <= 0 {
		return
	}
	for _, t := range b.active {
		moved := t.rate * dt
		if moved > t.remaining {
			moved = t.remaining
		}
		t.remaining -= moved
		b.bytesMoved += moved
		b.creditPorts(t, moved)
	}
}

// creditPorts attributes moved bytes to the ports a transfer crosses.
func (b *Bus) creditPorts(t *Transfer, moved float64) {
	b.portBytes[t.src] += moved
	if t.dst != t.src {
		b.portBytes[t.dst] += moved
	}
}

// reallocate computes the max-min fair rate for every active transfer and
// reschedules the completion timers of transfers whose rate changed. The
// per-port flow counts select a closed-form uniform allocation when the
// constraint shape admits one; mixed shapes fall back to the retained
// full waterfill.
func (b *Bus) reallocate() {
	n := len(b.active)
	if n == 0 {
		return
	}
	maxLoad := 0
	for _, l := range b.portLoad {
		if l > maxLoad {
			maxLoad = l
		}
	}
	b.reallocs++
	if rate, ok := uniformRate(n, maxLoad, b.cfg); ok && !b.forceFull {
		b.reallocFast++
		for _, t := range b.active {
			t.setRate(rate)
		}
		return
	}
	b.reallocFull++
	rates := maxMinRates(b.active, b.cfg)
	for i, t := range b.active {
		t.setRate(rates[i])
	}
}

// uniformRate reports whether n flows with the given maximum per-port
// flow count admit a closed-form uniform max-min allocation, and the
// rate if so. The three shapes cover a lone transfer, fully disjoint
// flows (every port crossed by at most one flow), and a single shared
// bottleneck (some port crossed by every flow — its fair share P/n is
// the minimum over all port shares, so it or the fabric is the tight
// resource and every flow freezes at the same rate). The expressions
// reproduce the waterfill's arithmetic exactly: cap/float64(count) with
// the same operands, so rates are float-for-float identical to the full
// solver's.
func uniformRate(n, maxLoad int, cfg Config) (float64, bool) {
	fn := float64(n)
	switch {
	case n == 1:
		return math.Min(cfg.PortBandwidth, cfg.TotalBandwidth), true
	case maxLoad == 1:
		return math.Min(cfg.PortBandwidth, cfg.TotalBandwidth/fn), true
	case maxLoad == n:
		return math.Min(cfg.PortBandwidth/fn, cfg.TotalBandwidth/fn), true
	}
	return 0, false
}

// maxMinRates is the full progressive-filling solver: water-filling over
// the constraining resources — each crossed port (a transfer loads both
// endpoints; a loop-back transfer loads its port once) and the fabric
// aggregate. It is a pure function of the flow order, with resources
// enumerated deterministically (fabric first, then ports in first-use
// order).
func maxMinRates(flows []*Transfer, cfg Config) []float64 {
	type resource struct {
		cap   float64
		flows []int
	}
	res := []*resource{{cap: cfg.TotalBandwidth}}
	portIdx := make(map[Port]int)
	addFlow := func(p Port, i int) {
		j, ok := portIdx[p]
		if !ok {
			j = len(res)
			portIdx[p] = j
			res = append(res, &resource{cap: cfg.PortBandwidth})
		}
		res[j].flows = append(res[j].flows, i)
	}
	for i, t := range flows {
		res[0].flows = append(res[0].flows, i)
		addFlow(t.src, i)
		if t.dst != t.src {
			addFlow(t.dst, i)
		}
	}

	rates := make([]float64, len(flows))
	frozenIn := make([]int, len(flows)) // round each flow froze in, -1 if free
	for i := range frozenIn {
		frozenIn[i] = -1
	}
	remaining := len(flows)
	for round := 0; remaining > 0; round++ {
		// Find the most constrained resource among those with free flows.
		var tight *resource
		share := math.Inf(1)
		for _, r := range res {
			free := 0
			for _, f := range r.flows {
				if frozenIn[f] < 0 {
					free++
				}
			}
			if free == 0 {
				continue
			}
			if s := r.cap / float64(free); s < share {
				share = s
				tight = r
			}
		}
		if tight == nil {
			break
		}
		// Freeze the tight resource's free flows at the fair share and
		// charge every resource they traverse.
		for _, f := range tight.flows {
			if frozenIn[f] < 0 {
				frozenIn[f] = round
				rates[f] = share
				remaining--
			}
		}
		for _, r := range res {
			for _, f := range r.flows {
				if frozenIn[f] == round {
					r.cap -= share
				}
			}
			if r.cap < 0 {
				r.cap = 0
			}
		}
	}
	return rates
}

// setRate installs a transfer's new allocation. When the rate is
// unchanged and a completion timer is pending, the timer stays: advance()
// has just brought remaining up to date at this same rate, so the
// scheduled ETA is still the completion time (and keeping the original
// timer avoids re-deriving it through another division).
func (t *Transfer) setRate(rate float64) {
	if t.rate == rate && t.timer != nil {
		return
	}
	t.rate = rate
	t.reschedule()
}

func (t *Transfer) reschedule() {
	b := t.bus
	if t.timer != nil {
		t.timer.Cancel()
		t.timer = nil
	}
	if t.rate <= 0 {
		return // starved; will be rescheduled at the next reallocation
	}
	eta := b.engine.Now().Add(sim.FromSeconds(t.remaining / t.rate))
	t.timer = b.engine.Schedule(eta, func() {
		t.timer = nil
		b.advance()
		// Guard against float residue: treat sub-byte remainders as done.
		if t.remaining > 0.5 {
			t.reschedule()
			return
		}
		b.bytesMoved += t.remaining
		b.creditPorts(t, t.remaining)
		t.remaining = 0
		b.removeActive(t)
		t.complete()
		b.reallocate()
	})
}

// ActiveTransfers reports the number of in-flight transfers.
func (b *Bus) ActiveTransfers() int { return len(b.active) }

// BytesMoved reports total bytes delivered so far.
func (b *Bus) BytesMoved() float64 { return b.bytesMoved }

// Transfers reports the cumulative number of transfers started.
func (b *Bus) Transfers() uint64 { return b.transfers }

// PortBytes returns a copy of the delivered-bytes-per-port accounting.
func (b *Bus) PortBytes() map[Port]float64 {
	out := make(map[Port]float64, len(b.portBytes))
	for p, v := range b.portBytes {
		out[p] = v
	}
	return out
}

// PortFlows returns a copy of the transfers-started-per-port counts.
func (b *Bus) PortFlows() map[Port]uint64 {
	out := make(map[Port]uint64, len(b.portFlows))
	for p, v := range b.portFlows {
		out[p] = v
	}
	return out
}

// Reallocs reports rate-recomputation counts: total calls, closed-form
// fast-path hits, and full waterfill runs.
func (b *Bus) Reallocs() (total, fast, full uint64) {
	return b.reallocs, b.reallocFast, b.reallocFull
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }
