package cost

import (
	"math"
	"testing"
	"testing/quick"

	"cellport/internal/sim"
)

func TestScalarThroughputRatios(t *testing.T) {
	ppe, desk, lap := NewPPE(), NewDesktop(), NewLaptop()
	if r := desk.ScalarThroughput() / ppe.ScalarThroughput(); math.Abs(r-3.2) > 0.01 {
		t.Errorf("Desktop/PPE = %.3f, want 3.2 (paper §5.2)", r)
	}
	if r := lap.ScalarThroughput() / ppe.ScalarThroughput(); math.Abs(r-2.5) > 0.01 {
		t.Errorf("Laptop/PPE = %.3f, want 2.5 (paper §5.2)", r)
	}
}

func TestCyclesToDuration(t *testing.T) {
	ppe := NewPPE()
	// 3.2e9 cycles at 3.2 GHz is exactly one second.
	if got := ppe.CyclesToDuration(3.2e9); got != sim.Second {
		t.Fatalf("3.2e9 cycles = %v, want 1s", got)
	}
	if got := ppe.CyclesToDuration(0); got != 0 {
		t.Fatalf("0 cycles = %v, want 0", got)
	}
	if got := ppe.CyclesToDuration(-5); got != 0 {
		t.Fatalf("negative cycles = %v, want 0", got)
	}
}

func TestScalarOps(t *testing.T) {
	ppe := NewPPE()
	// 1.6e9 ops at 1.6 Gops/s sustained is one second.
	if got := ppe.ScalarOps(1.6e9); got != sim.Second {
		t.Fatalf("ScalarOps(1.6e9) = %v, want 1s", got)
	}
}

func TestSIMDOpsPeakRates(t *testing.T) {
	spe := NewSPE()
	// §2: 8-bit ops issue at 32/cycle -> 32*3.2e9 ops/s.
	if got := spe.SIMDOps(32*3.2e9, Bits8, 1.0); got != sim.Second {
		t.Fatalf("Bits8 peak: got %v, want 1s", got)
	}
	if got := spe.SIMDOps(8*3.2e9, Bits32, 1.0); got != sim.Second {
		t.Fatalf("Bits32 peak: got %v, want 1s", got)
	}
	// Double precision: 2 ops / 7 cycles.
	want := spe.CyclesToDuration(7)
	if got := spe.SIMDOps(2, Bits64, 1.0); got != want {
		t.Fatalf("Bits64: got %v, want %v", got, want)
	}
}

func TestSIMDFallsBackToScalar(t *testing.T) {
	desk := NewDesktop() // no SIMD map at all in our model
	if got, want := desk.SIMDOps(1e6, Bits8, 0.9), desk.ScalarOps(1e6); got != want {
		t.Fatalf("fallback: got %v, want scalar %v", got, want)
	}
}

func TestSIMDEfficiencyScales(t *testing.T) {
	spe := NewSPE()
	full := spe.SIMDOps(1e9, Bits16, 1.0)
	half := spe.SIMDOps(1e9, Bits16, 0.5)
	ratio := float64(half) / float64(full)
	if math.Abs(ratio-2.0) > 1e-9 {
		t.Fatalf("half efficiency should double time; ratio = %v", ratio)
	}
}

func TestSIMDBadEfficiencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for efficiency > 1")
		}
	}()
	NewSPE().SIMDOps(10, Bits8, 1.5)
}

func TestBranchesUseDefaultRate(t *testing.T) {
	spe := NewSPE()
	got := spe.Branches(1e6, -1)
	want := spe.CyclesToDuration(1e6 * spe.DefaultMispredict * spe.BranchPenaltyCycles)
	if got != want {
		t.Fatalf("Branches default = %v, want %v", got, want)
	}
	if spe.Branches(0, -1) != 0 {
		t.Fatal("zero branches should cost nothing")
	}
}

func TestDiskRead(t *testing.T) {
	lap := NewLaptop()
	got := lap.DiskRead(45e6) // exactly one second of bandwidth plus latency
	want := lap.DiskLatency + sim.Second
	if got != want {
		t.Fatalf("DiskRead = %v, want %v", got, want)
	}
	if NewLaptop().DiskRead(-10) != lap.DiskLatency {
		t.Fatal("negative bytes should cost only latency")
	}
}

func TestMemStream(t *testing.T) {
	spe := NewSPE()
	if got := spe.MemStream(25.6e9); got != sim.Second {
		t.Fatalf("MemStream = %v, want 1s", got)
	}
	if spe.MemStream(0) != 0 {
		t.Fatal("zero bytes should be free")
	}
}

// Property: durations are monotone in work for every model.
func TestPropMonotoneWork(t *testing.T) {
	models := []*Model{NewPPE(), NewSPE(), NewDesktop(), NewLaptop()}
	f := func(a, b uint32) bool {
		lo, hi := float64(a), float64(a)+float64(b)
		for _, m := range models {
			if m.ScalarOps(hi) < m.ScalarOps(lo) {
				return false
			}
			if m.SIMDOps(hi, Bits16, 0.7) < m.SIMDOps(lo, Bits16, 0.7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SIMD at full efficiency is never slower than scalar on the SPE
// for widths the SPE supports.
func TestPropSIMDBeatsScalarOnSPE(t *testing.T) {
	spe := NewSPE()
	f := func(n uint32) bool {
		work := float64(n) + 1
		for _, w := range []Width{Bits8, Bits16, Bits32} {
			if spe.SIMDOps(work, w, 1.0) > spe.ScalarOps(work) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
