package cost

import "cellport/internal/sim"

// The concrete models. Clock frequencies are the paper's (§5.2); effective
// IPC values are set so the *ratios* between machines match the paper's
// measured kernel slow-downs: the PPE runs the MARVEL kernels 2.5× slower
// than the Laptop and 3.2× slower than the Desktop. With the PPE pinned at
// an in-order, stall-heavy IPC of 0.5, that fixes the other two:
//
//	PPE:     3.2 GHz × 0.500 = 1.60 Gops/s   (baseline)
//	Desktop: 3.4 GHz × 1.506 = 5.12 Gops/s   (3.2× PPE)
//	Laptop:  1.8 GHz × 2.222 = 4.00 Gops/s   (2.5× PPE)
//
// The SPE SIMD issue rates are the architecture's published numbers (§2):
// 32/16/8 operations per cycle for 8/16/32-bit elements across both
// pipelines, and two double-precision operations every seven cycles.

// NewPPE returns the model of the Cell's Power Processing Element.
func NewPPE() *Model {
	return &Model{
		Name:                "PPE",
		ClockHz:             3.2e9,
		ScalarIPC:           0.5,
		SIMDOpsPerCycle:     map[Width]float64{Bits32: 4, Bits16: 8, Bits8: 16}, // VMX, single issue port
		BranchPenaltyCycles: 23,
		DefaultMispredict:   0.05,
		DiskBandwidth:       55e6,
		DiskLatency:         120 * sim.Microsecond,
		MemBandwidth:        4.0e9,
	}
}

// NewSPE returns the model of one Synergistic Processing Element's SPU.
// Scalar code on the SPU is poor: every operation round-trips through
// 128-bit registers, there is no hardware branch predictor (mispredict
// costs ~18 cycles and is common without hints), and sub-quadword loads
// need rotate fix-ups. That is what the paper's "before optimization"
// numbers (§5.3) experience.
func NewSPE() *Model {
	return &Model{
		Name:      "SPE",
		ClockHz:   3.2e9,
		ScalarIPC: 0.35,
		SIMDOpsPerCycle: map[Width]float64{
			Bits8:  32,
			Bits16: 16,
			Bits32: 8,
			Bits64: 2.0 / 7.0,
		},
		BranchPenaltyCycles: 18,
		DefaultMispredict:   0.30, // static prediction only
		DiskBandwidth:       0,    // SPEs cannot touch disk
		MemBandwidth:        25.6e9,
	}
}

// NewDesktop returns the model of the "Desktop" reference machine
// (Pentium D, dual core, 3.4 GHz). Only one core is used: the paper runs
// the unmodified sequential application.
func NewDesktop() *Model {
	return &Model{
		Name:                "Desktop",
		ClockHz:             3.4e9,
		ScalarIPC:           1.5059, // 3.2× the PPE's sustained throughput
		BranchPenaltyCycles: 28,
		DefaultMispredict:   0.02,
		DiskBandwidth:       48e6,
		DiskLatency:         110 * sim.Microsecond,
		MemBandwidth:        6.4e9,
	}
}

// NewLaptop returns the model of the "Laptop" reference machine
// (Pentium M Centrino, 1.8 GHz).
func NewLaptop() *Model {
	return &Model{
		Name:                "Laptop",
		ClockHz:             1.8e9,
		ScalarIPC:           2.2222, // 2.5× the PPE's sustained throughput
		BranchPenaltyCycles: 20,
		DefaultMispredict:   0.02,
		DiskBandwidth:       45e6,
		DiskLatency:         140 * sim.Microsecond,
		MemBandwidth:        3.2e9,
	}
}
