// Package cost provides architectural timing models for the processors in
// the paper's evaluation: the Cell PPE and SPE (3.2 GHz), the "Desktop"
// reference (Pentium D, 3.4 GHz) and the "Laptop" reference (Pentium M
// Centrino, 1.8 GHz).
//
// A Model converts abstract work — operation counts by element width,
// branches, file I/O — into virtual time. The models are deliberately
// first-order: sustained scalar throughput is clock × effective IPC, SIMD
// throughput is clock × (ops issued per cycle at a given width) × an
// efficiency factor supplied by the kernel. Anything the paper measures but
// does not derive (per-kernel SIMD efficiency, per-kernel PPE cache
// behaviour) is calibrated in internal/marvel/calibration.go, not here.
package cost

import (
	"fmt"
	"math"

	"cellport/internal/sim"
)

// Width is the element width a SIMD operation works on.
type Width int

// Element widths.
const (
	Bits8  Width = 8
	Bits16 Width = 16
	Bits32 Width = 32
	Bits64 Width = 64
)

func (w Width) String() string { return fmt.Sprintf("%d-bit", int(w)) }

// Model is a first-order throughput model of one processor.
type Model struct {
	// Name identifies the processor in reports ("PPE", "SPE", ...).
	Name string
	// ClockHz is the core clock frequency.
	ClockHz float64
	// ScalarIPC is the sustained scalar operations per cycle for the
	// integer/float mix typical of the MARVEL kernels.
	ScalarIPC float64
	// SIMDOpsPerCycle maps element width to peak SIMD operations issued
	// per cycle (both pipelines combined). Nil or missing width means the
	// processor has no usable SIMD path at that width in our model.
	SIMDOpsPerCycle map[Width]float64
	// BranchPenaltyCycles is the cost of one mispredicted branch.
	BranchPenaltyCycles float64
	// DefaultMispredict is the misprediction fraction assumed when the
	// caller does not know better.
	DefaultMispredict float64
	// DiskBandwidth is sustained file-read bandwidth in bytes/second, used
	// for the image-decode / model-load preprocessing steps.
	DiskBandwidth float64
	// DiskLatency is the fixed per-file access cost.
	DiskLatency sim.Duration
	// MemBandwidth is sustained streaming bandwidth to main memory in
	// bytes/second (used for working sets that defeat the cache).
	MemBandwidth float64
}

// CyclesToDuration converts a cycle count to virtual time on this model.
func (m *Model) CyclesToDuration(cycles float64) sim.Duration {
	if cycles <= 0 {
		return 0
	}
	return sim.Duration(math.Round(cycles / m.ClockHz * float64(sim.Second)))
}

// ScalarOps returns the time to execute n scalar operations at the model's
// sustained scalar rate.
func (m *Model) ScalarOps(n float64) sim.Duration {
	if n <= 0 {
		return 0
	}
	return m.CyclesToDuration(n / m.ScalarIPC)
}

// SIMDOps returns the time to execute n element-operations vectorized at
// width w with the given efficiency in (0, 1]. Efficiency folds in shuffle
// overhead, alignment fix-up, and loop epilogues. If the model has no SIMD
// path at w, the work falls back to scalar execution.
func (m *Model) SIMDOps(n float64, w Width, efficiency float64) sim.Duration {
	if n <= 0 {
		return 0
	}
	peak := m.SIMDOpsPerCycle[w]
	if peak <= 0 {
		return m.ScalarOps(n)
	}
	if efficiency <= 0 || efficiency > 1 {
		panic(fmt.Sprintf("cost: SIMD efficiency %v out of (0,1]", efficiency))
	}
	return m.CyclesToDuration(n / (peak * efficiency))
}

// Branches returns the misprediction stall time for n branches. A negative
// mispredict rate selects the model default.
func (m *Model) Branches(n, mispredictRate float64) sim.Duration {
	if n <= 0 {
		return 0
	}
	if mispredictRate < 0 {
		mispredictRate = m.DefaultMispredict
	}
	return m.CyclesToDuration(n * mispredictRate * m.BranchPenaltyCycles)
}

// DiskRead returns the time to read n bytes from storage (one access).
func (m *Model) DiskRead(bytes float64) sim.Duration {
	if bytes < 0 {
		bytes = 0
	}
	return m.DiskLatency + sim.Duration(math.Round(bytes/m.DiskBandwidth*float64(sim.Second)))
}

// MemStream returns the time to stream n bytes from main memory.
func (m *Model) MemStream(bytes float64) sim.Duration {
	if bytes <= 0 {
		return 0
	}
	return sim.Duration(math.Round(bytes / m.MemBandwidth * float64(sim.Second)))
}

// ScalarThroughput reports sustained scalar ops/second — the quantity the
// paper's §5.2 host ratios (PPE 2.5× slower than Laptop, 3.2× slower than
// Desktop) are expressed against.
func (m *Model) ScalarThroughput() float64 { return m.ClockHz * m.ScalarIPC }
