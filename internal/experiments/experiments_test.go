package experiments

import (
	"math"
	"strings"
	"testing"

	"cellport/internal/marvel"
)

// quickCfg runs the experiments at reduced size; the shape checks below
// hold at any size, and TestPaperNumbersFullSize pins the headline
// numbers at the paper's frame size.
func quickCfg() Config { return Config{Quick: true, Seed: 7} }

func relErr(got, want float64) float64 { return math.Abs(got-want) / want }

// TestPaperNumbersFullSize is the headline reproduction check: at the
// paper's 352×240 frame size, Table 1 speed-ups land within 5% of the
// published values and coverage within 2 points.
func TestPaperNumbersFullSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size run skipped with -short")
	}
	rows, err := Table1(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if e := relErr(r.SpeedUp, r.PaperSpeedUp); e > 0.05 {
			t.Errorf("%s speed-up %.2f vs paper %.2f (%.1f%% off)",
				r.Kernel, r.SpeedUp, r.PaperSpeedUp, e*100)
		}
		if math.Abs(r.Coverage-r.PaperCoverage) > 0.02 {
			t.Errorf("%s coverage %.3f vs paper %.2f", r.Kernel, r.Coverage, r.PaperCoverage)
		}
	}
}

func TestNaiveSpeedupsFullSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size run skipped with -short")
	}
	rows, err := NaiveSpeedups(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PaperSpeedUp == 0 {
			continue // not measured by the paper
		}
		if e := relErr(r.SpeedUp, r.PaperSpeedUp); e > 0.10 {
			t.Errorf("naive %s speed-up %.2f vs paper %.2f (%.1f%% off)",
				r.Kernel, r.SpeedUp, r.PaperSpeedUp, e*100)
		}
	}
	// The §5.3 headline: the naive correlogram port is SLOWER than the PPE.
	for _, r := range rows {
		if r.Kernel == marvel.KCC && r.SpeedUp >= 1 {
			t.Errorf("naive CC speed-up %.2f, must be < 1", r.SpeedUp)
		}
	}
}

func TestEstimatorErrorsUnderTwoPercent(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size run skipped with -short")
	}
	r, err := Eqns(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Eq1At10x-1.0989) > 0.0001 || math.Abs(r.Eq1At100x-1.1098) > 0.0002 {
		t.Errorf("Eq.1 examples: %.4f / %.4f", r.Eq1At10x, r.Eq1At100x)
	}
	for _, s := range r.Scenarios {
		if s.ErrorFrac > 0.02 {
			t.Errorf("%s estimate error %.2f%% exceeds the paper's 2%%", s.Name, s.ErrorFrac*100)
		}
		if s.Measured <= 1 {
			t.Errorf("%s measured speed-up %.2f not > 1", s.Name, s.Measured)
		}
	}
	// Scenario ordering: parallel beats sequential; replication only
	// marginally beats the shared detector.
	if len(r.Scenarios) == 3 {
		s1, s2, s3 := r.Scenarios[0].Measured, r.Scenarios[1].Measured, r.Scenarios[2].Measured
		if !(s1 < s2 && s2 <= s3) {
			t.Errorf("scenario ordering broken: %.2f %.2f %.2f", s1, s2, s3)
		}
		if (s3-s2)/s2 > 0.10 {
			t.Errorf("multi-SPE2 gain %.1f%% implausibly large (paper: ~2%%)", (s3-s2)/s2*100)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := Fig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("fig6 rows = %d", len(rows))
	}
	for _, r := range rows {
		// Ordering along the log axis: SPE fastest, PPE slowest of the
		// scalar targets, Desktop fastest host.
		if !(r.SPE < r.Desktop && r.Desktop < r.Laptop && r.Laptop < r.PPE) {
			t.Errorf("%s time ordering violated: SPE %v Desktop %v Laptop %v PPE %v",
				r.Kernel, r.SPE, r.Desktop, r.Laptop, r.PPE)
		}
	}
	var sb strings.Builder
	RenderFig6(&sb, rows)
	if !strings.Contains(sb.String(), "CCExtract") || !strings.Contains(sb.String(), "█") {
		t.Error("fig6 rendering incomplete")
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := Fig7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, cc := range CellConfigs {
		for _, rm := range RefMachines {
			cells := r.SpeedUp[cc][rm]
			if len(cells) != len(r.Sizes) {
				t.Fatalf("%s/%s: %d cells", cc, rm, len(cells))
			}
			// Whole-run speed-up grows with set size (one-time overhead
			// amortizes) and approaches the per-image speed-up.
			for i := 1; i < len(cells); i++ {
				if cells[i].Whole < cells[i-1].Whole {
					t.Errorf("%s/%s: whole-run speed-up not monotone: %v", cc, rm, cells)
				}
			}
			last := cells[len(cells)-1]
			if last.Whole > last.PerImage*1.001 {
				t.Errorf("%s/%s: whole-run %.2f exceeds per-image %.2f", cc, rm, last.Whole, last.PerImage)
			}
		}
	}
	// Order of magnitude over the commodity hosts per image (the paper's
	// headline claim).
	if s := r.SpeedUp["multi-spe"]["Desktop"][0].PerImage; s < 5 {
		t.Errorf("multi-SPE vs Desktop per-image speed-up %.2f; expected order-of-magnitude", s)
	}
	if s1, s2 := r.SpeedUp["single-spe"]["PPE"][0].PerImage, r.SpeedUp["multi-spe"]["PPE"][0].PerImage; s2 <= s1 {
		t.Errorf("multi-SPE (%.2f) should beat single-SPE (%.2f)", s2, s1)
	}
	var sb strings.Builder
	RenderFig7(&sb, r)
	if !strings.Contains(sb.String(), "vs Desktop") {
		t.Error("fig7 rendering incomplete")
	}
}

func TestProfileExperiment(t *testing.T) {
	r, err := ProfileExp(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Per-image kernel coverage (one-time excluded) is near-total; the
	// whole-run set coverage includes the one-time overhead, which the
	// quick workload does not fully amortize.
	if r.CoverageOneImage < 0.90 || r.CoverageOneImage > 1.0 {
		t.Errorf("one-image kernel coverage %.2f out of range", r.CoverageOneImage)
	}
	if r.CoverageSet < 0.55 {
		t.Errorf("set coverage %.2f too low", r.CoverageSet)
	}
	classes := map[string]bool{}
	for _, c := range r.Candidates {
		classes[c.Class] = true
	}
	for _, want := range []string{"ColorCorrelogram", "EdgeHistogram"} {
		if !classes[want] {
			t.Errorf("candidate %s missing (got %v)", want, r.Candidates)
		}
	}
	var sb strings.Builder
	RenderProfile(&sb, r)
	if !strings.Contains(sb.String(), "flat profile") {
		t.Error("profile rendering incomplete")
	}
}

func TestHostsExperiment(t *testing.T) {
	r, err := HostsExp(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range marvel.KernelIDs {
		if math.Abs(r.KernelSlowdownDesktop[id]-3.2) > 0.3 {
			t.Errorf("%s desktop slow-down %.2f", id, r.KernelSlowdownDesktop[id])
		}
		if math.Abs(r.KernelSlowdownLaptop[id]-2.5) > 0.3 {
			t.Errorf("%s laptop slow-down %.2f", id, r.KernelSlowdownLaptop[id])
		}
	}
	// Preprocessing ports with a much smaller penalty than compute.
	if r.PreprocSlowdownDesk >= 2.0 || r.PreprocSlowdownLaptop >= 1.7 {
		t.Errorf("preprocessing slow-downs %.2f/%.2f too large",
			r.PreprocSlowdownDesk, r.PreprocSlowdownLaptop)
	}
	var sb strings.Builder
	RenderHosts(&sb, r)
	if !strings.Contains(sb.String(), "one-time overhead") {
		t.Error("hosts rendering incomplete")
	}
}

func TestScalingExperiment(t *testing.T) {
	rows, err := Scaling(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 4 kernels × 4 SPE counts", len(rows))
	}
	byKernel := map[marvel.KernelID][]ScalingRow{}
	for _, r := range rows {
		if !r.Matches {
			t.Errorf("%s/%d: merged feature not exact", r.Kernel, r.NSPEs)
		}
		byKernel[r.Kernel] = append(byKernel[r.Kernel], r)
	}
	// The correlogram — the compute-dominated kernel — must scale well to
	// 4 SPEs; efficiency never exceeds 1 by construction (plus epsilon
	// for round-trip noise).
	for _, r := range byKernel[marvel.KCC] {
		if r.NSPEs == 4 && r.SpeedUp < 2.5 {
			t.Errorf("CC on 4 SPEs: speed-up %.2f too low", r.SpeedUp)
		}
		if r.Efficiency > 1.05 {
			t.Errorf("%s/%d efficiency %.2f > 1", r.Kernel, r.NSPEs, r.Efficiency)
		}
	}
	var sb strings.Builder
	RenderScaling(&sb, rows)
	if !strings.Contains(sb.String(), "CCExtract") {
		t.Error("scaling rendering incomplete")
	}
}

func TestRenderTable1Golden(t *testing.T) {
	rows := []Table1Row{{
		Kernel: marvel.KCH, PPETime: 5128200, SPETime: 96200,
		SpeedUp: 53.31, Coverage: 0.083, PaperSpeedUp: 53.67, PaperCoverage: 0.08,
	}}
	var sb strings.Builder
	RenderTable1(&sb, rows)
	for _, needle := range []string{"CHExtract", "53.31", "53.67", "8.3%"} {
		if !strings.Contains(sb.String(), needle) {
			t.Errorf("table rendering missing %q:\n%s", needle, sb.String())
		}
	}
}

func TestPipelineExperiment(t *testing.T) {
	rows, err := Pipeline(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Ordering: single < multi2 < pipelined.
	if !(rows[0].SpeedUp < rows[1].SpeedUp && rows[1].SpeedUp < rows[2].SpeedUp) {
		t.Errorf("pipeline ordering broken: %+v", rows)
	}
	// The pipeline must deliver a substantial gain over scenario 3 (it
	// removes ~half the critical path).
	if rows[2].SpeedUp < rows[1].SpeedUp*1.15 {
		t.Errorf("pipelined gain too small: %.2f vs %.2f", rows[2].SpeedUp, rows[1].SpeedUp)
	}
	var sb strings.Builder
	RenderPipeline(&sb, rows)
	if !strings.Contains(sb.String(), "pipelined") {
		t.Error("pipeline rendering incomplete")
	}
}

func TestOverheadExperiment(t *testing.T) {
	rows, err := Overhead(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Round trips grow with the polling interval: coarser polls see the
	// result later.
	for i := 1; i < 4; i++ {
		if rows[i].RoundTrip < rows[i-1].RoundTrip {
			t.Errorf("round trip not monotone in poll interval: %+v", rows)
		}
	}
	// Interrupt mode beats coarse polling.
	intr := rows[4]
	if intr.RoundTrip >= rows[3].RoundTrip {
		t.Errorf("interrupt (%v) should beat 4us polling (%v)", intr.RoundTrip, rows[3].RoundTrip)
	}
	for _, r := range rows {
		if r.RoundTrip <= 0 {
			t.Errorf("non-positive round trip: %+v", r)
		}
	}
	var sb strings.Builder
	RenderOverhead(&sb, rows)
	if !strings.Contains(sb.String(), "interrupt") {
		t.Error("overhead rendering incomplete")
	}
}
