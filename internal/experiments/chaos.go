package experiments

import (
	"fmt"
	"io"

	"cellport/internal/fault"
	"cellport/internal/serve"
	"cellport/internal/sim"
)

// ChaosResult reports the blade-lifecycle experiment (-exp chaos): the
// default serve scenario under a seeded rolling-restart schedule,
// compared against a fault-free (fleet-wise) baseline over the identical
// calibration and arrival stream.
type ChaosResult struct {
	// Spec is the canonical plan of the chaos run (Parse-able;
	// reproduces the run). It includes any machine-level faults the
	// caller supplied; those also run in the baseline, so the comparison
	// isolates the fleet-level lifecycle cost.
	Spec string `json:"spec"`
	// Seed is the fleet-schedule seed (0 when the caller's -faults spec
	// already carried blade-level faults).
	Seed uint64 `json:"seed"`

	// Baseline serves the stream with only the machine-level subset of
	// the plan armed; Chaos adds the blade lifecycle schedule.
	Baseline *serve.Report `json:"baseline"`
	Chaos    *serve.Report `json:"chaos"`

	// Goodput is requests served on time. Ratio is chaos over baseline:
	// how much of the fleet's useful capacity survived the schedule.
	GoodputBaseline int     `json:"goodput_baseline"`
	GoodputChaos    int     `json:"goodput_chaos"`
	GoodputRatio    float64 `json:"goodput_ratio"`

	// Epochs counts epoch-barrier rounds over both runs. Excluded from
	// JSON so experiment data stays byte-identical across -shards,
	// -lookahead, and -seqsim (same contract as ServeResult.Epochs).
	Epochs uint64 `json:"-"`
}

// ChaosExp runs the fleet self-healing experiment: the serve scenario
// (default 8 blades) under a deterministic blade-lifecycle schedule —
// the caller's -faults plan if it names blade-level faults, otherwise a
// seeded rolling-restart schedule (fault.SeededFleet) spanning the
// arrival stream — against a baseline carrying only the plan's
// machine-level subset.
func ChaosExp(cfg Config) (*ChaosResult, error) {
	if cfg.Serve.Blades <= 0 {
		cfg.Serve.Blades = 8
	}
	base, err := cfg.serveBase()
	if err != nil {
		return nil, err
	}
	if base.Cal, err = serve.Calibrate(base); err != nil {
		return nil, err
	}

	res := &ChaosResult{}
	plan := base.Faults
	if len(plan.FleetFaults()) == 0 {
		seed := cfg.FaultSeed
		if seed == 0 {
			seed = 1
		}
		// Span the schedule over the arrival stream's busy window so
		// every trigger lands while requests are still in flight.
		offered := base.Rate * base.Cal.PerBladeCapacity() * float64(base.Blades)
		span := sim.FromSeconds(float64(base.Requests) / offered)
		merged := &fault.Plan{}
		if mp := plan.MachineFaults(); mp != nil {
			merged.Faults = append(merged.Faults, mp.Faults...)
		}
		merged.Faults = append(merged.Faults, fault.SeededFleet(seed, base.Blades, span).Faults...)
		plan = merged
		res.Seed = seed
	}
	res.Spec = plan.String()

	runOne := func(label string, p *fault.Plan) (*serve.Report, error) {
		c := base
		c.Policy = serve.PolicyEstimator
		c.Faults = p
		rep, err := serve.Run(c)
		if err != nil {
			return nil, err
		}
		res.Epochs += rep.Epochs
		for _, bs := range rep.PerBlade {
			cfg.Collect.AddArtifacts(fmt.Sprintf("chaos/%s/blade%d", label, bs.Blade), bs.Trace, bs.Metrics)
		}
		if rep.Coordinator != nil || rep.Sim != nil {
			cfg.Collect.AddArtifacts(fmt.Sprintf("chaos/%s/sim", label), rep.Coordinator, rep.Sim)
		}
		return rep, nil
	}
	if res.Baseline, err = runOne("baseline", plan.MachineFaults()); err != nil {
		return nil, err
	}
	if res.Chaos, err = runOne("injected", plan); err != nil {
		return nil, err
	}

	res.GoodputBaseline = res.Baseline.Served - res.Baseline.Late
	res.GoodputChaos = res.Chaos.Served - res.Chaos.Late
	if res.GoodputBaseline > 0 {
		res.GoodputRatio = float64(res.GoodputChaos) / float64(res.GoodputBaseline)
	}
	return res, nil
}

// RenderChaos prints the lifecycle experiment.
func RenderChaos(w io.Writer, r *ChaosResult) {
	c := r.Chaos
	fmt.Fprintf(w, "Blade lifecycle & self-healing — %d blades, offered %.1f rps (%.1f× capacity), deadline %s\n",
		c.Blades, c.OfferedRPS, c.RateMultiple, c.Deadline)
	if r.Seed != 0 {
		fmt.Fprintf(w, "schedule (seed %d): %s\n", r.Seed, r.Spec)
	} else {
		fmt.Fprintf(w, "schedule: %s\n", r.Spec)
	}
	fmt.Fprintf(w, "lifecycle: %d crashes, %d restarts, %d stalls; %d re-routes\n",
		c.BladeCrashes, c.BladeRestarts, c.BladeStalls, c.Rerouted)
	fmt.Fprintf(w, "%-10s %7s %5s %9s %9s %9s %9s %9s %9s %9s\n",
		"run", "served", "late", "shed-rej", "shed-exp", "shed-rer", "shed-exh", "p50", "p95", "p99")
	for _, row := range []struct {
		name string
		rep  *serve.Report
	}{{"baseline", r.Baseline}, {"chaos", r.Chaos}} {
		rep := row.rep
		fmt.Fprintf(w, "%-10s %7d %5d %9d %9d %9d %9d %9s %9s %9s\n",
			row.name, rep.Served, rep.Late, rep.ShedRejected, rep.ShedExpired,
			rep.ShedRerouted, rep.ShedExhausted, rep.LatencyP50, rep.LatencyP95, rep.LatencyP99)
	}
	fmt.Fprintf(w, "ledger: served %d + rejected %d + expired %d + rerouted %d + exhausted %d = %d requests\n",
		c.Served, c.ShedRejected, c.ShedExpired, c.ShedRerouted, c.ShedExhausted, c.Requests)
	fmt.Fprintf(w, "blade health:")
	for _, bs := range c.PerBlade {
		fmt.Fprintf(w, " %d:%s", bs.Blade, bs.Health)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "goodput (served on time): baseline %d, chaos %d (%.1f%% retained)\n",
		r.GoodputBaseline, r.GoodputChaos, r.GoodputRatio*100)
	if r.Epochs > 0 {
		fmt.Fprintf(w, "sync: %d epochs over both runs\n", r.Epochs)
	}
}
