package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"cellport/internal/marvel"
)

// TestChaosExpDeterminism pins the chaos experiment's acceptance
// criteria at the experiments layer: the seeded blade-lifecycle run is
// byte-identical between the sharded wheels and the sequential
// reference loop, the schedule actually fires, and the ledger conserves
// over every shed category.
func TestChaosExpDeterminism(t *testing.T) {
	cache := marvel.NewArtifactCache()
	measure := func(seqSim bool) *ChaosResult {
		t.Helper()
		cfg := Config{
			Quick:     true,
			Seed:      20070710,
			Parallel:  4,
			Artifacts: cache,
			Serve:     ServeConfig{Blades: 2, Seed: 7},
			SeqSim:    seqSim,
		}
		res, err := ChaosExp(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	marshalRes := func(r *ChaosResult) []byte {
		t.Helper()
		doc, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}
	sharded := measure(false)
	seq := measure(true)
	if got, want := marshalRes(sharded), marshalRes(seq); !bytes.Equal(got, want) {
		t.Fatalf("sharded chaos diverged from seqsim:\n got %s\nwant %s", got, want)
	}

	c := sharded.Chaos
	if c.BladeCrashes == 0 || sharded.Seed == 0 || sharded.Spec == "" {
		t.Fatalf("seeded schedule did not fire: crashes=%d seed=%d spec=%q",
			c.BladeCrashes, sharded.Seed, sharded.Spec)
	}
	for name, rep := range map[string]*struct {
		served, rej, exp, rer, exh, reqs int
	}{
		"baseline": {sharded.Baseline.Served, sharded.Baseline.ShedRejected, sharded.Baseline.ShedExpired,
			sharded.Baseline.ShedRerouted, sharded.Baseline.ShedExhausted, sharded.Baseline.Requests},
		"chaos": {c.Served, c.ShedRejected, c.ShedExpired, c.ShedRerouted, c.ShedExhausted, c.Requests},
	} {
		if sum := rep.served + rep.rej + rep.exp + rep.rer + rep.exh; sum != rep.reqs {
			t.Fatalf("%s ledger leaks: %d != %d requests", name, sum, rep.reqs)
		}
	}
	if sharded.GoodputRatio <= 0 || sharded.GoodputRatio > 1 {
		t.Fatalf("goodput ratio %v outside (0,1]: chaos cannot beat its own baseline", sharded.GoodputRatio)
	}
}

// TestChaosExpExplicitPlan checks an explicit blade-level -faults spec
// takes precedence over the seeded schedule (Seed stays 0) and still
// produces a conserving, reproducible run.
func TestChaosExpExplicitPlan(t *testing.T) {
	cfg := Config{
		Quick:     true,
		Seed:      20070710,
		Parallel:  4,
		Artifacts: marvel.NewArtifactCache(),
		Serve:     ServeConfig{Blades: 2, Seed: 7},
		FaultSpec: "blade-crash:blade=1,at=5ms",
	}
	res, err := ChaosExp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seed != 0 {
		t.Fatalf("explicit spec still drew a seeded schedule (seed %d)", res.Seed)
	}
	if res.Spec != cfg.FaultSpec {
		t.Fatalf("spec %q, want the explicit plan %q", res.Spec, cfg.FaultSpec)
	}
	if res.Chaos.BladeCrashes != 1 {
		t.Fatalf("crashes fired %d, want 1", res.Chaos.BladeCrashes)
	}
}
