package experiments

import (
	"fmt"
	"io"
	"strings"

	"cellport/internal/cost"
	"cellport/internal/marvel"
	"cellport/internal/sim"
)

// Fig7Cell is one bar of Figure 7: a configuration's speed-up over a
// reference machine for a given image-set size.
type Fig7Cell struct {
	Images int
	// PerImage excludes the one-time overhead (the basis of the paper's
	// §4 estimates); Whole includes it.
	PerImage float64
	Whole    float64
}

// Fig7Result holds the full figure: speed-ups of each Cell configuration
// over each reference machine, plus the raw times.
type Fig7Result struct {
	Sizes []int
	// Times[config][size] in virtual seconds; configs: PPE, Desktop,
	// Laptop, Cell/single-SPE, Cell/multi-SPE, Cell/multi-SPE2.
	RefTotal    map[string]map[int]sim.Duration
	RefPerImage map[string]sim.Duration
	RefOneTime  map[string]sim.Duration
	CellTotal   map[string]map[int]sim.Duration
	CellPerImg  map[string]sim.Duration
	CellOneTime map[string]sim.Duration
	// SpeedUp[cellConfig][refMachine] per set size.
	SpeedUp map[string]map[string][]Fig7Cell
}

// CellConfigs lists the ported configurations in presentation order.
var CellConfigs = []string{"single-spe", "multi-spe", "multi-spe2"}

// RefMachines lists the reference machines in presentation order.
var RefMachines = []string{"PPE", "Desktop", "Laptop"}

// Fig7 regenerates Figure 7: whole-application speed-ups of the ported
// application (single-SPE and parallel-SPE scenarios) over the PPE,
// Desktop and Laptop references, for image sets of 1/10/50.
//
// Reference runs are measured once and extended linearly over set sizes
// (the sequential application is exactly linear: total = oneTime +
// n × perImage); the Cell runs are simulated at every set size.
func Fig7(cfg Config) (*Fig7Result, error) {
	res := &Fig7Result{
		Sizes:       cfg.setSizes(),
		RefTotal:    map[string]map[int]sim.Duration{},
		RefPerImage: map[string]sim.Duration{},
		RefOneTime:  map[string]sim.Duration{},
		CellTotal:   map[string]map[int]sim.Duration{},
		CellPerImg:  map[string]sim.Duration{},
		CellOneTime: map[string]sim.Duration{},
		SpeedUp:     map[string]map[string][]Fig7Cell{},
	}
	w1 := cfg.Workload(1)
	// The reference measurements and the scenario×set-size grid are
	// independent simulations (each owns a private engine and machine), so
	// both fan out over the worker pool; results are keyed by index, which
	// keeps the assembled figure identical to the sequential path.
	hosts := []func() *cost.Model{cost.NewPPE, cost.NewDesktop, cost.NewLaptop}
	refs, err := RunIndexed(cfg.workers(), len(hosts), func(i int) (*marvel.ReferenceResult, error) {
		return cfg.artifacts().Reference(hosts[i](), w1)
	})
	if err != nil {
		return nil, err
	}
	for _, ref := range refs {
		res.RefPerImage[ref.Host] = ref.PerImage
		res.RefOneTime[ref.Host] = ref.OneTime
		res.RefTotal[ref.Host] = map[int]sim.Duration{}
		for _, n := range res.Sizes {
			res.RefTotal[ref.Host][n] = ref.OneTime + sim.Duration(n)*ref.PerImage
		}
	}
	type gridPoint struct {
		scen marvel.Scenario
		n    int
	}
	var grid []gridPoint
	for _, scen := range []marvel.Scenario{marvel.SingleSPE, marvel.MultiSPE, marvel.MultiSPE2} {
		res.CellTotal[scen.String()] = map[int]sim.Duration{}
		for _, n := range res.Sizes {
			grid = append(grid, gridPoint{scen, n})
		}
	}
	runs, err := RunIndexed(cfg.workers(), len(grid), func(i int) (*marvel.PortedResult, error) {
		g := grid[i]
		label := fmt.Sprintf("fig7/%s/n=%d", g.scen, g.n)
		ported, err := cfg.runPorted(label, cfg.ported(cfg.Workload(g.n), g.scen, marvel.Optimized))
		if err != nil {
			return nil, fmt.Errorf("fig7 %s n=%d: %w", g.scen, g.n, err)
		}
		return ported, nil
	})
	if err != nil {
		return nil, err
	}
	for i, ported := range runs {
		name := grid[i].scen.String()
		res.CellTotal[name][grid[i].n] = ported.Total
		res.CellPerImg[name] = ported.PerImage
		res.CellOneTime[name] = ported.OneTime
	}
	for _, cc := range CellConfigs {
		res.SpeedUp[cc] = map[string][]Fig7Cell{}
		for _, rm := range RefMachines {
			var cells []Fig7Cell
			for _, n := range res.Sizes {
				cells = append(cells, Fig7Cell{
					Images:   n,
					PerImage: res.RefPerImage[rm].Seconds() / res.CellPerImg[cc].Seconds(),
					Whole:    res.RefTotal[rm][n].Seconds() / res.CellTotal[cc][n].Seconds(),
				})
			}
			res.SpeedUp[cc][rm] = cells
		}
	}
	return res, nil
}

// RenderFig7 prints the figure as grouped per-reference tables.
func RenderFig7(w io.Writer, r *Fig7Result) {
	fmt.Fprintf(w, "Figure 7 — application speed-up over the reference machines\n")
	fmt.Fprintf(w, "(per-image = steady-state processing, excl. one-time model load;\n")
	fmt.Fprintf(w, " whole-run = including the one-time overhead)\n\n")
	for _, rm := range RefMachines {
		fmt.Fprintf(w, "vs %s:\n", rm)
		fmt.Fprintf(w, "  %-12s %10s", "config", "per-image")
		for _, n := range r.Sizes {
			fmt.Fprintf(w, " %8s", fmt.Sprintf("run(%d)", n))
		}
		fmt.Fprintln(w)
		for _, cc := range CellConfigs {
			cells := r.SpeedUp[cc][rm]
			fmt.Fprintf(w, "  %-12s %9.2fx", cc, cells[0].PerImage)
			for _, c := range cells {
				fmt.Fprintf(w, " %7.2fx", c.Whole)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "speed-up bars vs Desktop (per-image, each █ = 1x):\n")
	for _, cc := range CellConfigs {
		s := r.SpeedUp[cc]["Desktop"][0].PerImage
		fmt.Fprintf(w, "  %-12s |%s %.2fx\n", cc, strings.Repeat("█", int(s+0.5)), s)
	}
}
