package experiments

import (
	"cellport/internal/parallel"
	"cellport/internal/sim"
)

// The experiment grid is embarrassingly parallel: every simulation owns a
// private sim.Engine, a private machine and a private workload, and all
// cross-run inputs (cost models, calibration tables) are immutable. The
// runner fans independent runs out over a bounded worker pool while
// keeping results addressed by index, so parallel execution returns
// byte-identical artifacts to the sequential path (guarded by
// TestParallelRunnerDeterminism).

// RunIndexed executes job(0..n-1) on up to `workers` goroutines and
// returns the results in index order. It is the experiment-harness entry
// point to parallel.RunIndexed (shared with the serving layer); see that
// package for the determinism contract, in particular that on multiple
// failures the lowest-index error is always the one returned.
func RunIndexed[T any](workers, n int, job func(i int) (T, error)) ([]T, error) {
	return parallel.RunIndexed(workers, n, job)
}

// RunWheels executes job(0..n-1) wheel-per-job on a drained
// sim.ShardedEngine instead of a raw goroutine pool (parallel.RunWheels
// with the wheel handle dropped): the uniform substrate for grids of
// independent simulations, with the same index-ordered results and
// lowest-index-error contract as RunIndexed. Unlike RunIndexed, every
// job runs even after a sibling fails.
func RunWheels[T any](workers, n int, job func(i int) (T, error)) ([]T, error) {
	return parallel.RunWheels(workers, n, func(i int, _ *sim.Engine) (T, error) {
		return job(i)
	})
}

// workers resolves the configured parallelism for this experiment config.
func (c Config) workers() int { return c.Parallel }
