package experiments

import "cellport/internal/parallel"

// The experiment grid is embarrassingly parallel: every simulation owns a
// private sim.Engine, a private machine and a private workload, and all
// cross-run inputs (cost models, calibration tables) are immutable. The
// runner fans independent runs out over a bounded worker pool while
// keeping results addressed by index, so parallel execution returns
// byte-identical artifacts to the sequential path (guarded by
// TestParallelRunnerDeterminism).

// RunIndexed executes job(0..n-1) on up to `workers` goroutines and
// returns the results in index order. It is the experiment-harness entry
// point to parallel.RunIndexed (shared with the serving layer); see that
// package for the determinism contract, in particular that on multiple
// failures the lowest-index error is always the one returned.
func RunIndexed[T any](workers, n int, job func(i int) (T, error)) ([]T, error) {
	return parallel.RunIndexed(workers, n, job)
}

// workers resolves the configured parallelism for this experiment config.
func (c Config) workers() int { return c.Parallel }
