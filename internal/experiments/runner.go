package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment grid is embarrassingly parallel: every simulation owns a
// private sim.Engine, a private machine and a private workload, and all
// cross-run inputs (cost models, calibration tables) are immutable. The
// runner fans independent runs out over a bounded worker pool while
// keeping results addressed by index, so parallel execution returns
// byte-identical artifacts to the sequential path (guarded by
// TestParallelRunnerDeterminism).

// RunIndexed executes job(0..n-1) on up to `workers` goroutines and
// returns the results in index order. workers <= 0 means GOMAXPROCS;
// workers == 1 runs every job inline on the calling goroutine (the
// sequential path). On failure the lowest-index error is returned and
// in-flight jobs finish, but unstarted jobs are skipped.
func RunIndexed[T any](workers, n int, job func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			r, err := job(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				r, err := job(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// workers resolves the configured parallelism for this experiment config.
func (c Config) workers() int { return c.Parallel }
