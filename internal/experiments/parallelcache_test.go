package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"cellport/internal/marvel"
)

// TestParallelSharedCacheDeterminism pins satellite coverage for the
// worker pool × artifact cache interaction: HostsExp and ProfileExp
// driven through a shared ArtifactCache must produce byte-identical
// results at Parallel=1 and Parallel=8, and — because cache hits and
// misses are counted at lookup admission under singleflight — the
// hit/miss totals must be identical too, no matter how the worker
// goroutines interleave.
func TestParallelSharedCacheDeterminism(t *testing.T) {
	type expCase struct {
		name string
		run  func(cfg Config) (any, error)
	}
	cases := []expCase{
		{"hosts", func(cfg Config) (any, error) { return HostsExp(cfg) }},
		{"profile", func(cfg Config) (any, error) { return ProfileExp(cfg) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			type outcome struct {
				doc          []byte
				hits, misses uint64
			}
			measure := func(parallel int) outcome {
				t.Helper()
				cache := marvel.NewArtifactCache()
				cfg := Config{Quick: true, Seed: 20070710, Parallel: parallel, Artifacts: cache}
				res, err := tc.run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				doc, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				h, m := cache.Stats()
				return outcome{doc: doc, hits: h, misses: m}
			}
			seq := measure(1)
			// Several parallel repetitions: scheduling varies between runs,
			// the observable outcome must not.
			for rep := 0; rep < 3; rep++ {
				par := measure(8)
				if !bytes.Equal(par.doc, seq.doc) {
					t.Fatalf("parallel result diverged from sequential:\n par %s\n seq %s", par.doc, seq.doc)
				}
				if par.hits != seq.hits || par.misses != seq.misses {
					t.Fatalf("cache stats diverged: parallel %d/%d, sequential %d/%d",
						par.hits, par.misses, seq.hits, seq.misses)
				}
			}
			if seq.misses == 0 {
				t.Fatal("experiment never touched the artifact cache; the comparison is vacuous")
			}
		})
	}
}
