package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"cellport/internal/marvel"
)

// TestFleetExpDeterminism pins the fleet experiment's acceptance
// criteria at the experiments layer: byte-identity between the sharded
// wheels and the sequential reference loop, an autoscaler that
// demonstrably drains off-peak, a conserving six-term ledger, and fleet
// goodput beating the static single-pool baseline on the shared stream.
func TestFleetExpDeterminism(t *testing.T) {
	cache := marvel.NewArtifactCache()
	measure := func(seqSim bool) *FleetResult {
		t.Helper()
		cfg := Config{
			Quick:     true,
			Seed:      20070710,
			Parallel:  4,
			Artifacts: cache,
			Serve:     ServeConfig{Blades: 2, Seed: 7, Rate: 1.5},
			Fleet:     FleetConfig{Pools: 4, Autoscale: true, Flash: true},
			SeqSim:    seqSim,
		}
		res, err := FleetExp(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	marshalRes := func(r *FleetResult) []byte {
		t.Helper()
		doc, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}
	sharded := measure(false)
	seq := measure(true)
	if got, want := marshalRes(sharded), marshalRes(seq); !bytes.Equal(got, want) {
		t.Fatalf("sharded fleet experiment diverged from seqsim:\n got %s\nwant %s", got, want)
	}

	f := sharded.Fleet
	if f.Fleet == nil {
		t.Fatal("fleet run carries no fleet stats")
	}
	if f.Fleet.Pools != 4 || f.Blades != 4*2 {
		t.Fatalf("fleet shape wrong: pools=%d blades=%d", f.Fleet.Pools, f.Blades)
	}
	if f.Fleet.ScaleDowns == 0 || f.Fleet.ActiveMin >= f.Fleet.Pools {
		t.Fatalf("autoscaler never drained off-peak: %+v", f.Fleet)
	}
	if sharded.Single.Fleet != nil {
		t.Fatal("single-pool baseline grew fleet stats")
	}
	if f.OfferedRPS != sharded.Single.OfferedRPS {
		t.Fatalf("offered rates diverged: fleet %v single %v", f.OfferedRPS, sharded.Single.OfferedRPS)
	}
	for name, rep := range map[string]*struct {
		served, rej, exp, rer, exh, glob, reqs int
	}{
		"fleet": {f.Served, f.ShedRejected, f.ShedExpired, f.ShedRerouted,
			f.ShedExhausted, f.ShedGlobal, f.Requests},
		"single": {sharded.Single.Served, sharded.Single.ShedRejected, sharded.Single.ShedExpired,
			sharded.Single.ShedRerouted, sharded.Single.ShedExhausted, sharded.Single.ShedGlobal,
			sharded.Single.Requests},
	} {
		if sum := rep.served + rep.rej + rep.exp + rep.rer + rep.exh + rep.glob; sum != rep.reqs {
			t.Fatalf("%s ledger leaks: %d != %d requests", name, sum, rep.reqs)
		}
	}
	if sharded.GoodputFleet <= sharded.GoodputSingle {
		t.Fatalf("fleet goodput %d does not beat the single-pool baseline %d",
			sharded.GoodputFleet, sharded.GoodputSingle)
	}
}

// TestFleetExpStatic checks -autoscale off yields a static fleet (no
// scale actions) and -flash off drops the flash windows from the model
// while the experiment still runs end to end.
func TestFleetExpStatic(t *testing.T) {
	cfg := Config{
		Quick:     true,
		Seed:      20070710,
		Parallel:  4,
		Artifacts: marvel.NewArtifactCache(),
		Serve:     ServeConfig{Blades: 2, Seed: 7, Rate: 1.5},
		Fleet:     FleetConfig{Pools: 3},
	}
	res, err := FleetExp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Fleet.Fleet
	if fs == nil {
		t.Fatal("fleet run carries no fleet stats")
	}
	if fs.ScaleUps != 0 || fs.ScaleDowns != 0 || fs.ActiveMin != 3 || fs.ActiveFinal != 3 {
		t.Fatalf("static fleet scaled anyway: %+v", fs)
	}
}
