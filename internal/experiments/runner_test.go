package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"cellport/internal/marvel"
)

func TestRunIndexedOrderAndCompleteness(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := RunIndexed(workers, 20, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunIndexedZeroJobs(t *testing.T) {
	got, err := RunIndexed(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestRunIndexedPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := RunIndexed(4, 50, func(i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n > 50 {
		t.Fatalf("ran %d jobs for 50 indices", n)
	}
	// Sequential path: fails fast at the erroring index.
	ran.Store(0)
	_, err = RunIndexed(1, 50, func(i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) || ran.Load() != 4 {
		t.Fatalf("sequential: err=%v ran=%d, want boom after 4 jobs", err, ran.Load())
	}
}

// TestRunIndexedLowestIndexErrorDeterministic pins the multi-failure
// contract: when several jobs fail, the returned error is always the one
// from the lowest-index failing job, regardless of goroutine scheduling.
// The old runner checked the failure flag after claiming an index, so a
// worker that claimed the low failing index could observe a concurrent
// higher-index failure and skip its job entirely, letting the
// higher-index error win.
func TestRunIndexedLowestIndexErrorDeterministic(t *testing.T) {
	errLow := errors.New("low-index failure")
	errHigh := errors.New("high-index failure")
	for iter := 0; iter < 200; iter++ {
		_, err := RunIndexed(16, 100, func(i int) (int, error) {
			switch {
			case i == 9:
				return 0, errLow
			case i >= 10:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("iter %d: err = %v, want the lowest-index failure", iter, err)
		}
	}
	// A slow low-index failure still wins over fast higher-index ones.
	for iter := 0; iter < 20; iter++ {
		_, err := RunIndexed(8, 40, func(i int) (int, error) {
			if i == 2 {
				time.Sleep(time.Millisecond)
				return 0, errLow
			}
			if i >= 3 {
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("slow iter %d: err = %v, want the lowest-index failure", iter, err)
		}
	}
}

// TestParallelRunnerDeterminism is the harness-level replay guarantee: the
// same seeded Fig. 7 workload produces identical per-run virtual times and
// simulator event counts whether the grid executes sequentially or on the
// worker pool. Each simulation owns a private engine, so parallel host
// execution must not perturb virtual time at all.
func TestParallelRunnerDeterminism(t *testing.T) {
	cfg := quickCfg()

	runGrid := func(workers int) []*marvel.PortedResult {
		type point struct {
			scen marvel.Scenario
			n    int
		}
		var grid []point
		for _, scen := range []marvel.Scenario{marvel.SingleSPE, marvel.MultiSPE, marvel.MultiSPE2} {
			for _, n := range cfg.setSizes() {
				grid = append(grid, point{scen, n})
			}
		}
		runs, err := RunIndexed(workers, len(grid), func(i int) (*marvel.PortedResult, error) {
			return marvel.RunPorted(marvel.PortedConfig{
				Workload:      cfg.Workload(grid[i].n),
				Scenario:      grid[i].scen,
				Variant:       marvel.Optimized,
				MachineConfig: MachineConfig(),
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return runs
	}

	seq := runGrid(1)
	par := runGrid(8)
	if len(seq) != len(par) {
		t.Fatalf("run counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		s, p := seq[i], par[i]
		if s.Total != p.Total || s.OneTime != p.OneTime || s.PerImage != p.PerImage {
			t.Errorf("run %d: virtual times diverge: seq{%v %v %v} par{%v %v %v}",
				i, s.Total, s.OneTime, s.PerImage, p.Total, p.OneTime, p.PerImage)
		}
		if s.EventCount != p.EventCount {
			t.Errorf("run %d: EventCount %d (seq) vs %d (par)", i, s.EventCount, p.EventCount)
		}
		if !reflect.DeepEqual(s.KernelTime, p.KernelTime) {
			t.Errorf("run %d: kernel times diverge", i)
		}
	}

	// The assembled figure must also be byte-identical between the
	// sequential path and the parallel harness.
	seqCfg, parCfg := cfg, cfg
	seqCfg.Parallel, parCfg.Parallel = 1, 8
	a, err := Fig7(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig7(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Fig7 sequential vs parallel results differ")
	}
}
