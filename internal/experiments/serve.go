package experiments

import (
	"fmt"
	"io"

	"cellport/internal/fault"
	"cellport/internal/marvel"
	"cellport/internal/serve"
	"cellport/internal/sim"
)

// ServeConfig sizes the serving-layer experiment (paperbench -exp serve).
// Zero values select the defaults noted on each field.
type ServeConfig struct {
	// Blades is the blade-pool size (default 3).
	Blades int
	// Rate is the offered load as a multiple of the pool's estimated
	// capacity (default 2: overload).
	Rate float64
	// Burst is the mean arrival burst size (default 2).
	Burst float64
	// DeadlineMS is the per-request virtual deadline in milliseconds:
	// 0 selects the automatic deadline, negative disables deadlines.
	DeadlineMS float64
	// Seed drives the arrival stream (default 7).
	Seed uint64
}

// ServeResult compares the two admission policies over one shared
// calibration and the identical arrival stream.
type ServeResult struct {
	Estimator  *serve.Report `json:"estimator"`
	RoundRobin *serve.Report `json:"round_robin"`

	// Epochs is the total epoch-barrier count over both policy runs —
	// the synchronization cost the lookahead protocol exists to shrink.
	// Excluded from JSON so experiment data stays byte-identical across
	// -lookahead on/off, -seqsim, and every -shards count.
	Epochs uint64 `json:"-"`
}

// serveBase assembles the serve.Config for this experiment configuration
// (shared with the benchmark harness and tests so every entry point
// serves the same stream).
func (c Config) serveBase() (serve.Config, error) {
	sc := c.Serve
	if sc.Blades <= 0 {
		sc.Blades = 3
	}
	if sc.Rate <= 0 {
		sc.Rate = 2
	}
	if sc.Burst <= 0 {
		sc.Burst = 2
	}
	if sc.Seed == 0 {
		sc.Seed = 7
	}
	frame := c.Workload(1)
	base := serve.Config{
		Blades:        sc.Blades,
		Rate:          sc.Rate,
		Burst:         sc.Burst,
		TallFrac:      0.25,
		Seed:          sc.Seed,
		Frame:         frame,
		Variant:       marvel.Optimized,
		MachineConfig: MachineConfig(),
		Watchdog:      c.Watchdog,
		Parallel:      c.workers(),
		Shards:        c.Shards,
		SeqSim:        c.SeqSim,
		NoLookahead:   c.NoLookahead,
		FullFidelity:  c.FullSim,
		Instrument:    c.Collect != nil,
	}
	if c.Quick {
		base.Requests, base.MaxBatch, base.MaxQueue = 64, 3, 6
	} else {
		base.Requests, base.MaxBatch, base.MaxQueue = 256, 4, 8
	}
	switch {
	case sc.DeadlineMS > 0:
		base.Deadline = sim.FromSeconds(sc.DeadlineMS / 1000)
	case sc.DeadlineMS < 0:
		base.Deadline = -1
	}
	// The serving layer threads its cache straight into every calibration
	// simulation; the cold path gets a private cache per invocation
	// instead of the process-wide one.
	if base.Artifacts = c.artifacts(); base.Artifacts == nil {
		base.Artifacts = marvel.NewArtifactCache()
	}
	if c.FaultSpec != "" {
		plan, err := fault.Parse(c.FaultSpec)
		if err != nil {
			return serve.Config{}, err
		}
		base.Faults = plan
	} else if c.FaultSeed != 0 {
		base.Faults = fault.Seeded(c.FaultSeed, base.MachineConfig.NumSPEs)
	}
	return base, nil
}

// ServeExp runs the multi-blade serving experiment: one calibration, then
// the identical seeded request stream served under the estimator-driven
// policy and under plain round-robin. With a collector armed, every
// blade's trace and metrics land under serve/<policy>/bladeN (one Chrome
// trace process per blade).
func ServeExp(cfg Config) (*ServeResult, error) {
	base, err := cfg.serveBase()
	if err != nil {
		return nil, err
	}
	if base.Cal, err = serve.Calibrate(base); err != nil {
		return nil, err
	}

	res := &ServeResult{}
	for _, p := range []struct {
		policy serve.Policy
		out    **serve.Report
	}{{serve.PolicyEstimator, &res.Estimator}, {serve.PolicyRoundRobin, &res.RoundRobin}} {
		c := base
		c.Policy = p.policy
		rep, err := serve.Run(c)
		if err != nil {
			return nil, err
		}
		*p.out = rep
		res.Epochs += rep.Epochs
		for _, bs := range rep.PerBlade {
			cfg.Collect.AddArtifacts(fmt.Sprintf("serve/%s/blade%d", rep.Policy, bs.Blade), bs.Trace, bs.Metrics)
		}
		if rep.Coordinator != nil || rep.Sim != nil {
			cfg.Collect.AddArtifacts(fmt.Sprintf("serve/%s/sim", rep.Policy), rep.Coordinator, rep.Sim)
		}
	}
	return res, nil
}

// RenderServe prints the policy comparison.
func RenderServe(w io.Writer, r *ServeResult) {
	e := r.Estimator
	fmt.Fprintf(w, "Serving layer — %d blades, offered %.1f rps (%.1f× capacity), deadline %s\n",
		e.Blades, e.OfferedRPS, e.RateMultiple, e.Deadline)
	fmt.Fprintf(w, "%-14s %9s %7s %5s %9s %9s %7s %9s %9s %9s\n",
		"policy", "achieved", "served", "late", "shed-rej", "shed-exp", "batch", "p50", "p95", "p99")
	for _, rep := range []*serve.Report{r.Estimator, r.RoundRobin} {
		fmt.Fprintf(w, "%-14s %9.1f %7d %5d %9d %9d %7.2f %9s %9s %9s\n",
			rep.Policy, rep.AchievedRPS, rep.Served, rep.Late, rep.ShedRejected, rep.ShedExpired,
			rep.MeanBatch, rep.LatencyP50, rep.LatencyP95, rep.LatencyP99)
	}
	fmt.Fprintf(w, "estimator schemes: %v (fallbacks %d, conclusive %v)\n",
		e.SchemeBatches, e.PolicyFallbacks, e.EstimatorConclusive)
	good := func(rep *serve.Report) int { return rep.Served - rep.Late }
	fmt.Fprintf(w, "goodput (served on time): estimator %d vs round-robin %d\n", good(r.Estimator), good(r.RoundRobin))
	if r.Epochs > 0 {
		fmt.Fprintf(w, "sync: %d epochs", r.Epochs)
		for _, rep := range []*serve.Report{r.Estimator, r.RoundRobin} {
			fmt.Fprintf(w, " | %s: %d barriers, %d window admits, barrier wait %s",
				rep.Policy, rep.Barriers, rep.WindowAdmits, rep.BarrierWait)
		}
		fmt.Fprintln(w)
	}
}
