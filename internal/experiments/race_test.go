package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cellport/internal/exec"
	"cellport/internal/marvel"
	"cellport/internal/sim"
	"cellport/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// stripMeasuredKeys removes every measured_-prefixed map key,
// recursively — the same rule benchdiff applies. What remains is the
// deterministic half of a race report.
func stripMeasuredKeys(v any) any {
	switch x := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, val := range x {
			if strings.HasPrefix(k, "measured_") {
				continue
			}
			out[k] = stripMeasuredKeys(val)
		}
		return out
	case []any:
		out := make([]any, len(x))
		for i := range x {
			out[i] = stripMeasuredKeys(x[i])
		}
		return out
	default:
		return v
	}
}

// raceFingerprint is the race report's deterministic JSON image.
func raceFingerprint(t *testing.T, r *RaceResult) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(stripMeasuredKeys(v))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRaceExpProperties runs the quick race end to end and pins its
// structural guarantees: full point coverage, bit-exact executed
// outputs, sim halves that equal the calibration table exactly, and
// sane per-point arithmetic on both clocks.
func TestRaceExpProperties(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Quick = true
	cfg.Race = RaceConfig{Workers: 2, Reps: 1}
	r, err := RaceExp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := 2 * 2 * r.MaxBatch // geometries × schemes × batch sizes
	if len(r.Points) != wantPoints {
		t.Fatalf("race covered %d points, want %d", len(r.Points), wantPoints)
	}
	if !r.AllBitExact {
		t.Error("executed outputs diverged from the host references")
	}
	if !r.AllTableMatch {
		t.Error("re-run sim services diverged from the calibration table")
	}
	for _, p := range r.Points {
		if p.Mismatches != 0 {
			t.Errorf("%s tall=%v k=%d: %d bit-exactness mismatches", p.Scheme, p.Tall, p.K, p.Mismatches)
		}
		if p.SimService <= 0 || p.WallNS <= 0 {
			t.Errorf("%s tall=%v k=%d: non-positive service (sim %v, wall %d ns)", p.Scheme, p.Tall, p.K, p.SimService, p.WallNS)
		}
		if p.K == 1 && (p.SimSpeedup != 1 || p.Speedup != 1) {
			t.Errorf("%s tall=%v k=1: speedups (%v, %v), want (1, 1) by definition", p.Scheme, p.Tall, p.SimSpeedup, p.Speedup)
		}
		if p.RelErr < 0 {
			t.Errorf("%s tall=%v k=%d: negative relative error %v", p.Scheme, p.Tall, p.K, p.RelErr)
		}
	}
	if r.Agreement < 0 || r.Agreement > 1 {
		t.Errorf("ranking agreement %v outside [0, 1]", r.Agreement)
	}
	if r.Workers != 2 || r.Reps != 1 {
		t.Errorf("measured config (%d workers, %d reps), want (2, 1)", r.Workers, r.Reps)
	}
}

// TestRaceDeterministicHalf runs the race bare and instrumented: after
// stripping measured_ keys the two reports must be byte-identical — the
// simulated half is a pure function of the configuration, and
// instrumentation (like the wall clock) is invisible to it. It also
// checks the collector's clock-domain discipline: every artifact label
// carries a domain prefix and exec metrics never leak into sim runs or
// vice versa.
func TestRaceDeterministicHalf(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Quick = true
	cfg.Race = RaceConfig{Workers: 2, Reps: 1}
	bare, err := RaceExp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Collect = &Collector{}
	inst, err := RaceExp(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := raceFingerprint(t, bare), raceFingerprint(t, inst); !bytes.Equal(a, b) {
		t.Errorf("deterministic half differs bare vs instrumented:\n%s\nvs\n%s", a, b)
	}

	runs := cfg.Collect.Runs()
	if len(runs) == 0 {
		t.Fatal("instrumented race collected no artifacts")
	}
	sims, execs := 0, 0
	for _, r := range runs {
		switch {
		case strings.HasPrefix(r.Label, trace.DomainSim):
			sims++
			if r.Metrics != nil {
				for _, comp := range r.Metrics.Components() {
					if comp == "exec" {
						t.Errorf("sim run %q carries exec-domain metrics", r.Label)
					}
				}
			}
		case strings.HasPrefix(r.Label, trace.DomainExec):
			execs++
			if r.Metrics == nil {
				t.Errorf("exec run %q carries no metrics", r.Label)
				continue
			}
			if got := r.Metrics.Components(); len(got) != 1 || got[0] != "exec" {
				t.Errorf("exec run %q metrics components = %v, want [exec] only", r.Label, got)
			}
		default:
			t.Errorf("artifact label %q carries no clock-domain prefix", r.Label)
		}
	}
	if sims == 0 || execs == 0 {
		t.Fatalf("expected artifacts in both domains, got %d sim and %d exec", sims, execs)
	}
}

// TestRaceTraceGolden pins the mixed-domain Chrome-trace artifact: one
// document holding a sim/ process (virtual time) and an exec/ process
// (wall time scaled through trace.WallNanos), with the domains visible
// in the process names and never sharing a track. The exec half comes
// from a real backend run with one worker and an injected clock, so the
// artifact is byte-stable; regenerate with `go test -run RaceTraceGolden
// -update ./internal/experiments/`.
func TestRaceTraceGolden(t *testing.T) {
	c := &Collector{}

	simRec := trace.NewRecorder()
	simRec.Span("PPE", 0, sim.Time(2*sim.Millisecond), trace.KindCompute, "preprocess")
	simRec.Span("SPE0", sim.Time(2*sim.Millisecond), sim.Time(5*sim.Millisecond), trace.KindCompute, "CHExtract")
	c.AddArtifacts(trace.DomainSim+"race/job-dist/std/k1", simRec, nil)

	var tick time.Duration
	b := exec.NewBackend(exec.Options{
		Workers:    1,
		Reps:       1,
		Artifacts:  marvel.NewArtifactCache(),
		Instrument: true,
		Now: func() time.Duration {
			tick += time.Millisecond
			return tick
		},
	})
	defer b.Close()
	run, err := b.Execute(marvel.ExecPoint{
		Workload: marvel.Workload{Images: 1, W: 352, H: 96, Seed: 11},
		Scenario: marvel.SingleSPE,
		Variant:  marvel.Optimized,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddArtifacts(trace.DomainExec+"race/job-dist/std/k1", run.Trace, run.Metrics)

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "race_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("mixed-domain trace drifted from golden (regenerate with -update if intended)\ngot %d bytes, want %d", buf.Len(), len(want))
	}
	// Structural guards independent of the exact bytes: both domains
	// present, and no process name without a domain.
	out := buf.String()
	if !strings.Contains(out, trace.DomainSim+"race/") || !strings.Contains(out, trace.DomainExec+"race/") {
		t.Fatal("trace artifact does not name both clock domains")
	}
}
